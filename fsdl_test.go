package fsdl_test

import (
	"bytes"
	"math/rand"
	"testing"

	"fsdl"
)

// TestPublicAPIEndToEnd exercises the whole public surface the way the
// package documentation advertises it.
func TestPublicAPIEndToEnd(t *testing.T) {
	g := fsdl.GridGraph2D(8, 8)
	scheme, err := fsdl.Build(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}

	// Plain distance query.
	d, ok := scheme.Distance(0, 63, nil)
	if !ok || d < 14 {
		t.Fatalf("Distance(0,63) = (%d,%v), true distance 14", d, ok)
	}
	if float64(d) > 2.5*14 {
		t.Fatalf("Distance(0,63) = %d exceeds stretch bound", d)
	}

	// Forbidden-set query.
	f := fsdl.FaultVertices(9, 18, 27)
	df, ok := scheme.Distance(0, 63, f)
	if !ok || df < 14 {
		t.Fatalf("faulted Distance = (%d,%v)", df, ok)
	}

	// Labels serialize and decode back; queries work from decoded labels.
	buf, nbits := scheme.Label(0).Encode()
	l0, err := fsdl.DecodeLabel(buf, nbits)
	if err != nil {
		t.Fatal(err)
	}
	q := &fsdl.Query{S: l0, T: scheme.Label(63)}
	if d2, ok := q.Distance(); !ok || d2 != d {
		t.Fatalf("query from serialized label = (%d,%v), want (%d,true)", d2, ok, d)
	}
}

func TestPublicAPIRouting(t *testing.T) {
	g := fsdl.GridGraph2D(7, 7)
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	router := fsdl.BuildRouting(scheme)
	f := fsdl.FaultVertices(24)
	r, ok := router.RouteWithFaults(0, 48, f)
	if !ok {
		t.Fatal("route failed")
	}
	if r.Path[0] != 0 || r.Path[len(r.Path)-1] != 48 {
		t.Fatalf("route endpoints: %v", r.Path)
	}
	for _, v := range r.Path {
		if f.HasVertex(v) {
			t.Fatalf("route passes failed vertex %d", v)
		}
	}
}

func TestPublicAPIOracles(t *testing.T) {
	g := fsdl.GridGraph2D(5, 5)
	so, err := fsdl.BuildStaticOracle(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok, err := so.Distance(0, 24, nil); err != nil || !ok || d < 8 {
		t.Fatalf("static oracle Distance = (%d,%v,%v)", d, ok, err)
	}
	if so.SizeBits() <= 0 {
		t.Fatal("oracle must report its size")
	}

	dy, err := fsdl.NewDynamicOracle(g, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := dy.FailVertex(12); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := dy.Distance(12, 0); ok {
		t.Fatal("failed vertex must be unreachable")
	}
	if err := dy.RecoverVertex(12); err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := dy.Distance(12, 0); !ok {
		t.Fatal("recovered vertex must answer")
	}
}

func TestPublicAPIFailureFree(t *testing.T) {
	g := fsdl.PathGraph(50)
	ff, err := fsdl.BuildFailureFree(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := fsdl.FFDistance(ff.Label(0), ff.Label(49))
	if !ok || d < 49 || float64(d) > 1.5*49+1e-9 {
		t.Fatalf("FFDistance = (%d,%v), want within [49, 73.5]", d, ok)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if g := fsdl.PathGraph(10); g.NumVertices() != 10 {
		t.Error("PathGraph size")
	}
	if g, err := fsdl.GridGraph([]int{3, 3, 3}); err != nil || g.NumVertices() != 27 {
		t.Error("GridGraph size")
	}
	if g, _, err := fsdl.RandomGeometricGraph(100, 0.15, rng); err != nil || !g.IsConnected() {
		t.Error("RandomGeometricGraph must be connected")
	}
	if g, err := fsdl.RoadNetworkGraph(8, 8, 0.1, 4, rng); err != nil || !g.IsConnected() {
		t.Error("RoadNetworkGraph must be connected")
	}
	est := fsdl.EstimateDoublingDimension(fsdl.GridGraph2D(12, 12), 6, rng)
	if est.Dimension <= 0 {
		t.Error("doubling estimate must be positive for a grid")
	}
}

func TestPublicAPIGraphIO(t *testing.T) {
	g := fsdl.GridGraph2D(4, 3)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := fsdl.ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatal("round trip changed the graph")
	}
	if _, err := fsdl.GraphFromEdges(3, [][2]int{{0, 1}, {1, 2}}); err != nil {
		t.Fatal(err)
	}
}

func TestPublicAPIWeighted(t *testing.T) {
	wg := fsdl.NewWeightedGraph(4)
	for _, e := range [][3]int32{{0, 1, 3}, {1, 2, 2}, {2, 3, 1}, {3, 0, 4}} {
		if err := wg.AddEdge(int(e[0]), int(e[1]), e[2]); err != nil {
			t.Fatal(err)
		}
	}
	s, err := fsdl.BuildWeighted(wg, 2)
	if err != nil {
		t.Fatal(err)
	}
	d, ok := s.Distance(0, 2, nil)
	if !ok || d < 5 { // true weighted distance: 0-1-2 = 5
		t.Fatalf("weighted Distance(0,2) = (%d,%v), want >= 5", d, ok)
	}
	f := fsdl.FaultVertices(1)
	d, ok = s.Distance(0, 2, f)
	if !ok || d < 5 { // detour 0-3-2 = 5
		t.Fatalf("weighted faulted Distance = (%d,%v), want >= 5", d, ok)
	}
}

func TestPublicAPINetworkSimulator(t *testing.T) {
	g := fsdl.GridGraph2D(6, 6)
	s, err := fsdl.Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	sim := fsdl.NewNetworkSimulator(s, fsdl.SimConfig{})
	if err := sim.FailVertexAt(0, 14); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 35); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 1 {
		t.Fatalf("simulator metrics = %+v", m)
	}
}

func TestPublicAPIRouteHeader(t *testing.T) {
	g := fsdl.GridGraph2D(5, 5)
	s, err := fsdl.Build(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	router := fsdl.BuildRouting(s)
	h, ok := router.HeaderFor(0, 24, fsdl.FaultVertices(12))
	if !ok {
		t.Fatal("header failed")
	}
	buf, nbits := h.Encode()
	h2, err := fsdl.DecodeRouteHeader(buf, nbits)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := router.FollowHeader(h2)
	if !ok || r.Path[len(r.Path)-1] != 24 {
		t.Fatalf("FollowHeader = (%+v,%v)", r, ok)
	}
}
