module fsdl

go 1.22
