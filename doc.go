// Package fsdl is a Go implementation of forbidden-set distance labels for
// graphs of bounded doubling dimension, after Abraham, Chechik, Gavoille
// and Peleg, "Forbidden-set distance labels for graphs of bounded doubling
// dimension" (PODC 2010; ACM Transactions on Algorithms 12(2), 2016).
//
// Given an unweighted graph G of doubling dimension α and a precision
// parameter ε > 0, the library assigns every vertex a label of
// O(1+1/ε)^{2α}·log²n bits such that, from the labels of two vertices s, t
// and of a set F of forbidden ("failed") vertices and/or edges alone, a
// decoder computes a distance estimate δ with
//
//	d_{G\F}(s,t) ≤ δ ≤ (1+ε)·d_{G\F}(s,t)
//
// in O(1+1/ε)^{2α}·|F|²·log n time — without recomputing anything when
// failures occur, and independently of how many failures must be
// tolerated.
//
// # Quick start
//
//	g := fsdl.NewGraphBuilder(4)
//	g.AddEdge(0, 1)
//	g.AddEdge(1, 2)
//	g.AddEdge(2, 3)
//	g.AddEdge(3, 0)
//	graph, err := g.Build()
//	// handle err
//	scheme, err := fsdl.Build(graph, 0.5) // stretch 1.5
//	// handle err
//	faults := fsdl.NewFaultSet()
//	faults.AddVertex(1)
//	d, ok := scheme.Distance(0, 2, faults) // ≈ d_{G\{1}}(0,2) = 2
//
// # What is in the box
//
//   - The forbidden-set (1+ε)-approximate distance labeling scheme
//     (Theorem 2.1): Build, Scheme, Label, Query.
//   - The failure-free scheme of Section 2.1: BuildFailureFree, FFDistance
//     — much smaller labels, no fault tolerance.
//   - The forbidden-set compact routing scheme (Theorem 2.7):
//     BuildRouting, including the adaptive failure-discovery routing loop
//     from the paper's Applications section.
//   - Centralized packagings: BuildStaticOracle (the table of all labels)
//     and NewDynamicOracle (the fully dynamic (1+ε) distance oracle per
//     the Abraham–Chechik–Gavoille 2012 transform).
//   - Weighted (road-network) graphs via the subdivision reduction:
//     NewWeightedGraph, BuildWeighted.
//   - A discrete-event simulation of the paper's distributed
//     failure-recovery protocol (flooding, piggybacking, contact
//     discovery): NewNetworkSimulator.
//   - Persistence: SaveScheme/LoadScheme amortize preprocessing to a
//     one-time cost; label stores and region bundles live in the CLI
//     (fsdl labels / fsdl querydb).
//   - The Section 3 lower-bound machinery and an experiment harness that
//     measures every bound of the paper (see cmd/fsdl-bench and
//     EXPERIMENTS.md).
//
// Labels are self-contained, bit-serializable values: Label.Encode and
// DecodeLabel round-trip them through plain byte strings, so they can be
// shipped to the hand-held device or router that answers queries locally,
// exactly as the paper's model demands.
package fsdl
