package fsdl_test

import (
	"bytes"
	"fmt"

	"fsdl"
)

// Example demonstrates the core flow: preprocess once, then answer
// distance queries under arbitrary failures from labels alone.
func Example() {
	g := fsdl.GridGraph2D(5, 5) // vertex (x,y) = y*5+x
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	d, ok := scheme.Distance(0, 24, nil)
	fmt.Println(d, ok)

	faults := fsdl.FaultVertices(6, 12, 18) // fail the diagonal
	d, ok = scheme.Distance(0, 24, faults)
	fmt.Println(d, ok)
	// Output:
	// 8 true
	// 8 true
}

// ExampleBuild shows the derived scheme parameters.
func ExampleBuild() {
	g := fsdl.PathGraph(1024)
	scheme, err := fsdl.Build(g, 1.5)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	p := scheme.Params()
	fmt.Println(p.C, p.LowestLevel(), p.MaxLevel)
	// Output:
	// 2 3 10
}

// ExampleQuery_Distance answers a query from serialized labels — the
// distributed data-structure contract.
func ExampleQuery_Distance() {
	g := fsdl.GridGraph2D(4, 4)
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	// Ship the labels as plain bytes…
	bufS, bitsS := scheme.Label(0).Encode()
	bufT, bitsT := scheme.Label(15).Encode()
	// …and decode them wherever the query is answered.
	ls, _ := fsdl.DecodeLabel(bufS, bitsS)
	lt, _ := fsdl.DecodeLabel(bufT, bitsT)
	q := &fsdl.Query{S: ls, T: lt}
	d, ok := q.Distance()
	fmt.Println(d, ok)
	// Output:
	// 6 true
}

// ExampleBuildRouting routes a packet around a failed router.
func ExampleBuildRouting() {
	g := fsdl.GridGraph2D(3, 3)
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	router := fsdl.BuildRouting(scheme)
	route, ok := router.RouteWithFaults(0, 8, fsdl.FaultVertices(4))
	fmt.Println(ok, route.Length)
	// Output:
	// true 4
}

// ExampleNewDynamicOracle fails and recovers a vertex online.
func ExampleNewDynamicOracle() {
	g := fsdl.PathGraph(6)
	oracle, err := fsdl.NewDynamicOracle(g, 2, 0)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	_, ok, _ := oracle.Distance(0, 5)
	fmt.Println(ok)
	oracle.FailVertex(3)
	_, ok, _ = oracle.Distance(0, 5)
	fmt.Println(ok)
	oracle.RecoverVertex(3)
	_, ok, _ = oracle.Distance(0, 5)
	fmt.Println(ok)
	// Output:
	// true
	// false
	// true
}

// ExampleBuildFailureFree shows the cheap no-fault scheme of Section 2.1.
func ExampleBuildFailureFree() {
	g := fsdl.PathGraph(100)
	ff, err := fsdl.BuildFailureFree(g, 0.1)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	d, ok := fsdl.FFDistance(ff.Label(10), ff.Label(90))
	fmt.Println(d, ok)
	// Output:
	// 80 true
}

// ExampleNewNetworkSimulator replays a failure + packet trace through the
// distributed recovery protocol.
func ExampleNewNetworkSimulator() {
	g := fsdl.GridGraph2D(6, 6)
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	sim := fsdl.NewNetworkSimulator(scheme, fsdl.SimConfig{})
	sim.FailVertexAt(0, 14) // a router dies silently
	sim.InjectPacketAt(1, 0, 35)
	m := sim.Run(1 << 20)
	fmt.Println(m.Delivered, m.Dropped)
	// Output:
	// 1 0
}

// ExampleBuildWeighted answers a weighted road-network query under a road
// closure.
func ExampleBuildWeighted() {
	roads := fsdl.NewWeightedGraph(3)
	roads.AddEdge(0, 1, 4) // slow road
	roads.AddEdge(1, 2, 4)
	roads.AddEdge(0, 2, 2) // shortcut
	scheme, err := fsdl.BuildWeighted(roads, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	d, ok := scheme.Distance(0, 2, nil)
	fmt.Println(d, ok)
	closure := fsdl.NewFaultSet()
	closure.AddEdge(0, 2) // shortcut closed
	d, ok = scheme.Distance(0, 2, closure)
	fmt.Println(d, ok)
	// Output:
	// 2 true
	// 8 true
}

// ExampleSaveScheme persists preprocessing and reopens it.
func ExampleSaveScheme() {
	g := fsdl.PathGraph(32)
	scheme, err := fsdl.Build(g, 2)
	if err != nil {
		fmt.Println("build:", err)
		return
	}
	var buf bytes.Buffer
	if err := fsdl.SaveScheme(&buf, scheme); err != nil {
		fmt.Println("save:", err)
		return
	}
	reopened, err := fsdl.LoadScheme(&buf)
	if err != nil {
		fmt.Println("load:", err)
		return
	}
	d1, _ := scheme.Distance(0, 31, nil)
	d2, _ := reopened.Distance(0, 31, nil)
	fmt.Println(d1 == d2)
	// Output:
	// true
}
