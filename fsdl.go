package fsdl

import (
	"io"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/distsim"
	"fsdl/internal/doubling"
	"fsdl/internal/faultinject"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/oracle"
	"fsdl/internal/routing"
	"fsdl/internal/wgraph"
)

// The public API is a thin facade over the internal packages; the aliases
// below are the library's supported types.
type (
	// Graph is an immutable unweighted undirected graph.
	Graph = graph.Graph
	// GraphBuilder accumulates edges and produces a Graph.
	GraphBuilder = graph.Builder
	// FaultSet is a set of forbidden vertices and/or edges.
	FaultSet = graph.FaultSet

	// Scheme is the preprocessed forbidden-set distance labeling scheme.
	Scheme = core.Scheme
	// Params carries the derived scheme parameters (c, ρ, λ, μ, r).
	Params = core.Params
	// Label is a self-contained forbidden-set distance label.
	Label = core.Label
	// Query is a label-only forbidden-set distance query.
	Query = core.Query
	// QueryResult is the outcome of a robust (degraded-mode-capable)
	// query: Query.DistanceRobust answers with a safe upper bound even
	// when fault labels are missing or corrupt, and flags it Degraded.
	QueryResult = core.Result
	// Trace records how a query was answered (sketch sizes, the winning
	// path).
	Trace = core.Trace
	// SketchEdge is one edge of a query's sketch graph.
	SketchEdge = core.SketchEdge

	// FFScheme is the failure-free labeling scheme of Section 2.1.
	FFScheme = core.FFScheme
	// FFLabel is a failure-free distance label.
	FFLabel = core.FFLabel

	// RoutingScheme is the forbidden-set compact routing scheme.
	RoutingScheme = routing.Scheme
	// Route is the result of routing one packet.
	Route = routing.Route

	// StaticOracle is the centralized table-of-labels distance oracle.
	StaticOracle = oracle.Static
	// DynamicOracle is the fully dynamic (1+ε) distance oracle.
	DynamicOracle = oracle.Dynamic

	// DoublingEstimate is an empirical doubling-dimension measurement.
	DoublingEstimate = doubling.Estimate

	// RouteHeader is the packet header of the routing scheme (the sketch
	// path waypoints, optionally carrying a policy blob).
	RouteHeader = routing.Header

	// NetworkSimulator is the discrete-event simulation of the paper's
	// distributed failure-recovery protocol: contact discovery, flooding,
	// and immediate in-flight rerouting.
	NetworkSimulator = distsim.Simulator
	// SimConfig tunes a network simulation.
	SimConfig = distsim.Config
	// SimMetrics reports a simulation's outcomes.
	SimMetrics = distsim.Metrics
	// ChaosPlan is a seeded, reproducible fault-injection plan for a
	// network simulation (transport drop/dup/delay, router
	// crash/restart, partition/heal); set it as SimConfig.Chaos.
	ChaosPlan = faultinject.Plan

	// WeightedGraph is an integer-weighted graph, supported via the
	// subdivision reduction (the road-network extension the Applications
	// section motivates).
	WeightedGraph = wgraph.WeightedGraph
	// WeightedScheme is the forbidden-set distance labeling scheme for a
	// weighted graph.
	WeightedScheme = wgraph.Scheme
)

// NewGraphBuilder returns a builder for a graph with n vertices.
func NewGraphBuilder(n int) *GraphBuilder { return graph.NewBuilder(n) }

// GraphFromEdges builds a graph directly from an edge list.
func GraphFromEdges(n int, edges [][2]int) (*Graph, error) {
	return graph.FromEdges(n, edges)
}

// ReadGraph parses the text format written by Graph.WriteTo.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.Read(r) }

// NewFaultSet returns an empty forbidden set.
func NewFaultSet() *FaultSet { return graph.NewFaultSet() }

// FaultVertices builds a forbidden set from vertices only.
func FaultVertices(vs ...int) *FaultSet { return graph.FaultVertices(vs...) }

// Build preprocesses g into a forbidden-set distance labeling scheme with
// stretch 1+epsilon (Theorem 2.1).
func Build(g *Graph, epsilon float64) (*Scheme, error) {
	return core.BuildScheme(g, epsilon)
}

// BuildWithWorkers is Build with an explicit worker count for the
// preprocessing pipeline (≤ 0 means GOMAXPROCS). The net hierarchy's
// per-level greedy passes and the level store's per-net-point truncated
// BFS passes run on the pool; the resulting scheme is bit-identical for
// any worker count.
func BuildWithWorkers(g *Graph, epsilon float64, workers int) (*Scheme, error) {
	return core.BuildSchemeWorkers(g, epsilon, workers)
}

// BuildFailureFree preprocesses g into the failure-free labeling scheme of
// Section 2.1 with stretch 1+epsilon.
func BuildFailureFree(g *Graph, epsilon float64) (*FFScheme, error) {
	return core.BuildFFScheme(g, epsilon)
}

// FFDistance answers a failure-free query from two labels alone.
func FFDistance(ls, lt *FFLabel) (int64, bool) { return core.FFDistance(ls, lt) }

// DecodeLabel parses a label serialized by Label.Encode.
func DecodeLabel(buf []byte, nbits int) (*Label, error) {
	return core.DecodeLabel(buf, nbits)
}

// BuildRouting wraps a distance labeling scheme into the forbidden-set
// compact routing scheme of Theorem 2.7.
func BuildRouting(s *Scheme) *RoutingScheme { return routing.New(s) }

// BuildStaticOracle materializes the table-of-labels oracle for g: its
// size is at most n times the label length, and it answers forbidden-set
// queries for any number of faults.
func BuildStaticOracle(g *Graph, epsilon float64) (*StaticOracle, error) {
	return oracle.BuildStatic(g, epsilon)
}

// NewDynamicOracle builds a fully dynamic (1+ε)-approximate distance
// oracle over g: vertices and edges may fail and recover online.
// threshold ≤ 0 selects the default rebuild threshold of ⌈√n⌉ accumulated
// failures.
func NewDynamicOracle(g *Graph, epsilon float64, threshold int) (*DynamicOracle, error) {
	return oracle.NewDynamic(g, epsilon, threshold)
}

// NewNetworkSimulator builds a discrete-event simulation of the
// distributed failure-recovery protocol over a preprocessed scheme.
func NewNetworkSimulator(s *Scheme, cfg SimConfig) *NetworkSimulator {
	return distsim.New(s, cfg)
}

// NewChaosSimulator builds a network simulation under a fault-injection
// plan, validating the plan first. Identical (plan, workload) pairs
// replay byte-for-byte.
func NewChaosSimulator(s *Scheme, cfg SimConfig) (*NetworkSimulator, error) {
	return distsim.NewChaos(s, cfg)
}

// NewWeightedGraph returns an empty integer-weighted graph on n vertices.
func NewWeightedGraph(n int) *WeightedGraph { return wgraph.NewWeightedGraph(n) }

// BuildWeighted preprocesses a weighted graph into a forbidden-set
// distance labeling scheme via the subdivision reduction.
func BuildWeighted(w *WeightedGraph, epsilon float64) (*WeightedScheme, error) {
	return wgraph.BuildScheme(w, epsilon)
}

// SaveScheme persists a preprocessed scheme to w, so the expensive
// preprocessing runs once and the scheme reopens instantly with LoadScheme.
func SaveScheme(w io.Writer, s *Scheme) error { return core.SaveScheme(w, s) }

// LoadScheme reopens a scheme persisted by SaveScheme.
func LoadScheme(r io.Reader) (*Scheme, error) { return core.LoadScheme(r) }

// DecodeRouteHeader parses a header serialized by RouteHeader.Encode.
func DecodeRouteHeader(buf []byte, nbits int) (*RouteHeader, error) {
	return routing.DecodeHeader(buf, nbits)
}

// EstimateDoublingDimension measures the empirical doubling dimension of g
// by greedy ball covering from the given number of sampled centers.
func EstimateDoublingDimension(g *Graph, centers int, rng *rand.Rand) DoublingEstimate {
	return doubling.EstimateDimension(g, centers, rng)
}

// Graph generators for the workload families used throughout the paper's
// setting (bounded doubling dimension) and the experiments.
var (
	// PathGraph returns the n-vertex path P_n (doubling dimension 1).
	PathGraph = gen.Path
	// GridGraph2D returns the w×h grid (doubling dimension ≈ 2).
	GridGraph2D = gen.Grid2D
	// GridGraph returns the d-dimensional grid with the given side
	// lengths (doubling dimension Θ(d)).
	GridGraph = gen.Grid
	// CycleGraph returns the n-vertex cycle.
	CycleGraph = gen.Cycle
	// TorusGraph2D returns the w×h torus.
	TorusGraph2D = gen.Torus2D
	// RandomGeometricGraph returns a connected random geometric graph
	// (the canonical random low-doubling-dimension family) plus its
	// point coordinates.
	RandomGeometricGraph = gen.RandomGeometric
	// RoadNetworkGraph returns a perturbed grid mimicking a road network.
	RoadNetworkGraph = gen.RoadNetwork
	// RandomTreeGraph returns a random recursive tree.
	RandomTreeGraph = gen.RandomTree
)
