package labelstore

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"fsdl/internal/gen"
)

// recordOffsets returns the byte offset where each of the store's
// records begins inside its SaveVertices output, in ascending vertex
// order, plus the ordered vertex list. Offsets are recomputed from the
// container format, so a test can cut or corrupt a *specific* record
// and then assert the salvage report names exactly that vertex.
func recordOffsets(t *testing.T, st *Store, raw []byte) (ids []int, offsets []int) {
	t.Helper()
	uvlen := func(x uint64) int {
		var b [binary.MaxVarintLen64]byte
		return binary.PutUvarint(b[:], x)
	}
	ids = st.Vertices()
	off := len("FSDL2") + uvlen(uint64(st.NumVertices())) + uvlen(uint64(len(ids)))
	for _, v := range ids {
		offsets = append(offsets, off)
		bits, data, ok := st.Raw(v)
		if !ok {
			t.Fatalf("store lost vertex %d", v)
		}
		off += uvlen(uint64(v)) + uvlen(uint64(bits)) + len(data) + 4
	}
	if off != len(raw) {
		t.Fatalf("container arithmetic off: computed %d bytes, file has %d", off, len(raw))
	}
	return ids, offsets
}

// TestSalvageTruncatedMidRecord cuts a SaveVertices file in the middle
// of a known record and asserts the salvage keeps exactly the records
// before the cut — the lost suffix is identified precisely, which is
// what lets a salvaged shard answer "unknown" for the right vertices.
func TestSalvageTruncatedMidRecord(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	full, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ids, offsets := recordOffsets(t, full, buf.Bytes())

	// Cut halfway into record k: k records survive, the rest are gone.
	k := len(ids) / 2
	next := len(buf.Bytes())
	if k+1 < len(offsets) {
		next = offsets[k+1]
	}
	cut := buf.Bytes()[:offsets[k]+(next-offsets[k])/2]

	st, rep, err := LoadPartial(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("salvage of mid-record cut failed outright: %v", err)
	}
	if !rep.Truncated {
		t.Fatalf("mid-record cut not reported as truncation: %+v", rep)
	}
	if len(rep.Corrupt) != 0 {
		t.Fatalf("pure truncation misreported corrupt records %v", rep.Corrupt)
	}
	if rep.Kept != k {
		t.Fatalf("salvage kept %d records, want exactly the %d before the cut", rep.Kept, k)
	}
	for i, v := range ids {
		if got, want := st.Has(v), i < k; got != want {
			t.Fatalf("vertex %d: Has=%v, want %v (cut before record %d)", v, got, want, k)
		}
	}
	// Raw on a lost vertex reports absence rather than stale bytes.
	if _, _, ok := st.Raw(ids[k]); ok {
		t.Fatalf("Raw(%d) returned data for a truncated-away record", ids[k])
	}
}

// TestSalvageCRCMismatchLastRecord flips one payload bit in the final
// record and asserts the salvage report names exactly that vertex —
// framing holds, so nothing else may be dropped or misattributed.
func TestSalvageCRCMismatchLastRecord(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	full, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	ids, _ := recordOffsets(t, full, buf.Bytes())
	last := ids[len(ids)-1]

	// Offset len-5 is the last payload byte (labels are never empty),
	// just before the 4-byte record checksum: the framing stays intact
	// and only the CRC can notice.
	bad := slices.Clone(buf.Bytes())
	bad[len(bad)-5] ^= 0x01

	st, rep, err := LoadPartial(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("salvage failed outright: %v", err)
	}
	if rep.Truncated {
		t.Fatalf("intact framing misreported as truncation: %+v", rep)
	}
	if len(rep.Corrupt) != 1 || rep.Corrupt[0] != int32(last) {
		t.Fatalf("Corrupt = %v, want exactly [%d]", rep.Corrupt, last)
	}
	if rep.Kept != len(ids)-1 {
		t.Fatalf("kept %d records, want %d", rep.Kept, len(ids)-1)
	}
	if _, _, ok := st.Raw(last); ok {
		t.Fatalf("Raw(%d) served a corrupt record", last)
	}
	// Every surviving record is byte-identical to the original.
	for _, v := range ids[:len(ids)-1] {
		wb, wd, _ := full.Raw(v)
		gb, gd, ok := st.Raw(v)
		if !ok || gb != wb || !bytes.Equal(gd, wd) {
			t.Fatalf("surviving record %d altered by salvage", v)
		}
	}
}

// TestPutRepairsEmptyStoreToDigestEquality replays the anti-entropy
// flow at the store level: an empty replacement store, fed records via
// Put, converges to digest equality with its source — and the digest
// disagrees at every intermediate step.
func TestPutRepairsEmptyStoreToDigestEquality(t *testing.T) {
	g := gen.Grid2D(5, 5)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	src, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	dst, err := NewEmpty(src.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewEmpty(0); err == nil {
		t.Fatal("NewEmpty(0) accepted an empty vertex space")
	}

	all := make([]int32, src.NumVertices())
	for i := range all {
		all[i] = int32(i)
	}
	wantDigest, wantPresent, srcMissing := src.DigestVertices(all)
	if wantPresent != len(all) || len(srcMissing) != 0 {
		t.Fatalf("full store digests as incomplete: present=%d missing=%v", wantPresent, srcMissing)
	}
	_, _, missing := dst.DigestVertices(all)
	if len(missing) != len(all) {
		t.Fatalf("empty store misses %d of %d ids", len(missing), len(all))
	}

	for i, v := range src.Vertices() {
		bits, data, _ := src.Raw(v)
		if err := dst.Put(v, bits, data); err != nil {
			t.Fatalf("Put(%d): %v", v, err)
		}
		d, p, m := dst.DigestVertices(all)
		if done := i == len(all)-1; done != (d == wantDigest && len(m) == 0) {
			t.Fatalf("after %d puts: digest match=%v missing=%d present=%d, want convergence only at the end",
				i+1, d == wantDigest, len(m), p)
		}
	}
	if dst.NumLabels() != src.NumLabels() {
		t.Fatalf("repaired store holds %d labels, want %d", dst.NumLabels(), src.NumLabels())
	}

	// Idempotence and conflict rejection.
	bits, data, _ := src.Raw(3)
	if err := dst.Put(3, bits, data); err != nil {
		t.Fatalf("identical re-put rejected: %v", err)
	}
	otherBits, otherData, _ := src.Raw(4)
	if err := dst.Put(3, otherBits, otherData); err == nil {
		t.Fatal("conflicting record for a held vertex accepted")
	}
	// Garbage and out-of-range rejections.
	if err := dst.Put(5, 16, []byte{0xff, 0xff}); err == nil {
		t.Fatal("undecodable record accepted")
	}
	if err := dst.Put(src.NumVertices(), bits, data); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if err := dst.Put(3, bits, data[:0]); err == nil {
		t.Fatal("payload/bit-length mismatch accepted")
	}
}
