package labelstore

import (
	"bytes"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// FuzzLoad asserts Load never panics or over-allocates on arbitrary input.
func FuzzLoad(f *testing.F) {
	b := graph.NewBuilder(9)
	for i := 0; i+1 < 9; i++ {
		b.AddEdge(i, i+1)
	}
	s, err := core.BuildScheme(b.MustBuild(), 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("FSDL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A loaded store must answer membership and size queries and
		// decode labels without panicking.
		st.SizeBits()
		for v := 0; v < st.NumVertices() && v < 16; v++ {
			if st.Has(v) {
				st.Label(v)
			}
		}
	})
}

// FuzzLoadPartial asserts the salvage path never panics, never
// over-allocates, and keeps its report consistent with the store it
// returns on arbitrary (often damaged) input.
func FuzzLoadPartial(f *testing.F) {
	b := graph.NewBuilder(9)
	for i := 0; i+1 < 9; i++ {
		b.AddEdge(i, i+1)
	}
	s, err := core.BuildScheme(b.MustBuild(), 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	damaged := append([]byte(nil), good...)
	damaged[len(damaged)/2] ^= 0xff
	f.Add(damaged)
	f.Add(good[:len(good)*2/3])
	f.Add([]byte("FSDL1"))
	f.Add([]byte("FSDL2\x09\x09"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, rep, err := LoadPartial(bytes.NewReader(data))
		if err != nil {
			if st != nil || rep != nil {
				t.Fatal("failed salvage still returned results")
			}
			return
		}
		if st.NumLabels() != rep.Kept {
			t.Fatalf("store holds %d labels, report says %d kept", st.NumLabels(), rep.Kept)
		}
		if rep.Kept+len(rep.Corrupt) > rep.Total {
			t.Fatalf("report overcounts: %+v", rep)
		}
		if rep.Lost() != 0 && !rep.Truncated && len(rep.Corrupt) == 0 {
			t.Fatalf("records lost without explanation: %+v", rep)
		}
		// Every salvaged record must decode: that is the whole contract.
		for v := 0; v < st.NumVertices() && v < 16; v++ {
			if !st.Has(v) {
				continue
			}
			if _, err := st.Label(v); err != nil {
				t.Fatalf("salvaged label %d does not decode: %v", v, err)
			}
		}
	})
}
