package labelstore

import (
	"bytes"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// FuzzLoad asserts Load never panics or over-allocates on arbitrary input.
func FuzzLoad(f *testing.F) {
	b := graph.NewBuilder(9)
	for i := 0; i+1 < 9; i++ {
		b.AddEdge(i, i+1)
	}
	s, err := core.BuildScheme(b.MustBuild(), 2)
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte("FSDL1"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		st, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// A loaded store must answer membership and size queries and
		// decode labels without panicking.
		st.SizeBits()
		for v := 0; v < st.NumVertices() && v < 16; v++ {
			if st.Has(v) {
				st.Label(v)
			}
		}
	})
}
