package labelstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// A generation is one immutable build of the label store: a directory
// named gen-<id> holding one or more .fsdl container files plus a
// MANIFEST describing them. The live-update compactor writes a new
// generation next to the old one, the manifest makes the swap target
// verifiable before any traffic moves, and the old directory stays on
// disk for rollback until an operator removes it.
//
// The MANIFEST is a small binary file with the same integrity
// discipline as the label container:
//
//	magic "FSDLM1"
//	uvarint generation   (monotone id, 1 is the initial offline build)
//	uvarint n            (vertex-id space every listed file must match)
//	uvarint seq          (mutation-WAL sequence baked into this build)
//	uvarint fileCount
//	fileCount × entries: uvarint nameLen, name bytes,
//	                     uvarint records,
//	                     records>0: uvarint firstVertex, uvarint lastVertex,
//	                     uint32 (IEEE CRC, little-endian, of the file bytes)
//	uint32               (IEEE CRC, little-endian, over everything
//	                     after the magic)
//
// Entries are written in ascending name order, so two manifests over
// the same build are byte-identical.

// ManifestName is the file name a generation's manifest is stored
// under inside its gen-<id> directory.
const ManifestName = "MANIFEST"

// GenerationLabelsFile is the full label store inside a generation
// directory; GenerationGraphFile is the snapshot graph the generation
// was built from (the next build's base, and the restart replay base).
const (
	GenerationLabelsFile = "labels.fsdl"
	GenerationGraphFile  = "graph.txt"
)

var magicManifest = []byte("FSDLM1")

// maxManifestFiles rejects absurd file counts before allocating.
const maxManifestFiles = 1 << 20

// ManifestFile describes one .fsdl container inside a generation.
type ManifestFile struct {
	// Name is the file's name relative to the generation directory.
	Name string
	// Records is how many label records the file holds.
	Records int
	// First and Last bound the vertex ids in the file (inclusive).
	// Both are -1 when the file holds no records.
	First, Last int
	// CRC is the IEEE CRC32 of the file's entire byte content.
	CRC uint32
}

// Manifest describes a label generation: which files make it up, the
// vertex space they serve, and the WAL sequence whose mutations the
// build has baked in.
type Manifest struct {
	Generation uint64
	N          int
	Seq        uint64
	Files      []ManifestFile
}

// File returns the entry for name, or nil when the manifest does not
// list it.
func (m *Manifest) File(name string) *ManifestFile {
	for i := range m.Files {
		if m.Files[i].Name == name {
			return &m.Files[i]
		}
	}
	return nil
}

// WriteManifest serializes m. Entries are sorted by name first, so the
// encoding is deterministic for a given build.
func WriteManifest(w io.Writer, m *Manifest) error {
	if len(m.Files) > maxManifestFiles {
		return fmt.Errorf("labelstore: manifest lists %d files, cap %d", len(m.Files), maxManifestFiles)
	}
	files := slices.Clone(m.Files)
	slices.SortFunc(files, func(a, b ManifestFile) int { return strings.Compare(a.Name, b.Name) })
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicManifest); err != nil {
		return fmt.Errorf("labelstore: write manifest magic: %w", err)
	}
	h := crc32.NewIEEE()
	mw := io.MultiWriter(bw, h)
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := mw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(m.Generation); err != nil {
		return err
	}
	if err := writeUvarint(uint64(m.N)); err != nil {
		return err
	}
	if err := writeUvarint(m.Seq); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(files))); err != nil {
		return err
	}
	var word [4]byte
	for _, f := range files {
		if f.Name == "" || f.Name != filepath.Base(f.Name) {
			return fmt.Errorf("labelstore: manifest entry name %q is not a bare file name", f.Name)
		}
		if err := writeUvarint(uint64(len(f.Name))); err != nil {
			return err
		}
		if _, err := io.WriteString(mw, f.Name); err != nil {
			return err
		}
		if f.Records < 0 {
			return fmt.Errorf("labelstore: manifest entry %q has negative record count", f.Name)
		}
		if err := writeUvarint(uint64(f.Records)); err != nil {
			return err
		}
		if f.Records > 0 {
			if f.First < 0 || f.Last < f.First || f.Last >= m.N {
				return fmt.Errorf("labelstore: manifest entry %q has vertex range [%d,%d] outside [0,%d)", f.Name, f.First, f.Last, m.N)
			}
			if err := writeUvarint(uint64(f.First)); err != nil {
				return err
			}
			if err := writeUvarint(uint64(f.Last)); err != nil {
				return err
			}
		}
		binary.LittleEndian.PutUint32(word[:], f.CRC)
		if _, err := mw.Write(word[:]); err != nil {
			return err
		}
	}
	binary.LittleEndian.PutUint32(word[:], h.Sum32())
	if _, err := bw.Write(word[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadManifest parses a manifest written by WriteManifest, verifying
// its trailing checksum.
func ReadManifest(r io.Reader) (*Manifest, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magicManifest))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("labelstore: read manifest magic: %w", err)
	}
	if string(head) != string(magicManifest) {
		return nil, fmt.Errorf("labelstore: bad manifest magic %q", head)
	}
	h := crc32.NewIEEE()
	tr := io.TeeReader(br, h)
	// binary.ReadUvarint needs a ByteReader; wrap the tee so checksummed
	// bytes are exactly the bytes parsed.
	cr := &byteReader{r: tr}
	readUvarint := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(cr)
		if err != nil {
			return 0, fmt.Errorf("labelstore: read manifest %s: %w", what, err)
		}
		return v, nil
	}
	m := &Manifest{}
	var err error
	if m.Generation, err = readUvarint("generation"); err != nil {
		return nil, err
	}
	n, err := readUvarint("n")
	if err != nil {
		return nil, err
	}
	m.N = int(n)
	if m.Seq, err = readUvarint("seq"); err != nil {
		return nil, err
	}
	count, err := readUvarint("file count")
	if err != nil {
		return nil, err
	}
	if count > maxManifestFiles {
		return nil, fmt.Errorf("labelstore: manifest lists %d files, cap %d", count, maxManifestFiles)
	}
	var word [4]byte
	for i := uint64(0); i < count; i++ {
		nameLen, err := readUvarint("name length")
		if err != nil {
			return nil, err
		}
		if nameLen == 0 || nameLen > 4096 {
			return nil, fmt.Errorf("labelstore: implausible manifest name length %d", nameLen)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(cr, name); err != nil {
			return nil, fmt.Errorf("labelstore: read manifest name: %w", err)
		}
		f := ManifestFile{Name: string(name), First: -1, Last: -1}
		records, err := readUvarint("record count")
		if err != nil {
			return nil, err
		}
		f.Records = int(records)
		if records > 0 {
			first, err := readUvarint("first vertex")
			if err != nil {
				return nil, err
			}
			last, err := readUvarint("last vertex")
			if err != nil {
				return nil, err
			}
			f.First, f.Last = int(first), int(last)
			if f.Last < f.First || f.Last >= m.N {
				return nil, fmt.Errorf("labelstore: manifest entry %q has vertex range [%d,%d] outside [0,%d)", f.Name, f.First, f.Last, m.N)
			}
		}
		if _, err := io.ReadFull(cr, word[:]); err != nil {
			return nil, fmt.Errorf("labelstore: read manifest file checksum: %w", err)
		}
		f.CRC = binary.LittleEndian.Uint32(word[:])
		m.Files = append(m.Files, f)
	}
	sum := h.Sum32()
	if _, err := io.ReadFull(br, word[:]); err != nil {
		return nil, fmt.Errorf("labelstore: read manifest checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(word[:]); got != sum {
		return nil, fmt.Errorf("labelstore: manifest checksum mismatch (file %08x, computed %08x)", got, sum)
	}
	return m, nil
}

type byteReader struct {
	r   io.Reader
	one [1]byte
}

func (b *byteReader) Read(p []byte) (int, error) { return b.r.Read(p) }

func (b *byteReader) ReadByte() (byte, error) {
	if _, err := io.ReadFull(b.r, b.one[:]); err != nil {
		return 0, err
	}
	return b.one[0], nil
}

// FileCRC computes the IEEE CRC32 of a file's bytes — the word a
// manifest entry records for it.
func FileCRC(path string) (uint32, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	h := crc32.NewIEEE()
	if _, err := io.Copy(h, f); err != nil {
		return 0, fmt.Errorf("labelstore: checksum %s: %w", path, err)
	}
	return h.Sum32(), nil
}

// GenerationDirName returns the directory name a generation lives
// under: gen-<id> with the id zero-padded so lexical order is numeric
// order.
func GenerationDirName(gen uint64) string {
	return fmt.Sprintf("gen-%010d", gen)
}

// ParseGenerationDir extracts the generation id from a gen-<id>
// directory name; ok is false for anything else.
func ParseGenerationDir(name string) (gen uint64, ok bool) {
	rest, found := strings.CutPrefix(name, "gen-")
	if !found || rest == "" {
		return 0, false
	}
	gen, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return gen, true
}

// WriteManifestFile writes m to dir/MANIFEST atomically (temp file +
// rename), fsyncing before the rename so a crash never leaves a torn
// manifest as the newest generation's descriptor.
func WriteManifestFile(dir string, m *Manifest) error {
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := WriteManifest(tmp, m); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp.Name(), filepath.Join(dir, ManifestName)); err != nil {
		return err
	}
	// The rename is atomic but not durable until the directory metadata
	// reaches disk; without this a crash can lose a "committed" manifest.
	return FsyncDir(dir)
}

// ReadManifestDir reads and verifies dir/MANIFEST, then checks that
// every listed file is present with a matching checksum — the
// precondition a shard enforces before swapping a generation in.
func ReadManifestDir(dir string) (*Manifest, error) {
	f, err := os.Open(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	m, err := ReadManifest(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("%w (%s)", err, dir)
	}
	for _, mf := range m.Files {
		crc, err := FileCRC(filepath.Join(dir, mf.Name))
		if err != nil {
			return nil, fmt.Errorf("labelstore: generation %d file %s: %w", m.Generation, mf.Name, err)
		}
		if crc != mf.CRC {
			return nil, fmt.Errorf("labelstore: generation %d file %s checksum mismatch (manifest %08x, file %08x)", m.Generation, mf.Name, mf.CRC, crc)
		}
	}
	return m, nil
}

// LatestGeneration scans root for gen-<id> directories with a readable,
// checksum-clean manifest and returns the newest one and its path. ok
// is false when no valid generation exists.
func LatestGeneration(root string) (m *Manifest, dir string, ok bool, err error) {
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, "", false, err
	}
	best := uint64(0)
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		gen, isGen := ParseGenerationDir(e.Name())
		if !isGen || (ok && gen <= best) {
			continue
		}
		cand, err := ReadManifestDir(filepath.Join(root, e.Name()))
		if err != nil {
			continue // a torn or half-written generation is not a candidate
		}
		best, ok = gen, true
		m, dir = cand, filepath.Join(root, e.Name())
	}
	return m, dir, ok, nil
}
