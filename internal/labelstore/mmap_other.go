//go:build !unix

package labelstore

import (
	"io"
	"os"
)

// mapFile on platforms without mmap support falls back to reading the
// file into one flat heap slice: identical semantics, no page-cache
// tiering (Store.Mapped reports false).
func mapFile(f *os.File, size int64) ([]byte, *mmapRegion, error) {
	data := make([]byte, size)
	if _, err := io.ReadFull(io.NewSectionReader(f, 0, size), data); err != nil {
		return nil, nil, err
	}
	return data, nil, nil
}
