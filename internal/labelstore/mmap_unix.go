//go:build unix

package labelstore

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"syscall"
)

// mapFile maps the first size bytes of f read-only. The mapping outlives
// the file descriptor (mmap holds its own reference), so callers may
// close f immediately after. A finalizer on the returned region unmaps
// abandoned mappings.
func mapFile(f *os.File, size int64) ([]byte, *mmapRegion, error) {
	if size <= 0 {
		return nil, nil, fmt.Errorf("labelstore: cannot map empty file")
	}
	if size > math.MaxInt {
		return nil, nil, fmt.Errorf("labelstore: file too large to map (%d bytes)", size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("labelstore: mmap %s: %w", f.Name(), err)
	}
	r := &mmapRegion{data: data, unmap: syscall.Munmap}
	runtime.SetFinalizer(r, func(r *mmapRegion) { r.Close() })
	return data, r, nil
}
