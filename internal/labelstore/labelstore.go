// Package labelstore persists serialized labels: the deployment artifact
// of the paper's model, where a device (a phone with a map region, a
// router) downloads only the labels it needs and answers every distance
// query locally, offline, from those labels alone.
//
// A store file is a simple container:
//
//	magic "FSDL1", version byte
//	uvarint n            (vertex-id space of the graph)
//	uvarint count        (number of labels stored)
//	count × records:     uvarint vertex, uvarint bitLen, bytes ⌈bitLen/8⌉
//
// Stores can hold all n labels (the full oracle) or any subset — e.g. a
// region bundle produced by SaveRegion.
package labelstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

var magic = []byte("FSDL1")

// Save writes the labels of the given vertices (all vertices when nil) to
// w. Labels are extracted from the scheme on the fly, so memory stays
// bounded by one label.
func Save(w io.Writer, s *core.Scheme, vertices []int) error {
	n := s.Graph().NumVertices()
	if vertices == nil {
		vertices = make([]int, n)
		for i := range vertices {
			vertices[i] = i
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return fmt.Errorf("labelstore: write magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(uint64(n)); err != nil {
		return fmt.Errorf("labelstore: write n: %w", err)
	}
	if err := writeUvarint(uint64(len(vertices))); err != nil {
		return fmt.Errorf("labelstore: write count: %w", err)
	}
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, n)
		}
		buf, nbits := s.Label(v).Encode()
		if err := writeUvarint(uint64(v)); err != nil {
			return fmt.Errorf("labelstore: write vertex: %w", err)
		}
		if err := writeUvarint(uint64(nbits)); err != nil {
			return fmt.Errorf("labelstore: write bit length: %w", err)
		}
		if _, err := bw.Write(buf[:(nbits+7)/8]); err != nil {
			return fmt.Errorf("labelstore: write label: %w", err)
		}
	}
	return bw.Flush()
}

// SaveRegion writes the labels of every vertex within the given radius of
// center — the "download the data structure for your region" bundle.
func SaveRegion(w io.Writer, s *core.Scheme, center int, radius int32) error {
	var region []int
	s.Graph().TruncatedBFS(center, radius, func(v, _ int32) {
		region = append(region, int(v))
	})
	return Save(w, s, region)
}

// Store is a loaded label container. Labels are kept serialized and
// decoded on demand, so a Store costs what the file costs.
type Store struct {
	n      int
	labels map[int32]record
}

type record struct {
	bits int
	data []byte
}

// Load reads a store produced by Save.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("labelstore: read magic: %w", err)
	}
	if string(head) != string(magic) {
		return nil, fmt.Errorf("labelstore: bad magic %q", head)
	}
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("labelstore: read n: %w", err)
	}
	count, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("labelstore: read count: %w", err)
	}
	if count > n {
		return nil, fmt.Errorf("labelstore: count %d exceeds n %d", count, n)
	}
	st := &Store{n: int(n), labels: make(map[int32]record, count)}
	for i := uint64(0); i < count; i++ {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("labelstore: read vertex (record %d): %w", i, err)
		}
		if v >= n {
			return nil, fmt.Errorf("labelstore: vertex %d out of range", v)
		}
		bits, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("labelstore: read bit length (record %d): %w", i, err)
		}
		if bits > 1<<40 {
			return nil, fmt.Errorf("labelstore: implausible label size %d bits", bits)
		}
		data := make([]byte, (bits+7)/8)
		if _, err := io.ReadFull(br, data); err != nil {
			return nil, fmt.Errorf("labelstore: read label bytes (record %d): %w", i, err)
		}
		st.labels[int32(v)] = record{bits: int(bits), data: data}
	}
	return st, nil
}

// NumVertices returns the vertex-id space of the underlying graph.
func (st *Store) NumVertices() int { return st.n }

// NumLabels returns how many labels the store holds.
func (st *Store) NumLabels() int { return len(st.labels) }

// Has reports whether the label of v is present.
func (st *Store) Has(v int) bool {
	_, ok := st.labels[int32(v)]
	return ok
}

// SizeBits returns the total stored label payload in bits.
func (st *Store) SizeBits() int64 {
	var total int64
	for _, rec := range st.labels {
		total += int64(rec.bits)
	}
	return total
}

// Label decodes the label of v.
func (st *Store) Label(v int) (*core.Label, error) {
	rec, ok := st.labels[int32(v)]
	if !ok {
		return nil, fmt.Errorf("labelstore: no label for vertex %d", v)
	}
	return core.DecodeLabel(rec.data, rec.bits)
}

// Distance answers the forbidden-set query (src, dst, F) from stored
// labels only. It fails with an error when a needed label is missing from
// the store (e.g. a query leaving the downloaded region).
func (st *Store) Distance(src, dst int, faults *graph.FaultSet) (int64, bool, error) {
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return 0, false, nil
	}
	ls, err := st.Label(src)
	if err != nil {
		return 0, false, err
	}
	lt, err := st.Label(dst)
	if err != nil {
		return 0, false, err
	}
	q := &core.Query{S: ls, T: lt}
	for _, f := range faults.Vertices() {
		lf, err := st.Label(f)
		if err != nil {
			return 0, false, err
		}
		q.VertexFaults = append(q.VertexFaults, lf)
	}
	for _, e := range faults.Edges() {
		la, err := st.Label(e[0])
		if err != nil {
			return 0, false, err
		}
		lb, err := st.Label(e[1])
		if err != nil {
			return 0, false, err
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*core.Label{la, lb})
	}
	d, ok := q.Distance()
	return d, ok, nil
}

// Merge combines label stores over the same graph (e.g. two adjacent
// region bundles downloaded separately) into one. Overlapping labels must
// be identical; conflicting stores (different graphs or schemes) are
// rejected.
func Merge(stores ...*Store) (*Store, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("labelstore: nothing to merge")
	}
	out := &Store{n: stores[0].n, labels: map[int32]record{}}
	for si, st := range stores {
		if st.n != out.n {
			return nil, fmt.Errorf("labelstore: store %d has n=%d, want %d", si, st.n, out.n)
		}
		for v, rec := range st.labels {
			if prev, ok := out.labels[v]; ok {
				if prev.bits != rec.bits || !bytesEqual(prev.data, rec.data) {
					return nil, fmt.Errorf("labelstore: conflicting labels for vertex %d", v)
				}
				continue
			}
			out.labels[v] = rec
		}
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Save writes the store back out in the container format, so merged
// bundles can be redistributed.
func (st *Store) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic); err != nil {
		return fmt.Errorf("labelstore: write magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(uint64(st.n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(st.labels))); err != nil {
		return err
	}
	// Deterministic order: ascending vertex id.
	ids := make([]int, 0, len(st.labels))
	for v := range st.labels {
		ids = append(ids, int(v))
	}
	sort.Ints(ids)
	for _, v := range ids {
		rec := st.labels[int32(v)]
		if err := writeUvarint(uint64(v)); err != nil {
			return err
		}
		if err := writeUvarint(uint64(rec.bits)); err != nil {
			return err
		}
		if _, err := bw.Write(rec.data); err != nil {
			return err
		}
	}
	return bw.Flush()
}
