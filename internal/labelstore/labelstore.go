// Package labelstore persists serialized labels: the deployment artifact
// of the paper's model, where a device (a phone with a map region, a
// router) downloads only the labels it needs and answers every distance
// query locally, offline, from those labels alone.
//
// A store file is a simple container (current version "FSDL2"):
//
//	magic "FSDL2"
//	uvarint n            (vertex-id space of the graph)
//	uvarint count        (number of labels stored)
//	count × records:     uvarint vertex, uvarint bitLen, bytes ⌈bitLen/8⌉,
//	                     crc32 (IEEE, little-endian, over the record's
//	                     vertex+bitLen varints and payload bytes)
//
// Version "FSDL1" is the same container without the per-record checksums;
// Load and LoadPartial read both, Save always writes FSDL2. The checksums
// turn silent bit rot into detected corruption: Load fails loudly, while
// LoadPartial salvages every intact record and reports what was lost.
//
// Version "FSDL3" (format3.go, mmapstore.go) is the out-of-core sibling:
// a page-aligned random-access layout with the record index up front,
// opened via Open/OpenHeap/OpenPartial and served from an mmap of the
// file, optionally with compressed record payloads. All versions carry
// the same canonical record bytes (Label.Encode output), so digests,
// the cluster wire format and Put interoperate across them.
//
// Stores can hold all n labels (the full oracle) or any subset — e.g. a
// region bundle produced by SaveRegion.
package labelstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/lru"
)

var (
	magicV1 = []byte("FSDL1")
	magicV2 = []byte("FSDL2")
)

// maxLabelBits rejects absurd bit-length fields before allocating.
const maxLabelBits = 1 << 40

// writeRecord emits one v2 record: the vertex and bit-length varints, the
// payload, then a CRC32-IEEE over all of the preceding record bytes.
func writeRecord(bw *bufio.Writer, v int, bits int, data []byte) error {
	var scratch [binary.MaxVarintLen64]byte
	h := crc32.NewIEEE()
	mw := io.MultiWriter(bw, h)
	k := binary.PutUvarint(scratch[:], uint64(v))
	if _, err := mw.Write(scratch[:k]); err != nil {
		return err
	}
	k = binary.PutUvarint(scratch[:], uint64(bits))
	if _, err := mw.Write(scratch[:k]); err != nil {
		return err
	}
	if _, err := mw.Write(data); err != nil {
		return err
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], h.Sum32())
	_, err := bw.Write(sum[:])
	return err
}

// readHeader consumes the magic and the n/count varints, returning the
// container version (1 or 2).
func readHeader(br *bufio.Reader) (version int, n, count uint64, err error) {
	head := make([]byte, len(magicV1))
	if _, err = io.ReadFull(br, head); err != nil {
		return 0, 0, 0, fmt.Errorf("labelstore: read magic: %w", err)
	}
	switch string(head) {
	case string(magicV1):
		version = 1
	case string(magicV2):
		version = 2
	default:
		return 0, 0, 0, fmt.Errorf("labelstore: bad magic %q", head)
	}
	if n, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, fmt.Errorf("labelstore: read n: %w", err)
	}
	if count, err = binary.ReadUvarint(br); err != nil {
		return 0, 0, 0, fmt.Errorf("labelstore: read count: %w", err)
	}
	if count > n {
		return 0, 0, 0, fmt.Errorf("labelstore: count %d exceeds n %d", count, n)
	}
	return version, n, count, nil
}

// readRecord reads one record. A non-nil error means the stream framing
// itself is broken (truncation, or a corrupted length field that makes
// every later byte unreliable); crcOK=false means the framing held but
// the v2 checksum did not match. v1 records have no checksum and always
// report crcOK=true.
func readRecord(br *bufio.Reader, n uint64, withCRC bool) (v uint64, rec record, crcOK bool, err error) {
	v, err = binary.ReadUvarint(br)
	if err != nil {
		return 0, record{}, false, fmt.Errorf("labelstore: read vertex: %w", err)
	}
	if v >= n {
		return 0, record{}, false, fmt.Errorf("labelstore: vertex %d out of range", v)
	}
	bits, err := binary.ReadUvarint(br)
	if err != nil {
		return 0, record{}, false, fmt.Errorf("labelstore: read bit length: %w", err)
	}
	if bits > maxLabelBits {
		return 0, record{}, false, fmt.Errorf("labelstore: implausible label size %d bits", bits)
	}
	data := make([]byte, (bits+7)/8)
	if _, err := io.ReadFull(br, data); err != nil {
		return 0, record{}, false, fmt.Errorf("labelstore: read label bytes: %w", err)
	}
	crcOK = true
	if withCRC {
		var sum [4]byte
		if _, err := io.ReadFull(br, sum[:]); err != nil {
			return 0, record{}, false, fmt.Errorf("labelstore: read checksum: %w", err)
		}
		crcOK = recordChecksum(int(v), int(bits), data) == binary.LittleEndian.Uint32(sum[:])
	}
	return v, record{bits: int(bits), data: data}, crcOK, nil
}

// recordChecksum is the per-record CRC32-IEEE the container format
// stores after each record: over the vertex varint, the bit-length
// varint and the payload. The anti-entropy digests reuse it, so "two
// replicas hold the same record" is checked by the exact integrity
// word that already guards the record on disk.
func recordChecksum(v int, bits int, data []byte) uint32 {
	var scratch [binary.MaxVarintLen64]byte
	h := crc32.NewIEEE()
	k := binary.PutUvarint(scratch[:], uint64(v))
	h.Write(scratch[:k])
	k = binary.PutUvarint(scratch[:], uint64(bits))
	h.Write(scratch[:k])
	h.Write(data)
	return h.Sum32()
}

// Save writes the labels of the given vertices (all vertices when nil) to
// w. Labels are extracted from the scheme on the fly, so memory stays
// bounded by one label.
func Save(w io.Writer, s *core.Scheme, vertices []int) error {
	n := s.Graph().NumVertices()
	if vertices == nil {
		vertices = make([]int, n)
		for i := range vertices {
			vertices[i] = i
		}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2); err != nil {
		return fmt.Errorf("labelstore: write magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(uint64(n)); err != nil {
		return fmt.Errorf("labelstore: write n: %w", err)
	}
	if err := writeUvarint(uint64(len(vertices))); err != nil {
		return fmt.Errorf("labelstore: write count: %w", err)
	}
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, n)
		}
	}
	// Extract in parallel chunks via the scheme's bulk API: memory stays
	// bounded by one chunk of labels while extraction uses every core.
	const chunk = 256
	for off := 0; off < len(vertices); off += chunk {
		part := vertices[off:min(off+chunk, len(vertices))]
		labels := s.Labels(part)
		for i, v := range part {
			buf, nbits := labels[i].Encode()
			if err := writeRecord(bw, v, nbits, buf[:(nbits+7)/8]); err != nil {
				return fmt.Errorf("labelstore: write record for vertex %d: %w", v, err)
			}
		}
	}
	return bw.Flush()
}

// SaveSpliced writes the labels of the given vertices (all when nil) for
// scheme s, extracting only the vertices listed in dirty and copying every
// other record's serialized bytes verbatim from prev — the incremental
// compaction path, where core.BuildSchemeIncremental has proven the labels
// of non-dirty vertices byte-identical to the previous generation's. The
// output is byte-identical to Save(w, s, vertices) at a fraction of the
// extraction cost. A non-dirty vertex absent from prev is an error.
func SaveSpliced(w io.Writer, s *core.Scheme, prev *Store, dirty []int32, vertices []int) error {
	n := s.Graph().NumVertices()
	if prev.NumVertices() != n {
		return fmt.Errorf("labelstore: splice base has n=%d, scheme has %d", prev.NumVertices(), n)
	}
	if vertices == nil {
		vertices = make([]int, n)
		for i := range vertices {
			vertices[i] = i
		}
	}
	isDirty := make(map[int32]struct{}, len(dirty))
	for _, v := range dirty {
		isDirty[v] = struct{}{}
	}
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2); err != nil {
		return fmt.Errorf("labelstore: write magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(uint64(n)); err != nil {
		return fmt.Errorf("labelstore: write n: %w", err)
	}
	if err := writeUvarint(uint64(len(vertices))); err != nil {
		return fmt.Errorf("labelstore: write count: %w", err)
	}
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, n)
		}
	}
	// Same chunked shape as Save, but each chunk bulk-extracts only its
	// dirty members; clean records are copied bytes.
	const chunk = 256
	part := make([]int, 0, chunk)
	for off := 0; off < len(vertices); off += chunk {
		span := vertices[off:min(off+chunk, len(vertices))]
		part = part[:0]
		for _, v := range span {
			if _, ok := isDirty[int32(v)]; ok {
				part = append(part, v)
			}
		}
		labels := s.Labels(part)
		li := 0
		for _, v := range span {
			if li < len(part) && part[li] == v {
				buf, nbits := labels[li].Encode()
				li++
				if err := writeRecord(bw, v, nbits, buf[:(nbits+7)/8]); err != nil {
					return fmt.Errorf("labelstore: write record for vertex %d: %w", v, err)
				}
				continue
			}
			bits, data, ok := prev.Raw(v)
			if !ok {
				return fmt.Errorf("labelstore: splice base is missing clean vertex %d", v)
			}
			if err := writeRecord(bw, v, bits, data); err != nil {
				return fmt.Errorf("labelstore: write record for vertex %d: %w", v, err)
			}
		}
	}
	return bw.Flush()
}

// SaveRegion writes the labels of every vertex within the given radius of
// center — the "download the data structure for your region" bundle.
func SaveRegion(w io.Writer, s *core.Scheme, center int, radius int32) error {
	var region []int
	sc := graph.NewBFSScratch(s.Graph().NumVertices())
	sc.TruncatedBFS(s.Graph(), center, radius, func(v, _ int32) {
		region = append(region, int(v))
	})
	return Save(w, s, region)
}

// Store is a loaded label container. Labels are kept serialized and
// decoded on demand, so a Store costs what the file costs; a small
// sharded LRU keeps the hottest decoded labels (query endpoints, popular
// fault sets) from being re-decoded on every query.
//
// A Store is safe for concurrent use, including concurrent Put — the
// anti-entropy repair path installs records into a live shard's store
// while queries read it.
type Store struct {
	n      int
	format int // container version: 1/2 heap streams, 3 mmap-first files

	// labels is the heap overlay: everything an FSDL1/2 load parsed, plus
	// records Put installed (repair ingest). For an FSDL3-backed store it
	// shadows the on-disk copy — a healed record wins over a corrupt one.
	mu     sync.RWMutex
	labels map[int32]record

	// f3 is the FSDL3 backing (mmap'd or flat heap bytes), nil otherwise.
	f3 *file3
	// rawCache memoizes canonical transcodes of compressed FSDL3 records
	// for the wire-serving path; nil unless the backing is compressed.
	rawCache *lru.Cache[int32, record]

	cache       *lru.Cache[int32, *core.Label]
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
}

type record struct {
	bits int
	data []byte
}

// DefaultDecodedCacheSize bounds the decoded-label LRU of a Store.
const DefaultDecodedCacheSize = 1024

func newStore(n int, count uint64) *Store {
	return &Store{
		n:      n,
		labels: make(map[int32]record, count),
		cache:  lru.New[int32, *core.Label](DefaultDecodedCacheSize, 8, func(k int32) uint64 { return lru.HashU32(uint32(k)) }),
	}
}

// LabelCacheStats reports the decoded-label cache's cumulative hit/miss
// counts.
func (st *Store) LabelCacheStats() (hits, misses int64) {
	return st.cacheHits.Load(), st.cacheMisses.Load()
}

// Load reads a store produced by Save (either container version). It is
// strict: any framing error or checksum mismatch fails the whole load.
// Use LoadPartial to salvage what survives from a damaged file.
func Load(r io.Reader) (*Store, error) {
	br := bufio.NewReader(r)
	version, n, count, err := readHeader(br)
	if err != nil {
		return nil, err
	}
	st := newStore(int(n), count)
	st.format = version
	for i := uint64(0); i < count; i++ {
		v, rec, crcOK, err := readRecord(br, n, version == 2)
		if err != nil {
			return nil, fmt.Errorf("%w (record %d)", err, i)
		}
		if !crcOK {
			return nil, fmt.Errorf("labelstore: checksum mismatch on record %d (vertex %d)", i, v)
		}
		st.labels[int32(v)] = rec
	}
	return st, nil
}

// SalvageReport describes what LoadPartial recovered from a damaged
// store file.
type SalvageReport struct {
	// Version is the container version that was read (1, 2 or 3).
	Version int
	// Total is the record count the header declared; Kept is how many
	// records survived intact.
	Total, Kept int
	// Corrupt lists the vertices of records that were skipped because
	// their checksum failed or their payload did not decode (ascending).
	// Vertex ids here come from possibly-damaged records and identify
	// where in the file the damage sat, not necessarily a real vertex.
	Corrupt []int32
	// Truncated is true when the record framing itself broke (short file
	// or corrupted length fields): everything from the break onward was
	// abandoned, and the unread records are not listed in Corrupt.
	Truncated bool
}

// Lost returns how many declared records were not salvaged.
func (sr *SalvageReport) Lost() int { return sr.Total - sr.Kept }

// LoadPartial reads as much of a (possibly damaged) store as possible:
// records whose checksum fails or whose payload does not decode are
// skipped, and a framing break abandons the remainder of the file. The
// error is non-nil only when the header itself is unreadable — a damaged
// body yields a usable Store plus a report of what was lost. Queries
// needing a lost label can still be answered conservatively via
// DistanceRobust.
func LoadPartial(r io.Reader) (*Store, *SalvageReport, error) {
	br := bufio.NewReader(r)
	version, n, count, err := readHeader(br)
	if err != nil {
		return nil, nil, err
	}
	st := newStore(int(n), count)
	st.format = version
	rep := &SalvageReport{Version: version, Total: int(count)}
	for i := uint64(0); i < count; i++ {
		v, rec, crcOK, err := readRecord(br, n, version == 2)
		if err != nil {
			rep.Truncated = true
			break
		}
		if !crcOK {
			rep.Corrupt = append(rep.Corrupt, int32(v))
			continue
		}
		if _, err := core.DecodeLabel(rec.data, rec.bits); err != nil {
			rep.Corrupt = append(rep.Corrupt, int32(v))
			continue
		}
		st.labels[int32(v)] = rec
		rep.Kept++
	}
	slices.Sort(rep.Corrupt)
	return st, rep, nil
}

// NumVertices returns the vertex-id space of the underlying graph.
func (st *Store) NumVertices() int { return st.n }

// NumLabels returns how many servable labels the store holds: heap
// overlay records plus intact on-disk records (known-corrupt, unhealed
// FSDL3 records are not counted).
func (st *Store) NumLabels() int {
	st.mu.RLock()
	n := len(st.labels)
	st.mu.RUnlock()
	if st.f3 != nil {
		n += st.f3.idxCount - st.f3.corruptCount()
	}
	return n
}

// Has reports whether the label of v is present (in the heap overlay or
// the on-disk index) and not known corrupt.
func (st *Store) Has(v int) bool {
	st.mu.RLock()
	_, ok := st.labels[int32(v)]
	st.mu.RUnlock()
	if ok || st.f3 == nil {
		return ok
	}
	e, slot, ok := st.f3.find(int32(v))
	return ok && st.f3.verify(e, slot)
}

// Vertices returns the sorted vertex ids whose labels the store holds —
// for a partition store, the ring slice it is responsible for.
func (st *Store) Vertices() []int {
	st.mu.RLock()
	ids := make([]int, 0, len(st.labels))
	for v := range st.labels {
		ids = append(ids, int(v))
	}
	st.mu.RUnlock()
	if st.f3 != nil {
		st.f3.mu.RLock()
		for i := 0; i < st.f3.idxCount; i++ {
			e := st.f3.entry(i)
			if _, bad := st.f3.corrupt[int32(e.vertex)]; !bad {
				ids = append(ids, int(e.vertex))
			}
		}
		st.f3.mu.RUnlock()
	}
	slices.Sort(ids)
	return slices.Compact(ids)
}

// Raw returns the canonical serialized label record of v without
// decoding it — the shard-serving path, which ships records over the
// wire and leaves decoding to the frontend. For an uncompressed FSDL3
// backing the returned bytes alias the mapping (zero copy); compressed
// records are transcoded to canonical form (memoized). The returned
// bytes are shared and must not be mutated.
func (st *Store) Raw(v int) (bits int, data []byte, ok bool) {
	st.mu.RLock()
	rec, ok := st.labels[int32(v)]
	st.mu.RUnlock()
	if ok {
		return rec.bits, rec.data, true
	}
	if st.f3 == nil {
		return 0, nil, false
	}
	return st.rawFrom3(int32(v))
}

// SizeBits returns the total stored label payload in canonical bits
// (known-corrupt records excluded — their length fields are not
// trustworthy).
func (st *Store) SizeBits() int64 {
	var total int64
	st.mu.RLock()
	shadowed := make(map[int32]struct{}, len(st.labels))
	for v, rec := range st.labels {
		total += int64(rec.bits)
		shadowed[v] = struct{}{}
	}
	st.mu.RUnlock()
	if st.f3 != nil {
		st.f3.mu.RLock()
		for i := 0; i < st.f3.idxCount; i++ {
			e := st.f3.entry(i)
			if _, bad := st.f3.corrupt[int32(e.vertex)]; bad {
				continue
			}
			if _, dup := shadowed[int32(e.vertex)]; !dup {
				total += int64(e.bits)
			}
		}
		st.f3.mu.RUnlock()
	}
	return total
}

// Label decodes the label of v, serving repeated lookups from the
// decoded-label cache. The returned label is shared and must not be
// mutated.
func (st *Store) Label(v int) (*core.Label, error) {
	if l, ok := st.cache.Get(int32(v)); ok {
		st.cacheHits.Add(1)
		return l, nil
	}
	var l *core.Label
	st.mu.RLock()
	rec, ok := st.labels[int32(v)]
	st.mu.RUnlock()
	if ok {
		var err error
		if l, err = core.DecodeLabel(rec.data, rec.bits); err != nil {
			return nil, err
		}
	} else if st.f3 != nil {
		var err error
		if l, err = st.label3(int32(v)); err != nil {
			return nil, err
		}
	} else {
		return nil, fmt.Errorf("labelstore: no label for vertex %d", v)
	}
	st.cacheMisses.Add(1)
	st.cache.Put(int32(v), l)
	return l, nil
}

// Distance answers the forbidden-set query (src, dst, F) from stored
// labels only. It fails with an error when a needed label is missing from
// the store (e.g. a query leaving the downloaded region).
func (st *Store) Distance(src, dst int, faults *graph.FaultSet) (int64, bool, error) {
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return 0, false, nil
	}
	ls, err := st.Label(src)
	if err != nil {
		return 0, false, err
	}
	lt, err := st.Label(dst)
	if err != nil {
		return 0, false, err
	}
	q := &core.Query{S: ls, T: lt}
	for _, f := range faults.Vertices() {
		lf, err := st.Label(f)
		if err != nil {
			return 0, false, err
		}
		q.VertexFaults = append(q.VertexFaults, lf)
	}
	for _, e := range faults.Edges() {
		la, err := st.Label(e[0])
		if err != nil {
			return 0, false, err
		}
		lb, err := st.Label(e[1])
		if err != nil {
			return 0, false, err
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*core.Label{la, lb})
	}
	d, ok := q.Distance()
	return d, ok, nil
}

// DistanceRobust answers (src, dst, F) tolerating missing or corrupt
// fault labels: faults whose labels are absent from the store (a salvage
// skipped them, or the query left the downloaded region) or fail to
// decode are demoted to the degraded tier by vertex id, yielding a
// conservative upper bound on d_{G\F} with Result.Degraded set instead
// of an error. budget caps the decode work (≤ 0 means unlimited). The
// error is non-nil only when an endpoint label itself is unavailable —
// without those nothing can be answered.
func (st *Store) DistanceRobust(src, dst int, faults *graph.FaultSet, budget int) (core.Result, error) {
	q, err := st.robustQuery(src, dst, faults, budget)
	if err != nil || q == nil {
		return core.Result{}, err
	}
	return q.DistanceRobust(), nil
}

// DistanceRobustPath is DistanceRobust, additionally reporting the
// witness walk when the query connects: a vertex sequence from src to
// dst whose hops are sketch edges, each realizable in G\F at exactly
// its weight, summing to Result.Dist. The path is nil when the
// endpoints are disconnected (or forbidden).
func (st *Store) DistanceRobustPath(src, dst int, faults *graph.FaultSet, budget int) (core.Result, []int32, error) {
	q, err := st.robustQuery(src, dst, faults, budget)
	if err != nil || q == nil {
		return core.Result{}, nil, err
	}
	var dec core.Decoder
	defer dec.Release()
	res, path := dec.DistanceRobustPath(q, nil)
	return res, path, nil
}

// robustQuery assembles the degraded-tolerant query for (src, dst, F):
// fault labels absent from the store are demoted to the degraded tier
// by vertex id. A nil query (with nil error) means a forbidden
// endpoint — no distance exists, exactly.
func (st *Store) robustQuery(src, dst int, faults *graph.FaultSet, budget int) (*core.Query, error) {
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return nil, nil // forbidden endpoint: no distance exists
	}
	ls, err := st.Label(src)
	if err != nil {
		return nil, err
	}
	lt, err := st.Label(dst)
	if err != nil {
		return nil, err
	}
	q := &core.Query{S: ls, T: lt, Budget: budget}
	fv := faults.Vertices()
	slices.Sort(fv)
	for _, f := range fv {
		lf, err := st.Label(f)
		if err != nil {
			q.DegradedVertexFaults = append(q.DegradedVertexFaults, int32(f))
			continue
		}
		q.VertexFaults = append(q.VertexFaults, lf)
	}
	edges := faults.Edges()
	slices.SortFunc(edges, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for _, e := range edges {
		la, errA := st.Label(e[0])
		lb, errB := st.Label(e[1])
		if errA != nil || errB != nil {
			q.DegradedEdgeFaults = append(q.DegradedEdgeFaults, [2]int32{int32(e[0]), int32(e[1])})
			continue
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*core.Label{la, lb})
	}
	return q, nil
}

// Merge combines label stores over the same graph (e.g. two adjacent
// region bundles downloaded separately) into one. Overlapping labels must
// be identical; conflicting stores (different graphs or schemes) are
// rejected.
func Merge(stores ...*Store) (*Store, error) {
	if len(stores) == 0 {
		return nil, fmt.Errorf("labelstore: nothing to merge")
	}
	out := newStore(stores[0].n, 0)
	for si, st := range stores {
		if st.n != out.n {
			return nil, fmt.Errorf("labelstore: store %d has n=%d, want %d", si, st.n, out.n)
		}
		// Iterate via Vertices/Raw so FSDL3-backed stores merge too (the
		// merged result is a heap store of canonical records).
		for _, v := range st.Vertices() {
			bits, data, ok := st.Raw(v)
			if !ok {
				continue // discovered corrupt mid-merge: salvage semantics, skip
			}
			if st.f3 != nil {
				// Raw bytes from an FSDL3 backing may alias the mmap (or
				// the shared transcode cache); the merged store must own
				// its records — it can outlive the source's mapping.
				data = slices.Clone(data)
			}
			if prev, ok := out.labels[int32(v)]; ok {
				if prev.bits != bits || !bytesEqual(prev.data, data) {
					return nil, fmt.Errorf("labelstore: conflicting labels for vertex %d", v)
				}
				continue
			}
			out.labels[int32(v)] = record{bits: bits, data: data}
		}
	}
	return out, nil
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Save writes the store back out in the container format, so merged
// bundles can be redistributed.
func (st *Store) Save(w io.Writer) error {
	return st.SaveVertices(w, st.Vertices())
}

// SaveVertices writes a store holding only the given vertices — the
// partition path: `fsdl partition` calls this once per shard with that
// shard's ring slice. Records are written in ascending vertex order
// (duplicates collapsed), so the output is deterministic and the union
// of a full partitioning re-serves every record byte-identically. A
// vertex without a label in this store is an error.
func (st *Store) SaveVertices(w io.Writer, vertices []int) error {
	ids := slices.Clone(vertices)
	slices.Sort(ids)
	ids = slices.Compact(ids)
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magicV2); err != nil {
		return fmt.Errorf("labelstore: write magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	if err := writeUvarint(uint64(st.n)); err != nil {
		return err
	}
	if err := writeUvarint(uint64(len(ids))); err != nil {
		return err
	}
	for _, v := range ids {
		bits, data, ok := st.Raw(v)
		if !ok {
			return fmt.Errorf("labelstore: no label for vertex %d", v)
		}
		if err := writeRecord(bw, v, bits, data); err != nil {
			return fmt.Errorf("labelstore: write record for vertex %d: %w", v, err)
		}
	}
	return bw.Flush()
}

// NewEmpty returns a store over an n-vertex space holding no labels —
// the boot state of a replacement shard, which joins the ring empty and
// is filled by anti-entropy repair.
func NewEmpty(n int) (*Store, error) {
	if n <= 0 {
		return nil, fmt.Errorf("labelstore: empty store needs a positive vertex space, got %d", n)
	}
	return newStore(n, 0), nil
}

// Put installs the serialized record of v — the repair-ingest path. The
// payload must decode as a label (a corrupt transfer is rejected here,
// before it can be served onward) and is copied. Re-putting an identical
// record is an idempotent no-op; a *different* record for a held vertex
// is rejected, because replicas of a vertex are byte-identical by
// construction (the partitioner serializes deterministically), so a
// conflict means corruption somewhere upstream, not a legitimate update.
func (st *Store) Put(v int, bits int, data []byte) error {
	if v < 0 || v >= st.n {
		return fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, st.n)
	}
	if bits < 0 || bits > maxLabelBits {
		return fmt.Errorf("labelstore: implausible label size %d bits for vertex %d", bits, v)
	}
	if want := (bits + 7) / 8; len(data) != want {
		return fmt.Errorf("labelstore: vertex %d record carries %d bytes, %d bits need %d", v, len(data), bits, want)
	}
	if _, err := core.DecodeLabel(data, bits); err != nil {
		return fmt.Errorf("labelstore: record for vertex %d does not decode: %w", v, err)
	}
	// An intact on-disk FSDL3 copy is authoritative: identical re-puts are
	// idempotent no-ops, different bytes are a conflict. A *corrupt*
	// on-disk copy is healable — the put lands in the heap overlay, which
	// shadows the damaged record from then on.
	if st.f3 != nil && !st.inOverlay(int32(v)) {
		if pbits, pdata, ok := st.rawFrom3(int32(v)); ok {
			if pbits == bits && bytesEqual(pdata, data) {
				return nil
			}
			return fmt.Errorf("labelstore: conflicting record for vertex %d", v)
		}
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if prev, ok := st.labels[int32(v)]; ok {
		if prev.bits == bits && bytesEqual(prev.data, data) {
			return nil
		}
		return fmt.Errorf("labelstore: conflicting record for vertex %d", v)
	}
	st.labels[int32(v)] = record{bits: bits, data: slices.Clone(data)}
	return nil
}

// DigestVertices computes the anti-entropy digest of the given vertex
// ids: a CRC32-IEEE folded over the per-record checksums of the records
// present, in ascending vertex order (duplicates collapsed), plus the
// sorted ids the store does not hold. Intact replicas of a vertex are
// byte-identical, so two stores are digest-equal over the same ids iff
// they hold exactly the same subset of them — which makes digest
// equality across replicas the convergence test for repair.
func (st *Store) DigestVertices(ids []int32) (digest uint32, present int, missing []int32) {
	sorted := slices.Clone(ids)
	slices.Sort(sorted)
	sorted = slices.Compact(sorted)
	h := crc32.NewIEEE()
	var word [4]byte
	for _, v := range sorted {
		st.mu.RLock()
		rec, ok := st.labels[v]
		st.mu.RUnlock()
		var sum uint32
		if ok {
			sum = recordChecksum(int(v), rec.bits, rec.data)
		} else if st.f3 != nil {
			// For an uncompressed FSDL3 backing the verified index CRC is
			// already the digest word — the on-disk index doubles as a
			// precomputed digest table. Verification here also means the
			// digest audit detects bit rot in mapped payloads, so
			// anti-entropy repair can heal rotten records in place.
			if sum, ok = st.digestWord3(v); !ok {
				missing = append(missing, v)
				continue
			}
		} else {
			missing = append(missing, v)
			continue
		}
		binary.LittleEndian.PutUint32(word[:], sum)
		h.Write(word[:])
		present++
	}
	return h.Sum32(), present, missing
}
