package labelstore

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
)

// FsyncDir fsyncs a directory, making previously-renamed entries in it
// durable. Every temp+rename commit point (generation directories,
// MANIFEST files, shard persists) must call this on the parent after
// the rename — POSIX makes the rename atomic but not durable, so a
// crash before the directory metadata reaches disk can silently lose a
// "committed" file even though the data blocks of the renamed file were
// fsynced. No-op on platforms whose directory handles reject Sync.
func FsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("labelstore: open dir for fsync: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		if runtime.GOOS == "windows" {
			return nil // directory handles are not syncable there
		}
		return fmt.Errorf("labelstore: fsync dir %s: %w", dir, err)
	}
	return nil
}

// FsyncParentDir is FsyncDir on the parent directory of path — the
// common shape at commit points, which rename into the parent.
func FsyncParentDir(path string) error {
	return FsyncDir(filepath.Dir(path))
}
