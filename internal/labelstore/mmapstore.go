// Out-of-core store backing: an FSDL3 file opened here is not parsed
// into heap maps — the whole file is mmap'd (or, on request, read into
// one flat heap slice) and records are served by binary-searching the
// on-disk index directly in the mapping. The OS page cache does the
// tiering: hot index and record pages stay resident, cold ones are
// just disk, and store size is bounded by disk rather than RAM.
//
// Integrity is verified lazily: the header and index structure are
// checked at open (cheap, O(count) over index bytes), while each
// record's CRC is checked the first time it is accessed and the result
// memoized in a bitset. A record that fails its check is remembered in
// a corrupt set — lookups treat it as damaged (not absent), which the
// cluster shard surfaces as a non-authoritative Unknown so the
// frontend fails over to a healthy replica, and the anti-entropy
// repair path may later heal it by Putting an intact copy into the
// heap overlay, which shadows the damaged on-disk record.
package labelstore

import (
	"fmt"
	"io"
	"os"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/core"
	"fsdl/internal/lru"
)

// mmapRegion owns one read-only file mapping. Close unmaps it; a
// finalizer unmaps abandoned regions, so dropping the last reference to
// a Store (e.g. on a generation swap) cannot leak address space. Close
// must not race in-flight readers of the mapped bytes — serving paths
// rely on the finalizer (which only runs once no reader can exist)
// and explicit Close is reserved for CLI/test lifecycles.
type mmapRegion struct {
	mu    sync.Mutex
	data  []byte
	unmap func([]byte) error
}

// Close releases the mapping. Idempotent.
func (r *mmapRegion) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.data == nil {
		return nil
	}
	data := r.data
	r.data = nil
	return r.unmap(data)
}

// file3 is the FSDL3 backing of a Store: the raw file bytes (mapped or
// heap), the parsed header, and lazy per-record verification state.
type file3 struct {
	data     []byte
	region   *mmapRegion // nil when data is a heap copy
	hdr      *format3Header
	index    []byte // the index section (may be clamped by salvage)
	payloads []byte // the data section (may be clamped by salvage)
	idxCount int    // readable index entries

	verified []atomic.Uint32 // per-slot CRC-checked-ok bitset
	ncorrupt atomic.Int64   // len(corrupt); gates the corrupt-set check in verify

	mu      sync.RWMutex
	corrupt map[int32]struct{}
}

func newFile3(data []byte, region *mmapRegion, hdr *format3Header) *file3 {
	f := &file3{data: data, region: region, hdr: hdr, corrupt: make(map[int32]struct{})}
	idxEnd := int64(format3Page) + int64(hdr.count)*format3EntryLen
	if idxEnd > int64(len(data)) {
		idxEnd = int64(len(data))
	}
	if idxEnd < format3Page {
		idxEnd = format3Page
	}
	if int64(len(data)) >= format3Page {
		f.index = data[format3Page:idxEnd]
	}
	f.idxCount = len(f.index) / format3EntryLen
	if int64(len(data)) > int64(hdr.dataOff) {
		end := int64(hdr.dataOff) + int64(hdr.dataLen)
		if end > int64(len(data)) {
			end = int64(len(data))
		}
		f.payloads = data[hdr.dataOff:end]
	}
	f.verified = make([]atomic.Uint32, (f.idxCount+31)/32)
	return f
}

// entry returns the parsed index slot i.
func (f *file3) entry(i int) index3Entry {
	return parseIndex3Entry(f.index[i*format3EntryLen:])
}

// find binary-searches the on-disk index for v.
func (f *file3) find(v int32) (index3Entry, int, bool) {
	lo, hi := 0, f.idxCount
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int32(f.entry(mid).vertex) < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < f.idxCount {
		if e := f.entry(lo); int32(e.vertex) == v {
			return e, lo, true
		}
	}
	return index3Entry{}, 0, false
}

// payload returns the stored bytes of an entry, or nil when its window
// falls outside the (possibly truncated) data section.
func (f *file3) payload(e index3Entry) []byte {
	if e.off > uint64(len(f.payloads)) || uint64(e.length) > uint64(len(f.payloads))-e.off {
		return nil
	}
	return f.payloads[e.off : e.off+uint64(e.length) : e.off+uint64(e.length)]
}

// verify CRC-checks the record of slot i once, memoizing the verdict.
// The corrupt set overrides the memoized verified bit: a record can be
// condemned after its CRC passed (decode failure in the salvage scan,
// transcode failure or canonical-length mismatch in rawFrom3), and that
// verdict must stick. The ncorrupt gate keeps the common all-clean path
// down to two atomic loads with no lock.
func (f *file3) verify(e index3Entry, slot int) bool {
	if f.ncorrupt.Load() != 0 {
		f.mu.RLock()
		_, bad := f.corrupt[int32(e.vertex)]
		f.mu.RUnlock()
		if bad {
			return false
		}
	}
	if f.verified[slot/32].Load()&(1<<(slot%32)) != 0 {
		return true
	}
	p := f.payload(e)
	if p == nil || recordChecksum(int(e.vertex), int(e.bits), p) != e.crc {
		f.markCorrupt(int32(e.vertex))
		return false
	}
	word := &f.verified[slot/32]
	for {
		old := word.Load()
		if word.CompareAndSwap(old, old|1<<(slot%32)) {
			return true
		}
	}
}

func (f *file3) markCorrupt(v int32) {
	f.mu.Lock()
	if _, dup := f.corrupt[v]; !dup {
		f.corrupt[v] = struct{}{}
		f.ncorrupt.Add(1)
	}
	f.mu.Unlock()
}

// storedPayload returns the verified on-disk payload of v in its stored
// encoding (canonical or compressed).
func (f *file3) storedPayload(v int32) (bits int, payload []byte, ok bool) {
	e, slot, ok := f.find(v)
	if !ok || !f.verify(e, slot) {
		return 0, nil, false
	}
	return int(e.bits), f.payload(e), true
}

// corruptAt reports whether v is present in the index but damaged.
func (f *file3) corruptAt(v int32) bool {
	e, slot, ok := f.find(v)
	return ok && !f.verify(e, slot)
}

func (f *file3) corruptCount() int {
	f.mu.RLock()
	defer f.mu.RUnlock()
	return len(f.corrupt)
}

// Open opens a store file, auto-detecting the container version: FSDL3
// files are mmap'd and served out-of-core, FSDL1/2 files are read into
// heap exactly as Load would. It is strict about structure — a damaged
// header or index fails the open (use OpenPartial to salvage) — while
// FSDL3 record payloads are CRC-verified lazily on first access, with
// failures surfacing as corrupt-record lookups rather than errors.
func Open(path string) (*Store, error) {
	return openAuto(path, true, false)
}

// OpenHeap is Open without the mapping: an FSDL3 file is read into one
// heap slice (identical semantics, no page-cache tiering) — the
// portable fallback and the right choice for short-lived CLI reads of
// small stores.
func OpenHeap(path string) (*Store, error) {
	return openAuto(path, false, false)
}

func openAuto(path string, useMmap, partial bool) (*Store, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [5]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, fmt.Errorf("labelstore: read magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if string(magic[:]) != string(magicV3) {
		return Load(f)
	}
	st, _, err := open3(f, useMmap, partial)
	return st, err
}

// SniffFormat reports the container version (1, 2, or 3) of a store
// file and, for FSDL3, whether its record payloads are compressed —
// from the first six bytes alone. Compaction uses it to decide whether
// a previous generation's partition file may be hard-linked forward:
// linking an FSDL2 file into a generation built with -format fsdl3
// would silently break the byte-identity of incremental builds.
func SniffFormat(path string) (version int, compressed bool, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, false, err
	}
	defer f.Close()
	var head [6]byte
	if _, err := io.ReadFull(f, head[:]); err != nil {
		return 0, false, fmt.Errorf("labelstore: sniff %s: %w", path, err)
	}
	switch string(head[:5]) {
	case string(magicV1):
		return 1, false, nil
	case string(magicV2):
		return 2, false, nil
	case string(magicV3):
		return 3, head[5]&format3FlagCompressed != 0, nil
	}
	return 0, false, fmt.Errorf("labelstore: %s: unrecognized container magic", path)
}

// OpenPartial is Open with salvage semantics, the file-level analogue of
// LoadPartial: a damaged body yields a usable Store plus a report of
// what was lost. For FSDL3 every record is eagerly CRC-checked and
// decode-checked; damaged or unreachable records land in the corrupt
// set (lookups report them via Corrupt, and the store stays mmap-backed
// so salvage does not force the file into heap).
func OpenPartial(path string) (*Store, *SalvageReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	var magic [5]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		return nil, nil, fmt.Errorf("labelstore: read magic: %w", err)
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, nil, err
	}
	if string(magic[:]) != string(magicV3) {
		st, rep, err := LoadPartial(f)
		return st, rep, err
	}
	return open3(f, true, true)
}

func open3(f *os.File, useMmap, partial bool) (*Store, *SalvageReport, error) {
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size < format3HeaderLen {
		return nil, nil, fmt.Errorf("labelstore: FSDL3 file truncated (%d bytes)", size)
	}
	var data []byte
	var region *mmapRegion
	if useMmap {
		data, region, err = mapFile(f, size)
	} else {
		data = make([]byte, size)
		_, err = io.ReadFull(io.NewSectionReader(f, 0, size), data)
	}
	if err != nil {
		return nil, nil, err
	}
	hdr, err := parseFormat3Header(data)
	if err != nil {
		if region != nil {
			region.Close()
		}
		return nil, nil, err
	}
	f3 := newFile3(data, region, hdr)
	rep := &SalvageReport{Version: 3, Total: int(hdr.count)}
	need := int64(hdr.dataOff) + int64(hdr.dataLen)
	truncated := size < need || f3.idxCount < int(hdr.count)
	if truncated && !partial {
		if region != nil {
			region.Close()
		}
		return nil, nil, fmt.Errorf("labelstore: FSDL3 file truncated (%d bytes, need %d)", size, need)
	}
	rep.Truncated = truncated
	// Structural pass over the index: strictly ascending vertices with
	// sane windows. Strict opens reject any violation; salvage marks the
	// offending entries corrupt (binary search may then miss records
	// shadowed by out-of-order junk — lost, never wrong, since every hit
	// is vertex- and CRC-checked before serving).
	lastV := int64(-1)
	for i := 0; i < f3.idxCount; i++ {
		e := f3.entry(i)
		bad := checkIndex3Entry(e, hdr) != nil || int64(e.vertex) <= lastV
		if !bad {
			lastV = int64(e.vertex)
		}
		if bad {
			if !partial {
				if region != nil {
					region.Close()
				}
				err := checkIndex3Entry(e, hdr)
				if err == nil {
					err = fmt.Errorf("labelstore: index entry %d out of order", i)
				}
				return nil, nil, err
			}
			f3.markCorrupt(int32(e.vertex))
			continue
		}
		if partial {
			// Eager salvage scan: CRC plus a full decode check, exactly
			// what LoadPartial applies per record.
			if !f3.verify(e, i) {
				continue
			}
			p := f3.payload(e)
			var derr error
			if hdr.compressed() {
				_, derr = decodeRecord3(p, int32(e.vertex), hdr.prm)
			} else {
				_, derr = core.DecodeLabel(p, int(e.bits))
			}
			if derr != nil {
				f3.markCorrupt(int32(e.vertex))
			}
		}
	}
	st := newStore(int(hdr.n), 0)
	st.format = 3
	st.f3 = f3
	if hdr.compressed() {
		st.rawCache = lru.New[int32, record](DefaultDecodedCacheSize, 8, func(k int32) uint64 { return lru.HashU32(uint32(k)) })
	}
	f3.mu.RLock()
	for v := range f3.corrupt {
		rep.Corrupt = append(rep.Corrupt, v)
	}
	f3.mu.RUnlock()
	slices.Sort(rep.Corrupt)
	rep.Kept = rep.Total - len(rep.Corrupt)
	if f3.idxCount < rep.Total {
		// Entries beyond the truncation point never made it into the
		// corrupt list (their ids are unreadable); they are lost too.
		rep.Kept = f3.idxCount - len(rep.Corrupt)
	}
	if !partial {
		return st, nil, nil
	}
	return st, rep, nil
}

// Close releases resources held outside the heap (the FSDL3 mapping).
// A finalizer covers abandoned stores; Close is for deterministic
// teardown and must not race in-flight readers.
func (st *Store) Close() error {
	if st.f3 != nil && st.f3.region != nil {
		return st.f3.region.Close()
	}
	return nil
}

// Format returns the container version backing this store: 1 or 2 for
// heap-loaded streams, 3 for an FSDL3 file.
func (st *Store) Format() int {
	if st.format == 0 {
		return 2
	}
	return st.format
}

// Mapped reports whether the store serves records from an mmap'd file.
func (st *Store) Mapped() bool {
	return st.f3 != nil && st.f3.region != nil
}

// Compressed reports whether the backing file stores compressed record
// payloads.
func (st *Store) Compressed() bool {
	return st.f3 != nil && st.f3.hdr.compressed()
}

// Corrupt reports whether the stored record of v is present but known
// damaged (CRC or decode failure) and not shadowed by a repaired
// in-heap copy. The cluster shard maps this to a non-authoritative
// Unknown so frontends fail over instead of trusting absence.
func (st *Store) Corrupt(v int) bool {
	st.mu.RLock()
	_, ok := st.labels[int32(v)]
	st.mu.RUnlock()
	if ok || st.f3 == nil {
		return false
	}
	return st.f3.corruptAt(int32(v))
}

// CorruptVertices returns the sorted vertices currently known corrupt
// and unhealed — diagnostics for stats and repair tooling.
func (st *Store) CorruptVertices() []int32 {
	if st.f3 == nil {
		return nil
	}
	st.f3.mu.RLock()
	ids := make([]int32, 0, len(st.f3.corrupt))
	for v := range st.f3.corrupt {
		ids = append(ids, v)
	}
	st.f3.mu.RUnlock()
	slices.Sort(ids)
	out := ids[:0]
	for _, v := range ids {
		st.mu.RLock()
		_, healed := st.labels[v]
		st.mu.RUnlock()
		if !healed {
			out = append(out, v)
		}
	}
	return out
}

// CorruptCount reports how many stored records are currently known
// corrupt and unhealed. Cheap enough for health probes: shards fold it
// into the non-authoritative pong flag so frontends fail over while
// the digest audit repairs the damage.
func (st *Store) CorruptCount() int {
	if st.f3 == nil {
		return 0
	}
	st.f3.mu.RLock()
	n := len(st.f3.corrupt)
	st.f3.mu.RUnlock()
	if n == 0 {
		return 0
	}
	return len(st.CorruptVertices())
}

// SetDecodedCacheCapacity resizes the decoded-label LRU (and the
// transcoded-record LRU of a compressed store) — memory-ceiling tuning
// for out-of-core serving, where cached decoded labels are the dominant
// heap cost. Must be called before the store is shared across
// goroutines (boot-time configuration).
func (st *Store) SetDecodedCacheCapacity(capacity int) {
	if capacity < 1 {
		capacity = 1
	}
	st.cache = lru.New[int32, *core.Label](capacity, 8, func(k int32) uint64 { return lru.HashU32(uint32(k)) })
	if st.rawCache != nil {
		st.rawCache = lru.New[int32, record](capacity, 8, func(k int32) uint64 { return lru.HashU32(uint32(k)) })
	}
}

// inOverlay reports whether v has a heap-overlay record (a Put-repaired
// or FSDL2-loaded label) shadowing any on-disk copy.
func (st *Store) inOverlay(v int32) bool {
	st.mu.RLock()
	_, ok := st.labels[v]
	st.mu.RUnlock()
	return ok
}

// rawFrom3 returns the canonical record bytes of v from the FSDL3
// backing, transcoding compressed payloads (memoized in rawCache —
// transcodes cost a decode + re-encode, and the wire path hits the same
// hot vertices repeatedly).
func (st *Store) rawFrom3(v int32) (int, []byte, bool) {
	bits, payload, ok := st.f3.storedPayload(v)
	if !ok {
		return 0, nil, false
	}
	if !st.f3.hdr.compressed() {
		return bits, payload, true
	}
	if rec, ok := st.rawCache.Get(v); ok {
		return rec.bits, rec.data, true
	}
	l, err := decodeRecord3(payload, v, st.f3.hdr.prm)
	if err != nil {
		st.f3.markCorrupt(v)
		return 0, nil, false
	}
	buf, nbits := l.Encode()
	if nbits != bits {
		// The stored canonical length disagrees with the deterministic
		// re-encode: the index entry lies, treat the record as damaged.
		st.f3.markCorrupt(v)
		return 0, nil, false
	}
	rec := record{bits: nbits, data: buf}
	st.rawCache.Put(v, rec)
	return rec.bits, rec.data, true
}

// label3 decodes the label of v from the FSDL3 backing.
func (st *Store) label3(v int32) (*core.Label, error) {
	bits, payload, ok := st.f3.storedPayload(v)
	if !ok {
		if st.f3.corruptAt(v) {
			return nil, fmt.Errorf("labelstore: record for vertex %d is corrupt", v)
		}
		return nil, fmt.Errorf("labelstore: no label for vertex %d", v)
	}
	if st.f3.hdr.compressed() {
		l, err := decodeRecord3(payload, v, st.f3.hdr.prm)
		if err != nil {
			st.f3.markCorrupt(v)
			return nil, err
		}
		return l, nil
	}
	l, err := core.DecodeLabel(payload, bits)
	if err != nil {
		st.f3.markCorrupt(v)
		return nil, err
	}
	return l, nil
}

// digestWord3 returns the canonical record checksum of v from the FSDL3
// backing — for uncompressed stores the verified index CRC is already
// that word; compressed stores transcode.
func (st *Store) digestWord3(v int32) (uint32, bool) {
	if !st.f3.hdr.compressed() {
		e, slot, ok := st.f3.find(v)
		if !ok || !st.f3.verify(e, slot) {
			return 0, false
		}
		return e.crc, true
	}
	bits, data, ok := st.rawFrom3(v)
	if !ok {
		return 0, false
	}
	return recordChecksum(int(v), bits, data), true
}

// RecordInfo describes one stored record for introspection (fsdl stats).
type RecordInfo struct {
	Vertex      int32
	Bits        int  // canonical bit length
	StoredBytes int  // payload bytes on disk / in heap
	Corrupt     bool // known damaged and unhealed
}

// Records calls fn for every record the store knows about (heap overlay
// and FSDL3 backing), in ascending vertex order.
func (st *Store) Records(fn func(RecordInfo)) {
	st.mu.RLock()
	overlay := make(map[int32]record, len(st.labels))
	for v, rec := range st.labels {
		overlay[v] = rec
	}
	st.mu.RUnlock()
	seen := make(map[int32]struct{}, len(overlay))
	var infos []RecordInfo
	for v, rec := range overlay {
		seen[v] = struct{}{}
		infos = append(infos, RecordInfo{Vertex: v, Bits: rec.bits, StoredBytes: len(rec.data)})
	}
	if st.f3 != nil {
		for i := 0; i < st.f3.idxCount; i++ {
			e := st.f3.entry(i)
			if _, ok := seen[int32(e.vertex)]; ok {
				continue
			}
			infos = append(infos, RecordInfo{
				Vertex:      int32(e.vertex),
				Bits:        int(e.bits),
				StoredBytes: int(e.length),
				Corrupt:     st.f3.corruptAt(int32(e.vertex)),
			})
		}
	}
	slices.SortFunc(infos, func(a, b RecordInfo) int { return int(a.Vertex) - int(b.Vertex) })
	for _, info := range infos {
		fn(info)
	}
}

// IndexOverheadBytes returns the container bytes that are not record
// payload: for FSDL3 the header page, index and alignment padding; for
// heap-loaded FSDL2 the per-record varint framing and checksums plus
// the stream header.
func (st *Store) IndexOverheadBytes() int64 {
	if st.f3 != nil {
		return int64(st.f3.hdr.dataOff)
	}
	st.mu.RLock()
	defer st.mu.RUnlock()
	total := int64(len(magicV2)) + varintLen(uint64(st.n)) + varintLen(uint64(len(st.labels)))
	for v, rec := range st.labels {
		total += varintLen(uint64(v)) + varintLen(uint64(rec.bits)) + 4
	}
	return total
}

func varintLen(v uint64) int64 {
	n := int64(1)
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}
