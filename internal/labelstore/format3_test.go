package labelstore

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"testing"

	"fsdl/internal/bitio"
	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func writeFormat3File(t testing.TB, dir, name string, s *core.Scheme, vertices []int, compress bool) string {
	t.Helper()
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveFormat3(f, s, vertices, compress); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// testGraphs is the equivalence matrix: grid, tree and random graphs,
// per the round-trip gate the partition writer set the precedent for.
func testGraphs(t testing.TB) map[string]*graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(42))
	er, err := gen.ConnectedErdosRenyi(150, 400, rng)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*graph.Graph{
		"grid":   gen.Grid2D(12, 12),
		"tree":   gen.RandomTree(200, rand.New(rand.NewSource(7))),
		"random": er,
	}
}

// TestFormat3RoundTripEquivalence is the byte-level FSDL2↔FSDL3 gate:
// across graph families and both FSDL3 payload encodings, every record
// served from an FSDL3 file (mmap'd and heap-loaded) must be
// byte-identical to the FSDL2 record, digests must agree, and decoded
// labels must re-encode identically.
func TestFormat3RoundTripEquivalence(t *testing.T) {
	dir := t.TempDir()
	for name, g := range testGraphs(t) {
		s := buildScheme(t, g)
		n := g.NumVertices()

		var buf bytes.Buffer
		if err := Save(&buf, s, nil); err != nil {
			t.Fatal(err)
		}
		st2, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}

		for _, compress := range []bool{false, true} {
			path := writeFormat3File(t, dir, name+suffix(compress), s, nil, compress)
			for _, open := range []struct {
				how string
				fn  func(string) (*Store, error)
			}{{"mmap", Open}, {"heap", OpenHeap}} {
				st3, err := open.fn(path)
				if err != nil {
					t.Fatalf("%s %s %s: %v", name, suffix(compress), open.how, err)
				}
				if st3.Format() != 3 {
					t.Fatalf("%s: Format() = %d, want 3", name, st3.Format())
				}
				if st3.Compressed() != compress {
					t.Fatalf("%s: Compressed() = %v, want %v", name, st3.Compressed(), compress)
				}
				if st3.NumLabels() != st2.NumLabels() {
					t.Fatalf("%s: %d labels, want %d", name, st3.NumLabels(), st2.NumLabels())
				}
				for v := 0; v < n; v++ {
					b2, d2, ok2 := st2.Raw(v)
					b3, d3, ok3 := st3.Raw(v)
					if ok2 != ok3 || b2 != b3 || !bytes.Equal(d2, d3) {
						t.Fatalf("%s %s %s: vertex %d raw mismatch", name, suffix(compress), open.how, v)
					}
					l3, err := st3.Label(v)
					if err != nil {
						t.Fatalf("%s: label %d: %v", name, v, err)
					}
					e3, bits3 := l3.Encode()
					if bits3 != b2 || !bytes.Equal(e3, d2) {
						t.Fatalf("%s %s: vertex %d decoded label re-encodes differently", name, suffix(compress), v)
					}
				}
				ids := make([]int32, n)
				for i := range ids {
					ids[i] = int32(i)
				}
				dig2, p2, _ := st2.DigestVertices(ids)
				dig3, p3, _ := st3.DigestVertices(ids)
				if dig2 != dig3 || p2 != p3 {
					t.Fatalf("%s %s %s: digest mismatch", name, suffix(compress), open.how)
				}
				if err := st3.Close(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
}

func suffix(compress bool) string {
	if compress {
		return ".fsdl3c"
	}
	return ".fsdl3"
}

// TestFormat3CompressedRecordRoundTrip exercises the record codec alone:
// encodeRecord3 → decodeRecord3 must reproduce a label whose canonical
// encoding is bit-identical, for every label of every test graph.
func TestFormat3CompressedRecordRoundTrip(t *testing.T) {
	for name, g := range testGraphs(t) {
		s := buildScheme(t, g)
		for v := 0; v < g.NumVertices(); v++ {
			l := s.Label(v)
			var w bitio.Writer
			if err := encodeRecord3(l, &w); err != nil {
				t.Fatalf("%s: encode %d: %v", name, v, err)
			}
			got, err := decodeRecord3(w.Bytes(), int32(v), paramsOf(l))
			if err != nil {
				t.Fatalf("%s: decode %d: %v", name, v, err)
			}
			wantBuf, wantBits := l.Encode()
			gotBuf, gotBits := got.Encode()
			if gotBits != wantBits || !bytes.Equal(gotBuf, wantBuf) {
				t.Fatalf("%s: vertex %d compressed round trip diverges", name, v)
			}
			if len(w.Bytes()) >= (wantBits+7)/8 {
				t.Errorf("%s: vertex %d compressed (%dB) not smaller than canonical (%dB)",
					name, v, len(w.Bytes()), (wantBits+7)/8)
			}
		}
	}
}

// TestFormat3SpliceByteIdentical proves the incremental writer: splicing
// from a previous store (FSDL2-loaded or compressed FSDL3, with and
// without dirty vertices) emits byte-identical files to a full save.
func TestFormat3SpliceByteIdentical(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(10, 10)
	s := buildScheme(t, g)

	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	prev2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for _, compress := range []bool{false, true} {
		want, err := os.ReadFile(writeFormat3File(t, dir, "full"+suffix(compress), s, nil, compress))
		if err != nil {
			t.Fatal(err)
		}
		prev3, err := Open(writeFormat3File(t, dir, "prev"+suffix(compress), s, nil, compress))
		if err != nil {
			t.Fatal(err)
		}
		for _, prev := range []*Store{prev2, prev3} {
			for _, dirty := range [][]int32{nil, {3, 17, 64}} {
				path := filepath.Join(dir, "spliced")
				f, err := os.Create(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := SaveSplicedFormat3(f, s, prev, dirty, nil, compress); err != nil {
					t.Fatal(err)
				}
				f.Close()
				got, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("spliced output differs from full save (compress=%v, prev format %d, %d dirty)",
						compress, prev.Format(), len(dirty))
				}
			}
		}
		prev3.Close()
	}
}

// TestFormat3PartitionByteIdentical proves SaveVerticesFormat3 matches
// SaveFormat3 over the same records — the partition determinism gate.
func TestFormat3PartitionByteIdentical(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	part := []int{5, 9, 11, 12, 40, 63}
	for _, compress := range []bool{false, true} {
		want, err := os.ReadFile(writeFormat3File(t, dir, "direct"+suffix(compress), s, part, compress))
		if err != nil {
			t.Fatal(err)
		}
		path := filepath.Join(dir, "fromstore")
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.SaveVerticesFormat3(f, part, compress); err != nil {
			t.Fatal(err)
		}
		f.Close()
		got, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("store partition differs from scheme partition (compress=%v)", compress)
		}
	}
}

// corruptFileByte flips one byte of a file in place.
func corruptFileByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	var b [1]byte
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
}

// TestFormat3SalvageParity is the FSDL2 salvage contract replayed on
// FSDL3: a corrupt record is detected (lazily on access via Open,
// eagerly via OpenPartial), surfaced as Corrupt rather than absent,
// excluded from counts, and healable by Putting an intact copy.
func TestFormat3SalvageParity(t *testing.T) {
	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		g := gen.Grid2D(8, 8)
		s := buildScheme(t, g)
		path := writeFormat3File(t, dir, "store"+suffix(compress), s, nil, compress)

		// Find the payload window of one record via a clean open, then
		// flip a byte in the middle of it.
		clean, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		const victim = 27
		e, _, ok := clean.f3.find(victim)
		if !ok {
			t.Fatal("victim record missing")
		}
		dataOff := int64(clean.f3.hdr.dataOff)
		clean.Close()
		corruptFileByte(t, path, dataOff+int64(e.off)+int64(e.length)/2)

		// Strict open succeeds (structure is fine) and discovers the
		// damage on access.
		st, err := Open(path)
		if err != nil {
			t.Fatalf("strict open after payload damage: %v", err)
		}
		if _, _, ok := st.Raw(victim); ok {
			t.Fatal("corrupt record served")
		}
		if !st.Corrupt(victim) {
			t.Fatal("corrupt record not reported as corrupt")
		}
		if st.Has(victim) {
			t.Fatal("corrupt record reported as held")
		}
		if _, err := st.Label(victim); err == nil {
			t.Fatal("corrupt record decoded")
		}
		if got, want := st.NumLabels(), g.NumVertices()-1; got != want {
			t.Fatalf("NumLabels = %d, want %d", got, want)
		}

		// OpenPartial finds it eagerly and reports it.
		sp, rep, err := OpenPartial(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Version != 3 || rep.Kept != g.NumVertices()-1 || len(rep.Corrupt) != 1 || rep.Corrupt[0] != victim {
			t.Fatalf("salvage report %+v", rep)
		}
		if rep.Truncated {
			t.Fatal("salvage reported truncation for in-place damage")
		}

		// Healing: Put the intact canonical bytes; the overlay shadows
		// the damaged on-disk record.
		wantBuf, wantBits := s.Label(victim).Encode()
		if err := sp.Put(victim, wantBits, wantBuf); err != nil {
			t.Fatalf("heal: %v", err)
		}
		if sp.Corrupt(victim) {
			t.Fatal("healed record still reported corrupt")
		}
		bits, data, ok := sp.Raw(victim)
		if !ok || bits != wantBits || !bytes.Equal(data, wantBuf) {
			t.Fatal("healed record does not serve intact bytes")
		}
		if got, want := sp.NumLabels(), g.NumVertices(); got != want {
			t.Fatalf("NumLabels after heal = %d, want %d", got, want)
		}
		sp.Close()
		st.Close()

		// Index damage (a vertex field, breaking the ascending order):
		// strict open refuses, salvage keeps the rest.
		corruptFileByte(t, path, format3Page+2*format3EntryLen)
		if _, err := Open(path); err == nil {
			t.Fatal("strict open accepted a damaged index")
		}
		si, rep2, err := OpenPartial(path)
		if err != nil {
			t.Fatal(err)
		}
		if rep2.Kept >= g.NumVertices() || rep2.Kept < g.NumVertices()-4 {
			t.Fatalf("index-damage salvage kept %d of %d", rep2.Kept, g.NumVertices())
		}
		si.Close()

		// Header damage: even salvage gives up (nothing is trustworthy).
		corruptFileByte(t, path, 9)
		if _, _, err := OpenPartial(path); err == nil {
			t.Fatal("salvage accepted a damaged header")
		}
	}
}

// TestFormat3DecodeCorruptionSticks covers the damage class the CRC
// cannot see: a record whose checksum passes (verify memoizes ok) but
// whose payload does not decode. The corrupt verdict reached on first
// decode must override the memoized verified bit — Has, Corrupt, Raw
// and storedPayload must all treat the record as damaged afterwards,
// exactly like a CRC failure.
func TestFormat3DecodeCorruptionSticks(t *testing.T) {
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	n := g.NumVertices()
	const victim = 13

	for _, compress := range []bool{false, true} {
		dir := t.TempDir()
		path := filepath.Join(dir, "store"+suffix(compress))
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		w, err := NewFormat3Writer(f, n, n, compress)
		if err != nil {
			t.Fatal(err)
		}
		prm := paramsOf(s.Label(0))
		for v := 0; v < n; v++ {
			l := s.Label(v)
			if v != victim {
				if err := w.AddLabel(v, l); err != nil {
					t.Fatal(err)
				}
				continue
			}
			// The writer checksums whatever payload it is handed, so a
			// garbage AddStored body yields a valid-CRC, undecodable
			// record — for the uncompressed store the payload length must
			// still match the claimed canonical bit length.
			bits := canonicalBitLen(l)
			junk := bytes.Repeat([]byte{0xff}, (bits+7)/8)
			if !compress {
				if _, err := core.DecodeLabel(junk, bits); err == nil {
					t.Fatal("junk payload unexpectedly decodes")
				}
			} else if _, err := decodeRecord3(junk, victim, prm); err == nil {
				t.Fatal("junk payload unexpectedly decodes")
			}
			if err := w.AddStored(v, bits, junk, prm); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
		f.Close()

		st, err := Open(path)
		if err != nil {
			t.Fatal(err)
		}
		// Before discovery the CRC passes, so the record looks held.
		if !st.Has(victim) {
			t.Fatalf("compress=%v: undiscovered record not held", compress)
		}
		if _, err := st.Label(victim); err == nil {
			t.Fatalf("compress=%v: garbage payload decoded", compress)
		}
		// The decode failure must stick despite the memoized CRC pass.
		if st.Has(victim) {
			t.Fatalf("compress=%v: decode-corrupt record still reported held", compress)
		}
		if !st.Corrupt(victim) {
			t.Fatalf("compress=%v: decode-corrupt record not reported corrupt", compress)
		}
		if _, _, ok := st.f3.storedPayload(victim); ok {
			t.Fatalf("compress=%v: storedPayload serves decode-corrupt record", compress)
		}
		if compress {
			if _, _, ok := st.Raw(victim); ok {
				t.Fatalf("compress=%v: Raw serves decode-corrupt record", compress)
			}
		}
		if got := st.CorruptCount(); got != 1 {
			t.Fatalf("compress=%v: CorruptCount = %d, want 1", compress, got)
		}
		st.Close()

		// OpenPartial's eager salvage scan reaches the same verdict and
		// the store it returns must agree with its report.
		sp, rep, err := OpenPartial(path)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Corrupt) != 1 || rep.Corrupt[0] != victim || rep.Kept != n-1 {
			t.Fatalf("compress=%v: salvage report %+v", compress, rep)
		}
		if sp.Has(victim) || !sp.Corrupt(victim) {
			t.Fatalf("compress=%v: salvaged store contradicts its report", compress)
		}
		sp.Close()
	}
}

// TestFormat3SpliceHealedOverlay: incremental compaction from a base
// whose corrupt record was healed via Put must copy the healed overlay
// record (Raw path), not fail on — or worse, fast-copy — the damaged
// on-disk payload. Output stays byte-identical to a full save.
func TestFormat3SpliceHealedOverlay(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	const victim = 27

	want, err := os.ReadFile(writeFormat3File(t, dir, "full.fsdl3c", s, nil, true))
	if err != nil {
		t.Fatal(err)
	}
	prevPath := writeFormat3File(t, dir, "prev.fsdl3c", s, nil, true)
	clean, err := Open(prevPath)
	if err != nil {
		t.Fatal(err)
	}
	e, _, ok := clean.f3.find(victim)
	if !ok {
		t.Fatal("victim record missing")
	}
	dataOff := int64(clean.f3.hdr.dataOff)
	clean.Close()
	corruptFileByte(t, prevPath, dataOff+int64(e.off)+int64(e.length)/2)

	prev, err := Open(prevPath)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prev.Label(victim); err == nil {
		t.Fatal("damaged record decoded")
	}
	buf, bits := s.Label(victim).Encode()
	if err := prev.Put(victim, bits, buf); err != nil {
		t.Fatalf("heal: %v", err)
	}

	// victim is clean (not dirty), so without the overlay guard the
	// fast-copy path would hit the damaged on-disk payload.
	path := filepath.Join(dir, "spliced")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := SaveSplicedFormat3(f, s, prev, []int32{3, 17}, nil, true); err != nil {
		t.Fatalf("splice from healed base: %v", err)
	}
	f.Close()
	prev.Close()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("splice from healed base differs from full save")
	}
}

// TestMergeOwnsFormat3Records: a merged store must own its record bytes
// — records merged out of an mmap-backed source must stay readable after
// the source store (and its mapping) is gone.
func TestMergeOwnsFormat3Records(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	n := g.NumVertices()

	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	ref, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	src, err := Open(writeFormat3File(t, dir, "store.fsdl3", s, nil, false))
	if err != nil {
		t.Fatal(err)
	}
	if !src.Mapped() {
		t.Skip("mmap unavailable on this platform")
	}
	merged, err := Merge(src)
	if err != nil {
		t.Fatal(err)
	}
	// Unmap the source: reading the merged records now faults unless
	// Merge copied them out of the mapping.
	src.Close()
	for v := 0; v < n; v++ {
		wb, wd, wok := ref.Raw(v)
		gb, gd, gok := merged.Raw(v)
		if wok != gok || wb != gb || !bytes.Equal(wd, gd) {
			t.Fatalf("merged record %d differs after source unmap", v)
		}
	}
}

// TestFormat3TruncatedFile: strict open rejects, salvage reports
// Truncated and keeps the readable prefix.
func TestFormat3TruncatedFile(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	path := writeFormat3File(t, dir, "store.fsdl3", s, nil, true)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("strict open accepted a truncated file")
	}
	st, rep, err := OpenPartial(path)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Truncated {
		t.Fatal("salvage did not flag truncation")
	}
	if rep.Kept == 0 || rep.Kept >= rep.Total {
		t.Fatalf("truncated salvage kept %d of %d", rep.Kept, rep.Total)
	}
	for _, v := range st.Vertices() {
		if _, err := st.Label(v); err != nil && !st.Corrupt(v) {
			t.Fatalf("kept vertex %d neither decodes nor reports corrupt: %v", v, err)
		}
	}
	st.Close()
}

// TestFormat3OutOfCoreDifferential is the acceptance gate: an FSDL3
// mmap shard serves a store larger than a GOMEMLIMIT-style heap ceiling
// set well below the on-disk size, with every answer byte-identical to
// the in-heap FSDL2 path.
func TestFormat3OutOfCoreDifferential(t *testing.T) {
	dir := t.TempDir()
	g := gen.Grid2D(20, 20)
	n := g.NumVertices()
	s := buildScheme(t, g)

	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	path := writeFormat3File(t, dir, "store.fsdl3", s, nil, false)
	pathC := writeFormat3File(t, dir, "store.fsdl3c", s, nil, true)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	fileSize := fi.Size()
	if fileSize < 4<<20 {
		t.Fatalf("test store too small to prove anything: %d bytes", fileSize)
	}

	// Phase 1, in heap: compute reference answers from the FSDL2 path.
	st2, err := Load(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	type qcase struct {
		s, t   int
		faults *graph.FaultSet
	}
	type answer struct {
		dist     int64
		ok       bool
		degraded bool
	}
	var queries []qcase
	var want []answer
	for i := 0; i < 60; i++ {
		qc := qcase{s: rng.Intn(n), t: rng.Intn(n),
			faults: gen.RandomVertexFaults(g, 4, []int{}, rng)}
		res, err := st2.DistanceRobust(qc.s, qc.t, qc.faults, 0)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, qc)
		want = append(want, answer{res.Dist, res.OK, res.Degraded})
	}
	// Drop every in-heap copy of the labels before the ceiling phase.
	st2 = nil
	s = nil
	buf = bytes.Buffer{}
	runtime.GC()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	// Phase 2, out of core: a heap ceiling well below the file size.
	ceiling := before.HeapAlloc + uint64(fileSize)/4
	prevLimit := debug.SetMemoryLimit(int64(ceiling))
	defer debug.SetMemoryLimit(prevLimit)

	for _, p := range []string{path, pathC} {
		st3, err := Open(p)
		if err != nil {
			t.Fatal(err)
		}
		if !st3.Mapped() {
			t.Skip("mmap unavailable on this platform")
		}
		st3.SetDecodedCacheCapacity(2)
		for i, qc := range queries {
			res, err := st3.DistanceRobust(qc.s, qc.t, qc.faults, 0)
			if err != nil {
				t.Fatal(err)
			}
			got := answer{res.Dist, res.OK, res.Degraded}
			if got != want[i] {
				t.Fatalf("%s: query %d: got %+v want %+v", p, i, got, want[i])
			}
		}
		st3.Close()
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	if after.HeapAlloc > ceiling+uint64(fileSize)/4 {
		t.Fatalf("serving blew through the heap ceiling: %d -> %d (ceiling %d, file %d)",
			before.HeapAlloc, after.HeapAlloc, ceiling, fileSize)
	}
}

// FuzzFormat3Record hardens the compressed record decoder: arbitrary
// payloads must never panic or over-allocate, and anything that decodes
// must survive a re-encode/decode round trip bit-identically.
func FuzzFormat3Record(f *testing.F) {
	g := gen.Grid2D(5, 5)
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		f.Fatal(err)
	}
	prm := paramsOf(s.Label(0))
	for v := 0; v < 4; v++ {
		var w bitio.Writer
		if err := encodeRecord3(s.Label(v), &w); err != nil {
			f.Fatal(err)
		}
		f.Add(w.Bytes())
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, payload []byte) {
		l, err := decodeRecord3(payload, 0, prm)
		if err != nil {
			return
		}
		var w bitio.Writer
		if err := encodeRecord3(l, &w); err != nil {
			t.Fatalf("decoded label does not re-encode: %v", err)
		}
		l2, err := decodeRecord3(w.Bytes(), 0, prm)
		if err != nil {
			t.Fatalf("re-encoded record does not decode: %v", err)
		}
		b1, n1 := l.Encode()
		b2, n2 := l2.Encode()
		if n1 != n2 || !bytes.Equal(b1, b2) {
			t.Fatal("record round trip diverges")
		}
	})
}

// TestFsyncDir just proves the helper works on a real directory.
func TestFsyncDir(t *testing.T) {
	dir := t.TempDir()
	if err := FsyncDir(dir); err != nil {
		t.Fatal(err)
	}
	if err := FsyncParentDir(filepath.Join(dir, "somefile")); err != nil {
		t.Fatal(err)
	}
	if err := FsyncDir(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("fsync of a missing directory succeeded")
	}
}
