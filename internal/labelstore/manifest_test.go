package labelstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleManifest() *Manifest {
	return &Manifest{
		Generation: 7,
		N:          100,
		Seq:        12345,
		Files: []ManifestFile{
			{Name: "labels.fsdl", Records: 100, First: 0, Last: 99, CRC: 0xDEADBEEF},
			{Name: "alpha.fsdl", Records: 40, First: 2, Last: 97, CRC: 0x01020304},
			{Name: "empty.fsdl", Records: 0, First: -1, Last: -1, CRC: 0xCAFEF00D},
		},
	}
}

// TestManifestRoundTrip mirrors the partition writer's byte-level
// test: encode, decode, re-encode, and demand identical bytes — the
// encoding must be deterministic regardless of input entry order.
func TestManifestRoundTrip(t *testing.T) {
	m := sampleManifest()
	var buf bytes.Buffer
	if err := WriteManifest(&buf, m); err != nil {
		t.Fatal(err)
	}
	first := bytes.Clone(buf.Bytes())

	got, err := ReadManifest(bytes.NewReader(first))
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != m.Generation || got.N != m.N || got.Seq != m.Seq {
		t.Fatalf("header = (%d,%d,%d), want (%d,%d,%d)", got.Generation, got.N, got.Seq, m.Generation, m.N, m.Seq)
	}
	if len(got.Files) != len(m.Files) {
		t.Fatalf("got %d files, want %d", len(got.Files), len(m.Files))
	}
	for _, want := range m.Files {
		f := got.File(want.Name)
		if f == nil {
			t.Fatalf("entry %q missing after round trip", want.Name)
		}
		if *f != want {
			t.Fatalf("entry %q = %+v, want %+v", want.Name, *f, want)
		}
	}

	// Re-encode the decoded manifest: byte-identical.
	var buf2 bytes.Buffer
	if err := WriteManifest(&buf2, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf2.Bytes()) {
		t.Fatal("re-encoded manifest is not byte-identical")
	}

	// Entry order must not matter: writing with reversed entries gives
	// the same bytes.
	rev := *m
	rev.Files = []ManifestFile{m.Files[2], m.Files[0], m.Files[1]}
	var buf3 bytes.Buffer
	if err := WriteManifest(&buf3, &rev); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first, buf3.Bytes()) {
		t.Fatal("entry order changed the encoding")
	}
}

func TestManifestRejectsCorruption(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteManifest(&buf, sampleManifest()); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	// Flip one bit in every byte position: each corruption must be
	// detected (bad magic, framing failure, or checksum mismatch).
	for i := range raw {
		mut := bytes.Clone(raw)
		mut[i] ^= 0x10
		if m, err := ReadManifest(bytes.NewReader(mut)); err == nil {
			// A flip inside a name byte alone would still be caught by
			// the trailing CRC, so nothing may ever parse cleanly.
			t.Fatalf("corruption at byte %d/%d parsed cleanly: %+v", i, len(raw), m)
		}
	}
	// Truncations must be detected too.
	for i := 0; i < len(raw); i++ {
		if _, err := ReadManifest(bytes.NewReader(raw[:i])); err == nil {
			t.Fatalf("truncation at %d/%d parsed cleanly", i, len(raw))
		}
	}
}

func TestManifestDirLifecycle(t *testing.T) {
	root := t.TempDir()
	dir := filepath.Join(root, GenerationDirName(3))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	payload := []byte("not really labels, but checksummed all the same")
	if err := os.WriteFile(filepath.Join(dir, "labels.fsdl"), payload, 0o644); err != nil {
		t.Fatal(err)
	}
	crc, err := FileCRC(filepath.Join(dir, "labels.fsdl"))
	if err != nil {
		t.Fatal(err)
	}
	m := &Manifest{Generation: 3, N: 10, Seq: 5, Files: []ManifestFile{{Name: "labels.fsdl", Records: 10, First: 0, Last: 9, CRC: crc}}}
	if err := WriteManifestFile(dir, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifestDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generation != 3 || got.Seq != 5 {
		t.Fatalf("manifest = %+v", got)
	}

	latest, latestDir, ok, err := LatestGeneration(root)
	if err != nil || !ok {
		t.Fatalf("LatestGeneration: ok=%v err=%v", ok, err)
	}
	if latest.Generation != 3 || latestDir != dir {
		t.Fatalf("latest = gen %d at %s", latest.Generation, latestDir)
	}

	// A newer generation with a torn manifest must not win.
	torn := filepath.Join(root, GenerationDirName(4))
	if err := os.MkdirAll(torn, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(torn, ManifestName), []byte("FSDLM1torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	latest, _, ok, err = LatestGeneration(root)
	if err != nil || !ok || latest.Generation != 3 {
		t.Fatalf("torn gen-4 should be skipped: ok=%v gen=%d err=%v", ok, latest.Generation, err)
	}

	// Damaging the data file must fail the directory check.
	if err := os.WriteFile(filepath.Join(dir, "labels.fsdl"), append(payload, 'x'), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifestDir(dir); err == nil {
		t.Fatal("ReadManifestDir accepted a file that no longer matches its checksum")
	}
}

func TestParseGenerationDir(t *testing.T) {
	for _, tc := range []struct {
		in   string
		gen  uint64
		want bool
	}{
		{GenerationDirName(12), 12, true},
		{"gen-0000000001", 1, true},
		{"gen-", 0, false},
		{"gen-x", 0, false},
		{"generation-1", 0, false},
		{"MANIFEST", 0, false},
	} {
		gen, ok := ParseGenerationDir(tc.in)
		if ok != tc.want || (ok && gen != tc.gen) {
			t.Errorf("ParseGenerationDir(%q) = (%d,%v), want (%d,%v)", tc.in, gen, ok, tc.gen, tc.want)
		}
	}
}
