package labelstore

import (
	"bytes"
	"strings"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func buildScheme(t testing.TB, g *graph.Graph) *core.Scheme {
	t.Helper()
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestSaveLoadAllLabels(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if st.NumVertices() != 36 || st.NumLabels() != 36 {
		t.Fatalf("store = (%d,%d), want (36,36)", st.NumVertices(), st.NumLabels())
	}
	if st.SizeBits() <= 0 {
		t.Fatal("store must report its size")
	}
	// Every stored label decodes and matches the scheme's.
	for v := 0; v < 36; v += 7 {
		got, err := st.Label(v)
		if err != nil {
			t.Fatal(err)
		}
		want := s.Label(v)
		if got.V != want.V || got.NumPoints() != want.NumPoints() || got.NumEdges() != want.NumEdges() {
			t.Fatalf("label %d differs after round trip", v)
		}
	}
}

func TestStoreQueriesMatchScheme(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.FaultVertices(14, 21)
	f.AddEdge(0, 1)
	gotD, gotOK, err := st.Distance(0, 35, f)
	if err != nil {
		t.Fatal(err)
	}
	wantD, wantOK := s.Distance(0, 35, f)
	if gotD != wantD || gotOK != wantOK {
		t.Fatalf("store query = (%d,%v), scheme = (%d,%v)", gotD, gotOK, wantD, wantOK)
	}
	if _, ok, err := st.Distance(0, 35, graph.FaultVertices(0)); err != nil || ok {
		t.Errorf("forbidden endpoint: got (%v,%v)", ok, err)
	}
}

func TestRegionBundle(t *testing.T) {
	g := gen.Grid2D(10, 10)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	center, radius := 55, int32(3)
	if err := SaveRegion(&buf, s, center, radius); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// A radius-3 interior ball in a grid has 25 vertices.
	if st.NumLabels() != 25 {
		t.Fatalf("region has %d labels, want 25", st.NumLabels())
	}
	if !st.Has(center) || !st.Has(center+3) {
		t.Error("region must contain its center and boundary")
	}
	if st.Has(0) {
		t.Error("corner is outside the region")
	}
	// In-region query works, out-of-region query errors cleanly.
	if _, _, err := st.Distance(center, center+3, nil); err != nil {
		t.Errorf("in-region query failed: %v", err)
	}
	if _, _, err := st.Distance(center, 0, nil); err == nil {
		t.Error("out-of-region query must error")
	}
	if !strings.Contains(strBundleErr(st), "no label") {
		t.Error("missing-label error should be descriptive")
	}
}

func strBundleErr(st *Store) string {
	_, _, err := st.Distance(0, 1, nil)
	if err == nil {
		return ""
	}
	return err.Error()
}

func TestSaveSubsetValidation(t *testing.T) {
	g := gen.Path(5)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, []int{0, 99}); err == nil {
		t.Error("out-of-range vertex must be rejected")
	}
}

func TestLoadRejectsCorruption(t *testing.T) {
	g := gen.Path(8)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := Load(bytes.NewReader([]byte("WRONG"))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := Load(bytes.NewReader(good[:len(good)/2])); err == nil {
		t.Error("truncated store must fail")
	}
	// Flip a byte inside a label payload: either the decode fails later
	// (when the label is used) or the content differs; Load itself only
	// guarantees structural integrity, so just ensure no panic.
	mut := append([]byte(nil), good...)
	mut[len(mut)-3] ^= 0xff
	if st, err := Load(bytes.NewReader(mut)); err == nil {
		for v := 0; v < 8; v++ {
			st.Label(v) // must not panic
		}
	}
}

func TestStoreOnDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Distance(0, 3, nil); err != nil || ok {
		t.Errorf("cross-component query = (%v,%v), want disconnected", ok, err)
	}
}

func TestMergeRegionBundles(t *testing.T) {
	g := gen.Grid2D(10, 10)
	s := buildScheme(t, g)
	load := func(center int, radius int32) *Store {
		var buf bytes.Buffer
		if err := SaveRegion(&buf, s, center, radius); err != nil {
			t.Fatal(err)
		}
		st, err := Load(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	west := load(33, 3)
	east := load(66, 3) // overlapping middle
	merged, err := Merge(west, east)
	if err != nil {
		t.Fatal(err)
	}
	if merged.NumLabels() >= west.NumLabels()+east.NumLabels() {
		t.Errorf("merge did not dedupe the overlap: %d vs %d+%d",
			merged.NumLabels(), west.NumLabels(), east.NumLabels())
	}
	// A query spanning the two regions now works.
	if _, _, err := merged.Distance(33, 66, nil); err != nil {
		t.Errorf("cross-region query after merge failed: %v", err)
	}
	// Merged bundle re-saves and reloads.
	var buf bytes.Buffer
	if err := merged.Save(&buf); err != nil {
		t.Fatal(err)
	}
	again, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumLabels() != merged.NumLabels() || again.SizeBits() != merged.SizeBits() {
		t.Error("re-saved merged bundle differs")
	}
}

func TestMergeRejectsMismatch(t *testing.T) {
	gA := gen.Grid2D(5, 5)
	gB := gen.Grid2D(6, 6)
	sA, sB := buildScheme(t, gA), buildScheme(t, gB)
	var a, b bytes.Buffer
	if err := Save(&a, sA, nil); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, sB, nil); err != nil {
		t.Fatal(err)
	}
	stA, _ := Load(&a)
	stB, _ := Load(&b)
	if _, err := Merge(stA, stB); err == nil {
		t.Error("different graphs must not merge")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge must error")
	}
}

func TestSaveVerticesPartitionRoundTrip(t *testing.T) {
	g := gen.Grid2D(8, 8)
	s := buildScheme(t, g)
	var full bytes.Buffer
	if err := Save(&full, s, nil); err != nil {
		t.Fatal(err)
	}
	fullBytes := full.Bytes()
	st, err := Load(bytes.NewReader(fullBytes))
	if err != nil {
		t.Fatal(err)
	}

	// Split the store into three interleaved partitions (duplicated and
	// unsorted input exercises the canonicalization), reload each, and
	// merge: the union must re-serve every record byte-identically.
	var parts []*Store
	for p := 0; p < 3; p++ {
		var ids []int
		for v := 63; v >= 0; v-- {
			if v%3 == p {
				ids = append(ids, v, v) // duplicates collapse
			}
		}
		var buf bytes.Buffer
		if err := st.SaveVertices(&buf, ids); err != nil {
			t.Fatalf("SaveVertices part %d: %v", p, err)
		}
		ps, err := Load(&buf)
		if err != nil {
			t.Fatalf("Load part %d: %v", p, err)
		}
		if ps.NumVertices() != 64 {
			t.Fatalf("part %d: vertex space %d, want the global 64", p, ps.NumVertices())
		}
		for _, v := range ps.Vertices() {
			wb, wd, _ := st.Raw(v)
			gb, gd, ok := ps.Raw(v)
			if !ok || gb != wb || !bytes.Equal(gd, wd) {
				t.Fatalf("part %d vertex %d: raw record differs from original", p, v)
			}
		}
		parts = append(parts, ps)
	}
	merged, err := Merge(parts...)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	var rejoined bytes.Buffer
	if err := merged.Save(&rejoined); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rejoined.Bytes(), fullBytes) {
		t.Fatal("union of partitions is not byte-identical to the original store")
	}

	// A vertex the store does not hold is an error, not a silent skip.
	var buf bytes.Buffer
	if err := st.SaveVertices(&buf, []int{0, 64}); err == nil {
		t.Fatal("SaveVertices accepted an out-of-store vertex")
	}
}

func TestVerticesAndRaw(t *testing.T) {
	g := gen.Grid2D(4, 4)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, []int{5, 2, 9}); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	ids := st.Vertices()
	if len(ids) != 3 || ids[0] != 2 || ids[1] != 5 || ids[2] != 9 {
		t.Fatalf("Vertices() = %v, want [2 5 9]", ids)
	}
	bits, data, ok := st.Raw(5)
	if !ok || bits <= 0 || len(data) != (bits+7)/8 {
		t.Fatalf("Raw(5) = (%d, %d bytes, %v)", bits, len(data), ok)
	}
	if l, err := core.DecodeLabel(data, bits); err != nil || l == nil {
		t.Fatalf("raw record does not decode: %v", err)
	}
	if _, _, ok := st.Raw(3); ok {
		t.Fatal("Raw reported a record the store does not hold")
	}
}
