// FSDL3: the out-of-core container version. Where FSDL2 is a stream of
// varint-framed records that must be parsed front to back into heap maps,
// FSDL3 is a random-access, page-aligned layout built to be mmap'd and
// served straight from the OS page cache:
//
//	page 0 (4096 B):  magic "FSDL3", flags, n, count, data offset/length,
//	                  scheme parameters, header CRC32; zero-padded
//	index:            count × 24-byte entries at offset 4096, sorted by
//	                  vertex: u32 vertex, u32 canonical bit length,
//	                  u64 payload offset (relative to the data section),
//	                  u32 payload byte length, u32 record CRC
//	data:             payloads packed back to back, section start aligned
//	                  to the next 4096-byte boundary
//
// The per-entry CRC is recordChecksum(vertex, bits, payload) — the same
// integrity word FSDL2 stores and the anti-entropy digests fold, so the
// index doubles as a precomputed digest table for uncompressed stores.
//
// Payloads are either the canonical label encoding (Label.Encode bytes,
// identical to what FSDL2 frames) or, when the header's compressed flag
// is set, the FSDL3 compressed record encoding. The compressed encoding
// squeezes the canonical form by dropping everything a reader already
// knows and tightening the per-entry codes:
//
//   - no per-record header: the scheme parameters (ε, c, maxLevel,
//     rShrink) are identical across a store and live in the file header;
//     the vertex id comes from the index entry
//   - point distances: first point's d_G(v,x) in gamma, then
//     zigzag(ΔD) in gamma — distances of id-sorted ball points are
//     locally correlated, so deltas are small either way
//   - edge targets: within a run of equal XI, gamma(YI−prevYI−1); at a
//     run start, gamma(YI−XI−1) instead of an absolute YI (edges always
//     satisfy XI < YI, so the gap from XI is the tight base)
//   - edge lengths: omitted at the lowest level (unit edges, D = 1
//     always); at level ℓ stored as D−1 in exactly ℓ+1 fixed bits, the
//     information bound since 0 < D ≤ λ_ℓ = 2^(ℓ+1) — gamma coding these
//     was the single largest cost in the canonical form (~60% of all
//     label bits on grids)
//
// The index always records the *canonical* bit length, whatever the
// payload encoding: canonical bytes are the universal currency of the
// wire protocol, the digests and Put, so a compressed store transcodes
// (decode + deterministic re-encode) where raw canonical bytes are
// demanded and both formats interoperate record for record.
package labelstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"slices"

	"fsdl/internal/bitio"
	"fsdl/internal/core"
)

var magicV3 = []byte("FSDL3")

const (
	format3Page      = 4096
	format3HeaderLen = 64 // used bytes of page 0; the rest is zero padding
	format3EntryLen  = 24

	// flag bits (header byte 5)
	format3FlagCompressed = 1 << 0
)

// rec3Params are the scheme parameters hoisted out of every record into
// the FSDL3 store header (compressed payloads cannot be decoded without
// them; uncompressed stores carry them per record and keep zeros here).
type rec3Params struct {
	epsQ     uint64
	c        int
	maxLevel int
	rShrink  int
	set      bool
}

func paramsOf(l *core.Label) rec3Params {
	return rec3Params{
		epsQ:     uint64(l.Epsilon * 65536),
		c:        l.C,
		maxLevel: l.MaxLevel,
		rShrink:  l.RShrink,
		set:      true,
	}
}

// canonicalBitLen returns the exact bit length Label.Encode would emit,
// without materializing the encoding — the index stores canonical bit
// lengths even for compressed payloads.
func canonicalBitLen(l *core.Label) int {
	n := bitio.UvarintLen(uint64(l.V)) +
		bitio.UvarintLen(uint64(l.Epsilon*65536)) +
		bitio.UvarintLen(uint64(l.C)) +
		bitio.UvarintLen(uint64(l.MaxLevel)) +
		bitio.UvarintLen(uint64(l.RShrink))
	for _, lv := range l.Levels {
		n += bitio.DeltaLen(uint64(len(lv.Points)))
		prev := int64(-1)
		for _, pe := range lv.Points {
			n += bitio.DeltaLen(uint64(int64(pe.X) - prev - 1))
			prev = int64(pe.X)
			n += bitio.GammaLen(uint64(pe.D))
		}
		n += bitio.DeltaLen(uint64(len(lv.Edges)))
		var prevXI, prevYI int64
		for _, e := range lv.Edges {
			dx := int64(e.XI) - prevXI
			n += bitio.GammaLen(uint64(dx))
			if dx != 0 {
				prevYI = 0
			}
			n += bitio.GammaLen(uint64(int64(e.YI) - prevYI))
			prevXI, prevYI = int64(e.XI), int64(e.YI)
			n += bitio.GammaLen(uint64(e.D))
		}
	}
	return n
}

// encodeRecord3 appends the compressed record encoding of l to w. The
// label must be structurally valid (Validate); the fixed-width edge
// length field in particular relies on D ≤ λ_ℓ.
func encodeRecord3(l *core.Label, w *bitio.Writer) error {
	for k := range l.Levels {
		lv := &l.Levels[k]
		w.WriteDelta(uint64(len(lv.Points)))
		prev := int64(-1)
		prevD := int64(0)
		for i, pe := range lv.Points {
			w.WriteDelta(uint64(int64(pe.X) - prev - 1))
			prev = int64(pe.X)
			if i == 0 {
				w.WriteGamma(uint64(pe.D))
			} else {
				d := int64(pe.D) - prevD
				w.WriteGamma(uint64(d<<1) ^ uint64(d>>63)) // zigzag
			}
			prevD = int64(pe.D)
		}
		w.WriteDelta(uint64(len(lv.Edges)))
		dBits := l.Level(k) + 1 // D−1 fits exactly: 0 < D ≤ λ_ℓ = 2^(ℓ+1)
		if k > 0 && len(lv.Edges) > 0 && dBits > 31 {
			return fmt.Errorf("labelstore: level %d edge width %d bits unencodable", l.Level(k), dBits)
		}
		var prevXI, prevYI int64
		for _, e := range lv.Edges {
			dx := int64(e.XI) - prevXI
			w.WriteGamma(uint64(dx))
			if dx != 0 {
				// run start: YI is gap-coded from XI (always YI > XI)
				w.WriteGamma(uint64(int64(e.YI) - int64(e.XI) - 1))
			} else {
				w.WriteGamma(uint64(int64(e.YI) - prevYI - 1))
			}
			prevXI, prevYI = int64(e.XI), int64(e.YI)
			if k > 0 {
				if e.D <= 0 || int64(e.D) > int64(1)<<uint(dBits) {
					return fmt.Errorf("labelstore: level %d edge length %d exceeds λ", l.Level(k), e.D)
				}
				w.WriteBits(uint64(e.D-1), dBits)
			}
		}
	}
	return nil
}

// decodeRecord3 parses a compressed record payload into a validated
// label. The payload is byte-padded (records sit at byte offsets), so
// after the structure is consumed only sub-byte zero padding may remain.
func decodeRecord3(payload []byte, v int32, p rec3Params) (*core.Label, error) {
	if !p.set {
		return nil, fmt.Errorf("labelstore: compressed record without store parameters")
	}
	numLevels := p.maxLevel - p.c
	if numLevels < 0 || numLevels > 64 {
		return nil, fmt.Errorf("labelstore: implausible level count %d", numLevels)
	}
	r := bitio.NewReader(payload, 8*len(payload))
	l := &core.Label{
		V:        v,
		Epsilon:  float64(p.epsQ) / 65536,
		C:        p.c,
		MaxLevel: p.maxLevel,
		RShrink:  p.rShrink,
		Levels:   make([]core.LevelLabel, numLevels),
	}
	for k := range l.Levels {
		np, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("labelstore: decode level %d points: %w", k, err)
		}
		// Each point costs at least 2 bits; reject counts beyond the
		// payload before allocating (same guard as core.DecodeLabel).
		if np > uint64(r.Remaining()) {
			return nil, fmt.Errorf("labelstore: level %d point count %d exceeds payload", k, np)
		}
		pts := make([]core.PointEntry, np)
		prev := int64(-1)
		prevD := int64(0)
		for i := range pts {
			gap, err := r.ReadDelta()
			if err != nil {
				return nil, fmt.Errorf("labelstore: decode point gap: %w", err)
			}
			prev += int64(gap) + 1
			zz, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("labelstore: decode point dist: %w", err)
			}
			var d int64
			if i == 0 {
				d = int64(zz)
			} else {
				d = prevD + (int64(zz>>1) ^ -int64(zz&1))
			}
			if prev > math.MaxInt32 || d < 0 || d > math.MaxInt32 {
				return nil, fmt.Errorf("labelstore: decode point out of range")
			}
			pts[i] = core.PointEntry{X: int32(prev), D: int32(d)}
			prevD = d
		}
		ne, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("labelstore: decode level %d edges: %w", k, err)
		}
		if ne > uint64(r.Remaining()) {
			return nil, fmt.Errorf("labelstore: level %d edge count %d exceeds payload", k, ne)
		}
		dBits := p.c + 1 + k + 1
		if k > 0 && ne > 0 && dBits > 31 {
			return nil, fmt.Errorf("labelstore: level %d edge width %d bits implausible", k, dBits)
		}
		edges := make([]core.EdgeEntry, ne)
		var prevXI, prevYI int64
		for i := range edges {
			dx, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("labelstore: decode edge xi: %w", err)
			}
			xi := prevXI + int64(dx)
			g, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("labelstore: decode edge yi: %w", err)
			}
			var yi int64
			if dx != 0 {
				yi = xi + int64(g) + 1
			} else {
				yi = prevYI + int64(g) + 1
			}
			d := int64(1) // lowest level: original unit edges, length omitted
			if k > 0 {
				raw, err := r.ReadBits(dBits)
				if err != nil {
					return nil, fmt.Errorf("labelstore: decode edge dist: %w", err)
				}
				d = int64(raw) + 1
			}
			if xi >= int64(len(pts)) || yi >= int64(len(pts)) {
				return nil, fmt.Errorf("labelstore: decode edge index out of range")
			}
			edges[i] = core.EdgeEntry{XI: int32(xi), YI: int32(yi), D: int32(d)}
			prevXI, prevYI = xi, yi
		}
		l.Levels[k] = core.LevelLabel{Points: pts, Edges: edges}
	}
	if r.Remaining() >= 8 {
		return nil, fmt.Errorf("labelstore: %d trailing bits after record", r.Remaining())
	}
	for r.Remaining() > 0 {
		b, _ := r.ReadBit()
		if b != 0 {
			return nil, fmt.Errorf("labelstore: nonzero padding after record")
		}
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// format3Header is the parsed page-0 content of an FSDL3 file.
type format3Header struct {
	flags   byte
	n       uint64
	count   uint64
	dataOff uint64
	dataLen uint64
	prm     rec3Params
}

func (h *format3Header) compressed() bool { return h.flags&format3FlagCompressed != 0 }

func encodeFormat3Header(h *format3Header) []byte {
	buf := make([]byte, format3Page)
	copy(buf, magicV3)
	buf[5] = h.flags
	le := binary.LittleEndian
	le.PutUint64(buf[8:], h.n)
	le.PutUint64(buf[16:], h.count)
	le.PutUint64(buf[24:], h.dataOff)
	le.PutUint64(buf[32:], h.dataLen)
	le.PutUint64(buf[40:], h.prm.epsQ)
	le.PutUint32(buf[48:], uint32(h.prm.c))
	le.PutUint32(buf[52:], uint32(h.prm.maxLevel))
	le.PutUint32(buf[56:], uint32(h.prm.rShrink))
	le.PutUint32(buf[60:], crc32.ChecksumIEEE(buf[:60]))
	return buf
}

func parseFormat3Header(buf []byte) (*format3Header, error) {
	if len(buf) < format3HeaderLen {
		return nil, fmt.Errorf("labelstore: FSDL3 header truncated (%d bytes)", len(buf))
	}
	if string(buf[:5]) != string(magicV3) {
		return nil, fmt.Errorf("labelstore: bad magic %q", buf[:5])
	}
	le := binary.LittleEndian
	if got, want := le.Uint32(buf[60:]), crc32.ChecksumIEEE(buf[:60]); got != want {
		return nil, fmt.Errorf("labelstore: FSDL3 header checksum mismatch")
	}
	h := &format3Header{
		flags:   buf[5],
		n:       le.Uint64(buf[8:]),
		count:   le.Uint64(buf[16:]),
		dataOff: le.Uint64(buf[24:]),
		dataLen: le.Uint64(buf[32:]),
		prm: rec3Params{
			epsQ:     le.Uint64(buf[40:]),
			c:        int(le.Uint32(buf[48:])),
			maxLevel: int(le.Uint32(buf[52:])),
			rShrink:  int(le.Uint32(buf[56:])),
		},
	}
	h.prm.set = h.count > 0 && h.compressed()
	if h.count > h.n {
		return nil, fmt.Errorf("labelstore: count %d exceeds n %d", h.count, h.n)
	}
	if h.n > math.MaxInt32 {
		return nil, fmt.Errorf("labelstore: implausible n %d", h.n)
	}
	wantData := pageAlign(format3Page + int64(h.count)*format3EntryLen)
	if int64(h.dataOff) != wantData {
		return nil, fmt.Errorf("labelstore: data offset %d, want %d", h.dataOff, wantData)
	}
	return h, nil
}

func pageAlign(off int64) int64 {
	return (off + format3Page - 1) &^ (format3Page - 1)
}

// index3Entry is one parsed index slot.
type index3Entry struct {
	vertex uint32
	bits   uint32 // canonical bit length
	off    uint64 // relative to the data section
	length uint32 // payload bytes
	crc    uint32 // recordChecksum(vertex, bits, payload)
}

func parseIndex3Entry(b []byte) index3Entry {
	le := binary.LittleEndian
	return index3Entry{
		vertex: le.Uint32(b),
		bits:   le.Uint32(b[4:]),
		off:    le.Uint64(b[8:]),
		length: le.Uint32(b[16:]),
		crc:    le.Uint32(b[20:]),
	}
}

// checkIndex3Entry verifies the structural invariants of an entry:
// in-range vertex, plausible bit length, payload window inside the data
// section, and — for uncompressed stores — byte length implied by bits.
func checkIndex3Entry(e index3Entry, h *format3Header) error {
	if uint64(e.vertex) >= h.n {
		return fmt.Errorf("labelstore: vertex %d out of range", e.vertex)
	}
	if uint64(e.bits) > maxLabelBits {
		return fmt.Errorf("labelstore: implausible label size %d bits", e.bits)
	}
	if e.off > h.dataLen || uint64(e.length) > h.dataLen-e.off {
		return fmt.Errorf("labelstore: record window [%d,+%d) outside data section", e.off, e.length)
	}
	if !h.compressed() && uint64(e.length) != (uint64(e.bits)+7)/8 {
		return fmt.Errorf("labelstore: record length %d, %d bits need %d", e.length, e.bits, (e.bits+7)/8)
	}
	return nil
}

// fileLike is what the FSDL3 writer needs from its output: *os.File
// satisfies it. The header and index are reserved up front and written
// last, once every payload offset is known.
type fileLike interface {
	io.Writer
	io.WriterAt
	io.Seeker
}

// Format3Writer streams records into an FSDL3 file. Records must be
// added in strictly ascending vertex order (the index is binary-searched
// at read time); Finish seals the file by writing the header page and
// index. The writer buffers only the index in memory — payloads stream
// to the data section as they are added.
type Format3Writer struct {
	f        fileLike
	n        int
	count    int
	added    int
	compress bool
	prm      rec3Params
	entries  []byte
	dataOff  int64
	pos      int64 // next payload offset, relative to dataOff
	lastV    int64
	enc      bitio.Writer
}

// NewFormat3Writer positions f for an n-vertex store that will hold
// exactly count records.
func NewFormat3Writer(f fileLike, n, count int, compress bool) (*Format3Writer, error) {
	if n <= 0 || count < 0 || count > n {
		return nil, fmt.Errorf("labelstore: bad FSDL3 shape n=%d count=%d", n, count)
	}
	w := &Format3Writer{
		f:        f,
		n:        n,
		count:    count,
		compress: compress,
		entries:  make([]byte, 0, count*format3EntryLen),
		dataOff:  pageAlign(format3Page + int64(count)*format3EntryLen),
		lastV:    -1,
	}
	if _, err := f.Seek(w.dataOff, io.SeekStart); err != nil {
		return nil, fmt.Errorf("labelstore: seek to data section: %w", err)
	}
	return w, nil
}

// AddLabel appends the record of a live label — the scheme-save path.
func (w *Format3Writer) AddLabel(v int, l *core.Label) error {
	bits := canonicalBitLen(l)
	if !w.compress {
		buf, nbits := l.Encode()
		if nbits != bits {
			return fmt.Errorf("labelstore: canonical length mismatch for vertex %d (%d vs %d bits)", v, nbits, bits)
		}
		return w.add(v, bits, buf[:(nbits+7)/8])
	}
	if err := w.captureParams(paramsOf(l), v); err != nil {
		return err
	}
	w.enc = bitio.Writer{}
	if err := encodeRecord3(l, &w.enc); err != nil {
		return err
	}
	return w.add(v, bits, w.enc.Bytes())
}

// AddCanonical appends a record given its canonical serialized form —
// the splice/repartition path when the source record is FSDL2-encoded.
// When the writer compresses, the payload is decoded (and thereby
// CRC-independently validated) and re-encoded.
func (w *Format3Writer) AddCanonical(v, bits int, data []byte) error {
	if !w.compress {
		return w.add(v, bits, data)
	}
	l, err := core.DecodeLabel(data, bits)
	if err != nil {
		return fmt.Errorf("labelstore: record for vertex %d does not decode: %w", v, err)
	}
	return w.AddLabel(v, l)
}

// AddStored appends a payload already in this writer's target encoding —
// the incremental-compaction fast path, copying a clean compressed
// record from the previous generation without transcoding. The caller
// vouches that the payload came from a store with identical parameters.
func (w *Format3Writer) AddStored(v, bits int, payload []byte, prm rec3Params) error {
	if w.compress {
		if err := w.captureParams(prm, v); err != nil {
			return err
		}
	}
	return w.add(v, bits, payload)
}

func (w *Format3Writer) captureParams(p rec3Params, v int) error {
	if !p.set {
		return fmt.Errorf("labelstore: vertex %d record carries no parameters", v)
	}
	if !w.prm.set {
		w.prm = p
		return nil
	}
	if w.prm != p {
		return fmt.Errorf("labelstore: vertex %d parameters differ from the store's", v)
	}
	return nil
}

func (w *Format3Writer) add(v, bits int, payload []byte) error {
	if v < 0 || v >= w.n {
		return fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, w.n)
	}
	if int64(v) <= w.lastV {
		return fmt.Errorf("labelstore: vertex %d out of order (last %d)", v, w.lastV)
	}
	if w.added >= w.count {
		return fmt.Errorf("labelstore: more than %d records added", w.count)
	}
	if bits < 0 || bits > maxLabelBits {
		return fmt.Errorf("labelstore: implausible label size %d bits for vertex %d", bits, v)
	}
	var ent [format3EntryLen]byte
	le := binary.LittleEndian
	le.PutUint32(ent[0:], uint32(v))
	le.PutUint32(ent[4:], uint32(bits))
	le.PutUint64(ent[8:], uint64(w.pos))
	le.PutUint32(ent[16:], uint32(len(payload)))
	le.PutUint32(ent[20:], recordChecksum(v, bits, payload))
	w.entries = append(w.entries, ent[:]...)
	if _, err := w.f.Write(payload); err != nil {
		return fmt.Errorf("labelstore: write record for vertex %d: %w", v, err)
	}
	w.pos += int64(len(payload))
	w.lastV = int64(v)
	w.added++
	return nil
}

// Finish writes the index and header page, sealing the file.
func (w *Format3Writer) Finish() error {
	if w.added != w.count {
		return fmt.Errorf("labelstore: %d records added, header promised %d", w.added, w.count)
	}
	flags := byte(0)
	if w.compress {
		flags |= format3FlagCompressed
	}
	h := &format3Header{
		flags:   flags,
		n:       uint64(w.n),
		count:   uint64(w.count),
		dataOff: uint64(w.dataOff),
		dataLen: uint64(w.pos),
		prm:     w.prm,
	}
	if len(w.entries) > 0 {
		if _, err := w.f.WriteAt(w.entries, format3Page); err != nil {
			return fmt.Errorf("labelstore: write index: %w", err)
		}
		// Zero-fill the alignment gap between index end and data start so
		// the file has no undefined bytes.
		gapStart := format3Page + int64(len(w.entries))
		if gap := w.dataOff - gapStart; gap > 0 {
			if _, err := w.f.WriteAt(make([]byte, gap), gapStart); err != nil {
				return fmt.Errorf("labelstore: write index padding: %w", err)
			}
		}
	}
	if _, err := w.f.WriteAt(encodeFormat3Header(h), 0); err != nil {
		return fmt.Errorf("labelstore: write header: %w", err)
	}
	return nil
}

// SaveFormat3 writes the labels of the given vertices (all when nil) of
// scheme s as an FSDL3 file — the mmap-era sibling of Save. Vertices are
// deduplicated and written in ascending order.
func SaveFormat3(f fileLike, s *core.Scheme, vertices []int, compress bool) error {
	n := s.Graph().NumVertices()
	ids, err := normalizeVertices(vertices, n)
	if err != nil {
		return err
	}
	w, err := NewFormat3Writer(f, n, len(ids), compress)
	if err != nil {
		return err
	}
	const chunk = 256
	for off := 0; off < len(ids); off += chunk {
		part := ids[off:min(off+chunk, len(ids))]
		labels := s.Labels(part)
		for i, v := range part {
			if err := w.AddLabel(v, labels[i]); err != nil {
				return err
			}
		}
	}
	return w.Finish()
}

// SaveSplicedFormat3 is SaveSpliced for FSDL3 output: dirty vertices are
// re-extracted from s, clean ones are copied from prev — payload bytes
// verbatim when prev is a compressed FSDL3 store of the same shape, via
// canonical bytes (transcoding as needed) otherwise. The output is
// byte-identical to SaveFormat3(f, s, vertices, compress).
func SaveSplicedFormat3(f fileLike, s *core.Scheme, prev *Store, dirty []int32, vertices []int, compress bool) error {
	n := s.Graph().NumVertices()
	if prev.NumVertices() != n {
		return fmt.Errorf("labelstore: splice base has n=%d, scheme has %d", prev.NumVertices(), n)
	}
	ids, err := normalizeVertices(vertices, n)
	if err != nil {
		return err
	}
	isDirty := make(map[int32]struct{}, len(dirty))
	for _, v := range dirty {
		isDirty[v] = struct{}{}
	}
	w, err := NewFormat3Writer(f, n, len(ids), compress)
	if err != nil {
		return err
	}
	// Stored-payload copies are only valid when the previous generation
	// uses the exact target encoding.
	fastCopy := compress && prev.f3 != nil && prev.f3.hdr.compressed()
	const chunk = 256
	part := make([]int, 0, chunk)
	for off := 0; off < len(ids); off += chunk {
		span := ids[off:min(off+chunk, len(ids))]
		part = part[:0]
		for _, v := range span {
			if _, ok := isDirty[int32(v)]; ok {
				part = append(part, v)
			}
		}
		labels := s.Labels(part)
		li := 0
		for _, v := range span {
			if li < len(part) && part[li] == v {
				err = w.AddLabel(v, labels[li])
				li++
			} else if fastCopy && !prev.inOverlay(int32(v)) {
				// The overlay guard matches SaveVerticesFormat3: a clean
				// vertex healed via Put must be copied from its repaired
				// heap record (the Raw path below), not the damaged disk
				// payload.
				bits, payload, ok := prev.f3.storedPayload(int32(v))
				if !ok {
					return fmt.Errorf("labelstore: splice base is missing clean vertex %d", v)
				}
				err = w.AddStored(v, bits, payload, prev.f3.hdr.prm)
			} else {
				bits, data, ok := prev.Raw(v)
				if !ok {
					return fmt.Errorf("labelstore: splice base is missing clean vertex %d", v)
				}
				err = w.AddCanonical(v, bits, data)
			}
			if err != nil {
				return err
			}
		}
	}
	return w.Finish()
}

// SaveVerticesFormat3 writes a store holding only the given vertices as
// FSDL3 — the partition path. Output is deterministic: ascending vertex
// order, duplicates collapsed, byte-identical to SaveFormat3 over the
// same records.
func (st *Store) SaveVerticesFormat3(f fileLike, vertices []int, compress bool) error {
	ids, err := normalizeVertices(vertices, st.n)
	if err != nil {
		return err
	}
	w, err := NewFormat3Writer(f, st.n, len(ids), compress)
	if err != nil {
		return err
	}
	fastCopy := compress && st.f3 != nil && st.f3.hdr.compressed()
	for _, v := range ids {
		if fastCopy && !st.inOverlay(int32(v)) {
			bits, payload, ok := st.f3.storedPayload(int32(v))
			if !ok {
				return fmt.Errorf("labelstore: no label for vertex %d", v)
			}
			if err := w.AddStored(v, bits, payload, st.f3.hdr.prm); err != nil {
				return err
			}
			continue
		}
		bits, data, ok := st.Raw(v)
		if !ok {
			return fmt.Errorf("labelstore: no label for vertex %d", v)
		}
		if err := w.AddCanonical(v, bits, data); err != nil {
			return err
		}
	}
	return w.Finish()
}

// normalizeVertices sorts and deduplicates ids (0..n-1 when nil),
// rejecting out-of-range vertices.
func normalizeVertices(vertices []int, n int) ([]int, error) {
	if vertices == nil {
		ids := make([]int, n)
		for i := range ids {
			ids[i] = i
		}
		return ids, nil
	}
	for _, v := range vertices {
		if v < 0 || v >= n {
			return nil, fmt.Errorf("labelstore: vertex %d out of range [0,%d)", v, n)
		}
	}
	ids := slices.Clone(vertices)
	slices.Sort(ids)
	return slices.Compact(ids), nil
}
