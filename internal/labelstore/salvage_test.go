package labelstore

import (
	"bytes"
	"encoding/binary"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

// saveV1 hand-rolls the legacy FSDL1 container (no per-record checksums)
// so backward-compatible reads stay covered now that Save writes FSDL2.
func saveV1(t *testing.T, s *core.Scheme) []byte {
	t.Helper()
	var buf bytes.Buffer
	buf.WriteString("FSDL1")
	var scratch [binary.MaxVarintLen64]byte
	wu := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		buf.Write(scratch[:k])
	}
	n := s.Graph().NumVertices()
	wu(uint64(n))
	wu(uint64(n))
	for v := 0; v < n; v++ {
		b, nbits := s.Label(v).Encode()
		wu(uint64(v))
		wu(uint64(nbits))
		buf.Write(b[:(nbits+7)/8])
	}
	return buf.Bytes()
}

func TestLoadReadsLegacyV1(t *testing.T) {
	g := gen.Grid2D(5, 5)
	s := buildScheme(t, g)
	raw := saveV1(t, s)

	st, err := Load(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("strict load of v1: %v", err)
	}
	if st.NumLabels() != 25 {
		t.Fatalf("v1 load kept %d labels, want 25", st.NumLabels())
	}
	st2, rep, err := LoadPartial(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("salvage load of v1: %v", err)
	}
	if rep.Version != 1 || rep.Kept != 25 || rep.Lost() != 0 || rep.Truncated {
		t.Fatalf("v1 salvage report %+v, want version 1, 25/25 kept", rep)
	}
	if st2.NumLabels() != 25 {
		t.Fatalf("v1 salvage kept %d labels, want 25", st2.NumLabels())
	}
	// A v1 bundle re-saved upgrades to v2 and still round-trips.
	var up bytes.Buffer
	if err := st.Save(&up); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(up.Bytes(), []byte("FSDL2")) {
		t.Error("re-save did not upgrade to FSDL2")
	}
	if _, err := Load(bytes.NewReader(up.Bytes())); err != nil {
		t.Fatalf("upgraded bundle unreadable: %v", err)
	}
}

func TestLoadDetectsBitRot(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	// Flip one bit somewhere in the body: the strict loader must refuse
	// the file no matter which record the damage lands in.
	for _, off := range []int{16, len(good) / 2, len(good) - 3} {
		bad := append([]byte(nil), good...)
		bad[off] ^= 0x20
		if _, err := Load(bytes.NewReader(bad)); err == nil {
			t.Errorf("bit flip at offset %d went undetected", off)
		}
	}
}

func TestLoadPartialSalvagesAroundDamage(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	bad := append([]byte(nil), good...)
	bad[len(bad)/2] ^= 0xff
	st, rep, err := LoadPartial(bytes.NewReader(bad))
	if err != nil {
		t.Fatalf("salvage failed outright: %v", err)
	}
	if rep.Kept == 0 {
		t.Fatalf("salvage kept nothing: %+v", rep)
	}
	if rep.Kept >= rep.Total {
		t.Fatalf("salvage claims a damaged file was intact: %+v", rep)
	}
	if !rep.Truncated && len(rep.Corrupt) == 0 {
		t.Fatalf("records lost but neither Corrupt nor Truncated set: %+v", rep)
	}
	if st.NumLabels() != rep.Kept {
		t.Fatalf("store holds %d labels but report says %d kept", st.NumLabels(), rep.Kept)
	}
	// Every salvaged label must decode cleanly.
	for v := 0; v < st.NumVertices(); v++ {
		if !st.Has(v) {
			continue
		}
		if _, err := st.Label(v); err != nil {
			t.Fatalf("salvaged label %d does not decode: %v", v, err)
		}
	}
}

func TestLoadPartialTruncatedFile(t *testing.T) {
	g := gen.Grid2D(5, 5)
	s := buildScheme(t, g)
	var buf bytes.Buffer
	if err := Save(&buf, s, nil); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()*2/3]
	st, rep, err := LoadPartial(bytes.NewReader(cut))
	if err != nil {
		t.Fatalf("salvage of truncated file failed outright: %v", err)
	}
	if !rep.Truncated {
		t.Fatalf("truncation not reported: %+v", rep)
	}
	if rep.Kept == 0 || rep.Kept >= rep.Total {
		t.Fatalf("implausible salvage from a 2/3 file: %+v", rep)
	}
	if st.NumLabels() != rep.Kept {
		t.Fatalf("store/report disagree: %d vs %+v", st.NumLabels(), rep)
	}
}

// TestDistanceRobustFromSalvagedStore closes the loop: a store missing a
// fault's label still answers, flags the degradation, and never
// undercuts the exact baseline.
func TestDistanceRobustFromSalvagedStore(t *testing.T) {
	g := gen.Grid2D(6, 6)
	s := buildScheme(t, g)

	// Save every label except vertex 14's — the same shape a salvage that
	// dropped record 14 produces.
	kept := make([]int, 0, 35)
	for v := 0; v < 36; v++ {
		if v != 14 {
			kept = append(kept, v)
		}
	}
	var buf bytes.Buffer
	if err := Save(&buf, s, kept); err != nil {
		t.Fatal(err)
	}
	st, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	faults := graph.NewFaultSet()
	faults.AddVertex(14)
	faults.AddVertex(21)
	truth := g.DistAvoiding(0, 35, faults)

	// The strict path refuses the query outright.
	if _, _, err := st.Distance(0, 35, faults); err == nil {
		t.Fatal("strict Distance answered with a missing fault label")
	}
	res, err := st.DistanceRobust(0, 35, faults, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Degraded {
		t.Fatalf("missing fault label not flagged: %+v", res)
	}
	if len(res.MissingFaultLabels) != 1 || res.MissingFaultLabels[0] != 14 {
		t.Fatalf("MissingFaultLabels = %v, want [14]", res.MissingFaultLabels)
	}
	if res.OK && res.Dist < int64(truth) {
		t.Fatalf("degraded store answer %d below true %d", res.Dist, truth)
	}

	// With every label present the robust path is not degraded and agrees
	// with the strict one.
	var full bytes.Buffer
	if err := Save(&full, s, nil); err != nil {
		t.Fatal(err)
	}
	stFull, err := Load(&full)
	if err != nil {
		t.Fatal(err)
	}
	strict, strictOK, err := stFull.Distance(0, 35, faults)
	if err != nil {
		t.Fatal(err)
	}
	res, err = stFull.DistanceRobust(0, 35, faults, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Degraded || res.OK != strictOK || (strictOK && res.Dist != strict) {
		t.Fatalf("healthy robust query %+v disagrees with strict (%d,%v)", res, strict, strictOK)
	}
}
