package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBidirMatchesUnidirectionalBasics(t *testing.T) {
	g := grid(t, 9, 7)
	f := FaultVertices(22, 31, 40)
	for s := 0; s < 63; s += 5 {
		for d := 0; d < 63; d += 7 {
			want := g.DistAvoiding(s, d, f)
			got := g.DistAvoidingBidir(s, d, f)
			if got != want {
				t.Fatalf("(%d,%d): bidir %d, unidir %d", s, d, got, want)
			}
		}
	}
}

func TestBidirForbiddenEndpoints(t *testing.T) {
	g := path(t, 6)
	f := FaultVertices(0)
	if Reachable(g.DistAvoidingBidir(0, 5, f)) {
		t.Error("forbidden source must be unreachable")
	}
	if Reachable(g.DistAvoidingBidir(5, 0, f)) {
		t.Error("forbidden target must be unreachable")
	}
	if d := g.DistAvoidingBidir(3, 3, FaultVertices(1)); d != 0 {
		t.Errorf("self distance = %d, want 0", d)
	}
}

func TestBidirEdgeFaults(t *testing.T) {
	c4, _ := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	f := NewFaultSet()
	f.AddEdge(0, 1)
	if d := c4.DistAvoidingBidir(0, 1, f); d != 3 {
		t.Errorf("C4 minus edge: d = %d, want 3", d)
	}
	p := path(t, 8)
	fb := NewFaultSet()
	fb.AddEdge(3, 4)
	if Reachable(p.DistAvoidingBidir(0, 7, fb)) {
		t.Error("cut bridge must disconnect")
	}
}

func TestBidirDisconnectedGraph(t *testing.T) {
	g, _ := FromEdges(6, [][2]int{{0, 1}, {1, 2}, {3, 4}, {4, 5}})
	if Reachable(g.DistAvoidingBidir(0, 5, nil)) {
		t.Error("cross-component must be unreachable")
	}
	if d := g.DistAvoidingBidir(0, 2, nil); d != 2 {
		t.Errorf("within component d = %d, want 2", d)
	}
}

// Property: bidirectional equals unidirectional on random graphs with
// random fault sets — the load-bearing equivalence.
func TestBidirEquivalenceProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(70)
		g := randomConnected(t, n, rng.Intn(2*n), rng)
		for trial := 0; trial < 12; trial++ {
			s, d := rng.Intn(n), rng.Intn(n)
			f := NewFaultSet()
			for i := 0; i < rng.Intn(5); i++ {
				f.AddVertex(rng.Intn(n))
			}
			for i := 0; i < rng.Intn(3); i++ {
				u := rng.Intn(n)
				nb := g.Neighbors(u)
				if len(nb) > 0 {
					f.AddEdge(u, int(nb[rng.Intn(len(nb))]))
				}
			}
			if g.DistAvoiding(s, d, f) != g.DistAvoidingBidir(s, d, f) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestBidirLongPath(t *testing.T) {
	g := path(t, 5000)
	if d := g.DistAvoidingBidir(0, 4999, nil); d != 4999 {
		t.Errorf("long path d = %d, want 4999", d)
	}
	f := FaultVertices(2500)
	if Reachable(g.DistAvoidingBidir(0, 4999, f)) {
		t.Error("cut long path must disconnect")
	}
}
