package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBFSPath(t *testing.T) {
	g := path(t, 10)
	dist := g.BFS(3)
	for v := 0; v < 10; v++ {
		want := v - 3
		if want < 0 {
			want = -want
		}
		if dist[v] != int32(want) {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], want)
		}
	}
}

func TestBFSGridManhattan(t *testing.T) {
	g := grid(t, 8, 6)
	dist := g.BFS(0)
	for y := 0; y < 6; y++ {
		for x := 0; x < 8; x++ {
			if got, want := dist[y*8+x], int32(x+y); got != want {
				t.Errorf("dist(0 -> (%d,%d)) = %d, want %d", x, y, got, want)
			}
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	dist := g.BFS(0)
	if Reachable(dist[2]) || Reachable(dist[3]) {
		t.Error("other component should be unreachable")
	}
	if dist[1] != 1 {
		t.Errorf("dist[1] = %d, want 1", dist[1])
	}
}

func TestTruncatedBFSMatchesFullBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(t, 60, 60, rng)
		src := rng.Intn(60)
		radius := int32(rng.Intn(6))
		full := g.BFS(src)
		got := map[int32]int32{}
		g.TruncatedBFS(src, radius, func(v, d int32) {
			if prev, dup := got[v]; dup {
				t.Fatalf("vertex %d visited twice (d=%d then %d)", v, prev, d)
			}
			got[v] = d
		})
		for v := 0; v < 60; v++ {
			inRange := Reachable(full[v]) && full[v] <= radius
			d, present := got[int32(v)]
			if inRange != present {
				t.Fatalf("radius %d: vertex %d presence=%v, want %v", radius, v, present, inRange)
			}
			if present && d != full[v] {
				t.Fatalf("vertex %d: truncated d=%d, full d=%d", v, d, full[v])
			}
		}
	}
}

func TestBFSScratchReusable(t *testing.T) {
	g := grid(t, 10, 10)
	s := NewBFSScratch(g.NumVertices())
	for trial := 0; trial < 5; trial++ {
		count := 0
		s.TruncatedBFS(g, 55, 2, func(v, d int32) { count++ })
		// Ball of radius 2 in the interior of a 2-D grid has 13 vertices.
		if count != 13 {
			t.Fatalf("trial %d: ball size = %d, want 13", trial, count)
		}
	}
}

func TestTruncatedBFSNondecreasingOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(t, 80, 150, rng)
	last := int32(-1)
	g.TruncatedBFS(17, 5, func(v, d int32) {
		if d < last {
			t.Fatalf("visit order regressed: %d after %d", d, last)
		}
		last = d
	})
}

func TestMultiSourceBFS(t *testing.T) {
	g := path(t, 11)
	dist, nearest := g.MultiSourceBFS([]int{0, 10})
	if dist[5] != 5 {
		t.Errorf("dist[5] = %d, want 5", dist[5])
	}
	if dist[2] != 2 || nearest[2] != 0 {
		t.Errorf("vertex 2: got (d=%d, src=%d), want (2, 0)", dist[2], nearest[2])
	}
	if dist[8] != 2 || nearest[8] != 10 {
		t.Errorf("vertex 8: got (d=%d, src=%d), want (2, 10)", dist[8], nearest[8])
	}
}

func TestMultiSourceBFSAgainstMinOfBFS(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := randomConnected(t, 70, 100, rng)
	sources := []int{3, 31, 59}
	dist, nearest := g.MultiSourceBFS(sources)
	per := make([][]int32, len(sources))
	for i, s := range sources {
		per[i] = g.BFS(s)
	}
	for v := 0; v < 70; v++ {
		best := Infinity
		for i := range sources {
			if Reachable(per[i][v]) && (!Reachable(best) || per[i][v] < best) {
				best = per[i][v]
			}
		}
		if dist[v] != best {
			t.Fatalf("vertex %d: multi-source %d, want %d", v, dist[v], best)
		}
		if Reachable(best) {
			// nearest must achieve the min.
			found := false
			for i, s := range sources {
				if int32(s) == nearest[v] && per[i][v] == best {
					found = true
				}
			}
			if !found {
				t.Fatalf("vertex %d: nearest=%d does not achieve min dist", v, nearest[v])
			}
		}
	}
}

func TestBFSAvoidingVertex(t *testing.T) {
	g := grid(t, 5, 5) // 0..24, vertex (x,y) = y*5+x
	// Block the middle column except the top row: distances must detour.
	f := FaultVertices(2+1*5, 2+2*5, 2+3*5, 2+4*5)
	d := g.DistAvoiding(0+2*5, 4+2*5, f) // (0,2) -> (4,2)
	// Must go up to row 0 to cross: (0,2)->(0,0)->(4,0)->(4,2) = 2+4+2 = 8.
	if d != 8 {
		t.Errorf("detour distance = %d, want 8", d)
	}
}

func TestBFSAvoidingEdge(t *testing.T) {
	g := path(t, 4)
	f := NewFaultSet()
	f.AddEdge(1, 2)
	if Reachable(g.DistAvoiding(0, 3, f)) {
		t.Error("cutting the bridge must disconnect the path")
	}
	c4, _ := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if d := c4.DistAvoiding(0, 2, f); d != 2 {
		t.Errorf("C4 avoiding (1,2): d = %d, want 2", d)
	}
	f2 := NewFaultSet()
	f2.AddEdge(0, 1)
	if d := c4.DistAvoiding(0, 1, f2); d != 3 {
		t.Errorf("C4 avoiding edge (0,1): d(0,1) = %d, want 3", d)
	}
}

func TestBFSAvoidingForbiddenEndpoint(t *testing.T) {
	g := path(t, 3)
	f := FaultVertices(0)
	if Reachable(g.DistAvoiding(0, 2, f)) {
		t.Error("forbidden source must be unreachable")
	}
	if Reachable(g.DistAvoiding(2, 0, f)) {
		t.Error("forbidden target must be unreachable")
	}
}

// Property: BFS distances obey the triangle-ish BFS invariant — neighbors
// differ by at most 1, and every reachable non-source vertex has a neighbor
// exactly one closer.
func TestBFSInvariantProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		g := randomConnected(t, n, rng.Intn(2*n), rng)
		src := rng.Intn(n)
		dist := g.BFS(src)
		for v := 0; v < n; v++ {
			if v == src {
				if dist[v] != 0 {
					return false
				}
				continue
			}
			if !Reachable(dist[v]) {
				return false // connected graph: everything reachable
			}
			hasParent := false
			for _, w := range g.Neighbors(v) {
				diff := dist[v] - dist[w]
				if diff > 1 || diff < -1 {
					return false
				}
				if diff == 1 {
					hasParent = true
				}
			}
			if !hasParent {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestEccentricityAndDiameter(t *testing.T) {
	g := path(t, 9)
	if e := g.Eccentricity(4); e != 4 {
		t.Errorf("Eccentricity(middle) = %d, want 4", e)
	}
	if d := g.Diameter(); d != 8 {
		t.Errorf("Diameter = %d, want 8", d)
	}
	gr := grid(t, 4, 4)
	if d := gr.Diameter(); d != 6 {
		t.Errorf("grid Diameter = %d, want 6", d)
	}
}
