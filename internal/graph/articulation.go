package graph

// ArticulationPoints returns the cut vertices of the graph — the vertices
// whose removal increases the number of connected components — via an
// iterative Tarjan lowlink DFS (iterative so deep paths do not overflow
// the stack). Used by the adversarial fault generators: failing a cut
// vertex is the cheapest way to disconnect queries.
func (g *Graph) ArticulationPoints() []int {
	n := g.NumVertices()
	disc := make([]int32, n) // discovery time, 0 = unvisited
	low := make([]int32, n)
	parent := make([]int32, n)
	isCut := make([]bool, n)
	for i := range parent {
		parent[i] = -1
	}
	var timer int32
	type frame struct {
		v       int32
		nextIdx int32 // index into Neighbors(v) to resume at
		kids    int32 // DFS children (for the root rule)
	}
	var stack []frame
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack = append(stack[:0], frame{v: int32(start)})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			nb := g.Neighbors(int(top.v))
			advanced := false
			for top.nextIdx < int32(len(nb)) {
				w := nb[top.nextIdx]
				top.nextIdx++
				if disc[w] == 0 {
					parent[w] = top.v
					top.kids++
					timer++
					disc[w] = timer
					low[w] = timer
					stack = append(stack, frame{v: w})
					advanced = true
					break
				}
				if w != parent[top.v] && disc[w] < low[top.v] {
					low[top.v] = disc[w]
				}
			}
			if advanced {
				continue
			}
			// Post-order: fold v's lowlink into its parent and apply the
			// articulation rules.
			v := top.v
			kids := top.kids
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if int(p) != start && low[v] >= disc[p] {
					isCut[p] = true
				}
			}
			if int(v) == start && kids >= 2 {
				isCut[v] = true
			}
		}
	}
	var cuts []int
	for v, c := range isCut {
		if c {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

// Bridges returns the cut edges of the graph (edges whose removal
// disconnects their endpoints), as (u,v) pairs with u < v, via the same
// lowlink machinery.
func (g *Graph) Bridges() [][2]int {
	n := g.NumVertices()
	disc := make([]int32, n)
	low := make([]int32, n)
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = -1
	}
	var timer int32
	var bridges [][2]int
	type frame struct {
		v         int32
		nextIdx   int32
		parentDup bool // whether one parallel edge back to parent was skipped
	}
	var stack []frame
	for start := 0; start < n; start++ {
		if disc[start] != 0 {
			continue
		}
		timer++
		disc[start] = timer
		low[start] = timer
		stack = append(stack[:0], frame{v: int32(start)})
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			nb := g.Neighbors(int(top.v))
			advanced := false
			for top.nextIdx < int32(len(nb)) {
				w := nb[top.nextIdx]
				top.nextIdx++
				if disc[w] == 0 {
					parent[w] = top.v
					timer++
					disc[w] = timer
					low[w] = timer
					stack = append(stack, frame{v: w})
					advanced = true
					break
				}
				if w == parent[top.v] && !top.parentDup {
					// Skip the single tree edge back to the parent (the
					// builder rejects parallel edges, so one skip is
					// exactly right).
					top.parentDup = true
					continue
				}
				if disc[w] < low[top.v] {
					low[top.v] = disc[w]
				}
			}
			if advanced {
				continue
			}
			v := top.v
			stack = stack[:len(stack)-1]
			p := parent[v]
			if p >= 0 {
				if low[v] < low[p] {
					low[p] = low[v]
				}
				if low[v] > disc[p] {
					a, b := int(p), int(v)
					if a > b {
						a, b = b, a
					}
					bridges = append(bridges, [2]int{a, b})
				}
			}
		}
	}
	return bridges
}
