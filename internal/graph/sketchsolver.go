package graph

// SketchSolver is reusable scratch for the query-time sketch graphs
// H(s,t,F): an adjacency-arc weighted multigraph plus the Dijkstra state
// (distance, parent and heap arrays) needed to solve it. A decode builds
// thousands of tiny sketch graphs over a query stream; constructing a
// fresh Weighted plus fresh Dijkstra arrays for each one dominates the
// decode's allocation profile, so the solver keeps every array and is
// Reset between uses, growing to the largest sketch it has seen.
//
// The arc layout and the search mirror Weighted.ShortestPath exactly —
// same insertion order, same heap discipline, same stale-entry skip — so
// equal-weight tie-breaking (and hence traced paths) are bit-identical
// to the unpooled path. A SketchSolver is not safe for concurrent use.
type SketchSolver struct {
	head   []int32 // per-vertex head of the arc list, -1 terminated
	next   []int32 // arc -> next arc of the same vertex
	to     []int32 // arc -> target vertex
	wt     []int64 // arc -> weight
	dist   []int64
	parent []int32
	pq     []distEntry
	n      int
}

// Reset prepares the solver for a sketch graph on n vertices, dropping
// all previously added edges but keeping every backing array.
func (s *SketchSolver) Reset(n int) {
	s.n = n
	if cap(s.head) < n {
		s.head = make([]int32, n)
		s.dist = make([]int64, n)
		s.parent = make([]int32, n)
	}
	s.head = s.head[:n]
	s.dist = s.dist[:n]
	s.parent = s.parent[:n]
	for i := range s.head {
		s.head[i] = -1
	}
	s.next = s.next[:0]
	s.to = s.to[:0]
	s.wt = s.wt[:0]
	s.pq = s.pq[:0]
}

// AddEdge inserts the undirected edge (u,v) with the given nonnegative
// weight. Same contract as Weighted.AddEdge.
func (s *SketchSolver) AddEdge(u, v int, weight int64) {
	if weight < 0 {
		panic("graph: negative edge weight")
	}
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic("graph: weighted edge endpoint out of range")
	}
	s.addArc(u, v, weight)
	s.addArc(v, u, weight)
}

func (s *SketchSolver) addArc(u, v int, weight int64) {
	s.next = append(s.next, s.head[u])
	s.to = append(s.to, int32(v))
	s.wt = append(s.wt, weight)
	s.head[u] = int32(len(s.to) - 1)
}

// ShortestPath returns d(src,dst), or WeightedInfinity when dst is
// unreachable. The search settles vertices exactly as
// Weighted.ShortestPath does and terminates once dst is settled; the
// parent tree of the settled region remains available to PathTo until
// the next Reset or ShortestPath call.
func (s *SketchSolver) ShortestPath(src, dst int) int64 {
	for i := range s.dist {
		s.dist[i] = WeightedInfinity
		s.parent[i] = -1
	}
	s.pq = s.pq[:0]
	s.dist[src] = 0
	s.push(distEntry{v: int32(src), d: 0})
	for len(s.pq) > 0 {
		e := s.pop()
		if e.d != s.dist[e.v] {
			continue // stale entry
		}
		if int(e.v) == dst {
			return s.dist[dst]
		}
		for arc := s.head[e.v]; arc != -1; arc = s.next[arc] {
			t, nd := s.to[arc], e.d+s.wt[arc]
			if s.dist[t] == WeightedInfinity || nd < s.dist[t] {
				s.dist[t] = nd
				s.parent[t] = e.v
				s.push(distEntry{v: t, d: nd})
			}
		}
	}
	return s.dist[dst]
}

// PathTo appends the shortest path src..dst found by the last
// ShortestPath call onto out and returns it. It must only be called when
// that search reached dst.
func (s *SketchSolver) PathTo(src, dst int, out []int32) []int32 {
	start := len(out)
	for v := int32(dst); v != int32(src); v = s.parent[v] {
		out = append(out, v)
	}
	out = append(out, int32(src))
	for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// push and pop replicate container/heap's up/down on a min-heap ordered
// by distance, so the pop order — and therefore every tie-break — is
// identical to the heap the unpooled Dijkstra uses.
func (s *SketchSolver) push(e distEntry) {
	s.pq = append(s.pq, e)
	j := len(s.pq) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s.pq[j].d >= s.pq[i].d {
			break
		}
		s.pq[i], s.pq[j] = s.pq[j], s.pq[i]
		j = i
	}
}

func (s *SketchSolver) pop() distEntry {
	n := len(s.pq) - 1
	s.pq[0], s.pq[n] = s.pq[n], s.pq[0]
	// sift down over pq[:n], mirroring container/heap.down.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.pq[j2].d < s.pq[j1].d {
			j = j2
		}
		if s.pq[j].d >= s.pq[i].d {
			break
		}
		s.pq[i], s.pq[j] = s.pq[j], s.pq[i]
		i = j
	}
	e := s.pq[n]
	s.pq = s.pq[:n]
	return e
}
