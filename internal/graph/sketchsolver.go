package graph

// SketchSolver is reusable scratch for the query-time sketch graphs
// H(s,t,F): a CSR-packed weighted multigraph plus the Dijkstra state
// (distance, parent and heap arrays) needed to solve it. A decode builds
// thousands of tiny sketch graphs over a query stream; constructing a
// fresh Weighted plus fresh Dijkstra arrays for each one dominates the
// decode's allocation profile, so the solver keeps every array and is
// Reset between uses, growing to the largest sketch it has seen.
//
// Edges are staged by AddEdge and packed into CSR form (off/to/wt) by
// the first ShortestPath after a Reset. The packing fills each vertex's
// arc range in reverse insertion order, which makes the relaxation
// sequence identical to the head/next prepend-list layout this solver
// (and Weighted.ShortestPath) used before — so equal-weight
// tie-breaking, parents, and hence traced paths are bit-identical to
// the historical behavior. A SketchSolver is not safe for concurrent
// use.
type SketchSolver struct {
	// staged undirected edges, packed on demand.
	eu, ev []int32
	ew     []int64
	// CSR arcs: the arcs of vertex v are off[v]..off[v+1].
	off []int32
	to  []int32
	wt  []int64
	// Dijkstra state.
	dist   []int64
	parent []int32
	pq     []distEntry
	n      int
	packed bool
}

// Reset prepares the solver for a sketch graph on n vertices, dropping
// all previously added edges but keeping every backing array.
func (s *SketchSolver) Reset(n int) {
	s.n = n
	if cap(s.dist) < n {
		s.dist = make([]int64, n)
		s.parent = make([]int32, n)
	}
	s.dist = s.dist[:n]
	s.parent = s.parent[:n]
	s.eu = s.eu[:0]
	s.ev = s.ev[:0]
	s.ew = s.ew[:0]
	s.pq = s.pq[:0]
	s.packed = false
}

// AddEdge stages the undirected edge (u,v) with the given nonnegative
// weight. Same contract as Weighted.AddEdge.
func (s *SketchSolver) AddEdge(u, v int, weight int64) {
	if weight < 0 {
		panic("graph: negative edge weight")
	}
	if u < 0 || u >= s.n || v < 0 || v >= s.n {
		panic("graph: weighted edge endpoint out of range")
	}
	s.eu = append(s.eu, int32(u))
	s.ev = append(s.ev, int32(v))
	s.ew = append(s.ew, weight)
	s.packed = false
}

// pack builds the CSR arc arrays from the staged edge list: one counting
// pass, a prefix sum, then a reverse-order fill so that each vertex's
// arc range reads back in reverse insertion order (see the type
// comment).
func (s *SketchSolver) pack() {
	nArcs := 2 * len(s.eu)
	if cap(s.off) < s.n+1 {
		s.off = make([]int32, s.n+1)
	}
	s.off = s.off[:s.n+1]
	clear(s.off)
	if cap(s.to) < nArcs {
		s.to = make([]int32, nArcs)
		s.wt = make([]int64, nArcs)
	}
	s.to = s.to[:nArcs]
	s.wt = s.wt[:nArcs]
	for i := range s.eu {
		s.off[s.eu[i]+1]++
		s.off[s.ev[i]+1]++
	}
	for v := 0; v < s.n; v++ {
		s.off[v+1] += s.off[v]
	}
	// cur[v] tracks the next free slot of v's range; reuse the dist array?
	// No — dist is int64 and live across calls. Reuse parent as the fill
	// cursor instead: ShortestPath reinitializes it afterwards anyway.
	cur := s.parent
	for v := 0; v < s.n; v++ {
		cur[v] = s.off[v]
	}
	for i := len(s.eu) - 1; i >= 0; i-- {
		u, v, w := s.eu[i], s.ev[i], s.ew[i]
		s.to[cur[u]] = v
		s.wt[cur[u]] = w
		cur[u]++
		s.to[cur[v]] = u
		s.wt[cur[v]] = w
		cur[v]++
	}
	s.packed = true
}

// ShortestPath returns d(src,dst), or WeightedInfinity when dst is
// unreachable. The search settles vertices exactly as
// Weighted.ShortestPath does and terminates once dst is settled; the
// parent tree of the settled region remains available to PathTo until
// the next Reset or ShortestPath call.
func (s *SketchSolver) ShortestPath(src, dst int) int64 {
	if !s.packed {
		s.pack()
	}
	for i := range s.dist {
		s.dist[i] = WeightedInfinity
		s.parent[i] = -1
	}
	s.pq = s.pq[:0]
	s.dist[src] = 0
	s.push(distEntry{v: int32(src), d: 0})
	for len(s.pq) > 0 {
		e := s.pop()
		if e.d != s.dist[e.v] {
			continue // stale entry
		}
		if int(e.v) == dst {
			return s.dist[dst]
		}
		for arc := s.off[e.v]; arc < s.off[e.v+1]; arc++ {
			t, nd := s.to[arc], e.d+s.wt[arc]
			if s.dist[t] == WeightedInfinity || nd < s.dist[t] {
				s.dist[t] = nd
				s.parent[t] = e.v
				s.push(distEntry{v: t, d: nd})
			}
		}
	}
	return s.dist[dst]
}

// PathTo appends the shortest path src..dst found by the last
// ShortestPath call onto out and returns it. It must only be called when
// that search reached dst.
func (s *SketchSolver) PathTo(src, dst int, out []int32) []int32 {
	start := len(out)
	for v := int32(dst); v != int32(src); v = s.parent[v] {
		out = append(out, v)
	}
	out = append(out, int32(src))
	for i, j := start, len(out)-1; i < j; i, j = i+1, j-1 {
		out[i], out[j] = out[j], out[i]
	}
	return out
}

// push and pop replicate container/heap's up/down on a min-heap ordered
// by distance, so the pop order — and therefore every tie-break — is
// identical to the heap the unpooled Dijkstra uses.
func (s *SketchSolver) push(e distEntry) {
	s.pq = append(s.pq, e)
	j := len(s.pq) - 1
	for j > 0 {
		i := (j - 1) / 2
		if s.pq[j].d >= s.pq[i].d {
			break
		}
		s.pq[i], s.pq[j] = s.pq[j], s.pq[i]
		j = i
	}
}

func (s *SketchSolver) pop() distEntry {
	n := len(s.pq) - 1
	s.pq[0], s.pq[n] = s.pq[n], s.pq[0]
	// sift down over pq[:n], mirroring container/heap.down.
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s.pq[j2].d < s.pq[j1].d {
			j = j2
		}
		if s.pq[j].d >= s.pq[i].d {
			break
		}
		s.pq[i], s.pq[j] = s.pq[j], s.pq[i]
		i = j
	}
	e := s.pq[n]
	s.pq = s.pq[:n]
	return e
}
