package graph

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzRead asserts the graph text parser never panics and that parsed
// graphs round-trip through WriteTo.
func FuzzRead(f *testing.F) {
	f.Add("3 2\n0 1\n1 2\n")
	f.Add("0 0\n")
	f.Add("2 1\n0 0\n")
	f.Add("junk")
	f.Fuzz(func(t *testing.T, input string) {
		g, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := g.WriteTo(&buf); err != nil {
			t.Fatalf("write of parsed graph failed: %v", err)
		}
		g2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
			t.Fatal("round trip changed the graph")
		}
	})
}
