package graph

import (
	"bytes"
	"strings"
	"testing"
)

const sampleGR = `c a little road network
p sp 4 10
a 1 2 3
a 2 1 3
a 2 3 5
a 3 2 5
a 3 4 2
a 4 3 2
a 4 1 7
a 1 4 7
a 1 3 1
a 3 1 1
`

func TestReadDIMACS(t *testing.T) {
	g, weights, err := ReadDIMACS(strings.NewReader(sampleGR))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 4 || g.NumEdges() != 5 {
		t.Fatalf("size = (%d,%d), want (4,5)", g.NumVertices(), g.NumEdges())
	}
	want := map[[2]int]int32{
		{0, 1}: 3, {1, 2}: 5, {2, 3}: 2, {0, 3}: 7, {0, 2}: 1,
	}
	for k, w := range want {
		if weights[k] != w {
			t.Errorf("weight%v = %d, want %d", k, weights[k], w)
		}
		if !g.HasEdge(k[0], k[1]) {
			t.Errorf("edge %v missing", k)
		}
	}
}

func TestReadDIMACSErrors(t *testing.T) {
	cases := map[string]string{
		"no problem":     "a 1 2 3\n",
		"bad problem":    "p xx 3 3\n",
		"double problem": "p sp 2 0\np sp 2 0\n",
		"bad arc arity":  "p sp 2 1\na 1 2\n",
		"out of range":   "p sp 2 1\na 1 5 1\n",
		"bad weight":     "p sp 2 1\na 1 2 0\n",
		"unknown record": "p sp 2 0\nz 1\n",
		"empty":          "",
	}
	for name, input := range cases {
		if _, _, err := ReadDIMACS(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestReadDIMACSIgnoresSelfLoopsAndComments(t *testing.T) {
	in := "c hi\np sp 3 3\na 1 1 5\na 1 2 2\nc mid\na 2 1 2\n"
	g, weights, err := ReadDIMACS(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 1 || weights[[2]int{0, 1}] != 2 {
		t.Fatalf("got %d edges, weights %v", g.NumEdges(), weights)
	}
}

func TestDIMACSRoundTrip(t *testing.T) {
	g, weights, err := ReadDIMACS(strings.NewReader(sampleGR))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, weights); err != nil {
		t.Fatal(err)
	}
	g2, weights2, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if g2.NumEdges() != g.NumEdges() {
		t.Fatalf("edges %d -> %d", g.NumEdges(), g2.NumEdges())
	}
	for k, w := range weights {
		if weights2[k] != w {
			t.Errorf("weight%v %d -> %d", k, w, weights2[k])
		}
	}
}

func TestWriteDIMACSDefaultWeights(t *testing.T) {
	g := path(t, 3)
	var buf bytes.Buffer
	if err := WriteDIMACS(&buf, g, nil); err != nil {
		t.Fatal(err)
	}
	_, weights, err := ReadDIMACS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for k, w := range weights {
		if w != 1 {
			t.Errorf("default weight%v = %d, want 1", k, w)
		}
	}
}
