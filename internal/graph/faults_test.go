package graph

import (
	"sort"
	"testing"
)

func TestFaultSetNilIsEmpty(t *testing.T) {
	var f *FaultSet
	if f.HasVertex(3) || f.HasEdge(1, 2) {
		t.Error("nil fault set should contain nothing")
	}
	if f.Size() != 0 || f.NumVertices() != 0 || f.NumEdges() != 0 {
		t.Error("nil fault set should have size 0")
	}
	if f.Vertices() != nil || f.Edges() != nil {
		t.Error("nil fault set enumerations should be nil")
	}
	c := f.Clone()
	if c == nil || c.Size() != 0 {
		t.Error("Clone of nil should be empty non-nil set")
	}
}

func TestFaultSetVertices(t *testing.T) {
	f := FaultVertices(3, 1, 3) // duplicate collapses
	if f.NumVertices() != 2 {
		t.Errorf("NumVertices = %d, want 2", f.NumVertices())
	}
	if !f.HasVertex(1) || !f.HasVertex(3) || f.HasVertex(2) {
		t.Error("membership wrong")
	}
	vs := f.Vertices()
	sort.Ints(vs)
	if len(vs) != 2 || vs[0] != 1 || vs[1] != 3 {
		t.Errorf("Vertices = %v, want [1 3]", vs)
	}
}

func TestFaultSetEdgesOrderInsensitive(t *testing.T) {
	f := NewFaultSet()
	f.AddEdge(7, 2)
	if !f.HasEdge(2, 7) || !f.HasEdge(7, 2) {
		t.Error("edge membership must be order-insensitive")
	}
	if f.HasEdge(2, 8) {
		t.Error("absent edge reported present")
	}
	es := f.Edges()
	if len(es) != 1 || es[0] != [2]int{2, 7} {
		t.Errorf("Edges = %v, want [[2 7]]", es)
	}
}

func TestFaultSetRemove(t *testing.T) {
	f := FaultVertices(5)
	f.AddEdge(1, 2)
	f.RemoveVertex(5)
	f.RemoveEdge(2, 1)
	if f.Size() != 0 {
		t.Errorf("Size = %d after removals, want 0", f.Size())
	}
	f.RemoveVertex(99) // no-op on absent
	f.RemoveEdge(3, 4)
}

func TestFaultSetCloneIndependent(t *testing.T) {
	f := FaultVertices(1)
	f.AddEdge(2, 3)
	c := f.Clone()
	c.AddVertex(9)
	c.RemoveEdge(2, 3)
	if f.HasVertex(9) {
		t.Error("mutating clone leaked into original (vertex)")
	}
	if !f.HasEdge(2, 3) {
		t.Error("mutating clone leaked into original (edge)")
	}
	if c.Size() != 2 {
		t.Errorf("clone Size = %d, want 2", c.Size())
	}
}

func TestEdgeKeySymmetric(t *testing.T) {
	if edgeKey(3, 9) != edgeKey(9, 3) {
		t.Error("edgeKey must be symmetric")
	}
	if edgeKey(3, 9) == edgeKey(3, 8) {
		t.Error("distinct edges must have distinct keys")
	}
}
