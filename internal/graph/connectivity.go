package graph

// DSU is a disjoint-set union (union-find) structure with path halving and
// union by size.
type DSU struct {
	parent []int32
	size   []int32
	count  int
}

// NewDSU returns a DSU over n singleton sets.
func NewDSU(n int) *DSU {
	d := &DSU{parent: make([]int32, n), size: make([]int32, n), count: n}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int) int {
	r := int32(x)
	for d.parent[r] != r {
		d.parent[r] = d.parent[d.parent[r]]
		r = d.parent[r]
	}
	return int(r)
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already together).
func (d *DSU) Union(x, y int) bool {
	rx, ry := int32(d.Find(x)), int32(d.Find(y))
	if rx == ry {
		return false
	}
	if d.size[rx] < d.size[ry] {
		rx, ry = ry, rx
	}
	d.parent[ry] = rx
	d.size[rx] += d.size[ry]
	d.count--
	return true
}

// Connected reports whether x and y are in the same set.
func (d *DSU) Connected(x, y int) bool { return d.Find(x) == d.Find(y) }

// Count returns the current number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// Components returns, for each vertex, a component id in [0, k) where k is
// the number of connected components, plus k itself.
func (g *Graph) Components() (comp []int32, k int) {
	n := g.NumVertices()
	comp = make([]int32, n)
	for i := range comp {
		comp[i] = -1
	}
	var q []int32
	for s := 0; s < n; s++ {
		if comp[s] != -1 {
			continue
		}
		comp[s] = int32(k)
		q = append(q[:0], int32(s))
		for head := 0; head < len(q); head++ {
			u := q[head]
			for _, w := range g.Neighbors(int(u)) {
				if comp[w] == -1 {
					comp[w] = int32(k)
					q = append(q, w)
				}
			}
		}
		k++
	}
	return comp, k
}

// IsConnected reports whether the graph is connected (the empty graph is
// considered connected).
func (g *Graph) IsConnected() bool {
	_, k := g.Components()
	return k <= 1
}

// ConnectedAvoiding reports whether s and t are connected in G \ F.
func (g *Graph) ConnectedAvoiding(s, t int, forbidden *FaultSet) bool {
	return Reachable(g.DistAvoiding(s, t, forbidden))
}
