package graph

import (
	"math/rand"
	"testing"
)

// TestSketchSolverMatchesWeighted checks the reusable solver against
// Weighted.ShortestPath on random multigraphs: identical distances AND
// identical paths — the solver's heap must replicate container/heap's
// tie-breaking exactly, or traced routes drift between the pooled and
// unpooled decode paths.
func TestSketchSolverMatchesWeighted(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var s SketchSolver
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		m := rng.Intn(3 * n)
		type edge struct {
			u, v int
			w    int64
		}
		edges := make([]edge, 0, m)
		for i := 0; i < m; i++ {
			// Duplicate pairs on purpose: H is a multigraph, and small
			// weight ranges force ties that expose heap-order divergence.
			edges = append(edges, edge{rng.Intn(n), rng.Intn(n), int64(rng.Intn(4))})
		}
		w := NewWeighted(n)
		s.Reset(n)
		for _, e := range edges {
			if e.u == e.v {
				continue
			}
			w.AddEdge(e.u, e.v, e.w)
			s.AddEdge(e.u, e.v, e.w)
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		wantD, wantPath := w.ShortestPath(src, dst)
		gotD := s.ShortestPath(src, dst)
		if gotD != wantD {
			t.Fatalf("trial %d: dist(%d,%d) = %d, Weighted says %d", trial, src, dst, gotD, wantD)
		}
		if wantD == WeightedInfinity {
			continue
		}
		gotPath := s.PathTo(src, dst, nil)
		if len(gotPath) != len(wantPath) {
			t.Fatalf("trial %d: path length %d vs %d", trial, len(gotPath), len(wantPath))
		}
		for i := range gotPath {
			if int(gotPath[i]) != wantPath[i] {
				t.Fatalf("trial %d: path[%d] = %d, Weighted says %d (tie-break divergence)",
					trial, i, gotPath[i], wantPath[i])
			}
		}
	}
}

// TestSketchSolverReuse verifies Reset fully isolates runs: a big graph
// followed by a small one must not leak arcs or distances.
func TestSketchSolverReuse(t *testing.T) {
	var s SketchSolver
	s.Reset(10)
	for i := 0; i < 9; i++ {
		s.AddEdge(i, i+1, 1)
	}
	if d := s.ShortestPath(0, 9); d != 9 {
		t.Fatalf("path graph dist = %d, want 9", d)
	}
	s.Reset(3)
	s.AddEdge(0, 1, 5)
	if d := s.ShortestPath(0, 2); d != WeightedInfinity {
		t.Fatalf("disconnected dist = %d, want infinity (stale arcs leaked)", d)
	}
	s.AddEdge(1, 2, 7)
	if d := s.ShortestPath(0, 2); d != 12 {
		t.Fatalf("dist = %d, want 12", d)
	}
}

func TestSketchSolverPanics(t *testing.T) {
	var s SketchSolver
	s.Reset(2)
	for _, fn := range []func(){
		func() { s.AddEdge(0, 1, -1) },
		func() { s.AddEdge(0, 2, 1) },
		func() { s.AddEdge(-1, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
