package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteTo serializes the graph in a minimal text format:
//
//	n m
//	u v        (one line per undirected edge, u < v)
//
// The format is stable and intended for the CLI tools and test fixtures.
func (g *Graph) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var total int64
	n, err := fmt.Fprintf(bw, "%d %d\n", g.NumVertices(), g.NumEdges())
	total += int64(n)
	if err != nil {
		return total, err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int) {
		if writeErr != nil {
			return
		}
		n, err := fmt.Fprintf(bw, "%d %d\n", u, v)
		total += int64(n)
		writeErr = err
	})
	if writeErr != nil {
		return total, writeErr
	}
	return total, bw.Flush()
}

// MaxReadVertices bounds the vertex count Read accepts — an
// anti-amplification limit so a tiny header cannot demand a giant
// allocation. 16M vertices is far beyond anything this repository
// processes.
const MaxReadVertices = 1 << 24

// Read parses the text format produced by WriteTo.
func Read(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var n, m int
	if _, err := fmt.Fscan(br, &n, &m); err != nil {
		return nil, fmt.Errorf("graph: read header: %w", err)
	}
	if n < 0 || m < 0 {
		return nil, fmt.Errorf("graph: negative header values n=%d m=%d", n, m)
	}
	if n > MaxReadVertices {
		return nil, fmt.Errorf("graph: header n=%d exceeds limit %d", n, MaxReadVertices)
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		var u, v int
		if _, err := fmt.Fscan(br, &u, &v); err != nil {
			return nil, fmt.Errorf("graph: read edge %d: %w", i, err)
		}
		if u < 0 || u >= n || v < 0 || v >= n {
			return nil, fmt.Errorf("graph: edge %d (%d,%d) out of range [0,%d)", i, u, v, n)
		}
		b.AddEdge(u, v)
	}
	return b.Build()
}
