package graph

// FaultSet is a set of forbidden vertices and/or edges, the F of a
// forbidden-set query. The zero value, and a nil *FaultSet, are both valid
// empty sets, so callers can pass nil for failure-free queries.
type FaultSet struct {
	vertices map[int32]struct{}
	edges    map[uint64]struct{}
}

// NewFaultSet returns an empty fault set.
func NewFaultSet() *FaultSet { return &FaultSet{} }

// FaultVertices builds a fault set from forbidden vertices only.
func FaultVertices(vs ...int) *FaultSet {
	f := NewFaultSet()
	for _, v := range vs {
		f.AddVertex(v)
	}
	return f
}

// AddVertex marks vertex v forbidden.
func (f *FaultSet) AddVertex(v int) {
	if f.vertices == nil {
		f.vertices = make(map[int32]struct{})
	}
	f.vertices[int32(v)] = struct{}{}
}

// AddEdge marks the undirected edge (u,v) forbidden.
func (f *FaultSet) AddEdge(u, v int) {
	if f.edges == nil {
		f.edges = make(map[uint64]struct{})
	}
	f.edges[edgeKey(u, v)] = struct{}{}
}

// RemoveVertex unmarks a forbidden vertex (used by the dynamic oracle when a
// failed vertex recovers). Removing an absent vertex is a no-op.
func (f *FaultSet) RemoveVertex(v int) {
	if f != nil && f.vertices != nil {
		delete(f.vertices, int32(v))
	}
}

// RemoveEdge unmarks a forbidden edge. Removing an absent edge is a no-op.
func (f *FaultSet) RemoveEdge(u, v int) {
	if f != nil && f.edges != nil {
		delete(f.edges, edgeKey(u, v))
	}
}

// HasVertex reports whether v is forbidden.
func (f *FaultSet) HasVertex(v int) bool {
	if f == nil || f.vertices == nil {
		return false
	}
	_, ok := f.vertices[int32(v)]
	return ok
}

// HasEdge reports whether the undirected edge (u,v) is forbidden.
func (f *FaultSet) HasEdge(u, v int) bool {
	if f == nil || f.edges == nil {
		return false
	}
	_, ok := f.edges[edgeKey(u, v)]
	return ok
}

// NumVertices returns the number of forbidden vertices.
func (f *FaultSet) NumVertices() int {
	if f == nil {
		return 0
	}
	return len(f.vertices)
}

// NumEdges returns the number of forbidden edges.
func (f *FaultSet) NumEdges() int {
	if f == nil {
		return 0
	}
	return len(f.edges)
}

// Size returns |F|, the total number of forbidden elements.
func (f *FaultSet) Size() int { return f.NumVertices() + f.NumEdges() }

// Vertices returns the forbidden vertices in unspecified order.
func (f *FaultSet) Vertices() []int {
	if f == nil {
		return nil
	}
	out := make([]int, 0, len(f.vertices))
	for v := range f.vertices {
		out = append(out, int(v))
	}
	return out
}

// Edges returns the forbidden edges as (u,v) pairs with u < v, in
// unspecified order.
func (f *FaultSet) Edges() [][2]int {
	if f == nil {
		return nil
	}
	out := make([][2]int, 0, len(f.edges))
	for k := range f.edges {
		out = append(out, [2]int{int(k >> 32), int(k & 0xffffffff)})
	}
	return out
}

// Clone returns an independent deep copy of the fault set.
func (f *FaultSet) Clone() *FaultSet {
	c := NewFaultSet()
	if f == nil {
		return c
	}
	if len(f.vertices) > 0 {
		c.vertices = make(map[int32]struct{}, len(f.vertices))
		for v := range f.vertices {
			c.vertices[v] = struct{}{}
		}
	}
	if len(f.edges) > 0 {
		c.edges = make(map[uint64]struct{}, len(f.edges))
		for e := range f.edges {
			c.edges[e] = struct{}{}
		}
	}
	return c
}

func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}
