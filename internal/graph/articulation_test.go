package graph

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// naiveArticulationPoints removes each vertex and counts components.
func naiveArticulationPoints(t testing.TB, g *Graph) []int {
	t.Helper()
	_, base := g.Components()
	var cuts []int
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		// Count components of G \ {v} among the other vertices.
		seen := make([]bool, n)
		seen[v] = true
		comps := 0
		var queue []int32
		for s := 0; s < n; s++ {
			if seen[s] {
				continue
			}
			comps++
			seen[s] = true
			queue = append(queue[:0], int32(s))
			for head := 0; head < len(queue); head++ {
				for _, w := range g.Neighbors(int(queue[head])) {
					if !seen[w] {
						seen[w] = true
						queue = append(queue, w)
					}
				}
			}
		}
		// Removing v removes one vertex; it is a cut vertex if the rest
		// splits into more components than before (accounting for v
		// possibly being an isolated vertex or a whole component).
		expected := base
		if g.Degree(v) == 0 {
			expected--
		}
		if comps > expected {
			cuts = append(cuts, v)
		}
	}
	return cuts
}

func naiveBridges(t testing.TB, g *Graph) [][2]int {
	t.Helper()
	var bridges [][2]int
	g.ForEachEdge(func(u, v int) {
		f := NewFaultSet()
		f.AddEdge(u, v)
		if !Reachable(g.DistAvoiding(u, v, f)) {
			bridges = append(bridges, [2]int{u, v})
		}
	})
	return bridges
}

func TestArticulationPath(t *testing.T) {
	g := path(t, 6)
	cuts := g.ArticulationPoints()
	sort.Ints(cuts)
	want := []int{1, 2, 3, 4} // all interior vertices
	if len(cuts) != len(want) {
		t.Fatalf("cuts = %v, want %v", cuts, want)
	}
	for i := range want {
		if cuts[i] != want[i] {
			t.Fatalf("cuts = %v, want %v", cuts, want)
		}
	}
}

func TestArticulationCycleHasNone(t *testing.T) {
	b := NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	g := b.MustBuild()
	if cuts := g.ArticulationPoints(); len(cuts) != 0 {
		t.Errorf("cycle has cut vertices %v", cuts)
	}
	if br := g.Bridges(); len(br) != 0 {
		t.Errorf("cycle has bridges %v", br)
	}
}

func TestBridgesPath(t *testing.T) {
	g := path(t, 5)
	br := g.Bridges()
	if len(br) != 4 {
		t.Fatalf("path bridges = %v, want all 4 edges", br)
	}
}

func TestArticulationBarbell(t *testing.T) {
	// Two triangles joined by a path: the joint vertices are cuts, the
	// connecting edges are bridges.
	b := NewBuilder(7)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0) // triangle A at {0,1,2}
	b.AddEdge(2, 3) // bridge
	b.AddEdge(3, 4) // bridge
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 4) // triangle B at {4,5,6}
	g := b.MustBuild()
	cuts := g.ArticulationPoints()
	sort.Ints(cuts)
	if len(cuts) != 3 || cuts[0] != 2 || cuts[1] != 3 || cuts[2] != 4 {
		t.Errorf("cuts = %v, want [2 3 4]", cuts)
	}
	br := g.Bridges()
	if len(br) != 2 {
		t.Errorf("bridges = %v, want the two path edges", br)
	}
}

// Property: the lowlink implementations agree with brute force on random
// graphs (connected and disconnected alike).
func TestArticulationAgainstNaiveProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(40)
		b := NewBuilder(n)
		added := map[uint64]bool{}
		for i := 0; i < rng.Intn(2*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || added[edgeKey(u, v)] {
				continue
			}
			added[edgeKey(u, v)] = true
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		got := g.ArticulationPoints()
		want := naiveArticulationPoints(t, g)
		sort.Ints(got)
		sort.Ints(want)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		gotBr := g.Bridges()
		wantBr := naiveBridges(t, g)
		sortPairs := func(ps [][2]int) {
			sort.Slice(ps, func(i, j int) bool {
				if ps[i][0] != ps[j][0] {
					return ps[i][0] < ps[j][0]
				}
				return ps[i][1] < ps[j][1]
			})
		}
		sortPairs(gotBr)
		sortPairs(wantBr)
		if len(gotBr) != len(wantBr) {
			return false
		}
		for i := range gotBr {
			if gotBr[i] != wantBr[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestArticulationDeepPathNoStackOverflow(t *testing.T) {
	g := path(t, 100000)
	cuts := g.ArticulationPoints()
	if len(cuts) != 99998 {
		t.Errorf("deep path cuts = %d, want 99998", len(cuts))
	}
	if br := g.Bridges(); len(br) != 99999 {
		t.Errorf("deep path bridges = %d, want 99999", len(br))
	}
}
