package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func TestWriteReadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(t, 40, 60, rng)
	var buf bytes.Buffer
	if _, err := g.WriteTo(&buf); err != nil {
		t.Fatalf("write: %v", err)
	}
	g2, err := Read(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g2.NumVertices() != g.NumVertices() || g2.NumEdges() != g.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			g2.NumVertices(), g2.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	g.ForEachEdge(func(u, v int) {
		if !g2.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) lost in round trip", u, v)
		}
	})
}

func TestReadRejectsBadHeader(t *testing.T) {
	if _, err := Read(strings.NewReader("not a graph")); err == nil {
		t.Error("expected error on garbage header")
	}
	if _, err := Read(strings.NewReader("-1 0\n")); err == nil {
		t.Error("expected error on negative n")
	}
}

func TestReadRejectsOutOfRangeEdge(t *testing.T) {
	if _, err := Read(strings.NewReader("2 1\n0 5\n")); err == nil {
		t.Error("expected error on out-of-range edge")
	}
}

func TestReadRejectsTruncated(t *testing.T) {
	if _, err := Read(strings.NewReader("3 2\n0 1\n")); err == nil {
		t.Error("expected error on missing edge line")
	}
}
