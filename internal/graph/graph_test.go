package graph

import (
	"math/rand"
	"testing"
)

func path(t testing.TB, n int) *Graph {
	t.Helper()
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build path: %v", err)
	}
	return g
}

func grid(t testing.TB, w, h int) *Graph {
	t.Helper()
	b := NewBuilder(w * h)
	id := func(x, y int) int { return y*w + x }
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(id(x, y), id(x+1, y))
			}
			if y+1 < h {
				b.AddEdge(id(x, y), id(x, y+1))
			}
		}
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build grid: %v", err)
	}
	return g
}

// randomConnected returns a random connected graph: a random spanning tree
// plus extra random edges.
func randomConnected(t testing.TB, n, extra int, rng *rand.Rand) *Graph {
	t.Helper()
	b := NewBuilder(n)
	seen := map[uint64]bool{}
	add := func(u, v int) bool {
		if u == v {
			return false
		}
		k := edgeKey(u, v)
		if seen[k] {
			return false
		}
		seen[k] = true
		b.AddEdge(u, v)
		return true
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < extra; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	g, err := b.Build()
	if err != nil {
		t.Fatalf("build random: %v", err)
	}
	return g
}

func TestBuilderBasics(t *testing.T) {
	g := path(t, 5)
	if got := g.NumVertices(); got != 5 {
		t.Errorf("NumVertices = %d, want 5", got)
	}
	if got := g.NumEdges(); got != 4 {
		t.Errorf("NumEdges = %d, want 4", got)
	}
	if got := g.Degree(0); got != 1 {
		t.Errorf("Degree(0) = %d, want 1", got)
	}
	if got := g.Degree(2); got != 2 {
		t.Errorf("Degree(2) = %d, want 2", got)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("HasEdge(1,2) should hold in both orders")
	}
	if g.HasEdge(0, 2) {
		t.Error("HasEdge(0,2) should be false")
	}
}

func TestBuilderRejectsSelfLoop(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(1, 1)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected self-loop error")
	}
}

func TestBuilderRejectsDuplicate(t *testing.T) {
	b := NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0)
	if _, err := b.Build(); err == nil {
		t.Fatal("expected duplicate-edge error")
	}
}

func TestBuilderRejectsReuse(t *testing.T) {
	b := NewBuilder(2)
	b.AddEdge(0, 1)
	if _, err := b.Build(); err != nil {
		t.Fatalf("first build: %v", err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected reuse error")
	}
}

func TestBuilderPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range edge")
		}
	}()
	NewBuilder(2).AddEdge(0, 2)
}

func TestNeighborsSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(t, 100, 300, rng)
	for v := 0; v < g.NumVertices(); v++ {
		nb := g.Neighbors(v)
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("neighbors of %d not strictly sorted: %v", v, nb)
			}
		}
	}
}

func TestForEachEdgeCountsEachOnce(t *testing.T) {
	g := grid(t, 7, 5)
	count := 0
	g.ForEachEdge(func(u, v int) {
		if u >= v {
			t.Fatalf("ForEachEdge gave u=%d >= v=%d", u, v)
		}
		count++
	})
	if count != g.NumEdges() {
		t.Errorf("ForEachEdge visited %d edges, want %d", count, g.NumEdges())
	}
}

func TestFromEdges(t *testing.T) {
	g, err := FromEdges(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	if err != nil {
		t.Fatalf("FromEdges: %v", err)
	}
	if g.NumEdges() != 4 {
		t.Errorf("NumEdges = %d, want 4", g.NumEdges())
	}
	if g.Dist(0, 2) != 2 {
		t.Errorf("Dist(0,2) = %d, want 2 on C4", g.Dist(0, 2))
	}
}

func TestEmptyGraph(t *testing.T) {
	var g Graph
	if g.NumVertices() != 0 || g.NumEdges() != 0 {
		t.Error("zero Graph should be empty")
	}
	b := NewBuilder(0)
	g2, err := b.Build()
	if err != nil {
		t.Fatalf("build empty: %v", err)
	}
	if g2.NumVertices() != 0 {
		t.Error("empty build should have 0 vertices")
	}
	if !g2.IsConnected() {
		t.Error("empty graph is connected by convention")
	}
}

func TestIsolatedVertices(t *testing.T) {
	g, err := FromEdges(5, [][2]int{{0, 1}})
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(4) != 0 {
		t.Error("vertex 4 should be isolated")
	}
	if Reachable(g.Dist(0, 4)) {
		t.Error("isolated vertex should be unreachable")
	}
}
