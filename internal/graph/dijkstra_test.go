package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedBasics(t *testing.T) {
	w := NewWeighted(4)
	w.AddEdge(0, 1, 5)
	w.AddEdge(1, 2, 3)
	w.AddEdge(0, 2, 10)
	w.AddEdge(2, 3, 1)
	if w.NumVertices() != 4 || w.NumEdges() != 4 {
		t.Fatalf("size = (%d,%d), want (4,4)", w.NumVertices(), w.NumEdges())
	}
	dist := w.Dijkstra(0)
	want := []int64{0, 5, 8, 9}
	for v, d := range want {
		if dist[v] != d {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], d)
		}
	}
}

func TestWeightedParallelEdgesLightestWins(t *testing.T) {
	w := NewWeighted(2)
	w.AddEdge(0, 1, 7)
	w.AddEdge(0, 1, 3)
	w.AddEdge(0, 1, 9)
	if d := w.Dist(0, 1); d != 3 {
		t.Errorf("Dist = %d, want 3 (lightest parallel edge)", d)
	}
}

func TestWeightedUnreachable(t *testing.T) {
	w := NewWeighted(3)
	w.AddEdge(0, 1, 1)
	if d := w.Dist(0, 2); d != WeightedInfinity {
		t.Errorf("Dist to isolated vertex = %d, want WeightedInfinity", d)
	}
	if d, p := w.ShortestPath(0, 2); d != WeightedInfinity || p != nil {
		t.Errorf("ShortestPath = (%d,%v), want (inf,nil)", d, p)
	}
}

func TestWeightedShortestPathIsValid(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 25; trial++ {
		n := 15 + rng.Intn(30)
		w := NewWeighted(n)
		type edge struct {
			u, v int
			wt   int64
		}
		edges := map[[2]int]int64{}
		for i := 1; i < n; i++ {
			u, wt := rng.Intn(i), int64(1+rng.Intn(20))
			w.AddEdge(u, i, wt)
			edges[[2]int{min2(u, i), max2(u, i)}] = wt
		}
		s, d := rng.Intn(n), rng.Intn(n)
		got, pathVerts := w.ShortestPath(s, d)
		if got == WeightedInfinity {
			t.Fatalf("tree must be connected")
		}
		if pathVerts[0] != s || pathVerts[len(pathVerts)-1] != d {
			t.Fatalf("path endpoints %v, want %d..%d", pathVerts, s, d)
		}
		var sum int64
		for i := 1; i < len(pathVerts); i++ {
			a, b := pathVerts[i-1], pathVerts[i]
			wt, ok := edges[[2]int{min2(a, b), max2(a, b)}]
			if !ok {
				t.Fatalf("path uses nonexistent edge (%d,%d)", a, b)
			}
			sum += wt
		}
		if sum != got {
			t.Fatalf("path weight %d != reported dist %d", sum, got)
		}
	}
}

func TestWeightedPanicsNegativeWeight(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative weight")
		}
	}()
	NewWeighted(2).AddEdge(0, 1, -1)
}

// Property: Dijkstra on a unit-weighted copy of an unweighted graph equals
// BFS. This ties the two search routines together.
func TestDijkstraEqualsBFSOnUnitWeights(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		g := randomConnected(t, n, rng.Intn(n), rng)
		w := NewWeighted(n)
		g.ForEachEdge(func(u, v int) { w.AddEdge(u, v, 1) })
		src := rng.Intn(n)
		bd := g.BFS(src)
		dd := w.Dijkstra(src)
		for v := 0; v < n; v++ {
			if int64(bd[v]) != dd[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestWeightedEarlyStopMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	n := 50
	w := NewWeighted(n)
	for i := 1; i < n; i++ {
		w.AddEdge(rng.Intn(i), i, int64(1+rng.Intn(9)))
	}
	for extra := 0; extra < 40; extra++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			w.AddEdge(u, v, int64(1+rng.Intn(9)))
		}
	}
	full := w.Dijkstra(0)
	for dst := 0; dst < n; dst++ {
		if got := w.Dist(0, dst); got != full[dst] {
			t.Fatalf("early-stop Dist(0,%d) = %d, full = %d", dst, got, full[dst])
		}
	}
}

func min2(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max2(a, b int) int {
	if a > b {
		return a
	}
	return b
}
