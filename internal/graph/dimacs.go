package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadDIMACS parses the DIMACS shortest-path format (the format of the
// 9th DIMACS Implementation Challenge road networks, ".gr" files):
//
//	c <comment>
//	p sp <n> <m>
//	a <u> <v> <weight>     (1-indexed, directed arcs)
//
// Arcs are folded into undirected edges (road networks list both
// directions; duplicates collapse, keeping the first weight). Returns the
// unweighted topology and the per-edge weights keyed by canonical (u<v)
// 0-indexed endpoints. Use internal/wgraph to run the weighted scheme over
// the result.
func ReadDIMACS(r io.Reader) (*Graph, map[[2]int]int32, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	var b *Builder
	n := -1
	weights := map[[2]int]int32{}
	line := 0
	for sc.Scan() {
		line++
		fields := strings.Fields(sc.Text())
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "c":
			continue
		case "p":
			if n >= 0 {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: duplicate problem line", line)
			}
			if len(fields) != 4 || fields[1] != "sp" {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: want 'p sp n m'", line)
			}
			pn, err := strconv.Atoi(fields[2])
			if err != nil || pn < 0 || pn > MaxReadVertices {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: bad n %q", line, fields[2])
			}
			n = pn
			b = NewBuilder(n)
		case "a":
			if b == nil {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: arc before problem line", line)
			}
			if len(fields) != 4 {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: want 'a u v w'", line)
			}
			u, err1 := strconv.Atoi(fields[1])
			v, err2 := strconv.Atoi(fields[2])
			w, err3 := strconv.Atoi(fields[3])
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: bad arc", line)
			}
			if u < 1 || u > n || v < 1 || v > n {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: endpoint out of [1,%d]", line, n)
			}
			if w <= 0 || w > 1<<30 {
				return nil, nil, fmt.Errorf("graph: dimacs line %d: weight %d out of range", line, w)
			}
			if u == v {
				continue // ignore self-loop arcs
			}
			a, c := u-1, v-1
			if a > c {
				a, c = c, a
			}
			key := [2]int{a, c}
			if _, dup := weights[key]; dup {
				continue // reverse arc of an already-seen edge
			}
			weights[key] = int32(w)
			b.AddEdge(a, c)
		default:
			return nil, nil, fmt.Errorf("graph: dimacs line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, fmt.Errorf("graph: dimacs scan: %w", err)
	}
	if b == nil {
		return nil, nil, fmt.Errorf("graph: dimacs input has no problem line")
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("graph: dimacs build: %w", err)
	}
	return g, weights, nil
}

// WriteDIMACS writes the graph in DIMACS .gr format with the given edge
// weights (nil means all weights 1). Each undirected edge is written as
// two arcs, as road-network files do.
func WriteDIMACS(w io.Writer, g *Graph, weights map[[2]int]int32) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "p sp %d %d\n", g.NumVertices(), 2*g.NumEdges()); err != nil {
		return err
	}
	var writeErr error
	g.ForEachEdge(func(u, v int) {
		if writeErr != nil {
			return
		}
		wt := int32(1)
		if weights != nil {
			if stored, ok := weights[[2]int{u, v}]; ok {
				wt = stored
			}
		}
		if _, err := fmt.Fprintf(bw, "a %d %d %d\na %d %d %d\n", u+1, v+1, wt, v+1, u+1, wt); err != nil {
			writeErr = err
		}
	})
	if writeErr != nil {
		return writeErr
	}
	return bw.Flush()
}
