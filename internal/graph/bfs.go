package graph

// BFS computes single-source shortest-path distances from src in the
// unweighted graph. Unreachable vertices get Infinity.
func (g *Graph) BFS(src int) []int32 {
	dist := newDistSlice(g.NumVertices())
	q := make([]int32, 0, g.NumVertices())
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] == Infinity {
				dist[w] = du + 1
				q = append(q, w)
			}
		}
	}
	return dist
}

// TruncatedBFS explores vertices at distance at most radius from src and
// calls visit(v, d) once per discovered vertex (including src at d=0) in
// nondecreasing order of d.
//
// This convenience wrapper allocates a fresh O(n) BFSScratch per call and
// is intended for tests and one-off exploration only. Production callers
// run many small-ball searches and must hold a BFSScratch and call its
// TruncatedBFS method, which resets only the vertices the previous run
// touched.
func (g *Graph) TruncatedBFS(src int, radius int32, visit func(v, d int32)) {
	s := NewBFSScratch(g.NumVertices())
	s.TruncatedBFS(g, src, radius, visit)
}

// BFSScratch holds reusable state for repeated truncated BFS runs over the
// same graph size. It resets only the vertices touched by the previous run,
// making many small-ball searches cheap.
type BFSScratch struct {
	dist  []int32
	queue []int32
}

// NewBFSScratch returns scratch state for graphs with n vertices.
func NewBFSScratch(n int) *BFSScratch {
	return &BFSScratch{dist: newDistSlice(n)}
}

// TruncatedBFS runs a radius-bounded BFS from src using the scratch state.
// visit is called once per vertex within the radius, in nondecreasing
// distance order, with its distance. The scratch is cleaned before
// returning, so it is immediately reusable.
func (s *BFSScratch) TruncatedBFS(g *Graph, src int, radius int32, visit func(v, d int32)) {
	s.queue = s.queue[:0]
	s.dist[src] = 0
	s.queue = append(s.queue, int32(src))
	for head := 0; head < len(s.queue); head++ {
		u := s.queue[head]
		du := s.dist[u]
		visit(u, du)
		if du == radius {
			continue
		}
		for _, w := range g.Neighbors(int(u)) {
			if s.dist[w] == Infinity {
				s.dist[w] = du + 1
				s.queue = append(s.queue, w)
			}
		}
	}
	for _, v := range s.queue {
		s.dist[v] = Infinity
	}
}

// MultiSourceBFS computes, for every vertex, the distance to the nearest
// source and that source's identity. Vertices unreachable from all sources
// get distance Infinity and source -1.
func (g *Graph) MultiSourceBFS(sources []int) (dist []int32, nearest []int32) {
	n := g.NumVertices()
	dist = newDistSlice(n)
	nearest = make([]int32, n)
	for i := range nearest {
		nearest[i] = -1
	}
	q := make([]int32, 0, n)
	for _, s := range sources {
		if dist[s] == Infinity {
			dist[s] = 0
			nearest[s] = int32(s)
			q = append(q, int32(s))
		}
	}
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] == Infinity {
				dist[w] = du + 1
				nearest[w] = nearest[u]
				q = append(q, w)
			}
		}
	}
	return dist, nearest
}

// BFSAvoiding computes shortest-path distances from src in G \ F where the
// forbidden set F is given as forbidden vertices and forbidden edges. If src
// itself is forbidden, every vertex (including src) is Infinity.
func (g *Graph) BFSAvoiding(src int, forbidden *FaultSet) []int32 {
	dist := newDistSlice(g.NumVertices())
	if forbidden.HasVertex(src) {
		return dist
	}
	q := make([]int32, 0, g.NumVertices())
	dist[src] = 0
	q = append(q, int32(src))
	for head := 0; head < len(q); head++ {
		u := q[head]
		du := dist[u]
		for _, w := range g.Neighbors(int(u)) {
			if dist[w] != Infinity || forbidden.HasVertex(int(w)) || forbidden.HasEdge(int(u), int(w)) {
				continue
			}
			dist[w] = du + 1
			q = append(q, w)
		}
	}
	return dist
}

// DistAvoiding returns d_{G\F}(s,t), or Infinity when s and t are
// disconnected in the surviving graph (or either endpoint is forbidden).
func (g *Graph) DistAvoiding(s, t int, forbidden *FaultSet) int32 {
	if forbidden.HasVertex(s) || forbidden.HasVertex(t) {
		return Infinity
	}
	// Bidirectional would be faster, but exactness and simplicity win here:
	// this is the ground-truth baseline the whole evaluation trusts.
	return g.BFSAvoiding(s, forbidden)[t]
}

// Dist returns d_G(s,t) in the fault-free graph.
func (g *Graph) Dist(s, t int) int32 { return g.BFS(s)[t] }

// Eccentricity returns the greatest finite distance from v, i.e. the
// eccentricity of v within its connected component.
func (g *Graph) Eccentricity(v int) int32 {
	var ecc int32
	for _, d := range g.BFS(v) {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// Diameter returns the diameter of the graph (greatest finite pairwise
// distance within components). It runs n BFS traversals; intended for tests
// and generators on modest graphs.
func (g *Graph) Diameter() int32 {
	var diam int32
	for v := 0; v < g.NumVertices(); v++ {
		if e := g.Eccentricity(v); e > diam {
			diam = e
		}
	}
	return diam
}

func newDistSlice(n int) []int32 {
	dist := make([]int32, n)
	for i := range dist {
		dist[i] = Infinity
	}
	return dist
}
