package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDSUBasics(t *testing.T) {
	d := NewDSU(5)
	if d.Count() != 5 {
		t.Fatalf("Count = %d, want 5", d.Count())
	}
	if !d.Union(0, 1) {
		t.Error("first union should merge")
	}
	if d.Union(1, 0) {
		t.Error("repeated union should not merge")
	}
	d.Union(2, 3)
	if d.Connected(0, 2) {
		t.Error("0 and 2 should be separate")
	}
	d.Union(1, 3)
	if !d.Connected(0, 2) {
		t.Error("0 and 2 should now be connected")
	}
	if d.Count() != 2 {
		t.Errorf("Count = %d, want 2", d.Count())
	}
}

func TestComponents(t *testing.T) {
	g, err := FromEdges(7, [][2]int{{0, 1}, {1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	comp, k := g.Components()
	if k != 4 { // {0,1,2}, {3,4}, {5}, {6}
		t.Fatalf("k = %d, want 4", k)
	}
	if comp[0] != comp[2] || comp[3] != comp[4] {
		t.Error("component ids within a component must match")
	}
	if comp[0] == comp[3] || comp[5] == comp[6] {
		t.Error("distinct components must differ")
	}
}

func TestIsConnected(t *testing.T) {
	if !path(t, 6).IsConnected() {
		t.Error("path should be connected")
	}
	g, _ := FromEdges(3, [][2]int{{0, 1}})
	if g.IsConnected() {
		t.Error("graph with isolated vertex is not connected")
	}
}

// Property: DSU over the edges agrees with BFS components on random graphs.
func TestDSUAgreesWithComponents(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(80)
		b := NewBuilder(n)
		seen := map[uint64]bool{}
		for i := 0; i < rng.Intn(2*n); i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v || seen[edgeKey(u, v)] {
				continue
			}
			seen[edgeKey(u, v)] = true
			b.AddEdge(u, v)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		d := NewDSU(n)
		g.ForEachEdge(func(u, v int) { d.Union(u, v) })
		comp, k := g.Components()
		if d.Count() != k {
			return false
		}
		for u := 0; u < n; u++ {
			for v := u + 1; v < n; v++ {
				if (comp[u] == comp[v]) != d.Connected(u, v) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestConnectedAvoiding(t *testing.T) {
	g := path(t, 5)
	if !g.ConnectedAvoiding(0, 4, nil) {
		t.Error("nil fault set: path endpoints connected")
	}
	if g.ConnectedAvoiding(0, 4, FaultVertices(2)) {
		t.Error("cutting middle vertex disconnects path")
	}
	if !g.ConnectedAvoiding(0, 1, FaultVertices(2)) {
		t.Error("0 and 1 remain connected")
	}
}
