package graph

// DistAvoidingBidir returns d_{G\F}(s,t) like DistAvoiding, but searches
// from both endpoints simultaneously, expanding the smaller frontier
// first. On large graphs with mid-range distances this touches ~2·b^{d/2}
// vertices instead of b^d. Used by the exact baseline and the verifier;
// results are always identical to DistAvoiding.
func (g *Graph) DistAvoidingBidir(s, t int, forbidden *FaultSet) int32 {
	if forbidden.HasVertex(s) || forbidden.HasVertex(t) {
		return Infinity
	}
	if s == t {
		return 0
	}
	n := g.NumVertices()
	distS := newDistSlice(n)
	distT := newDistSlice(n)
	distS[s] = 0
	distT[t] = 0
	frontS := []int32{int32(s)}
	frontT := []int32{int32(t)}
	depthS, depthT := int32(0), int32(0)
	best := Infinity

	// expand advances one side by one BFS level; it returns the new
	// frontier and updates best on meetings with the other side.
	expand := func(front []int32, mine, other int32ds, depth int32) []int32 {
		var next []int32
		for _, u := range front {
			du := depth
			for _, w := range g.Neighbors(int(u)) {
				if mine.d[w] != Infinity || forbidden.HasVertex(int(w)) || forbidden.HasEdge(int(u), int(w)) {
					continue
				}
				mine.d[w] = du + 1
				if od := other.d[w]; od != Infinity {
					total := du + 1 + od
					if !Reachable(best) || total < best {
						best = total
					}
				}
				next = append(next, w)
			}
		}
		return next
	}

	for len(frontS) > 0 && len(frontT) > 0 {
		// Once a meeting is found, one more level on the shallower side
		// can still improve it; after both sides' next levels are pushed
		// past the meeting depth, no shorter path exists.
		if Reachable(best) && depthS+depthT+2 > best {
			return best
		}
		if len(frontS) <= len(frontT) {
			frontS = expand(frontS, int32ds{d: distS}, int32ds{d: distT}, depthS)
			depthS++
		} else {
			frontT = expand(frontT, int32ds{d: distT}, int32ds{d: distS}, depthT)
			depthT++
		}
	}
	return best
}

// int32ds wraps a distance slice so expand's signature stays readable.
type int32ds struct{ d []int32 }
