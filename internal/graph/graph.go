// Package graph provides the compact graph substrate used throughout the
// repository: an immutable unweighted undirected graph in CSR (compressed
// sparse row) form, builders, breadth-first searches (full, truncated,
// multi-source, and fault-avoiding), a small weighted multigraph with
// Dijkstra for query-time sketch graphs, and connectivity utilities.
//
// Vertices are dense integers in [0, n). The package is deliberately free of
// any labeling-scheme logic; it is the substrate every other package builds
// on.
package graph

import (
	"fmt"
	"slices"
	"sort"
)

// Infinity marks an unreachable vertex in distance slices returned by the
// search routines. It is negative so that any comparison "dist <= r" on
// reachable radii is naturally false for unreachable vertices only when the
// caller checks for it explicitly; use Reachable to test.
const Infinity int32 = -1

// Reachable reports whether a distance value produced by this package
// denotes a reachable vertex.
func Reachable(d int32) bool { return d >= 0 }

// Graph is an immutable unweighted undirected simple graph in CSR form.
// The zero value is an empty graph with no vertices.
type Graph struct {
	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []int32
}

// NumVertices returns the number of vertices n.
func (g *Graph) NumVertices() int {
	if len(g.offsets) == 0 {
		return 0
	}
	return len(g.offsets) - 1
}

// NumEdges returns the number of undirected edges m.
func (g *Graph) NumEdges() int { return len(g.adj) / 2 }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns a read-only view of the neighbors of v in increasing
// order. The returned slice aliases internal storage and must not be
// modified.
func (g *Graph) Neighbors(v int) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// HasEdge reports whether the edge (u,v) is present. It runs in
// O(log deg(u)) time.
func (g *Graph) HasEdge(u, v int) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= int32(v) })
	return i < len(nb) && nb[i] == int32(v)
}

// ForEachEdge calls fn once per undirected edge with u < v.
func (g *Graph) ForEachEdge(fn func(u, v int)) {
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.Neighbors(u) {
			if int(w) > u {
				fn(u, int(w))
			}
		}
	}
}

// Builder accumulates edges and produces an immutable Graph. Duplicate edges
// and self-loops are rejected at Build time with a descriptive error.
type Builder struct {
	n     int
	us    []int32
	vs    []int32
	valid bool
}

// NewBuilder returns a builder for a graph with n vertices.
func NewBuilder(n int) *Builder {
	return &Builder{n: n, valid: true}
}

// AddEdge records the undirected edge (u,v). Order of endpoints is
// irrelevant. It panics if either endpoint is out of range, since that is a
// programming error at the call site, never a data error.
func (b *Builder) AddEdge(u, v int) {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	if u > v {
		u, v = v, u
	}
	b.us = append(b.us, int32(u))
	b.vs = append(b.vs, int32(v))
}

// Build finalizes the builder into an immutable Graph. It returns an error
// on self-loops or duplicate edges. The builder can not be reused after
// Build.
func (b *Builder) Build() (*Graph, error) {
	if !b.valid {
		return nil, fmt.Errorf("graph: builder reused after Build")
	}
	b.valid = false
	deg := make([]int32, b.n+1)
	for i := range b.us {
		if b.us[i] == b.vs[i] {
			return nil, fmt.Errorf("graph: self-loop at vertex %d", b.us[i])
		}
		deg[b.us[i]+1]++
		deg[b.vs[i]+1]++
	}
	for i := 1; i <= b.n; i++ {
		deg[i] += deg[i-1]
	}
	adj := make([]int32, 2*len(b.us))
	next := make([]int32, b.n)
	copy(next, deg[:b.n])
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[next[u]] = v
		next[u]++
		adj[next[v]] = u
		next[v]++
	}
	g := &Graph{offsets: deg, adj: adj}
	for v := 0; v < b.n; v++ {
		nb := adj[deg[v]:deg[v+1]]
		slices.Sort(nb)
		for i := 1; i < len(nb); i++ {
			if nb[i] == nb[i-1] {
				return nil, fmt.Errorf("graph: duplicate edge (%d,%d)", v, nb[i])
			}
		}
	}
	return g, nil
}

// MustBuild is Build for graphs constructed from trusted generators; it
// panics on error. Intended for tests and generators whose inputs are
// correct by construction.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}

// FromEdges builds a graph directly from an edge list.
func FromEdges(n int, edges [][2]int) (*Graph, error) {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}
