package graph

import "container/heap"

// WeightedInfinity marks an unreachable vertex in weighted distance slices.
const WeightedInfinity int64 = -1

// Weighted is a mutable edge-weighted undirected multigraph used for the
// query-time sketch graphs H(s,t,F). Vertices are dense integers in [0, n);
// parallel edges are permitted (the lightest one wins during search).
type Weighted struct {
	n    int
	head []int32 // per-vertex head of the arc list, -1 terminated
	next []int32 // arc -> next arc of the same vertex
	to   []int32 // arc -> target vertex
	wt   []int64 // arc -> weight
}

// NewWeighted returns an empty weighted multigraph on n vertices.
func NewWeighted(n int) *Weighted {
	head := make([]int32, n)
	for i := range head {
		head[i] = -1
	}
	return &Weighted{n: n, head: head}
}

// NumVertices returns the number of vertices.
func (w *Weighted) NumVertices() int { return w.n }

// NumEdges returns the number of undirected edges added so far.
func (w *Weighted) NumEdges() int { return len(w.to) / 2 }

// AddEdge inserts the undirected edge (u,v) with the given nonnegative
// weight. It panics on negative weights or out-of-range endpoints: the
// sketch construction is the only caller and feeds it graph distances.
func (w *Weighted) AddEdge(u, v int, weight int64) {
	if weight < 0 {
		panic("graph: negative edge weight")
	}
	if u < 0 || u >= w.n || v < 0 || v >= w.n {
		panic("graph: weighted edge endpoint out of range")
	}
	w.addArc(u, v, weight)
	w.addArc(v, u, weight)
}

func (w *Weighted) addArc(u, v int, weight int64) {
	w.next = append(w.next, w.head[u])
	w.to = append(w.to, int32(v))
	w.wt = append(w.wt, weight)
	w.head[u] = int32(len(w.to) - 1)
}

// Dijkstra computes single-source shortest-path distances from src.
// Unreachable vertices get WeightedInfinity.
func (w *Weighted) Dijkstra(src int) []int64 {
	dist, _ := w.dijkstra(src, -1)
	return dist
}

// ShortestPath returns d(src,dst) and one shortest path (as a vertex
// sequence src..dst). The path is nil when dst is unreachable.
func (w *Weighted) ShortestPath(src, dst int) (int64, []int) {
	dist, parent := w.dijkstra(src, dst)
	if dist[dst] == WeightedInfinity {
		return WeightedInfinity, nil
	}
	var rev []int
	for v := dst; v != src; v = int(parent[v]) {
		rev = append(rev, v)
	}
	rev = append(rev, src)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return dist[dst], rev
}

// Dist returns d(src,dst), or WeightedInfinity when unreachable. The search
// terminates as soon as dst is settled.
func (w *Weighted) Dist(src, dst int) int64 {
	dist, _ := w.dijkstra(src, dst)
	return dist[dst]
}

func (w *Weighted) dijkstra(src, stopAt int) (dist []int64, parent []int32) {
	dist = make([]int64, w.n)
	parent = make([]int32, w.n)
	for i := range dist {
		dist[i] = WeightedInfinity
		parent[i] = -1
	}
	pq := &distHeap{}
	dist[src] = 0
	heap.Push(pq, distEntry{v: int32(src), d: 0})
	for pq.Len() > 0 {
		e := heap.Pop(pq).(distEntry)
		if e.d != dist[e.v] {
			continue // stale entry
		}
		if int(e.v) == stopAt {
			return dist, parent
		}
		for arc := w.head[e.v]; arc != -1; arc = w.next[arc] {
			t, nd := w.to[arc], e.d+w.wt[arc]
			if dist[t] == WeightedInfinity || nd < dist[t] {
				dist[t] = nd
				parent[t] = e.v
				heap.Push(pq, distEntry{v: t, d: nd})
			}
		}
	}
	return dist, parent
}

type distEntry struct {
	v int32
	d int64
}

type distHeap []distEntry

func (h distHeap) Len() int            { return len(h) }
func (h distHeap) Less(i, j int) bool  { return h[i].d < h[j].d }
func (h distHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *distHeap) Push(x interface{}) { *h = append(*h, x.(distEntry)) }
func (h *distHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
