package liveupdate

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"fsdl/internal/gen"
)

func walMuts(n int, start int32) []Mutation {
	var muts []Mutation
	for i := int32(0); i < int32(n); i++ {
		muts = append(muts, Mutation{Op: MutInsert, U: start + i, V: start + i + 1})
	}
	return muts
}

// TestWALSegmentRotation: a compaction marker seals the active file
// into a numbered segment and starts a fresh one; reopening replays
// sealed segments and the active tail in order.
func TestWALSegmentRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh wal replayed %d records", len(recs))
	}
	seq, err := w.Append(walMuts(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompaction(2, seq); err != nil {
		t.Fatal(err)
	}
	sealed := segmentPath(path, 0)
	if _, err := os.Stat(sealed); err != nil {
		t.Fatalf("sealed segment missing: %v", err)
	}
	if fi, err := os.Stat(path); err != nil || fi.Size() != 0 {
		t.Fatalf("active segment not fresh after rotation: %v (size %d)", err, fi.Size())
	}
	if _, err := w.Append(walMuts(2, 10)); err != nil {
		t.Fatal(err)
	}
	st := w.Stats()
	if st.Segments != 1 || st.OldestSealed.IsZero() {
		t.Fatalf("stats after rotation: %+v", st)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 6 { // 3 muts + marker + 2 muts
		t.Fatalf("replayed %d records, want 6", len(recs))
	}
	if !recs[3].Compaction || recs[3].Generation != 2 {
		t.Fatalf("record 3 is not the compaction marker: %+v", recs[3])
	}
	if recs[5].Seq != 5 || w2.Seq() != 5 {
		t.Fatalf("sequence not resumed: last rec %d, seq %d", recs[5].Seq, w2.Seq())
	}
	if got := w2.Stats().Segments; got != 1 {
		t.Fatalf("reopened wal sees %d segments, want 1", got)
	}
}

// TestWALTornTailAfterRotation: a crash mid-append tears only the
// active segment; sealed history replays intact and the torn bytes
// are truncated, never replayed.
func TestWALTornTailAfterRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append(walMuts(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompaction(2, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(walMuts(1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 4 { // 2 muts + marker + 1 mut; garbage dropped
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	torn := fi.Size()
	buf, _ := os.ReadFile(path)
	if rs, tornAt := DecodeRecords(buf); tornAt != int(torn) || len(rs) != 1 {
		t.Fatalf("active segment not truncated cleanly: %d records, torn at %d of %d", len(rs), tornAt, torn)
	}
}

// TestWALCorruptSealedSegment: sealed segments were fsynced before
// the rename, so a bad frame inside one is corruption and must fail
// the open instead of being silently truncated.
func TestWALCorruptSealedSegment(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := w.Append(walMuts(2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.AppendCompaction(2, seq); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	sealed := segmentPath(path, 0)
	buf, err := os.ReadFile(sealed)
	if err != nil {
		t.Fatal(err)
	}
	buf[len(buf)/2] ^= 0xff
	if err := os.WriteFile(sealed, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenWAL(path); err == nil {
		t.Fatal("corrupt sealed segment opened without error")
	}
}

// TestWALRetentionFollowsOldestLiveGeneration: committing generation
// G prunes segments fully covered by generation G-1's fence, so the
// journal retains exactly the history between the two live
// generations plus the active tail.
func TestWALRetentionFollowsOldestLiveGeneration(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.wal")
	base := gen.Grid2D(5, 4)
	p, err := Open(Config{Base: base, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	compactOnce := func(muts []Mutation) {
		t.Helper()
		if _, err := p.Apply(muts); err != nil {
			t.Fatal(err)
		}
		res, err := Compact(p, dir, CompactOptions{Epsilon: 2.0})
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Commit(res.Snapshot); err != nil {
			t.Fatal(err)
		}
	}
	compactOnce([]Mutation{{Op: MutDelete, U: 0, V: 1}})
	st, _ := p.WALStats()
	if st.Segments != 1 {
		t.Fatalf("after first compaction: %d segments, want 1", st.Segments)
	}
	compactOnce([]Mutation{{Op: MutInsert, U: 0, V: 1}})
	st, _ = p.WALStats()
	if st.Segments != 1 {
		t.Fatalf("after second compaction: %d segments, want 1 (oldest pruned)", st.Segments)
	}
	if _, err := os.Stat(segmentPath(path, 0)); !os.IsNotExist(err) {
		t.Fatalf("segment 0 not pruned: %v", err)
	}
	if _, err := os.Stat(segmentPath(path, 1)); err != nil {
		t.Fatalf("segment 1 missing: %v", err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// A restart replays only live segments and resumes the committed
	// generation with an empty pending delta.
	p2, err := Open(Config{Base: base, WALPath: path})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Generation(); got != 3 {
		t.Fatalf("resumed generation %d, want 3", got)
	}
	if got := p2.Pending(); got != 0 {
		t.Fatalf("resumed pending %d, want 0", got)
	}
}

// TestWALGroupCommit: Sync fsyncs only when appends outpace flushes —
// repeated Syncs with nothing new are free, and concurrent
// append+sync pairs share leaders without losing records.
func TestWALGroupCommit(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(walMuts(1, 0)); err != nil {
		t.Fatal(err)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	n1 := w.FlushedTotal()
	if n1 == 0 {
		t.Fatal("sync did not flush")
	}
	for i := 0; i < 5; i++ {
		if err := w.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	if got := w.FlushedTotal(); got != n1 {
		t.Fatalf("redundant syncs flushed: %d -> %d", n1, got)
	}

	const writers = 8
	var wg sync.WaitGroup
	for i := 0; i < writers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := w.Append(walMuts(1, int32(10+2*i))); err != nil {
				t.Error(err)
				return
			}
			if err := w.Sync(); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 1+writers {
		t.Fatalf("lost records under concurrency: %d, want %d", len(recs), 1+writers)
	}
}
