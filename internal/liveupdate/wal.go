// Package liveupdate is the ingestion side of the live-update
// pipeline: it accepts streaming edge insert/delete mutations against
// a served graph, journals them to a CRC-framed write-ahead log, and
// tracks the accumulated delta until a background compaction bakes it
// into a fresh label generation.
//
// Mutations are applied in two tiers, following the paper's own
// machinery. Deletions ride the forbidden-set path immediately: a
// deleted edge becomes an implicit soft fault merged into every
// query's fault set, so answers stay upper bounds on d_{G\F} from the
// moment the mutation is journaled (the lazy-failure-set trick
// oracle.Dynamic already uses). Insertions cannot be expressed as
// faults; they are served as query-time patches — a bounded set of
// shortcut edges the decoder routes through (d(s,u) + 1 + d(v,t)),
// still a sound upper bound — and accumulate toward compaction, which
// rebuilds labels on the mutated graph and swaps the new generation in
// with zero downtime.
package liveupdate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"sync"

	"fsdl/internal/frame"
)

// MutOp is the kind of an edge mutation.
type MutOp uint8

const (
	// MutInsert adds an undirected edge between two existing vertices.
	MutInsert MutOp = iota + 1
	// MutDelete removes an existing undirected edge.
	MutDelete
)

func (op MutOp) String() string {
	switch op {
	case MutInsert:
		return "insert"
	case MutDelete:
		return "delete"
	default:
		return fmt.Sprintf("MutOp(%d)", uint8(op))
	}
}

// Mutation is one streamed edge change. U and V are vertex ids in the
// served graph's id space; the edge is undirected, so (U,V) and (V,U)
// are the same mutation.
type Mutation struct {
	Op   MutOp
	U, V int32
}

// WAL frame ops. The log reuses the shared frame codec the cluster
// wire protocol speaks (internal/frame: magic, version, op, length,
// payload, CRC32-IEEE), so a torn tail or a
// bit-flipped record is detected by the same checksum discipline that
// guards label records on disk and frames in flight. The op values
// live above the wire-protocol range so a WAL file can never be
// mistaken for a protocol capture.
const (
	// WalOpInsert / WalOpDelete journal one mutation:
	// uvarint seq, uvarint u, uvarint v.
	WalOpInsert byte = 0x20
	WalOpDelete byte = 0x21
	// WalOpCompaction marks that every mutation with sequence ≤ seq is
	// baked into label generation gen: uvarint seq, uvarint gen.
	// Replay starts after the last marker.
	WalOpCompaction byte = 0x22
)

// Record is one decoded WAL entry: either a mutation or a compaction
// marker.
type Record struct {
	// Seq is the record's sequence number. Mutation sequences are
	// assigned contiguously from 1; a compaction marker's Seq is the
	// last mutation sequence the named generation bakes in.
	Seq uint64
	// Mut is the mutation (zero when Compaction is set).
	Mut Mutation
	// Compaction marks a compaction record; Generation is the label
	// generation the marker commits.
	Compaction bool
	Generation uint64
}

// AppendRecordPayload encodes r's frame payload (without the framing).
func AppendRecordPayload(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, r.Seq)
	if r.Compaction {
		return binary.AppendUvarint(dst, r.Generation)
	}
	dst = binary.AppendUvarint(dst, uint64(uint32(r.Mut.U)))
	return binary.AppendUvarint(dst, uint64(uint32(r.Mut.V)))
}

// recordOp returns the frame op byte for r.
func recordOp(r Record) byte {
	switch {
	case r.Compaction:
		return WalOpCompaction
	case r.Mut.Op == MutInsert:
		return WalOpInsert
	default:
		return WalOpDelete
	}
}

// AppendRecord appends r as one complete WAL frame.
func AppendRecord(dst []byte, r Record) []byte {
	return frame.Append(dst, recordOp(r), AppendRecordPayload(nil, r))
}

// ParseRecordPayload decodes the payload of a WAL frame with the given
// op. It rejects trailing bytes, out-of-range ids and non-canonical
// (non-minimal) varint encodings — the journal only ever decodes
// bytes it wrote, so any record that would not re-encode byte-
// identically is corruption, not a dialect.
func ParseRecordPayload(op byte, payload []byte) (r Record, err error) {
	orig := payload
	defer func() {
		if err == nil && !bytes.Equal(AppendRecordPayload(nil, r), orig) {
			err = fmt.Errorf("liveupdate: wal record: non-canonical encoding")
		}
	}()
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return r, fmt.Errorf("liveupdate: wal record: bad sequence")
	}
	payload = payload[k:]
	r.Seq = seq
	switch op {
	case WalOpCompaction:
		gen, k := binary.Uvarint(payload)
		if k <= 0 {
			return r, fmt.Errorf("liveupdate: wal record: bad generation")
		}
		if len(payload[k:]) != 0 {
			return r, fmt.Errorf("liveupdate: wal record: trailing bytes")
		}
		r.Compaction = true
		r.Generation = gen
		return r, nil
	case WalOpInsert, WalOpDelete:
		u, k := binary.Uvarint(payload)
		if k <= 0 || u > math.MaxInt32 {
			return r, fmt.Errorf("liveupdate: wal record: bad vertex u")
		}
		payload = payload[k:]
		v, k := binary.Uvarint(payload)
		if k <= 0 || v > math.MaxInt32 {
			return r, fmt.Errorf("liveupdate: wal record: bad vertex v")
		}
		if len(payload[k:]) != 0 {
			return r, fmt.Errorf("liveupdate: wal record: trailing bytes")
		}
		r.Mut = Mutation{Op: MutInsert, U: int32(u), V: int32(v)}
		if op == WalOpDelete {
			r.Mut.Op = MutDelete
		}
		return r, nil
	default:
		return r, fmt.Errorf("liveupdate: wal record: unknown op %d", op)
	}
}

// DecodeRecords parses every intact WAL frame at the front of buf. A
// clean end of input stops the scan with tornAt == len(buf); a framing
// break or checksum failure stops it at the offset of the first broken
// frame (the torn tail a crashed writer leaves behind). Bytes past
// tornAt are unreliable and must be truncated, never replayed.
func DecodeRecords(buf []byte) (recs []Record, tornAt int) {
	off := 0
	for len(buf) > 0 {
		op, payload, rest, err := frame.Decode(buf)
		if err != nil {
			return recs, off
		}
		r, err := ParseRecordPayload(op, payload)
		if err != nil {
			return recs, off
		}
		off += len(buf) - len(rest)
		buf = rest
		recs = append(recs, r)
	}
	return recs, off
}

// WAL is a file-backed mutation journal. Appends go straight to the
// file descriptor; Sync fsyncs, and the flush counter behind
// FlushedTotal feeds the fsdl_wal_flushed_total metric so an operator
// can confirm the final flush happened before a restart.
//
// A WAL is safe for concurrent use.
type WAL struct {
	mu      sync.Mutex
	f       *os.File
	path    string
	seq     uint64 // last sequence number written
	flushes int64
	dirty   bool
	closed  bool
}

// OpenWAL opens (or creates) the journal at path and replays it.
// Records beyond a torn tail — a partial frame from a crash mid-append
// — are discarded and the file is truncated to the last intact frame,
// so a restart never replays garbage. The returned records are every
// intact entry in order; the caller filters against the last
// compaction marker.
func OpenWAL(path string) (*WAL, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	recs, tornAt := DecodeRecords(buf)
	if tornAt < len(buf) {
		if err := f.Truncate(int64(tornAt)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("liveupdate: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(tornAt), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	w := &WAL{f: f, path: path}
	for _, r := range recs {
		if r.Seq > w.seq {
			w.seq = r.Seq
		}
	}
	return w, recs, nil
}

// Append journals muts, assigning each the next sequence number, and
// returns the last sequence written. The records are written in one
// contiguous byte range but not yet fsynced — call Sync once per
// accepted batch.
func (w *WAL) Append(muts []Mutation) (seq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.seq, fmt.Errorf("liveupdate: wal is closed")
	}
	var buf []byte
	for _, m := range muts {
		w.seq++
		buf = AppendRecord(buf, Record{Seq: w.seq, Mut: m})
	}
	if len(buf) > 0 {
		if _, err := w.f.Write(buf); err != nil {
			return w.seq, fmt.Errorf("liveupdate: wal append: %w", err)
		}
		w.dirty = true
	}
	return w.seq, nil
}

// AppendCompaction journals a compaction marker committing generation
// gen through sequence seq, and fsyncs it — a marker that might
// vanish in a crash would resurrect already-baked mutations on replay.
func (w *WAL) AppendCompaction(gen, seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("liveupdate: wal is closed")
	}
	buf := AppendRecord(nil, Record{Seq: seq, Compaction: true, Generation: gen})
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("liveupdate: wal append compaction: %w", err)
	}
	w.dirty = true
	return w.syncLocked()
}

// Sync fsyncs any appended records to disk.
func (w *WAL) Sync() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	return w.syncLocked()
}

func (w *WAL) syncLocked() error {
	if !w.dirty {
		return nil
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("liveupdate: wal sync: %w", err)
	}
	w.dirty = false
	w.flushes++
	return nil
}

// Close fsyncs and closes the journal — the graceful-drain path, so a
// restart finds no torn tail to discard.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	syncErr := w.syncLocked()
	w.closed = true
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Seq returns the last sequence number written.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// FlushedTotal reports how many fsyncs have completed — the
// fsdl_wal_flushed_total metric.
func (w *WAL) FlushedTotal() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.flushes
}

// Path returns the journal's file path.
func (w *WAL) Path() string { return w.path }
