// Package liveupdate is the ingestion side of the live-update
// pipeline: it accepts streaming edge insert/delete mutations against
// a served graph, journals them to a CRC-framed write-ahead log, and
// tracks the accumulated delta until a background compaction bakes it
// into a fresh label generation.
//
// Mutations are applied in two tiers, following the paper's own
// machinery. Deletions ride the forbidden-set path immediately: a
// deleted edge becomes an implicit soft fault merged into every
// query's fault set, so answers stay upper bounds on d_{G\F} from the
// moment the mutation is journaled (the lazy-failure-set trick
// oracle.Dynamic already uses). Insertions cannot be expressed as
// faults; they are served as query-time patches — a bounded set of
// shortcut edges the decoder routes through (d(s,u) + 1 + d(v,t)),
// still a sound upper bound — and accumulate toward compaction, which
// rebuilds labels on the mutated graph and swaps the new generation in
// with zero downtime.
package liveupdate

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"fsdl/internal/frame"
	"fsdl/internal/labelstore"
)

// MutOp is the kind of an edge mutation.
type MutOp uint8

const (
	// MutInsert adds an undirected edge between two existing vertices.
	MutInsert MutOp = iota + 1
	// MutDelete removes an existing undirected edge.
	MutDelete
)

func (op MutOp) String() string {
	switch op {
	case MutInsert:
		return "insert"
	case MutDelete:
		return "delete"
	default:
		return fmt.Sprintf("MutOp(%d)", uint8(op))
	}
}

// Mutation is one streamed edge change. U and V are vertex ids in the
// served graph's id space; the edge is undirected, so (U,V) and (V,U)
// are the same mutation.
type Mutation struct {
	Op   MutOp
	U, V int32
}

// WAL frame ops. The log reuses the shared frame codec the cluster
// wire protocol speaks (internal/frame: magic, version, op, length,
// payload, CRC32-IEEE), so a torn tail or a
// bit-flipped record is detected by the same checksum discipline that
// guards label records on disk and frames in flight. The op values
// live above the wire-protocol range so a WAL file can never be
// mistaken for a protocol capture.
const (
	// WalOpInsert / WalOpDelete journal one mutation:
	// uvarint seq, uvarint u, uvarint v.
	WalOpInsert byte = 0x20
	WalOpDelete byte = 0x21
	// WalOpCompaction marks that every mutation with sequence ≤ seq is
	// baked into label generation gen: uvarint seq, uvarint gen.
	// Replay starts after the last marker.
	WalOpCompaction byte = 0x22
)

// Record is one decoded WAL entry: either a mutation or a compaction
// marker.
type Record struct {
	// Seq is the record's sequence number. Mutation sequences are
	// assigned contiguously from 1; a compaction marker's Seq is the
	// last mutation sequence the named generation bakes in.
	Seq uint64
	// Mut is the mutation (zero when Compaction is set).
	Mut Mutation
	// Compaction marks a compaction record; Generation is the label
	// generation the marker commits.
	Compaction bool
	Generation uint64
}

// AppendRecordPayload encodes r's frame payload (without the framing).
func AppendRecordPayload(dst []byte, r Record) []byte {
	dst = binary.AppendUvarint(dst, r.Seq)
	if r.Compaction {
		return binary.AppendUvarint(dst, r.Generation)
	}
	dst = binary.AppendUvarint(dst, uint64(uint32(r.Mut.U)))
	return binary.AppendUvarint(dst, uint64(uint32(r.Mut.V)))
}

// recordOp returns the frame op byte for r.
func recordOp(r Record) byte {
	switch {
	case r.Compaction:
		return WalOpCompaction
	case r.Mut.Op == MutInsert:
		return WalOpInsert
	default:
		return WalOpDelete
	}
}

// AppendRecord appends r as one complete WAL frame.
func AppendRecord(dst []byte, r Record) []byte {
	return frame.Append(dst, recordOp(r), AppendRecordPayload(nil, r))
}

// ParseRecordPayload decodes the payload of a WAL frame with the given
// op. It rejects trailing bytes, out-of-range ids and non-canonical
// (non-minimal) varint encodings — the journal only ever decodes
// bytes it wrote, so any record that would not re-encode byte-
// identically is corruption, not a dialect.
func ParseRecordPayload(op byte, payload []byte) (r Record, err error) {
	orig := payload
	defer func() {
		if err == nil && !bytes.Equal(AppendRecordPayload(nil, r), orig) {
			err = fmt.Errorf("liveupdate: wal record: non-canonical encoding")
		}
	}()
	seq, k := binary.Uvarint(payload)
	if k <= 0 {
		return r, fmt.Errorf("liveupdate: wal record: bad sequence")
	}
	payload = payload[k:]
	r.Seq = seq
	switch op {
	case WalOpCompaction:
		gen, k := binary.Uvarint(payload)
		if k <= 0 {
			return r, fmt.Errorf("liveupdate: wal record: bad generation")
		}
		if len(payload[k:]) != 0 {
			return r, fmt.Errorf("liveupdate: wal record: trailing bytes")
		}
		r.Compaction = true
		r.Generation = gen
		return r, nil
	case WalOpInsert, WalOpDelete:
		u, k := binary.Uvarint(payload)
		if k <= 0 || u > math.MaxInt32 {
			return r, fmt.Errorf("liveupdate: wal record: bad vertex u")
		}
		payload = payload[k:]
		v, k := binary.Uvarint(payload)
		if k <= 0 || v > math.MaxInt32 {
			return r, fmt.Errorf("liveupdate: wal record: bad vertex v")
		}
		if len(payload[k:]) != 0 {
			return r, fmt.Errorf("liveupdate: wal record: trailing bytes")
		}
		r.Mut = Mutation{Op: MutInsert, U: int32(u), V: int32(v)}
		if op == WalOpDelete {
			r.Mut.Op = MutDelete
		}
		return r, nil
	default:
		return r, fmt.Errorf("liveupdate: wal record: unknown op %d", op)
	}
}

// DecodeRecords parses every intact WAL frame at the front of buf. A
// clean end of input stops the scan with tornAt == len(buf); a framing
// break or checksum failure stops it at the offset of the first broken
// frame (the torn tail a crashed writer leaves behind). Bytes past
// tornAt are unreliable and must be truncated, never replayed.
func DecodeRecords(buf []byte) (recs []Record, tornAt int) {
	off := 0
	for len(buf) > 0 {
		op, payload, rest, err := frame.Decode(buf)
		if err != nil {
			return recs, off
		}
		r, err := ParseRecordPayload(op, payload)
		if err != nil {
			return recs, off
		}
		off += len(buf) - len(rest)
		buf = rest
		recs = append(recs, r)
	}
	return recs, off
}

// SegmentInfo describes one sealed WAL segment on disk.
type SegmentInfo struct {
	// Path is the segment file's path ("<wal>.<index>").
	Path string
	// Index is the segment's monotone rotation index.
	Index uint64
	// FirstSeq and LastSeq bound the record sequences the segment
	// holds (0/0 for an empty segment, which rotation never produces).
	FirstSeq, LastSeq uint64
	// Bytes is the segment file's size.
	Bytes int64
	// Sealed is when the segment was rotated out (file mtime).
	Sealed time.Time
}

// WALStats summarizes the journal's on-disk state for status surfaces.
type WALStats struct {
	// Segments counts sealed segments currently retained.
	Segments int
	// OldestSealed is the seal time of the oldest retained segment
	// (zero when none) — its age is the journal's compaction debt
	// horizon.
	OldestSealed time.Time
	// ActiveBytes is the size of the active (unsealed) segment.
	ActiveBytes int64
	// Seq is the last sequence number written; Flushes counts
	// completed fsyncs.
	Seq     uint64
	Flushes int64
}

// WAL is a file-backed mutation journal, rotated into sealed segments.
// The active segment lives at the configured path; every compaction
// marker seals it (fsync, then an atomic rename to "<path>.<index>")
// and starts a fresh active file, so the journal's tail — the only
// part a restart replays — stays short regardless of uptime. Sealed
// segments are retained until Prune drops those fully covered by the
// oldest label generation still live, and are immutable: a torn frame
// inside one is corruption, never a legal crash artifact (only the
// active segment may end mid-frame).
//
// Appends go straight to the file descriptor; Sync fsyncs with group
// commit — concurrent callers elect a leader whose single fsync covers
// every record appended before it started, and the rest return without
// touching the disk. The flush counter behind FlushedTotal feeds the
// fsdl_wal_flushed_total metric so an operator can confirm the final
// flush happened before a restart.
//
// A WAL is safe for concurrent use.
type WAL struct {
	mu        sync.Mutex // serializes appends, rotation, metadata
	f         *os.File   // active segment
	path      string
	seq       uint64 // last sequence number written
	nextIndex uint64 // rotation index of the next sealed segment
	sealed    []SegmentInfo
	closed    bool

	// Group commit: appends take a ticket; Sync fsyncs only when the
	// flushed ticket lags the append ticket, and one fsync flushes
	// every ticket issued before it. syncMu elects the fsync leader
	// without blocking appends.
	syncMu        sync.Mutex
	appendTicket  atomic.Uint64
	flushedTicket atomic.Uint64
	flushes       atomic.Int64
}

// segmentPath names sealed segment files: "<wal path>.<16-digit index>".
func segmentPath(path string, index uint64) string {
	return fmt.Sprintf("%s.%016d", path, index)
}

// listSegments finds the sealed segments of the journal at path,
// sorted by rotation index.
func listSegments(path string) ([]SegmentInfo, error) {
	matches, err := filepath.Glob(path + ".*")
	if err != nil {
		return nil, err
	}
	var segs []SegmentInfo
	for _, m := range matches {
		suffix := m[len(path)+1:]
		if len(suffix) != 16 {
			continue // not a segment (e.g. a temp file)
		}
		idx, err := strconv.ParseUint(suffix, 10, 64)
		if err != nil {
			continue
		}
		fi, err := os.Stat(m)
		if err != nil {
			return nil, err
		}
		segs = append(segs, SegmentInfo{Path: m, Index: idx, Bytes: fi.Size(), Sealed: fi.ModTime()})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].Index < segs[j].Index })
	return segs, nil
}

// OpenWAL opens (or creates) the journal at path and replays it:
// every sealed segment in rotation order, then the active file.
// Records beyond a torn tail of the active segment — a partial frame
// from a crash mid-append — are discarded and the file is truncated
// to the last intact frame, so a restart never replays garbage. A
// torn or corrupt frame inside a sealed segment fails the open:
// sealed content was fsynced before the rename, so damage there is
// real corruption. The returned records are every intact entry in
// order; the caller filters against the last compaction marker.
func OpenWAL(path string) (*WAL, []Record, error) {
	segs, err := listSegments(path)
	if err != nil {
		return nil, nil, err
	}
	var recs []Record
	w := &WAL{path: path}
	for i := range segs {
		seg := &segs[i]
		buf, err := os.ReadFile(seg.Path)
		if err != nil {
			return nil, nil, err
		}
		rs, tornAt := DecodeRecords(buf)
		if tornAt < len(buf) {
			return nil, nil, fmt.Errorf("liveupdate: sealed wal segment %s corrupt at offset %d", seg.Path, tornAt)
		}
		if len(rs) > 0 {
			seg.FirstSeq, seg.LastSeq = rs[0].Seq, maxSeq(rs)
		}
		recs = append(recs, rs...)
		w.nextIndex = seg.Index + 1
	}
	w.sealed = segs
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, err
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	rs, tornAt := DecodeRecords(buf)
	if tornAt < len(buf) {
		if err := f.Truncate(int64(tornAt)); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("liveupdate: truncate torn wal tail: %w", err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, nil, err
		}
	}
	if _, err := f.Seek(int64(tornAt), 0); err != nil {
		f.Close()
		return nil, nil, err
	}
	recs = append(recs, rs...)
	w.f = f
	for _, r := range recs {
		if r.Seq > w.seq {
			w.seq = r.Seq
		}
	}
	return w, recs, nil
}

func maxSeq(rs []Record) uint64 {
	var m uint64
	for _, r := range rs {
		if r.Seq > m {
			m = r.Seq
		}
	}
	return m
}

// Append journals muts, assigning each the next sequence number, and
// returns the last sequence written. The records are written in one
// contiguous byte range but not yet fsynced — call Sync before
// acknowledging the batch; concurrent batches share the leader's
// fsync.
func (w *WAL) Append(muts []Mutation) (seq uint64, err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return w.seq, fmt.Errorf("liveupdate: wal is closed")
	}
	var buf []byte
	for _, m := range muts {
		w.seq++
		buf = AppendRecord(buf, Record{Seq: w.seq, Mut: m})
	}
	if len(buf) > 0 {
		if _, err := w.f.Write(buf); err != nil {
			return w.seq, fmt.Errorf("liveupdate: wal append: %w", err)
		}
		w.appendTicket.Add(1)
	}
	return w.seq, nil
}

// AppendCompaction journals a compaction marker committing generation
// gen through sequence seq, fsyncs it — a marker that might vanish in
// a crash would resurrect already-baked mutations on replay — and
// seals the active segment: its content is durable before the atomic
// rename, and a fresh active file takes its place. Every sealed
// segment therefore ends with a compaction marker, which is what
// makes retention per generation (Prune) exact.
func (w *WAL) AppendCompaction(gen, seq uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return fmt.Errorf("liveupdate: wal is closed")
	}
	buf := AppendRecord(nil, Record{Seq: seq, Compaction: true, Generation: gen})
	if _, err := w.f.Write(buf); err != nil {
		return fmt.Errorf("liveupdate: wal append compaction: %w", err)
	}
	w.appendTicket.Add(1)
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("liveupdate: wal sync: %w", err)
	}
	w.flushes.Add(1)
	w.creditFlushed(w.appendTicket.Load())
	return w.rotateLocked(seq)
}

// rotateLocked seals the fsynced active segment and opens a fresh
// one. Callers hold w.mu and have already fsynced the active file.
func (w *WAL) rotateLocked(lastSeq uint64) error {
	fi, err := w.f.Stat()
	if err != nil {
		return fmt.Errorf("liveupdate: wal rotate: %w", err)
	}
	if w.seq > lastSeq {
		lastSeq = w.seq
	}
	sealedPath := segmentPath(w.path, w.nextIndex)
	if err := w.f.Close(); err != nil {
		return fmt.Errorf("liveupdate: wal rotate: close active: %w", err)
	}
	if err := os.Rename(w.path, sealedPath); err != nil {
		return fmt.Errorf("liveupdate: wal rotate: seal segment: %w", err)
	}
	f, err := os.OpenFile(w.path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("liveupdate: wal rotate: new active segment: %w", err)
	}
	if err := syncDir(filepath.Dir(w.path)); err != nil {
		f.Close()
		return fmt.Errorf("liveupdate: wal rotate: %w", err)
	}
	w.sealed = append(w.sealed, SegmentInfo{
		Path:    sealedPath,
		Index:   w.nextIndex,
		LastSeq: lastSeq,
		Bytes:   fi.Size(),
		Sealed:  time.Now(),
	})
	w.nextIndex++
	w.f = f
	return nil
}

// syncDir fsyncs a directory so a just-renamed or just-created entry
// survives a crash — the shared commit-point helper.
func syncDir(dir string) error { return labelstore.FsyncDir(dir) }

// Prune deletes sealed segments whose every record is at or below
// throughSeq — the fence of the oldest label generation still live.
// Segments above the fence are the history needed to rebuild the
// current generation's delta from that oldest survivor, so they stay.
// It returns how many segments were removed.
func (w *WAL) Prune(throughSeq uint64) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	pruned := 0
	for len(w.sealed) > 0 {
		seg := w.sealed[0]
		if seg.LastSeq == 0 || seg.LastSeq > throughSeq {
			break
		}
		if err := os.Remove(seg.Path); err != nil {
			return pruned, fmt.Errorf("liveupdate: wal prune: %w", err)
		}
		w.sealed = w.sealed[1:]
		pruned++
	}
	return pruned, nil
}

// Sync makes every record appended before the call durable. It
// fsyncs at most once: the caller that finds the flush lagging
// becomes the leader, and callers arriving while the leader's fsync
// is in flight wait on it and then return without issuing their own
// — the group-commit window that lets N concurrent mutation batches
// share one disk flush.
func (w *WAL) Sync() error {
	target := w.appendTicket.Load()
	if w.flushedTicket.Load() >= target {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.flushedTicket.Load() >= target {
		return nil // the previous leader's fsync covered us
	}
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil // Close already flushed everything
	}
	f := w.f
	covered := w.appendTicket.Load()
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		return fmt.Errorf("liveupdate: wal sync: %w", err)
	}
	w.flushes.Add(1)
	w.creditFlushed(covered)
	return nil
}

// creditFlushed advances the flushed ticket to at least t.
func (w *WAL) creditFlushed(t uint64) {
	for {
		old := w.flushedTicket.Load()
		if old >= t || w.flushedTicket.CompareAndSwap(old, t) {
			return
		}
	}
}

// Close fsyncs and closes the journal — the graceful-drain path, so a
// restart finds no torn tail to discard.
func (w *WAL) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil
	}
	var syncErr error
	if t := w.appendTicket.Load(); w.flushedTicket.Load() < t {
		if syncErr = w.f.Sync(); syncErr == nil {
			w.flushes.Add(1)
			w.creditFlushed(t)
		}
	}
	w.closed = true
	if err := w.f.Close(); err != nil {
		return err
	}
	return syncErr
}

// Seq returns the last sequence number written.
func (w *WAL) Seq() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seq
}

// FlushedTotal reports how many fsyncs have completed — the
// fsdl_wal_flushed_total metric.
func (w *WAL) FlushedTotal() int64 { return w.flushes.Load() }

// Segments returns the sealed segments currently retained, oldest
// first.
func (w *WAL) Segments() []SegmentInfo {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]SegmentInfo, len(w.sealed))
	copy(out, w.sealed)
	return out
}

// Stats summarizes the journal for status surfaces.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	st := WALStats{Segments: len(w.sealed), Seq: w.seq, Flushes: w.flushes.Load()}
	if len(w.sealed) > 0 {
		st.OldestSealed = w.sealed[0].Sealed
	}
	if !w.closed {
		if fi, err := w.f.Stat(); err == nil {
			st.ActiveBytes = fi.Size()
		}
	}
	return st
}

// Path returns the active journal file's path.
func (w *WAL) Path() string { return w.path }
