package liveupdate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func sampleRecords() []Record {
	return []Record{
		{Seq: 1, Mut: Mutation{Op: MutInsert, U: 3, V: 9}},
		{Seq: 2, Mut: Mutation{Op: MutDelete, U: 0, V: 1}},
		{Seq: 2, Compaction: true, Generation: 2},
		{Seq: 3, Mut: Mutation{Op: MutInsert, U: 1 << 20, V: 7}},
	}
}

func TestWALRecordRoundTrip(t *testing.T) {
	var buf []byte
	for _, r := range sampleRecords() {
		buf = AppendRecord(buf, r)
	}
	recs, tornAt := DecodeRecords(buf)
	if tornAt != len(buf) {
		t.Fatalf("clean log reported torn at %d/%d", tornAt, len(buf))
	}
	want := sampleRecords()
	if len(recs) != len(want) {
		t.Fatalf("got %d records, want %d", len(recs), len(want))
	}
	for i := range want {
		if recs[i] != want[i] {
			t.Fatalf("record %d = %+v, want %+v", i, recs[i], want[i])
		}
	}
}

func TestWALTornTail(t *testing.T) {
	var buf []byte
	for _, r := range sampleRecords() {
		buf = AppendRecord(buf, r)
	}
	whole := len(buf)
	// Append a record and tear it at every possible length: decode must
	// keep the intact prefix and report the tear at the boundary.
	torn := AppendRecord(bytes.Clone(buf), Record{Seq: 9, Mut: Mutation{Op: MutDelete, U: 5, V: 6}})
	for cut := whole + 1; cut < len(torn); cut++ {
		recs, tornAt := DecodeRecords(torn[:cut])
		if tornAt != whole {
			t.Fatalf("cut %d: torn at %d, want %d", cut, tornAt, whole)
		}
		if len(recs) != len(sampleRecords()) {
			t.Fatalf("cut %d: kept %d records", cut, len(recs))
		}
	}
	// A bit flip inside a record stops replay at that record.
	flipped := bytes.Clone(torn)
	flipped[whole+10] ^= 0x40
	if _, tornAt := DecodeRecords(flipped); tornAt != whole {
		t.Fatalf("bit flip: torn at %d, want %d", tornAt, whole)
	}
}

func TestWALOpenAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	w, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 0 {
		t.Fatalf("fresh WAL replayed %d records", len(recs))
	}
	muts := []Mutation{{Op: MutInsert, U: 1, V: 2}, {Op: MutDelete, U: 3, V: 4}}
	seq, err := w.Append(muts)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("seq = %d, want 2", seq)
	}
	if err := w.Sync(); err != nil {
		t.Fatal(err)
	}
	if w.FlushedTotal() != 1 {
		t.Fatalf("flushes = %d, want 1", w.FlushedTotal())
	}
	if err := w.AppendCompaction(2, seq); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]Mutation{{Op: MutInsert, U: 5, V: 6}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append(muts); err == nil {
		t.Fatal("append after close succeeded")
	}

	// Reopen: all records come back, sequence resumes.
	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if len(recs) != 4 {
		t.Fatalf("replayed %d records, want 4", len(recs))
	}
	if !recs[2].Compaction || recs[2].Generation != 2 || recs[2].Seq != 2 {
		t.Fatalf("compaction marker = %+v", recs[2])
	}
	if w2.Seq() != 3 {
		t.Fatalf("resumed seq = %d, want 3", w2.Seq())
	}
	if seq, err := w2.Append([]Mutation{{Op: MutDelete, U: 7, V: 8}}); err != nil || seq != 4 {
		t.Fatalf("append after reopen: seq=%d err=%v", seq, err)
	}
}

func TestWALOpenTruncatesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "mutations.wal")
	w, _, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Append([]Mutation{{Op: MutInsert, U: 1, V: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: half a frame at the tail.
	half := AppendRecord(nil, Record{Seq: 2, Mut: Mutation{Op: MutInsert, U: 3, V: 4}})
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(half[:len(half)-3]); err != nil {
		t.Fatal(err)
	}
	f.Close()

	w2, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Seq != 1 {
		t.Fatalf("replay after tear = %+v", recs)
	}
	// The torn bytes are gone from disk: appending then reopening gives
	// a clean two-record log.
	if seq, err := w2.Append([]Mutation{{Op: MutDelete, U: 1, V: 2}}); err != nil || seq != 2 {
		t.Fatalf("append after tear: seq=%d err=%v", seq, err)
	}
	if err := w2.Close(); err != nil {
		t.Fatal(err)
	}
	w3, recs, err := OpenWAL(path)
	if err != nil {
		t.Fatal(err)
	}
	defer w3.Close()
	if len(recs) != 2 {
		t.Fatalf("final replay = %d records, want 2", len(recs))
	}
}
