package liveupdate

import (
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
)

// edge is a normalized undirected edge key (smaller endpoint first).
type edge [2]int32

func edgeOf(u, v int32) edge {
	if u > v {
		u, v = v, u
	}
	return edge{u, v}
}

// Config configures a Pipeline.
type Config struct {
	// Base is the graph the currently served label generation was
	// built on.
	Base *graph.Graph
	// WALPath journals every accepted mutation when non-empty; empty
	// keeps the delta in memory only (tests, ephemeral servers).
	WALPath string
	// Generation is the id of the served generation (1 when booting
	// from a plain offline store). A newer generation found in the WAL's
	// compaction markers wins.
	Generation uint64
}

// Metrics is a snapshot of the pipeline's counters.
type Metrics struct {
	Inserts, Deletes int64 // mutations accepted, by kind
	Rejected         int64 // mutations refused by validation
	Compactions      int64 // generations baked by this pipeline
	WALFlushes       int64 // fsyncs completed (0 without a WAL)
	WALSegments      int   // sealed WAL segments retained (0 without a WAL)
	Pending          int   // delta edges not yet baked into labels
	Seq              uint64
	CompactedSeq     uint64
	Generation       uint64
}

// Pipeline tracks the live delta between the graph a label generation
// was built on and the graph the stream has mutated it into. It is the
// single writer of the WAL and safe for concurrent use: queries read
// the delta (soft faults + patches) under a read lock while mutation
// batches and compaction commits take the write lock.
type Pipeline struct {
	mu   sync.RWMutex
	base *graph.Graph
	wal  *WAL

	// inserted holds edges present in the live graph but not in base;
	// deleted holds base edges removed from the live graph. An edge is
	// never in both.
	inserted map[edge]struct{}
	deleted  map[edge]struct{}

	seq          uint64 // last applied mutation sequence
	compactedSeq uint64 // last sequence baked into a generation
	generation   uint64 // served generation id

	compacting atomic.Bool

	inserts, deletes, rejected, compactions atomic.Int64
}

// Open creates a pipeline over cfg.Base, replaying cfg.WALPath when it
// exists: mutations journaled after the last compaction marker are
// re-applied to the delta, so a restart resumes exactly where the
// crash (or drain) left off.
func Open(cfg Config) (*Pipeline, error) {
	if cfg.Base == nil {
		return nil, fmt.Errorf("liveupdate: pipeline needs a base graph")
	}
	gen := cfg.Generation
	if gen == 0 {
		gen = 1
	}
	p := &Pipeline{
		base:       cfg.Base,
		inserted:   make(map[edge]struct{}),
		deleted:    make(map[edge]struct{}),
		generation: gen,
	}
	if cfg.WALPath == "" {
		return p, nil
	}
	wal, recs, err := OpenWAL(cfg.WALPath)
	if err != nil {
		return nil, err
	}
	// Find the last compaction marker: everything at or before its
	// sequence is already baked into the generation the caller loaded.
	for _, r := range recs {
		if r.Compaction {
			p.compactedSeq = r.Seq
			if r.Generation > p.generation {
				p.generation = r.Generation
			}
		}
	}
	for _, r := range recs {
		if r.Compaction || r.Seq <= p.compactedSeq {
			continue
		}
		if err := p.applyLocked(r.Mut); err != nil {
			return nil, fmt.Errorf("liveupdate: wal replay: seq %d %s(%d,%d): %w", r.Seq, r.Mut.Op, r.Mut.U, r.Mut.V, err)
		}
		p.seq = r.Seq
	}
	if wal.Seq() > p.seq {
		p.seq = wal.Seq()
	}
	p.wal = wal
	return p, nil
}

// validate checks a mutation against the current effective graph.
func (p *Pipeline) validate(m Mutation) error {
	n := int32(p.base.NumVertices())
	if m.U < 0 || m.U >= n || m.V < 0 || m.V >= n {
		return fmt.Errorf("vertex out of range [0,%d)", n)
	}
	if m.U == m.V {
		return fmt.Errorf("self-loop")
	}
	e := edgeOf(m.U, m.V)
	_, ins := p.inserted[e]
	_, del := p.deleted[e]
	inBase := p.base.HasEdge(int(e[0]), int(e[1]))
	live := ins || (inBase && !del)
	switch m.Op {
	case MutInsert:
		if live {
			return fmt.Errorf("edge already exists")
		}
	case MutDelete:
		if !live {
			return fmt.Errorf("edge does not exist")
		}
	default:
		return fmt.Errorf("unknown mutation op %d", m.Op)
	}
	return nil
}

// applyLocked validates m and folds it into the delta maps. Callers
// hold the write lock (or own the pipeline exclusively, during Open).
func (p *Pipeline) applyLocked(m Mutation) error {
	if err := p.validate(m); err != nil {
		return err
	}
	foldMutation(p.inserted, p.deleted, m)
	if m.Op == MutInsert {
		p.inserts.Add(1)
	} else {
		p.deletes.Add(1)
	}
	return nil
}

// foldMutation applies a validated mutation to the delta maps. A
// re-insert of a deleted base edge cancels the deletion; a delete of a
// not-yet-baked insert cancels the insertion; otherwise the edge joins
// the corresponding set.
func foldMutation(inserted, deleted map[edge]struct{}, m Mutation) {
	e := edgeOf(m.U, m.V)
	switch m.Op {
	case MutInsert:
		if _, ok := deleted[e]; ok {
			delete(deleted, e)
		} else {
			inserted[e] = struct{}{}
		}
	case MutDelete:
		if _, ok := inserted[e]; ok {
			delete(inserted, e)
		} else {
			deleted[e] = struct{}{}
		}
	}
}

// Apply validates and applies a mutation batch atomically: either
// every mutation is journaled and folded into the delta, or none is
// and the error names the first offender. Returns the sequence number
// of the last mutation applied. The WAL is fsynced before Apply
// returns, so an acknowledged batch survives a crash; the fsync
// happens outside the pipeline lock, so concurrent batches ride one
// group-commit flush instead of queueing a disk flush each. (On an
// fsync failure the batch stays applied and journaled but is NOT
// acknowledged — the caller must treat its durability as unknown.)
func (p *Pipeline) Apply(muts []Mutation) (seq uint64, err error) {
	if len(muts) == 0 {
		p.mu.RLock()
		defer p.mu.RUnlock()
		return p.seq, nil
	}
	p.mu.Lock()
	// Validate the whole batch against a batch-local overlay before
	// touching the delta: a batch may legitimately delete an edge it
	// just inserted, so validation must see earlier batch entries,
	// yet a mid-batch failure must leave no trace. The overlay is
	// O(batch) — the delta maps are no longer cloned per batch.
	overlay := make(map[edge]int8, len(muts))
	for i, m := range muts {
		if err := p.validateOverlay(m, overlay); err != nil {
			p.rejected.Add(int64(len(muts)))
			p.mu.Unlock()
			return p.seq, fmt.Errorf("liveupdate: mutation %d %s(%d,%d): %w", i, m.Op, m.U, m.V, err)
		}
	}
	var nIns, nDel int64
	for _, m := range muts {
		foldMutation(p.inserted, p.deleted, m)
		if m.Op == MutInsert {
			nIns++
		} else {
			nDel++
		}
	}
	wal := p.wal
	if wal != nil {
		if seq, err = wal.Append(muts); err != nil {
			// The fold is already journal-ordered; an append failure
			// means the file is unusable, so fail the batch without
			// pretending the state rolled back.
			p.mu.Unlock()
			return seq, err
		}
		p.seq = seq
	} else {
		p.seq += uint64(len(muts))
		seq = p.seq
	}
	p.inserts.Add(nIns)
	p.deletes.Add(nDel)
	p.mu.Unlock()
	if wal != nil {
		if err := wal.Sync(); err != nil {
			return seq, err
		}
	}
	return seq, nil
}

// validateOverlay is validate with a batch-local overlay on top of the
// delta: +1 marks an edge the batch has made live, -1 one it has
// removed. On success the mutation's effect is recorded in the
// overlay.
func (p *Pipeline) validateOverlay(m Mutation, overlay map[edge]int8) error {
	n := int32(p.base.NumVertices())
	if m.U < 0 || m.U >= n || m.V < 0 || m.V >= n {
		return fmt.Errorf("vertex out of range [0,%d)", n)
	}
	if m.U == m.V {
		return fmt.Errorf("self-loop")
	}
	e := edgeOf(m.U, m.V)
	var live bool
	if s, ok := overlay[e]; ok {
		live = s > 0
	} else if _, ins := p.inserted[e]; ins {
		live = true
	} else {
		_, del := p.deleted[e]
		live = !del && p.base.HasEdge(int(e[0]), int(e[1]))
	}
	switch m.Op {
	case MutInsert:
		if live {
			return fmt.Errorf("edge already exists")
		}
		overlay[e] = 1
	case MutDelete:
		if !live {
			return fmt.Errorf("edge does not exist")
		}
		overlay[e] = -1
	default:
		return fmt.Errorf("unknown mutation op %d", m.Op)
	}
	return nil
}

// Pending reports how many delta edges are not yet baked into the
// served generation. Zero means queries are exact again.
func (p *Pipeline) Pending() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.inserted) + len(p.deleted)
}

// FaultEdges returns the deleted edges as sorted pairs — the implicit
// soft faults the server merges into every query's fault set so
// answers stay upper bounds on d_{G\F} the moment a deletion lands.
func (p *Pipeline) FaultEdges() [][2]int32 {
	p.mu.RLock()
	out := make([][2]int32, 0, len(p.deleted))
	for e := range p.deleted {
		out = append(out, e)
	}
	p.mu.RUnlock()
	sortEdges(out)
	return out
}

// Patches returns the inserted edges as sorted pairs — the query-time
// shortcut candidates (d(s,u) + 1 + d(v,t)) that let answers reflect
// insertions before compaction bakes them in.
func (p *Pipeline) Patches() [][2]int32 {
	p.mu.RLock()
	out := make([][2]int32, 0, len(p.inserted))
	for e := range p.inserted {
		out = append(out, e)
	}
	p.mu.RUnlock()
	sortEdges(out)
	return out
}

func sortEdges(es [][2]int32) {
	slices.SortFunc(es, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0]) - int(b[0])
		}
		return int(a[1]) - int(b[1])
	})
}

// Snapshot is a consistent view of the pipeline taken for compaction.
type Snapshot struct {
	// Graph is the effective live graph: base minus deleted plus
	// inserted edges.
	Graph *graph.Graph
	// Seq is the last mutation sequence the snapshot includes.
	Seq uint64
	// Generation is the id the build from this snapshot will carry.
	Generation uint64
	// Mutated lists, sorted, the normalized edges by which Graph
	// differs from the base the served generation was built on — the
	// delta an incremental compaction scopes its rebuild to.
	Mutated [][2]int32
}

// Snapshot materializes the effective graph and the sequence fence a
// compaction will bake in. Mutations keep streaming in while the
// build runs; Commit reconciles them.
func (p *Pipeline) Snapshot() (*Snapshot, error) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	b := graph.NewBuilder(p.base.NumVertices())
	p.base.ForEachEdge(func(u, v int) {
		if _, ok := p.deleted[edgeOf(int32(u), int32(v))]; !ok {
			b.AddEdge(u, v)
		}
	})
	for e := range p.inserted {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("liveupdate: build effective graph: %w", err)
	}
	mutated := make([][2]int32, 0, len(p.inserted)+len(p.deleted))
	for e := range p.inserted {
		mutated = append(mutated, e)
	}
	for e := range p.deleted {
		mutated = append(mutated, e)
	}
	sortEdges(mutated)
	return &Snapshot{Graph: g, Seq: p.seq, Generation: p.generation + 1, Mutated: mutated}, nil
}

// BeginCompaction claims the single compaction slot; it returns false
// when another compaction is already running.
func (p *Pipeline) BeginCompaction() bool { return p.compacting.CompareAndSwap(false, true) }

// EndCompaction releases the slot claimed by BeginCompaction.
func (p *Pipeline) EndCompaction() { p.compacting.Store(false) }

// Compacting reports whether a compaction is in flight.
func (p *Pipeline) Compacting() bool { return p.compacting.Load() }

// Commit installs a completed compaction: the snapshot's graph becomes
// the new base, delta entries the build baked in are dropped (entries
// from mutations that streamed in during the build survive, keyed
// against the new base), the generation advances, and a compaction
// marker is journaled so a restart replays only what is still
// pending.
func (p *Pipeline) Commit(snap *Snapshot) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if snap.Generation <= p.generation {
		return fmt.Errorf("liveupdate: commit of stale generation %d (serving %d)", snap.Generation, p.generation)
	}
	newBase := snap.Graph
	for e := range p.inserted {
		if newBase.HasEdge(int(e[0]), int(e[1])) {
			delete(p.inserted, e) // baked in
		}
	}
	for e := range p.deleted {
		if !newBase.HasEdge(int(e[0]), int(e[1])) {
			delete(p.deleted, e) // baked out
		}
	}
	prevFence := p.compactedSeq
	p.base = newBase
	p.generation = snap.Generation
	p.compactedSeq = snap.Seq
	p.compactions.Add(1)
	if p.wal != nil {
		if err := p.wal.AppendCompaction(snap.Generation, snap.Seq); err != nil {
			return err
		}
		// The marker sealed the active segment. Segments fully at or
		// below the displaced generation's fence are no longer needed
		// to rebuild anything still live (shards retain the current
		// and previous generation), so retention follows the oldest
		// live generation.
		if _, err := p.wal.Prune(prevFence); err != nil {
			return err
		}
	}
	return nil
}

// Base returns the graph the served generation was built on.
func (p *Pipeline) Base() *graph.Graph {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.base
}

// Generation returns the served generation id.
func (p *Pipeline) Generation() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.generation
}

// Seq returns the last applied mutation sequence.
func (p *Pipeline) Seq() uint64 {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.seq
}

// Close fsyncs and closes the WAL (no-op without one) — the graceful
// drain path.
func (p *Pipeline) Close() error {
	if p.wal == nil {
		return nil
	}
	return p.wal.Close()
}

// WALFlushedTotal reports completed WAL fsyncs (0 without a WAL).
func (p *Pipeline) WALFlushedTotal() int64 {
	if p.wal == nil {
		return 0
	}
	return p.wal.FlushedTotal()
}

// Sync fsyncs the WAL (no-op without one).
func (p *Pipeline) Sync() error {
	if p.wal == nil {
		return nil
	}
	return p.wal.Sync()
}

// WALStats summarizes the journal's segment state (zero value and
// false without a WAL).
func (p *Pipeline) WALStats() (WALStats, bool) {
	if p.wal == nil {
		return WALStats{}, false
	}
	return p.wal.Stats(), true
}

// MetricsSnapshot returns the pipeline's counters.
func (p *Pipeline) MetricsSnapshot() Metrics {
	p.mu.RLock()
	m := Metrics{
		Pending:      len(p.inserted) + len(p.deleted),
		Seq:          p.seq,
		CompactedSeq: p.compactedSeq,
		Generation:   p.generation,
	}
	p.mu.RUnlock()
	m.Inserts = p.inserts.Load()
	m.Deletes = p.deletes.Load()
	m.Rejected = p.rejected.Load()
	m.Compactions = p.compactions.Load()
	m.WALFlushes = p.WALFlushedTotal()
	if ws, ok := p.WALStats(); ok {
		m.WALSegments = ws.Segments
	}
	return m
}
