package liveupdate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
)

// bfsDist computes the true distance in g avoiding the fault set —
// the ground truth the streamed answers must upper-bound.
func bfsDist(g *graph.Graph, src, dst int, faults *graph.FaultSet) (int64, bool) {
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return 0, false
	}
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			return dist[u], true
		}
		for _, w := range g.Neighbors(u) {
			v := int(w)
			if dist[v] >= 0 || faults.HasVertex(v) || faults.HasEdge(u, v) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return 0, false
}

// TestStreamedEquivalence is the offline-vs-streamed equivalence
// gate: a store built offline on G′ must be bit-identical to a store
// built on G, streamed to G′, and compacted — at several worker
// counts — and the pre-compaction answers (soft faults + patches over
// the G labels) must stay upper bounds on d_{G′\F}.
func TestStreamedEquivalence(t *testing.T) {
	const eps = 2.0
	base := gen.Grid2D(6, 6)
	muts := []Mutation{
		{Op: MutDelete, U: 0, V: 1},
		{Op: MutDelete, U: 14, V: 20},
		{Op: MutInsert, U: 0, V: 35},
		{Op: MutInsert, U: 5, V: 30},
	}

	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply(muts); err != nil {
		t.Fatal(err)
	}

	// Pre-compaction: answers from the G labels with the delta applied
	// as soft faults + patches must upper-bound d_{G′\F}.
	snapForTruth, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gPrime := snapForTruth.Graph
	schemeG, err := core.BuildScheme(base, eps)
	if err != nil {
		t.Fatal(err)
	}
	dec := core.NewDecoder()
	defer dec.Release()
	var patches []core.PatchEdge
	for _, e := range p.Patches() {
		patches = append(patches, core.PatchEdge{U: schemeG.Label(int(e[0])), V: schemeG.Label(int(e[1]))})
	}
	pairs := [][2]int{{0, 35}, {2, 33}, {1, 6}, {30, 5}, {7, 29}}
	reqFaults := graph.FaultVertices(21)
	for _, pr := range pairs {
		q, err := schemeG.NewQuery(pr[0], pr[1], reqFaults)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range p.FaultEdges() {
			q.EdgeFaults = append(q.EdgeFaults, [2]*core.Label{schemeG.Label(int(e[0])), schemeG.Label(int(e[1]))})
		}
		res := dec.DistanceRobustPatched(q, patches)
		truth, connected := bfsDist(gPrime, pr[0], pr[1], reqFaults)
		if res.OK {
			if !connected {
				t.Fatalf("pair %v: estimate %d but truly disconnected", pr, res.Dist)
			}
			if res.Dist < truth {
				t.Fatalf("pair %v: pre-compaction estimate %d below true distance %d", pr, res.Dist, truth)
			}
		}
	}
	// The inserted shortcut must actually be usable pre-compaction:
	// (0,35) are opposite grid corners (base distance 10), the patch
	// makes them neighbors.
	q, err := schemeG.NewQuery(0, 35, graph.NewFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	if res := dec.DistanceRobustPatched(q, patches); !res.OK || res.Dist != 1 {
		t.Fatalf("patched corner distance = %+v, want 1", res)
	}

	for _, workers := range []int{1, 2, 4} {
		// Offline: build directly on G′.
		offline, err := core.BuildSchemeWorkers(gPrime, eps, workers)
		if err != nil {
			t.Fatal(err)
		}
		var offlineBytes bytes.Buffer
		if err := labelstore.Save(&offlineBytes, offline, nil); err != nil {
			t.Fatal(err)
		}

		// Streamed: pipeline compaction at the same worker count.
		root := t.TempDir()
		res, err := Compact(p, root, CompactOptions{Epsilon: eps, Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		streamedBytes, err := os.ReadFile(filepath.Join(res.Dir, LabelsFileName))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(offlineBytes.Bytes(), streamedBytes) {
			t.Fatalf("workers=%d: streamed store differs from offline store (%d vs %d bytes)",
				workers, len(streamedBytes), offlineBytes.Len())
		}
	}
}

func TestCompactWritesVerifiableGeneration(t *testing.T) {
	base := gen.Grid2D(4, 4)
	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Op: MutInsert, U: 0, V: 15}}); err != nil {
		t.Fatal(err)
	}
	root := t.TempDir()
	res, err := Compact(p, root, CompactOptions{
		Epsilon: 2,
		Workers: 2,
		Partitions: map[string][]int{
			"alpha": {0, 1, 2, 3, 4, 5, 6, 7},
			"beta":  {8, 9, 10, 11, 12, 13, 14, 15},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Manifest.Generation != 2 || res.Manifest.N != 16 || res.Manifest.Seq != 1 {
		t.Fatalf("manifest = %+v", res.Manifest)
	}
	// The directory must verify end to end (manifest CRC + file CRCs).
	m, dir, ok, err := labelstore.LatestGeneration(root)
	if err != nil || !ok || m.Generation != 2 || dir != res.Dir {
		t.Fatalf("LatestGeneration: ok=%v gen=%v err=%v", ok, m, err)
	}
	if f := m.File("alpha.fsdl"); f == nil || f.Records != 8 || f.First != 0 || f.Last != 7 {
		t.Fatalf("alpha entry = %+v", f)
	}
	// Partition stores load and union back to the full vertex set.
	for name, want := range map[string]int{"alpha.fsdl": 8, "beta.fsdl": 8, LabelsFileName: 16} {
		f, err := os.Open(filepath.Join(res.Dir, name))
		if err != nil {
			t.Fatal(err)
		}
		st, err := labelstore.Load(f)
		f.Close()
		if err != nil {
			t.Fatalf("load %s: %v", name, err)
		}
		if st.NumLabels() != want {
			t.Fatalf("%s holds %d labels, want %d", name, st.NumLabels(), want)
		}
	}
	// The snapshot graph reloads as the next base.
	g2, err := LoadGenerationBase(res.Dir)
	if err != nil {
		t.Fatal(err)
	}
	if !g2.HasEdge(0, 15) {
		t.Fatal("generation graph lost the inserted edge")
	}
	// Committing makes the pipeline exact again.
	if err := p.Commit(res.Snapshot); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 || p.Generation() != 2 {
		t.Fatalf("after commit: pending=%d gen=%d", p.Pending(), p.Generation())
	}
	// A second compaction with no further mutations refuses to reuse
	// the directory name... and lands in gen-3.
	if _, err := p.Apply([]Mutation{{Op: MutDelete, U: 0, V: 15}}); err != nil {
		t.Fatal(err)
	}
	res2, err := Compact(p, root, CompactOptions{Epsilon: 2, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Manifest.Generation != 3 {
		t.Fatalf("second generation = %d", res2.Manifest.Generation)
	}
}
