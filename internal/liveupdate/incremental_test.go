package liveupdate

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"fsdl/internal/gen"
	"fsdl/internal/labelstore"
)

func readGenFile(t *testing.T, dir, name string) []byte {
	t.Helper()
	buf, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		t.Fatal(err)
	}
	return buf
}

// TestIncrementalCompactEquivalence is the end-to-end differential gate:
// a generation compacted incrementally (delta-scoped rebuild + spliced
// label bytes) must be byte-identical to a full from-scratch build of
// the same snapshot — every file, at every worker count.
func TestIncrementalCompactEquivalence(t *testing.T) {
	const eps = 2.0
	base := gen.Grid2D(8, 5)
	parts := map[string][]int{}
	for v := 0; v < 40; v++ {
		name := "shard-a"
		if v >= 20 {
			name = "shard-b"
		}
		parts[name] = append(parts[name], v)
	}
	full := CompactOptions{Epsilon: eps, Partitions: parts}

	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	// Generation 2: a full build establishing the incremental base.
	if _, err := p.Apply([]Mutation{{Op: MutDelete, U: 0, V: 1}, {Op: MutInsert, U: 3, V: 12}}); err != nil {
		t.Fatal(err)
	}
	res1, err := Compact(p, t.TempDir(), full)
	if err != nil {
		t.Fatal(err)
	}
	if res1.Incremental {
		t.Fatal("full build reported incremental")
	}
	if err := p.Commit(res1.Snapshot); err != nil {
		t.Fatal(err)
	}

	// Generation 3: adversarial batch — edges between nearby vertices
	// sit inside many overlapping dense balls, plus a delete that
	// reverts part of the earlier batch.
	batch := []Mutation{
		{Op: MutInsert, U: 0, V: 1},
		{Op: MutInsert, U: 9, V: 18},
		{Op: MutInsert, U: 18, V: 27},
		{Op: MutDelete, U: 3, V: 12},
		{Op: MutDelete, U: 21, V: 22},
	}
	if _, err := p.Apply(batch); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	fullDir := t.TempDir()
	wantRes, err := CompactSnapshot(snap, fullDir, full)
	if err != nil {
		t.Fatal(err)
	}

	prev := &PrevGeneration{
		Generation: res1.Snapshot.Generation,
		Dir:        res1.Dir,
		Scheme:     res1.Scheme,
		Store:      res1.Store,
		Partitions: parts,
	}
	files := []string{LabelsFileName, GraphFileName, "shard-a.fsdl", "shard-b.fsdl"}
	for _, workers := range []int{1, 2, 8} {
		opts := CompactOptions{Epsilon: eps, Workers: workers, Partitions: parts, Prev: prev}
		res, err := CompactSnapshot(snap, t.TempDir(), opts)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !res.Incremental {
			t.Fatalf("workers=%d: incremental build not taken", workers)
		}
		for _, name := range files {
			want := readGenFile(t, wantRes.Dir, name)
			got := readGenFile(t, res.Dir, name)
			if !bytes.Equal(want, got) {
				t.Fatalf("workers=%d: %s differs from full build", workers, name)
			}
		}
		sum := 0
		for _, c := range res.PartitionDirty {
			sum += c
		}
		if sum != res.DirtyLabels {
			t.Fatalf("workers=%d: partition dirty counts sum to %d, want %d", workers, sum, res.DirtyLabels)
		}
		for _, name := range res.ChangedPartitions {
			if res.PartitionDirty[name] == 0 {
				t.Fatalf("workers=%d: %s listed changed with 0 dirty", workers, name)
			}
		}
	}
}

// TestIncrementalCompactEmptyDelta: with no mutations every label is
// clean, so the spliced store re-extracts nothing and unchanged
// partition files are hard-linked from the previous generation.
func TestIncrementalCompactEmptyDelta(t *testing.T) {
	base := gen.Grid2D(6, 5)
	parts := map[string][]int{"s0": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "s1": {10, 15, 20, 25, 29}}
	opts := CompactOptions{Epsilon: 2.0, Partitions: parts}

	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Compact(p, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(res1.Snapshot); err != nil {
		t.Fatal(err)
	}

	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	opts.Prev = &PrevGeneration{
		Generation: res1.Snapshot.Generation,
		Dir:        res1.Dir,
		Scheme:     res1.Scheme,
		Store:      res1.Store,
		Partitions: parts,
	}
	res2, err := CompactSnapshot(snap, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DirtyLabels != 0 {
		t.Fatalf("empty delta re-extracted %d labels", res2.DirtyLabels)
	}
	if len(res2.ChangedPartitions) != 0 {
		t.Fatalf("empty delta changed partitions %v", res2.ChangedPartitions)
	}
	for name := range parts {
		oldFi, err := os.Stat(filepath.Join(res1.Dir, name+".fsdl"))
		if err != nil {
			t.Fatal(err)
		}
		newFi, err := os.Stat(filepath.Join(res2.Dir, name+".fsdl"))
		if err != nil {
			t.Fatal(err)
		}
		if !os.SameFile(oldFi, newFi) {
			t.Fatalf("partition %s was rewritten, not hard-linked", name)
		}
	}
	// The spliced full store still matches a full build byte for byte.
	want, err := CompactSnapshot(snap, t.TempDir(), CompactOptions{Epsilon: 2.0, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(readGenFile(t, want.Dir, LabelsFileName), readGenFile(t, res2.Dir, LabelsFileName)) {
		t.Fatal("spliced labels differ from full build")
	}
	// Both generations load and verify through the manifest path.
	if _, err := labelstore.ReadManifestDir(res2.Dir); err != nil {
		t.Fatalf("incremental generation fails manifest verification: %v", err)
	}
}

// TestIncrementalCompactRejects: a Prev that is not actually the
// snapshot's parent must fail loudly, never silently fall back.
func TestIncrementalCompactRejects(t *testing.T) {
	base := gen.Grid2D(4, 4)
	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compact(p, t.TempDir(), CompactOptions{Epsilon: 2.0})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(res.Snapshot); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	bad := []CompactOptions{
		{Epsilon: 2.0, Prev: &PrevGeneration{Generation: res.Snapshot.Generation, Scheme: res.Scheme}},                       // no store
		{Epsilon: 2.0, Prev: &PrevGeneration{Generation: res.Snapshot.Generation + 7, Scheme: res.Scheme, Store: res.Store}}, // wrong generation
		{Epsilon: 1.0, Prev: &PrevGeneration{Generation: res.Snapshot.Generation, Scheme: res.Scheme, Store: res.Store}},     // epsilon mismatch
	}
	for i, opts := range bad {
		if _, err := CompactSnapshot(snap, t.TempDir(), opts); err == nil {
			t.Fatalf("case %d: bad Prev accepted", i)
		}
	}
}

// TestIncrementalCompactFormat3: the incremental build's byte-identity
// guarantee holds for the FSDL3 container too, compressed or not, and
// FSDL3 generations load back (mmap-backed) with the same answers.
func TestIncrementalCompactFormat3(t *testing.T) {
	const eps = 2.0
	base := gen.Grid2D(8, 5)
	parts := map[string][]int{}
	for v := 0; v < 40; v++ {
		name := "shard-a"
		if v >= 20 {
			name = "shard-b"
		}
		parts[name] = append(parts[name], v)
	}
	batch := []Mutation{
		{Op: MutInsert, U: 9, V: 18},
		{Op: MutDelete, U: 21, V: 22},
	}
	for _, compress := range []bool{false, true} {
		full := CompactOptions{Epsilon: eps, Partitions: parts, Format: 3, Compress: compress}
		p, err := Open(Config{Base: base})
		if err != nil {
			t.Fatal(err)
		}
		res1, err := Compact(p, t.TempDir(), full)
		if err != nil {
			t.Fatal(err)
		}
		if got := res1.Store.Format(); got != 3 {
			t.Fatalf("compress=%v: reloaded store format %d, want 3", compress, got)
		}
		if res1.Store.Compressed() != compress {
			t.Fatalf("compress=%v: reloaded store compressed=%v", compress, res1.Store.Compressed())
		}
		if err := p.Commit(res1.Snapshot); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Apply(batch); err != nil {
			t.Fatal(err)
		}
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		want, err := CompactSnapshot(snap, t.TempDir(), full)
		if err != nil {
			t.Fatal(err)
		}
		inc := full
		inc.Prev = &PrevGeneration{
			Generation: res1.Snapshot.Generation,
			Dir:        res1.Dir,
			Scheme:     res1.Scheme,
			Store:      res1.Store,
			Partitions: parts,
		}
		res2, err := CompactSnapshot(snap, t.TempDir(), inc)
		if err != nil {
			t.Fatal(err)
		}
		if !res2.Incremental {
			t.Fatalf("compress=%v: incremental build not taken", compress)
		}
		for _, name := range []string{LabelsFileName, "shard-a.fsdl", "shard-b.fsdl"} {
			if !bytes.Equal(readGenFile(t, want.Dir, name), readGenFile(t, res2.Dir, name)) {
				t.Fatalf("compress=%v: %s differs from full FSDL3 build", compress, name)
			}
		}
		if _, err := labelstore.ReadManifestDir(res2.Dir); err != nil {
			t.Fatalf("compress=%v: FSDL3 generation fails manifest verification: %v", compress, err)
		}
		st, err := LoadGenerationStore(res2.Dir)
		if err != nil {
			t.Fatal(err)
		}
		if st.Format() != 3 || st.Compressed() != compress {
			t.Fatalf("compress=%v: reloaded generation format=%d compressed=%v", compress, st.Format(), st.Compressed())
		}
	}
}

// TestIncrementalCompactFormatUpgrade: switching a pipeline from FSDL2
// generations to -format fsdl3 must rewrite even clean partitions —
// hard-linking the old FSDL2 file forward would break the invariant
// that identical inputs yield identical generations.
func TestIncrementalCompactFormatUpgrade(t *testing.T) {
	base := gen.Grid2D(6, 5)
	parts := map[string][]int{"s0": {0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, "s1": {10, 15, 20, 25, 29}}
	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := Compact(p, t.TempDir(), CompactOptions{Epsilon: 2.0, Partitions: parts})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(res1.Snapshot); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	opts := CompactOptions{
		Epsilon: 2.0, Partitions: parts, Format: 3, Compress: true,
		Prev: &PrevGeneration{
			Generation: res1.Snapshot.Generation,
			Dir:        res1.Dir,
			Scheme:     res1.Scheme,
			Store:      res1.Store,
			Partitions: parts,
		},
	}
	res2, err := CompactSnapshot(snap, t.TempDir(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for name := range parts {
		ver, comp, err := labelstore.SniffFormat(filepath.Join(res2.Dir, name+".fsdl"))
		if err != nil {
			t.Fatal(err)
		}
		if ver != 3 || !comp {
			t.Fatalf("partition %s carried forward as version %d (compressed=%v), want fresh FSDL3", name, ver, comp)
		}
	}
	// And the reverse precondition: compression without FSDL3 is a
	// configuration error, not a silent downgrade.
	if _, err := CompactSnapshot(snap, t.TempDir(), CompactOptions{Epsilon: 2.0, Format: 2, Compress: true}); err == nil {
		t.Fatal("Compress with FSDL2 accepted")
	}
	if _, err := CompactSnapshot(snap, t.TempDir(), CompactOptions{Epsilon: 2.0, Format: 7}); err == nil {
		t.Fatal("unknown format accepted")
	}
}
