package liveupdate

import (
	"fmt"
	"os"
	"path/filepath"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
)

// Generation directory layout (written by Compact under the root):
//
//	gen-<id>/
//	  MANIFEST       generation id, vertex space, WAL seq, file checksums
//	  labels.fsdl    the full label store for the snapshot graph
//	  graph.txt      the snapshot graph (the next pipeline's base)
//	  <shard>.fsdl   one partition file per shard, when partitions given
//
// Everything is written into a temporary directory first and renamed
// into place, and the manifest is written last — a crash mid-build
// leaves either no gen-<id> directory or one whose missing/torn
// manifest disqualifies it, never a half generation that loads.

// LabelsFileName is the full-store file inside a generation directory.
const LabelsFileName = labelstore.GenerationLabelsFile

// GraphFileName is the snapshot-graph file inside a generation
// directory.
const GraphFileName = labelstore.GenerationGraphFile

// CompactOptions configures a compaction build.
type CompactOptions struct {
	// Epsilon is the scheme's approximation parameter.
	Epsilon float64
	// Workers bounds build parallelism (≤ 0 means GOMAXPROCS).
	Workers int
	// Partitions optionally maps shard names to the vertex ids each
	// shard serves; one <name>.fsdl partition file is written per
	// entry, so cluster shards can load the new generation directly.
	Partitions map[string][]int
}

// CompactionResult is a completed generation build, ready to swap.
type CompactionResult struct {
	// Snapshot is the pipeline view the build ran on; pass it to
	// Pipeline.Commit after the swap succeeds.
	Snapshot *Snapshot
	// Dir is the generation directory (root/gen-<id>).
	Dir string
	// Manifest describes what was written.
	Manifest *labelstore.Manifest
	// Store is the full label store, loaded back from Dir so the
	// serving path swaps to exactly the bytes on disk.
	Store *labelstore.Store
}

// Compact builds the next label generation from the pipeline's current
// state into root/gen-<id> using the parallel offline pipeline.
// Mutations keep streaming into p while the build runs; the caller
// swaps the result in and then calls p.Commit(result.Snapshot).
//
// Callers serialize compactions via p.BeginCompaction/EndCompaction.
func Compact(p *Pipeline, root string, opts CompactOptions) (*CompactionResult, error) {
	snap, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	return CompactSnapshot(snap, root, opts)
}

// CompactSnapshot is Compact for an already-taken snapshot — the
// offline `fsdl compact` path, where the "pipeline" is a graph plus a
// replayed WAL rather than a live server.
func CompactSnapshot(snap *Snapshot, root string, opts CompactOptions) (*CompactionResult, error) {
	scheme, err := core.BuildSchemeWorkers(snap.Graph, opts.Epsilon, opts.Workers)
	if err != nil {
		return nil, fmt.Errorf("liveupdate: build generation %d scheme: %w", snap.Generation, err)
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	final := filepath.Join(root, labelstore.GenerationDirName(snap.Generation))
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("liveupdate: generation directory %s already exists", final)
	}
	tmp, err := os.MkdirTemp(root, "gen-build-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	m := &labelstore.Manifest{
		Generation: snap.Generation,
		N:          snap.Graph.NumVertices(),
		Seq:        snap.Seq,
	}
	addFile := func(name string, records int, write func(f *os.File) error) error {
		path := filepath.Join(tmp, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("liveupdate: write %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		crc, err := labelstore.FileCRC(path)
		if err != nil {
			return err
		}
		entry := labelstore.ManifestFile{Name: name, Records: records, First: -1, Last: -1, CRC: crc}
		m.Files = append(m.Files, entry)
		return nil
	}

	if err := addFile(LabelsFileName, m.N, func(f *os.File) error {
		return labelstore.Save(f, scheme, nil)
	}); err != nil {
		return nil, err
	}
	if m.N > 0 {
		m.Files[len(m.Files)-1].First, m.Files[len(m.Files)-1].Last = 0, m.N-1
	}
	if err := addFile(GraphFileName, 0, func(f *os.File) error {
		_, err := snap.Graph.WriteTo(f)
		return err
	}); err != nil {
		return nil, err
	}
	for name, ids := range opts.Partitions {
		if name == LabelsFileName || name == GraphFileName || name == labelstore.ManifestName {
			return nil, fmt.Errorf("liveupdate: shard name %q collides with a generation file", name)
		}
		ids := ids
		if err := addFile(name+".fsdl", len(ids), func(f *os.File) error {
			return labelstore.Save(f, scheme, ids)
		}); err != nil {
			return nil, err
		}
		if len(ids) > 0 {
			lo, hi := ids[0], ids[0]
			for _, v := range ids {
				lo, hi = min(lo, v), max(hi, v)
			}
			m.Files[len(m.Files)-1].First, m.Files[len(m.Files)-1].Last = lo, hi
		}
	}
	if err := labelstore.WriteManifestFile(tmp, m); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	f, err := os.Open(filepath.Join(final, LabelsFileName))
	if err != nil {
		return nil, err
	}
	store, err := labelstore.Load(f)
	f.Close()
	if err != nil {
		return nil, fmt.Errorf("liveupdate: reload generation %d store: %w", snap.Generation, err)
	}
	return &CompactionResult{Snapshot: snap, Dir: final, Manifest: m, Store: store}, nil
}

// LoadGenerationBase loads the snapshot graph a generation directory
// carries — the base graph a restarted pipeline resumes from.
func LoadGenerationBase(dir string) (*graph.Graph, error) {
	f, err := os.Open(filepath.Join(dir, GraphFileName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// LoadGenerationStore loads the full label store of a generation
// directory.
func LoadGenerationStore(dir string) (*labelstore.Store, error) {
	f, err := os.Open(filepath.Join(dir, LabelsFileName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return labelstore.Load(f)
}
