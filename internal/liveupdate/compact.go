package liveupdate

import (
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
)

// Generation directory layout (written by Compact under the root):
//
//	gen-<id>/
//	  MANIFEST       generation id, vertex space, WAL seq, file checksums
//	  labels.fsdl    the full label store for the snapshot graph
//	  graph.txt      the snapshot graph (the next pipeline's base)
//	  <shard>.fsdl   one partition file per shard, when partitions given
//
// Everything is written into a temporary directory first and renamed
// into place, and the manifest is written last — a crash mid-build
// leaves either no gen-<id> directory or one whose missing/torn
// manifest disqualifies it, never a half generation that loads.

// LabelsFileName is the full-store file inside a generation directory.
const LabelsFileName = labelstore.GenerationLabelsFile

// GraphFileName is the snapshot-graph file inside a generation
// directory.
const GraphFileName = labelstore.GenerationGraphFile

// CompactOptions configures a compaction build.
type CompactOptions struct {
	// Epsilon is the scheme's approximation parameter.
	Epsilon float64
	// Workers bounds build parallelism (≤ 0 means GOMAXPROCS).
	Workers int
	// Partitions optionally maps shard names to the vertex ids each
	// shard serves; one <name>.fsdl partition file is written per
	// entry, so cluster shards can load the new generation directly.
	Partitions map[string][]int
	// Prev, when set, selects the incremental build: the scheme is
	// rebuilt delta-scoped from the previous generation's (only BFS
	// tasks a mutation can reach are re-run) and clean vertices' label
	// bytes are spliced forward from the previous store instead of
	// re-extracted. The output is byte-identical to a full build. Prev
	// must actually be the generation the snapshot mutates
	// (Prev.Generation+1 == snap.Generation, same ε, same vertex
	// space) — a mismatch is an error, not a silent full build, so
	// callers choose the mode explicitly.
	Prev *PrevGeneration
	// Format selects the label container written for labels.fsdl and
	// every partition file: 0 or 2 writes the FSDL2 stream, 3 the
	// mmap-first FSDL3 container. Readers auto-detect either, so a
	// cluster can swap between formats generation by generation.
	Format int
	// Compress stores FSDL3 record payloads in the compressed
	// encoding; it requires Format 3.
	Compress bool
}

// PrevGeneration hands an incremental compaction the previous
// generation's build state.
type PrevGeneration struct {
	// Generation is the previous generation's id.
	Generation uint64
	// Dir is its generation directory (optional; enables hard-linking
	// partition files with no dirty vertices).
	Dir string
	// Scheme is the scheme built for it (from its own compaction, or
	// reconstructed offline from its graph).
	Scheme *core.Scheme
	// Store is its full label store — the splice source for clean
	// label bytes.
	Store *labelstore.Store
	// Partitions is the shard→vertex-ids map its partition files were
	// written with (optional; a partition may be hard-linked only
	// when its id list is unchanged).
	Partitions map[string][]int
}

// CompactionResult is a completed generation build, ready to swap.
type CompactionResult struct {
	// Snapshot is the pipeline view the build ran on; pass it to
	// Pipeline.Commit after the swap succeeds.
	Snapshot *Snapshot
	// Dir is the generation directory (root/gen-<id>).
	Dir string
	// Manifest describes what was written.
	Manifest *labelstore.Manifest
	// Store is the full label store, loaded back from the written
	// bytes so the serving path swaps to exactly what is on disk.
	Store *labelstore.Store
	// Scheme is the scheme the generation was built with — retain it
	// (with Store and Dir) as the PrevGeneration of the next
	// incremental compaction.
	Scheme *core.Scheme
	// Incremental reports whether the delta-scoped path built this
	// generation.
	Incremental bool
	// DirtyLabels counts the labels that were re-extracted (equals N
	// on a full build).
	DirtyLabels int
	// PartitionDirty counts, per partition file, the vertices whose
	// labels changed; ChangedPartitions lists (sorted) the partitions
	// with at least one — the shards a scoped generation swap must
	// reload from disk. On a full build every partition is changed.
	PartitionDirty    map[string]int
	ChangedPartitions []string
}

// Compact builds the next label generation from the pipeline's current
// state into root/gen-<id> using the parallel offline pipeline.
// Mutations keep streaming into p while the build runs; the caller
// swaps the result in and then calls p.Commit(result.Snapshot).
//
// Callers serialize compactions via p.BeginCompaction/EndCompaction.
func Compact(p *Pipeline, root string, opts CompactOptions) (*CompactionResult, error) {
	snap, err := p.Snapshot()
	if err != nil {
		return nil, err
	}
	return CompactSnapshot(snap, root, opts)
}

// CompactSnapshot is Compact for an already-taken snapshot — the
// offline `fsdl compact` path, where the "pipeline" is a graph plus a
// replayed WAL rather than a live server. With opts.Prev set the build
// is delta-scoped (see CompactOptions.Prev); the generation written is
// byte-identical either way.
func CompactSnapshot(snap *Snapshot, root string, opts CompactOptions) (*CompactionResult, error) {
	switch opts.Format {
	case 0, 2, 3:
	default:
		return nil, fmt.Errorf("liveupdate: unsupported label container format %d", opts.Format)
	}
	if opts.Compress && opts.Format != 3 {
		return nil, fmt.Errorf("liveupdate: compressed records require the FSDL3 container")
	}
	format3 := opts.Format == 3
	var (
		scheme *core.Scheme
		dirty  []int32 // meaningful only on the incremental path
	)
	incremental := opts.Prev != nil
	if incremental {
		prev := opts.Prev
		if prev.Scheme == nil || prev.Store == nil {
			return nil, fmt.Errorf("liveupdate: incremental compaction needs the previous generation's scheme and store")
		}
		if prev.Generation+1 != snap.Generation {
			return nil, fmt.Errorf("liveupdate: incremental compaction base is generation %d, snapshot builds %d", prev.Generation, snap.Generation)
		}
		if eps := prev.Scheme.Params().Epsilon; eps != opts.Epsilon {
			return nil, fmt.Errorf("liveupdate: incremental compaction base has epsilon %g, want %g", eps, opts.Epsilon)
		}
		inc, err := core.BuildSchemeIncremental(prev.Scheme, snap.Graph, snap.Mutated, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("liveupdate: incremental build generation %d scheme: %w", snap.Generation, err)
		}
		scheme, dirty = inc.Scheme, inc.Dirty
	} else {
		s, err := core.BuildSchemeWorkers(snap.Graph, opts.Epsilon, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("liveupdate: build generation %d scheme: %w", snap.Generation, err)
		}
		scheme = s
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	final := filepath.Join(root, labelstore.GenerationDirName(snap.Generation))
	if _, err := os.Stat(final); err == nil {
		return nil, fmt.Errorf("liveupdate: generation directory %s already exists", final)
	}
	tmp, err := os.MkdirTemp(root, "gen-build-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(tmp)

	m := &labelstore.Manifest{
		Generation: snap.Generation,
		N:          snap.Graph.NumVertices(),
		Seq:        snap.Seq,
	}
	addFile := func(name string, records int, write func(f *os.File) error) error {
		path := filepath.Join(tmp, name)
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := write(f); err != nil {
			f.Close()
			return fmt.Errorf("liveupdate: write %s: %w", name, err)
		}
		if err := f.Sync(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		crc, err := labelstore.FileCRC(path)
		if err != nil {
			return err
		}
		entry := labelstore.ManifestFile{Name: name, Records: records, First: -1, Last: -1, CRC: crc}
		m.Files = append(m.Files, entry)
		return nil
	}

	if err := addFile(LabelsFileName, m.N, func(f *os.File) error {
		switch {
		case format3 && incremental:
			return labelstore.SaveSplicedFormat3(f, scheme, opts.Prev.Store, dirty, nil, opts.Compress)
		case format3:
			return labelstore.SaveFormat3(f, scheme, nil, opts.Compress)
		case incremental:
			return labelstore.SaveSpliced(f, scheme, opts.Prev.Store, dirty, nil)
		default:
			return labelstore.Save(f, scheme, nil)
		}
	}); err != nil {
		return nil, err
	}
	if m.N > 0 {
		m.Files[len(m.Files)-1].First, m.Files[len(m.Files)-1].Last = 0, m.N-1
	}
	// Load the just-written store back: partition files are carved from
	// these exact bytes (no re-extraction), and the serving path swaps
	// to exactly what is on disk.
	store, err := loadStoreFile(filepath.Join(tmp, LabelsFileName))
	if err != nil {
		return nil, fmt.Errorf("liveupdate: reload generation %d store: %w", snap.Generation, err)
	}
	if err := addFile(GraphFileName, 0, func(f *os.File) error {
		_, err := snap.Graph.WriteTo(f)
		return err
	}); err != nil {
		return nil, err
	}

	// Per-partition dirty summaries: the scoped cluster swap reloads
	// only partitions with a changed label. On a full build every
	// partition counts as changed.
	dirtySet := make(map[int32]struct{}, len(dirty))
	for _, v := range dirty {
		dirtySet[v] = struct{}{}
	}
	partitionDirty := make(map[string]int, len(opts.Partitions))
	var changed []string
	for name, ids := range opts.Partitions {
		if name == LabelsFileName || name == GraphFileName || name == labelstore.ManifestName {
			return nil, fmt.Errorf("liveupdate: shard name %q collides with a generation file", name)
		}
		nDirty := 0
		if incremental {
			for _, v := range ids {
				if _, ok := dirtySet[int32(v)]; ok {
					nDirty++
				}
			}
		} else {
			nDirty = len(ids)
		}
		partitionDirty[name] = nDirty
		if nDirty > 0 {
			changed = append(changed, name)
		}
		// A partition with no dirty vertex and an unchanged id list is
		// byte-identical to the previous generation's file: hard-link
		// it instead of rewriting (fall back to writing when linking
		// is unsupported or the precondition fails). The previous file
		// must also be in the requested container format — linking an
		// FSDL2 partition into an FSDL3 build would break the
		// byte-identity of incremental builds (readers would still
		// auto-detect it, but identical inputs must yield identical
		// generations).
		if nDirty == 0 && incremental && opts.Prev.Dir != "" && slices.Equal(opts.Prev.Partitions[name], ids) {
			ver, comp, err := labelstore.SniffFormat(filepath.Join(opts.Prev.Dir, name+".fsdl"))
			if err == nil && formatMatches(ver, comp, opts) {
				if err := linkFile(m, tmp, opts.Prev.Dir, name+".fsdl", len(ids), ids); err == nil {
					continue
				}
			}
		}
		ids := ids
		if err := addFile(name+".fsdl", len(ids), func(f *os.File) error {
			if format3 {
				return store.SaveVerticesFormat3(f, ids, opts.Compress)
			}
			return store.SaveVertices(f, ids)
		}); err != nil {
			return nil, err
		}
		if len(ids) > 0 {
			lo, hi := ids[0], ids[0]
			for _, v := range ids {
				lo, hi = min(lo, v), max(hi, v)
			}
			m.Files[len(m.Files)-1].First, m.Files[len(m.Files)-1].Last = lo, hi
		}
	}
	slices.Sort(changed)
	if err := labelstore.WriteManifestFile(tmp, m); err != nil {
		return nil, err
	}
	if err := os.Rename(tmp, final); err != nil {
		return nil, err
	}
	// Make the generation's rename durable: fsync the live root so the
	// committed gen-<id> directory entry survives a crash.
	if err := labelstore.FsyncParentDir(final); err != nil {
		return nil, err
	}
	dirtyLabels := len(dirty)
	if !incremental {
		dirtyLabels = m.N
	}
	return &CompactionResult{
		Snapshot:          snap,
		Dir:               final,
		Manifest:          m,
		Store:             store,
		Scheme:            scheme,
		Incremental:       incremental,
		DirtyLabels:       dirtyLabels,
		PartitionDirty:    partitionDirty,
		ChangedPartitions: changed,
	}, nil
}

// formatMatches reports whether an existing file's sniffed container
// (version, compressed) is the one a build with opts would write.
func formatMatches(version int, compressed bool, opts CompactOptions) bool {
	if opts.Format == 3 {
		return version == 3 && compressed == opts.Compress
	}
	return version == 2
}

// loadStoreFile loads a label store file, auto-detecting the container:
// FSDL3 generations come back mmap-backed, so the store handed to the
// serving swap (and retained as the next incremental build's splice
// source) reads record bytes from the page cache, not the heap.
func loadStoreFile(path string) (*labelstore.Store, error) {
	return labelstore.Open(path)
}

// linkFile hard-links name from the previous generation directory into
// tmp and records its manifest entry (CRC recomputed from the linked
// bytes, so the manifest never vouches for content it did not hash).
func linkFile(m *labelstore.Manifest, tmp, prevDir, name string, records int, ids []int) error {
	dst := filepath.Join(tmp, name)
	if err := os.Link(filepath.Join(prevDir, name), dst); err != nil {
		return err
	}
	crc, err := labelstore.FileCRC(dst)
	if err != nil {
		os.Remove(dst)
		return err
	}
	entry := labelstore.ManifestFile{Name: name, Records: records, First: -1, Last: -1, CRC: crc}
	if len(ids) > 0 {
		lo, hi := ids[0], ids[0]
		for _, v := range ids {
			lo, hi = min(lo, v), max(hi, v)
		}
		entry.First, entry.Last = lo, hi
	}
	m.Files = append(m.Files, entry)
	return nil
}

// LoadGenerationBase loads the snapshot graph a generation directory
// carries — the base graph a restarted pipeline resumes from.
func LoadGenerationBase(dir string) (*graph.Graph, error) {
	f, err := os.Open(filepath.Join(dir, GraphFileName))
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return graph.Read(f)
}

// LoadGenerationStore loads the full label store of a generation
// directory, auto-detecting the container format (FSDL3 files are
// opened mmap-backed).
func LoadGenerationStore(dir string) (*labelstore.Store, error) {
	return labelstore.Open(filepath.Join(dir, LabelsFileName))
}
