package liveupdate

import (
	"path/filepath"
	"testing"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func TestPipelineApplyAndDelta(t *testing.T) {
	g := gen.Grid2D(4, 4) // ids: r*4+c, edges right/down
	p, err := Open(Config{Base: g})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := p.Apply([]Mutation{
		{Op: MutInsert, U: 0, V: 15}, // diagonal shortcut
		{Op: MutDelete, U: 0, V: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 || p.Pending() != 2 {
		t.Fatalf("seq=%d pending=%d", seq, p.Pending())
	}
	if got := p.Patches(); len(got) != 1 || got[0] != [2]int32{0, 15} {
		t.Fatalf("patches = %v", got)
	}
	if got := p.FaultEdges(); len(got) != 1 || got[0] != [2]int32{0, 1} {
		t.Fatalf("fault edges = %v", got)
	}

	// Invalid mutations reject the whole batch atomically.
	for _, bad := range [][]Mutation{
		{{Op: MutInsert, U: 0, V: 15}},               // already inserted
		{{Op: MutInsert, U: 1, V: 2}},                // exists in base
		{{Op: MutDelete, U: 0, V: 1}},                // already deleted
		{{Op: MutDelete, U: 0, V: 5}},                // never existed
		{{Op: MutInsert, U: 3, V: 3}},                // self-loop
		{{Op: MutInsert, U: 3, V: 99}},               // out of range
		{{Op: MutDelete, U: 4, V: 8}, {Op: 9, U: 0}}, // valid then bogus op
	} {
		if _, err := p.Apply(bad); err == nil {
			t.Fatalf("batch %v accepted", bad)
		}
	}
	if p.Pending() != 2 {
		t.Fatalf("rejected batches changed the delta: pending=%d", p.Pending())
	}
	m := p.MetricsSnapshot()
	if m.Inserts != 1 || m.Deletes != 1 || m.Rejected == 0 {
		t.Fatalf("metrics = %+v", m)
	}

	// Cancelling mutations shrink the delta instead of growing it.
	if _, err := p.Apply([]Mutation{{Op: MutDelete, U: 15, V: 0}}); err != nil {
		t.Fatal(err) // (V,U) order: same undirected edge
	}
	if _, err := p.Apply([]Mutation{{Op: MutInsert, U: 1, V: 0}}); err != nil {
		t.Fatal(err)
	}
	if p.Pending() != 0 {
		t.Fatalf("cancelled delta not empty: %d", p.Pending())
	}
}

func TestPipelineSnapshotAndCommit(t *testing.T) {
	g := gen.Grid2D(3, 3)
	p, err := Open(Config{Base: g})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Op: MutInsert, U: 0, V: 8}, {Op: MutDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !snap.Graph.HasEdge(0, 8) || snap.Graph.HasEdge(0, 1) {
		t.Fatal("snapshot graph does not reflect the delta")
	}
	if snap.Generation != 2 || snap.Seq != 2 {
		t.Fatalf("snapshot = gen %d seq %d", snap.Generation, snap.Seq)
	}

	// A mutation streaming in during the build must survive the commit.
	if _, err := p.Apply([]Mutation{{Op: MutDelete, U: 7, V: 8}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Commit(snap); err != nil {
		t.Fatal(err)
	}
	if p.Generation() != 2 {
		t.Fatalf("generation = %d", p.Generation())
	}
	if p.Pending() != 1 {
		t.Fatalf("pending after commit = %d, want the in-flight delete", p.Pending())
	}
	if got := p.FaultEdges(); len(got) != 1 || got[0] != [2]int32{7, 8} {
		t.Fatalf("fault edges after commit = %v", got)
	}
	if !p.Base().HasEdge(0, 8) {
		t.Fatal("commit did not advance the base graph")
	}
	// Committing the same snapshot again must fail (stale generation).
	if err := p.Commit(snap); err == nil {
		t.Fatal("stale commit accepted")
	}
}

func TestPipelineWALReplayAcrossRestart(t *testing.T) {
	g := gen.Grid2D(4, 4)
	walPath := filepath.Join(t.TempDir(), "mutations.wal")

	p, err := Open(Config{Base: g, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Apply([]Mutation{{Op: MutInsert, U: 0, V: 15}, {Op: MutDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart with the same base graph: the delta comes back.
	p2, err := Open(Config{Base: g, WALPath: walPath})
	if err != nil {
		t.Fatal(err)
	}
	if p2.Pending() != 2 || p2.Seq() != 2 {
		t.Fatalf("replayed pending=%d seq=%d", p2.Pending(), p2.Seq())
	}

	// Compact, commit, add one more mutation, restart from the *new*
	// base: only the post-compaction mutation replays.
	snap, err := p2.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := p2.Commit(snap); err != nil {
		t.Fatal(err)
	}
	if _, err := p2.Apply([]Mutation{{Op: MutDelete, U: 14, V: 15}}); err != nil {
		t.Fatal(err)
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}

	p3, err := Open(Config{Base: snap.Graph, WALPath: walPath, Generation: snap.Generation})
	if err != nil {
		t.Fatal(err)
	}
	defer p3.Close()
	if p3.Generation() != 2 {
		t.Fatalf("generation after restart = %d", p3.Generation())
	}
	if p3.Pending() != 1 {
		t.Fatalf("pending after restart = %d", p3.Pending())
	}
	if got := p3.FaultEdges(); len(got) != 1 || got[0] != [2]int32{14, 15} {
		t.Fatalf("fault edges after restart = %v", got)
	}
}

func TestPipelineCompactionSlot(t *testing.T) {
	p, err := Open(Config{Base: gen.Grid2D(2, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if !p.BeginCompaction() {
		t.Fatal("first claim failed")
	}
	if p.BeginCompaction() {
		t.Fatal("double claim succeeded")
	}
	if !p.Compacting() {
		t.Fatal("Compacting() = false while claimed")
	}
	p.EndCompaction()
	if !p.BeginCompaction() {
		t.Fatal("claim after release failed")
	}
	p.EndCompaction()
}

func TestSnapshotGraphMatchesDirectBuild(t *testing.T) {
	base := gen.Grid2D(5, 5)
	p, err := Open(Config{Base: base})
	if err != nil {
		t.Fatal(err)
	}
	muts := []Mutation{
		{Op: MutDelete, U: 0, V: 1},
		{Op: MutInsert, U: 0, V: 24},
		{Op: MutInsert, U: 3, V: 21},
		{Op: MutDelete, U: 12, V: 13},
	}
	if _, err := p.Apply(muts); err != nil {
		t.Fatal(err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Build G' directly from the mutated edge set, in a different
	// insertion order: the CSR must come out identical.
	b := graph.NewBuilder(base.NumVertices())
	b.AddEdge(3, 21)
	b.AddEdge(0, 24)
	base.ForEachEdge(func(u, v int) {
		if (u == 0 && v == 1) || (u == 12 && v == 13) {
			return
		}
		b.AddEdge(u, v)
	})
	direct, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Graph.NumEdges() != direct.NumEdges() || snap.Graph.NumVertices() != direct.NumVertices() {
		t.Fatalf("snapshot (%d,%d) vs direct (%d,%d)",
			snap.Graph.NumVertices(), snap.Graph.NumEdges(), direct.NumVertices(), direct.NumEdges())
	}
	direct.ForEachEdge(func(u, v int) {
		if !snap.Graph.HasEdge(u, v) {
			t.Fatalf("edge (%d,%d) missing from snapshot", u, v)
		}
	})
}
