package liveupdate

import (
	"bytes"
	"testing"
)

// FuzzWALRecords feeds arbitrary bytes to the WAL decoder: it must
// never panic, never report records past the torn offset, and every
// record it does accept must re-encode to exactly the bytes it was
// parsed from (the round-trip property that keeps replay deterministic
// across versions).
func FuzzWALRecords(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendRecord(nil, Record{Seq: 1, Mut: Mutation{Op: MutInsert, U: 0, V: 1}}))
	f.Add(AppendRecord(nil, Record{Seq: 2, Mut: Mutation{Op: MutDelete, U: 1 << 20, V: 3}}))
	f.Add(AppendRecord(nil, Record{Seq: 9, Compaction: true, Generation: 4}))
	multi := AppendRecord(nil, Record{Seq: 1, Mut: Mutation{Op: MutInsert, U: 5, V: 6}})
	multi = AppendRecord(multi, Record{Seq: 1, Compaction: true, Generation: 1})
	multi = AppendRecord(multi, Record{Seq: 2, Mut: Mutation{Op: MutDelete, U: 5, V: 6}})
	f.Add(multi)
	f.Add(multi[:len(multi)-5]) // torn tail seed
	corrupt := bytes.Clone(multi)
	corrupt[11] ^= 0x80
	f.Add(corrupt) // checksum-failure seed

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, tornAt := DecodeRecords(data)
		if tornAt < 0 || tornAt > len(data) {
			t.Fatalf("torn offset %d outside [0,%d]", tornAt, len(data))
		}
		// Re-encoding the accepted records must reproduce the intact
		// prefix byte for byte.
		var re []byte
		for _, r := range recs {
			re = AppendRecord(re, r)
		}
		if !bytes.Equal(re, data[:tornAt]) {
			t.Fatalf("re-encode mismatch: %d records, prefix %d bytes", len(recs), tornAt)
		}
	})
}
