package core

import (
	"math/rand"
	"sync"
	"testing"

	"fsdl/internal/graph"
)

// These are the PR's regression gates: steady-state decode and warm-cache
// label extraction must stay (near-)allocation-free. CI runs them on
// every push (bench-smoke job); a refactor that reintroduces per-query
// maps fails here before it can land.

// TestQueryDistanceAllocs pins the steady-state decode at ≤ 2 allocs per
// query (warm pool). The pooled scratch owns every transient structure,
// so the expected count is 0; the ≤ 2 slack absorbs runtime noise
// (pool refills after an unlucky GC).
func TestQueryDistanceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race (sync.Pool reuse is randomized)")
	}
	g := gridGraph(t, 8, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.NewFaultSet()
	f.AddVertex(27)
	f.AddVertex(36)
	q, err := s.NewQuery(0, 63, f)
	if err != nil {
		t.Fatal(err)
	}
	q.Distance() // warm the pool and size the scratch
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok := q.Distance(); !ok {
			t.Fatal("query became disconnected")
		}
	})
	if allocs > 2 {
		t.Errorf("Query.Distance steady-state allocs/op = %g, want <= 2", allocs)
	}
}

// TestDecoderDistanceAllocs pins the batch decoder (one scratch held
// across calls, no pool traffic at all) at zero steady-state allocations.
func TestDecoderDistanceAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race (sync.Pool reuse is randomized)")
	}
	g := gridGraph(t, 8, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.NewFaultSet()
	f.AddVertex(20)
	q, err := s.NewQuery(1, 62, f)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	defer dec.Release()
	dec.Distance(q) // size the scratch
	allocs := testing.AllocsPerRun(200, func() {
		dec.Distance(q)
	})
	if allocs > 0 {
		t.Errorf("Decoder.Distance steady-state allocs/op = %g, want 0", allocs)
	}
}

// TestLabelExtractColdAllocs pins the cache-miss Label path: with the
// pooled extraction scratch (BFS state, open-addressing inBall, reusable
// point/edge buffers), a cold extract allocates only what the returned
// Label retains — the Label, its Levels slice, and up to two exact-size
// copies per level. An 8×8 grid has 4 levels, so the expected count is
// ~10; the ≤ 16 bound absorbs pool refills. (Before the scratch pool
// this path cost 168 allocs / 2.8 MB per extract.)
func TestLabelExtractColdAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race (sync.Pool reuse is randomized)")
	}
	g := gridGraph(t, 8, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheLimit(0) // every Label call extracts from scratch
	s.Label(27)        // warm the pool and size the scratch
	allocs := testing.AllocsPerRun(100, func() {
		if s.Label(27) == nil {
			t.Fatal("nil label")
		}
	})
	if allocs > 16 {
		t.Errorf("cold label extract allocs/op = %g, want <= 16", allocs)
	}
}

// TestSchemeLabelAllocs pins the warm-cache Label path: a cache hit must
// not allocate.
func TestSchemeLabelAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("alloc counts are unstable under -race")
	}
	g := gridGraph(t, 8, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.Label(17) // populate the cache
	allocs := testing.AllocsPerRun(200, func() {
		s.Label(17)
	})
	if allocs > 0 {
		t.Errorf("Scheme.Label warm-cache allocs/op = %g, want 0", allocs)
	}
}

// TestConcurrentLabelDistanceStress hammers the sharded label cache and
// the pooled decoder from many goroutines and checks every answer —
// labels byte-for-byte, distances exactly — against a serially computed
// baseline. Run under -race this is the concurrency proof for the whole
// new fast path.
func TestConcurrentLabelDistanceStress(t *testing.T) {
	g := gridGraph(t, 7, 7)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheLimit(16) // small cache: forces concurrent miss/evict churn
	n := g.NumVertices()

	// Serial baseline, computed before any concurrency.
	base, berr := BuildScheme(g, 2)
	if berr != nil {
		t.Fatal(berr)
	}
	wantBytes := make([][]byte, n)
	for v := 0; v < n; v++ {
		buf, nbits := base.Label(v).Encode()
		wantBytes[v] = buf[:(nbits+7)/8]
	}
	f := graph.NewFaultSet()
	f.AddVertex(24)
	type pair struct{ s, t int }
	pairs := []pair{{0, 48}, {6, 42}, {3, 45}, {1, 47}, {10, 38}}
	wantDist := make(map[pair]int64)
	wantOK := make(map[pair]bool)
	for _, p := range pairs {
		d, ok := base.Distance(p.s, p.t, f)
		wantDist[p], wantOK[p] = d, ok
	}

	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			dec := NewDecoder()
			defer dec.Release()
			for i := 0; i < 300; i++ {
				v := rng.Intn(n)
				buf, nbits := s.Label(v).Encode()
				got := buf[:(nbits+7)/8]
				if string(got) != string(wantBytes[v]) {
					t.Errorf("label %d not bit-identical under concurrency", v)
					return
				}
				p := pairs[rng.Intn(len(pairs))]
				q, err := s.NewQuery(p.s, p.t, f)
				if err != nil {
					t.Error(err)
					return
				}
				d, ok := dec.Distance(q)
				if ok != wantOK[p] || (ok && d != wantDist[p]) {
					t.Errorf("query (%d,%d) = (%d,%v), want (%d,%v)",
						p.s, p.t, d, ok, wantDist[p], wantOK[p])
					return
				}
			}
		}(int64(w))
	}
	wg.Wait()

	if hits, misses := s.LabelCacheStats(); hits == 0 || misses == 0 {
		t.Errorf("cache stats (hits=%d, misses=%d) show no churn — stress ineffective", hits, misses)
	}
}
