package core

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// Scheme persistence: the preprocessed state (graph, net hierarchy
// membership, and the per-level net-graph adjacency) serializes to a
// stream, so the expensive preprocessing runs once on the server and the
// scheme reopens instantly. The nearest-net-point maps are recomputed on
// load (a handful of multi-source BFS passes — cheap relative to the net
// graphs).

var schemeMagic = []byte("FSDLS1")

// SaveScheme writes the preprocessed scheme to w.
func SaveScheme(w io.Writer, s *Scheme) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(schemeMagic); err != nil {
		return fmt.Errorf("core: write scheme magic: %w", err)
	}
	var scratch [binary.MaxVarintLen64]byte
	writeU := func(v uint64) error {
		k := binary.PutUvarint(scratch[:], v)
		_, err := bw.Write(scratch[:k])
		return err
	}
	p := s.params
	n := s.g.NumVertices()
	header := []uint64{
		uint64(p.Epsilon * 65536),
		uint64(p.C),
		uint64(p.MaxLevel),
		uint64(p.RShrink),
		uint64(n),
		uint64(s.g.NumEdges()),
	}
	for _, v := range header {
		if err := writeU(v); err != nil {
			return fmt.Errorf("core: write scheme header: %w", err)
		}
	}
	// Edges, gap-coded in (u, v) lexicographic order.
	prevU := 0
	var writeErr error
	s.g.ForEachEdge(func(u, v int) {
		if writeErr != nil {
			return
		}
		if err := writeU(uint64(u - prevU)); err != nil {
			writeErr = err
			return
		}
		prevU = u
		writeErr = writeU(uint64(v))
	})
	if writeErr != nil {
		return fmt.Errorf("core: write scheme edges: %w", writeErr)
	}
	// Net membership.
	for v := 0; v < n; v++ {
		if err := writeU(uint64(s.h.NetLevelOf(v))); err != nil {
			return fmt.Errorf("core: write net levels: %w", err)
		}
	}
	// Per-level net graphs.
	netLevel := s.store.netLevel
	for li := range s.store.levels {
		sl := &s.store.levels[li]
		if sl.off == nil {
			continue // lowest level has no net graph
		}
		for v := 0; v < n; v++ {
			if netLevel[v] < sl.netLvl {
				continue
			}
			nbrs := sl.row(int32(v))
			if err := writeU(uint64(len(nbrs))); err != nil {
				return fmt.Errorf("core: write adjacency count: %w", err)
			}
			prev := int64(-1)
			for _, nb := range nbrs {
				if err := writeU(uint64(int64(nb.x) - prev - 1)); err != nil {
					return fmt.Errorf("core: write adjacency id: %w", err)
				}
				prev = int64(nb.x)
				if err := writeU(uint64(nb.d)); err != nil {
					return fmt.Errorf("core: write adjacency dist: %w", err)
				}
			}
		}
	}
	return bw.Flush()
}

// LoadScheme reads a scheme persisted by SaveScheme.
func LoadScheme(r io.Reader) (*Scheme, error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(schemeMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return nil, fmt.Errorf("core: read scheme magic: %w", err)
	}
	if string(head) != string(schemeMagic) {
		return nil, fmt.Errorf("core: bad scheme magic %q", head)
	}
	readU := func(what string) (uint64, error) {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return 0, fmt.Errorf("core: read scheme %s: %w", what, err)
		}
		return v, nil
	}
	epsQ, err := readU("epsilon")
	if err != nil {
		return nil, err
	}
	c, err := readU("c")
	if err != nil {
		return nil, err
	}
	maxLevel, err := readU("max level")
	if err != nil {
		return nil, err
	}
	rShrink, err := readU("r-shrink")
	if err != nil {
		return nil, err
	}
	nU, err := readU("n")
	if err != nil {
		return nil, err
	}
	mU, err := readU("m")
	if err != nil {
		return nil, err
	}
	if nU > graph.MaxReadVertices || mU > 64*nU {
		return nil, fmt.Errorf("core: implausible scheme size n=%d m=%d", nU, mU)
	}
	n, m := int(nU), int(mU)
	params := Params{
		Epsilon:     float64(epsQ) / 65536,
		C:           int(c),
		MaxLevel:    int(maxLevel),
		RShrink:     int(rShrink),
		NumVertices: n,
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}

	b := graph.NewBuilder(n)
	prevU := 0
	for i := 0; i < m; i++ {
		du, err := readU("edge u")
		if err != nil {
			return nil, err
		}
		vv, err := readU("edge v")
		if err != nil {
			return nil, err
		}
		u := prevU + int(du)
		prevU = u
		if u >= n || int(vv) >= n {
			return nil, fmt.Errorf("core: scheme edge (%d,%d) out of range", u, vv)
		}
		b.AddEdge(u, int(vv))
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("core: rebuild scheme graph: %w", err)
	}

	netLevel := make([]int, n)
	for v := range netLevel {
		lvl, err := readU("net level")
		if err != nil {
			return nil, err
		}
		netLevel[v] = int(lvl)
	}
	h, err := nets.FromNetLevels(g, netLevel)
	if err != nil {
		return nil, err
	}

	st := &levelStore{params: params, g: g, h: h, netLevel: h.NetLevels()}
	for level := params.LowestLevel(); level <= params.MaxLevel; level++ {
		sl := storeLevel{level: level, netLvl: int32(clampNetLevel(h, params.NetLevel(level)))}
		if level > params.LowestLevel() {
			// The stream lists net points in increasing vertex order, so
			// the CSR arrays assemble in one pass.
			off := make([]int64, n+1)
			var entries []pointDist
			for v := 0; v < n; v++ {
				if st.netLevel[v] >= sl.netLvl {
					count, err := readU("adjacency count")
					if err != nil {
						return nil, err
					}
					if count > uint64(n) {
						return nil, fmt.Errorf("core: adjacency count %d exceeds n", count)
					}
					prev := int64(-1)
					for i := uint64(0); i < count; i++ {
						gap, err := readU("adjacency id")
						if err != nil {
							return nil, err
						}
						prev += int64(gap) + 1
						d, err := readU("adjacency dist")
						if err != nil {
							return nil, err
						}
						if prev >= int64(n) {
							return nil, fmt.Errorf("core: adjacency id %d out of range", prev)
						}
						entries = append(entries, pointDist{x: int32(prev), d: int32(d)})
					}
				}
				off[v+1] = int64(len(entries))
			}
			sl.off, sl.entries = off, entries
		}
		st.levels = append(st.levels, sl)
	}
	return newScheme(g, h, params, st), nil
}
