package core

import (
	"cmp"
	"fmt"
	"math"
	"slices"
	"sort"

	"fsdl/internal/bitio"
	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// FFScheme is the failure-free (1+ε)-approximate distance labeling scheme
// described in the overview of Section 2.1. It is both a pedagogical
// stepping stone to the forbidden-set scheme and the cheap baseline of the
// experiments: its labels are far smaller, but it tolerates no faults.
//
// The label of v stores, for each level i ∈ {c, …, L} with
// c = max(⌈log₂(2/ε)⌉, 0), the net points of N_{i-c} within the ball
// B(v, 2^{i+1}−1), with exact distances. A query scans for the smallest
// level at which the nearest net point of t appears in s's ball and returns
// the summed distances through it.
type FFScheme struct {
	g        *graph.Graph
	h        *nets.Hierarchy
	epsilon  float64
	c        int
	maxLevel int
}

// FFLabel is a failure-free distance label.
type FFLabel struct {
	V        int32
	C        int
	MaxLevel int
	// Levels[k] lists the net points of N_{(c+k)-c} = N_k within
	// B(v, 2^{c+k+1}−1), sorted by vertex id, with distances from v.
	Levels [][]PointEntry
}

// BuildFFScheme preprocesses g into a failure-free labeling scheme with
// stretch 1+ε.
func BuildFFScheme(g *graph.Graph, epsilon float64) (*FFScheme, error) {
	if epsilon <= 0 {
		return nil, fmt.Errorf("core: epsilon must be positive, got %g", epsilon)
	}
	c := 0
	if need := int(math.Ceil(math.Log2(2 / epsilon))); need > c {
		c = need
	}
	l := nets.NumLevels(g.NumVertices()) - 1
	if l < c {
		l = c
	}
	h, err := nets.BuildWithOrder(g, nets.ScatteredOrder(g.NumVertices()))
	if err != nil {
		return nil, fmt.Errorf("core: build net hierarchy: %w", err)
	}
	return &FFScheme{g: g, h: h, epsilon: epsilon, c: c, maxLevel: l}, nil
}

// Epsilon returns the scheme's precision parameter.
func (s *FFScheme) Epsilon() float64 { return s.epsilon }

// C returns the derived constant c.
func (s *FFScheme) C() int { return s.c }

// Label extracts the failure-free label of v.
func (s *FFScheme) Label(v int) *FFLabel {
	l := &FFLabel{V: int32(v), C: s.c, MaxLevel: s.maxLevel}
	scratch := graph.NewBFSScratch(s.g.NumVertices())
	for i := s.c; i <= s.maxLevel; i++ {
		netLvl := clampNetLevel(s.h, i-s.c)
		radius := int32(1)<<uint(i+1) - 1
		var pts []PointEntry
		scratch.TruncatedBFS(s.g, v, radius, func(w, d int32) {
			if s.h.InNet(int(w), netLvl) {
				pts = append(pts, PointEntry{X: w, D: d})
			}
		})
		slices.SortFunc(pts, func(a, b PointEntry) int { return cmp.Compare(a.X, b.X) })
		l.Levels = append(l.Levels, pts)
	}
	return l
}

// LabelBits returns the serialized size of the failure-free label of v in
// bits.
func (s *FFScheme) LabelBits(v int) int {
	_, bits := s.Label(v).Encode()
	return bits
}

// FFDistance answers a failure-free query from two labels alone: it
// returns a distance estimate δ with d ≤ δ ≤ (1+ε)d, or ok = false when s
// and t are disconnected.
func FFDistance(ls, lt *FFLabel) (int64, bool) {
	if ls.V == lt.V {
		return 0, true
	}
	if ls.C != lt.C || ls.MaxLevel != lt.MaxLevel {
		return 0, false
	}
	for k := range lt.Levels {
		// M_{i-c}(t): the nearest level-(i-c) net point to t.
		pts := lt.Levels[k]
		if len(pts) == 0 {
			continue
		}
		m := pts[0]
		for _, pe := range pts[1:] {
			if pe.D < m.D {
				m = pe
			}
		}
		if k >= len(ls.Levels) {
			break
		}
		if ds, ok := ffDistTo(ls.Levels[k], m.X); ok {
			return int64(ds) + int64(m.D), true
		}
	}
	return 0, false
}

func ffDistTo(pts []PointEntry, x int32) (int32, bool) {
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	if i < len(pts) && pts[i].X == x {
		return pts[i].D, true
	}
	return 0, false
}

// Encode serializes the label to a bit string (same coding conventions as
// the forbidden-set labels).
func (l *FFLabel) Encode() ([]byte, int) {
	var w bitio.Writer
	w.WriteUvarint(uint64(l.V))
	w.WriteUvarint(uint64(l.C))
	w.WriteUvarint(uint64(l.MaxLevel))
	for _, pts := range l.Levels {
		w.WriteDelta(uint64(len(pts)))
		prev := int64(-1)
		for _, pe := range pts {
			w.WriteDelta(uint64(int64(pe.X) - prev - 1))
			prev = int64(pe.X)
			w.WriteGamma(uint64(pe.D))
		}
	}
	return w.Bytes(), w.Len()
}

// DecodeFFLabel parses a label serialized by FFLabel.Encode.
func DecodeFFLabel(buf []byte, nbits int) (*FFLabel, error) {
	r := bitio.NewReader(buf, nbits)
	l := &FFLabel{}
	v, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode ff label vertex: %w", err)
	}
	l.V = int32(v)
	c, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode ff label c: %w", err)
	}
	l.C = int(c)
	maxLevel, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode ff label max level: %w", err)
	}
	l.MaxLevel = int(maxLevel)
	numLevels := l.MaxLevel - l.C + 1
	if numLevels < 0 || numLevels > 64 {
		return nil, fmt.Errorf("core: decode ff label: implausible level count %d", numLevels)
	}
	for k := 0; k < numLevels; k++ {
		np, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("core: decode ff level %d: %w", k, err)
		}
		if np > uint64(r.Remaining()) {
			return nil, fmt.Errorf("core: decode ff level %d: point count %d exceeds payload", k, np)
		}
		pts := make([]PointEntry, np)
		prev := int64(-1)
		for i := range pts {
			gap, err := r.ReadDelta()
			if err != nil {
				return nil, fmt.Errorf("core: decode ff point gap: %w", err)
			}
			prev += int64(gap) + 1
			d, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("core: decode ff point dist: %w", err)
			}
			pts[i] = PointEntry{X: int32(prev), D: int32(d)}
		}
		l.Levels = append(l.Levels, pts)
	}
	return l, nil
}
