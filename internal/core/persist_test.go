package core

import (
	"bytes"
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

func TestSchemeSaveLoadRoundTrip(t *testing.T) {
	g := gridGraph(t, 9, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScheme(&buf)
	if err != nil {
		t.Fatal(err)
	}
	p, lp := s.Params(), loaded.Params()
	if p.C != lp.C || p.MaxLevel != lp.MaxLevel || p.RShrink != lp.RShrink {
		t.Fatalf("params changed: %+v -> %+v", p, lp)
	}
	// Labels must be bit-identical.
	for _, v := range []int{0, 31, 71} {
		a, abits := s.Label(v).Encode()
		b, bbits := loaded.Label(v).Encode()
		if abits != bbits || !bytes.Equal(a[:(abits+7)/8], b[:(bbits+7)/8]) {
			t.Fatalf("label %d differs after scheme round trip", v)
		}
	}
	// Queries must agree.
	f := graph.FaultVertices(30, 40)
	d1, ok1 := s.Distance(0, 71, f)
	d2, ok2 := loaded.Distance(0, 71, f)
	if d1 != d2 || ok1 != ok2 {
		t.Fatalf("query differs: (%d,%v) vs (%d,%v)", d1, ok1, d2, ok2)
	}
}

// TestSchemeSaveLoadWorkers extends the round trip across the worker
// pool: a scheme built with a full pool persists to exactly the bytes of
// the serial build's stream, and survives Load with identical labels.
func TestSchemeSaveLoadWorkers(t *testing.T) {
	g := gridGraph(t, 9, 8)
	serial, err := BuildSchemeWorkers(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := SaveScheme(&want, serial); err != nil {
		t.Fatal(err)
	}
	pooled, err := BuildSchemeWorkers(g, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	if err := SaveScheme(&got, pooled); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("4-worker build persists to different bytes than serial (%d vs %d)",
			got.Len(), want.Len())
	}
	loaded, err := LoadScheme(&got)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 35, 71} {
		a, abits := pooled.Label(v).Encode()
		b, bbits := loaded.Label(v).Encode()
		if abits != bbits || !bytes.Equal(a[:(abits+7)/8], b[:(bbits+7)/8]) {
			t.Fatalf("label %d differs after pooled-build round trip", v)
		}
	}
}

func TestSchemeSaveLoadAblated(t *testing.T) {
	g := pathGraph(t, 80)
	s, err := BuildSchemeAblated(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScheme(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Params().RShrink != 2 {
		t.Fatalf("RShrink lost: %d", loaded.Params().RShrink)
	}
	a, abits := s.Label(40).Encode()
	b, bbits := loaded.Label(40).Encode()
	if abits != bbits || !bytes.Equal(a[:(abits+7)/8], b[:(bbits+7)/8]) {
		t.Fatal("ablated label differs after round trip")
	}
}

func TestSchemeLoadRejectsCorruption(t *testing.T) {
	g := pathGraph(t, 20)
	s, _ := BuildScheme(g, 2)
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	if _, err := LoadScheme(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream must fail")
	}
	if _, err := LoadScheme(bytes.NewReader([]byte("NOTASCHEME"))); err == nil {
		t.Error("bad magic must fail")
	}
	if _, err := LoadScheme(bytes.NewReader(good[:len(good)/3])); err == nil {
		t.Error("truncated stream must fail")
	}
}

func TestSchemeRoundTripRandomGraphQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := randomConnected(t, 70, 90, rng)
	s, err := BuildScheme(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScheme(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 25; trial++ {
		u, v := rng.Intn(70), rng.Intn(70)
		f := graph.NewFaultSet()
		for i := 0; i < rng.Intn(4); i++ {
			x := rng.Intn(70)
			if x != u && x != v {
				f.AddVertex(x)
			}
		}
		d1, ok1 := s.Distance(u, v, f)
		d2, ok2 := loaded.Distance(u, v, f)
		if d1 != d2 || ok1 != ok2 {
			t.Fatalf("trial %d (%d,%d): (%d,%v) vs (%d,%v)", trial, u, v, d1, ok1, d2, ok2)
		}
	}
}

func TestStoreStats(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	st := s.StoreStats()
	if len(st.Levels) != s.Params().NumLevelRange() {
		t.Fatalf("levels = %d, want %d", len(st.Levels), s.Params().NumLevelRange())
	}
	if st.Levels[0].NetPoints != 64 {
		t.Errorf("lowest level net points = %d, want n=64 (N_0 = V)", st.Levels[0].NetPoints)
	}
	if st.Levels[0].NetEdges != 0 {
		t.Errorf("lowest level should have no net graph, got %d edges", st.Levels[0].NetEdges)
	}
	if st.TotalNetEdges <= 0 {
		t.Error("store must have net edges at higher levels")
	}
	for i := 1; i < len(st.Levels); i++ {
		if st.Levels[i].NetPoints > st.Levels[i-1].NetPoints {
			t.Errorf("net points must shrink with level: %d -> %d",
				st.Levels[i-1].NetPoints, st.Levels[i].NetPoints)
		}
	}
	// Stats must survive persistence.
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadScheme(&buf)
	if err != nil {
		t.Fatal(err)
	}
	lst := loaded.StoreStats()
	if lst.TotalNetEdges != st.TotalNetEdges {
		t.Errorf("TotalNetEdges %d -> %d after round trip", st.TotalNetEdges, lst.TotalNetEdges)
	}
}
