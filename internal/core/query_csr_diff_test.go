package core

import (
	"math/rand"
	"reflect"
	"testing"

	"fsdl/internal/graph"
)

// This file is the CSR-decoder differential sweep (ISSUE 8): random
// doubling graphs × fault-set sizes {0,1,4,16,64} × live-patch batches,
// asserting the rebuilt decode is bit-identical to referenceDecode and
// that every reported witness path is a valid walk of the surviving
// graph whose hop weights sum exactly to the returned distance.

// checkWalk validates a reported witness path: it must run src..dst, and
// each hop must be realizable in G\F at exactly the weight the decoder
// charged for it — d_{G\F}(a,b) for sketch hops (sketch edges carry
// exact G-distances realizable avoiding F, so the two coincide), or 1
// for a hop that is one of the inserted patch edges. The recomputed
// per-hop weights must sum to the reported distance.
func checkWalk(t *testing.T, g *graph.Graph, f *graph.FaultSet, patches map[uint64]bool, path []int32, src, dst int32, dist int64) {
	t.Helper()
	if len(path) == 0 {
		t.Fatalf("empty path for dist %d", dist)
	}
	if path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path endpoints %d..%d, want %d..%d", path[0], path[len(path)-1], src, dst)
	}
	var sum int64
	for i := 1; i < len(path); i++ {
		a, b := path[i-1], path[i]
		if a == b {
			t.Fatalf("path repeats vertex %d at hop %d", a, i)
		}
		w := int64(-1)
		if d := g.DistAvoiding(int(a), int(b), f); graph.Reachable(d) {
			w = int64(d)
		}
		if patches[unorderedKey(a, b)] && (w < 0 || w > 1) {
			w = 1
		}
		if w < 0 {
			t.Fatalf("hop %d–%d not realizable in G\\F and not a patch edge", a, b)
		}
		sum += w
	}
	if sum != dist {
		t.Fatalf("walk length %d != reported distance %d (path %v)", sum, dist, path)
	}
}

// diffFaults draws nf distinct fault vertices avoiding src and dst.
func diffFaults(rng *rand.Rand, n, nf, src, dst int) *graph.FaultSet {
	if nf == 0 {
		return nil
	}
	f := graph.NewFaultSet()
	for f.Size() < nf {
		v := rng.Intn(n)
		if v != src && v != dst {
			f.AddVertex(v)
		}
	}
	return f
}

// TestDecodeCSRMatchesReference is the differential sweep: distances
// must be bit-identical to the reference decoder at every fault size,
// and DecodePath's walk must check out against the real graph.
func TestDecodeCSRMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	graphs := map[string]*graph.Graph{
		"grid10x10": gridGraph(t, 10, 10),
		"grid12x9":  gridGraph(t, 12, 9),
		"rand120":   randomConnected(t, 120, 60, rng),
	}
	for gname, g := range graphs {
		s, err := BuildScheme(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		n := g.NumVertices()
		dec := NewDecoder()
		var buf []int32
		// 64 centers still fit one mask word; 70 forces the multi-word
		// (W=2) mask and owner-tier paths.
		for _, nf := range []int{0, 1, 4, 16, 64, 70} {
			if nf > n-2 {
				continue
			}
			for rep := 0; rep < 4; rep++ {
				src := rng.Intn(n)
				dst := rng.Intn(n)
				for dst == src {
					dst = rng.Intn(n)
				}
				f := diffFaults(rng, n, nf, src, dst)
				q, err := s.NewQuery(src, dst, f)
				if err != nil {
					t.Fatal(err)
				}
				wantDist, _, _, _, wantErr := referenceDecode(q, nil)
				if wantErr != nil {
					t.Fatalf("%s F=%d: reference error: %v", gname, nf, wantErr)
				}
				gotDist, ok := q.Distance()
				if wantDist < 0 {
					if ok {
						t.Fatalf("%s F=%d: Distance ok for unreachable pair", gname, nf)
					}
				} else if !ok || gotDist != wantDist {
					t.Fatalf("%s F=%d: Distance=(%d,%v), reference %d", gname, nf, gotDist, ok, wantDist)
				}

				var path []int32
				pd, path, pok := dec.DecodePath(q, buf[:0])
				buf = path
				if pok != (wantDist >= 0) {
					t.Fatalf("%s F=%d: DecodePath ok=%v, reference dist %d", gname, nf, pok, wantDist)
				}
				if !pok {
					continue
				}
				if pd != wantDist {
					t.Fatalf("%s F=%d: DecodePath dist %d, reference %d", gname, nf, pd, wantDist)
				}
				checkWalk(t, g, f, nil, path, int32(src), int32(dst), pd)
			}
		}
		dec.Release()
	}
}

// TestDecodePathUnderPatches validates witness walks through live-patch
// batches: the patched answer must match DistanceRobustPatched exactly,
// never exceed the unpatched answer, and the spliced walk must check out
// with the inserted edges as unit hops.
func TestDecodePathUnderPatches(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := gridGraph(t, 10, 10)
	n := g.NumVertices()
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	adjacent := func(u, v int) bool {
		for _, w := range g.Neighbors(u) {
			if int(w) == v {
				return true
			}
		}
		return false
	}
	dec := NewDecoder()
	defer dec.Release()
	for _, np := range []int{1, 4, 16} {
		for rep := 0; rep < 4; rep++ {
			src := rng.Intn(n)
			dst := rng.Intn(n)
			for dst == src {
				dst = rng.Intn(n)
			}
			f := diffFaults(rng, n, 4, src, dst)
			q, err := s.NewQuery(src, dst, f)
			if err != nil {
				t.Fatal(err)
			}
			var patches []PatchEdge
			patchSet := map[uint64]bool{}
			for len(patches) < np {
				u, v := rng.Intn(n), rng.Intn(n)
				if u == v || adjacent(u, v) || patchSet[unorderedKey(int32(u), int32(v))] {
					continue
				}
				if f != nil && (f.HasVertex(u) || f.HasVertex(v)) {
					continue
				}
				patchSet[unorderedKey(int32(u), int32(v))] = true
				patches = append(patches, PatchEdge{U: s.Label(u), V: s.Label(v)})
			}
			base := dec.DistanceRobust(q)
			want := dec.DistanceRobustPatched(q, patches)
			got, path := dec.DistanceRobustPatchedPath(q, patches, nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("np=%d: path variant result %+v != %+v", np, got, want)
			}
			if base.OK && (!got.OK || got.Dist > base.Dist) {
				t.Fatalf("np=%d: patched answer %+v worse than unpatched %+v", np, got, base)
			}
			if !got.OK {
				continue
			}
			checkWalk(t, g, f, patchSet, path, int32(src), int32(dst), got.Dist)
		}
	}
}

// TestDecodePathDegraded validates witness walks in degraded mode: with
// unusable fault labels only verbatim surviving unit edges are admitted,
// so every hop of the walk must be a real edge of G avoiding all faults,
// and the hop count must equal the reported (upper-bound) distance.
func TestDecodePathDegraded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := gridGraph(t, 10, 10)
	n := g.NumVertices()
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	dec := NewDecoder()
	defer dec.Release()
	for rep := 0; rep < 6; rep++ {
		src := rng.Intn(n)
		dst := rng.Intn(n)
		for dst == src {
			dst = rng.Intn(n)
		}
		q, err := s.NewQuery(src, dst, nil)
		if err != nil {
			t.Fatal(err)
		}
		fset := graph.NewFaultSet()
		for fset.Size() < 3 {
			v := rng.Intn(n)
			if v != src && v != dst {
				fset.AddVertex(v)
				q.DegradedVertexFaults = append(q.DegradedVertexFaults, int32(v))
			}
		}
		res, path := dec.DistanceRobustPath(q, nil)
		if !res.Degraded {
			t.Fatalf("degraded query not flagged: %+v", res)
		}
		if !res.OK {
			continue
		}
		// Every hop must be a verbatim surviving edge: the walk is a real
		// path of G\F, so its length bounds d_{G\F} from above and equals
		// the degraded estimate exactly.
		checkWalk(t, g, fset, nil, path, int32(src), int32(dst), res.Dist)
		if truth := g.DistAvoiding(src, dst, fset); graph.Reachable(truth) && int64(truth) > res.Dist {
			t.Fatalf("degraded answer %d below true distance %d", res.Dist, truth)
		}
	}
}
