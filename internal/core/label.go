package core

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"fsdl/internal/bitio"
	"fsdl/internal/graph"
)

// Label is the self-contained forbidden-set distance label L(v) of one
// vertex. Given only the labels of s, t and the forbidden set F, the
// decoder (see Query) answers (1+ε)-approximate distance queries on G\F.
//
// Levels[k] holds the level-(c+1+k) graph H_ℓ(v): the net points of
// N_{ℓ-c-1} within r_ℓ of v with their exact distances from v, and the
// short edges between them. At the lowest level the edges are the original
// unit-weight graph edges inside the ball.
type Label struct {
	// V is the labeled vertex.
	V int32
	// Epsilon, C, MaxLevel and RShrink echo the scheme parameters so that
	// a label is interpretable on its own (and so the decoder can
	// cross-check that all labels of a query come from compatible
	// schemes). RShrink matters for soundness: the decoder's
	// "outside the protected ball" certificates depend on the ball radius
	// the label was extracted with.
	Epsilon  float64
	C        int
	MaxLevel int
	RShrink  int
	// Levels[k] is the level-(c+1+k) content.
	Levels []LevelLabel
}

// LevelLabel is the per-level slice of a label.
type LevelLabel struct {
	// Points lists the net points x of this level's ball around v,
	// sorted by vertex id, with D = d_G(v, x) ≤ r_ℓ.
	Points []PointEntry
	// Edges lists the short edges between points: indices into Points and
	// the exact distance D = d_G(x,y) ≤ λ_ℓ (D = 1 at the lowest level,
	// where edges are original graph edges).
	Edges []EdgeEntry
}

// PointEntry is a net point of a label ball and its distance from the
// labeled vertex.
type PointEntry struct {
	X int32 // vertex id
	D int32 // d_G(v, X)
}

// EdgeEntry is a short edge between two points of the same level, stored
// as indices into the Points slice (XI < YI), with its exact length.
type EdgeEntry struct {
	XI, YI int32
	D      int32
}

// Level returns the scheme level of Levels[k], namely c+1+k.
func (l *Label) Level(k int) int { return l.C + 1 + k }

// DistTo returns d_G(v, x) if x is a point of level ℓ's ball, with
// ok = false when x is outside the ball (distance > r_ℓ).
func (l *Label) DistTo(level int, x int32) (int32, bool) {
	k := level - l.C - 1
	if k < 0 || k >= len(l.Levels) {
		return 0, false
	}
	pts := l.Levels[k].Points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].X >= x })
	if i < len(pts) && pts[i].X == x {
		return pts[i].D, true
	}
	return 0, false
}

// InProtectedBall reports whether x lies in the level-ℓ protected ball
// PB_ℓ(v) = B(v, λ_ℓ) around this label's vertex. As the paper observes,
// the label data suffices: r_ℓ > λ_ℓ, so any x missing from the ball list
// is certainly outside PB_ℓ(v).
func (l *Label) InProtectedBall(level int, x int32) bool {
	if x == l.V {
		return true
	}
	d, ok := l.DistTo(level, x)
	return ok && d <= lambdaOf(level)
}

func lambdaOf(level int) int32 { return 1 << uint(level+1) }

// NumPoints returns the total number of point entries across levels.
func (l *Label) NumPoints() int {
	total := 0
	for _, lv := range l.Levels {
		total += len(lv.Points)
	}
	return total
}

// NumEdges returns the total number of edge entries across levels.
func (l *Label) NumEdges() int {
	total := 0
	for _, lv := range l.Levels {
		total += len(lv.Edges)
	}
	return total
}

// Validate checks the structural invariants a well-formed label satisfies:
// consistent level count, strictly sorted point lists, in-range edge
// indices with XI < YI, and distances within the level bounds (points
// within r_ℓ of v, edges within λ_ℓ). DecodeLabel applies it, making
// decoded labels trustworthy structurally (their distances may still be
// semantically wrong if the producer lied — the decoder's guarantees are
// only as good as the marker that produced the labels, exactly as in the
// paper's model).
func (l *Label) Validate() error {
	if l.C < 2 {
		return fmt.Errorf("core: label c = %d < 2", l.C)
	}
	if len(l.Levels) != l.MaxLevel-l.C {
		return fmt.Errorf("core: label has %d levels, want %d", len(l.Levels), l.MaxLevel-l.C)
	}
	if l.RShrink < 0 || l.RShrink > 32 {
		return fmt.Errorf("core: label r-shrink %d out of range", l.RShrink)
	}
	for k := range l.Levels {
		level := l.Level(k)
		lv := &l.Levels[k]
		r := labelBallRadius(l.C, level, l.RShrink)
		lambda := lambdaOf(level)
		var prev int32 = -1
		for i, pe := range lv.Points {
			if pe.X <= prev {
				return fmt.Errorf("core: level %d point %d not strictly sorted", level, i)
			}
			prev = pe.X
			if pe.D < 0 || pe.D > r {
				return fmt.Errorf("core: level %d point %d distance %d outside [0,%d]",
					level, i, pe.D, r)
			}
		}
		maxEdgeLen := lambda
		if level == l.C+1 {
			maxEdgeLen = 1 // lowest level stores original unit edges
		}
		for i, e := range lv.Edges {
			if e.XI < 0 || e.YI < 0 || int(e.XI) >= len(lv.Points) || int(e.YI) >= len(lv.Points) {
				return fmt.Errorf("core: level %d edge %d index out of range", level, i)
			}
			if e.XI >= e.YI {
				return fmt.Errorf("core: level %d edge %d has XI >= YI", level, i)
			}
			if e.D <= 0 || e.D > maxEdgeLen {
				return fmt.Errorf("core: level %d edge %d length %d outside (0,%d]",
					level, i, e.D, maxEdgeLen)
			}
		}
	}
	return nil
}

// extractScratch pools the per-extraction transients: the O(n) BFS state,
// the ball-membership index (an open-addressing i32map, same style as
// decodeScratch), and staging buffers for points and edges. All of them
// grow to the largest label seen and are reused, so a cold extraction
// allocates only the exact-size slices retained by the returned Label —
// no per-level map, no append-doubling garbage.
type extractScratch struct {
	bfs    *graph.BFSScratch
	inBall i32map // vertex -> index in the sorted point list
	pts    []PointEntry
	edges  []EdgeEntry
}

func newExtractScratch(n int) *extractScratch {
	return &extractScratch{bfs: graph.NewBFSScratch(n)}
}

// extractLabel materializes the label of v from the shared store: one
// truncated BFS of radius r_ℓ per level discovers the ball (points and
// their distances); edges are then read off the store's CSR net graph
// (or, at the lowest level, off the original graph).
func (st *levelStore) extractLabel(v int, sc *extractScratch) *Label {
	p := st.params
	l := &Label{
		V:        int32(v),
		Epsilon:  p.Epsilon,
		C:        p.C,
		MaxLevel: p.MaxLevel,
		RShrink:  p.RShrink,
		Levels:   make([]LevelLabel, p.NumLevelRange()),
	}
	netLevel := st.netLevel
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		k := st.levelIndex(level)
		sl := &st.levels[k]
		pts := sc.pts[:0]
		sc.bfs.TruncatedBFS(st.g, v, p.R(level), func(w, d int32) {
			if netLevel[w] >= sl.netLvl {
				pts = append(pts, PointEntry{X: w, D: d})
			}
		})
		slices.SortFunc(pts, func(a, b PointEntry) int { return cmp.Compare(a.X, b.X) })
		sc.inBall.reset()
		for i, pe := range pts {
			sc.inBall.getOrPut(pe.X, int32(i))
		}
		edges := sc.edges[:0]
		if level == p.LowestLevel() {
			// Original graph edges with both endpoints inside the ball.
			for i, pe := range pts {
				for _, w := range st.g.Neighbors(int(pe.X)) {
					j, ok := sc.inBall.lookup(w)
					if ok && int32(i) < j {
						edges = append(edges, EdgeEntry{XI: int32(i), YI: j, D: 1})
					}
				}
			}
		} else {
			for i, pe := range pts {
				for _, nb := range sl.row(pe.X) {
					j, ok := sc.inBall.lookup(nb.x)
					if ok && int32(i) < j {
						edges = append(edges, EdgeEntry{XI: int32(i), YI: j, D: nb.d})
					}
				}
			}
		}
		l.Levels[k] = LevelLabel{Points: exactCopy(pts), Edges: exactCopy(edges)}
		sc.pts, sc.edges = pts[:0], edges[:0]
	}
	return l
}

// exactCopy returns a copy of s sized exactly to its length (nil for
// empty), so the retained label never pins staging-buffer capacity.
func exactCopy[T any](s []T) []T {
	if len(s) == 0 {
		return nil
	}
	out := make([]T, len(s))
	copy(out, s)
	return out
}

// Encode serializes the label to a bit string. The encoding is
// self-delimiting and uses Elias gamma/delta codes so that the measured
// label length in bits reflects the paper's accounting (ids and distances
// cost O(log n) bits each).
func (l *Label) Encode() ([]byte, int) {
	var w bitio.Writer
	w.WriteUvarint(uint64(l.V))
	// ε is stored as a rational with 2^16 denominator — enough for any
	// precision the scheme distinguishes (only c matters operationally).
	w.WriteUvarint(uint64(l.Epsilon * 65536))
	w.WriteUvarint(uint64(l.C))
	w.WriteUvarint(uint64(l.MaxLevel))
	w.WriteUvarint(uint64(l.RShrink))
	for _, lv := range l.Levels {
		w.WriteDelta(uint64(len(lv.Points)))
		prev := int64(-1)
		for _, pe := range lv.Points {
			w.WriteDelta(uint64(int64(pe.X) - prev - 1)) // gap code
			prev = int64(pe.X)
			w.WriteGamma(uint64(pe.D))
		}
		w.WriteDelta(uint64(len(lv.Edges)))
		var prevXI, prevYI int64
		for _, e := range lv.Edges {
			// Edges are sorted by (XI, YI); gap-code XI and, within a run
			// of equal XI, gap-code YI.
			dx := int64(e.XI) - prevXI
			w.WriteGamma(uint64(dx))
			if dx != 0 {
				prevYI = 0
			}
			w.WriteGamma(uint64(int64(e.YI) - prevYI))
			prevXI, prevYI = int64(e.XI), int64(e.YI)
			w.WriteGamma(uint64(e.D))
		}
	}
	return w.Bytes(), w.Len()
}

// DecodeLabel parses a label serialized by Encode. nbits is the exact bit
// length returned by Encode.
func DecodeLabel(buf []byte, nbits int) (*Label, error) {
	r := bitio.NewReader(buf, nbits)
	l := &Label{}
	v, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode label vertex: %w", err)
	}
	l.V = int32(v)
	epsQ, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode label epsilon: %w", err)
	}
	l.Epsilon = float64(epsQ) / 65536
	c, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode label c: %w", err)
	}
	l.C = int(c)
	maxLevel, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode label max level: %w", err)
	}
	l.MaxLevel = int(maxLevel)
	rShrink, err := r.ReadUvarint()
	if err != nil {
		return nil, fmt.Errorf("core: decode label r-shrink: %w", err)
	}
	if rShrink > 32 {
		return nil, fmt.Errorf("core: decode label: implausible r-shrink %d", rShrink)
	}
	l.RShrink = int(rShrink)
	numLevels := l.MaxLevel - l.C
	if numLevels < 0 || numLevels > 64 {
		return nil, fmt.Errorf("core: decode label: implausible level count %d", numLevels)
	}
	l.Levels = make([]LevelLabel, numLevels)
	for k := range l.Levels {
		np, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("core: decode level %d points: %w", k, err)
		}
		// Each point costs at least 2 bits (a delta gap and a gamma
		// distance), so a count beyond the remaining bits is corrupt —
		// reject it before allocating.
		if np > uint64(r.Remaining()) {
			return nil, fmt.Errorf("core: decode level %d: point count %d exceeds payload", k, np)
		}
		pts := make([]PointEntry, np)
		prev := int64(-1)
		for i := range pts {
			gap, err := r.ReadDelta()
			if err != nil {
				return nil, fmt.Errorf("core: decode point gap: %w", err)
			}
			prev += int64(gap) + 1
			d, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("core: decode point dist: %w", err)
			}
			pts[i] = PointEntry{X: int32(prev), D: int32(d)}
		}
		ne, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("core: decode level %d edges: %w", k, err)
		}
		// Each edge costs at least 3 bits (two gamma indices and a gamma
		// distance).
		if ne > uint64(r.Remaining()) {
			return nil, fmt.Errorf("core: decode level %d: edge count %d exceeds payload", k, ne)
		}
		edges := make([]EdgeEntry, ne)
		var prevXI, prevYI int64
		for i := range edges {
			dx, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("core: decode edge xi: %w", err)
			}
			xi := prevXI + int64(dx)
			if dx != 0 {
				prevYI = 0
			}
			dy, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("core: decode edge yi: %w", err)
			}
			yi := prevYI + int64(dy)
			d, err := r.ReadGamma()
			if err != nil {
				return nil, fmt.Errorf("core: decode edge dist: %w", err)
			}
			if xi >= int64(len(pts)) || yi >= int64(len(pts)) {
				return nil, fmt.Errorf("core: decode edge index out of range")
			}
			edges[i] = EdgeEntry{XI: int32(xi), YI: int32(yi), D: int32(d)}
			prevXI, prevYI = xi, yi
		}
		l.Levels[k] = LevelLabel{Points: pts, Edges: edges}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("core: %d trailing bits after label", r.Remaining())
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
