package core

import (
	"bytes"
	"runtime"
	"sync"
	"testing"
	"time"

	"fsdl/internal/graph"
)

// These tests pin the parallel preprocessing pipeline's contract: the
// worker count is a throughput knob only. A scheme built with any number
// of workers must be byte-identical — same persisted stream, same encoded
// labels — to the serial build, and the build itself must be race-free.

// schemeBytes persists s and returns the stream, the canonical
// whole-scheme fingerprint (SaveScheme serializes params, hierarchy, and
// every level's net graph).
func schemeBytes(t *testing.T, s *Scheme) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveScheme(&buf, s); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBuildDeterminism proves the worker count never leaks into
// the output: for several graphs, schemes built with 1, 2, 3, 4, and 8
// workers persist to identical bytes and encode identical labels.
func TestParallelBuildDeterminism(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"grid-9x8":  gridGraph(t, 9, 8),
		"path-70":   pathGraph(t, 70),
		"grid-16x5": gridGraph(t, 16, 5),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ref, err := BuildSchemeWorkers(g, 2, 1)
			if err != nil {
				t.Fatal(err)
			}
			want := schemeBytes(t, ref)
			n := g.NumVertices()
			wantLabels := make([][]byte, n)
			for v := 0; v < n; v++ {
				buf, nbits := ref.Label(v).Encode()
				wantLabels[v] = buf[:(nbits+7)/8]
			}
			for _, workers := range []int{2, 3, 4, 8, 0} {
				s, err := BuildSchemeWorkers(g, 2, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if got := schemeBytes(t, s); !bytes.Equal(got, want) {
					t.Fatalf("workers=%d: persisted scheme differs from serial build (%d vs %d bytes)",
						workers, len(got), len(want))
				}
				for v := 0; v < n; v++ {
					buf, nbits := s.Label(v).Encode()
					if !bytes.Equal(buf[:(nbits+7)/8], wantLabels[v]) {
						t.Fatalf("workers=%d: label %d not bit-identical", workers, v)
					}
				}
			}
		})
	}
}

// TestParallelBuildRaceStress builds schemes concurrently with the full
// worker pool while extracting labels and answering queries on each —
// under -race this exercises every shared structure of the pipeline
// (greedy level workers, the global BFS task queue, CSR assembly, and
// the pooled extraction scratch).
func TestParallelBuildRaceStress(t *testing.T) {
	g := gridGraph(t, 12, 12)
	n := g.NumVertices()
	ref, err := BuildSchemeWorkers(g, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.FaultVertices(40, 75)
	wantD, wantOK := ref.Distance(0, n-1, f)

	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(workers int) {
			defer wg.Done()
			s, err := BuildSchemeWorkers(g, 2, workers)
			if err != nil {
				t.Error(err)
				return
			}
			for v := 0; v < n; v += 7 {
				if s.Label(v) == nil {
					t.Errorf("workers=%d: nil label for %d", workers, v)
					return
				}
			}
			if d, ok := s.Distance(0, n-1, f); ok != wantOK || d != wantD {
				t.Errorf("workers=%d: query (%d,%v), want (%d,%v)", workers, d, ok, wantD, wantOK)
			}
		}(1 + w%4)
	}
	wg.Wait()
}

// TestParallelBuildSpeedup demonstrates the point of the pipeline: on a
// machine with ≥ 4 CPUs, building a 64×64 grid with 4 workers must be
// meaningfully faster than with 1. Skipped on smaller machines (CI smoke
// runners are often 1–2 vCPUs) where no parallel speedup is physically
// available; determinism is covered independently above.
func TestParallelBuildSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	if raceEnabled {
		t.Skip("timings are meaningless under -race")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("GOMAXPROCS=%d < 4: no parallel speedup available", runtime.GOMAXPROCS(0))
	}
	g := gridGraph(t, 64, 64)
	best := func(workers int) time.Duration {
		b := time.Duration(1<<63 - 1)
		for trial := 0; trial < 3; trial++ {
			start := time.Now()
			if _, err := BuildSchemeWorkers(g, 2, workers); err != nil {
				t.Fatal(err)
			}
			if el := time.Since(start); el < b {
				b = el
			}
		}
		return b
	}
	serial := best(1)
	par := best(4)
	ratio := float64(serial) / float64(par)
	t.Logf("serial %v, 4 workers %v: %.2fx", serial, par, ratio)
	if ratio < 1.5 {
		t.Errorf("4-worker build only %.2fx faster than serial (want >= 1.5x)", ratio)
	}
}

// TestClampWorkers pins the worker-count normalization used by both the
// store builder and the nets pool.
func TestClampWorkers(t *testing.T) {
	for _, tc := range []struct{ workers, tasks, want int }{
		{0, 10, runtime.GOMAXPROCS(0)},
		{-3, 10, runtime.GOMAXPROCS(0)},
		{4, 2, 2},
		{4, 10, 4},
		{1, 0, 1},
	} {
		if tc.want > tc.tasks && tc.tasks > 0 {
			tc.want = tc.tasks
		}
		if got := clampWorkers(tc.workers, tc.tasks); got != tc.want {
			t.Errorf("clampWorkers(%d, %d) = %d, want %d", tc.workers, tc.tasks, got, tc.want)
		}
	}
}

// TestBuildSchemeWorkersMatchesBuildScheme pins the facade: BuildScheme
// is BuildSchemeWorkers with the default pool.
func TestBuildSchemeWorkersMatchesBuildScheme(t *testing.T) {
	g := gridGraph(t, 6, 6)
	a, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildSchemeWorkers(g, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(schemeBytes(t, a), schemeBytes(t, b)) {
		t.Fatal("BuildScheme and BuildSchemeWorkers(…, 3) disagree")
	}
}
