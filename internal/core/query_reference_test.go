package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"fsdl/internal/graph"
)

// referenceDecode is the pre-pooling decode, preserved verbatim (maps,
// per-call allocations, container/heap Dijkstra via graph.Weighted). It
// is the ground truth the scratch-based decode must match bit for bit:
// same distances, same deterministic edge list, same traced paths.
func referenceDecode(q *Query, tr *Trace) (int64, []SketchEdge, int, bool, error) {
	if err := q.Validate(); err != nil {
		return 0, nil, 0, false, err
	}
	if q.S.V == q.T.V {
		return 0, nil, 1, false, nil
	}
	lowest := q.S.C + 1
	numLevels := len(q.S.Levels)

	owners := make([]*Label, 0, 2+len(q.VertexFaults)+2*len(q.EdgeFaults))
	seenOwner := map[int32]bool{}
	addOwner := func(l *Label) {
		if !seenOwner[l.V] {
			seenOwner[l.V] = true
			owners = append(owners, l)
		}
	}
	addOwner(q.S)
	addOwner(q.T)
	var centers []*Label
	seenCenter := map[int32]bool{}
	forbiddenV := map[int32]bool{}
	for _, f := range q.VertexFaults {
		addOwner(f)
		forbiddenV[f.V] = true
		if !seenCenter[f.V] {
			seenCenter[f.V] = true
			centers = append(centers, f)
		}
	}
	forbiddenE := map[uint64]bool{}
	for _, ef := range q.EdgeFaults {
		forbiddenE[unorderedKey(ef[0].V, ef[1].V)] = true
		for _, l := range ef {
			addOwner(l)
			if !seenCenter[l.V] {
				seenCenter[l.V] = true
				centers = append(centers, l)
			}
		}
	}
	degraded := len(q.DegradedVertexFaults) > 0 || len(q.DegradedEdgeFaults) > 0
	for _, v := range q.DegradedVertexFaults {
		forbiddenV[v] = true
	}
	for _, ef := range q.DegradedEdgeFaults {
		forbiddenE[unorderedKey(ef[0], ef[1])] = true
	}

	examined, exhausted := 0, false
	allow := func() bool {
		if q.Budget > 0 && examined >= q.Budget {
			exhausted = true
			return false
		}
		examined++
		return true
	}

	if tr != nil {
		tr.AdmittedPerLevel = make([]int, numLevels)
		tr.RejectedPerLevel = make([]int, numLevels)
	}

	type edgeInfo struct {
		w     int64
		level int
	}
	best := map[uint64]edgeInfo{}
	admit := func(x, y int32, w int64, level int) {
		if x == y {
			return
		}
		k := unorderedKey(x, y)
		if cur, ok := best[k]; !ok || w < cur.w {
			best[k] = edgeInfo{w: w, level: level}
		}
		if tr != nil {
			tr.AdmittedPerLevel[level-lowest]++
		}
	}
	reject := func(level int) {
		if tr != nil {
			tr.RejectedPerLevel[level-lowest]++
		}
	}
	pbIndex := make([][]map[int32]bool, len(centers))
	for fi, f := range centers {
		pbIndex[fi] = make([]map[int32]bool, numLevels)
		for k := 0; k < numLevels; k++ {
			level := lowest + k
			lambda := lambdaOf(level)
			idx := make(map[int32]bool)
			idx[f.V] = true
			if k < len(f.Levels) {
				for _, pe := range f.Levels[k].Points {
					if pe.D <= lambda {
						idx[pe.X] = true
					}
				}
			}
			pbIndex[fi][k] = idx
		}
	}
	safe := func(level int, x, y int32) bool {
		if degraded {
			return false
		}
		if q.UnsafeIgnoreProtectedBalls {
			return true
		}
		k := level - lowest
		for fi := range centers {
			idx := pbIndex[fi][k]
			if idx[x] && idx[y] {
				return false
			}
		}
		return true
	}
	ownerMayBeInPB := make([][][]bool, len(owners))
	for oi, o := range owners {
		ownerMayBeInPB[oi] = make([][]bool, len(centers))
		for fi, f := range centers {
			row := make([]bool, numLevels)
			for k := 0; k < numLevels; k++ {
				row[k] = mayBeInPB(o, f, lowest+k)
			}
			ownerMayBeInPB[oi][fi] = row
		}
	}
	ownerSafe := func(oi, level int, x int32) bool {
		if q.UnsafeIgnoreProtectedBalls {
			return true
		}
		k := level - lowest
		for fi := range centers {
			if pbIndex[fi][k][x] && ownerMayBeInPB[oi][fi][k] {
				return false
			}
		}
		return true
	}

	for oi, o := range owners {
		for k := 0; k < numLevels; k++ {
			level := lowest + k
			lv := &o.Levels[k]
			lambda := lambdaOf(level)
			if level == lowest {
				for _, e := range lv.Edges {
					if !allow() {
						break
					}
					x, y := lv.Points[e.XI].X, lv.Points[e.YI].X
					if forbiddenV[x] || forbiddenV[y] || forbiddenE[unorderedKey(x, y)] {
						reject(level)
						continue
					}
					admit(x, y, int64(e.D), level)
				}
			} else {
				for _, e := range lv.Edges {
					if !allow() {
						break
					}
					x, y := lv.Points[e.XI].X, lv.Points[e.YI].X
					if forbiddenV[x] || forbiddenV[y] || !safe(level, x, y) {
						reject(level)
						continue
					}
					admit(x, y, int64(e.D), level)
				}
			}
			if forbiddenV[o.V] {
				continue
			}
			for _, pe := range lv.Points {
				if pe.D > lambda || pe.X == o.V {
					continue
				}
				if !allow() {
					break
				}
				if forbiddenV[pe.X] {
					reject(level)
					continue
				}
				if degraded {
					if pe.D != 1 || forbiddenE[unorderedKey(o.V, pe.X)] {
						reject(level)
						continue
					}
				} else if !ownerSafe(oi, level, pe.X) {
					reject(level)
					continue
				}
				admit(o.V, pe.X, int64(pe.D), level)
			}
		}
	}

	idOf := map[int32]int32{}
	ids := []int32{}
	ensure := func(v int32) int32 {
		if id, ok := idOf[v]; ok {
			return id
		}
		id := int32(len(ids))
		idOf[v] = id
		ids = append(ids, v)
		return id
	}
	ensure(q.S.V)
	ensure(q.T.V)
	keys := make([]uint64, 0, len(best))
	for k := range best {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	edges := make([]SketchEdge, 0, len(keys))
	for _, k := range keys {
		info := best[k]
		x, y := int32(k>>32), int32(k&0xffffffff)
		edges = append(edges, SketchEdge{X: x, Y: y, W: info.w, Level: info.level})
		ensure(x)
		ensure(y)
	}
	h := graph.NewWeighted(len(ids))
	for _, e := range edges {
		h.AddEdge(int(idOf[e.X]), int(idOf[e.Y]), e.W)
	}
	dist, path := h.ShortestPath(int(idOf[q.S.V]), int(idOf[q.T.V]))
	if tr != nil {
		tr.NumHVertices = len(ids)
		tr.NumHEdges = len(edges)
		tr.Path = nil
		tr.PathWeights = nil
		if dist != graph.WeightedInfinity {
			var prev int32 = -1
			for _, hv := range path {
				gv := ids[hv]
				tr.Path = append(tr.Path, gv)
				if prev >= 0 {
					tr.PathWeights = append(tr.PathWeights, best[unorderedKey(prev, gv)].w)
				}
				prev = gv
			}
		}
	}
	if dist == graph.WeightedInfinity {
		return -1, edges, len(ids), exhausted, nil
	}
	return dist, edges, len(ids), exhausted, nil
}

// referenceCase is one corpus entry: a query built on a scheme with some
// fault shape.
type referenceCase struct {
	name string
	q    *Query
}

// referenceCorpus assembles queries covering every decode code path:
// fault-free, vertex faults, edge faults, mixed, degraded tiers, tight
// budgets, and the ablation flag.
func referenceCorpus(t *testing.T, s *Scheme, g *graph.Graph, rng *rand.Rand) []referenceCase {
	t.Helper()
	n := g.NumVertices()
	mustQuery := func(src, dst int, f *graph.FaultSet) *Query {
		q, err := s.NewQuery(src, dst, f)
		if err != nil {
			t.Fatalf("NewQuery(%d,%d): %v", src, dst, err)
		}
		return q
	}
	pick := func(avoid ...int) int {
		for {
			v := rng.Intn(n)
			ok := true
			for _, a := range avoid {
				if v == a {
					ok = false
				}
			}
			if ok {
				return v
			}
		}
	}
	var cases []referenceCase
	for i := 0; i < 6; i++ {
		src, dst := pick(), 0
		dst = pick(src)
		cases = append(cases, referenceCase{"nofaults", mustQuery(src, dst, nil)})

		fv := graph.NewFaultSet()
		fv.AddVertex(pick(src, dst))
		fv.AddVertex(pick(src, dst))
		cases = append(cases, referenceCase{"vfaults", mustQuery(src, dst, fv)})

		fe := graph.NewFaultSet()
		u := pick(src, dst)
		nbrs := g.Neighbors(u)
		if len(nbrs) > 0 {
			fe.AddEdge(u, int(nbrs[rng.Intn(len(nbrs))]))
			cases = append(cases, referenceCase{"efaults", mustQuery(src, dst, fe)})
		}

		mixed := graph.NewFaultSet()
		mixed.AddVertex(pick(src, dst))
		w := pick(src, dst)
		if nb := g.Neighbors(w); len(nb) > 0 {
			mixed.AddEdge(w, int(nb[0]))
		}
		qm := mustQuery(src, dst, mixed)
		qm.Budget = 1 + rng.Intn(200)
		cases = append(cases, referenceCase{"mixed+budget", qm})

		qd := mustQuery(src, dst, nil)
		qd.DegradedVertexFaults = []int32{int32(pick(src, dst))}
		qd.DegradedEdgeFaults = [][2]int32{{int32(src), int32(pick(src))}}
		cases = append(cases, referenceCase{"degraded", qd})

		qa := mustQuery(src, dst, fv)
		qa.UnsafeIgnoreProtectedBalls = true
		cases = append(cases, referenceCase{"ablated", qa})
	}
	// Same-vertex and forbidden-owner shapes.
	v := pick()
	cases = append(cases, referenceCase{"same", mustQuery(v, v, nil)})
	return cases
}

// TestDecodeMatchesReference verifies the scratch-based decode is
// bit-identical to the pre-pooling implementation across the corpus:
// same distance, same deterministic sketch edges, same trace (counts,
// path, path weights).
func TestDecodeMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	graphs := map[string]*graph.Graph{
		"grid6x5": gridGraph(t, 6, 5),
		"path24":  pathGraph(t, 24),
		"rand40":  randomConnected(t, 40, 20, rng),
	}
	for gname, g := range graphs {
		s, err := BuildScheme(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		for _, tc := range referenceCorpus(t, s, g, rng) {
			wantTr := &Trace{}
			wantDist, wantEdges, _, wantExh, wantErr := referenceDecode(tc.q, wantTr)

			gotTr := &Trace{}
			sc := getScratch()
			gotDist, gotExh, gotErr := sc.decode(tc.q, gotTr)
			gotEdges := append([]SketchEdge{}, sc.edges...)
			putScratch(sc)

			if (wantErr == nil) != (gotErr == nil) {
				t.Fatalf("%s/%s: err mismatch: ref %v, got %v", gname, tc.name, wantErr, gotErr)
			}
			if wantErr != nil {
				continue
			}
			if gotDist != wantDist || gotExh != wantExh {
				t.Errorf("%s/%s: dist/exhausted = (%d,%v), reference (%d,%v)",
					gname, tc.name, gotDist, gotExh, wantDist, wantExh)
			}
			if tc.q.S.V != tc.q.T.V && !reflect.DeepEqual(gotEdges, wantEdges) {
				t.Errorf("%s/%s: sketch edges diverge: %d edges vs reference %d",
					gname, tc.name, len(gotEdges), len(wantEdges))
			}
			if !reflect.DeepEqual(gotTr, wantTr) {
				t.Errorf("%s/%s: trace diverges:\n got %+v\nwant %+v", gname, tc.name, gotTr, wantTr)
			}

			// The public wrappers must agree with the raw decode.
			d, ok := tc.q.Distance()
			if wantDist < 0 && ok {
				t.Errorf("%s/%s: Distance ok=true for unreachable", gname, tc.name)
			}
			if wantDist >= 0 && (!ok || d != wantDist) {
				t.Errorf("%s/%s: Distance = (%d,%v), want (%d,true)", gname, tc.name, d, ok, wantDist)
			}
		}
	}
}

// TestSketchMatchesReference pins Sketch()'s nil-vs-copy semantics
// against the reference edge list.
func TestSketchMatchesReference(t *testing.T) {
	g := gridGraph(t, 5, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.NewFaultSet()
	f.AddVertex(12)
	q, err := s.NewQuery(0, 24, f)
	if err != nil {
		t.Fatal(err)
	}
	_, wantEdges, _, _, _ := referenceDecode(q, nil)
	got, err := q.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantEdges) {
		t.Errorf("Sketch diverges from reference: %d vs %d edges", len(got), len(wantEdges))
	}
	// Same endpoint: nil edges, no error (documented semantics).
	qs, err := s.NewQuery(3, 3, nil)
	if err != nil {
		t.Fatal(err)
	}
	if edges, err := qs.Sketch(); err != nil || edges != nil {
		t.Errorf("Sketch(s==t) = (%v,%v), want (nil,nil)", edges, err)
	}
}
