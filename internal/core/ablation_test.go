package core

import (
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

// Ablation 1: shrinking the label ball radii r_i below the paper's values
// must shrink labels, must preserve safety (estimates never drop below the
// true surviving distance), and is expected to break completeness — some
// connected queries come back disconnected or over the stretch bound.
func TestAblationRShrinkPreservesSafety(t *testing.T) {
	g := gridGraph(t, 12, 12)
	n := g.NumVertices()
	rng := rand.New(rand.NewSource(17))
	for _, shrink := range []int{1, 2} {
		s, err := BuildSchemeAblated(g, 2, shrink)
		if err != nil {
			t.Fatalf("shrink %d: %v", shrink, err)
		}
		for trial := 0; trial < 40; trial++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			f := graph.NewFaultSet()
			for f.Size() < 3 {
				v := rng.Intn(n)
				if v != src && v != dst {
					f.AddVertex(v)
				}
			}
			truth := g.DistAvoiding(src, dst, f)
			est, ok := s.Distance(src, dst, f)
			if !graph.Reachable(truth) {
				if ok {
					t.Fatalf("shrink %d: claimed distance across a disconnection", shrink)
				}
				continue
			}
			// Completeness may fail (ok=false or large estimate), but
			// safety must not.
			if ok && est < int64(truth) {
				t.Fatalf("shrink %d: estimate %d below true %d — safety broken", shrink, est, truth)
			}
		}
	}
}

func TestAblationRShrinkShrinksLabels(t *testing.T) {
	// Savings show on graphs whose diameter exceeds the level radii
	// (long paths); small grids saturate (every ball is the whole graph)
	// and shrink little — that saturation is itself the E1/E2 finding.
	b := graph.NewBuilder(512)
	for i := 0; i+1 < 512; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	full, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	shrunk, err := BuildSchemeAblated(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	v := g.NumVertices() / 2
	fb, sb := full.LabelBits(v), shrunk.LabelBits(v)
	if float64(sb) > 0.7*float64(fb) {
		t.Errorf("shrunk label %d bits vs full %d bits — expected substantial savings on a path", sb, fb)
	}
}

func TestAblationRShrinkBreaksCompleteness(t *testing.T) {
	// With shrunk balls the guarantee "connected in G\F ⇒ path in H"
	// (Lemma 2.4) must fail somewhere — otherwise the paper's radii would
	// be pure waste. Cycles exhibit it: the detour around a fault crosses
	// regions that no owner ball covers at the needed level.
	b := graph.NewBuilder(512)
	for i := 0; i < 512; i++ {
		b.AddEdge(i, (i+1)%512)
	}
	g := b.MustBuild()
	s, err := BuildSchemeAblated(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	n := g.NumVertices()
	broken, trials := 0, 0
	for trial := 0; trial < 200; trial++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		f := graph.NewFaultSet()
		for f.Size() < 4 {
			v := rng.Intn(n)
			if v != src && v != dst {
				f.AddVertex(v)
			}
		}
		truth := g.DistAvoiding(src, dst, f)
		if !graph.Reachable(truth) {
			continue
		}
		trials++
		est, ok := s.Distance(src, dst, f)
		if !ok || float64(est) > 3*float64(truth)+1e-9 {
			broken++
		}
	}
	if trials < 20 {
		t.Fatalf("only %d usable trials", trials)
	}
	if broken == 0 {
		t.Errorf("rShrink=2 never violated the guarantee in %d trials on C_512 — ablation has no bite", trials)
	}
}

// Ablation 2: disabling the protected-ball filter must break safety —
// estimates drop below the surviving distance because virtual edges whose
// shortest paths run through faults get admitted.
func TestAblationNoProtectedBallsBreaksSafety(t *testing.T) {
	g := pathGraph(t, 40)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Cut the path in the middle: truth = disconnected; without protected
	// balls the decoder happily bridges the cut with a virtual edge.
	q, err := s.NewQuery(0, 39, graph.FaultVertices(20))
	if err != nil {
		t.Fatal(err)
	}
	q.UnsafeIgnoreProtectedBalls = true
	if _, ok := q.Distance(); !ok {
		t.Error("without protected balls the decoder should (wrongly) claim connectivity across the cut")
	}
	// Sanity: the honest decoder refuses.
	q2, _ := s.NewQuery(0, 39, graph.FaultVertices(20))
	if _, ok := q2.Distance(); ok {
		t.Error("honest decoder must report disconnection")
	}
}

func TestAblationNoProtectedBallsUnderestimatesDetours(t *testing.T) {
	w, h := 11, 11
	g := gridGraph(t, w, h)
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	for y := 1; y < h; y++ {
		f.AddVertex(y*w + 5)
	}
	src, dst := 5*w+0, 5*w+10
	truth := g.DistAvoiding(src, dst, f)
	q, err := s.NewQuery(src, dst, f)
	if err != nil {
		t.Fatal(err)
	}
	q.UnsafeIgnoreProtectedBalls = true
	est, ok := q.Distance()
	if !ok {
		t.Fatal("ablated decoder should still answer")
	}
	if est >= int64(truth) {
		t.Errorf("ablated estimate %d did not under-report true detour %d — expected a safety breach", est, truth)
	}
}

func TestAblatedLabelRoundTripKeepsRShrink(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, err := BuildSchemeAblated(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	l := s.Label(10)
	if l.RShrink != 2 {
		t.Fatalf("label RShrink = %d, want 2", l.RShrink)
	}
	buf, nbits := l.Encode()
	got, err := DecodeLabel(buf, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if got.RShrink != 2 {
		t.Errorf("decoded RShrink = %d, want 2", got.RShrink)
	}
	// Mixing ablated and normal labels must be rejected.
	full, _ := BuildScheme(g, 2)
	q := &Query{S: l, T: full.Label(20)}
	if err := q.Validate(); err == nil {
		t.Error("mixed RShrink labels must fail validation")
	}
}

func TestBuildSchemeAblatedRejectsNegative(t *testing.T) {
	g := pathGraph(t, 8)
	if _, err := BuildSchemeAblated(g, 2, -1); err == nil {
		t.Error("negative rShrink must be rejected")
	}
}
