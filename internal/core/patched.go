package core

// This file is the query-time half of the live-update pipeline's
// insertion tier. An edge inserted into the graph after the labels
// were built cannot be expressed as a forbidden-set member (faults
// only remove), so until a compaction bakes it into a new label
// generation, the decoder routes through it explicitly: a unit-weight
// shortcut whose detour costs d(s,u) + 1 + d(v,t), each leg answered
// from the served labels under the same fault set.
//
// Soundness: each leg's robust answer is the length of a real path in
// G\F (an upper bound on the leg's surviving distance), the inserted
// edge exists in the mutated graph, and the query's fault set is
// checked against the patch endpoints — so the spliced walk exists in
// the mutated graph minus F, and the patched answer remains an upper
// bound on d_{G'\F}(s,t). The (1+ε) stretch bound is NOT preserved
// across patches (a true shortest path may thread several inserted
// edges); the serving layer reports exact:false while any delta is
// pending, which is precisely when patches are in play.

// PatchEdge is one not-yet-compacted inserted edge (U.V, V.V),
// described — like everything else at decode time — by the labels of
// its endpoints. A nil or unusable endpoint label silently disables
// the patch: answers stay sound, only the shortcut is missed.
type PatchEdge struct {
	U, V *Label
}

// DistanceRobustPatched is DistanceRobust, additionally considering
// the given patch edges as unit-weight shortcuts. Patches whose
// endpoints or edge are themselves forbidden by q's fault set are
// ignored, as are patches with unusable labels. The result carries
// the flags of whichever route won.
func (d *Decoder) DistanceRobustPatched(q *Query, patches []PatchEdge) Result {
	res, _ := d.distanceRobustPatched(q, patches, nil, false)
	return res
}

// DistanceRobustPatchedPath is DistanceRobustPatched, additionally
// reporting the witness walk (appended to buf) when the query connects.
// When a patch route wins, the walk is the spliced chain s..u, v..t —
// the inserted edge (u,v) is the implicit hop between the two legs, so
// the chain's weights (legs at their reported lengths, patch hops at 1)
// sum exactly to Result.Dist.
func (d *Decoder) DistanceRobustPatchedPath(q *Query, patches []PatchEdge, buf []int32) (Result, []int32) {
	return d.distanceRobustPatched(q, patches, buf, true)
}

func (d *Decoder) distanceRobustPatched(q *Query, patches []PatchEdge, buf []int32, wantPath bool) (Result, []int32) {
	best := d.DistanceRobust(q)
	// winFirst/winSecond identify the winning route for path reporting:
	// nil means the unpatched decode won, otherwise the route is
	// s..winFirst, patch edge, winSecond..t. Decoding is deterministic,
	// so the winner's legs can be re-decoded for their paths after the
	// tournament without disturbing the accumulated result flags.
	var winFirst, winSecond *Label
	if len(patches) == 0 {
		if wantPath && best.OK {
			_, buf = d.DistanceRobustPath(q, buf)
		}
		return best, buf
	}
	forbiddenV := func(v int32) bool {
		for _, l := range q.VertexFaults {
			if l != nil && l.V == v {
				return true
			}
		}
		for _, fv := range q.DegradedVertexFaults {
			if fv == v {
				return true
			}
		}
		return false
	}
	forbiddenE := func(u, v int32) bool {
		for _, e := range q.EdgeFaults {
			if e[0] == nil || e[1] == nil {
				continue
			}
			if (e[0].V == u && e[1].V == v) || (e[0].V == v && e[1].V == u) {
				return true
			}
		}
		for _, e := range q.DegradedEdgeFaults {
			if (e[0] == u && e[1] == v) || (e[0] == v && e[1] == u) {
				return true
			}
		}
		return false
	}
	// leg answers d(a,b) under q's fault set, caching nothing: patch
	// counts are capped by the serving layer, and sub-queries reuse
	// this decoder's scratch.
	leg := func(a, b *Label) Result {
		if a.V == b.V {
			return Result{OK: true}
		}
		sub := *q
		sub.S, sub.T = a, b
		return d.DistanceRobust(&sub)
	}
	usable := func(l *Label) bool { return l != nil && l.Validate() == nil }
	for _, p := range patches {
		if !usable(p.U) || !usable(p.V) {
			continue
		}
		u, v := p.U.V, p.V.V
		if forbiddenV(u) || forbiddenV(v) || forbiddenE(u, v) {
			continue
		}
		sU, sV := leg(q.S, p.U), leg(q.S, p.V)
		uT, vT := leg(p.U, q.T), leg(p.V, q.T)
		consider := func(a, b *Label, first, second Result) {
			if !first.OK || !second.OK {
				return
			}
			via := first.Dist + 1 + second.Dist
			if best.OK && via >= best.Dist {
				return
			}
			best.Dist = via
			best.OK = true
			best.Degraded = best.Degraded || first.Degraded || second.Degraded
			best.BudgetExhausted = best.BudgetExhausted || first.BudgetExhausted || second.BudgetExhausted
			winFirst, winSecond = a, b
		}
		consider(p.U, p.V, sU, vT) // s → u, edge, v → t
		consider(p.V, p.U, sV, uT) // s → v, edge, u → t
	}
	if !wantPath || !best.OK {
		return best, buf
	}
	if winFirst == nil {
		_, buf = d.DistanceRobustPath(q, buf)
		return best, buf
	}
	buf = d.legPath(q, q.S, winFirst, buf)
	buf = d.legPath(q, winSecond, q.T, buf)
	return best, buf
}

// legPath re-decodes the leg a..b of the winning patch route under q's
// fault set and appends its witness walk to buf.
func (d *Decoder) legPath(q *Query, a, b *Label, buf []int32) []int32 {
	if a.V == b.V {
		return append(buf, a.V)
	}
	sub := *q
	sub.S, sub.T = a, b
	_, buf = d.DistanceRobustPath(&sub, buf)
	return buf
}
