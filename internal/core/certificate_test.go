package core

import (
	"testing"

	"fsdl/internal/graph"
)

// These tests pin down mayBeInPB — the decoder's conservative certificate
// for "the owner vertex is outside the protected ball PB_ℓ(f)" — since the
// entire safety argument for owner edges rests on it.

func TestMayBeInPBExactForNetPointOwner(t *testing.T) {
	g := pathGraph(t, 64)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	h := s.Hierarchy()
	// Find a vertex that is a net point at some level > lowest.
	level := p.LowestLevel() + 1
	netLvl := clampNetLevel(h, p.NetLevel(level))
	owner := -1
	for v := 0; v < 64; v++ {
		if h.InNet(v, netLvl) {
			owner = v
			break
		}
	}
	if owner < 0 {
		t.Skip("no net point at the level")
	}
	lambda := p.Lambda(level)
	lo := s.Label(owner)
	for _, f := range []int{0, 16, 32, 63} {
		if f == owner {
			continue
		}
		lf := s.Label(f)
		got := mayBeInPB(lo, lf, level)
		want := g.Dist(owner, f) <= lambda
		if got != want {
			t.Errorf("net-point owner %d vs fault %d at level %d: mayBeInPB=%v, exact=%v",
				owner, f, level, got, want)
		}
	}
}

func TestMayBeInPBSoundness(t *testing.T) {
	// Soundness: whenever the certificate says "certainly outside"
	// (false), the owner really is outside the protected ball.
	g := gridGraph(t, 10, 10)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	for _, fv := range []int{0, 44, 99} {
		lf := s.Label(fv)
		distF := g.BFS(fv)
		for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
			lambda := p.Lambda(level)
			for owner := 0; owner < 100; owner += 7 {
				if owner == fv {
					continue
				}
				lo := s.Label(owner)
				if !mayBeInPB(lo, lf, level) && distF[owner] <= lambda {
					t.Fatalf("UNSOUND: owner %d certified outside PB_%d(%d) but d=%d <= lambda=%d",
						owner, level, fv, distF[owner], lambda)
				}
			}
		}
	}
}

func TestMayBeInPBCompleteness(t *testing.T) {
	// Completeness where the analysis needs it: d(owner, f) > μ_ℓ must be
	// certified outside (otherwise the stretch proof's owner edges get
	// rejected).
	g := gridGraph(t, 12, 12)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	for _, fv := range []int{0, 77} {
		lf := s.Label(fv)
		distF := g.BFS(fv)
		for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
			mu := p.Mu(level)
			for owner := 0; owner < 144; owner += 5 {
				if owner == fv || distF[owner] <= mu {
					continue
				}
				lo := s.Label(owner)
				if mayBeInPB(lo, lf, level) {
					t.Fatalf("INCOMPLETE: owner %d at d=%d > mu_%d=%d from fault %d not certified outside",
						owner, distF[owner], level, mu, fv)
				}
			}
		}
	}
}

func TestMayBeInPBFaultIsOwner(t *testing.T) {
	// A fault is always inside its own protected ball.
	g := pathGraph(t, 32)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	lf := s.Label(10)
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		if !mayBeInPB(lf, lf, level) {
			t.Errorf("fault not inside its own PB at level %d", level)
		}
	}
}

func TestMayBeInPBOtherComponent(t *testing.T) {
	// Owner and fault in different components: the certificate must say
	// outside (the fault's nearest net point is unreachable from the
	// owner, i.e. absent from its ball).
	b := graph.NewBuilder(16)
	for i := 0; i+1 < 8; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(8+i, 8+i+1)
	}
	g := b.MustBuild()
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	lo := s.Label(0)
	lf := s.Label(12)
	outsideSomewhere := false
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		if !mayBeInPB(lo, lf, level) {
			outsideSomewhere = true
		}
	}
	if !outsideSomewhere {
		t.Error("cross-component owner never certified outside — edges near it would all be rejected")
	}
}
