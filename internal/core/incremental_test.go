package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"slices"
	"testing"

	"fsdl/internal/graph"
)

// edgeSetOf collects a graph's undirected edges as normalized pairs.
func edgeSetOf(g *graph.Graph) map[[2]int32]bool {
	set := make(map[[2]int32]bool, g.NumEdges())
	g.ForEachEdge(func(u, v int) {
		set[[2]int32{int32(u), int32(v)}] = true
	})
	return set
}

// mutate toggles the given edges (present → delete, absent → insert) and
// returns the resulting graph plus the normalized mutation list.
func mutate(t *testing.T, g *graph.Graph, toggles [][2]int32) (*graph.Graph, [][2]int32) {
	t.Helper()
	set := edgeSetOf(g)
	var muts [][2]int32
	for _, e := range toggles {
		if e[0] > e[1] {
			e[0], e[1] = e[1], e[0]
		}
		if e[0] == e[1] {
			continue
		}
		if set[e] {
			delete(set, e)
		} else {
			set[e] = true
		}
		muts = append(muts, e)
	}
	b := graph.NewBuilder(g.NumVertices())
	for e := range set {
		b.AddEdge(int(e[0]), int(e[1]))
	}
	slices.SortFunc(muts, func(a, b [2]int32) int {
		if a[0] != b[0] {
			return int(a[0] - b[0])
		}
		return int(a[1] - b[1])
	})
	return b.MustBuild(), muts
}

func encodeAll(s *Scheme) [][]byte {
	n := s.Graph().NumVertices()
	out := make([][]byte, n)
	for v := 0; v < n; v++ {
		data, _ := s.Label(v).Encode()
		out[v] = data
	}
	return out
}

// TestBuildSchemeIncremental is the core-level differential test: for random
// graphs and random insert/delete batches, the delta-scoped rebuild must be
// bit-identical to a from-scratch build at every worker count, and every
// vertex it does NOT report dirty must keep a byte-identical label — that
// guarantee is what lets compaction splice old label bytes forward.
func TestBuildSchemeIncremental(t *testing.T) {
	type tc struct {
		name    string
		eps     float64
		base    *graph.Graph
		toggles [][2]int32
	}
	rng := rand.New(rand.NewSource(9))
	grid := gridGraph(t, 12, 12)
	var cases []tc

	// Adversarial: mutations between nearby grid vertices sit inside many
	// overlapping dense balls at once.
	cases = append(cases, tc{
		name: "grid_dense_ball", eps: 2.0, base: grid,
		toggles: [][2]int32{{0, 13}, {13, 26}, {5, 6}, {66, 79}, {66, 91}},
	})
	// Single edge delete and single insert.
	cases = append(cases, tc{
		name: "grid_single_delete", eps: 2.0, base: grid,
		toggles: [][2]int32{{60, 61}},
	})
	cases = append(cases, tc{
		name: "grid_single_insert", eps: 2.0, base: grid,
		toggles: [][2]int32{{0, 143}},
	})
	// Tighter ε exercises more levels.
	cases = append(cases, tc{
		name: "grid_tight_eps", eps: 0.5, base: grid,
		toggles: [][2]int32{{40, 53}, {100, 101}},
	})
	// Random graphs × random batches of varying size.
	for i, size := range []int{1, 6, 25} {
		g := randomConnected(t, 150, 80, rng)
		var tg [][2]int32
		for len(tg) < size {
			u, v := rng.Intn(150), rng.Intn(150)
			if u != v {
				tg = append(tg, [2]int32{int32(u), int32(v)})
			}
		}
		cases = append(cases, tc{name: fmt.Sprintf("random_%d", i), eps: 2.0, base: g, toggles: tg})
	}
	// Empty delta: everything clean, nothing dirty.
	cases = append(cases, tc{name: "empty_delta", eps: 2.0, base: grid, toggles: nil})

	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			prev, err := BuildSchemeWorkers(c.base, c.eps, 0)
			if err != nil {
				t.Fatal(err)
			}
			gNew, muts := mutate(t, c.base, c.toggles)
			want, err := BuildSchemeWorkers(gNew, c.eps, 0)
			if err != nil {
				t.Fatal(err)
			}
			wantLabels := encodeAll(want)
			prevLabels := encodeAll(prev)

			var firstDirty []int32
			for _, workers := range []int{1, 2, 8} {
				inc, err := BuildSchemeIncremental(prev, gNew, muts, workers)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if firstDirty == nil {
					firstDirty = inc.Dirty
				} else if !slices.Equal(firstDirty, inc.Dirty) {
					t.Fatalf("workers=%d: dirty set differs from workers=1", workers)
				}
				dirty := make(map[int32]bool, len(inc.Dirty))
				for _, v := range inc.Dirty {
					dirty[v] = true
				}
				got := encodeAll(inc.Scheme)
				for v := range got {
					if !bytes.Equal(got[v], wantLabels[v]) {
						t.Fatalf("workers=%d: label of %d differs from offline build", workers, v)
					}
					if !dirty[int32(v)] && !bytes.Equal(prevLabels[v], wantLabels[v]) {
						t.Fatalf("workers=%d: vertex %d not dirty but label changed", workers, v)
					}
				}
				if len(muts) == 0 {
					if len(inc.Dirty) != 0 {
						t.Fatalf("empty delta produced %d dirty vertices", len(inc.Dirty))
					}
					if inc.Stats.RowsReused != inc.Stats.RowsTotal {
						t.Fatalf("empty delta recomputed rows: %+v", inc.Stats)
					}
				}
			}
		})
	}
}

// TestBuildSchemeIncrementalRejects covers the argument validation.
func TestBuildSchemeIncrementalRejects(t *testing.T) {
	g := gridGraph(t, 4, 4)
	s, err := BuildScheme(g, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildSchemeIncremental(nil, g, nil, 0); err == nil {
		t.Fatal("nil previous scheme accepted")
	}
	small := gridGraph(t, 3, 3)
	if _, err := BuildSchemeIncremental(s, small, nil, 0); err == nil {
		t.Fatal("vertex-space change accepted")
	}
}
