package core

import (
	"math"
	"math/rand"
	"testing"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func randomConnected(t testing.TB, n, extra int, rng *rand.Rand) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	added := map[[2]int]bool{}
	add := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		if u == v || added[[2]int{u, v}] {
			return
		}
		added[[2]int{u, v}] = true
		b.AddEdge(u, v)
	}
	perm := rng.Perm(n)
	for i := 1; i < n; i++ {
		add(perm[i], perm[rng.Intn(i)])
	}
	for i := 0; i < extra; i++ {
		add(rng.Intn(n), rng.Intn(n))
	}
	return b.MustBuild()
}

// TestLabelContentAgainstBruteForce verifies the label of every vertex of a
// small graph against a direct implementation of the paper's definitions:
// points are exactly N_{ℓ-c-1} ∩ B(v, r_ℓ) with exact distances, edges at
// the lowest level are exactly the graph edges inside the ball, and edges
// at higher levels are exactly the point pairs at distance ≤ λ_ℓ.
func TestLabelContentAgainstBruteForce(t *testing.T) {
	g := gridGraph(t, 7, 6)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := s.Params()
	h := s.Hierarchy()
	n := g.NumVertices()
	allDist := make([][]int32, n)
	for v := 0; v < n; v++ {
		allDist[v] = g.BFS(v)
	}
	for v := 0; v < n; v++ {
		l := s.Label(v)
		if l.V != int32(v) || l.C != p.C || l.MaxLevel != p.MaxLevel {
			t.Fatalf("label header mismatch for %d", v)
		}
		for k := range l.Levels {
			level := l.Level(k)
			netLvl := clampNetLevel(h, p.NetLevel(level))
			r := p.R(level)
			lambda := p.Lambda(level)
			// Expected points.
			wantPts := map[int32]int32{}
			for u := 0; u < n; u++ {
				if h.InNet(u, netLvl) && graph.Reachable(allDist[v][u]) && allDist[v][u] <= r {
					wantPts[int32(u)] = allDist[v][u]
				}
			}
			got := l.Levels[k]
			if len(got.Points) != len(wantPts) {
				t.Fatalf("v=%d level %d: %d points, want %d", v, level, len(got.Points), len(wantPts))
			}
			for _, pe := range got.Points {
				if wantPts[pe.X] != pe.D {
					t.Fatalf("v=%d level %d point %d: dist %d, want %d",
						v, level, pe.X, pe.D, wantPts[pe.X])
				}
			}
			// Expected edges.
			wantEdges := map[[2]int32]int32{}
			if level == p.LowestLevel() {
				g.ForEachEdge(func(a, b int) {
					if _, oka := wantPts[int32(a)]; !oka {
						return
					}
					if _, okb := wantPts[int32(b)]; !okb {
						return
					}
					wantEdges[[2]int32{int32(a), int32(b)}] = 1
				})
			} else {
				for x := range wantPts {
					for y := range wantPts {
						if x < y && allDist[x][y] <= lambda {
							wantEdges[[2]int32{x, y}] = allDist[x][y]
						}
					}
				}
			}
			if len(got.Edges) != len(wantEdges) {
				t.Fatalf("v=%d level %d: %d edges, want %d", v, level, len(got.Edges), len(wantEdges))
			}
			for _, e := range got.Edges {
				x, y := got.Points[e.XI].X, got.Points[e.YI].X
				if x > y {
					x, y = y, x
				}
				if wantEdges[[2]int32{x, y}] != e.D {
					t.Fatalf("v=%d level %d edge (%d,%d): dist %d, want %d",
						v, level, x, y, e.D, wantEdges[[2]int32{x, y}])
				}
			}
		}
	}
}

func TestLabelEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	g := randomConnected(t, 60, 80, rng)
	s, err := BuildScheme(g, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{0, 13, 59} {
		l := s.Label(v)
		buf, nbits := l.Encode()
		got, err := DecodeLabel(buf, nbits)
		if err != nil {
			t.Fatalf("decode label %d: %v", v, err)
		}
		if got.V != l.V || got.C != l.C || got.MaxLevel != l.MaxLevel {
			t.Fatalf("label %d header mismatch after round trip", v)
		}
		if math.Abs(got.Epsilon-l.Epsilon) > 1e-4 {
			t.Fatalf("label %d epsilon %g -> %g", v, l.Epsilon, got.Epsilon)
		}
		if len(got.Levels) != len(l.Levels) {
			t.Fatalf("label %d level count %d -> %d", v, len(l.Levels), len(got.Levels))
		}
		for k := range l.Levels {
			a, b := l.Levels[k], got.Levels[k]
			if len(a.Points) != len(b.Points) || len(a.Edges) != len(b.Edges) {
				t.Fatalf("label %d level %d size mismatch", v, k)
			}
			for i := range a.Points {
				if a.Points[i] != b.Points[i] {
					t.Fatalf("label %d level %d point %d mismatch", v, k, i)
				}
			}
			for i := range a.Edges {
				if a.Edges[i] != b.Edges[i] {
					t.Fatalf("label %d level %d edge %d mismatch", v, k, i)
				}
			}
		}
	}
}

func TestDecodeLabelRejectsGarbage(t *testing.T) {
	if _, err := DecodeLabel([]byte{0xff, 0xff}, 16); err == nil {
		t.Error("garbage should not decode")
	}
	if _, err := DecodeLabel(nil, 0); err == nil {
		t.Error("empty buffer should not decode")
	}
}

func TestInProtectedBallMatchesTrueDistances(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	f := 27 // interior vertex
	lf := s.Label(f)
	distF := g.BFS(f)
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		lambda := p.Lambda(level)
		netLvl := clampNetLevel(s.Hierarchy(), p.NetLevel(level))
		for x := 0; x < g.NumVertices(); x++ {
			if !s.Hierarchy().InNet(x, netLvl) && x != f {
				continue
			}
			want := distF[x] <= lambda
			if got := lf.InProtectedBall(level, int32(x)); got != want {
				t.Errorf("level %d x=%d: InProtectedBall = %v, want %v (d=%d, lambda=%d)",
					level, x, got, want, distF[x], lambda)
			}
		}
	}
}

func TestLabelBitsPositiveAndConsistent(t *testing.T) {
	g := pathGraph(t, 40)
	s, _ := BuildScheme(g, 2)
	for v := 0; v < 40; v += 7 {
		bits := s.LabelBits(v)
		if bits <= 0 {
			t.Fatalf("LabelBits(%d) = %d", v, bits)
		}
		buf, n := s.Label(v).Encode()
		if n != bits {
			t.Fatalf("LabelBits(%d) = %d, Encode says %d", v, bits, n)
		}
		if len(buf)*8 < n {
			t.Fatalf("buffer too short: %d bytes for %d bits", len(buf), n)
		}
	}
}

func TestTopLevelBallCoversComponent(t *testing.T) {
	// Claim 1(b): N_{L-c-1} ⊆ B_L(v) for every v — the top-level label
	// sees every top-net point of the component.
	g := gridGraph(t, 10, 10)
	s, _ := BuildScheme(g, 2)
	p := s.Params()
	h := s.Hierarchy()
	netLvl := clampNetLevel(h, p.NetLevel(p.MaxLevel))
	want := 0
	for v := 0; v < g.NumVertices(); v++ {
		if h.InNet(v, netLvl) {
			want++
		}
	}
	for _, v := range []int{0, 45, 99} {
		l := s.Label(v)
		got := len(l.Levels[len(l.Levels)-1].Points)
		if got != want {
			t.Errorf("v=%d: top level has %d points, want %d", v, got, want)
		}
	}
}

func TestSchemeCache(t *testing.T) {
	g := pathGraph(t, 30)
	s, _ := BuildScheme(g, 2)
	l1 := s.Label(5)
	l2 := s.Label(5)
	if l1 != l2 {
		t.Error("cached label should be returned")
	}
	s.SetCacheLimit(0)
	l3 := s.Label(5)
	l4 := s.Label(5)
	if l3 == l4 {
		t.Error("cache disabled: fresh labels expected")
	}
	// Content must be identical regardless of caching.
	if l3.NumPoints() != l1.NumPoints() || l3.NumEdges() != l1.NumEdges() {
		t.Error("extraction must be deterministic")
	}
}

func TestHierarchyReuse(t *testing.T) {
	g := gridGraph(t, 6, 6)
	s, _ := BuildScheme(g, 2)
	h := s.Hierarchy()
	if err := h.VerifyInvariants(); err != nil {
		t.Errorf("scheme hierarchy invalid: %v", err)
	}
	var _ *nets.Hierarchy = h
}

func TestLabelValidateAcceptsRealLabels(t *testing.T) {
	g := gridGraph(t, 7, 7)
	for _, eps := range []float64{2, 1} {
		s, err := BuildScheme(g, eps)
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < 49; v += 6 {
			if err := s.Label(v).Validate(); err != nil {
				t.Fatalf("eps=%g v=%d: real label rejected: %v", eps, v, err)
			}
		}
	}
	ab, err := BuildSchemeAblated(g, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := ab.Label(24).Validate(); err != nil {
		t.Fatalf("ablated label rejected: %v", err)
	}
}

func TestLabelValidateRejectsCorruption(t *testing.T) {
	g := gridGraph(t, 6, 6)
	s, _ := BuildScheme(g, 2)
	fresh := func() *Label {
		buf, n := s.Label(14).Encode()
		l, err := DecodeLabel(buf, n)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	cases := []struct {
		name    string
		corrupt func(l *Label)
	}{
		{"unsorted points", func(l *Label) {
			pts := l.Levels[0].Points
			if len(pts) >= 2 {
				pts[0], pts[1] = pts[1], pts[0]
			}
		}},
		{"distance beyond r", func(l *Label) {
			l.Levels[0].Points[0].D = 1 << 30
		}},
		{"edge index out of range", func(l *Label) {
			if len(l.Levels[0].Edges) > 0 {
				l.Levels[0].Edges[0].YI = 1 << 20
			}
		}},
		{"edge too long", func(l *Label) {
			if len(l.Levels[0].Edges) > 0 {
				l.Levels[0].Edges[0].D = 1 << 20
			}
		}},
		{"level count mismatch", func(l *Label) {
			l.Levels = l.Levels[:len(l.Levels)-1]
		}},
		{"bad c", func(l *Label) { l.C = 0 }},
	}
	for _, c := range cases {
		l := fresh()
		c.corrupt(l)
		if err := l.Validate(); err == nil {
			t.Errorf("%s: corruption not detected", c.name)
		}
	}
}
