package core

import (
	"runtime"
	"sort"
	"sync"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// levelStore holds the shared per-level structures from which per-vertex
// labels are extracted. Every label's content is derivable from it, and a
// Label, once extracted, is fully self-contained — the decoder never touches
// the store. Sharing exists purely because materializing all n labels
// eagerly would cost Θ(n) times the (large-constant) per-label size.
type levelStore struct {
	params Params
	g      *graph.Graph
	h      *nets.Hierarchy
	// levels[k] describes scheme level ℓ = c+1+k.
	levels []storeLevel
}

// storeLevel is the shared structure of one scheme level ℓ > c+1: the net
// points of N_{ℓ-c-1} and the "net graph" — for each net point, all other
// net points within graph distance λ_ℓ, with exact distances. For the
// lowest level ℓ = c+1 the net graph is empty (labels store original graph
// edges there instead).
type storeLevel struct {
	level int
	// isNet[v] reports whether v is a net point of this level.
	isNet []bool
	// adj[v] lists, for a net point v, the net points within λ_ℓ of v with
	// their distances, sorted by vertex id. Nil for non-net vertices.
	adj [][]pointDist
}

// pointDist is a (vertex, distance) pair.
type pointDist struct {
	x int32
	d int32
}

// buildStore constructs the shared level structures. Cost: for each level,
// one truncated BFS of radius λ_ℓ from every net point of that level. The
// per-point searches are independent, so they run on a worker pool sized
// to the machine; the result is deterministic regardless of parallelism
// (each worker writes only its own point's sorted adjacency).
func buildStore(g *graph.Graph, h *nets.Hierarchy, p Params) *levelStore {
	st := &levelStore{params: p, g: g, h: h}
	n := g.NumVertices()
	workers := runtime.GOMAXPROCS(0)
	if workers < 1 {
		workers = 1
	}
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		sl := storeLevel{level: level, isNet: make([]bool, n)}
		netLvl := clampNetLevel(h, p.NetLevel(level))
		members := h.Level(netLvl)
		for _, v := range members {
			sl.isNet[v] = true
		}
		if level > p.LowestLevel() {
			// Net graph: all net-point pairs within λ_ℓ.
			sl.adj = make([][]pointDist, n)
			lambda := p.Lambda(level)
			var wg sync.WaitGroup
			next := make(chan int32, workers)
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					scratch := graph.NewBFSScratch(n)
					for src := range next {
						var nbrs []pointDist
						scratch.TruncatedBFS(g, int(src), lambda, func(w, d int32) {
							if w != src && sl.isNet[w] {
								nbrs = append(nbrs, pointDist{x: w, d: d})
							}
						})
						sort.Slice(nbrs, func(i, j int) bool { return nbrs[i].x < nbrs[j].x })
						sl.adj[src] = nbrs
					}
				}()
			}
			for _, src := range members {
				next <- src
			}
			close(next)
			wg.Wait()
		}
		st.levels = append(st.levels, sl)
	}
	return st
}

// levelIndex maps a scheme level ℓ to its index in st.levels.
func (st *levelStore) levelIndex(level int) int { return level - st.params.LowestLevel() }

// clampNetLevel clamps a requested net level to the hierarchy's range: for
// tiny graphs the scheme's level range extends above ⌈log₂ n⌉ (because
// L = max(⌈log₂ n⌉, c+1)), and any level above the top behaves like the
// top (the nets are nested, so this preserves every containment the
// decoder relies on).
func clampNetLevel(h *nets.Hierarchy, j int) int {
	if j > h.MaxLevel() {
		return h.MaxLevel()
	}
	return j
}
