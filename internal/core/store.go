package core

import (
	"cmp"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// levelStore holds the shared per-level structures from which per-vertex
// labels are extracted. Every label's content is derivable from it, and a
// Label, once extracted, is fully self-contained — the decoder never touches
// the store. Sharing exists purely because materializing all n labels
// eagerly would cost Θ(n) times the (large-constant) per-label size.
type levelStore struct {
	params Params
	g      *graph.Graph
	h      *nets.Hierarchy
	// netLevel aliases h.NetLevels(): v is a net point of levels[k] iff
	// netLevel[v] >= levels[k].netLvl. One shared n-entry array replaces
	// the per-level isNet boolean arrays (n·|levels| bytes) the store
	// used to carry.
	netLevel []int32
	// levels[k] describes scheme level ℓ = c+1+k.
	levels []storeLevel
}

// storeLevel is the shared structure of one scheme level ℓ > c+1: the net
// points of N_{ℓ-c-1} and the "net graph" — for each net point, all other
// net points within graph distance λ_ℓ, with exact distances. The adjacency
// is stored in CSR form: row(v) = entries[off[v]:off[v+1]], sorted by
// vertex id, one packed entries array per level instead of n slice headers.
// For the lowest level ℓ = c+1 the net graph is empty (labels store
// original graph edges there instead) and off is nil.
type storeLevel struct {
	level   int
	netLvl  int32 // clamped hierarchy level whose net points this level uses
	off     []int64
	entries []pointDist
}

// row returns the net-graph adjacency of net point v, sorted by vertex id.
func (sl *storeLevel) row(v int32) []pointDist {
	return sl.entries[sl.off[v]:sl.off[v+1]]
}

// pointDist is a (vertex, distance) pair.
type pointDist struct {
	x int32
	d int32
}

// clampWorkers resolves a worker-count knob: ≤ 0 means GOMAXPROCS, and the
// count never exceeds the number of tasks.
func clampWorkers(workers, tasks int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > tasks {
		workers = tasks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// buildStore constructs the shared level structures. Cost: for each level,
// one truncated BFS of radius λ_ℓ from every net point of that level. All
// (level, net-point) searches across all levels are independent, so they
// form one global work queue drained by the pool — the few-point upper
// levels no longer leave the pool idle behind a per-level barrier. Tasks
// are queued top level first: upper-level searches have the largest radii
// and are the longest poles, so they must start earliest. The result is
// deterministic regardless of parallelism (each task writes only its own
// point's sorted adjacency, and CSR assembly runs in vertex order).
func buildStore(g *graph.Graph, h *nets.Hierarchy, p Params, workers int) *levelStore {
	st := &levelStore{params: p, g: g, h: h, netLevel: h.NetLevels()}
	n := g.NumVertices()
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		st.levels = append(st.levels, storeLevel{
			level:  level,
			netLvl: int32(clampNetLevel(h, p.NetLevel(level))),
		})
	}

	// Global task queue over every net-graph BFS, highest level first.
	type bfsTask struct {
		li  int32 // index into st.levels
		src int32 // net point to search from
	}
	var tasks []bfsTask
	base := make([]int, len(st.levels)) // first task index of each level
	for li := len(st.levels) - 1; li >= 1; li-- {
		base[li] = len(tasks)
		for _, src := range h.Level(int(st.levels[li].netLvl)) {
			tasks = append(tasks, bfsTask{li: int32(li), src: src})
		}
	}
	rows := make([][]pointDist, len(tasks))
	if len(tasks) > 0 {
		workers = clampWorkers(workers, len(tasks))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := graph.NewBFSScratch(n)
				for {
					ti := int(next.Add(1)) - 1
					if ti >= len(tasks) {
						return
					}
					t := tasks[ti]
					sl := &st.levels[t.li]
					lambda := p.Lambda(sl.level)
					var nbrs []pointDist
					scratch.TruncatedBFS(g, int(t.src), lambda, func(u, d int32) {
						if u != t.src && st.netLevel[u] >= sl.netLvl {
							nbrs = append(nbrs, pointDist{x: u, d: d})
						}
					})
					slices.SortFunc(nbrs, func(a, b pointDist) int { return cmp.Compare(a.x, b.x) })
					rows[ti] = nbrs
				}
			}()
		}
		wg.Wait()
	}

	// Flatten each level's rows into its CSR arrays. Net members arrive
	// in increasing vertex order, so one pass packs entries and offsets.
	for li := 1; li < len(st.levels); li++ {
		sl := &st.levels[li]
		members := h.Level(int(sl.netLvl))
		total := 0
		for k := range members {
			total += len(rows[base[li]+k])
		}
		off := make([]int64, n+1)
		entries := make([]pointDist, 0, total)
		mi := 0
		for v := 0; v < n; v++ {
			if mi < len(members) && members[mi] == int32(v) {
				entries = append(entries, rows[base[li]+mi]...)
				mi++
			}
			off[v+1] = int64(len(entries))
		}
		sl.off, sl.entries = off, entries
	}
	return st
}

// levelIndex maps a scheme level ℓ to its index in st.levels.
func (st *levelStore) levelIndex(level int) int { return level - st.params.LowestLevel() }

// clampNetLevel clamps a requested net level to the hierarchy's range: for
// tiny graphs the scheme's level range extends above ⌈log₂ n⌉ (because
// L = max(⌈log₂ n⌉, c+1)), and any level above the top behaves like the
// top (the nets are nested, so this preserves every containment the
// decoder relies on).
func clampNetLevel(h *nets.Hierarchy, j int) int {
	if j > h.MaxLevel() {
		return h.MaxLevel()
	}
	return j
}
