package core

import (
	"sync"
	"testing"

	"fsdl/internal/graph"
)

// The Scheme documents itself as safe for concurrent label extraction;
// these tests back that claim (run with -race in CI).

func TestConcurrentLabelExtraction(t *testing.T) {
	g := gridGraph(t, 10, 10)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				v := (seed*31 + i*7) % 100
				l := s.Label(v)
				if l.V != int32(v) {
					errs <- "wrong label returned"
					return
				}
				if _, bits := l.Encode(); bits <= 0 {
					errs <- "empty label"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestConcurrentQueries(t *testing.T) {
	g := gridGraph(t, 9, 9)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	fail := make(chan string, 8)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < 15; i++ {
				src := (seed + i*13) % 81
				dst := (seed*17 + i) % 81
				f := graph.NewFaultSet()
				fv := (seed*7 + i*29) % 81
				if fv != src && fv != dst {
					f.AddVertex(fv)
				}
				truth := g.DistAvoiding(src, dst, f)
				est, ok := s.Distance(src, dst, f)
				if graph.Reachable(truth) != ok {
					fail <- "connectivity mismatch under concurrency"
					return
				}
				if ok && est < int64(truth) {
					fail <- "safety violated under concurrency"
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(fail)
	for e := range fail {
		t.Fatal(e)
	}
}

// Queries are symmetric: H(s,t,F) = H(t,s,F), so the estimates must match.
func TestQuerySymmetry(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(27, 36)
	for src := 0; src < 64; src += 5 {
		for dst := 0; dst < 64; dst += 7 {
			d1, ok1 := s.Distance(src, dst, f)
			d2, ok2 := s.Distance(dst, src, f)
			if d1 != d2 || ok1 != ok2 {
				t.Fatalf("asymmetric: (%d,%d)=(%d,%v), (%d,%d)=(%d,%v)",
					src, dst, d1, ok1, dst, src, d2, ok2)
			}
		}
	}
}

// Repeated identical queries are deterministic.
func TestQueryDeterminism(t *testing.T) {
	g := gridGraph(t, 7, 7)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(24)
	d0, ok0 := s.Distance(0, 48, f)
	for i := 0; i < 5; i++ {
		d, ok := s.Distance(0, 48, f)
		if d != d0 || ok != ok0 {
			t.Fatalf("nondeterministic answer: (%d,%v) vs (%d,%v)", d, ok, d0, ok0)
		}
	}
}
