package core

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// This file implements delta-scoped scheme rebuilds: given the scheme of a
// graph G and a batch of edge mutations turning G into G', it produces the
// scheme of G' while recomputing only the (level, net-point) BFS tasks whose
// truncated balls a mutation can reach, and reports exactly which vertices'
// labels may differ — everything else is provably byte-identical, so a
// compaction can splice the untouched label bytes forward instead of
// re-extracting them.
//
// The locality argument is the paper's own: every structure the scheme
// stores is a function of a bounded-radius ball. A truncated BFS of radius r
// from a source s never relaxes an edge with both endpoints outside B(s, r),
// and the net-membership filter it applies is a per-vertex function. So if
// no mutated-edge endpoint and no vertex whose net membership changed lies
// within r of s — in either the old or the new graph — the search explores
// an identical subgraph under an identical filter and returns identical
// output. "Seeds" below are exactly those change witnesses: mutated-edge
// endpoints plus net-membership diffs, and one multi-source BFS per graph
// prices every ball-cleanliness test at O(1).

// IncrementalStats counts what the delta-scoped rebuild reused vs redid.
type IncrementalStats struct {
	// Seeds is the number of change witnesses: mutated-edge endpoints
	// plus vertices whose net-hierarchy membership level changed.
	Seeds int
	// RowsTotal counts the store's (level, net-point) adjacency rows;
	// RowsReused of them were aliased from the previous store without a
	// BFS, and RowsChanged hold different content than before (a subset
	// of the recomputed rows).
	RowsTotal, RowsReused, RowsChanged int
	// NetDiffed counts the per-net-point ball diffs run to bound the
	// dirty label set.
	NetDiffed int
	// DirtyLow, DirtyNet and DirtyPair attribute the dirty set to its
	// three marking rules — lowest-level seed proximity, per-net-point
	// ball diffs, and changed net-graph edge entries. A vertex marked by
	// several rules counts once, under the first that caught it.
	DirtyLow, DirtyNet, DirtyPair int
}

// IncrementalBuild is the result of BuildSchemeIncremental.
type IncrementalBuild struct {
	// Scheme is the scheme of the mutated graph, bit-identical to a
	// from-scratch BuildSchemeWorkers on it.
	Scheme *Scheme
	// Dirty lists, sorted ascending, every vertex whose label may
	// differ from its label under the previous scheme. Labels of
	// vertices not listed are guaranteed byte-identical, so their
	// serialized form can be copied forward.
	Dirty []int32
	// Stats describes the work avoided.
	Stats IncrementalStats
}

// reachWithin reports whether a BFS distance (Infinity = unreachable)
// is within r.
func reachWithin(d, r int32) bool { return d != graph.Infinity && d <= r }

// BuildSchemeIncremental builds the scheme of gNew from the scheme of the
// graph it was derived from by mutating (inserting or deleting) the listed
// undirected edges. The vertex space must be unchanged. The result is
// bit-identical to BuildSchemeWorkers(gNew, prev.Params().Epsilon, workers)
// for any worker count; only work provably unaffected by the mutations is
// reused from prev.
func BuildSchemeIncremental(prev *Scheme, gNew *graph.Graph, mutated [][2]int32, workers int) (*IncrementalBuild, error) {
	if prev == nil {
		return nil, fmt.Errorf("core: incremental build needs a previous scheme")
	}
	n := gNew.NumVertices()
	if pn := prev.g.NumVertices(); pn != n {
		return nil, fmt.Errorf("core: incremental build: vertex space changed (%d -> %d)", pn, n)
	}
	p := prev.params // same ε and n ⇒ identical derived parameters

	// The net hierarchy is rebuilt from scratch: its greedy covering is
	// global (one far-away mutation can, in principle, shift a W-set),
	// and it is cheap next to store construction and label extraction.
	// The scattered scan order — the same one BuildSchemeWorkers uses,
	// which keeps the rebuild byte-compatible with the offline build —
	// confines reseated net points to the mutation's neighborhood, so
	// the seed set below stays proportional to the delta, not to n.
	hNew, err := nets.BuildWithOrderWorkers(gNew, nets.ScatteredOrder(n), workers)
	if err != nil {
		return nil, fmt.Errorf("core: incremental build net hierarchy: %w", err)
	}
	netOld, netNew := prev.h.NetLevels(), hNew.NetLevels()

	// Seeds: every vertex at which old and new structure can first
	// disagree — mutated-edge endpoints and net-membership changes.
	seedSet := make(map[int32]struct{})
	for _, e := range mutated {
		seedSet[e[0]] = struct{}{}
		seedSet[e[1]] = struct{}{}
	}
	for v := 0; v < n; v++ {
		if netOld[v] != netNew[v] {
			seedSet[int32(v)] = struct{}{}
		}
	}
	seeds := make([]int, 0, len(seedSet))
	for v := range seedSet {
		seeds = append(seeds, int(v))
	}
	slices.Sort(seeds)

	// One multi-source BFS per graph answers every "is any seed within
	// r of v" test the cleanliness criteria below need.
	seedOld, _ := prev.g.MultiSourceBFS(seeds)
	seedNew, _ := gNew.MultiSourceBFS(seeds)

	stats := IncrementalStats{Seeds: len(seeds)}
	st, changedRows := buildStoreIncremental(gNew, hNew, p, workers, prev.store, seedOld, seedNew, &stats)
	dirty := markDirtyLabels(prev, gNew, hNew, st, changedRows, seedOld, seedNew, workers, &stats)
	return &IncrementalBuild{
		Scheme: newScheme(gNew, hNew, p, st),
		Dirty:  dirty,
		Stats:  stats,
	}, nil
}

// buildStoreIncremental is buildStore with the delta-scoped fast path: a
// (level, net-point) task whose λ-ball contains no seed in either graph is
// aliased from the previous store instead of searched (the ball subgraph
// and the membership filter inside it are unchanged, so the row is too).
// Recomputed rows are compared against their previous content; changedRows
// lists, per level index, the net points whose row content differs (or
// that had no row before).
func buildStoreIncremental(g *graph.Graph, h *nets.Hierarchy, p Params, workers int,
	prevStore *levelStore, seedOld, seedNew []int32, stats *IncrementalStats) (*levelStore, [][]int32) {

	st := &levelStore{params: p, g: g, h: h, netLevel: h.NetLevels()}
	n := g.NumVertices()
	for level := p.LowestLevel(); level <= p.MaxLevel; level++ {
		st.levels = append(st.levels, storeLevel{
			level:  level,
			netLvl: int32(clampNetLevel(h, p.NetLevel(level))),
		})
	}
	netOld := prevStore.netLevel

	type bfsTask struct {
		li  int32
		src int32
	}
	var tasks []bfsTask
	base := make([]int, len(st.levels))
	for li := len(st.levels) - 1; li >= 1; li-- {
		base[li] = len(tasks)
		for _, src := range h.Level(int(st.levels[li].netLvl)) {
			tasks = append(tasks, bfsTask{li: int32(li), src: src})
		}
	}
	rows := make([][]pointDist, len(tasks))
	changed := make([]bool, len(tasks))
	var reused atomic.Int64
	if len(tasks) > 0 {
		workers = clampWorkers(workers, len(tasks))
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := graph.NewBFSScratch(n)
				for {
					ti := int(next.Add(1)) - 1
					if ti >= len(tasks) {
						return
					}
					t := tasks[ti]
					sl := &st.levels[t.li]
					lambda := p.Lambda(sl.level)
					psl := &prevStore.levels[t.li]
					hadRow := netOld[t.src] >= psl.netLvl
					if hadRow && !reachWithin(seedOld[t.src], lambda) && !reachWithin(seedNew[t.src], lambda) {
						// No seed inside the λ-ball in either graph:
						// the search would retrace the previous one.
						rows[ti] = psl.row(t.src)
						reused.Add(1)
						continue
					}
					var nbrs []pointDist
					scratch.TruncatedBFS(g, int(t.src), lambda, func(u, d int32) {
						if u != t.src && st.netLevel[u] >= sl.netLvl {
							nbrs = append(nbrs, pointDist{x: u, d: d})
						}
					})
					slices.SortFunc(nbrs, func(a, b pointDist) int { return cmp.Compare(a.x, b.x) })
					rows[ti] = nbrs
					changed[ti] = !hadRow || !slices.Equal(nbrs, psl.row(t.src))
				}
			}()
		}
		wg.Wait()
	}

	changedRows := make([][]int32, len(st.levels))
	for li := 1; li < len(st.levels); li++ {
		sl := &st.levels[li]
		members := h.Level(int(sl.netLvl))
		total := 0
		for k := range members {
			total += len(rows[base[li]+k])
			if changed[base[li]+k] {
				changedRows[li] = append(changedRows[li], members[k])
			}
		}
		off := make([]int64, n+1)
		entries := make([]pointDist, 0, total)
		mi := 0
		for v := 0; v < n; v++ {
			if mi < len(members) && members[mi] == int32(v) {
				entries = append(entries, rows[base[li]+mi]...)
				mi++
			}
			off[v+1] = int64(len(entries))
		}
		sl.off, sl.entries = off, entries
		stats.RowsChanged += len(changedRows[li])
	}
	stats.RowsTotal = len(tasks)
	stats.RowsReused = int(reused.Load())
	return st, changedRows
}

// markDirtyLabels computes a sound over-approximation of the vertices
// whose label under the new scheme differs from their label under prev.
//
// Lowest level: the level-(c+1) slice of L(v) is a pure function of the
// radius-r ball subgraph around v (all vertices qualify as points, edges
// are original graph edges), so it is unchanged whenever no seed lies
// within r of v in either graph — one scan of the precomputed seed
// distances.
//
// Upper levels: the slice stores (net point, distance) entries within r
// of v plus the store rows between them, and r at the top level spans the
// whole graph — proximity to a seed would mark everything. Instead the
// diff walks the few net points that could contribute a changed entry:
// a net point w can do so only if a seed lies within r of w (otherwise
// w's r-ball — which contains every vertex holding an entry for w — is
// identical in both graphs). For each such w, truncated BFSes in the old
// and new graphs diff its entries directly: vertices whose distance to w
// changed get marked; if w's net membership changed, every vertex that
// sees w at all gains or loses its point entry, so the whole ball is
// marked. A changed adjacency row is scoped tighter still: an edge entry
// (w,x) appears only in labels whose ball holds BOTH endpoints, so each
// changed row entry marks the intersection of the two endpoint balls
// rather than all of w's (see markChangedPairEntries).
func markDirtyLabels(prev *Scheme, gNew *graph.Graph, hNew *nets.Hierarchy, st *levelStore,
	changedRows [][]int32, seedOld, seedNew []int32, workers int, stats *IncrementalStats) []int32 {

	n := gNew.NumVertices()
	p := st.params
	dirty := make([]bool, n)

	r0 := p.R(p.LowestLevel())
	for v := 0; v < n; v++ {
		if reachWithin(seedOld[v], r0) || reachWithin(seedNew[v], r0) {
			dirty[v] = true
		}
	}
	countDirty := func() int {
		c := 0
		for _, d := range dirty {
			if d {
				c++
			}
		}
		return c
	}
	stats.DirtyLow = countDirty()

	type diffTask struct {
		w         int32
		r         int32
		memberOld bool
		memberNew bool
		markAll   bool
	}
	var tasks []diffTask
	var pairs []ballPair
	pairSeen := make(map[ballPair]struct{})
	for li := 1; li < len(st.levels); li++ {
		sl := &st.levels[li]
		r := p.R(sl.level)
		rowChanged := make(map[int32]struct{}, len(changedRows[li]))
		for _, w := range changedRows[li] {
			rowChanged[w] = struct{}{}
		}
		oldMembers := prev.h.Level(int(sl.netLvl))
		newMembers := hNew.Level(int(sl.netLvl))
		oi, ni := 0, 0
		for oi < len(oldMembers) || ni < len(newMembers) {
			var w int32
			var mo, mn bool
			switch {
			case ni >= len(newMembers) || (oi < len(oldMembers) && oldMembers[oi] < newMembers[ni]):
				w, mo = oldMembers[oi], true
				oi++
			case oi >= len(oldMembers) || newMembers[ni] < oldMembers[oi]:
				w, mn = newMembers[ni], true
				ni++
			default:
				w, mo, mn = oldMembers[oi], true, true
				oi++
				ni++
			}
			if !reachWithin(seedOld[w], r) && !reachWithin(seedNew[w], r) {
				continue // w's r-ball is unchanged: no entry involving w moved
			}
			if _, rc := rowChanged[w]; rc && mo && mn {
				appendChangedPairs(prev.store.levels[li].row(w), sl.row(w), w, r, pairSeen, &pairs)
			}
			tasks = append(tasks, diffTask{w: w, r: r, memberOld: mo, memberNew: mn, markAll: mo != mn})
		}
	}
	stats.NetDiffed = len(tasks)

	if len(tasks) > 0 {
		workers = clampWorkers(workers, len(tasks))
		var next atomic.Int64
		var mu sync.Mutex
		var wg sync.WaitGroup
		for wk := 0; wk < workers; wk++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				scOld := graph.NewBFSScratch(n)
				scNew := graph.NewBFSScratch(n)
				oldDist := make([]int32, n)
				for i := range oldDist {
					oldDist[i] = graph.Infinity
				}
				var visited, marks []int32
				for {
					ti := int(next.Add(1)) - 1
					if ti >= len(tasks) {
						return
					}
					t := tasks[ti]
					visited, marks = visited[:0], marks[:0]
					if t.memberOld {
						scOld.TruncatedBFS(prev.g, int(t.w), t.r, func(v, d int32) {
							oldDist[v] = d
							visited = append(visited, v)
						})
					}
					if t.memberNew {
						scNew.TruncatedBFS(gNew, int(t.w), t.r, func(v, d int32) {
							if t.markAll {
								marks = append(marks, v)
								return
							}
							if oldDist[v] == d {
								oldDist[v] = -2 // matched: entry for w unchanged at v
							} else {
								marks = append(marks, v)
							}
						})
					}
					for _, v := range visited {
						if oldDist[v] != -2 || t.markAll {
							marks = append(marks, v)
						}
						oldDist[v] = graph.Infinity
					}
					mu.Lock()
					for _, v := range marks {
						dirty[v] = true
					}
					mu.Unlock()
				}
			}()
		}
		wg.Wait()
	}

	stats.DirtyNet = countDirty() - stats.DirtyLow
	markChangedPairEntries(prev.g, gNew, pairs, dirty)
	stats.DirtyPair = countDirty() - stats.DirtyLow - stats.DirtyNet

	out := make([]int32, 0, n/8)
	for v := 0; v < n; v++ {
		if dirty[v] {
			out = append(out, int32(v))
		}
	}
	return out
}

// ballPair is one changed net-graph entry: endpoints w < x of a store
// level whose ball radius is r.
type ballPair struct {
	w, x, r int32
}

// appendChangedPairs merge-diffs a net point's old and new adjacency
// rows (both sorted by partner id) and records one ballPair per entry
// that appears on only one side or changed distance. Entries are
// symmetric — the partner's row changed identically — so pairs are
// deduplicated under w < x normalization.
func appendChangedPairs(oldRow, newRow []pointDist, w, r int32, seen map[ballPair]struct{}, pairs *[]ballPair) {
	emit := func(x int32) {
		k := ballPair{w: min(w, x), x: max(w, x), r: r}
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			*pairs = append(*pairs, k)
		}
	}
	oi, ni := 0, 0
	for oi < len(oldRow) || ni < len(newRow) {
		switch {
		case ni >= len(newRow) || (oi < len(oldRow) && oldRow[oi].x < newRow[ni].x):
			emit(oldRow[oi].x)
			oi++
		case oi >= len(oldRow) || newRow[ni].x < oldRow[oi].x:
			emit(newRow[ni].x)
			ni++
		default:
			if oldRow[oi].d != newRow[ni].d {
				emit(oldRow[oi].x)
			}
			oi++
			ni++
		}
	}
}

// markChangedPairEntries marks the labels that hold a changed net-graph
// edge entry (w,x): exactly the vertices with BOTH endpoints inside
// their radius-r label ball, in the old graph (entry removed or
// re-lengthened) or the new one (entry added or re-lengthened). Both
// intersections are marked unconditionally — the union is a superset of
// either direction of change. Endpoint balls are memoized per
// (endpoint, radius) since changed entries cluster around the mutation
// and share endpoints; each intersection then costs two list walks over
// a shared stamp array. Marking a boolean per vertex is idempotent, so
// the result is independent of pair order (and of the worker count used
// elsewhere in the build).
func markChangedPairEntries(gOld, gNew *graph.Graph, pairs []ballPair, dirty []bool) {
	if len(pairs) == 0 {
		return
	}
	n := len(dirty)
	scratch := graph.NewBFSScratch(n)
	type ballKey struct {
		v, r int32
	}
	memoOld := make(map[ballKey][]int32)
	memoNew := make(map[ballKey][]int32)
	ball := func(memo map[ballKey][]int32, g *graph.Graph, v, r int32) []int32 {
		k := ballKey{v: v, r: r}
		if l, ok := memo[k]; ok {
			return l
		}
		var l []int32
		scratch.TruncatedBFS(g, int(v), r, func(u, _ int32) {
			l = append(l, u)
		})
		memo[k] = l
		return l
	}
	stamp := make([]int32, n)
	for i := range stamp {
		stamp[i] = -1
	}
	gen := int32(-1)
	intersectMark := func(memo map[ballKey][]int32, g *graph.Graph, pr ballPair) {
		gen++
		for _, v := range ball(memo, g, pr.x, pr.r) {
			stamp[v] = gen
		}
		for _, v := range ball(memo, g, pr.w, pr.r) {
			if stamp[v] == gen {
				dirty[v] = true
			}
		}
	}
	for _, pr := range pairs {
		intersectMark(memoOld, gOld, pr)
		intersectMark(memoNew, gNew, pr)
	}
}
