package core

import (
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
)

// This file holds the pooled decode scratch: every transient structure a
// Query decode needs — dedup sets, forbidden sets, the best-edge
// accumulator, the protected-ball indexes, the dense-id remap and the
// sketch Dijkstra state — owned by one reusable object instead of
// allocated per call. Steady-state decodes are (near-)allocation-free:
// each container is an open-addressing table over int32 vertex ids or
// uint64 edge keys that grows to the largest query seen and is reset
// with a memclr.

// --- open-addressing containers -------------------------------------------

// i32set is an insert-only set of nonnegative int32 keys (vertex ids).
// Slots store key+1 so the zero slot means empty.
type i32set struct {
	slots []int32
	n     int
}

func i32hash(k int32) uint32 { return uint32(uint64(uint32(k)) * 0x9E3779B97F4A7C15 >> 32) }

func (s *i32set) reset() {
	if s.n > 0 {
		clear(s.slots)
		s.n = 0
	}
}

// add inserts k, reporting whether it was absent.
func (s *i32set) add(k int32) bool {
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := uint32(len(s.slots) - 1)
	i := i32hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = k + 1
			s.n++
			return true
		}
		if v == k+1 {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *i32set) has(k int32) bool {
	if s.n == 0 {
		return false
	}
	mask := uint32(len(s.slots) - 1)
	i := i32hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == k+1 {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *i32set) grow() {
	old := s.slots
	s.slots = make([]int32, max(16, 2*len(old)))
	s.n = 0
	for _, v := range old {
		if v != 0 {
			s.add(v - 1)
		}
	}
}

// i32map maps nonnegative int32 keys to int32 values (the dense-id
// remap). Keys store key+1, zero means empty.
type i32map struct {
	keys []int32
	vals []int32
	n    int
}

func (m *i32map) reset() {
	if m.n > 0 {
		clear(m.keys)
		m.n = 0
	}
}

// getOrPut returns the value of k, inserting v when absent.
func (m *i32map) getOrPut(k, v int32) (int32, bool) {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		kk := m.keys[i]
		if kk == 0 {
			m.keys[i] = k + 1
			m.vals[i] = v
			m.n++
			return v, false
		}
		if kk == k+1 {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// lookup returns the value of k and whether it is present.
func (m *i32map) lookup(k int32) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		kk := m.keys[i]
		if kk == 0 {
			return 0, false
		}
		if kk == k+1 {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// get returns the value of k; k must be present.
func (m *i32map) get(k int32) int32 {
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		if m.keys[i] == k+1 {
			return m.vals[i]
		}
		i = (i + 1) & mask
	}
}

func (m *i32map) grow() {
	oldK, oldV := m.keys, m.vals
	size := max(16, 2*len(oldK))
	m.keys = make([]int32, size)
	m.vals = make([]int32, size)
	m.n = 0
	for i, kk := range oldK {
		if kk != 0 {
			m.getOrPut(kk-1, oldV[i])
		}
	}
}

// u64set is an insert-only set of uint64 edge keys. Key 0 — the
// unordered pair (0,0) — cannot be produced by any sketch edge (the
// decoder never admits self-loops) but can appear in adversarial
// forbidden-edge lists, so it is tracked by an explicit flag.
type u64set struct {
	slots   []uint64
	n       int
	hasZero bool
}

func u64hash(k uint64) uint32 { return uint32((k ^ k>>32) * 0x9E3779B97F4A7C15 >> 32) }

func (s *u64set) reset() {
	if s.n > 0 {
		clear(s.slots)
		s.n = 0
	}
	s.hasZero = false
}

func (s *u64set) add(k uint64) {
	if k == 0 {
		s.hasZero = true
		return
	}
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := uint32(len(s.slots) - 1)
	i := u64hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = k
			s.n++
			return
		}
		if v == k {
			return
		}
		i = (i + 1) & mask
	}
}

func (s *u64set) has(k uint64) bool {
	if k == 0 {
		return s.hasZero
	}
	if s.n == 0 {
		return false
	}
	mask := uint32(len(s.slots) - 1)
	i := u64hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == k {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *u64set) grow() {
	old := s.slots
	s.slots = make([]uint64, max(16, 2*len(old)))
	s.n = 0
	for _, v := range old {
		if v != 0 {
			s.add(v)
		}
	}
}

// edgeAcc accumulates the lightest parallel edge per unordered vertex
// pair, remembering insertion order so the decode can emit a
// deterministic (sorted) edge list without copying the key set. Key 0
// cannot occur (self-loops are never admitted).
type edgeAcc struct {
	slots []uint64 // open-addressing table of keys; 0 = empty
	w     []int64  // slot -> lightest weight
	lv    []int32  // slot -> contributing level of that weight
	order []uint64 // distinct keys in insertion order
	n     int
}

func (a *edgeAcc) reset() {
	if a.n > 0 {
		clear(a.slots)
		a.n = 0
	}
	a.order = a.order[:0]
}

// upsertMin records the edge k with weight w at the given level, keeping
// the lightest (w, level) pair per key.
func (a *edgeAcc) upsertMin(k uint64, w int64, level int32) {
	if 4*(a.n+1) > 3*len(a.slots) {
		a.grow()
	}
	mask := uint32(len(a.slots) - 1)
	i := u64hash(k) & mask
	for {
		v := a.slots[i]
		if v == 0 {
			a.slots[i] = k
			a.w[i] = w
			a.lv[i] = level
			a.n++
			a.order = append(a.order, k)
			return
		}
		if v == k {
			if w < a.w[i] {
				a.w[i] = w
				a.lv[i] = level
			}
			return
		}
		i = (i + 1) & mask
	}
}

// get returns the (weight, level) recorded for k; k must be present.
func (a *edgeAcc) get(k uint64) (int64, int32) {
	mask := uint32(len(a.slots) - 1)
	i := u64hash(k) & mask
	for {
		if a.slots[i] == k {
			return a.w[i], a.lv[i]
		}
		i = (i + 1) & mask
	}
}

func (a *edgeAcc) grow() {
	oldS, oldW, oldL := a.slots, a.w, a.lv
	size := max(16, 2*len(oldS))
	a.slots = make([]uint64, size)
	a.w = make([]int64, size)
	a.lv = make([]int32, size)
	a.n = 0
	// Re-insert without touching order: these keys are already listed.
	mask := uint32(size - 1)
	for i, k := range oldS {
		if k == 0 {
			continue
		}
		j := u64hash(k) & mask
		for a.slots[j] != 0 {
			j = (j + 1) & mask
		}
		a.slots[j] = k
		a.w[j] = oldW[i]
		a.lv[j] = oldL[i]
		a.n++
	}
}

// --- the pooled scratch ----------------------------------------------------

// decodeScratch owns every reusable structure of one decode. It is
// checked out of decodePool for the duration of a query (or held across
// a batch by a Decoder) and reset piecemeal as decode runs.
type decodeScratch struct {
	owners     []*Label
	centers    []*Label
	seenOwner  i32set
	seenCenter i32set
	forbiddenV i32set
	forbiddenE u64set
	best       edgeAcc
	// pb[fi*numLevels+k] is the level-(lowest+k) protected-ball index of
	// center fi — the open-addressing replacement for the per-call
	// map[int32]bool matrix (the "perfect hashing" step of Lemma 2.6).
	pb []i32set
	// ompb[(oi*centers+fi)*numLevels+k] caches mayBeInPB(owner oi,
	// center fi, level lowest+k).
	ompb []bool
	// idOf/ids densely remap the touched global vertex ids.
	idOf i32map
	ids  []int32
	// edges is the deduplicated sketch edge list in deterministic order.
	edges []SketchEdge
	// hpath is path-reconstruction scratch for traced queries.
	hpath  []int32
	solver graph.SketchSolver

	// robust-path scratch (slow path of DistanceRobust).
	vf []*Label
	ef [][2]*Label
}

var (
	decodePoolGets atomic.Int64
	decodePoolNews atomic.Int64

	decodePool = sync.Pool{New: func() any {
		decodePoolNews.Add(1)
		return new(decodeScratch)
	}}
)

func getScratch() *decodeScratch {
	decodePoolGets.Add(1)
	return decodePool.Get().(*decodeScratch)
}

func putScratch(sc *decodeScratch) {
	sc.dropRefs()
	decodePool.Put(sc)
}

// dropRefs clears the label pointers a decode left behind so a pooled
// scratch never pins the previous query's labels in memory. Slices are
// cleared to capacity: some are stored truncated, with stale pointers
// still live in the backing array.
func (sc *decodeScratch) dropRefs() {
	clear(sc.owners[:cap(sc.owners)])
	sc.owners = sc.owners[:0]
	clear(sc.centers[:cap(sc.centers)])
	sc.centers = sc.centers[:0]
	clear(sc.vf[:cap(sc.vf)])
	sc.vf = sc.vf[:0]
	clear(sc.ef[:cap(sc.ef)])
	sc.ef = sc.ef[:0]
}

// DecoderPoolStats reports the global decode-scratch pool counters. Gets
// counts scratch checkouts, News counts checkouts that had to allocate a
// fresh scratch; Gets − News is the number of reuses. Exposed so serving
// layers can report pool effectiveness on their metrics endpoints.
type DecoderPoolStats struct {
	Gets, News int64
}

// DecoderPool returns the current pool counters.
func DecoderPool() DecoderPoolStats {
	return DecoderPoolStats{Gets: decodePoolGets.Load(), News: decodePoolNews.Load()}
}

// Decoder is a reusable query decoder. It checks one scratch out of the
// pool and holds it for its lifetime, so a batch of queries decoded
// through the same Decoder shares a single warmed-up scratch with no
// per-query pool traffic. The zero Decoder is ready to use (it checks
// out lazily). A Decoder is not safe for concurrent use; call Release
// to return the scratch to the pool when the batch is done.
type Decoder struct {
	sc *decodeScratch
}

// NewDecoder checks a scratch out of the pool.
func NewDecoder() *Decoder { return &Decoder{sc: getScratch()} }

// Release returns the scratch to the pool. The Decoder remains usable —
// the next call checks a scratch out again.
func (d *Decoder) Release() {
	if d.sc != nil {
		putScratch(d.sc)
		d.sc = nil
	}
}

func (d *Decoder) scratch() *decodeScratch {
	if d.sc == nil {
		d.sc = getScratch()
	}
	return d.sc
}

// Distance is Query.Distance on this decoder's scratch.
func (d *Decoder) Distance(q *Query) (int64, bool) {
	dist, _, err := d.scratch().decode(q, nil)
	if err != nil || dist < 0 {
		return 0, false
	}
	return dist, true
}

// DistanceWithTrace is Query.DistanceWithTrace on this decoder's scratch.
func (d *Decoder) DistanceWithTrace(q *Query, tr *Trace) (int64, bool) {
	dist, _, err := d.scratch().decode(q, tr)
	if err != nil || dist < 0 {
		return 0, false
	}
	return dist, true
}

// DistanceRobust is Query.DistanceRobust on this decoder's scratch.
func (d *Decoder) DistanceRobust(q *Query) Result {
	return d.scratch().distanceRobust(q)
}
