package core

import (
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
)

// This file holds the pooled decode scratch: every transient structure a
// Query decode needs — dedup sets, sorted forbidden lists, the flat
// candidate accumulator and its radix-sort buffers, the bit-parallel
// protected-ball masks, the dense-id remap and the sketch Dijkstra
// state — owned by one reusable object instead of allocated per call.
// Steady-state decodes are allocation-free: each container grows to the
// largest query seen and is reset with a memclr (or simply
// re-truncated).

// --- open-addressing containers -------------------------------------------

// i32set is an insert-only set of nonnegative int32 keys (vertex ids).
// Slots store key+1 so the zero slot means empty.
type i32set struct {
	slots []int32
	n     int
}

func i32hash(k int32) uint32 { return uint32(uint64(uint32(k)) * 0x9E3779B97F4A7C15 >> 32) }

func (s *i32set) reset() {
	if s.n > 0 {
		clear(s.slots)
		s.n = 0
	}
}

// add inserts k, reporting whether it was absent.
func (s *i32set) add(k int32) bool {
	if 4*(s.n+1) > 3*len(s.slots) {
		s.grow()
	}
	mask := uint32(len(s.slots) - 1)
	i := i32hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			s.slots[i] = k + 1
			s.n++
			return true
		}
		if v == k+1 {
			return false
		}
		i = (i + 1) & mask
	}
}

func (s *i32set) has(k int32) bool {
	if s.n == 0 {
		return false
	}
	mask := uint32(len(s.slots) - 1)
	i := i32hash(k) & mask
	for {
		v := s.slots[i]
		if v == 0 {
			return false
		}
		if v == k+1 {
			return true
		}
		i = (i + 1) & mask
	}
}

func (s *i32set) grow() {
	old := s.slots
	s.slots = make([]int32, max(16, 2*len(old)))
	s.n = 0
	for _, v := range old {
		if v != 0 {
			s.add(v - 1)
		}
	}
}

// i32map maps nonnegative int32 keys to int32 values (the dense-id
// remap). Keys store key+1, zero means empty.
type i32map struct {
	keys []int32
	vals []int32
	n    int
}

func (m *i32map) reset() {
	if m.n > 0 {
		clear(m.keys)
		m.n = 0
	}
}

// getOrPut returns the value of k, inserting v when absent.
func (m *i32map) getOrPut(k, v int32) (int32, bool) {
	if 4*(m.n+1) > 3*len(m.keys) {
		m.grow()
	}
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		kk := m.keys[i]
		if kk == 0 {
			m.keys[i] = k + 1
			m.vals[i] = v
			m.n++
			return v, false
		}
		if kk == k+1 {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// lookup returns the value of k and whether it is present.
func (m *i32map) lookup(k int32) (int32, bool) {
	if m.n == 0 {
		return 0, false
	}
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		kk := m.keys[i]
		if kk == 0 {
			return 0, false
		}
		if kk == k+1 {
			return m.vals[i], true
		}
		i = (i + 1) & mask
	}
}

// get returns the value of k; k must be present.
func (m *i32map) get(k int32) int32 {
	mask := uint32(len(m.keys) - 1)
	i := i32hash(k) & mask
	for {
		if m.keys[i] == k+1 {
			return m.vals[i]
		}
		i = (i + 1) & mask
	}
}

func (m *i32map) grow() {
	oldK, oldV := m.keys, m.vals
	size := max(16, 2*len(oldK))
	m.keys = make([]int32, size)
	m.vals = make([]int32, size)
	m.n = 0
	for i, kk := range oldK {
		if kk != 0 {
			m.getOrPut(kk-1, oldV[i])
		}
	}
}

// --- flat sketch-edge candidates ------------------------------------------

// sketchCand is one admitted sketch-edge candidate: the unordered
// endpoint key (min id in the high word, max in the low word), the edge
// weight and the contributing level. Candidates are appended flat during
// the admission scan and deduplicated afterwards by a stable radix sort
// on the key — stability is what preserves the historical
// first-insertion-wins tie-break among equal-weight parallel edges.
type sketchCand struct {
	key uint64
	w   int32
	lv  int32
}

// sortCandsByKey stably sorts sc.cand by key with LSD counting-sort
// passes, skipping the key bytes that are constant across the whole
// list (for an n-vertex graph only ~2·⌈log256 n⌉ of the 8 bytes vary).
// Both buffers are scratch-owned, so steady-state sorts allocate
// nothing. The sorted list ends up back in sc.cand.
func (sc *decodeScratch) sortCandsByKey() {
	a := sc.cand
	if len(a) < 2 {
		return
	}
	if cap(sc.candTmp) < len(a) {
		sc.candTmp = make([]sketchCand, cap(a))
	}
	b := sc.candTmp[:len(a)]
	var diff uint64
	k0 := a[0].key
	for i := range a {
		diff |= a[i].key ^ k0
	}
	var cnt [256]int32
	for shift := 0; shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		clear(cnt[:])
		for i := range a {
			cnt[(a[i].key>>shift)&0xff]++
		}
		var sum int32
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for i := range a {
			d := (a[i].key >> shift) & 0xff
			b[cnt[d]] = a[i]
			cnt[d]++
		}
		a, b = b, a
	}
	sc.cand, sc.candTmp = a[:len(sc.cand)], b[:0]
}

// sortPairs stably sorts sc.pairs — packed (x<<32 | centerIdx)
// ball-membership pairs — with the same constant-byte-skipping LSD radix
// passes as sortCandsByKey. Only the x half ever varies meaningfully,
// so at most four byte passes run.
func (sc *decodeScratch) sortPairs() {
	a := sc.pairs
	if len(a) < 2 {
		return
	}
	if cap(sc.pairsTmp) < len(a) {
		sc.pairsTmp = make([]uint64, cap(a))
	}
	b := sc.pairsTmp[:len(a)]
	var diff uint64
	k0 := a[0]
	for _, k := range a {
		diff |= k ^ k0
	}
	var cnt [256]int32
	for shift := 0; shift < 64; shift += 8 {
		if (diff>>shift)&0xff == 0 {
			continue
		}
		clear(cnt[:])
		for _, k := range a {
			cnt[(k>>shift)&0xff]++
		}
		var sum int32
		for d := range cnt {
			c := cnt[d]
			cnt[d] = sum
			sum += c
		}
		for _, k := range a {
			d := (k >> shift) & 0xff
			b[cnt[d]] = k
			cnt[d]++
		}
		a, b = b, a
	}
	sc.pairs, sc.pairsTmp = a[:len(sc.pairs)], b[:0]
}

// --- the pooled scratch ----------------------------------------------------

// decodeScratch owns every reusable structure of one decode. It is
// checked out of decodePool for the duration of a query (or held across
// a batch by a Decoder) and reset piecemeal as decode runs.
type decodeScratch struct {
	owners     []*Label
	centers    []*Label
	seenOwner  i32set
	seenCenter i32set
	// fvList / feList are the sorted forbidden vertex ids and forbidden
	// edge keys (labeled and degraded faults together). The admission
	// scan joins them against the sorted label point/edge lists with
	// monotone merge cursors instead of per-candidate hash probes.
	fvList []int32
	feList []uint64
	// forb[i] flags the i-th point of the owner level currently being
	// scanned as a forbidden vertex (filled by merging the level's sorted
	// point list against fvList, cleared after each level).
	forb []bool
	// mask holds the bit-parallel protected-ball membership of the
	// current owner level: mask[i*W+w] has bit b set iff point i lies in
	// PB_ℓ(center 64w+b), with W = ⌈centers/64⌉ words per point. An edge
	// dies iff some center covers both endpoints — one AND per word pair
	// replaces a per-center hash-probe loop.
	mask []uint64
	// ompbW[(oi*numLevels+k)*W+w] is the matching center-bitmask of
	// mayBeInPB(owner oi, center, level lowest+k) certificates: an owner
	// edge to point i dies iff mask[i]&ompbW[row] has a set bit.
	ompbW []uint64
	// maskL/maskR are the single-word fused admission masks of the
	// current owner level (built only when the centers plus two sentinel
	// bits fit one word): maskL[x]&maskR[y] != 0 iff the edge (x,y) must
	// be rejected — some center's ball covers both endpoints, or either
	// endpoint is a forbidden vertex (encoded by the two asymmetric
	// sentinel bits, see fillLR). Collapses the hot net-tier check to one
	// load + AND per edge.
	maskL []uint64
	maskR []uint64
	// cmbX/cmbM/cmbOff hold the per-level combined protected-ball lists:
	// for level index k, cmbX[cmbOff[k]:cmbOff[k+1]] is the sorted set of
	// vertices inside any center's PB, with cmbM[j*W:…] the W-word center
	// bitmask of vertex cmbX[j]. Built once per decode from the sorted
	// pair list (pairs/pairsTmp are the radix buffers), so filling an
	// owner level's masks is a single sorted merge against the combined
	// list instead of one merge per center.
	cmbX     []int32
	cmbM     []uint64
	cmbOff   []int32
	pairs    []uint64
	pairsTmp []uint64
	// cand/candTmp are the flat candidate accumulator and its radix
	// ping-pong buffer.
	cand    []sketchCand
	candTmp []sketchCand
	// idOf/ids densely remap the touched global vertex ids.
	idOf i32map
	ids  []int32
	// edges is the deduplicated sketch edge list in deterministic
	// (ascending unordered-key) order.
	edges []SketchEdge
	// hpath is path-reconstruction scratch for traced/path queries.
	hpath  []int32
	solver graph.SketchSolver

	// robust-path scratch (slow path of DistanceRobust).
	vf []*Label
	ef [][2]*Label
}

var (
	decodePoolGets atomic.Int64
	decodePoolNews atomic.Int64

	decodePool = sync.Pool{New: func() any {
		decodePoolNews.Add(1)
		return new(decodeScratch)
	}}
)

func getScratch() *decodeScratch {
	decodePoolGets.Add(1)
	return decodePool.Get().(*decodeScratch)
}

func putScratch(sc *decodeScratch) {
	sc.dropRefs()
	decodePool.Put(sc)
}

// dropRefs clears the label pointers a decode left behind so a pooled
// scratch never pins the previous query's labels in memory. Slices are
// cleared to capacity: some are stored truncated, with stale pointers
// still live in the backing array.
func (sc *decodeScratch) dropRefs() {
	clear(sc.owners[:cap(sc.owners)])
	sc.owners = sc.owners[:0]
	clear(sc.centers[:cap(sc.centers)])
	sc.centers = sc.centers[:0]
	clear(sc.vf[:cap(sc.vf)])
	sc.vf = sc.vf[:0]
	clear(sc.ef[:cap(sc.ef)])
	sc.ef = sc.ef[:0]
}

// DecoderPoolStats reports the global decode-scratch pool counters. Gets
// counts scratch checkouts, News counts checkouts that had to allocate a
// fresh scratch; Gets − News is the number of reuses. Exposed so serving
// layers can report pool effectiveness on their metrics endpoints.
type DecoderPoolStats struct {
	Gets, News int64
}

// DecoderPool returns the current pool counters.
func DecoderPool() DecoderPoolStats {
	return DecoderPoolStats{Gets: decodePoolGets.Load(), News: decodePoolNews.Load()}
}

// Decoder is a reusable query decoder. It checks one scratch out of the
// pool and holds it for its lifetime, so a batch of queries decoded
// through the same Decoder shares a single warmed-up scratch with no
// per-query pool traffic. The zero Decoder is ready to use (it checks
// out lazily). A Decoder is not safe for concurrent use; call Release
// to return the scratch to the pool when the batch is done.
type Decoder struct {
	sc *decodeScratch
}

// NewDecoder checks a scratch out of the pool.
func NewDecoder() *Decoder { return &Decoder{sc: getScratch()} }

// Release returns the scratch to the pool. The Decoder remains usable —
// the next call checks a scratch out again.
func (d *Decoder) Release() {
	if d.sc != nil {
		putScratch(d.sc)
		d.sc = nil
	}
}

func (d *Decoder) scratch() *decodeScratch {
	if d.sc == nil {
		d.sc = getScratch()
	}
	return d.sc
}

// Distance is Query.Distance on this decoder's scratch.
func (d *Decoder) Distance(q *Query) (int64, bool) {
	dist, _, err := d.scratch().decode(q, nil)
	if err != nil || dist < 0 {
		return 0, false
	}
	return dist, true
}

// DistanceWithTrace is Query.DistanceWithTrace on this decoder's scratch.
func (d *Decoder) DistanceWithTrace(q *Query, tr *Trace) (int64, bool) {
	dist, _, err := d.scratch().decode(q, tr)
	if err != nil || dist < 0 {
		return 0, false
	}
	return dist, true
}

// DecodePath is Distance, additionally reporting the witness path: the
// winning s..t chain of the sketch graph H as global vertex ids
// (net points, plus original-graph vertices at the lowest level). The
// path is appended to buf — callers that reuse a buffer across queries
// decode paths allocation-free. The walk's edge weights sum exactly to
// the returned distance; each hop is realizable in G\F at its weight,
// so the chain is a (1+ε)-approximate corridor, not necessarily an
// exact shortest path of G\F.
func (d *Decoder) DecodePath(q *Query, buf []int32) (int64, []int32, bool) {
	sc := d.scratch()
	dist, _, err := sc.decode(q, nil)
	if err != nil || dist < 0 {
		return 0, buf, false
	}
	return dist, sc.appendHPath(q, buf), true
}

// DistanceRobust is Query.DistanceRobust on this decoder's scratch.
func (d *Decoder) DistanceRobust(q *Query) Result {
	res, _ := d.scratch().distanceRobust(q, nil, false)
	return res
}

// DistanceRobustPath is DistanceRobust, additionally reporting the
// witness path (appended to buf) when the query connects. Degraded
// decodes report the degraded sketch's walk — still a real walk of the
// surviving graph whose length equals Result.Dist.
func (d *Decoder) DistanceRobustPath(q *Query, buf []int32) (Result, []int32) {
	return d.scratch().distanceRobust(q, buf, true)
}
