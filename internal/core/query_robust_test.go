package core

import (
	"math/rand"
	"testing"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

// TestDistanceRobustMatchesDistanceWhenHealthy: with every label usable
// and no budget, DistanceRobust is exactly Distance with Degraded=false.
func TestDistanceRobustMatchesDistanceWhenHealthy(t *testing.T) {
	g := gen.Grid2D(7, 7)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		s, d := rng.Intn(49), rng.Intn(49)
		faults := gen.RandomVertexFaults(g, 3, []int{s, d}, rng)
		q, err := cs.NewQuery(s, d, faults)
		if err != nil {
			t.Fatal(err)
		}
		want, wantOK := q.Distance()
		got := q.DistanceRobust()
		if got.Degraded || got.BudgetExhausted || len(got.MissingFaultLabels) != 0 {
			t.Fatalf("healthy query flagged degraded: %+v", got)
		}
		if got.OK != wantOK || (wantOK && got.Dist != want) {
			t.Fatalf("robust (%d,%d): got %+v, want dist=%d ok=%v", s, d, got, want, wantOK)
		}
	}
}

// TestDegradedModeNeverUnderestimates is the acceptance-criteria safety
// check: with fault labels withheld (simulating loss or corruption), the
// degraded answer never drops below the exact d_{G\F} baseline.
func TestDegradedModeNeverUnderestimates(t *testing.T) {
	g := gen.Grid2D(8, 8)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	answered, degradedAnswered := 0, 0
	for trial := 0; trial < 60; trial++ {
		s, d := rng.Intn(64), rng.Intn(64)
		faults := gen.RandomVertexFaults(g, 4, []int{s, d}, rng)
		fv := faults.Vertices()
		if len(fv) == 0 {
			continue
		}
		truth := g.DistAvoiding(s, d, faults)

		// Withhold the label of one random fault: it is known only by id.
		missing := fv[rng.Intn(len(fv))]
		labeled := graph.NewFaultSet()
		for _, f := range fv {
			if f != missing {
				labeled.AddVertex(f)
			}
		}
		q, err := cs.NewQuery(s, d, labeled)
		if err != nil {
			t.Fatal(err)
		}
		q.DegradedVertexFaults = []int32{int32(missing)}
		res := q.DistanceRobust()
		if !res.Degraded {
			t.Fatalf("missing label not flagged degraded: %+v", res)
		}
		if res.OK {
			answered++
			degradedAnswered++
			if !graph.Reachable(truth) {
				t.Fatalf("(%d,%d,F=%v): degraded answer %d for a disconnected pair",
					s, d, fv, res.Dist)
			}
			if res.Dist < int64(truth) {
				t.Fatalf("(%d,%d,F=%v missing %d): degraded dist %d below true %d",
					s, d, fv, missing, res.Dist, truth)
			}
		}
	}
	// Degraded mode is conservative but must not be vacuous: on a grid
	// with unit edges everywhere it should still answer most queries.
	if degradedAnswered < 20 {
		t.Errorf("degraded mode answered only %d queries — too conservative to be useful", degradedAnswered)
	}
}

// TestDegradedSanitizesCorruptLabels: a fault label failing Validate (or
// carrying mismatched parameters) is demoted to the degraded tier rather
// than failing the query, and is reported in MissingFaultLabels.
func TestDegradedSanitizesCorruptLabels(t *testing.T) {
	g := gen.Grid2D(6, 6)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := graph.NewFaultSet()
	faults.AddVertex(14)
	faults.AddVertex(21)
	q, err := cs.NewQuery(0, 35, faults)
	if err != nil {
		t.Fatal(err)
	}
	truth := g.DistAvoiding(0, 35, faults)

	// Corrupt the label of vertex 14: break its parameter block.
	for i, f := range q.VertexFaults {
		if f.V == 14 {
			bad := *f
			bad.C = f.C + 7
			q.VertexFaults[i] = &bad
		}
	}
	res := q.DistanceRobust()
	if !res.Degraded {
		t.Fatalf("corrupt label not flagged: %+v", res)
	}
	if len(res.MissingFaultLabels) != 1 || res.MissingFaultLabels[0] != 14 {
		t.Fatalf("MissingFaultLabels = %v, want [14]", res.MissingFaultLabels)
	}
	if res.OK && res.Dist < int64(truth) {
		t.Fatalf("degraded dist %d below true %d", res.Dist, truth)
	}
	// The plain strict path must still reject the corrupt query.
	if _, ok := q.Distance(); ok {
		t.Error("strict Distance accepted a corrupt fault label")
	}
}

// TestDegradedEdgeFaults: an edge fault identified only by endpoint ids
// keeps the safety direction.
func TestDegradedEdgeFaults(t *testing.T) {
	g := gen.Path(12)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	faults := graph.NewFaultSet()
	faults.AddEdge(5, 6)
	truth := g.DistAvoiding(0, 11, faults) // disconnected on a path

	q, err := cs.NewQuery(0, 11, graph.NewFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	q.DegradedEdgeFaults = [][2]int32{{5, 6}}
	res := q.DistanceRobust()
	if !res.Degraded {
		t.Fatalf("degraded edge fault not flagged: %+v", res)
	}
	if res.OK && graph.Reachable(truth) && res.Dist < int64(truth) {
		t.Fatalf("degraded dist %d below true %d", res.Dist, truth)
	}
	if res.OK && !graph.Reachable(truth) {
		t.Fatalf("answered %d across a severed path graph", res.Dist)
	}
}

// TestBudgetTruncationIsSafe: a tiny budget may lose precision or
// connectivity but never yields an underestimate, and is reported.
func TestBudgetTruncationIsSafe(t *testing.T) {
	g := gen.Grid2D(7, 7)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(29))
	sawExhausted := false
	for trial := 0; trial < 25; trial++ {
		s, d := rng.Intn(49), rng.Intn(49)
		faults := gen.RandomVertexFaults(g, 2, []int{s, d}, rng)
		truth := g.DistAvoiding(s, d, faults)
		q, err := cs.NewQuery(s, d, faults)
		if err != nil {
			t.Fatal(err)
		}
		q.Budget = 40
		res := q.DistanceRobust()
		if res.BudgetExhausted {
			sawExhausted = true
			if !res.Degraded {
				t.Fatalf("BudgetExhausted without Degraded: %+v", res)
			}
		}
		if res.OK && graph.Reachable(truth) && res.Dist < int64(truth) {
			t.Fatalf("(%d,%d): budgeted dist %d below true %d", s, d, res.Dist, truth)
		}
		if res.OK && !graph.Reachable(truth) {
			t.Fatalf("(%d,%d): answered a disconnected pair", s, d)
		}
	}
	if !sawExhausted {
		t.Error("budget of 40 was never exhausted — test exercises nothing")
	}
}

// TestDistanceRobustRejectsHopeless: nil endpoint labels, nil fault
// labels, and degraded ids naming an endpoint all yield OK=false rather
// than a fabricated number.
func TestDistanceRobustRejectsHopeless(t *testing.T) {
	g := gen.Grid2D(5, 5)
	cs, err := BuildScheme(g, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := cs.NewQuery(0, 24, graph.NewFaultSet())
	if err != nil {
		t.Fatal(err)
	}
	nilS := *q
	nilS.S = nil
	if res := nilS.DistanceRobust(); res.OK {
		t.Error("nil source label answered")
	}
	nilF := *q
	nilF.VertexFaults = []*Label{nil}
	if res := nilF.DistanceRobust(); res.OK {
		t.Error("nil (unidentifiable) fault label answered")
	}
	selfDeg := *q
	selfDeg.DegradedVertexFaults = []int32{0}
	if res := selfDeg.DistanceRobust(); res.OK {
		t.Error("degraded fault naming the source answered")
	}
}
