// Package core implements the paper's primary contribution: the
// forbidden-set (1+ε)-approximate distance labeling scheme for unweighted
// graphs of bounded doubling dimension (Abraham, Chechik, Gavoille, Peleg;
// PODC 2010 / ACM TALG 2016, Theorem 2.1), together with the failure-free
// scheme of Section 2.1 used as an overview and baseline.
//
// The label L(v) of a vertex v consists of one level-ℓ graph per level
// ℓ ∈ I = {c+1, …, L}: the net points of N_{ℓ-c-1} within distance r_ℓ of v
// (with their exact distances from v) and all "short" edges — net-point
// pairs at graph distance ≤ λ_ℓ — between them, weighted by exact graph
// distance. The lowest level ℓ = c+1 instead stores the original unit-weight
// graph edges inside the ball. A query (s,t,F) assembles a sketch graph H
// from the labels of s, t and all faults, keeps only safe edges (edges not
// inside any protected ball PB_ℓ(f) = B(f, λ_ℓ)), and runs Dijkstra.
package core

import (
	"fmt"
	"math"

	"fsdl/internal/nets"
)

// Params carries the scheme's derived parameters, following the paper
// exactly: c = max(⌈log₂(6/ε)⌉, 2), ρ_i = 2^{i-c}, λ_i = 2^{i+1},
// μ_i = ρ_i + λ_i, r_i = μ_{i+1} + 2^i + ρ_{i+1}.
type Params struct {
	// Epsilon is the precision parameter; queries return distances within
	// a factor 1+ε of the true surviving distance.
	Epsilon float64
	// C is the paper's constant c ≥ 2.
	C int
	// MaxLevel is L, the index of the highest level. Levels range over
	// I = {C+1, …, MaxLevel}; L = max(⌈log₂ n⌉, C+1) so that I is never
	// empty and the top-level ball covers the whole graph.
	MaxLevel int
	// NumVertices is the n the parameters were derived for.
	NumVertices int
	// RShrink is an ablation knob: the label ball radius r_i is halved
	// RShrink times below the paper's value (but never below λ_i + 1,
	// which the decoder's protected-ball membership test needs). 0 is the
	// paper's setting; positive values shrink labels below what the
	// stretch proof requires, so the (1+ε) guarantee may fail — that is
	// the point of the ablation experiment. Safety (estimates never below
	// the true distance) is preserved at any setting.
	RShrink int
}

// NewParams derives the scheme parameters for an n-vertex graph at
// precision ε. ε must be positive; values above 6 are allowed (c clamps
// at 2, so precision never degrades past c = 2).
func NewParams(epsilon float64, n int) (Params, error) {
	if epsilon <= 0 {
		return Params{}, fmt.Errorf("core: epsilon must be positive, got %g", epsilon)
	}
	if n < 0 {
		return Params{}, fmt.Errorf("core: negative vertex count %d", n)
	}
	c := 2
	if need := int(math.Ceil(math.Log2(6 / epsilon))); need > c {
		c = need
	}
	l := nets.NumLevels(n) - 1 // ⌈log₂ n⌉
	if l < c+1 {
		l = c + 1
	}
	return Params{Epsilon: epsilon, C: c, MaxLevel: l, NumVertices: n}, nil
}

// LowestLevel returns c+1, the first level of the range I.
func (p Params) LowestLevel() int { return p.C + 1 }

// NumLevelRange returns |I|, the number of levels stored per label.
func (p Params) NumLevelRange() int { return p.MaxLevel - p.C }

// Rho returns ρ_i = 2^{i-c}, the domination radius of the net used one
// level up. Defined for i ≥ C.
func (p Params) Rho(i int) int32 { return 1 << uint(i-p.C) }

// Lambda returns λ_i = 2^{i+1}, the maximum length of edges stored at
// level i, which is also the protected-ball radius at level i.
func (p Params) Lambda(i int) int32 { return 1 << uint(i+1) }

// Mu returns μ_i = ρ_i + λ_i, the fault-distance threshold that decides a
// vertex's level i(v).
func (p Params) Mu(i int) int32 { return p.Rho(i) + p.Lambda(i) }

// R returns r_i = μ_{i+1} + 2^i + ρ_{i+1}, the label ball radius at level
// i (halved RShrink times for ablation runs, floored at λ_i + 1).
func (p Params) R(i int) int32 {
	r := p.Mu(i+1) + 1<<uint(i) + p.Rho(i+1)
	if p.RShrink > 0 {
		r >>= uint(p.RShrink)
		if min := p.Lambda(i) + 1; r < min {
			r = min
		}
	}
	return r
}

// NetLevel returns the net hierarchy level whose points are stored at
// scheme level i, namely i−c−1.
func (p Params) NetLevel(i int) int { return i - p.C - 1 }

// Validate checks the internal consistency constraints the correctness
// proof relies on (Claim 1(a): λ_i ≥ ρ_i + ρ_{i+1} + 2^i, and r_i > λ_i).
func (p Params) Validate() error {
	if p.C < 2 {
		return fmt.Errorf("core: c = %d < 2", p.C)
	}
	if p.MaxLevel < p.C+1 {
		return fmt.Errorf("core: max level %d < c+1 = %d", p.MaxLevel, p.C+1)
	}
	for i := p.LowestLevel(); i <= p.MaxLevel; i++ {
		if p.Lambda(i) < p.Rho(i)+p.Rho(i+1)+1<<uint(i) {
			return fmt.Errorf("core: claim 1(a) fails at level %d", i)
		}
		if p.R(i) <= p.Lambda(i) {
			return fmt.Errorf("core: r_%d = %d <= lambda_%d = %d", i, p.R(i), i, p.Lambda(i))
		}
	}
	return nil
}
