package core

import (
	"testing"

	"fsdl/internal/graph"
)

// FuzzDecodeLabel asserts DecodeLabel never panics on arbitrary input and
// that valid labels round-trip through a decode→encode→decode cycle.
func FuzzDecodeLabel(f *testing.F) {
	// Seed with real labels of a small grid and a path.
	g := gridGraphF(6, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		f.Fatal(err)
	}
	for _, v := range []int{0, 7, 29} {
		buf, nbits := s.Label(v).Encode()
		f.Add(buf, nbits)
	}
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0x00, 0xff}, 24)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > 8*len(data) {
			nbits = 8 * len(data)
		}
		l, err := DecodeLabel(data, nbits)
		if err != nil {
			return // malformed input rejected cleanly — fine
		}
		// A successfully decoded label must re-encode and decode to an
		// equivalent label.
		buf2, n2 := l.Encode()
		l2, err := DecodeLabel(buf2, n2)
		if err != nil {
			t.Fatalf("re-decode of re-encoded label failed: %v", err)
		}
		if l2.V != l.V || l2.C != l.C || l2.MaxLevel != l.MaxLevel || len(l2.Levels) != len(l.Levels) {
			t.Fatal("re-encoded label differs structurally")
		}
		for k := range l.Levels {
			if len(l2.Levels[k].Points) != len(l.Levels[k].Points) ||
				len(l2.Levels[k].Edges) != len(l.Levels[k].Edges) {
				t.Fatalf("level %d size mismatch after round trip", k)
			}
		}
	})
}

// FuzzDecodeFFLabel mirrors FuzzDecodeLabel for the failure-free labels.
func FuzzDecodeFFLabel(f *testing.F) {
	g := gridGraphF(5, 5)
	s, err := BuildFFScheme(g, 0.5)
	if err != nil {
		f.Fatal(err)
	}
	for _, v := range []int{0, 12, 24} {
		buf, nbits := s.Label(v).Encode()
		f.Add(buf, nbits)
	}
	f.Add([]byte{0x80}, 8)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > 8*len(data) {
			nbits = 8 * len(data)
		}
		l, err := DecodeFFLabel(data, nbits)
		if err != nil {
			return
		}
		buf2, n2 := l.Encode()
		if _, err := DecodeFFLabel(buf2, n2); err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
	})
}

// FuzzQueryDistance drives the decoder with decoded-from-bytes labels; it
// must never panic regardless of label content mutations.
func FuzzQueryDistance(f *testing.F) {
	g := gridGraphF(5, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		f.Fatal(err)
	}
	bufS, nS := s.Label(0).Encode()
	bufT, nT := s.Label(24).Encode()
	bufF, nF := s.Label(12).Encode()
	f.Add(bufS, nS, bufT, nT, bufF, nF)
	f.Fuzz(func(t *testing.T, ds []byte, ns int, dt []byte, nt int, df []byte, nf int) {
		clamp := func(n, limit int) int {
			if n < 0 || n > limit {
				return limit
			}
			return n
		}
		ls, err := DecodeLabel(ds, clamp(ns, 8*len(ds)))
		if err != nil {
			return
		}
		lt, err := DecodeLabel(dt, clamp(nt, 8*len(dt)))
		if err != nil {
			return
		}
		lf, err := DecodeLabel(df, clamp(nf, 8*len(df)))
		if err != nil {
			return
		}
		q := &Query{S: ls, T: lt, VertexFaults: []*Label{lf}}
		q.Distance() // must not panic; the answer is unspecified for corrupt labels
	})
}

// FuzzDecodePath feeds the path-reporting decoder the same corrupt-label
// space as FuzzQueryDistance: it must never panic, and whatever it
// answers must agree with the plain decode on the same query — the two
// share the CSR scratch pipeline, so any divergence is a decoder bug
// even on garbage input.
func FuzzDecodePath(f *testing.F) {
	g := gridGraphF(5, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		f.Fatal(err)
	}
	bufS, nS := s.Label(0).Encode()
	bufT, nT := s.Label(24).Encode()
	bufF, nF := s.Label(12).Encode()
	f.Add(bufS, nS, bufT, nT, bufF, nF)
	f.Fuzz(func(t *testing.T, ds []byte, ns int, dt []byte, nt int, df []byte, nf int) {
		clamp := func(n, limit int) int {
			if n < 0 || n > limit {
				return limit
			}
			return n
		}
		ls, err := DecodeLabel(ds, clamp(ns, 8*len(ds)))
		if err != nil {
			return
		}
		lt, err := DecodeLabel(dt, clamp(nt, 8*len(dt)))
		if err != nil {
			return
		}
		lf, err := DecodeLabel(df, clamp(nf, 8*len(df)))
		if err != nil {
			return
		}
		q := &Query{S: ls, T: lt, VertexFaults: []*Label{lf}}
		var dec Decoder
		defer dec.Release()
		d, path, ok := dec.DecodePath(q, nil)
		wd, wok := q.Distance()
		if ok != wok || (ok && d != wd) {
			t.Fatalf("DecodePath (%d,%v) disagrees with Distance (%d,%v)", d, ok, wd, wok)
		}
		if !ok && len(path) != 0 {
			t.Fatalf("disconnected answer carries a path of %d hops", len(path))
		}
		if ok && (int64(len(path)) > d+1 || len(path) < 1) {
			t.Fatalf("path length %d inconsistent with distance %d", len(path), d)
		}
	})
}

// gridGraphF builds a grid without a testing.T (fuzz seeds run outside a
// test context).
func gridGraphF(w, h int) *graph.Graph {
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}
