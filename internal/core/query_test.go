package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/graph"
)

// checkQuery runs a forbidden-set query and verifies the two-sided
// guarantee against exact recomputation: d_{G\F} ≤ δ ≤ (1+ε)·d_{G\F}, and
// ok ⟺ connected in G\F. Returns the stretch achieved (1 when
// disconnected).
func checkQuery(t *testing.T, g *graph.Graph, s *Scheme, src, dst int, f *graph.FaultSet) float64 {
	t.Helper()
	want := g.DistAvoiding(src, dst, f)
	got, ok := s.Distance(src, dst, f)
	if !graph.Reachable(want) {
		if ok {
			t.Fatalf("query (%d,%d,|F|=%d): reported %d but truly disconnected", src, dst, f.Size(), got)
		}
		return 1
	}
	if !ok {
		t.Fatalf("query (%d,%d,|F|=%d): reported disconnected, true distance %d", src, dst, f.Size(), want)
	}
	if got < int64(want) {
		t.Fatalf("query (%d,%d,|F|=%d): estimate %d below true distance %d (safety violated)",
			src, dst, f.Size(), got, want)
	}
	eps := s.Params().Epsilon
	if want > 0 && float64(got) > (1+eps)*float64(want)+1e-9 {
		t.Fatalf("query (%d,%d,|F|=%d): estimate %d exceeds (1+%g)·%d (stretch violated)",
			src, dst, f.Size(), got, eps, want)
	}
	if want == 0 {
		if got != 0 {
			t.Fatalf("query (%d,%d): same vertex must give 0, got %d", src, dst, got)
		}
		return 1
	}
	return float64(got) / float64(want)
}

func TestQueryNoFaultsExactSmallGraph(t *testing.T) {
	g := gridGraph(t, 6, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 30; src += 3 {
		for dst := 0; dst < 30; dst += 4 {
			checkQuery(t, g, s, src, dst, nil)
		}
	}
}

func TestQuerySameVertex(t *testing.T) {
	g := pathGraph(t, 10)
	s, _ := BuildScheme(g, 2)
	if d, ok := s.Distance(4, 4, nil); !ok || d != 0 {
		t.Errorf("Distance(v,v) = (%d,%v), want (0,true)", d, ok)
	}
	f := graph.FaultVertices(3, 5)
	if d, ok := s.Distance(4, 4, f); !ok || d != 0 {
		t.Errorf("Distance(v,v,F) = (%d,%v), want (0,true)", d, ok)
	}
}

func TestQueryEndpointForbidden(t *testing.T) {
	g := pathGraph(t, 10)
	s, _ := BuildScheme(g, 2)
	if _, err := s.NewQuery(3, 7, graph.FaultVertices(3)); err == nil {
		t.Error("forbidden source should be rejected")
	}
	if _, err := s.NewQuery(3, 7, graph.FaultVertices(7)); err == nil {
		t.Error("forbidden target should be rejected")
	}
	if _, ok := s.Distance(3, 7, graph.FaultVertices(7)); ok {
		t.Error("Distance with forbidden endpoint must report not-ok")
	}
}

func TestQueryVertexFaultOnPath(t *testing.T) {
	// On a path, cutting any middle vertex disconnects the endpoints.
	g := pathGraph(t, 20)
	s, _ := BuildScheme(g, 2)
	if _, ok := s.Distance(0, 19, graph.FaultVertices(10)); ok {
		t.Error("path cut must disconnect")
	}
	// Cutting a vertex outside the s-t segment changes nothing.
	checkQuery(t, g, s, 5, 9, graph.FaultVertices(15))
}

func TestQueryDetourOnGrid(t *testing.T) {
	// 9x9 grid, cut the middle column except the top row: the (0,4)-(8,4)
	// query must detour over the top.
	w, h := 9, 9
	g := gridGraph(t, w, h)
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	for y := 1; y < h; y++ {
		f.AddVertex(y*w + 4)
	}
	src, dst := 4*w+0, 4*w+8
	stretch := checkQuery(t, g, s, src, dst, f)
	if stretch < 1 {
		t.Fatalf("impossible stretch %f", stretch)
	}
}

func TestQueryEdgeFaults(t *testing.T) {
	// C8: cutting one edge forces the long way around.
	b := graph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	g := b.MustBuild()
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	f.AddEdge(0, 1)
	checkQuery(t, g, s, 0, 1, f) // true distance 7
	checkQuery(t, g, s, 0, 4, f) // unchanged distance 4
	// Cutting a bridge disconnects.
	p := pathGraph(t, 12)
	sp, _ := BuildScheme(p, 2)
	fb := graph.NewFaultSet()
	fb.AddEdge(5, 6)
	if _, ok := sp.Distance(0, 11, fb); ok {
		t.Error("bridge cut must disconnect")
	}
	checkQuery(t, p, sp, 0, 5, fb)
}

func TestQueryMixedVertexAndEdgeFaults(t *testing.T) {
	g := gridGraph(t, 7, 7)
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	f.AddVertex(24) // center
	f.AddEdge(0, 1)
	f.AddEdge(7, 8)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		src, dst := rng.Intn(49), rng.Intn(49)
		if f.HasVertex(src) || f.HasVertex(dst) {
			continue
		}
		checkQuery(t, g, s, src, dst, f)
	}
}

func TestQueryRejectsNonEdgeFault(t *testing.T) {
	g := pathGraph(t, 10)
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	f.AddEdge(0, 5) // not an edge of the path
	if _, err := s.NewQuery(0, 9, f); err == nil {
		t.Error("non-edge fault should be rejected")
	}
}

func TestQueryFaultsAdjacentToEndpoints(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	// Surround s with faults except one escape route.
	src := 0 // corner (0,0); neighbors 1 and 8
	f := graph.FaultVertices(8)
	checkQuery(t, g, s, src, 63, f)
	f2 := graph.FaultVertices(1, 8) // both neighbors: disconnected
	if _, ok := s.Distance(src, 63, f2); ok {
		t.Error("sealed corner must be disconnected")
	}
}

func TestQueryFaultClusterNearMiddle(t *testing.T) {
	w, h := 10, 10
	g := gridGraph(t, w, h)
	s, _ := BuildScheme(g, 2)
	f := graph.NewFaultSet()
	for _, v := range []int{44, 45, 54, 55, 34, 35} {
		f.AddVertex(v)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		src, dst := rng.Intn(100), rng.Intn(100)
		if f.HasVertex(src) || f.HasVertex(dst) {
			continue
		}
		checkQuery(t, g, s, src, dst, f)
	}
}

// The safety lemma (Lemma 2.3): every edge of the sketch graph H is
// realizable in G\F at exactly its weight.
func TestSketchEdgesAreSafe(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(27, 36, 12)
	q, err := s.NewQuery(0, 63, f)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := q.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	if len(edges) == 0 {
		t.Fatal("sketch has no edges")
	}
	for _, e := range edges {
		d := g.DistAvoiding(int(e.X), int(e.Y), f)
		if !graph.Reachable(d) {
			t.Fatalf("sketch edge (%d,%d,w=%d) joins vertices disconnected in G\\F", e.X, e.Y, e.W)
		}
		if int64(d) != e.W {
			t.Fatalf("sketch edge (%d,%d): weight %d, d_{G\\F} = %d", e.X, e.Y, e.W, d)
		}
	}
}

func TestSketchContainsNoForbiddenVertex(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(27, 36)
	q, _ := s.NewQuery(0, 63, f)
	edges, err := q.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range edges {
		if f.HasVertex(int(e.X)) || f.HasVertex(int(e.Y)) {
			t.Fatalf("sketch edge (%d,%d) touches a forbidden vertex", e.X, e.Y)
		}
	}
}

func TestQueryTraceConsistent(t *testing.T) {
	g := gridGraph(t, 9, 9)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(40)
	q, _ := s.NewQuery(0, 80, f)
	var tr Trace
	d, ok := q.DistanceWithTrace(&tr)
	if !ok {
		t.Fatal("expected connected")
	}
	if len(tr.Path) < 2 || tr.Path[0] != 0 || tr.Path[len(tr.Path)-1] != 80 {
		t.Fatalf("trace path endpoints wrong: %v", tr.Path)
	}
	var sum int64
	for _, w := range tr.PathWeights {
		sum += w
	}
	if sum != d {
		t.Fatalf("trace path weight %d != reported distance %d", sum, d)
	}
	if tr.NumHVertices <= 0 || tr.NumHEdges <= 0 {
		t.Fatal("trace missing sketch dimensions")
	}
	admitted := 0
	for _, a := range tr.AdmittedPerLevel {
		admitted += a
	}
	if admitted == 0 {
		t.Fatal("no admitted edges recorded")
	}
}

// The decoder must answer from labels alone: serialize all labels, decode
// them into fresh objects, and verify the answer matches.
func TestQueryFromSerializedLabelsOnly(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s, _ := BuildScheme(g, 2)
	f := graph.FaultVertices(27, 36)
	reload := func(v int) *Label {
		buf, n := s.Label(v).Encode()
		l, err := DecodeLabel(buf, n)
		if err != nil {
			t.Fatalf("round trip label %d: %v", v, err)
		}
		return l
	}
	q := &Query{
		S:            reload(0),
		T:            reload(63),
		VertexFaults: []*Label{reload(27), reload(36)},
	}
	gotSer, okSer := q.Distance()
	gotDirect, okDirect := s.Distance(0, 63, f)
	if okSer != okDirect || gotSer != gotDirect {
		t.Fatalf("serialized-label query = (%d,%v), direct = (%d,%v)",
			gotSer, okSer, gotDirect, okDirect)
	}
}

func TestQueryValidateMismatchedParams(t *testing.T) {
	g := pathGraph(t, 16)
	s1, _ := BuildScheme(g, 2)
	s05, _ := BuildScheme(g, 0.5)
	q := &Query{S: s1.Label(0), T: s05.Label(15)}
	if err := q.Validate(); err == nil {
		t.Error("mismatched scheme parameters must be rejected")
	}
	if _, ok := q.Distance(); ok {
		t.Error("mismatched query must not answer")
	}
}

func TestQueryManyFaults(t *testing.T) {
	w, h := 11, 11
	g := gridGraph(t, w, h)
	s, _ := BuildScheme(g, 2)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 15; trial++ {
		f := graph.NewFaultSet()
		for len(f.Vertices()) < 12 {
			f.AddVertex(rng.Intn(w * h))
		}
		src, dst := rng.Intn(w*h), rng.Intn(w*h)
		if f.HasVertex(src) || f.HasVertex(dst) {
			continue
		}
		checkQuery(t, g, s, src, dst, f)
	}
}

// Property test: on random connected graphs with random fault sets, the
// two-sided guarantee holds for random queries.
func TestQueryGuaranteeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("property test is slow")
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		g := randomConnected(t, n, rng.Intn(n), rng)
		eps := []float64{1.5, 2, 3}[rng.Intn(3)]
		s, err := BuildScheme(g, eps)
		if err != nil {
			return false
		}
		for trial := 0; trial < 5; trial++ {
			f := graph.NewFaultSet()
			for i := 0; i < rng.Intn(5); i++ {
				f.AddVertex(rng.Intn(n))
			}
			src, dst := rng.Intn(n), rng.Intn(n)
			if f.HasVertex(src) || f.HasVertex(dst) {
				continue
			}
			want := g.DistAvoiding(src, dst, f)
			got, ok := s.Distance(src, dst, f)
			if !graph.Reachable(want) {
				if ok {
					return false
				}
				continue
			}
			if !ok || got < int64(want) {
				return false
			}
			if float64(got) > (1+eps)*float64(want)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestQueryOnDisconnectedGraph(t *testing.T) {
	b := graph.NewBuilder(12)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(6+i, 6+i+1)
	}
	g := b.MustBuild()
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Distance(0, 8, nil); ok {
		t.Error("cross-component query must be disconnected")
	}
	checkQuery(t, g, s, 0, 5, nil)
	checkQuery(t, g, s, 6, 11, graph.FaultVertices(0))
}

func TestQueryTinyGraphs(t *testing.T) {
	// n = 1.
	g1 := graph.NewBuilder(1).MustBuild()
	s1, err := BuildScheme(g1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s1.Distance(0, 0, nil); !ok || d != 0 {
		t.Errorf("singleton self-distance = (%d,%v)", d, ok)
	}
	// n = 2.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	g2 := b.MustBuild()
	s2, _ := BuildScheme(g2, 2)
	if d, ok := s2.Distance(0, 1, nil); !ok || d != 1 {
		t.Errorf("K2 distance = (%d,%v), want (1,true)", d, ok)
	}
	f := graph.NewFaultSet()
	f.AddEdge(0, 1)
	if _, ok := s2.Distance(0, 1, f); ok {
		t.Error("K2 with cut edge must disconnect")
	}
}

func TestStretchNeverBelowOne(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := gridGraph(t, 9, 9)
	s, _ := BuildScheme(g, 3)
	for trial := 0; trial < 50; trial++ {
		src, dst := rng.Intn(81), rng.Intn(81)
		f := graph.FaultVertices(rng.Intn(81))
		if f.HasVertex(src) || f.HasVertex(dst) {
			continue
		}
		stretch := checkQuery(t, g, s, src, dst, f)
		if stretch < 1-1e-12 {
			t.Fatalf("stretch %f < 1", stretch)
		}
	}
}

// Exhaustive miniature verification: on a small graph, every (s,t) pair ×
// every single edge fault × every single vertex fault is checked against
// exact recomputation. Slow but total: ~n²·(n+m) queries.
func TestExhaustiveSingleFaultTinyGraph(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive check is slow")
	}
	g := gridGraph(t, 4, 4)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	s.SetCacheLimit(64)
	n := g.NumVertices()
	var edges [][2]int
	g.ForEachEdge(func(u, v int) { edges = append(edges, [2]int{u, v}) })
	for src := 0; src < n; src++ {
		for dst := src + 1; dst < n; dst++ {
			for fv := 0; fv < n; fv++ {
				if fv == src || fv == dst {
					continue
				}
				checkQuery(t, g, s, src, dst, graph.FaultVertices(fv))
			}
			for _, e := range edges {
				f := graph.NewFaultSet()
				f.AddEdge(e[0], e[1])
				checkQuery(t, g, s, src, dst, f)
			}
		}
	}
}

// Exhaustive pair coverage with a fixed 2-fault set on a slightly larger
// graph.
func TestExhaustivePairsFixedFaults(t *testing.T) {
	g := gridGraph(t, 5, 5)
	s, err := BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.FaultVertices(12, 7)
	for src := 0; src < 25; src++ {
		for dst := 0; dst < 25; dst++ {
			if f.HasVertex(src) || f.HasVertex(dst) {
				continue
			}
			checkQuery(t, g, s, src, dst, f)
		}
	}
}
