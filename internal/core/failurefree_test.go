package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/graph"
)

func checkFFQuery(t *testing.T, g *graph.Graph, s *FFScheme, src, dst int) float64 {
	t.Helper()
	want := g.Dist(src, dst)
	got, ok := FFDistance(s.Label(src), s.Label(dst))
	if !graph.Reachable(want) {
		if ok {
			t.Fatalf("ff query (%d,%d): reported %d but disconnected", src, dst, got)
		}
		return 1
	}
	if !ok {
		t.Fatalf("ff query (%d,%d): reported disconnected, want %d", src, dst, want)
	}
	if got < int64(want) {
		t.Fatalf("ff query (%d,%d): %d below true %d", src, dst, got, want)
	}
	if want > 0 && float64(got) > (1+s.Epsilon())*float64(want)+1e-9 {
		t.Fatalf("ff query (%d,%d): %d exceeds (1+%g)·%d", src, dst, got, s.Epsilon(), want)
	}
	if want == 0 {
		return 1
	}
	return float64(got) / float64(want)
}

func TestFFSchemeGrid(t *testing.T) {
	g := gridGraph(t, 9, 8)
	s, err := BuildFFScheme(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for src := 0; src < 72; src += 5 {
		for dst := 0; dst < 72; dst += 7 {
			checkFFQuery(t, g, s, src, dst)
		}
	}
}

func TestFFSchemePathExactishForTinyEps(t *testing.T) {
	g := pathGraph(t, 64)
	s, err := BuildFFScheme(g, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		checkFFQuery(t, g, s, rng.Intn(64), rng.Intn(64))
	}
}

func TestFFSchemeDisconnected(t *testing.T) {
	b := graph.NewBuilder(10)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	s, _ := BuildFFScheme(g, 1)
	if _, ok := FFDistance(s.Label(0), s.Label(3)); ok {
		t.Error("cross-component ff query must fail")
	}
	checkFFQuery(t, g, s, 0, 1)
}

func TestFFSchemeSameVertex(t *testing.T) {
	g := pathGraph(t, 5)
	s, _ := BuildFFScheme(g, 1)
	if d, ok := FFDistance(s.Label(2), s.Label(2)); !ok || d != 0 {
		t.Errorf("self distance = (%d,%v), want (0,true)", d, ok)
	}
}

func TestFFSchemeRejectsBadEpsilon(t *testing.T) {
	g := pathGraph(t, 5)
	if _, err := BuildFFScheme(g, 0); err == nil {
		t.Error("eps=0 should fail")
	}
}

func TestFFLabelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(t, 70, 90, rng)
	s, _ := BuildFFScheme(g, 0.5)
	for _, v := range []int{0, 35, 69} {
		l := s.Label(v)
		buf, nbits := l.Encode()
		if nbits != s.LabelBits(v) {
			t.Fatalf("LabelBits mismatch for %d", v)
		}
		got, err := DecodeFFLabel(buf, nbits)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if got.V != l.V || got.C != l.C || got.MaxLevel != l.MaxLevel {
			t.Fatal("header mismatch")
		}
		if len(got.Levels) != len(l.Levels) {
			t.Fatalf("level count %d -> %d", len(l.Levels), len(got.Levels))
		}
		for k := range l.Levels {
			if len(got.Levels[k]) != len(l.Levels[k]) {
				t.Fatalf("level %d size mismatch", k)
			}
			for i := range l.Levels[k] {
				if got.Levels[k][i] != l.Levels[k][i] {
					t.Fatalf("level %d point %d mismatch", k, i)
				}
			}
		}
	}
}

func TestFFMismatchedSchemes(t *testing.T) {
	g := pathGraph(t, 32)
	s1, _ := BuildFFScheme(g, 0.5)
	s2, _ := BuildFFScheme(g, 4)
	if _, ok := FFDistance(s1.Label(0), s2.Label(31)); ok {
		t.Error("mismatched ff labels must not answer")
	}
}

// FF labels are much smaller than forbidden-set labels: the price of fault
// tolerance (edges between net points) is real.
func TestFFLabelsSmallerThanFSLabels(t *testing.T) {
	g := gridGraph(t, 10, 10)
	ff, _ := BuildFFScheme(g, 1.5)
	fs, _ := BuildScheme(g, 1.5)
	v := 55
	if ffBits, fsBits := ff.LabelBits(v), fs.LabelBits(v); ffBits >= fsBits {
		t.Errorf("ff label %d bits >= fs label %d bits", ffBits, fsBits)
	}
}

// Property: stretch bound on random graphs and precisions.
func TestFFStretchProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		g := randomConnected(t, n, rng.Intn(n), rng)
		eps := []float64{0.25, 0.5, 1, 2}[rng.Intn(4)]
		s, err := BuildFFScheme(g, eps)
		if err != nil {
			return false
		}
		for trial := 0; trial < 8; trial++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			want := g.Dist(src, dst)
			got, ok := FFDistance(s.Label(src), s.Label(dst))
			if !ok || got < int64(want) {
				return false
			}
			if want > 0 && float64(got) > (1+eps)*float64(want)+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
