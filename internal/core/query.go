package core

import (
	"fmt"
	"slices"

	"fsdl/internal/graph"
)

// Query is a forbidden-set distance query (s, t, F), holding nothing but
// labels — decoding reads no global state, which is the distributed
// data-structure contract of the paper: the answer is computed from
// L(s), L(t) and {L(f) : f ∈ F} alone.
type Query struct {
	// S and T are the labels of the query endpoints.
	S, T *Label
	// VertexFaults are the labels of forbidden vertices.
	VertexFaults []*Label
	// EdgeFaults are the label pairs (L(a), L(b)) of forbidden edges
	// (a,b); per the paper, a forbidden edge is specified by the labels of
	// its two endpoints.
	EdgeFaults [][2]*Label
	// UnsafeIgnoreProtectedBalls is an ablation knob: it disables the
	// protected-ball filter of Lemma 2.3, admitting every stored edge
	// whose endpoints are not themselves forbidden. The resulting sketch
	// can contain edges whose underlying shortest paths run through
	// faults, so estimates may drop below the true surviving distance —
	// the ablation experiment measures exactly how often. Never set this
	// outside experiments.
	UnsafeIgnoreProtectedBalls bool

	// Budget caps the number of candidate sketch edges decode examines
	// (≤ 0 means unlimited). When the budget runs out the remaining
	// candidates are simply not admitted, so H shrinks: the estimate stays
	// an upper bound on d_{G\F} (safety is one-sided — omitting edges can
	// only lengthen paths), but it may exceed (1+ε)·d or report
	// disconnection spuriously. DistanceRobust surfaces the truncation via
	// Result.BudgetExhausted; Distance simply reports ok=false when the
	// truncated sketch disconnects s from t.
	Budget int
	// DegradedVertexFaults are forbidden vertices for which no usable
	// label is available (missing from the store, failed Validate, or
	// corrupt on the wire), identified by vertex id alone. The decoder
	// treats each one's protected balls as maximal: every net-level and
	// owner-ball edge is rejected, and only lowest-level unit edges whose
	// endpoints avoid all forbidden vertices survive — each such edge
	// exists verbatim in G\F, so the estimate remains an upper bound on
	// d_{G\F} (the paper's safety direction) at the cost of stretch.
	DegradedVertexFaults []int32
	// DegradedEdgeFaults are forbidden edges (a,b) with at least one
	// unusable endpoint label, identified by the endpoint vertex ids. Same
	// maximal-protected-ball treatment as DegradedVertexFaults; the edge
	// itself is additionally excluded from the unit-edge tier.
	DegradedEdgeFaults [][2]int32
}

// Result is the outcome of a robust (degradation-tolerant) query.
type Result struct {
	// Dist is an upper bound on d_{G\F}(s,t); exact to within the scheme's
	// (1+ε) stretch when Degraded is false. Meaningful only when OK.
	Dist int64
	// OK reports whether a finite bound was produced. False means the
	// (possibly degraded or truncated) sketch disconnects s from t — under
	// degradation this no longer certifies true disconnection.
	OK bool
	// Degraded is true when the answer was computed conservatively: some
	// fault labels were unusable or the work budget was exhausted. The
	// safety direction δ ≥ d_{G\F} still holds; the stretch bound may not.
	Degraded bool
	// MissingFaultLabels lists the forbidden vertices whose labels were
	// missing or failed validation (sorted).
	MissingFaultLabels []int32
	// BudgetExhausted is true when Query.Budget truncated the sketch.
	BudgetExhausted bool
}

// SketchEdge is one edge of the query-time sketch graph H, reported by
// Sketch for tests and traces. X, Y are global vertex ids; W is the edge
// weight (an exact G-distance); Level is the scheme level that contributed
// the edge.
type SketchEdge struct {
	X, Y  int32
	W     int64
	Level int
}

// Trace records how a query was answered, used by the Figure-1/Claim-2
// experiment (E8) and for debugging.
type Trace struct {
	// NumHVertices and NumHEdges are the sketch graph dimensions (after
	// deduplication).
	NumHVertices, NumHEdges int
	// AdmittedPerLevel and RejectedPerLevel count candidate edges per
	// scheme level (index 0 ↔ level c+1).
	AdmittedPerLevel, RejectedPerLevel []int
	// Path is the winning sketch path as global vertex ids (s..t), with
	// PathWeights the corresponding edge weights. Empty when disconnected.
	Path        []int32
	PathWeights []int64
}

// Distance decodes the query: it assembles the sketch graph H from the
// labels, keeping only safe edges, and returns the s-t distance in H.
// ok is false when no path exists, which (by the scheme's safety and
// stretch guarantees) happens exactly when s and t are disconnected in
// G\F. Decoding borrows a pooled scratch, so steady-state calls are
// allocation-free; batch callers that want to pin one scratch across
// many queries should use a Decoder instead.
func (q *Query) Distance() (int64, bool) {
	sc := getScratch()
	d, _, err := sc.decode(q, nil)
	putScratch(sc)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// DistanceWithTrace is Distance, additionally filling tr with the sketch
// construction details and the winning path.
func (q *Query) DistanceWithTrace(tr *Trace) (int64, bool) {
	sc := getScratch()
	d, _, err := sc.decode(q, tr)
	putScratch(sc)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// DistanceRobust decodes the query tolerating unusable fault labels: any
// vertex-fault label that is nil is rejected outright (its identity is
// unknown, so no sound answer exists — callers that know the vertex id
// should list it in DegradedVertexFaults instead), while a label that
// fails Validate or mismatches the endpoint parameters is demoted to the
// degraded tier by its id. Degraded decoding treats those faults'
// protected balls as maximal, preserving the safety direction
// δ ≥ d_{G\F} at the cost of the stretch bound; the Result says exactly
// how much trust the number deserves.
func (q *Query) DistanceRobust() Result {
	sc := getScratch()
	res := sc.distanceRobust(q)
	putScratch(sc)
	return res
}

// distanceRobust implements DistanceRobust on the scratch. The common
// case — every fault label usable, nothing pre-degraded — decodes q
// directly without copying the query; only the degraded slow path
// allocates (it is rare by construction: it means labels went missing).
func (sc *decodeScratch) distanceRobust(q *Query) Result {
	var res Result
	if q.S == nil || q.T == nil || q.S.Validate() != nil || q.T.Validate() != nil {
		return res // no endpoint labels, no bound of any kind
	}
	usable := func(l *Label) bool {
		return l != nil && l.Validate() == nil &&
			l.C == q.S.C && l.MaxLevel == q.S.MaxLevel && l.RShrink == q.S.RShrink
	}
	clean := len(q.DegradedVertexFaults) == 0 && len(q.DegradedEdgeFaults) == 0
	if clean {
		for _, f := range q.VertexFaults {
			if !usable(f) {
				clean = false
				break
			}
		}
	}
	if clean {
		for _, ef := range q.EdgeFaults {
			if !usable(ef[0]) || !usable(ef[1]) {
				clean = false
				break
			}
		}
	}
	if clean {
		d, exhausted, err := sc.decode(q, nil)
		res.BudgetExhausted = exhausted
		res.Degraded = exhausted
		if err != nil || d < 0 {
			return res
		}
		res.Dist = d
		res.OK = true
		return res
	}

	rq := *q
	rq.VertexFaults = sc.vf[:0]
	rq.EdgeFaults = sc.ef[:0]
	rq.DegradedVertexFaults = append([]int32(nil), q.DegradedVertexFaults...)
	rq.DegradedEdgeFaults = append([][2]int32(nil), q.DegradedEdgeFaults...)
	res.MissingFaultLabels = append([]int32(nil), q.DegradedVertexFaults...)
	for _, f := range q.VertexFaults {
		switch {
		case usable(f):
			rq.VertexFaults = append(rq.VertexFaults, f)
		case f == nil:
			return res
		default:
			rq.DegradedVertexFaults = append(rq.DegradedVertexFaults, f.V)
			res.MissingFaultLabels = append(res.MissingFaultLabels, f.V)
		}
	}
	for _, ef := range q.EdgeFaults {
		switch {
		case usable(ef[0]) && usable(ef[1]):
			rq.EdgeFaults = append(rq.EdgeFaults, ef)
		case ef[0] == nil || ef[1] == nil:
			return res
		default:
			rq.DegradedEdgeFaults = append(rq.DegradedEdgeFaults, [2]int32{ef[0].V, ef[1].V})
			for _, l := range ef {
				if !usable(l) {
					res.MissingFaultLabels = append(res.MissingFaultLabels, l.V)
				}
			}
		}
	}
	sc.vf = rq.VertexFaults[:0]
	sc.ef = rq.EdgeFaults[:0]
	slices.Sort(res.MissingFaultLabels)
	res.Degraded = len(rq.DegradedVertexFaults) > 0 || len(rq.DegradedEdgeFaults) > 0
	d, exhausted, err := sc.decode(&rq, nil)
	res.BudgetExhausted = exhausted
	res.Degraded = res.Degraded || exhausted
	if err != nil || d < 0 {
		return res
	}
	res.Dist = d
	res.OK = true
	return res
}

// Sketch returns every admitted sketch edge (deduplicated to the lightest
// parallel edge, annotated with the lowest contributing level). Exposed so
// tests can verify the safety invariant: every sketch edge is realizable
// in G\F at exactly its weight.
func (q *Query) Sketch() ([]SketchEdge, error) {
	sc := getScratch()
	defer putScratch(sc)
	if _, _, err := sc.decode(q, nil); err != nil {
		return nil, err
	}
	if q.S.V == q.T.V {
		return nil, nil // trivial query, no sketch was built
	}
	edges := make([]SketchEdge, 0, len(sc.edges))
	return append(edges, sc.edges...), nil
}

// Validate checks that all labels of the query are present and mutually
// compatible (same scheme parameters).
func (q *Query) Validate() error {
	if q.S == nil || q.T == nil {
		return fmt.Errorf("core: query missing endpoint label")
	}
	check := func(l *Label) error {
		if l == nil {
			return fmt.Errorf("core: query contains nil fault label")
		}
		if l.C != q.S.C || l.MaxLevel != q.S.MaxLevel || l.RShrink != q.S.RShrink {
			return fmt.Errorf("core: label of %d has params (c=%d,L=%d,rs=%d), want (c=%d,L=%d,rs=%d)",
				l.V, l.C, l.MaxLevel, l.RShrink, q.S.C, q.S.MaxLevel, q.S.RShrink)
		}
		return nil
	}
	if err := check(q.T); err != nil {
		return err
	}
	for _, f := range q.VertexFaults {
		if err := check(f); err != nil {
			return err
		}
		if f.V == q.S.V || f.V == q.T.V {
			return fmt.Errorf("core: endpoint %d is itself forbidden", f.V)
		}
	}
	for _, ef := range q.EdgeFaults {
		if err := check(ef[0]); err != nil {
			return err
		}
		if err := check(ef[1]); err != nil {
			return err
		}
	}
	for _, v := range q.DegradedVertexFaults {
		if v == q.S.V || v == q.T.V {
			return fmt.Errorf("core: endpoint %d is itself forbidden (degraded)", v)
		}
	}
	return nil
}

// decode builds the sketch graph H on the scratch and runs Dijkstra. It
// returns the s-t distance (-1 when unreachable) and whether
// Query.Budget truncated the sketch; the admitted edges and the dense
// vertex remap remain on the scratch (sc.edges, sc.ids) until the next
// decode. Steady-state decodes allocate nothing: every transient
// structure lives on the scratch and is reset, not reallocated.
func (sc *decodeScratch) decode(q *Query, tr *Trace) (int64, bool, error) {
	sc.edges = sc.edges[:0]
	sc.ids = sc.ids[:0]
	if err := q.Validate(); err != nil {
		return 0, false, err
	}
	if q.S.V == q.T.V {
		return 0, false, nil
	}
	lowest := q.S.C + 1
	numLevels := len(q.S.Levels)

	// Owners: F̄ = {s,t} ∪ F (for edge faults, both endpoint labels).
	sc.owners = sc.owners[:0]
	sc.centers = sc.centers[:0]
	sc.seenOwner.reset()
	sc.seenCenter.reset()
	sc.forbiddenV.reset()
	sc.forbiddenE.reset()
	addOwner := func(l *Label) {
		if sc.seenOwner.add(l.V) {
			sc.owners = append(sc.owners, l)
		}
	}
	addOwner(q.S)
	addOwner(q.T)
	// Protected-ball centers: the faulty vertices and the endpoints of
	// faulty edges. An edge of H survives level ℓ only if at least one of
	// its endpoints is outside PB_ℓ(f) for every center f.
	for _, f := range q.VertexFaults {
		addOwner(f)
		sc.forbiddenV.add(f.V)
		if sc.seenCenter.add(f.V) {
			sc.centers = append(sc.centers, f)
		}
	}
	for _, ef := range q.EdgeFaults {
		sc.forbiddenE.add(unorderedKey(ef[0].V, ef[1].V))
		for _, l := range ef {
			addOwner(l)
			if sc.seenCenter.add(l.V) {
				sc.centers = append(sc.centers, l)
			}
		}
	}
	// Degraded faults have no labels, so their protected balls cannot be
	// tested — treat them as maximal: reject every net-level and
	// owner-ball edge, keeping only lowest-level unit edges that avoid all
	// forbidden vertices and edges (see the field docs for the safety
	// argument).
	degraded := len(q.DegradedVertexFaults) > 0 || len(q.DegradedEdgeFaults) > 0
	for _, v := range q.DegradedVertexFaults {
		sc.forbiddenV.add(v)
	}
	for _, ef := range q.DegradedEdgeFaults {
		sc.forbiddenE.add(unorderedKey(ef[0], ef[1]))
	}

	// Budget accounting: each candidate edge examined costs one unit; once
	// the budget is spent the remaining candidates are skipped (H shrinks,
	// the estimate stays an upper bound).
	examined, exhausted := 0, false
	allow := func() bool {
		if q.Budget > 0 && examined >= q.Budget {
			exhausted = true
			return false
		}
		examined++
		return true
	}

	if tr != nil {
		tr.AdmittedPerLevel = make([]int, numLevels)
		tr.RejectedPerLevel = make([]int, numLevels)
	}

	// Accumulate the lightest parallel edge per vertex pair.
	sc.best.reset()
	admit := func(x, y int32, w int64, level int) {
		if x == y {
			return
		}
		sc.best.upsertMin(unorderedKey(x, y), w, int32(level))
		if tr != nil {
			tr.AdmittedPerLevel[level-lowest]++
		}
	}
	reject := func(level int) {
		if tr != nil {
			tr.RejectedPerLevel[level-lowest]++
		}
	}
	// Per-center per-level protected-ball membership, hash-indexed — the
	// "perfect hashing" step of Lemma 2.6 that makes each check O(1).
	// pb[fi*numLevels+k] holds the vertices inside PB_ℓ(f): within λ_ℓ of
	// the center per the center's own ball list (plus the center itself).
	// Absence is an exact "outside" because r_ℓ > λ_ℓ.
	nPB := len(sc.centers) * numLevels
	if cap(sc.pb) < nPB {
		sc.pb = append(sc.pb[:cap(sc.pb)], make([]i32set, nPB-cap(sc.pb))...)
	}
	sc.pb = sc.pb[:nPB]
	for fi, f := range sc.centers {
		for k := 0; k < numLevels; k++ {
			level := lowest + k
			lambda := lambdaOf(level)
			idx := &sc.pb[fi*numLevels+k]
			idx.reset()
			idx.add(f.V)
			if k < len(f.Levels) {
				for _, pe := range f.Levels[k].Points {
					if pe.D <= lambda {
						idx.add(pe.X)
					}
				}
			}
		}
	}
	// safe reports whether an edge with endpoints x, y survives every
	// protected ball at the given level: for each center f, at least one
	// endpoint must be outside PB_ℓ(f). Both endpoints here are net points
	// of the level, so membership is decidable exactly from f's label.
	safe := func(level int, x, y int32) bool {
		if degraded {
			return false // maximal protected balls reject everything
		}
		if q.UnsafeIgnoreProtectedBalls {
			return true
		}
		k := level - lowest
		for fi := range sc.centers {
			idx := &sc.pb[fi*numLevels+k]
			if idx.has(x) && idx.has(y) {
				return false
			}
		}
		return true
	}
	// ompb[(oi*centers+fi)*numLevels+k] caches, for owner oi, center fi
	// and level index k, whether the owner vertex could lie inside
	// PB_ℓ(f): the owner is usually not a net point, so exact membership
	// is not label-decidable; instead we certify "outside" via the
	// triangle inequality through f's nearest net point m of the level:
	// d(o,f) ≥ d(o,m) − d(f,m). Since d(f,m) ≤ 2^{ℓ-c-1}−1, the
	// certificate fires whenever d(o,F) > μ_ℓ — exactly the condition
	// under which the stretch analysis needs owner edges admitted.
	nOMPB := len(sc.owners) * nPB
	if cap(sc.ompb) < nOMPB {
		sc.ompb = make([]bool, nOMPB)
	}
	sc.ompb = sc.ompb[:nOMPB]
	for oi, o := range sc.owners {
		for fi, f := range sc.centers {
			row := sc.ompb[(oi*len(sc.centers)+fi)*numLevels:]
			for k := 0; k < numLevels; k++ {
				row[k] = mayBeInPB(o, f, lowest+k)
			}
		}
	}
	// ownerSafe reports whether the owner edge (o.V, x) survives every
	// protected ball at the given level.
	ownerSafe := func(oi, level int, x int32) bool {
		if q.UnsafeIgnoreProtectedBalls {
			return true
		}
		k := level - lowest
		for fi := range sc.centers {
			if sc.pb[fi*numLevels+k].has(x) && sc.ompb[(oi*len(sc.centers)+fi)*numLevels+k] {
				return false
			}
		}
		return true
	}

	for oi, o := range sc.owners {
		for k := 0; k < numLevels; k++ {
			level := lowest + k
			lv := &o.Levels[k]
			lambda := lambdaOf(level)
			if level == lowest {
				// Unit-weight original graph edges: admitted when neither
				// endpoint nor the edge itself is forbidden.
				for _, e := range lv.Edges {
					if !allow() {
						break
					}
					x, y := lv.Points[e.XI].X, lv.Points[e.YI].X
					if sc.forbiddenV.has(x) || sc.forbiddenV.has(y) || sc.forbiddenE.has(unorderedKey(x, y)) {
						reject(level)
						continue
					}
					admit(x, y, int64(e.D), level)
				}
			} else {
				// Net-point pair edges, protected-ball checked. (The
				// explicit forbidden-endpoint test is subsumed by the
				// protected balls — a fault sits at the center of its own
				// ball — but must stand on its own for ablation runs.)
				for _, e := range lv.Edges {
					if !allow() {
						break
					}
					x, y := lv.Points[e.XI].X, lv.Points[e.YI].X
					if sc.forbiddenV.has(x) || sc.forbiddenV.has(y) || !safe(level, x, y) {
						reject(level)
						continue
					}
					admit(x, y, int64(e.D), level)
				}
			}
			// Edges from the labeled vertex itself to nearby points
			// ("between v and the net-points"), protected-ball checked at
			// every level. A forbidden owner's self edges always fail the
			// check (the owner sits at the center of its own protected
			// ball), so skip them outright.
			if sc.forbiddenV.has(o.V) {
				continue
			}
			for _, pe := range lv.Points {
				if pe.D > lambda || pe.X == o.V {
					continue
				}
				if !allow() {
					break
				}
				if sc.forbiddenV.has(pe.X) {
					reject(level)
					continue
				}
				if degraded {
					// Maximal protected balls veto every owner-ball edge
					// except an actual graph edge (weight 1) that is not
					// itself forbidden — it survives verbatim in G\F.
					if pe.D != 1 || sc.forbiddenE.has(unorderedKey(o.V, pe.X)) {
						reject(level)
						continue
					}
				} else if !ownerSafe(oi, level, pe.X) {
					reject(level)
					continue
				}
				admit(o.V, pe.X, int64(pe.D), level)
			}
		}
	}

	// Map the touched vertices densely and run Dijkstra.
	sc.idOf.reset()
	ensure := func(v int32) int32 {
		id, ok := sc.idOf.getOrPut(v, int32(len(sc.ids)))
		if !ok {
			sc.ids = append(sc.ids, v)
		}
		return id
	}
	ensure(q.S.V)
	ensure(q.T.V)
	// Emit edges in sorted key order: accumulator insertion order would
	// otherwise leak into Dijkstra's tie-breaking and make equal-weight
	// shortest paths (and hence routes) vary between runs. The order
	// slice is scratch-owned, so sorting it in place copies nothing.
	slices.Sort(sc.best.order)
	for _, k := range sc.best.order {
		w, level := sc.best.get(k)
		x, y := int32(k>>32), int32(k&0xffffffff)
		sc.edges = append(sc.edges, SketchEdge{X: x, Y: y, W: w, Level: int(level)})
		ensure(x)
		ensure(y)
	}
	sc.solver.Reset(len(sc.ids))
	for _, e := range sc.edges {
		sc.solver.AddEdge(int(sc.idOf.get(e.X)), int(sc.idOf.get(e.Y)), e.W)
	}
	src, dst := int(sc.idOf.get(q.S.V)), int(sc.idOf.get(q.T.V))
	dist := sc.solver.ShortestPath(src, dst)
	if tr != nil {
		tr.NumHVertices = len(sc.ids)
		tr.NumHEdges = len(sc.edges)
		tr.Path = nil
		tr.PathWeights = nil
		if dist != graph.WeightedInfinity {
			sc.hpath = sc.solver.PathTo(src, dst, sc.hpath[:0])
			var prev int32 = -1
			for _, hv := range sc.hpath {
				gv := sc.ids[hv]
				tr.Path = append(tr.Path, gv)
				if prev >= 0 {
					w, _ := sc.best.get(unorderedKey(prev, gv))
					tr.PathWeights = append(tr.PathWeights, w)
				}
				prev = gv
			}
		}
	}
	if dist == graph.WeightedInfinity {
		return -1, exhausted, nil
	}
	return dist, exhausted, nil
}

// mayBeInPB conservatively decides whether the owner vertex of label o
// could lie inside the level-ℓ protected ball of center f, using label data
// only. It returns false only when d(o,f) > λ_ℓ is provable:
//
//   - if o is itself a net point of the level, membership is exact via
//     f's label (absence from f's ball list means d > r_ℓ > λ_ℓ);
//   - otherwise, let m be f's nearest net point of the level (d(f,m) ≤
//     2^{ℓ-c-1}−1, present in f's list). By the triangle inequality
//     d(o,f) ≥ d(o,m) − d(f,m), and d(o,m) is exact in o's list (absence
//     means d(o,m) > r_ℓ, hence d(o,f) > r_ℓ − 2^{ℓ-c-1} > λ_ℓ).
//
// The certificate is sound always, and complete whenever d(o,F) > μ_ℓ —
// which is precisely when the stretch analysis requires owner edges to be
// admitted (μ_ℓ − 2·(2^{ℓ-c-1}−1) = λ_ℓ + 2 > λ_ℓ).
func mayBeInPB(o, f *Label, level int) bool {
	lambda := lambdaOf(level)
	if d, ok := o.DistTo(level, o.V); ok && d == 0 {
		return f.InProtectedBall(level, o.V)
	}
	k := level - f.C - 1
	if k < 0 || k >= len(f.Levels) {
		return true
	}
	pts := f.Levels[k].Points
	if len(pts) == 0 {
		return true
	}
	m := pts[0]
	for _, pe := range pts[1:] {
		if pe.D < m.D {
			m = pe
		}
	}
	do, ok := o.DistTo(level, m.X)
	if !ok {
		// m is outside o's level ball, so d(o,m) > r_ℓ and hence
		// d(o,f) > r_ℓ − d(f,m). With the paper's radii this certifies
		// "outside"; with ablation-shrunk radii it may not, in which case
		// stay conservative.
		r := labelBallRadius(o.C, level, o.RShrink)
		return r-m.D <= lambda
	}
	return do-m.D <= lambda
}

// labelBallRadius reconstructs the r_ℓ a label was extracted with from its
// self-described parameters.
func labelBallRadius(c, level, rShrink int) int32 {
	p := Params{C: c, RShrink: rShrink}
	return p.R(level)
}

func unorderedKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
