package core

import (
	"fmt"
	"slices"

	"fsdl/internal/graph"
)

// Query is a forbidden-set distance query (s, t, F), holding nothing but
// labels — decoding reads no global state, which is the distributed
// data-structure contract of the paper: the answer is computed from
// L(s), L(t) and {L(f) : f ∈ F} alone.
type Query struct {
	// S and T are the labels of the query endpoints.
	S, T *Label
	// VertexFaults are the labels of forbidden vertices.
	VertexFaults []*Label
	// EdgeFaults are the label pairs (L(a), L(b)) of forbidden edges
	// (a,b); per the paper, a forbidden edge is specified by the labels of
	// its two endpoints.
	EdgeFaults [][2]*Label
	// UnsafeIgnoreProtectedBalls is an ablation knob: it disables the
	// protected-ball filter of Lemma 2.3, admitting every stored edge
	// whose endpoints are not themselves forbidden. The resulting sketch
	// can contain edges whose underlying shortest paths run through
	// faults, so estimates may drop below the true surviving distance —
	// the ablation experiment measures exactly how often. Never set this
	// outside experiments.
	UnsafeIgnoreProtectedBalls bool

	// Budget caps the number of candidate sketch edges decode examines
	// (≤ 0 means unlimited). When the budget runs out the remaining
	// candidates are simply not admitted, so H shrinks: the estimate stays
	// an upper bound on d_{G\F} (safety is one-sided — omitting edges can
	// only lengthen paths), but it may exceed (1+ε)·d or report
	// disconnection spuriously. DistanceRobust surfaces the truncation via
	// Result.BudgetExhausted; Distance simply reports ok=false when the
	// truncated sketch disconnects s from t.
	Budget int
	// DegradedVertexFaults are forbidden vertices for which no usable
	// label is available (missing from the store, failed Validate, or
	// corrupt on the wire), identified by vertex id alone. The decoder
	// treats each one's protected balls as maximal: every net-level and
	// owner-ball edge is rejected, and only lowest-level unit edges whose
	// endpoints avoid all forbidden vertices survive — each such edge
	// exists verbatim in G\F, so the estimate remains an upper bound on
	// d_{G\F} (the paper's safety direction) at the cost of stretch.
	DegradedVertexFaults []int32
	// DegradedEdgeFaults are forbidden edges (a,b) with at least one
	// unusable endpoint label, identified by the endpoint vertex ids. Same
	// maximal-protected-ball treatment as DegradedVertexFaults; the edge
	// itself is additionally excluded from the unit-edge tier.
	DegradedEdgeFaults [][2]int32
}

// Result is the outcome of a robust (degradation-tolerant) query.
type Result struct {
	// Dist is an upper bound on d_{G\F}(s,t); exact to within the scheme's
	// (1+ε) stretch when Degraded is false. Meaningful only when OK.
	Dist int64
	// OK reports whether a finite bound was produced. False means the
	// (possibly degraded or truncated) sketch disconnects s from t — under
	// degradation this no longer certifies true disconnection.
	OK bool
	// Degraded is true when the answer was computed conservatively: some
	// fault labels were unusable or the work budget was exhausted. The
	// safety direction δ ≥ d_{G\F} still holds; the stretch bound may not.
	Degraded bool
	// MissingFaultLabels lists the forbidden vertices whose labels were
	// missing or failed validation (sorted).
	MissingFaultLabels []int32
	// BudgetExhausted is true when Query.Budget truncated the sketch.
	BudgetExhausted bool
}

// SketchEdge is one edge of the query-time sketch graph H, reported by
// Sketch for tests and traces. X, Y are global vertex ids; W is the edge
// weight (an exact G-distance); Level is the scheme level that contributed
// the edge.
type SketchEdge struct {
	X, Y  int32
	W     int64
	Level int
}

// Trace records how a query was answered, used by the Figure-1/Claim-2
// experiment (E8) and for debugging.
type Trace struct {
	// NumHVertices and NumHEdges are the sketch graph dimensions (after
	// deduplication).
	NumHVertices, NumHEdges int
	// AdmittedPerLevel and RejectedPerLevel count candidate edges per
	// scheme level (index 0 ↔ level c+1).
	AdmittedPerLevel, RejectedPerLevel []int
	// Path is the winning sketch path as global vertex ids (s..t), with
	// PathWeights the corresponding edge weights. Empty when disconnected.
	Path        []int32
	PathWeights []int64
}

// Distance decodes the query: it assembles the sketch graph H from the
// labels, keeping only safe edges, and returns the s-t distance in H.
// ok is false when no path exists, which (by the scheme's safety and
// stretch guarantees) happens exactly when s and t are disconnected in
// G\F. Decoding borrows a pooled scratch, so steady-state calls are
// allocation-free; batch callers that want to pin one scratch across
// many queries should use a Decoder instead.
func (q *Query) Distance() (int64, bool) {
	sc := getScratch()
	d, _, err := sc.decode(q, nil)
	putScratch(sc)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// DistanceWithTrace is Distance, additionally filling tr with the sketch
// construction details and the winning path.
func (q *Query) DistanceWithTrace(tr *Trace) (int64, bool) {
	sc := getScratch()
	d, _, err := sc.decode(q, tr)
	putScratch(sc)
	if err != nil || d < 0 {
		return 0, false
	}
	return d, true
}

// DistancePath is Distance, additionally returning the witness path: the
// winning chain of sketch vertices s..t (net points, plus original-graph
// vertices at the lowest level) whose edge weights sum exactly to the
// returned distance. Each hop is realizable in G\F at its weight, so the
// chain is a (1+ε)-approximate corridor of the surviving graph. The
// returned slice is freshly allocated; batch callers should use
// Decoder.DecodePath with a reused buffer instead.
func (q *Query) DistancePath() (int64, []int32, bool) {
	sc := getScratch()
	defer putScratch(sc)
	d, _, err := sc.decode(q, nil)
	if err != nil || d < 0 {
		return 0, nil, false
	}
	return d, sc.appendHPath(q, nil), true
}

// DistanceRobust decodes the query tolerating unusable fault labels: any
// vertex-fault label that is nil is rejected outright (its identity is
// unknown, so no sound answer exists — callers that know the vertex id
// should list it in DegradedVertexFaults instead), while a label that
// fails Validate or mismatches the endpoint parameters is demoted to the
// degraded tier by its id. Degraded decoding treats those faults'
// protected balls as maximal, preserving the safety direction
// δ ≥ d_{G\F} at the cost of the stretch bound; the Result says exactly
// how much trust the number deserves.
func (q *Query) DistanceRobust() Result {
	sc := getScratch()
	res, _ := sc.distanceRobust(q, nil, false)
	putScratch(sc)
	return res
}

// distanceRobust implements DistanceRobust on the scratch, optionally
// (wantPath) appending the witness path of the answering decode to buf.
// The common case — every fault label usable, nothing pre-degraded —
// decodes q directly without copying the query; only the degraded slow
// path allocates (it is rare by construction: it means labels went
// missing).
func (sc *decodeScratch) distanceRobust(q *Query, buf []int32, wantPath bool) (Result, []int32) {
	var res Result
	if q.S == nil || q.T == nil || q.S.Validate() != nil || q.T.Validate() != nil {
		return res, buf // no endpoint labels, no bound of any kind
	}
	usable := func(l *Label) bool {
		return l != nil && l.Validate() == nil &&
			l.C == q.S.C && l.MaxLevel == q.S.MaxLevel && l.RShrink == q.S.RShrink
	}
	clean := len(q.DegradedVertexFaults) == 0 && len(q.DegradedEdgeFaults) == 0
	if clean {
		for _, f := range q.VertexFaults {
			if !usable(f) {
				clean = false
				break
			}
		}
	}
	if clean {
		for _, ef := range q.EdgeFaults {
			if !usable(ef[0]) || !usable(ef[1]) {
				clean = false
				break
			}
		}
	}
	if clean {
		d, exhausted, err := sc.decode(q, nil)
		res.BudgetExhausted = exhausted
		res.Degraded = exhausted
		if err != nil || d < 0 {
			return res, buf
		}
		res.Dist = d
		res.OK = true
		if wantPath {
			buf = sc.appendHPath(q, buf)
		}
		return res, buf
	}

	rq := *q
	rq.VertexFaults = sc.vf[:0]
	rq.EdgeFaults = sc.ef[:0]
	rq.DegradedVertexFaults = append([]int32(nil), q.DegradedVertexFaults...)
	rq.DegradedEdgeFaults = append([][2]int32(nil), q.DegradedEdgeFaults...)
	res.MissingFaultLabels = append([]int32(nil), q.DegradedVertexFaults...)
	for _, f := range q.VertexFaults {
		switch {
		case usable(f):
			rq.VertexFaults = append(rq.VertexFaults, f)
		case f == nil:
			return res, buf
		default:
			rq.DegradedVertexFaults = append(rq.DegradedVertexFaults, f.V)
			res.MissingFaultLabels = append(res.MissingFaultLabels, f.V)
		}
	}
	for _, ef := range q.EdgeFaults {
		switch {
		case usable(ef[0]) && usable(ef[1]):
			rq.EdgeFaults = append(rq.EdgeFaults, ef)
		case ef[0] == nil || ef[1] == nil:
			return res, buf
		default:
			rq.DegradedEdgeFaults = append(rq.DegradedEdgeFaults, [2]int32{ef[0].V, ef[1].V})
			for _, l := range ef {
				if !usable(l) {
					res.MissingFaultLabels = append(res.MissingFaultLabels, l.V)
				}
			}
		}
	}
	sc.vf = rq.VertexFaults[:0]
	sc.ef = rq.EdgeFaults[:0]
	slices.Sort(res.MissingFaultLabels)
	res.Degraded = len(rq.DegradedVertexFaults) > 0 || len(rq.DegradedEdgeFaults) > 0
	d, exhausted, err := sc.decode(&rq, nil)
	res.BudgetExhausted = exhausted
	res.Degraded = res.Degraded || exhausted
	if err != nil || d < 0 {
		return res, buf
	}
	res.Dist = d
	res.OK = true
	if wantPath {
		buf = sc.appendHPath(&rq, buf)
	}
	return res, buf
}

// Sketch returns every admitted sketch edge (deduplicated to the lightest
// parallel edge, annotated with the lowest contributing level). Exposed so
// tests can verify the safety invariant: every sketch edge is realizable
// in G\F at exactly its weight.
func (q *Query) Sketch() ([]SketchEdge, error) {
	sc := getScratch()
	defer putScratch(sc)
	if _, _, err := sc.decode(q, nil); err != nil {
		return nil, err
	}
	if q.S.V == q.T.V {
		return nil, nil // trivial query, no sketch was built
	}
	edges := make([]SketchEdge, 0, len(sc.edges))
	return append(edges, sc.edges...), nil
}

// Validate checks that all labels of the query are present and mutually
// compatible (same scheme parameters).
func (q *Query) Validate() error {
	if q.S == nil || q.T == nil {
		return fmt.Errorf("core: query missing endpoint label")
	}
	check := func(l *Label) error {
		if l == nil {
			return fmt.Errorf("core: query contains nil fault label")
		}
		if l.C != q.S.C || l.MaxLevel != q.S.MaxLevel || l.RShrink != q.S.RShrink {
			return fmt.Errorf("core: label of %d has params (c=%d,L=%d,rs=%d), want (c=%d,L=%d,rs=%d)",
				l.V, l.C, l.MaxLevel, l.RShrink, q.S.C, q.S.MaxLevel, q.S.RShrink)
		}
		return nil
	}
	if err := check(q.T); err != nil {
		return err
	}
	for _, f := range q.VertexFaults {
		if err := check(f); err != nil {
			return err
		}
		if f.V == q.S.V || f.V == q.T.V {
			return fmt.Errorf("core: endpoint %d is itself forbidden", f.V)
		}
	}
	for _, ef := range q.EdgeFaults {
		if err := check(ef[0]); err != nil {
			return err
		}
		if err := check(ef[1]); err != nil {
			return err
		}
	}
	for _, v := range q.DegradedVertexFaults {
		if v == q.S.V || v == q.T.V {
			return fmt.Errorf("core: endpoint %d is itself forbidden (degraded)", v)
		}
	}
	return nil
}

// decode builds the sketch graph H on the scratch and runs Dijkstra. It
// returns the s-t distance (-1 when unreachable) and whether
// Query.Budget truncated the sketch; the admitted edges and the dense
// vertex remap remain on the scratch (sc.edges, sc.ids) until the next
// decode. Steady-state decodes allocate nothing: every transient
// structure lives on the scratch and is reset, not reallocated.
//
// The admission scan relies on the ordering invariants Label.Validate
// enforces (Points strictly ascending by X, Edges ascending by (XI,YI)
// with XI < YI): forbidden vertices and edges are joined against the
// label lists with sorted-merge cursors, and per-center protected-ball
// membership is precomputed into per-point bitmasks — 64 centers per
// uint64 word — so each candidate edge is cleared against every
// protected ball with one AND per word instead of a hash probe per
// center (Lemma 2.6's membership test, batched). The surviving edges
// accumulate flat, are deduplicated by a stable radix sort, and feed the
// solver's CSR arrays directly. Every step is observably identical to
// the historical hash-probe decoder: same candidate order, same budget
// accounting, same tie-breaks, same emitted sketch.
func (sc *decodeScratch) decode(q *Query, tr *Trace) (int64, bool, error) {
	sc.edges = sc.edges[:0]
	sc.ids = sc.ids[:0]
	if err := q.Validate(); err != nil {
		return 0, false, err
	}
	if q.S.V == q.T.V {
		return 0, false, nil
	}
	lowest := q.S.C + 1
	numLevels := len(q.S.Levels)

	// Owners: F̄ = {s,t} ∪ F (for edge faults, both endpoint labels).
	sc.owners = sc.owners[:0]
	sc.centers = sc.centers[:0]
	sc.seenOwner.reset()
	sc.seenCenter.reset()
	sc.fvList = sc.fvList[:0]
	sc.feList = sc.feList[:0]
	addOwner := func(l *Label) {
		if sc.seenOwner.add(l.V) {
			sc.owners = append(sc.owners, l)
		}
	}
	addOwner(q.S)
	addOwner(q.T)
	// Protected-ball centers: the faulty vertices and the endpoints of
	// faulty edges. An edge of H survives level ℓ only if at least one of
	// its endpoints is outside PB_ℓ(f) for every center f.
	for _, f := range q.VertexFaults {
		addOwner(f)
		sc.fvList = append(sc.fvList, f.V)
		if sc.seenCenter.add(f.V) {
			sc.centers = append(sc.centers, f)
		}
	}
	for _, ef := range q.EdgeFaults {
		sc.feList = append(sc.feList, unorderedKey(ef[0].V, ef[1].V))
		for _, l := range ef {
			addOwner(l)
			if sc.seenCenter.add(l.V) {
				sc.centers = append(sc.centers, l)
			}
		}
	}
	// Degraded faults have no labels, so their protected balls cannot be
	// tested — treat them as maximal: reject every net-level and
	// owner-ball edge, keeping only lowest-level unit edges that avoid all
	// forbidden vertices and edges (see the field docs for the safety
	// argument).
	degraded := len(q.DegradedVertexFaults) > 0 || len(q.DegradedEdgeFaults) > 0
	sc.fvList = append(sc.fvList, q.DegradedVertexFaults...)
	for _, ef := range q.DegradedEdgeFaults {
		sc.feList = append(sc.feList, unorderedKey(ef[0], ef[1]))
	}
	slices.Sort(sc.fvList)
	sc.fvList = slices.Compact(sc.fvList)
	slices.Sort(sc.feList)
	sc.feList = slices.Compact(sc.feList)

	// Budget accounting: each candidate edge examined costs one unit; once
	// the budget is spent the remaining candidates are skipped (H shrinks,
	// the estimate stays an upper bound).
	budget := q.Budget
	examined, exhausted := 0, false

	if tr != nil {
		tr.AdmittedPerLevel = make([]int, numLevels)
		tr.RejectedPerLevel = make([]int, numLevels)
	}

	// accept short-circuits every protected-ball test to "safe": either
	// the ablation knob is on, or there are no centers at all (pure
	// degraded fault sets). Masks are built only when a ball test can
	// actually fire.
	accept := q.UnsafeIgnoreProtectedBalls || len(sc.centers) == 0
	useMasks := !degraded && !accept
	W := (len(sc.centers) + 63) >> 6

	// ompbW: for every (owner, level), the bitmask over centers of
	// mayBeInPB certificates — the triangle-inequality test deciding
	// whether the owner vertex itself could sit inside a protected ball
	// (see mayBeInPB). An owner-ball edge to point i then dies iff
	// mask(i) AND ompbW(owner,level) has any bit set.
	if useMasks {
		nOW := len(sc.owners) * numLevels * W
		if cap(sc.ompbW) < nOW {
			sc.ompbW = make([]uint64, nOW)
		}
		sc.ompbW = sc.ompbW[:nOW]
		clear(sc.ompbW)
		for oi, o := range sc.owners {
			base := oi * numLevels * W
			for fi, f := range sc.centers {
				word, bit := fi>>6, uint64(1)<<(fi&63)
				for k := 0; k < numLevels; k++ {
					if mayBeInPB(o, f, lowest+k) {
						sc.ompbW[base+k*W+word] |= bit
					}
				}
			}
		}
		sc.buildCombinedBalls(numLevels, lowest, W)
	}

	for oi, o := range sc.owners {
		oForbidden := containsI32(sc.fvList, o.V)
		for k := 0; k < numLevels; k++ {
			level := lowest + k
			lv := &o.Levels[k]
			lambda := lambdaOf(level)
			pts := lv.Points
			lvl32 := int32(level)

			forb := sc.fillForb(pts)
			var msk []uint64
			if useMasks {
				msk = sc.fillMasks(pts, k, W)
			}

			// The budget counter and the trace tallies are the only
			// observable difference between the accounting loops below and
			// their tight fast-path twins, so an unbudgeted untraced decode
			// (the serving-path common case) runs the twins.
			fast := budget <= 0 && tr == nil

			if level == lowest && fast {
				fe := sc.feList
				fj := 0
				var prevKey uint64
				for _, e := range lv.Edges {
					if forb[e.XI] || forb[e.YI] {
						continue
					}
					key := uint64(uint32(pts[e.XI].X))<<32 | uint64(uint32(pts[e.YI].X))
					if len(fe) > 0 {
						hit := false
						if key >= prevKey {
							for fj < len(fe) && fe[fj] < key {
								fj++
							}
							hit = fj < len(fe) && fe[fj] == key
							prevKey = key
						} else {
							hit = containsU64(fe, key)
						}
						if hit {
							continue
						}
					}
					sc.cand = append(sc.cand, sketchCand{key: key, w: e.D, lv: lvl32})
				}
			} else if level == lowest {
				// Unit-weight original graph edges: admitted when neither
				// endpoint nor the edge itself is forbidden. Forbidden-edge
				// keys ascend along the (XI,YI)-sorted edge list, so one
				// merge cursor joins them against the sorted feList.
				fe := sc.feList
				fj := 0
				var prevKey uint64
				for _, e := range lv.Edges {
					if budget > 0 && examined >= budget {
						exhausted = true
						break
					}
					examined++
					if forb[e.XI] || forb[e.YI] {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
					x, y := pts[e.XI].X, pts[e.YI].X
					if len(fe) > 0 {
						key := uint64(uint32(x))<<32 | uint64(uint32(y))
						hit := false
						if key >= prevKey {
							for fj < len(fe) && fe[fj] < key {
								fj++
							}
							hit = fj < len(fe) && fe[fj] == key
							prevKey = key
						} else {
							hit = containsU64(fe, key)
						}
						if hit {
							if tr != nil {
								tr.RejectedPerLevel[k]++
							}
							continue
						}
					}
					sc.cand = append(sc.cand, sketchCand{key: uint64(uint32(x))<<32 | uint64(uint32(y)), w: e.D, lv: lvl32})
					if tr != nil {
						tr.AdmittedPerLevel[k]++
					}
				}
			} else if degraded {
				// Maximal protected balls reject every net-level edge; the
				// scan only charges the budget and the trace. With neither
				// in play the rejections are unobservable — skip the loop.
				if budget > 0 || tr != nil {
					for range lv.Edges {
						if budget > 0 && examined >= budget {
							exhausted = true
							break
						}
						examined++
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
					}
				}
			} else if accept {
				// Ablation (or no centers): forbidden-endpoint test only.
				for _, e := range lv.Edges {
					if budget > 0 && examined >= budget {
						exhausted = true
						break
					}
					examined++
					if forb[e.XI] || forb[e.YI] {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
					sc.cand = append(sc.cand, sketchCand{key: uint64(uint32(pts[e.XI].X))<<32 | uint64(uint32(pts[e.YI].X)), w: e.D, lv: lvl32})
					if tr != nil {
						tr.AdmittedPerLevel[k]++
					}
				}
			} else if W == 1 && fast && len(sc.centers) <= 62 {
				// Fused-mask fast path: one load + AND per edge decides the
				// whole rejection predicate (shared ball, forbidden x,
				// forbidden y — see fillLR). The edge list is sorted by
				// (XI,YI), so consecutive edges share XI in long runs and
				// the left word is hoisted out of the run.
				sc.fillLR(msk, forb)
				edges := lv.Edges
				mR := sc.maskR
				for a := 0; a < len(edges); {
					xi := edges[a].XI
					lx := sc.maskL[xi]
					hi := uint64(uint32(pts[xi].X)) << 32
					for ; a < len(edges) && edges[a].XI == xi; a++ {
						yi := edges[a].YI
						if lx&mR[yi] != 0 {
							continue
						}
						sc.cand = append(sc.cand, sketchCand{key: hi | uint64(uint32(pts[yi].X)), w: edges[a].D, lv: lvl32})
					}
				}
			} else if W == 1 {
				// Net-point pair edges, protected-ball checked: the edge
				// dies iff some center's ball covers both endpoints — one
				// AND of the two per-point masks. (The explicit
				// forbidden-endpoint test is subsumed by the protected
				// balls — a fault sits at the center of its own ball — but
				// must stand on its own for ablation runs.)
				for _, e := range lv.Edges {
					if budget > 0 && examined >= budget {
						exhausted = true
						break
					}
					examined++
					if forb[e.XI] || forb[e.YI] || msk[e.XI]&msk[e.YI] != 0 {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
					sc.cand = append(sc.cand, sketchCand{key: uint64(uint32(pts[e.XI].X))<<32 | uint64(uint32(pts[e.YI].X)), w: e.D, lv: lvl32})
					if tr != nil {
						tr.AdmittedPerLevel[k]++
					}
				}
			} else {
				for _, e := range lv.Edges {
					if budget > 0 && examined >= budget {
						exhausted = true
						break
					}
					examined++
					bad := forb[e.XI] || forb[e.YI]
					if !bad {
						xw := msk[int(e.XI)*W : int(e.XI)*W+W]
						yw := msk[int(e.YI)*W : int(e.YI)*W+W]
						for w := 0; w < W; w++ {
							if xw[w]&yw[w] != 0 {
								bad = true
								break
							}
						}
					}
					if bad {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
					sc.cand = append(sc.cand, sketchCand{key: uint64(uint32(pts[e.XI].X))<<32 | uint64(uint32(pts[e.YI].X)), w: e.D, lv: lvl32})
					if tr != nil {
						tr.AdmittedPerLevel[k]++
					}
				}
			}

			// Edges from the labeled vertex itself to nearby points
			// ("between v and the net-points"), protected-ball checked at
			// every level. A forbidden owner's self edges always fail the
			// check (the owner sits at the center of its own protected
			// ball), so skip them outright.
			if oForbidden {
				continue
			}
			var ompbRow []uint64
			if useMasks {
				ompbRow = sc.ompbW[(oi*numLevels+k)*W : (oi*numLevels+k)*W+W]
			}
			for i, pe := range pts {
				if pe.D > lambda || pe.X == o.V {
					continue
				}
				if budget > 0 && examined >= budget {
					exhausted = true
					break
				}
				examined++
				if forb[i] {
					if tr != nil {
						tr.RejectedPerLevel[k]++
					}
					continue
				}
				if degraded {
					// Maximal protected balls veto every owner-ball edge
					// except an actual graph edge (weight 1) that is not
					// itself forbidden — it survives verbatim in G\F.
					if pe.D != 1 || containsU64(sc.feList, unorderedKey(o.V, pe.X)) {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
				} else if !accept {
					bad := false
					if W == 1 {
						bad = msk[i]&ompbRow[0] != 0
					} else {
						for w := 0; w < W; w++ {
							if msk[i*W+w]&ompbRow[w] != 0 {
								bad = true
								break
							}
						}
					}
					if bad {
						if tr != nil {
							tr.RejectedPerLevel[k]++
						}
						continue
					}
				}
				sc.cand = append(sc.cand, sketchCand{key: unorderedKey(o.V, pe.X), w: pe.D, lv: lvl32})
				if tr != nil {
					tr.AdmittedPerLevel[k]++
				}
			}
		}
	}

	// Deduplicate the flat candidate list to the lightest parallel edge
	// per unordered pair. The radix sort is stable, so within one key the
	// candidates keep admission order and the strict-min scan reproduces
	// the historical first-insertion-wins tie-break; emission is in
	// ascending key order, exactly as before (deterministic Dijkstra
	// tie-breaking and routes).
	sc.sortCandsByKey()
	sc.idOf.reset()
	ensure := func(v int32) int32 {
		id, ok := sc.idOf.getOrPut(v, int32(len(sc.ids)))
		if !ok {
			sc.ids = append(sc.ids, v)
		}
		return id
	}
	ensure(q.S.V)
	ensure(q.T.V)
	cand := sc.cand
	for i := 0; i < len(cand); {
		key := cand[i].key
		bw, blv := cand[i].w, cand[i].lv
		j := i + 1
		for ; j < len(cand) && cand[j].key == key; j++ {
			if cand[j].w < bw {
				bw, blv = cand[j].w, cand[j].lv
			}
		}
		i = j
		x, y := int32(key>>32), int32(key&0xffffffff)
		sc.edges = append(sc.edges, SketchEdge{X: x, Y: y, W: int64(bw), Level: int(blv)})
		ensure(x)
		ensure(y)
	}
	sc.cand = sc.cand[:0]

	// Load the sketch into the CSR solver and run Dijkstra.
	sc.solver.Reset(len(sc.ids))
	for _, e := range sc.edges {
		sc.solver.AddEdge(int(sc.idOf.get(e.X)), int(sc.idOf.get(e.Y)), e.W)
	}
	src, dst := int(sc.idOf.get(q.S.V)), int(sc.idOf.get(q.T.V))
	dist := sc.solver.ShortestPath(src, dst)
	if tr != nil {
		tr.NumHVertices = len(sc.ids)
		tr.NumHEdges = len(sc.edges)
		tr.Path = nil
		tr.PathWeights = nil
		if dist != graph.WeightedInfinity {
			sc.hpath = sc.solver.PathTo(src, dst, sc.hpath[:0])
			var prev int32 = -1
			for _, hv := range sc.hpath {
				gv := sc.ids[hv]
				tr.Path = append(tr.Path, gv)
				if prev >= 0 {
					tr.PathWeights = append(tr.PathWeights, sc.sketchEdgeWeight(unorderedKey(prev, gv)))
				}
				prev = gv
			}
		}
	}
	if dist == graph.WeightedInfinity {
		return -1, exhausted, nil
	}
	return dist, exhausted, nil
}

// fillForb marks which points of pts are forbidden vertices, by merging
// the strictly ascending point list against the sorted fvList. The
// returned flags are scratch-owned and valid until the next call.
func (sc *decodeScratch) fillForb(pts []PointEntry) []bool {
	if cap(sc.forb) < len(pts) {
		sc.forb = make([]bool, len(pts))
	}
	fb := sc.forb[:len(pts)]
	clear(fb)
	if len(sc.fvList) == 0 {
		return fb
	}
	i := 0
	for _, fv := range sc.fvList {
		for i < len(pts) && pts[i].X < fv {
			i++
		}
		if i == len(pts) {
			break
		}
		if pts[i].X == fv {
			fb[i] = true
			i++
		}
	}
	return fb
}

// buildCombinedBalls precomputes, for every level, the union of all
// centers' protected balls as one sorted vertex list with a per-vertex
// center bitmask: PB_ℓ(f) is the center's ball entries within λ_ℓ plus
// the center vertex itself, and membership is decided exactly (absence
// from a center's level list means d > r_ℓ > λ_ℓ) with int32 distances
// throughout — so the masks are exact even at levels where λ_ℓ would
// overflow a uint8 truncation. Each (vertex, center) membership becomes
// a packed pair, radix-sorted by vertex and OR-compacted; the per-level
// runs land in cmbX/cmbM/cmbOff. Filling one owner level's point masks
// is then a single sorted merge against the combined list, instead of
// one merge per center per owner level.
func (sc *decodeScratch) buildCombinedBalls(numLevels, lowest, W int) {
	sc.cmbX = sc.cmbX[:0]
	sc.cmbM = sc.cmbM[:0]
	sc.cmbOff = append(sc.cmbOff[:0], 0)
	for k := 0; k < numLevels; k++ {
		lambda := lambdaOf(lowest + k)
		sc.pairs = sc.pairs[:0]
		for fi, f := range sc.centers {
			sc.pairs = append(sc.pairs, uint64(uint32(f.V))<<32|uint64(uint32(fi)))
			if k >= len(f.Levels) {
				continue
			}
			for _, ce := range f.Levels[k].Points {
				if ce.D <= lambda {
					sc.pairs = append(sc.pairs, uint64(uint32(ce.X))<<32|uint64(uint32(fi)))
				}
			}
		}
		sc.sortPairs()
		for i := 0; i < len(sc.pairs); {
			x := int32(sc.pairs[i] >> 32)
			base := len(sc.cmbM)
			for w := 0; w < W; w++ {
				sc.cmbM = append(sc.cmbM, 0)
			}
			sc.cmbX = append(sc.cmbX, x)
			for ; i < len(sc.pairs) && int32(sc.pairs[i]>>32) == x; i++ {
				fi := uint32(sc.pairs[i])
				sc.cmbM[base+int(fi>>6)] |= 1 << (fi & 63)
			}
		}
		sc.cmbOff = append(sc.cmbOff, int32(len(sc.cmbX)))
	}
}

// The fused-mask sentinel bits: bitG is set in every maskL word and in
// maskR only for forbidden points; bitF is the mirror image. The AND of
// maskL[x] and maskR[y] therefore picks up bitG exactly when y is
// forbidden and bitF exactly when x is, on top of any shared
// protected-ball bits — one word test for the whole rejection predicate.
// Using them costs the top two mask bits, so the fused path requires at
// most 62 centers.
const (
	maskBitF = uint64(1) << 62
	maskBitG = uint64(1) << 63
)

// fillLR derives the fused admission masks from the pure membership
// masks and the forbidden flags of one owner level (W must be 1).
func (sc *decodeScratch) fillLR(msk []uint64, forb []bool) {
	if cap(sc.maskL) < len(msk) {
		sc.maskL = make([]uint64, len(msk))
		sc.maskR = make([]uint64, len(msk))
	}
	sc.maskL = sc.maskL[:len(msk)]
	sc.maskR = sc.maskR[:len(msk)]
	for i, m := range msk {
		l, r := m|maskBitG, m|maskBitF
		if forb[i] {
			l |= maskBitF
			r |= maskBitG
		}
		sc.maskL[i] = l
		sc.maskR[i] = r
	}
}

// fillMasks materializes the bit-parallel protected-ball membership of
// one owner level: for each point i of pts, a W-word mask whose bit fi
// says point i lies inside PB_ℓ(center fi) — one sorted merge of the
// strictly ascending point list against the level's combined ball list
// (see buildCombinedBalls). The returned words are scratch-owned and
// valid until the next call.
func (sc *decodeScratch) fillMasks(pts []PointEntry, k int, W int) []uint64 {
	need := len(pts) * W
	if cap(sc.mask) < need {
		sc.mask = make([]uint64, need)
	}
	m := sc.mask[:need]
	clear(m)
	i := 0
	for j := int(sc.cmbOff[k]); j < int(sc.cmbOff[k+1]); j++ {
		x := sc.cmbX[j]
		for i < len(pts) && pts[i].X < x {
			i++
		}
		if i == len(pts) {
			break
		}
		if pts[i].X == x {
			copy(m[i*W:(i+1)*W], sc.cmbM[j*W:(j+1)*W])
			i++
		}
	}
	return m
}

// appendHPath maps the winning dense-id path of the last decode onto
// global vertex ids, appending to out. Must only be called right after a
// decode of q that returned a nonnegative distance.
func (sc *decodeScratch) appendHPath(q *Query, out []int32) []int32 {
	if q.S.V == q.T.V {
		return append(out, q.S.V)
	}
	src, dst := int(sc.idOf.get(q.S.V)), int(sc.idOf.get(q.T.V))
	sc.hpath = sc.solver.PathTo(src, dst, sc.hpath[:0])
	for _, hv := range sc.hpath {
		out = append(out, sc.ids[hv])
	}
	return out
}

// sketchEdgeWeight returns the weight of the deduplicated sketch edge
// with the given unordered key, by binary search over the key-sorted
// sc.edges. The key must be present.
func (sc *decodeScratch) sketchEdgeWeight(key uint64) int64 {
	lo, hi := 0, len(sc.edges)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		e := &sc.edges[mid]
		if uint64(uint32(e.X))<<32|uint64(uint32(e.Y)) < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return sc.edges[lo].W
}

// findPointIdx returns the index of x in the strictly ascending point
// list, or -1 when absent.
func findPointIdx(pts []PointEntry, x int32) int {
	lo, hi := 0, len(pts)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if pts[mid].X < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(pts) && pts[lo].X == x {
		return lo
	}
	return -1
}

// containsI32 reports whether the sorted slice s contains v.
func containsI32(s []int32, v int32) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// containsU64 reports whether the sorted slice s contains v.
func containsU64(s []uint64, v uint64) bool {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s) && s[lo] == v
}

// mayBeInPB conservatively decides whether the owner vertex of label o
// could lie inside the level-ℓ protected ball of center f, using label data
// only. It returns false only when d(o,f) > λ_ℓ is provable:
//
//   - if o is itself a net point of the level, membership is exact via
//     f's label (absence from f's ball list means d > r_ℓ > λ_ℓ);
//   - otherwise, let m be f's nearest net point of the level (d(f,m) ≤
//     2^{ℓ-c-1}−1, present in f's list). By the triangle inequality
//     d(o,f) ≥ d(o,m) − d(f,m), and d(o,m) is exact in o's list (absence
//     means d(o,m) > r_ℓ, hence d(o,f) > r_ℓ − 2^{ℓ-c-1} > λ_ℓ).
//
// The certificate is sound always, and complete whenever d(o,F) > μ_ℓ —
// which is precisely when the stretch analysis requires owner edges to be
// admitted (μ_ℓ − 2·(2^{ℓ-c-1}−1) = λ_ℓ + 2 > λ_ℓ).
func mayBeInPB(o, f *Label, level int) bool {
	lambda := lambdaOf(level)
	if d, ok := o.DistTo(level, o.V); ok && d == 0 {
		return f.InProtectedBall(level, o.V)
	}
	k := level - f.C - 1
	if k < 0 || k >= len(f.Levels) {
		return true
	}
	pts := f.Levels[k].Points
	if len(pts) == 0 {
		return true
	}
	m := pts[0]
	for _, pe := range pts[1:] {
		if pe.D < m.D {
			m = pe
		}
	}
	do, ok := o.DistTo(level, m.X)
	if !ok {
		// m is outside o's level ball, so d(o,m) > r_ℓ and hence
		// d(o,f) > r_ℓ − d(f,m). With the paper's radii this certifies
		// "outside"; with ablation-shrunk radii it may not, in which case
		// stay conservative.
		r := labelBallRadius(o.C, level, o.RShrink)
		return r-m.D <= lambda
	}
	return do-m.D <= lambda
}

// labelBallRadius reconstructs the r_ℓ a label was extracted with from its
// self-described parameters.
func labelBallRadius(c, level, rShrink int) int32 {
	p := Params{C: c, RShrink: rShrink}
	return p.R(level)
}

func unorderedKey(a, b int32) uint64 {
	if a > b {
		a, b = b, a
	}
	return uint64(uint32(a))<<32 | uint64(uint32(b))
}
