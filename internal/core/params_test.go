package core

import "testing"

func TestNewParamsDerivesC(t *testing.T) {
	cases := []struct {
		eps   float64
		wantC int
	}{
		{6, 2},    // log2(1) = 0 -> clamp 2
		{3, 2},    // log2(2) = 1 -> clamp 2
		{1.5, 2},  // log2(4) = 2
		{1.4, 3},  // log2(4.28) = 2.1 -> ceil 3
		{1, 3},    // log2(6) = 2.58 -> 3
		{0.75, 3}, // log2(8) = 3
		{0.5, 4},  // log2(12) = 3.58 -> 4
		{0.1, 6},  // log2(60) = 5.9 -> 6
		{100, 2},  // very coarse still clamps at 2
	}
	for _, c := range cases {
		p, err := NewParams(c.eps, 1000)
		if err != nil {
			t.Fatalf("NewParams(%g): %v", c.eps, err)
		}
		if p.C != c.wantC {
			t.Errorf("eps=%g: c = %d, want %d", c.eps, p.C, c.wantC)
		}
	}
}

func TestNewParamsRejectsBadEpsilon(t *testing.T) {
	if _, err := NewParams(0, 10); err == nil {
		t.Error("eps=0 should fail")
	}
	if _, err := NewParams(-1, 10); err == nil {
		t.Error("eps<0 should fail")
	}
	if _, err := NewParams(1, -5); err == nil {
		t.Error("negative n should fail")
	}
}

func TestParamsMaxLevel(t *testing.T) {
	p, _ := NewParams(2, 1024)
	if p.MaxLevel != 10 {
		t.Errorf("MaxLevel = %d, want 10 for n=1024", p.MaxLevel)
	}
	// Tiny n: level range must still be non-empty (L >= c+1).
	p2, _ := NewParams(2, 4)
	if p2.MaxLevel != p2.C+1 {
		t.Errorf("tiny graph MaxLevel = %d, want c+1 = %d", p2.MaxLevel, p2.C+1)
	}
	if p2.NumLevelRange() != 1 {
		t.Errorf("tiny graph NumLevelRange = %d, want 1", p2.NumLevelRange())
	}
}

func TestParamsFormulas(t *testing.T) {
	p := Params{Epsilon: 1.5, C: 2, MaxLevel: 10, NumVertices: 1024}
	// rho_i = 2^{i-c}, lambda_i = 2^{i+1}, mu_i = rho+lambda,
	// r_i = mu_{i+1} + 2^i + rho_{i+1}.
	if got := p.Rho(5); got != 8 {
		t.Errorf("Rho(5) = %d, want 8", got)
	}
	if got := p.Lambda(5); got != 64 {
		t.Errorf("Lambda(5) = %d, want 64", got)
	}
	if got := p.Mu(5); got != 72 {
		t.Errorf("Mu(5) = %d, want 72", got)
	}
	// r_5 = mu_6 + 32 + rho_6 = (16+128) + 32 + 16 = 192.
	if got := p.R(5); got != 192 {
		t.Errorf("R(5) = %d, want 192", got)
	}
	if got := p.NetLevel(5); got != 2 {
		t.Errorf("NetLevel(5) = %d, want 2", got)
	}
	if got := p.LowestLevel(); got != 3 {
		t.Errorf("LowestLevel = %d, want 3", got)
	}
}

// Claim 1(a) of the paper: λ_i ≥ ρ_i + ρ_{i+1} + 2^i for all levels, for
// every c ≥ 2. Validate enforces it; check a spread of parameter sets.
func TestParamsValidateClaim1(t *testing.T) {
	for _, eps := range []float64{0.25, 0.5, 1, 2, 4} {
		for _, n := range []int{2, 10, 100, 100000} {
			p, err := NewParams(eps, n)
			if err != nil {
				t.Fatalf("NewParams(%g,%d): %v", eps, n, err)
			}
			if err := p.Validate(); err != nil {
				t.Errorf("Validate(eps=%g,n=%d): %v", eps, n, err)
			}
		}
	}
}

func TestParamsValidateRejectsBroken(t *testing.T) {
	if err := (Params{C: 1, MaxLevel: 5}).Validate(); err == nil {
		t.Error("c=1 should fail validation")
	}
	if err := (Params{C: 3, MaxLevel: 3}).Validate(); err == nil {
		t.Error("MaxLevel <= c should fail validation")
	}
}

// r_i must always exceed λ_i (the label ball must contain the protected
// ball, so that protected-ball membership is decidable from a label).
func TestRadiusDominatesLambda(t *testing.T) {
	p, _ := NewParams(1, 1<<20)
	for i := p.LowestLevel(); i <= p.MaxLevel; i++ {
		if p.R(i) <= p.Lambda(i) {
			t.Errorf("level %d: r=%d <= lambda=%d", i, p.R(i), p.Lambda(i))
		}
	}
}
