package core

import (
	"fmt"
	"sort"
	"sync"

	"fsdl/internal/graph"
	"fsdl/internal/nets"
)

// Scheme is the preprocessed labeling scheme for one graph: the net
// hierarchy plus the shared per-level structures from which the label of
// any vertex can be extracted. Extraction is deterministic, so a Scheme is
// exactly the paper's marker function L(·), evaluated lazily.
//
// A Scheme is safe for concurrent label extraction.
type Scheme struct {
	g      *graph.Graph
	h      *nets.Hierarchy
	params Params
	store  *levelStore

	mu    sync.Mutex
	cache map[int32]*Label
	// cacheLimit bounds the number of cached labels (0 disables caching).
	cacheLimit int
}

// BuildScheme preprocesses g into a forbidden-set distance labeling scheme
// with stretch 1+ε. Preprocessing is polynomial: it builds the net
// hierarchy and, per level, one truncated BFS of radius λ_ℓ from each net
// point.
func BuildScheme(g *graph.Graph, epsilon float64) (*Scheme, error) {
	params, err := NewParams(epsilon, g.NumVertices())
	if err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	h, err := nets.Build(g)
	if err != nil {
		return nil, fmt.Errorf("core: build net hierarchy: %w", err)
	}
	return &Scheme{
		g:          g,
		h:          h,
		params:     params,
		store:      buildStore(g, h, params),
		cache:      make(map[int32]*Label),
		cacheLimit: 64,
	}, nil
}

// BuildSchemeAblated is BuildScheme with the RShrink ablation knob: the
// label ball radii r_i are halved rShrink times below the paper's values.
// Safety still holds, but the (1+ε) stretch guarantee may not — the
// ablation experiment measures the damage. rShrink = 0 is BuildScheme.
func BuildSchemeAblated(g *graph.Graph, epsilon float64, rShrink int) (*Scheme, error) {
	if rShrink < 0 {
		return nil, fmt.Errorf("core: negative rShrink %d", rShrink)
	}
	params, err := NewParams(epsilon, g.NumVertices())
	if err != nil {
		return nil, err
	}
	params.RShrink = rShrink
	if err := params.Validate(); err != nil {
		return nil, err
	}
	h, err := nets.Build(g)
	if err != nil {
		return nil, fmt.Errorf("core: build net hierarchy: %w", err)
	}
	return &Scheme{
		g:          g,
		h:          h,
		params:     params,
		store:      buildStore(g, h, params),
		cache:      make(map[int32]*Label),
		cacheLimit: 64,
	}, nil
}

// Params returns the derived scheme parameters.
func (s *Scheme) Params() Params { return s.params }

// Graph returns the underlying graph.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Hierarchy returns the net hierarchy (exposed for the routing scheme and
// for tests that verify the analysis' net-point arguments).
func (s *Scheme) Hierarchy() *nets.Hierarchy { return s.h }

// SetCacheLimit bounds the internal label cache (0 disables caching).
func (s *Scheme) SetCacheLimit(limit int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cacheLimit = limit
	if limit == 0 {
		s.cache = make(map[int32]*Label)
	}
}

// Label extracts (or returns the cached) label of v.
func (s *Scheme) Label(v int) *Label {
	s.mu.Lock()
	if l, ok := s.cache[int32(v)]; ok {
		s.mu.Unlock()
		return l
	}
	s.mu.Unlock()
	l := s.store.extractLabel(v, graph.NewBFSScratch(s.g.NumVertices()))
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.cacheLimit > 0 {
		if len(s.cache) >= s.cacheLimit {
			// Evict an arbitrary entry; labels are cheap to re-extract and
			// query working sets are tiny, so plain random-ish eviction is
			// plenty.
			for k := range s.cache {
				delete(s.cache, k)
				break
			}
		}
		s.cache[int32(v)] = l
	}
	return l
}

// LabelBits returns the exact serialized size of L(v) in bits.
func (s *Scheme) LabelBits(v int) int {
	_, bits := s.Label(v).Encode()
	return bits
}

// Distance answers the forbidden-set query (s,t,F) end to end: it extracts
// the needed labels and decodes them. ok is false when s and t are
// disconnected in G\F (or an endpoint is itself forbidden).
func (s *Scheme) Distance(src, dst int, faults *graph.FaultSet) (int64, bool) {
	q, err := s.NewQuery(src, dst, faults)
	if err != nil {
		return 0, false
	}
	return q.Distance()
}

// NewQuery assembles the label-only query object for (src, dst, F). The
// returned Query holds nothing but labels: decoding uses no part of the
// scheme or graph, which is the distributed-data-structure contract of the
// paper.
func (s *Scheme) NewQuery(src, dst int, faults *graph.FaultSet) (*Query, error) {
	n := s.g.NumVertices()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("core: query endpoints (%d,%d) out of range [0,%d)", src, dst, n)
	}
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return nil, fmt.Errorf("core: query endpoint is itself forbidden")
	}
	q := &Query{S: s.Label(src), T: s.Label(dst)}
	fv := faults.Vertices()
	sort.Ints(fv) // deterministic label order → deterministic traces
	for _, f := range fv {
		q.VertexFaults = append(q.VertexFaults, s.Label(f))
	}
	for _, e := range faults.Edges() {
		if !s.g.HasEdge(e[0], e[1]) {
			return nil, fmt.Errorf("core: forbidden edge (%d,%d) is not a graph edge", e[0], e[1])
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*Label{s.Label(e[0]), s.Label(e[1])})
	}
	return q, nil
}

// StoreStats describes the shared level store — the preprocessed state
// behind label extraction — for observability (`fsdl stats`) and the
// preprocessing experiment.
type StoreStats struct {
	// Levels has one entry per scheme level, lowest first.
	Levels []LevelStats
	// TotalNetEdges sums the per-level net-graph edge counts.
	TotalNetEdges int64
}

// LevelStats describes one level of the store.
type LevelStats struct {
	// Level is the scheme level ℓ.
	Level int
	// NetPoints is |N_{ℓ-c-1}| (clamped at the hierarchy top).
	NetPoints int
	// NetEdges counts the level net graph's edges (0 at the lowest level,
	// which reuses the original graph).
	NetEdges int64
}

// StoreStats reports the sizes of the shared per-level structures.
func (s *Scheme) StoreStats() StoreStats {
	var out StoreStats
	for li := range s.store.levels {
		sl := &s.store.levels[li]
		ls := LevelStats{Level: sl.level}
		for v := range sl.isNet {
			if sl.isNet[v] {
				ls.NetPoints++
				if sl.adj != nil {
					ls.NetEdges += int64(len(sl.adj[v]))
				}
			}
		}
		ls.NetEdges /= 2 // adjacency stores both directions
		out.TotalNetEdges += ls.NetEdges
		out.Levels = append(out.Levels, ls)
	}
	return out
}
