package core

import (
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"

	"fsdl/internal/graph"
	"fsdl/internal/lru"
	"fsdl/internal/nets"
)

// Scheme is the preprocessed labeling scheme for one graph: the net
// hierarchy plus the shared per-level structures from which the label of
// any vertex can be extracted. Extraction is deterministic, so a Scheme is
// exactly the paper's marker function L(·), evaluated lazily.
//
// A Scheme is safe for concurrent label extraction.
type Scheme struct {
	g      *graph.Graph
	h      *nets.Hierarchy
	params Params
	store  *levelStore

	// cache holds recently extracted labels, sharded so concurrent
	// extractors on different shards never contend. SetCacheLimit swaps
	// the whole cache atomically, so readers never lock around the
	// pointer load. The hit/miss counters are monotonic across swaps.
	cache       atomic.Pointer[lru.Cache[int32, *Label]]
	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// scratch pools the O(n) BFS state label extraction needs, so a cache
	// miss costs one checkout instead of an O(n) allocation (the previous
	// design allocated a fresh BFSScratch per miss, under a global lock).
	scratch sync.Pool
}

// DefaultLabelCacheSize is the label-cache capacity a fresh Scheme starts
// with; SetCacheLimit overrides it.
const DefaultLabelCacheSize = 64

// labelCacheShards spreads the label cache's locks. Label working sets
// are small, so a modest shard count already removes all contention.
const labelCacheShards = 8

func newLabelCache(limit int) *lru.Cache[int32, *Label] {
	return lru.New[int32, *Label](limit, labelCacheShards, func(k int32) uint64 {
		return lru.HashU32(uint32(k))
	})
}

// newScheme wires the shared constructor state: the cache and the
// BFS-scratch pool. Every Scheme construction site (BuildScheme,
// BuildSchemeAblated, LoadScheme) must go through it.
func newScheme(g *graph.Graph, h *nets.Hierarchy, params Params, store *levelStore) *Scheme {
	s := &Scheme{g: g, h: h, params: params, store: store}
	s.cache.Store(newLabelCache(DefaultLabelCacheSize))
	n := g.NumVertices()
	s.scratch.New = func() any { return newExtractScratch(n) }
	return s
}

// BuildScheme preprocesses g into a forbidden-set distance labeling scheme
// with stretch 1+ε. Preprocessing is polynomial: it builds the net
// hierarchy and, per level, one truncated BFS of radius λ_ℓ from each net
// point.
func BuildScheme(g *graph.Graph, epsilon float64) (*Scheme, error) {
	return BuildSchemeWorkers(g, epsilon, 0)
}

// BuildSchemeWorkers is BuildScheme with an explicit worker count for the
// preprocessing pipeline (≤ 0 means GOMAXPROCS). Both phases — the net
// hierarchy and the per-net-point truncated BFS passes of the level store
// — fan out over the pool; the resulting scheme is bit-identical for any
// worker count (see TestParallelBuildDeterminism).
func BuildSchemeWorkers(g *graph.Graph, epsilon float64, workers int) (*Scheme, error) {
	params, err := NewParams(epsilon, g.NumVertices())
	if err != nil {
		return nil, err
	}
	if err := params.Validate(); err != nil {
		return nil, err
	}
	// The scattered scan order keeps the hierarchy stable under local
	// edge mutations (see nets.ScatteredOrder) — the property
	// BuildSchemeIncremental's delta scoping depends on.
	h, err := nets.BuildWithOrderWorkers(g, nets.ScatteredOrder(g.NumVertices()), workers)
	if err != nil {
		return nil, fmt.Errorf("core: build net hierarchy: %w", err)
	}
	return newScheme(g, h, params, buildStore(g, h, params, workers)), nil
}

// BuildSchemeAblated is BuildScheme with the RShrink ablation knob: the
// label ball radii r_i are halved rShrink times below the paper's values.
// Safety still holds, but the (1+ε) stretch guarantee may not — the
// ablation experiment measures the damage. rShrink = 0 is BuildScheme.
func BuildSchemeAblated(g *graph.Graph, epsilon float64, rShrink int) (*Scheme, error) {
	if rShrink < 0 {
		return nil, fmt.Errorf("core: negative rShrink %d", rShrink)
	}
	params, err := NewParams(epsilon, g.NumVertices())
	if err != nil {
		return nil, err
	}
	params.RShrink = rShrink
	if err := params.Validate(); err != nil {
		return nil, err
	}
	h, err := nets.BuildWithOrder(g, nets.ScatteredOrder(g.NumVertices()))
	if err != nil {
		return nil, fmt.Errorf("core: build net hierarchy: %w", err)
	}
	return newScheme(g, h, params, buildStore(g, h, params, 0)), nil
}

// Params returns the derived scheme parameters.
func (s *Scheme) Params() Params { return s.params }

// Graph returns the underlying graph.
func (s *Scheme) Graph() *graph.Graph { return s.g }

// Hierarchy returns the net hierarchy (exposed for the routing scheme and
// for tests that verify the analysis' net-point arguments).
func (s *Scheme) Hierarchy() *nets.Hierarchy { return s.h }

// SetCacheLimit bounds the internal label cache (0 disables caching). The
// previous cache's entries are dropped.
func (s *Scheme) SetCacheLimit(limit int) {
	s.cache.Store(newLabelCache(limit))
}

// LabelCacheStats reports the label cache's cumulative hit/miss counts.
// The counters survive SetCacheLimit swaps.
func (s *Scheme) LabelCacheStats() (hits, misses int64) {
	return s.cacheHits.Load(), s.cacheMisses.Load()
}

// Label extracts (or returns the cached) label of v.
func (s *Scheme) Label(v int) *Label {
	cache := s.cache.Load()
	if l, ok := cache.Get(int32(v)); ok {
		s.cacheHits.Add(1)
		return l
	}
	s.cacheMisses.Add(1)
	sc := s.scratch.Get().(*extractScratch)
	l := s.store.extractLabel(v, sc)
	s.scratch.Put(sc)
	cache.Put(int32(v), l)
	return l
}

// Labels extracts the labels of vs in bulk, fanning the cache misses out
// over the available CPUs. The result is index-aligned with vs. It is the
// batch counterpart of Label — persistence and batch serving extract
// thousands of labels, and each extraction is an independent truncated-BFS
// bundle, so the work parallelizes perfectly.
func (s *Scheme) Labels(vs []int) []*Label {
	out := make([]*Label, len(vs))
	workers := min(runtime.GOMAXPROCS(0), len(vs))
	if workers <= 1 {
		for i, v := range vs {
			out[i] = s.Label(v)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(vs) {
					return
				}
				out[i] = s.Label(vs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// LabelBits returns the exact serialized size of L(v) in bits.
func (s *Scheme) LabelBits(v int) int {
	_, bits := s.Label(v).Encode()
	return bits
}

// Distance answers the forbidden-set query (s,t,F) end to end: it extracts
// the needed labels and decodes them. ok is false when s and t are
// disconnected in G\F (or an endpoint is itself forbidden).
func (s *Scheme) Distance(src, dst int, faults *graph.FaultSet) (int64, bool) {
	q, err := s.NewQuery(src, dst, faults)
	if err != nil {
		return 0, false
	}
	return q.Distance()
}

// NewQuery assembles the label-only query object for (src, dst, F). The
// returned Query holds nothing but labels: decoding uses no part of the
// scheme or graph, which is the distributed-data-structure contract of the
// paper.
func (s *Scheme) NewQuery(src, dst int, faults *graph.FaultSet) (*Query, error) {
	n := s.g.NumVertices()
	if src < 0 || src >= n || dst < 0 || dst >= n {
		return nil, fmt.Errorf("core: query endpoints (%d,%d) out of range [0,%d)", src, dst, n)
	}
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return nil, fmt.Errorf("core: query endpoint is itself forbidden")
	}
	q := &Query{S: s.Label(src), T: s.Label(dst)}
	fv := faults.Vertices()
	slices.Sort(fv) // deterministic label order → deterministic traces
	for _, f := range fv {
		q.VertexFaults = append(q.VertexFaults, s.Label(f))
	}
	for _, e := range faults.Edges() {
		if !s.g.HasEdge(e[0], e[1]) {
			return nil, fmt.Errorf("core: forbidden edge (%d,%d) is not a graph edge", e[0], e[1])
		}
		q.EdgeFaults = append(q.EdgeFaults, [2]*Label{s.Label(e[0]), s.Label(e[1])})
	}
	return q, nil
}

// StoreStats describes the shared level store — the preprocessed state
// behind label extraction — for observability (`fsdl stats`) and the
// preprocessing experiment.
type StoreStats struct {
	// Levels has one entry per scheme level, lowest first.
	Levels []LevelStats
	// TotalNetEdges sums the per-level net-graph edge counts.
	TotalNetEdges int64
}

// LevelStats describes one level of the store.
type LevelStats struct {
	// Level is the scheme level ℓ.
	Level int
	// NetPoints is |N_{ℓ-c-1}| (clamped at the hierarchy top).
	NetPoints int
	// NetEdges counts the level net graph's edges (0 at the lowest level,
	// which reuses the original graph).
	NetEdges int64
}

// StoreStats reports the sizes of the shared per-level structures.
func (s *Scheme) StoreStats() StoreStats {
	var out StoreStats
	for li := range s.store.levels {
		sl := &s.store.levels[li]
		ls := LevelStats{
			Level:     sl.level,
			NetPoints: len(s.h.Level(int(sl.netLvl))),
			// The packed CSR entries store both directions of every edge.
			NetEdges: int64(len(sl.entries)) / 2,
		}
		out.TotalNetEdges += ls.NetEdges
		out.Levels = append(out.Levels, ls)
	}
	return out
}
