//go:build race

package core

// raceEnabled reports whether the race detector is on. Under -race the
// runtime intentionally randomizes sync.Pool reuse to expose races, so
// allocation-count assertions are meaningless and are skipped.
const raceEnabled = true
