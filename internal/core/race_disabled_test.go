//go:build !race

package core

// raceEnabled reports whether the race detector is on; see the race
// variant for why alloc assertions check it.
const raceEnabled = false
