package wgraph

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/graph"
)

// weightedGrid builds a w×h grid with random weights in [1, maxW].
func weightedGrid(t testing.TB, w, h int, maxW int32, rng *rand.Rand) *WeightedGraph {
	t.Helper()
	wg := NewWeightedGraph(w * h)
	add := func(u, v int) {
		if err := wg.AddEdge(u, v, 1+rng.Int31n(maxW)); err != nil {
			t.Fatal(err)
		}
	}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				add(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				add(y*w+x, (y+1)*w+x)
			}
		}
	}
	return wg
}

func TestAddEdgeValidation(t *testing.T) {
	wg := NewWeightedGraph(3)
	if err := wg.AddEdge(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := wg.AddEdge(1, 0, 3); err == nil {
		t.Error("duplicate edge must be rejected")
	}
	if err := wg.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop must be rejected")
	}
	if err := wg.AddEdge(0, 2, 0); err == nil {
		t.Error("zero weight must be rejected")
	}
	if err := wg.AddEdge(0, 5, 1); err == nil {
		t.Error("out-of-range endpoint must be rejected")
	}
}

func TestSubdivideStructure(t *testing.T) {
	wg := NewWeightedGraph(3)
	wg.AddEdge(0, 1, 3) // path of 3 unit edges via 2 midpoints
	wg.AddEdge(1, 2, 1) // stays a single edge
	sub, err := wg.Subdivide()
	if err != nil {
		t.Fatal(err)
	}
	if sub.G.NumVertices() != 5 { // 3 original + 2 midpoints
		t.Fatalf("subdivision has %d vertices, want 5", sub.G.NumVertices())
	}
	if sub.G.NumEdges() != 4 {
		t.Fatalf("subdivision has %d edges, want 4", sub.G.NumEdges())
	}
	if d := sub.G.Dist(0, 1); d != 3 {
		t.Errorf("d(0,1) = %d in subdivision, want weight 3", d)
	}
	if d := sub.G.Dist(0, 2); d != 4 {
		t.Errorf("d(0,2) = %d, want 4", d)
	}
}

func TestTranslateFaults(t *testing.T) {
	wg := NewWeightedGraph(3)
	wg.AddEdge(0, 1, 3)
	wg.AddEdge(1, 2, 1)
	sub, _ := wg.Subdivide()

	f := graph.FaultVertices(1)
	f.AddEdge(0, 1) // weight 3: becomes a midpoint fault
	f.AddEdge(1, 2) // weight 1: stays an edge fault
	tf, err := sub.TranslateFaults(f)
	if err != nil {
		t.Fatal(err)
	}
	if !tf.HasVertex(1) {
		t.Error("original vertex fault must carry over")
	}
	if tf.NumVertices() != 2 { // vertex 1 + one midpoint of (0,1)
		t.Errorf("translated vertex faults = %d, want 2", tf.NumVertices())
	}
	if !tf.HasEdge(1, 2) {
		t.Error("weight-1 edge fault must stay an edge fault")
	}
	// Unknown edges and subdivision vertices are rejected.
	bad := graph.NewFaultSet()
	bad.AddEdge(0, 2)
	if _, err := sub.TranslateFaults(bad); err == nil {
		t.Error("non-edge fault must be rejected")
	}
	bad2 := graph.FaultVertices(4) // a midpoint, not an original vertex
	if _, err := sub.TranslateFaults(bad2); err == nil {
		t.Error("midpoint vertex fault must be rejected")
	}
	if tf, err := sub.TranslateFaults(nil); err != nil || tf.Size() != 0 {
		t.Error("nil faults must translate to empty")
	}
}

func TestWeightedSchemeGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	wg := weightedGrid(t, 6, 6, 4, rng)
	s, err := BuildScheme(wg, 2)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := wg.Subdivide()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 40; trial++ {
		u, v := rng.Intn(36), rng.Intn(36)
		f := graph.NewFaultSet()
		for i := 0; i < rng.Intn(4); i++ {
			f.AddVertex(rng.Intn(36))
		}
		if rng.Intn(2) == 1 {
			e := wgRandomEdge(wg, rng)
			f.AddEdge(e.U, e.V)
		}
		if f.HasVertex(u) || f.HasVertex(v) {
			continue
		}
		truth, reachable := sub.ExactDistance(u, v, f)
		est, ok := s.Distance(u, v, f)
		if reachable != ok {
			t.Fatalf("(%d,%d): ok=%v, want %v", u, v, ok, reachable)
		}
		if !ok {
			continue
		}
		if est < truth {
			t.Fatalf("(%d,%d): estimate %d below true weighted distance %d", u, v, est, truth)
		}
		if truth > 0 && float64(est) > 3*float64(truth)+1e-9 {
			t.Fatalf("(%d,%d): estimate %d exceeds 3x true %d", u, v, est, truth)
		}
	}
}

func wgRandomEdge(wg *WeightedGraph, rng *rand.Rand) WeightedEdge {
	return wg.edges[rng.Intn(len(wg.edges))]
}

func TestWeightedEndpointFault(t *testing.T) {
	wg := NewWeightedGraph(2)
	wg.AddEdge(0, 1, 5)
	s, err := BuildScheme(wg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s.Distance(0, 1, nil); !ok || d < 5 {
		t.Fatalf("Distance = (%d,%v), want >= 5", d, ok)
	}
	f := graph.NewFaultSet()
	f.AddEdge(0, 1)
	if _, ok := s.Distance(0, 1, f); ok {
		t.Error("cutting the only (weighted) edge must disconnect")
	}
	if _, ok := s.Distance(0, 5, nil); ok {
		t.Error("querying a subdivision vertex must fail")
	}
}

// Property: on random weighted graphs, the weighted scheme matches the
// subdivision ground truth within the stretch bound.
func TestWeightedSchemeProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("slow property test")
	}
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(20)
		wg := NewWeightedGraph(n)
		// Random connected weighted graph: spanning tree + extras.
		perm := rng.Perm(n)
		for i := 1; i < n; i++ {
			wg.AddEdge(perm[i], perm[rng.Intn(i)], 1+rng.Int31n(3))
		}
		for i := 0; i < n/2; i++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u != v {
				wg.AddEdge(u, v, 1+rng.Int31n(3)) // duplicate errors ignored
			}
		}
		s, err := BuildScheme(wg, 2)
		if err != nil {
			return false
		}
		sub, err := wg.Subdivide()
		if err != nil {
			return false
		}
		for trial := 0; trial < 6; trial++ {
			u, v := rng.Intn(n), rng.Intn(n)
			f := graph.NewFaultSet()
			if rng.Intn(2) == 1 {
				fv := rng.Intn(n)
				if fv != u && fv != v {
					f.AddVertex(fv)
				}
			}
			truth, reachable := sub.ExactDistance(u, v, f)
			est, ok := s.Distance(u, v, f)
			if reachable != ok {
				return false
			}
			if ok && (est < truth || (truth > 0 && float64(est) > 3*float64(truth)+1e-9)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestFromEdgeWeights(t *testing.T) {
	weights := map[[2]int]int32{{0, 1}: 3, {1, 2}: 2}
	wg, err := FromEdgeWeights(3, weights)
	if err != nil {
		t.Fatal(err)
	}
	if wg.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", wg.NumEdges())
	}
	s, err := BuildScheme(wg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := s.Distance(0, 2, nil); !ok || d < 5 {
		t.Fatalf("Distance(0,2) = (%d,%v), want >= 5", d, ok)
	}
	bad := map[[2]int]int32{{0, 9}: 1}
	if _, err := FromEdgeWeights(3, bad); err == nil {
		t.Error("out-of-range edge must be rejected")
	}
}
