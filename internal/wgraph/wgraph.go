// Package wgraph extends the (unweighted) labeling scheme to graphs with
// small integer edge weights — the road-network setting the paper's
// Applications section motivates ("extend the notion of hub labels to
// allow dynamic and forbidden-set distance labels... road closures,
// accidents") — via the standard subdivision reduction: an edge of weight
// w becomes a path of w unit edges through w−1 fresh vertices. For weights
// bounded by W the doubling dimension grows by at most an O(log W)
// additive term, so all of the scheme's guarantees carry over with the
// corresponding constants.
//
// Faults translate exactly: a forbidden original vertex is forbidden in
// the subdivision; a forbidden original edge forbids one of its
// subdivision vertices (or the unit edge itself when w = 1).
package wgraph

import (
	"fmt"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// WeightedGraph is an undirected graph with positive integer edge weights.
type WeightedGraph struct {
	n     int
	edges []WeightedEdge
	index map[[2]int32]int32 // canonical (u<v) -> index into edges
}

// WeightedEdge is one weighted edge.
type WeightedEdge struct {
	U, V   int
	Weight int32
}

// NewWeightedGraph returns an empty weighted graph on n vertices.
func NewWeightedGraph(n int) *WeightedGraph {
	return &WeightedGraph{n: n, index: make(map[[2]int32]int32)}
}

// NumVertices returns the number of original vertices.
func (w *WeightedGraph) NumVertices() int { return w.n }

// NumEdges returns the number of weighted edges.
func (w *WeightedGraph) NumEdges() int { return len(w.edges) }

// AddEdge inserts the edge (u,v) with the given positive weight.
func (w *WeightedGraph) AddEdge(u, v int, weight int32) error {
	if u < 0 || u >= w.n || v < 0 || v >= w.n {
		return fmt.Errorf("wgraph: edge (%d,%d) out of range [0,%d)", u, v, w.n)
	}
	if u == v {
		return fmt.Errorf("wgraph: self-loop at %d", u)
	}
	if weight <= 0 {
		return fmt.Errorf("wgraph: weight %d must be positive", weight)
	}
	key := canonical(u, v)
	if _, dup := w.index[key]; dup {
		return fmt.Errorf("wgraph: duplicate edge (%d,%d)", u, v)
	}
	w.index[key] = int32(len(w.edges))
	w.edges = append(w.edges, WeightedEdge{U: u, V: v, Weight: weight})
	return nil
}

// Subdivision is the unit-edge expansion of a weighted graph, with the
// bookkeeping to translate vertices and faults between the two worlds.
type Subdivision struct {
	// G is the subdivided unweighted graph. Original vertices keep their
	// ids 0..n−1; subdivision vertices follow.
	G *graph.Graph
	// midpoints[i] lists the subdivision vertices of edge i, in order
	// from U to V (empty for weight-1 edges).
	midpoints [][]int32
	index     map[[2]int32]int32
	n         int
}

// Subdivide expands the weighted graph into unit edges.
func (w *WeightedGraph) Subdivide() (*Subdivision, error) {
	total := w.n
	for _, e := range w.edges {
		total += int(e.Weight) - 1
	}
	b := graph.NewBuilder(total)
	midpoints := make([][]int32, len(w.edges))
	next := w.n
	for i, e := range w.edges {
		prev := e.U
		for k := int32(1); k < e.Weight; k++ {
			midpoints[i] = append(midpoints[i], int32(next))
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, e.V)
	}
	g, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("wgraph: subdivide: %w", err)
	}
	return &Subdivision{G: g, midpoints: midpoints, index: w.index, n: w.n}, nil
}

// TranslateFaults maps a fault set over the weighted graph (original
// vertex ids; edges as original endpoints) to a fault set over the
// subdivision. An edge fault forbids its first subdivision vertex, or the
// unit edge itself for weight-1 edges.
func (s *Subdivision) TranslateFaults(f *graph.FaultSet) (*graph.FaultSet, error) {
	out := graph.NewFaultSet()
	if f == nil {
		return out, nil
	}
	for _, v := range f.Vertices() {
		if v < 0 || v >= s.n {
			return nil, fmt.Errorf("wgraph: fault vertex %d is not an original vertex", v)
		}
		out.AddVertex(v)
	}
	for _, e := range f.Edges() {
		idx, ok := s.index[canonical(e[0], e[1])]
		if !ok {
			return nil, fmt.Errorf("wgraph: fault edge (%d,%d) is not a weighted edge", e[0], e[1])
		}
		if mids := s.midpoints[idx]; len(mids) > 0 {
			out.AddVertex(int(mids[0]))
		} else {
			out.AddEdge(e[0], e[1])
		}
	}
	return out, nil
}

// Scheme is the forbidden-set distance labeling scheme for a weighted
// graph: the core scheme built on the subdivision, plus the fault
// translation.
type Scheme struct {
	sub  *Subdivision
	core *core.Scheme
}

// BuildScheme preprocesses a weighted graph at precision ε.
func BuildScheme(w *WeightedGraph, epsilon float64) (*Scheme, error) {
	sub, err := w.Subdivide()
	if err != nil {
		return nil, err
	}
	cs, err := core.BuildScheme(sub.G, epsilon)
	if err != nil {
		return nil, err
	}
	return &Scheme{sub: sub, core: cs}, nil
}

// Core exposes the underlying unweighted scheme (for label inspection).
func (s *Scheme) Core() *core.Scheme { return s.core }

// SubdividedSize returns the vertex count of the unit-edge expansion.
func (s *Scheme) SubdividedSize() int { return s.sub.G.NumVertices() }

// Distance answers the weighted forbidden-set query (u,v,F): u, v and the
// faults are in original-graph terms; the answer is a (1+ε)-approximate
// weighted distance in W\F. ok is false when disconnected.
func (s *Scheme) Distance(u, v int, faults *graph.FaultSet) (int64, bool) {
	if u < 0 || u >= s.sub.n || v < 0 || v >= s.sub.n {
		return 0, false
	}
	tf, err := s.sub.TranslateFaults(faults)
	if err != nil {
		return 0, false
	}
	return s.core.Distance(u, v, tf)
}

// ExactDistance computes the true weighted surviving distance by Dijkstra
// on the subdivision — the ground truth the tests and experiments compare
// against.
func (s *Subdivision) ExactDistance(u, v int, faults *graph.FaultSet) (int64, bool) {
	tf, err := s.TranslateFaults(faults)
	if err != nil {
		return 0, false
	}
	d := s.G.DistAvoiding(u, v, tf)
	if !graph.Reachable(d) {
		return 0, false
	}
	return int64(d), true
}

func canonical(u, v int) [2]int32 {
	if u > v {
		u, v = v, u
	}
	return [2]int32{int32(u), int32(v)}
}

// FromEdgeWeights builds a weighted graph from the (topology, weights)
// pair produced by graph.ReadDIMACS.
func FromEdgeWeights(n int, weights map[[2]int]int32) (*WeightedGraph, error) {
	wg := NewWeightedGraph(n)
	for e, w := range weights {
		if err := wg.AddEdge(e[0], e[1], w); err != nil {
			return nil, err
		}
	}
	return wg, nil
}
