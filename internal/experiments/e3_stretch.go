package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/baseline"
	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/stats"
)

// RunE3Stretch measures the achieved stretch of forbidden-set queries
// against exact recomputation, sweeping the fault-set size, on three
// workload families. Theorem 2.1 demands every estimate lie in
// [d, (1+ε)d]; the table records observed mean/max stretch, the number of
// guarantee violations (must be 0), and how often the *naive*
// failure-free baseline gives unsafe answers on the same queries.
func RunE3Stretch(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 3))
	const epsilon = 2.0
	faultSizes := []int{0, 1, 2, 4, 8, 16}
	queries := 60
	var workloads []workload
	if cfg.Quick {
		faultSizes = []int{0, 2, 4}
		queries = 10
		workloads = append(workloads, gridWorkload(10))
	} else {
		workloads = append(workloads, gridWorkload(32))
		rgg, err := rggWorkload(1024, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, rgg)
		road, err := roadWorkload(24, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, road)
	}

	table := stats.NewTable("workload", "|F|", "queries", "disconn", "mean stretch", "max stretch",
		"bound", "violations", "naive-FF unsafe")
	for _, w := range workloads {
		s, err := core.BuildScheme(w.g, epsilon)
		if err != nil {
			return err
		}
		s.SetCacheLimit(256)
		naive, err := baseline.NewNaiveFF(w.g, epsilon)
		if err != nil {
			return err
		}
		n := w.g.NumVertices()
		for _, fs := range faultSizes {
			var stretch stats.Summary
			violations, disconnected, naiveUnsafe := 0, 0, 0
			for qi := 0; qi < queries; qi++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src == dst {
					continue
				}
				f := randomFaultSet(n, fs, src, dst, rng)
				truth := w.g.DistAvoiding(src, dst, f)
				est, ok := s.Distance(src, dst, f)
				if !graph.Reachable(truth) {
					disconnected++
					if ok {
						violations++
					}
					continue
				}
				if !ok || est < int64(truth) || float64(est) > (1+epsilon)*float64(truth)+1e-9 {
					violations++
					continue
				}
				stretch.Add(float64(est) / float64(truth))
				if fs > 0 && naive.ViolatesSafety(w.g, src, dst, f) {
					naiveUnsafe++
				}
			}
			table.AddRow(w.name, fs, stretch.N(), disconnected, stretch.Mean(), stretch.Max(),
				1+epsilon, violations, naiveUnsafe)
		}
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: violations = 0 everywhere; observed stretch well below the bound; the naive failure-free baseline turns unsafe as |F| grows.")

	// Adversarial fault models on a grid: the guarantee is per-F, so the
	// model should not matter for correctness — only for how often the
	// naive baseline breaks and queries disconnect.
	side := 16
	perModel := 40
	if cfg.Quick {
		side = 9
		perModel = 8
	}
	g := gen.Grid2D(side, side)
	s, err := core.BuildScheme(g, epsilon)
	if err != nil {
		return err
	}
	s.SetCacheLimit(512)
	naive, err := baseline.NewNaiveFF(g, epsilon)
	if err != nil {
		return err
	}
	n := g.NumVertices()
	models := []struct {
		name string
		gen  func(src, dst int) *graph.FaultSet
	}{
		{"random-8", func(src, dst int) *graph.FaultSet {
			return gen.RandomVertexFaults(g, 8, []int{src, dst}, rng)
		}},
		{"clustered-8", func(src, dst int) *graph.FaultSet {
			return gen.ClusteredFaults(g, 8, []int{src, dst}, rng)
		}},
		{"cut-targeted-4", func(src, dst int) *graph.FaultSet {
			return gen.CutFaults(g, 4, []int{src, dst}, rng)
		}},
		{"wall-with-gap", func(src, dst int) *graph.FaultSet {
			w, err := gen.WallFaults(side, side, side/2, []int{0}, []int{src, dst})
			if err != nil {
				return graph.NewFaultSet()
			}
			return w
		}},
		{"edges-6", func(src, dst int) *graph.FaultSet {
			return gen.RandomEdgeFaults(g, 6, rng)
		}},
	}
	advTable := stats.NewTable("fault model", "queries", "disconn", "mean stretch", "max stretch",
		"violations", "naive-FF unsafe")
	for _, model := range models {
		var stretch stats.Summary
		violations, disconnected, naiveUnsafe := 0, 0, 0
		for qi := 0; qi < perModel; qi++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			f := model.gen(src, dst)
			truth := g.DistAvoiding(src, dst, f)
			est, ok := s.Distance(src, dst, f)
			if !graph.Reachable(truth) {
				disconnected++
				if ok {
					violations++
				}
				continue
			}
			if !ok || est < int64(truth) || float64(est) > (1+epsilon)*float64(truth)+1e-9 {
				violations++
				continue
			}
			stretch.Add(float64(est) / float64(truth))
			if naive.ViolatesSafety(g, src, dst, f) {
				naiveUnsafe++
			}
		}
		advTable.AddRow(model.name, stretch.N(), disconnected, stretch.Mean(), stretch.Max(),
			violations, naiveUnsafe)
	}
	fmt.Fprintf(cfg.Out, "\nadversarial fault models (grid %dx%d, eps=%g):\n", side, side, epsilon)
	fmt.Fprint(cfg.Out, advTable.String())
	fmt.Fprintln(cfg.Out, "expectation: still 0 violations under every model; the wall model forces detours (stretch > 1) and breaks the naive baseline on most queries.")
	return nil
}
