package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/graph"
	"fsdl/internal/stats"
	"fsdl/internal/wgraph"
)

// RunE12WeightedRoads exercises the weighted extension (the road-network
// setting the Applications section motivates): integer edge weights are
// handled by the subdivision reduction, and the (1+ε) guarantee must hold
// for weighted surviving distances under vertex and edge faults.
func RunE12WeightedRoads(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 12))
	side := 14
	queries := 80
	maxW := int32(5)
	if cfg.Quick {
		side = 7
		queries = 15
		maxW = 3
	}
	// A weighted road grid: travel times 1..maxW per segment.
	wg := wgraph.NewWeightedGraph(side * side)
	for y := 0; y < side; y++ {
		for x := 0; x < side; x++ {
			if x+1 < side {
				if err := wg.AddEdge(y*side+x, y*side+x+1, 1+rng.Int31n(maxW)); err != nil {
					return err
				}
			}
			if y+1 < side {
				if err := wg.AddEdge(y*side+x, (y+1)*side+x, 1+rng.Int31n(maxW)); err != nil {
					return err
				}
			}
		}
	}
	s, err := wgraph.BuildScheme(wg, 2)
	if err != nil {
		return err
	}
	sub, err := wg.Subdivide()
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "weighted road grid %dx%d: %d junctions, %d segments (weights 1..%d), subdivision %d vertices\n",
		side, side, wg.NumVertices(), wg.NumEdges(), maxW, s.SubdividedSize())

	table := stats.NewTable("|F_v|", "|F_e|", "queries", "disconn", "mean stretch", "max stretch", "violations")
	for _, fc := range [][2]int{{0, 0}, {2, 0}, {0, 2}, {3, 3}} {
		var stretch stats.Summary
		violations, disconnected := 0, 0
		for qi := 0; qi < queries; qi++ {
			u, v := rng.Intn(side*side), rng.Intn(side*side)
			if u == v {
				continue
			}
			f := graph.NewFaultSet()
			for f.NumVertices() < fc[0] {
				x := rng.Intn(side * side)
				if x != u && x != v {
					f.AddVertex(x)
				}
			}
			for f.NumEdges() < fc[1] {
				gx, gy := rng.Intn(side), rng.Intn(side)
				x := gy*side + gx
				if rng.Intn(2) == 0 && gx+1 < side {
					f.AddEdge(x, x+1)
				} else if gy+1 < side {
					f.AddEdge(x, x+side)
				}
			}
			truth, reachable := sub.ExactDistance(u, v, f)
			est, ok := s.Distance(u, v, f)
			if !reachable {
				disconnected++
				if ok {
					violations++
				}
				continue
			}
			if !ok || est < truth || (truth > 0 && float64(est) > 3*float64(truth)+1e-9) {
				violations++
				continue
			}
			if truth > 0 {
				stretch.Add(float64(est) / float64(truth))
			}
		}
		table.AddRow(fc[0], fc[1], stretch.N(), disconnected, stretch.Mean(), stretch.Max(), violations)
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: 0 violations — the subdivision reduction carries the guarantee to weighted surviving distances (with constants inflated by the O(log W) dimension increase).")
	return nil
}
