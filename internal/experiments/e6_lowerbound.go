package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/lowerbound"
	"fsdl/internal/oracle"
	"fsdl/internal/stats"
)

// RunE6LowerBound regenerates the content of Theorem 3.1: the counting
// table over the family 𝓕_{n,α} (per-label lower bound Ω(2^{α/2})), a live
// run of the adjacency-reconstruction attack against this library's own
// labeling scheme, and the distinct-labels argument on the path P_n.
func RunE6LowerBound(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 6))

	// Part 1: the counting bound for growing α.
	combos := [][2]int{{4, 2}, {8, 2}, {16, 2}, {2, 4}, {3, 4}, {2, 6}}
	if cfg.Quick {
		combos = [][2]int{{4, 2}, {2, 4}}
	}
	table := stats.NewTable("p", "d", "n", "alpha", "|E(G)|", "|E(H)|", "free edges",
		"bits/label >=", "2^{alpha/2}")
	for _, pd := range combos {
		b, err := lowerbound.CountingBound(pd[0], pd[1])
		if err != nil {
			return err
		}
		table.AddRow(b.P, b.D, b.N, b.Alpha, b.GridEdges, b.SpannerEdges, b.FreeEdges,
			b.BitsPerLabel, math.Pow(2, float64(b.Alpha)/2))
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: the bits/label column tracks 2^{alpha/2} — the exponential dependence on alpha in Theorem 2.1's label length is necessary.")

	// Part 2: the reconstruction attack against our own scheme's oracle.
	p, d := 3, 2
	member, chosen, err := lowerbound.RandomFamilyMember(p, d, rng)
	if err != nil {
		return err
	}
	o, err := oracle.BuildStatic(member, 2)
	if err != nil {
		return err
	}
	rec, err := lowerbound.ReconstructAdjacency(member.NumVertices(), o)
	if err != nil {
		return err
	}
	match := rec.NumEdges() == member.NumEdges()
	if match {
		member.ForEachEdge(func(u, v int) {
			if !rec.HasEdge(u, v) {
				match = false
			}
		})
	}
	fmt.Fprintf(cfg.Out, "\nreconstruction attack on F_{%d,%d} member (n=%d, %d random free edges): recovered %d/%d edges, exact match: %v\n",
		p, d, member.NumVertices(), len(chosen), rec.NumEdges(), member.NumEdges(), match)

	// Part 3: distinct labels on P_n.
	n := 32
	if cfg.Quick {
		n = 12
	}
	s, err := core.BuildScheme(gen.Path(n), 2)
	if err != nil {
		return err
	}
	var encoded [][]byte
	for v := 0; v < n; v++ {
		buf, _ := s.Label(v).Encode()
		encoded = append(encoded, buf)
	}
	distinct := lowerbound.DistinctLabels(encoded)
	fmt.Fprintf(cfg.Out, "P_%d: %d distinct labels (Theorem 3.1 demands >= %d for any forbidden-set connectivity labeling)\n",
		n, distinct, n-2)
	return nil
}
