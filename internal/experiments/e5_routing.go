package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/routing"
	"fsdl/internal/stats"
)

// RunE5Routing measures the forbidden-set routing scheme (Theorem 2.7):
// delivery success, route stretch against exact surviving distances, table
// sizes versus label sizes, and the adaptive failure-discovery variant
// from the Applications section (how many recomputations a packet needs
// when the source does not know the failures in advance).
func RunE5Routing(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 5))
	const epsilon = 2.0
	var workloads []workload
	queries := 40
	faultSizes := []int{0, 2, 6}
	if cfg.Quick {
		workloads = append(workloads, gridWorkload(8))
		queries = 6
		faultSizes = []int{0, 2}
	} else {
		workloads = append(workloads, gridWorkload(24))
		rgg, err := rggWorkload(600, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, rgg)
	}

	table := stats.NewTable("workload", "|F|", "routes", "delivered", "mean stretch", "max stretch",
		"bound", "adaptive recomputes (mean)")
	for _, w := range workloads {
		cs, err := core.BuildScheme(w.g, epsilon)
		if err != nil {
			return err
		}
		cs.SetCacheLimit(1024)
		rs := routing.New(cs)
		n := w.g.NumVertices()
		for _, fs := range faultSizes {
			var stretch, recomputes stats.Summary
			routes, delivered := 0, 0
			for qi := 0; qi < queries; qi++ {
				src, dst := rng.Intn(n), rng.Intn(n)
				if src == dst {
					continue
				}
				f := randomFaultSet(n, fs, src, dst, rng)
				truth := w.g.DistAvoiding(src, dst, f)
				if !graph.Reachable(truth) {
					continue
				}
				routes++
				r, ok := rs.RouteWithFaults(src, dst, f)
				if !ok {
					continue
				}
				delivered++
				if truth > 0 {
					stretch.Add(float64(r.Length) / float64(truth))
				}
				if ar, ok := rs.AdaptiveRoute(src, dst, f, nil); ok {
					recomputes.Add(float64(ar.Recomputes))
				}
			}
			table.AddRow(w.name, fs, routes, delivered, stretch.Mean(), stretch.Max(),
				1+epsilon, recomputes.Mean())
		}
		// Table size accounting for a few vertices.
		var tableBits, labelBits stats.Summary
		for _, v := range sampleVertices(n, 8, rng) {
			tableBits.Add(float64(rs.TableBits(v)))
			labelBits.Add(float64(cs.LabelBits(v)))
		}
		fmt.Fprintf(cfg.Out, "%s: routing table avg %.0f bits vs label avg %.0f bits (overhead %.2fx)\n",
			w.name, tableBits.Mean(), labelBits.Mean(), tableBits.Mean()/labelBits.Mean())
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: every connected route delivers, stretch <= 1+eps, tables within a small factor of labels (Thm 2.7: same asymptotic size).")
	return nil
}
