package experiments

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
)

func quickCfg(buf *bytes.Buffer) Config {
	return Config{Out: buf, Quick: true, Seed: 42}
}

func TestAllExperimentsHaveDistinctIDs(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range All() {
		if e.ID == "" || e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Fatalf("experiment %+v incomplete", e.ID)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if len(seen) != 16 {
		t.Fatalf("expected 16 experiments, got %d", len(seen))
	}
}

func TestFind(t *testing.T) {
	if _, ok := Find("E3"); !ok {
		t.Error("E3 must exist")
	}
	if _, ok := Find("E99"); ok {
		t.Error("E99 must not exist")
	}
}

// Each experiment must run to completion in quick mode and produce a
// non-trivial report.
func TestExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			var buf bytes.Buffer
			if err := e.Run(quickCfg(&buf)); err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if buf.Len() < 40 {
				t.Fatalf("%s: report suspiciously short: %q", e.ID, buf.String())
			}
		})
	}
}

func TestE3ReportsZeroViolations(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE3Stretch(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "violations") {
		t.Fatalf("missing violations column:\n%s", out)
	}
	// Parse data rows: the violations column is the 8th; assert all zeros
	// by checking no row has a nonzero entry there. Simpler: every data
	// row of the E3 table ends with two integer columns; scan for the
	// word "violations" header and ensure rows contain " 0 " patterns is
	// brittle — instead rerun with a stricter check via the table text:
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "grid") {
			fields := strings.Fields(line)
			if len(fields) < 2 {
				continue
			}
			// violations is the second-to-last field.
			if fields[len(fields)-2] != "0" {
				t.Fatalf("nonzero violations in row: %q", line)
			}
		}
	}
}

func TestE6ReportsExactReconstruction(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE6LowerBound(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "exact match: true") {
		t.Fatalf("reconstruction must match exactly:\n%s", buf.String())
	}
}

func TestE8ReportsZeroSafetyViolations(t *testing.T) {
	var buf bytes.Buffer
	if err := RunE8Trace(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "0 violations") {
		t.Fatalf("trace safety check failed:\n%s", buf.String())
	}
}

func TestRunAllQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	var buf bytes.Buffer
	if err := RunAll(quickCfg(&buf)); err != nil {
		t.Fatal(err)
	}
	for _, e := range All() {
		if !strings.Contains(buf.String(), e.ID+" done") {
			t.Errorf("missing completion marker for %s", e.ID)
		}
	}
}

func TestHelperLog2Sq(t *testing.T) {
	if got := log2sq(1024); got < 99.9 || got > 100.1 {
		t.Errorf("log2sq(1024) = %v, want 100", got)
	}
}

func TestHelperFamilyOf(t *testing.T) {
	cases := map[string]string{
		"path n=256":  "path",
		"grid 16x16":  "grid",
		"rgg n=1024":  "rgg",
		"road 24x24":  "road",
		"mystery one": "mystery one",
	}
	for in, want := range cases {
		if got := familyOf(in); got != want {
			t.Errorf("familyOf(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestHelperSampleVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vs := sampleVertices(100, 10, rng)
	if len(vs) != 10 {
		t.Fatalf("got %d samples, want 10", len(vs))
	}
	seen := map[int]bool{}
	for _, v := range vs {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("bad sample %d", v)
		}
		seen[v] = true
	}
	all := sampleVertices(5, 10, rng)
	if len(all) != 5 {
		t.Errorf("oversized request should return all %d vertices, got %d", 5, len(all))
	}
}

func TestHelperRandomFaultSet(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := randomFaultSet(50, 5, 3, 7, rng)
	if f.NumVertices() != 5 {
		t.Fatalf("got %d faults, want 5", f.NumVertices())
	}
	if f.HasVertex(3) || f.HasVertex(7) {
		t.Error("endpoints must be protected")
	}
}

func TestHelperWorkloads(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := gridWorkload(5)
	if g.g.NumVertices() != 25 || g.name == "" {
		t.Error("gridWorkload broken")
	}
	r, err := rggWorkload(100, rng)
	if err != nil || !r.g.IsConnected() {
		t.Errorf("rggWorkload: %v", err)
	}
	rd, err := roadWorkload(8, rng)
	if err != nil || !rd.g.IsConnected() {
		t.Errorf("roadWorkload: %v", err)
	}
}
