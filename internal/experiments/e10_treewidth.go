package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/doubling"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/stats"
	"fsdl/internal/treelabel"
)

// RunE10TreewidthComparison positions the paper against its predecessor
// (Courcelle–Twigg 2007, exact forbidden-set labels parameterized by
// treewidth): on trees (treewidth 1), the CT-style exact scheme produces
// tiny O(log²n)-bit labels, while the doubling-dimension scheme still
// answers correctly but pays label length proportional to its
// 2^{O(α)} constants — and on bounded-doubling graphs with unbounded
// treewidth (grids: treewidth Θ(√n)) the comparison reverses, which is
// precisely the niche the paper carves out.
func RunE10TreewidthComparison(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 10))
	sizes := []int{64, 256, 1024}
	queries := 60
	if cfg.Quick {
		sizes = []int{32, 128}
		queries = 15
	}

	table := stats.NewTable("tree", "n", "alpha-hat", "CT bits (avg)", "FSDL bits (avg)", "ratio",
		"CT exact", "FSDL within 1+eps")
	for _, n := range sizes {
		for _, kind := range []string{"path", "random", "binary"} {
			var g *graph.Graph
			switch kind {
			case "path":
				g = gen.Path(n)
			case "random":
				g = gen.RandomTree(n, rng)
			case "binary":
				levels := 1
				for (1<<uint(levels))-1 < n {
					levels++
				}
				bt, err := gen.BalancedBinaryTree(levels)
				if err != nil {
					return err
				}
				g = bt
			}
			ct, err := treelabel.Build(g)
			if err != nil {
				return err
			}
			fs, err := core.BuildScheme(g, 2)
			if err != nil {
				return err
			}
			fs.SetCacheLimit(256)
			nn := g.NumVertices()
			est := doubling.EstimateDimension(g, 5, rng)

			var ctBits, fsBits stats.Summary
			for _, v := range sampleVertices(nn, 10, rng) {
				ctBits.Add(float64(ct.LabelBits(v)))
				fsBits.Add(float64(fs.LabelBits(v)))
			}
			ctExact, fsOK := 0, 0
			total := 0
			for q := 0; q < queries; q++ {
				u, v := rng.Intn(nn), rng.Intn(nn)
				if u == v {
					continue
				}
				f := gen.RandomVertexFaults(g, 2, []int{u, v}, rng)
				truth := g.DistAvoiding(u, v, f)
				total++
				var vf []*treelabel.Label
				for _, x := range f.Vertices() {
					vf = append(vf, ct.Label(x))
				}
				ctD, ctConn := treelabel.Query(ct.Label(u), ct.Label(v), vf, nil)
				if ctConn == graph.Reachable(truth) && (!ctConn || ctD == truth) {
					ctExact++
				}
				fsD, fsConn := fs.Distance(u, v, f)
				if fsConn == graph.Reachable(truth) &&
					(!fsConn || (fsD >= int64(truth) && float64(fsD) <= 3*float64(truth)+1e-9)) {
					fsOK++
				}
			}
			table.AddRow(kind, nn, fmt.Sprintf("%.1f", est.Dimension),
				ctBits.Mean(), fsBits.Mean(), fsBits.Mean()/ctBits.Mean(),
				fmt.Sprintf("%d/%d", ctExact, total), fmt.Sprintf("%d/%d", fsOK, total))
		}
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: on treewidth-1 inputs the CT-style exact labels are orders of magnitude smaller (and exact); both schemes stay correct. The doubling scheme's niche is graphs with small alpha but large treewidth (grids), where no CT-style scheme applies — and the binary tree (alpha ~ log n) is hard for BOTH parameterizations, as the theory predicts.")
	return nil
}
