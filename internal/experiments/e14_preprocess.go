package experiments

import (
	"bytes"
	"fmt"
	"time"

	"fsdl/internal/core"
	"fsdl/internal/stats"
)

// RunE14Preprocessing measures the other half of Theorem 2.1: "All the
// labels can be computed in polynomial time." It times scheme construction
// (net hierarchy + per-level net graphs) across an n sweep, reports the
// store sizes, and measures the persistence round trip (SaveScheme /
// LoadScheme) — the deployment path that amortizes preprocessing to a
// one-time cost.
func RunE14Preprocessing(cfg Config) error {
	sides := []int{8, 16, 24, 32, 48}
	if cfg.Quick {
		sides = []int{6, 10}
	}
	table := stats.NewTable("grid", "n", "build ms", "net edges (store)", "save KiB",
		"save ms", "load ms", "queries agree")
	var xs, ys []float64
	for _, side := range sides {
		w := gridWorkload(side)
		n := w.g.NumVertices()

		t0 := time.Now()
		s, err := core.BuildScheme(w.g, 2)
		if err != nil {
			return err
		}
		buildMS := float64(time.Since(t0).Microseconds()) / 1000

		st := s.StoreStats()

		var buf bytes.Buffer
		t1 := time.Now()
		if err := core.SaveScheme(&buf, s); err != nil {
			return err
		}
		saveMS := float64(time.Since(t1).Microseconds()) / 1000
		saveKiB := float64(buf.Len()) / 1024

		t2 := time.Now()
		loaded, err := core.LoadScheme(&buf)
		if err != nil {
			return err
		}
		loadMS := float64(time.Since(t2).Microseconds()) / 1000

		agree := true
		for _, pair := range [][2]int{{0, n - 1}, {n / 3, 2 * n / 3}} {
			d1, ok1 := s.Distance(pair[0], pair[1], nil)
			d2, ok2 := loaded.Distance(pair[0], pair[1], nil)
			if d1 != d2 || ok1 != ok2 {
				agree = false
			}
		}
		table.AddRow(w.name, n, buildMS, st.TotalNetEdges, saveKiB, saveMS, loadMS, agree)
		xs = append(xs, float64(n))
		ys = append(ys, buildMS)
	}
	fmt.Fprint(cfg.Out, table.String())
	if _, slope, ok := stats.FitPowerLaw(xs, ys); ok {
		fmt.Fprintf(cfg.Out, "build time ~ n^%.2f — comfortably polynomial (Theorem 2.1's preprocessing claim)\n", slope)
	}
	fmt.Fprintln(cfg.Out, "expectation: near-linear build at these scales (O(n log n · 2^{O(alpha+c)}) truncated-BFS work); persistence reloads in a fraction of the build time with bit-identical answers.")
	return nil
}
