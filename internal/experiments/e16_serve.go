package experiments

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"time"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/oracle"
	"fsdl/internal/server"
	"fsdl/internal/stats"
)

// RunE16Serve exercises the serving subsystem (internal/server) end to
// end: correctness of batch answers against the static oracle, a
// closed-loop mixed query/fail/recover load with latency and cache
// measurements, and the budget-degradation contract.
func RunE16Serve(cfg Config) error {
	side := 100 // n = 10,000: the acceptance-criterion store size
	pairsWanted := 128
	loadWorkers, loadIters := 8, 400
	if cfg.Quick {
		side = 16
		loadWorkers, loadIters = 4, 60
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := gridWorkload(side)
	n := w.g.NumVertices()
	fmt.Fprintf(cfg.Out, "serving workload: %s (n=%d)\n\n", w.name, n)

	// Build the scheme once, round-trip it through the on-disk container
	// format, and serve from the loaded store — the deployed shape.
	sch, err := core.BuildScheme(w.g, 2)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, sch, nil); err != nil {
		return err
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		return err
	}
	srv, err := server.New(server.Config{Store: st, Workers: loadWorkers, QueueDepth: 4 * loadWorkers})
	if err != nil {
		return err
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// --- Part 1: batch-distance answers == oracle.Static.Distance ----
	fmt.Fprintf(cfg.Out, "part 1: batch-distance of %d pairs vs the static oracle\n", pairsWanted)
	static, err := oracle.BuildStatic(w.g, 2)
	if err != nil {
		return err
	}
	faults := randomFaultSet(n, 8, 0, n-1, rng)
	pairs := make([][2]int, 0, pairsWanted)
	for len(pairs) < pairsWanted {
		pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	var batchResp struct {
		Answers []server.Answer `json:"answers"`
	}
	if err := postJSON(ts.URL+"/v1/batch-distance", map[string]any{
		"pairs": pairs, "fail": faults.Vertices(),
	}, &batchResp); err != nil {
		return err
	}
	if len(batchResp.Answers) != len(pairs) {
		return fmt.Errorf("e16: got %d answers for %d pairs", len(batchResp.Answers), len(pairs))
	}
	mismatches := 0
	for i, a := range batchResp.Answers {
		want, wantOK, err := static.Distance(pairs[i][0], pairs[i][1], faults)
		if err != nil {
			return err
		}
		if a.Error != "" || a.Connected != wantOK || (wantOK && a.Dist != want) {
			mismatches++
		}
	}
	fmt.Fprintf(cfg.Out, "  %d pairs, |F|=%d, mismatches vs oracle.Static: %d (expect 0)\n\n",
		len(pairs), faults.Size(), mismatches)
	if mismatches > 0 {
		return fmt.Errorf("e16: %d batch answers disagree with the static oracle", mismatches)
	}

	// --- Part 2: closed-loop load, mixed query/fail/recover ----------
	fmt.Fprintf(cfg.Out, "part 2: closed-loop load, %d workers x %d requests (mixed distance/batch/connected + fail/recover churn)\n",
		loadWorkers, loadIters)
	// A popular pair pool keeps the cache busy the way real traffic
	// (skewed toward hot routes) does.
	popular := make([][2]int, 32)
	for i := range popular {
		popular[i] = [2]int{rng.Intn(n), rng.Intn(n)}
	}
	var mu sync.Mutex
	latencies := map[string]*stats.Summary{
		"distance": {}, "batch": {}, "connected": {},
	}
	var wg sync.WaitGroup
	var firstErr error
	var errOnce sync.Once
	fail := func(err error) { errOnce.Do(func() { firstErr = err }) }
	start := time.Now()
	for wk := 0; wk < loadWorkers; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(cfg.Seed + int64(wk)*7919))
			for i := 0; i < loadIters; i++ {
				var kind string
				var body map[string]any
				var path string
				switch {
				case i%10 < 6: // 60% single distance, skewed to hot pairs
					kind, path = "distance", "/v1/distance"
					p := popular[r.Intn(len(popular))]
					body = map[string]any{"s": p[0], "t": p[1]}
				case i%10 < 8: // 20% small batches
					kind, path = "batch", "/v1/batch-distance"
					b := make([][2]int, 8)
					for j := range b {
						b[j] = popular[r.Intn(len(popular))]
					}
					body = map[string]any{"pairs": b}
				default: // 20% connectivity
					kind, path = "connected", "/v1/connected"
					body = map[string]any{"s": r.Intn(n), "t": r.Intn(n)}
				}
				t0 := time.Now()
				if err := postJSON(ts.URL+path, body, nil); err != nil {
					fail(err)
					return
				}
				el := time.Since(t0).Seconds() * 1000
				mu.Lock()
				latencies[kind].Add(el)
				mu.Unlock()
			}
		}(wk)
	}
	// One updater streams fail/recover churn through the overlay while
	// the query load runs, forcing cache invalidations.
	churn := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := rand.New(rand.NewSource(cfg.Seed + 104729))
		for i := 0; ; i++ {
			select {
			case <-churn:
				return
			case <-time.After(5 * time.Millisecond):
			}
			v := r.Intn(n)
			ep := "/v1/fail"
			if i%2 == 1 {
				ep = "/v1/recover"
			}
			if err := postJSON(ts.URL+ep, map[string]any{"vertices": []int{v}}, nil); err != nil {
				fail(err)
				return
			}
		}
	}()
	// Wait for the query workers, then stop the churn.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	queriersDone := make(chan struct{})
	go func() {
		// Queriers are loadWorkers of the WaitGroup; churn stops after
		// them. Poll elapsed instead of restructuring the WaitGroup.
		for {
			mu.Lock()
			total := latencies["distance"].N() + latencies["batch"].N() + latencies["connected"].N()
			mu.Unlock()
			if total >= loadWorkers*loadIters || firstErr != nil {
				close(queriersDone)
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
	}()
	<-queriersDone
	close(churn)
	<-done
	if firstErr != nil {
		return firstErr
	}
	elapsed := time.Since(start)

	metText, err := getText(ts.URL + "/metrics")
	if err != nil {
		return err
	}
	hitRate := metricValue(metText, "fsdl_cache_hit_rate")
	flushes := metricValue(metText, "fsdl_cache_flushes_total")
	totalReq := loadWorkers * loadIters
	table := stats.NewTable("endpoint", "requests", "p50 ms", "p99 ms", "max ms")
	for _, kind := range []string{"distance", "batch", "connected"} {
		s := latencies[kind]
		table.AddRow(kind, s.N(),
			fmt.Sprintf("%.3f", s.P50()),
			fmt.Sprintf("%.3f", s.Quantile(0.99)),
			fmt.Sprintf("%.3f", s.Max()))
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintf(cfg.Out, "  throughput: %.0f req/s over %v; cache hit rate %.2f (%0.f invalidations from churn)\n\n",
		float64(totalReq)/elapsed.Seconds(), elapsed.Round(time.Millisecond), hitRate, flushes)

	// --- Part 3: budget exhaustion degrades, never fails -------------
	fmt.Fprintln(cfg.Out, "part 3: work-budget exhaustion returns a safe upper bound flagged exact:false")
	// Recover everything the churn left behind so the exact baseline is
	// the pristine grid.
	var state server.State
	if err := getJSON(ts.URL+"/v1/state", &state); err != nil {
		return err
	}
	if len(state.OverlayVertices) > 0 || len(state.OverlayEdges) > 0 {
		if err := postJSON(ts.URL+"/v1/recover", map[string]any{
			"vertices": state.OverlayVertices, "edges": state.OverlayEdges,
		}, nil); err != nil {
			return err
		}
	}
	src, dst := 0, n-1
	bFaults := randomFaultSet(n, 6, src, dst, rng)
	exact := w.g.DistAvoiding(src, dst, bFaults)
	if !graph.Reachable(exact) {
		return fmt.Errorf("e16: budget instance disconnected")
	}
	found := false
	for budget := 1; budget <= 1<<22; budget *= 2 {
		var a server.Answer
		if err := postJSON(ts.URL+"/v1/distance", map[string]any{
			"s": src, "t": dst, "fail": bFaults.Vertices(), "budget": budget,
		}, &a); err != nil {
			return err
		}
		if a.Connected && !a.Exact {
			safe := "SAFE"
			if a.Dist < int64(exact) {
				safe = "VIOLATION"
			}
			fmt.Fprintf(cfg.Out, "  budget %d: upper bound %d vs exact %d — exact:false, %s\n",
				budget, a.Dist, exact, safe)
			if safe == "VIOLATION" {
				return fmt.Errorf("e16: budget-degraded answer %d underestimates exact %d", a.Dist, exact)
			}
			found = true
			break
		}
		if a.Exact {
			fmt.Fprintf(cfg.Out, "  budget %d: full decode fits (estimate %d); no truncation window on this instance\n",
				budget, a.Dist)
			break
		}
	}
	if !found {
		fmt.Fprintln(cfg.Out, "  (no budget produced a connected inexact answer on this instance — contract untested here, covered by unit tests)")
	}

	// The verdict the table stands on.
	if err := getJSON(ts.URL+"/v1/state", &state); err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "\nserver state after run: n=%d labels=%d cache=%d entries\n",
		state.N, state.Labels, state.CacheEntries)
	fmt.Fprintf(cfg.Out, "E16 verdict: batch answers exact vs oracle (0 mismatches), load served with observable cache (%d%% hit rate), budget degradation safe\n",
		int(hitRate*100))
	return nil
}

// postJSON posts body and decodes the JSON response into out (nil to
// discard). Non-2xx responses are errors.
func postJSON(url string, body any, out any) error {
	b, err := json.Marshal(body)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(b))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		var msg bytes.Buffer
		msg.ReadFrom(resp.Body)
		return fmt.Errorf("POST %s: status %d: %s", url, resp.StatusCode, strings.TrimSpace(msg.String()))
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

func getText(url string) (string, error) {
	resp, err := http.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return "", err
	}
	return buf.String(), nil
}

// metricValue extracts an unlabeled gauge/counter value from Prometheus
// text exposition (0 when absent).
func metricValue(text, name string) float64 {
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(strings.TrimPrefix(line, name+" ")), 64)
			if err == nil {
				return v
			}
		}
	}
	return 0
}
