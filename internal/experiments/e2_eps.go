package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/doubling"
	"fsdl/internal/gen"
	"fsdl/internal/stats"
)

// RunE2LabelLengthVsEpsilon measures label length as a function of the
// precision ε and of the dimension of the underlying family (grids of
// dimension 1, 2 and 3). Lemma 2.5 predicts (O(1+1/ε))^{2α}·log²n: the
// per-ε growth should be steeper for higher-dimensional families.
func RunE2LabelLengthVsEpsilon(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 2))
	type family struct {
		name string
		dims []int
	}
	families := []family{
		{name: "path (dim 1)", dims: []int{1024}},
		{name: "grid (dim 2)", dims: []int{32, 32}},
		{name: "grid (dim 3)", dims: []int{10, 10, 10}},
	}
	epsilons := []float64{3, 1.5, 1, 0.5} // c = 2, 2, 3, 4
	samples := 12
	if cfg.Quick {
		families = []family{
			{name: "path (dim 1)", dims: []int{128}},
			{name: "grid (dim 2)", dims: []int{12, 12}},
		}
		epsilons = []float64{3, 1}
		samples = 4
	}

	table := stats.NewTable("family", "n", "alpha-hat", "eps", "c", "avg bits", "growth", "ff bits", "ff growth")
	for _, fam := range families {
		g, err := gen.Grid(fam.dims)
		if err != nil {
			return err
		}
		est := doubling.EstimateDimension(g, 6, rng)
		var base, ffBase float64
		for _, eps := range epsilons {
			s, err := core.BuildScheme(g, eps)
			if err != nil {
				return err
			}
			s.SetCacheLimit(0)
			ff, err := core.BuildFFScheme(g, eps)
			if err != nil {
				return err
			}
			var sum, ffSum stats.Summary
			for _, v := range sampleVertices(g.NumVertices(), samples, rng) {
				sum.Add(float64(s.LabelBits(v)))
				ffSum.Add(float64(ff.LabelBits(v)))
			}
			if base == 0 {
				base = sum.Mean()
				ffBase = ffSum.Mean()
			}
			table.AddRow(fam.name, g.NumVertices(), fmt.Sprintf("%.1f", est.Dimension),
				eps, s.Params().C, sum.Mean(), sum.Mean()/base,
				ffSum.Mean(), ffSum.Mean()/ffBase)
		}
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: growth columns rise as eps shrinks, faster for higher-dimensional families (the 2^{O(alpha c)} regime). The forbidden-set labels saturate once the level radii exceed the graph diameter (labels then already contain everything nearby) — the paper's huge constants made visible; the failure-free scheme's smaller constants keep its eps growth clean at these n.")
	return nil
}
