package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/hub"
	"fsdl/internal/stats"
)

// RunE13HubLabels positions the scheme against the practical state of the
// art the Applications section cites: exact 2-hop hub labels (pruned
// landmark labeling). Hub labels are exact and tiny but tolerate zero
// faults; the experiment measures the size ladder
//
//	hub (exact, 0 faults)  <  failure-free (1+ε, 0 faults)  <  forbidden-set (1+ε, any faults)
//
// — the measured "price of fault tolerance" the paper's program is about
// ("extend the notion of hub labels to allow dynamic and forbidden-set
// distance labels").
func RunE13HubLabels(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 13))
	var workloads []workload
	samples := 12
	if cfg.Quick {
		workloads = append(workloads, gridWorkload(8))
		samples = 5
	} else {
		workloads = append(workloads, gridWorkload(24))
		rgg, err := rggWorkload(600, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, rgg)
		road, err := roadWorkload(20, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, road)
	}

	table := stats.NewTable("workload", "n", "hub bits", "hubs/vertex", "ff bits", "fs bits",
		"ff/hub", "fs/hub", "hub exact")
	for _, w := range workloads {
		n := w.g.NumVertices()
		hl := hub.Build(w.g)
		ff, err := core.BuildFFScheme(w.g, 2)
		if err != nil {
			return err
		}
		fs, err := core.BuildScheme(w.g, 2)
		if err != nil {
			return err
		}
		fs.SetCacheLimit(0)
		var hubBits, hubCount, ffBits, fsBits stats.Summary
		for _, v := range sampleVertices(n, samples, rng) {
			hubBits.Add(float64(hl.LabelBits(v)))
			hubCount.Add(float64(hl.NumEntries(v)))
			ffBits.Add(float64(ff.LabelBits(v)))
			fsBits.Add(float64(fs.LabelBits(v)))
		}
		// Exactness spot check.
		exact, total := 0, 0
		for q := 0; q < 40; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			want := w.g.Dist(u, v)
			got, ok := hl.Dist(u, v)
			total++
			if ok && got == want {
				exact++
			}
		}
		table.AddRow(w.name, n, hubBits.Mean(), hubCount.Mean(), ffBits.Mean(), fsBits.Mean(),
			ffBits.Mean()/hubBits.Mean(), fsBits.Mean()/hubBits.Mean(),
			fmt.Sprintf("%d/%d", exact, total))
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: hub labels are the smallest and exact (and fault-intolerant); the (1+eps) failure-free labels cost a small factor more; the forbidden-set labels cost orders of magnitude more — that gap is the open engineering problem the paper's Applications section poses.")
	return nil
}
