package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/stats"
)

// RunE9Ablation measures the two design-choice ablations DESIGN.md calls
// out, certifying that the paper's machinery is load-bearing:
//
//  1. Radius shrink: halving the label ball radii r_i below the paper's
//     derivation shrinks labels but breaks the completeness half of
//     Lemma 2.4 — connected queries come back disconnected (safety is
//     architecturally preserved by the conservative certificates).
//  2. No protected balls: disabling the Lemma 2.3 filter breaks safety —
//     the decoder returns distances through the fault set.
func RunE9Ablation(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 9))
	n := 512
	queries := 200
	if cfg.Quick {
		n = 96
		queries = 40
	}
	cyc, err := gen.Cycle(n)
	if err != nil {
		return err
	}

	// Part 1: radius shrink on a cycle (diameter large vs level radii).
	table := stats.NewTable("rShrink", "label bits (mid)", "savings", "false disconnect",
		"stretch viol", "safety viol", "trials")
	var fullBits int
	for _, shrink := range []int{0, 1, 2} {
		var s *core.Scheme
		if shrink == 0 {
			s, err = core.BuildScheme(cyc, 2)
		} else {
			s, err = core.BuildSchemeAblated(cyc, 2, shrink)
		}
		if err != nil {
			return err
		}
		bits := s.LabelBits(n / 2)
		if shrink == 0 {
			fullBits = bits
		}
		falseDisc, stretchViol, safetyViol, trials := 0, 0, 0, 0
		qrng := rand.New(rand.NewSource(cfg.Seed + int64(shrink)))
		for t := 0; t < queries; t++ {
			src, dst := qrng.Intn(n), qrng.Intn(n)
			if src == dst {
				continue
			}
			f := graph.NewFaultSet()
			for f.Size() < 4 {
				v := qrng.Intn(n)
				if v != src && v != dst {
					f.AddVertex(v)
				}
			}
			truth := cyc.DistAvoiding(src, dst, f)
			if !graph.Reachable(truth) {
				continue
			}
			trials++
			est, ok := s.Distance(src, dst, f)
			switch {
			case !ok:
				falseDisc++
			case est < int64(truth):
				safetyViol++
			case float64(est) > 3*float64(truth)+1e-9:
				stretchViol++
			}
		}
		table.AddRow(shrink, bits, fmt.Sprintf("%.2fx", float64(fullBits)/float64(bits)),
			falseDisc, stretchViol, safetyViol, trials)
	}
	fmt.Fprintf(cfg.Out, "ablation 1 — shrink label ball radii r_i (cycle C_%d, eps=2, |F|=4):\n", n)
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: smaller labels but nonzero false disconnections at shrink >= 1 — the paper's radii buy the completeness half of Lemma 2.4; safety stays at 0 by construction.")

	// Part 2: protected balls off, on a grid with a fault wall.
	side := 16
	if cfg.Quick {
		side = 10
	}
	g := gridWorkload(side).g
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		return err
	}
	s.SetCacheLimit(1024)
	f := graph.NewFaultSet()
	for y := 1; y < side; y++ {
		f.AddVertex(y*side + side/2)
	}
	unsafeCount, honest, trials := 0, 0, 0
	for t := 0; t < queries; t++ {
		src, dst := rng.Intn(side*side), rng.Intn(side*side)
		if src == dst || f.HasVertex(src) || f.HasVertex(dst) {
			continue
		}
		truth := g.DistAvoiding(src, dst, f)
		q, err := s.NewQuery(src, dst, f)
		if err != nil {
			return err
		}
		q.UnsafeIgnoreProtectedBalls = true
		est, ok := q.Distance()
		trials++
		if graph.Reachable(truth) {
			if ok && est < int64(truth) {
				unsafeCount++
			}
		} else if ok {
			unsafeCount++ // claimed a distance across a disconnection
		}
		q2, err := s.NewQuery(src, dst, f)
		if err != nil {
			return err
		}
		est2, ok2 := q2.Distance()
		if ok2 == graph.Reachable(truth) && (!ok2 || est2 >= int64(truth)) {
			honest++
		}
	}
	fmt.Fprintf(cfg.Out, "\nablation 2 — protected balls disabled (grid %dx%d with a fault wall): %d/%d queries unsafe (distance through the wall or false connectivity); honest decoder: %d/%d sound.\n",
		side, side, unsafeCount, trials, honest, trials)
	fmt.Fprintln(cfg.Out, "expectation: a large unsafe fraction without protected balls — Lemma 2.3 is what makes sketch edges trustworthy.")
	return nil
}
