// Package experiments implements the reproduction harness: one runner per
// experiment E1–E16 of DESIGN.md, each regenerating the measurable content
// of one of the paper's theorems or figures (the paper is a theory paper,
// so its "tables and figures" are its bounds — see EXPERIMENTS.md for the
// claim-by-claim mapping and recorded results). E15 and E16 go beyond the
// paper: E15 exercises the chaos harness and the degraded decoding path
// (docs/RESILIENCE.md); E16 load-tests the serving subsystem
// (docs/SERVER.md).
package experiments

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"
	"time"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

// Config controls an experiment run.
type Config struct {
	// Out receives the human-readable report.
	Out io.Writer
	// Quick shrinks instance sizes so the whole suite runs in seconds
	// (used by tests); the full sizes are the defaults.
	Quick bool
	// Seed drives all randomness, making runs reproducible.
	Seed int64
}

// Experiment is one runnable experiment.
type Experiment struct {
	// ID is the experiment identifier (E1…E16).
	ID string
	// Title is a one-line description.
	Title string
	// Claim is the paper bound the experiment measures.
	Claim string
	// Run executes the experiment, writing its report to cfg.Out.
	Run func(cfg Config) error
}

// All returns the experiments in order.
func All() []Experiment {
	return []Experiment{
		{
			ID:    "E1",
			Title: "Label length vs n",
			Claim: "Lemma 2.5: label length O(1+1/eps)^{2a} log^2 n — growth in n is log^2 n",
			Run:   RunE1LabelLengthVsN,
		},
		{
			ID:    "E2",
			Title: "Label length vs epsilon and dimension",
			Claim: "Lemma 2.5: label length blows up with 1/eps and with the doubling dimension",
			Run:   RunE2LabelLengthVsEpsilon,
		},
		{
			ID:    "E3",
			Title: "Stretch under faults",
			Claim: "Thm 2.1 / Lemma 2.4: d <= estimate <= (1+eps) d on G\\F, for every F",
			Run:   RunE3Stretch,
		},
		{
			ID:    "E4",
			Title: "Query time vs |F|",
			Claim: "Lemma 2.6: query time O(1+1/eps)^{2a} |F|^2 log n; recompute baseline grows with n",
			Run:   RunE4QueryTime,
		},
		{
			ID:    "E5",
			Title: "Forbidden-set routing",
			Claim: "Thm 2.7: routing stretch 1+eps with label-sized tables; adaptive recovery",
			Run:   RunE5Routing,
		},
		{
			ID:    "E6",
			Title: "Lower bound",
			Claim: "Thm 3.1: labels need Omega(2^{a/2} + log n) bits — counting + reconstruction attack",
			Run:   RunE6LowerBound,
		},
		{
			ID:    "E7",
			Title: "Oracle sizes and dynamic oracle",
			Claim: "Intro: oracle of size independent of the number of faults tolerated; ACG'12 dynamic transform",
			Run:   RunE7Oracle,
		},
		{
			ID:    "E8",
			Title: "Sketch path trace (Figures 1-2)",
			Claim: "Claim 2: per-hop sketch edges exist with weight <= (1+eps/2) 2^l",
			Run:   RunE8Trace,
		},
		{
			ID:    "E9",
			Title: "Design ablations",
			Claim: "the ball radii r_i buy completeness (Lemma 2.4); the protected balls buy safety (Lemma 2.3)",
			Run:   RunE9Ablation,
		},
		{
			ID:    "E10",
			Title: "Treewidth comparison (Courcelle-Twigg)",
			Claim: "related work: on treewidth-1 inputs exact CT-style labels are tiny; the doubling scheme's niche is small alpha with large treewidth",
			Run:   RunE10TreewidthComparison,
		},
		{
			ID:    "E11",
			Title: "Distributed failure recovery",
			Claim: "Applications: reroute in flight without global recomputation; flooding vs piggybacking vs contact-only discovery",
			Run:   RunE11DistributedRecovery,
		},
		{
			ID:    "E12",
			Title: "Weighted road networks",
			Claim: "Applications: integer weights via the subdivision reduction, guarantee preserved for weighted surviving distances",
			Run:   RunE12WeightedRoads,
		},
		{
			ID:    "E13",
			Title: "Hub labels (practical baseline)",
			Claim: "Applications: exact hub labels are tiny but fault-intolerant — the measured price of fault tolerance",
			Run:   RunE13HubLabels,
		},
		{
			ID:    "E14",
			Title: "Preprocessing time and persistence",
			Claim: "Thm 2.1: all labels computable in polynomial time; persistence amortizes it to once",
			Run:   RunE14Preprocessing,
		},
		{
			ID:    "E15",
			Title: "Chaos resilience and graceful degradation",
			Claim: "robustness: seeded transport/router faults are survived by retries+dedup (delivery >= 95%), and damaged label stores degrade to safe upper bounds, never below d_{G\\F}",
			Run:   RunE15Chaos,
		},
		{
			ID:    "E16",
			Title: "Label serving under load",
			Claim: "deployment: labels served concurrently with batching, caching and admission control answer exactly like the static oracle, and budget-capped queries degrade to safe upper bounds",
			Run:   RunE16Serve,
		},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// RunAll executes every experiment in order.
func RunAll(cfg Config) error {
	for _, e := range All() {
		if err := runOne(e, cfg); err != nil {
			return err
		}
	}
	return nil
}

func runOne(e Experiment, cfg Config) error {
	fmt.Fprintf(cfg.Out, "== %s: %s ==\n", e.ID, e.Title)
	fmt.Fprintf(cfg.Out, "claim: %s\n\n", e.Claim)
	start := time.Now()
	if err := e.Run(cfg); err != nil {
		return fmt.Errorf("experiment %s: %w", e.ID, err)
	}
	fmt.Fprintf(cfg.Out, "[%s done in %v]\n\n", e.ID, time.Since(start).Round(time.Millisecond))
	return nil
}

// log2sq returns log₂(n)².
func log2sq(n int) float64 {
	l := math.Log2(float64(n))
	return l * l
}

// workload is a named graph instance used across experiments.
type workload struct {
	name string
	g    *graph.Graph
}

// gridWorkload builds a w×w grid workload.
func gridWorkload(w int) workload {
	return workload{name: fmt.Sprintf("grid %dx%d", w, w), g: gen.Grid2D(w, w)}
}

// rggWorkload builds a connected random geometric graph with mean degree
// around 6.
func rggWorkload(n int, rng *rand.Rand) (workload, error) {
	radius := math.Sqrt(6 / (math.Pi * float64(n)))
	g, _, err := gen.RandomGeometric(n, radius, rng)
	if err != nil {
		return workload{}, err
	}
	return workload{name: fmt.Sprintf("rgg n=%d", n), g: g}, nil
}

// roadWorkload builds a perturbed-grid road network.
func roadWorkload(w int, rng *rand.Rand) (workload, error) {
	g, err := gen.RoadNetwork(w, w, 0.12, w/2, rng)
	if err != nil {
		return workload{}, err
	}
	return workload{name: fmt.Sprintf("road %dx%d", w, w), g: g}, nil
}

// sampleVertices returns up to k distinct vertices of an n-vertex graph.
func sampleVertices(n, k int, rng *rand.Rand) []int {
	if k >= n {
		vs := make([]int, n)
		for i := range vs {
			vs[i] = i
		}
		return vs
	}
	perm := rng.Perm(n)[:k]
	sort.Ints(perm)
	return perm
}

// randomFaultSet draws k distinct failed vertices avoiding the endpoints.
func randomFaultSet(n, k, src, dst int, rng *rand.Rand) *graph.FaultSet {
	f := graph.NewFaultSet()
	for f.NumVertices() < k && f.NumVertices() < n-2 {
		v := rng.Intn(n)
		if v != src && v != dst {
			f.AddVertex(v)
		}
	}
	return f
}
