package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/distsim"
	"fsdl/internal/graph"
	"fsdl/internal/stats"
)

// RunE11DistributedRecovery quantifies the Applications-section protocol:
// the same failure/traffic trace is replayed under three knowledge-
// propagation regimes — flooding, piggybacking on data packets, and none
// (pure contact discovery) — measuring delivery, reroutes, control
// traffic, and stretch. The paper's claim is qualitative ("reroute without
// waiting for route recomputation"); this experiment is its measurable
// form.
func RunE11DistributedRecovery(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 11))
	side := 14
	packets := 60
	failures := 10
	if cfg.Quick {
		side = 8
		packets = 12
		failures = 4
	}
	w := gridWorkload(side)
	n := w.g.NumVertices()
	cs, err := core.BuildScheme(w.g, 2)
	if err != nil {
		return err
	}
	cs.SetCacheLimit(4096)

	// A reproducible trace: clustered failures early, packets throughout.
	type failEvent struct {
		at int64
		v  int
	}
	type pktEvent struct {
		at       int64
		src, dst int
	}
	var fails []failEvent
	center := n/2 + side/2
	count := 0
	graph.NewBFSScratch(n).TruncatedBFS(w.g, center, int32(side), func(v, _ int32) {
		if count < failures {
			fails = append(fails, failEvent{at: int64(count), v: int(v)})
			count++
		}
	})
	failSet := map[int]bool{}
	for _, f := range fails {
		failSet[f.v] = true
	}
	var pkts []pktEvent
	for i := 0; i < packets; i++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst || failSet[src] || failSet[dst] {
			continue
		}
		pkts = append(pkts, pktEvent{at: int64(10 + i*7), src: src, dst: dst})
	}

	regimes := []struct {
		name string
		cfg  distsim.Config
	}{
		{"flooding", distsim.Config{}},
		{"piggyback only", distsim.Config{DisableFlooding: true, EnablePiggyback: true}},
		{"contact only", distsim.Config{DisableFlooding: true}},
	}
	table := stats.NewTable("regime", "injected", "delivered", "dropped", "data hops",
		"reroutes", "control msgs", "piggyback xfers", "mean stretch")
	for _, regime := range regimes {
		sim := distsim.New(cs, regime.cfg)
		for _, f := range fails {
			if err := sim.FailVertexAt(f.at, f.v); err != nil {
				return err
			}
		}
		for _, p := range pkts {
			if err := sim.InjectPacketAt(p.at, p.src, p.dst); err != nil {
				return err
			}
		}
		m := sim.Run(1 << 40)
		table.AddRow(regime.name, m.Injected, m.Delivered, m.Dropped, m.DataHops,
			m.Reroutes, m.ControlMessages, m.PiggybackTransfers, m.MeanStretch())
	}
	fmt.Fprintf(cfg.Out, "workload: %s, %d clustered failures, %d packets\n", w.name, len(fails), len(pkts))
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: all regimes deliver every connected packet (the labels make every router capable of rerouting on its own); flooding pays control messages to minimize reroutes, piggybacking is free but slower to converge, contact-only pays repeated rediscovery.")
	return nil
}
