package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/asciiviz"
	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/stats"
)

// RunE8Trace reproduces the structure illustrated by the paper's Figures 1
// and 2: the sketch path from s to t hops between net points M̂_j whose
// levels adapt to the distance from the fault set — long edges far from
// faults, short (ultimately unit) edges near them. The trace prints every
// hop with its contributing level and verifies the Claim 2 discipline:
// each level-ℓ hop has weight ≤ λ_ℓ, and hops get shorter as the path
// nears the planted fault cluster.
func RunE8Trace(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 8))
	side := 20
	if cfg.Quick {
		side = 10
	}
	w := gridWorkload(side)
	n := w.g.NumVertices()
	s, err := core.BuildScheme(w.g, 2)
	if err != nil {
		return err
	}
	p := s.Params()

	// Plant a fault cluster in the middle of the grid; query corner to
	// corner so the path must pass near the cluster.
	f := graph.NewFaultSet()
	mid := side / 2
	for dx := -1; dx <= 1; dx++ {
		f.AddVertex(mid*side + mid + dx)
	}
	src, dst := 0, n-1
	q, err := s.NewQuery(src, dst, f)
	if err != nil {
		return err
	}
	var tr core.Trace
	dist, ok := q.DistanceWithTrace(&tr)
	if !ok {
		return fmt.Errorf("trace query unexpectedly disconnected")
	}
	truth := w.g.DistAvoiding(src, dst, f)
	fmt.Fprintf(cfg.Out, "workload: %s, faults: %v, query (%d,%d): estimate %d, true %d, stretch %.3f\n",
		w.name, f.Vertices(), src, dst, dist, truth, float64(dist)/float64(truth))

	// The Figure-1 picture itself.
	if pic, perr := asciiviz.RenderQuery(side, side, src, dst, f.Vertices(), tr.Path, nil); perr == nil {
		fmt.Fprint(cfg.Out, pic)
	}

	// Per-level admission census (the protected-ball machinery at work).
	levelTable := stats.NewTable("level", "lambda", "r", "admitted", "rejected")
	for k := range tr.AdmittedPerLevel {
		level := p.LowestLevel() + k
		levelTable.AddRow(level, p.Lambda(level), p.R(level),
			tr.AdmittedPerLevel[k], tr.RejectedPerLevel[k])
	}
	fmt.Fprint(cfg.Out, levelTable.String())

	// The Figure-1 path: waypoints with per-hop weights and distances to
	// the fault set.
	distToF, _ := w.g.MultiSourceBFS(f.Vertices())
	hopTable := stats.NewTable("hop", "from", "to", "weight", "d(from, F)")
	for i := 1; i < len(tr.Path); i++ {
		hopTable.AddRow(i, tr.Path[i-1], tr.Path[i], tr.PathWeights[i-1], distToF[tr.Path[i-1]])
	}
	fmt.Fprint(cfg.Out, hopTable.String())

	// Claim 2 discipline: hop weights shrink near the faults. Compare the
	// mean hop weight in the near-fault half vs the far half.
	var nearSum, farSum stats.Summary
	for i := 1; i < len(tr.Path); i++ {
		dF := float64(distToF[tr.Path[i-1]])
		wgt := float64(tr.PathWeights[i-1])
		if dF <= float64(p.Mu(p.LowestLevel()+2)) {
			nearSum.Add(wgt)
		} else {
			farSum.Add(wgt)
		}
	}
	if nearSum.N() > 0 && farSum.N() > 0 {
		fmt.Fprintf(cfg.Out, "mean hop weight near faults: %.2f, far from faults: %.2f (expect near <= far: levels adapt to fault distance)\n",
			nearSum.Mean(), farSum.Mean())
	}

	// Verify every hop is realizable in G\F at exactly its weight
	// (Lemma 2.3 safety, printed as part of the figure reproduction).
	violations := 0
	for i := 1; i < len(tr.Path); i++ {
		d := w.g.DistAvoiding(int(tr.Path[i-1]), int(tr.Path[i]), f)
		if !graph.Reachable(d) || int64(d) != tr.PathWeights[i-1] {
			violations++
		}
	}
	fmt.Fprintf(cfg.Out, "safety check over %d hops: %d violations (must be 0)\n",
		len(tr.Path)-1, violations)
	_ = rng
	return nil
}
