package experiments

import (
	"bytes"
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/distsim"
	"fsdl/internal/faultinject"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/stats"
)

// RunE15Chaos measures how the recovery protocol and the decoder behave
// when the infrastructure itself misbehaves — the resilience counterpart
// of E11's happy path. Part 1 replays one seeded traffic trace under a
// chaos plan (lossy, duplicating, delaying transport; a router crash and
// restart with amnesia; a network partition that heals), comparing a
// perfect network, chaos with bounded retry-backoff, and chaos with
// retries disabled, and verifies the chaos run is reproducible byte for
// byte. Part 2 damages a serialized label store, salvages it with
// LoadPartial, and answers queries with missing fault labels through the
// degraded decoder, checking the safety direction δ ≥ d_{G\F} against
// the exact baseline.
func RunE15Chaos(cfg Config) error {
	side := 12
	packets := 80
	if cfg.Quick {
		side = 8
		packets = 24
	}
	w := gridWorkload(side)
	n := w.g.NumVertices()
	cs, err := core.BuildScheme(w.g, 2)
	if err != nil {
		return err
	}
	cs.SetCacheLimit(4096)

	// The canonical chaos plan of the acceptance criteria: drop=10%,
	// duplicate=5%, one crash/restart, one partition+heal.
	var left []int
	for y := 0; y < side; y++ {
		for x := 0; x < side/3; x++ {
			left = append(left, y*side+x)
		}
	}
	horizon := int64(packets * 18)
	plan := &faultinject.Plan{
		Seed:      cfg.Seed + 15,
		DropProb:  0.10,
		DupProb:   0.05,
		DelayProb: 0.05,
		Crashes:   []faultinject.Crash{{Router: n/2 + 1, At: horizon / 4, RestartAt: horizon / 2}},
		Partitions: []faultinject.Partition{
			{Members: left, At: horizon * 2 / 3, HealAt: horizon * 5 / 6},
		},
	}

	rng := rand.New(rand.NewSource(cfg.Seed + 15))
	failA, failB := n/3, 2*n/3
	avoid := map[int]bool{failA: true, failB: true, plan.Crashes[0].Router: true}
	type pktEvent struct {
		at       int64
		src, dst int
	}
	var pkts []pktEvent
	for len(pkts) < packets {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst || avoid[src] || avoid[dst] {
			continue
		}
		pkts = append(pkts, pktEvent{at: int64(10 + len(pkts)*18), src: src, dst: dst})
	}

	runTrace := func(c distsim.Config) (distsim.Metrics, error) {
		sim, err := distsim.NewChaos(cs, c)
		if err != nil {
			return distsim.Metrics{}, err
		}
		if err := sim.FailVertexAt(0, failA); err != nil {
			return distsim.Metrics{}, err
		}
		if err := sim.FailVertexAt(5, failB); err != nil {
			return distsim.Metrics{}, err
		}
		for _, p := range pkts {
			if err := sim.InjectPacketAt(p.at, p.src, p.dst); err != nil {
				return distsim.Metrics{}, err
			}
		}
		return sim.Run(1 << 40), nil
	}

	regimes := []struct {
		name string
		cfg  distsim.Config
	}{
		{"perfect network", distsim.Config{}},
		{"chaos", distsim.Config{Chaos: plan, MaxRetries: 9, RetryBackoff: 2}},
		{"chaos, no retries", distsim.Config{Chaos: plan, MaxRetries: -1}},
	}
	table := stats.NewTable("regime", "deliverable", "delivered", "rate", "retries",
		"transport drops", "partition drops", "dup injected", "dedup suppressed", "heal re-ann", "mean stretch")
	var chaosRun distsim.Metrics
	for _, regime := range regimes {
		m, err := runTrace(regime.cfg)
		if err != nil {
			return err
		}
		if regime.name == "chaos" {
			chaosRun = m
		}
		table.AddRow(regime.name, m.Deliverable, m.Delivered, fmt.Sprintf("%.3f", m.DeliveryRate()),
			m.Retries, m.TransportDrops, m.PartitionDrops, m.DuplicatesInjected,
			m.DedupSuppressed, m.HealReannouncements, m.MeanStretch())
	}
	fmt.Fprintf(cfg.Out, "workload: %s, %d packets, chaos plan: drop=%.0f%% dup=%.0f%% delay=%.0f%%, 1 crash/restart, 1 partition+heal\n",
		w.name, len(pkts), plan.DropProb*100, plan.DupProb*100, plan.DelayProb*100)
	fmt.Fprint(cfg.Out, table.String())

	replay, err := runTrace(regimes[1].cfg)
	if err != nil {
		return err
	}
	if replay == chaosRun {
		fmt.Fprintln(cfg.Out, "reproducibility: chaos run replayed byte-for-byte identical (same seed, same metrics)")
	} else {
		fmt.Fprintf(cfg.Out, "reproducibility: VIOLATED — replay differs:\n  %+v\nvs\n  %+v\n", chaosRun, replay)
	}

	// Part 2: label-store damage and degraded decoding.
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, cs, nil); err != nil {
		return err
	}
	raw := buf.Bytes()
	damaged := append([]byte(nil), raw...)
	for i := 0; i < 3; i++ {
		damaged[len(damaged)*(i+1)/5] ^= 0xff
	}
	st, rep, err := labelstore.LoadPartial(bytes.NewReader(damaged))
	if err != nil {
		return err
	}
	fmt.Fprintf(cfg.Out, "label store: %d bytes, 3 bytes flipped → salvage kept %d/%d records (corrupt: %d, truncated: %v)\n",
		len(raw), rep.Kept, rep.Total, len(rep.Corrupt), rep.Truncated)

	queries := 40
	if cfg.Quick {
		queries = 15
	}
	answered, degraded, unsafe := 0, 0, 0
	worst := 1.0
	for trial := 0; trial < queries; trial++ {
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			continue
		}
		faults := randomFaultSet(n, 3, src, dst, rng)
		if !st.Has(src) || !st.Has(dst) {
			continue // endpoint label lost to the damage: nothing to decode from
		}
		res, err := st.DistanceRobust(src, dst, faults, 0)
		if err != nil {
			return err
		}
		if !res.OK {
			continue
		}
		answered++
		if res.Degraded {
			degraded++
		}
		truth := w.g.DistAvoiding(src, dst, faults)
		if !graph.Reachable(truth) || res.Dist < int64(truth) {
			unsafe++
			continue
		}
		if truth > 0 {
			if ratio := float64(res.Dist) / float64(truth); ratio > worst {
				worst = ratio
			}
		}
	}
	fmt.Fprintf(cfg.Out, "degraded queries: %d answered (%d degraded), %d safety violations, worst ratio to exact %.3f\n",
		answered, degraded, unsafe, worst)
	if unsafe > 0 {
		return fmt.Errorf("experiments: degraded decoding returned %d answers below the true surviving distance", unsafe)
	}
	fmt.Fprintln(cfg.Out, "expectation: retries recover nearly all chaos losses (rate ≥ 0.95) at bounded retry cost; without retries the partition and drops translate directly into lost packets; salvaged stores answer conservatively — never below d_{G\\F}.")
	return nil
}
