package experiments

import (
	"fmt"
	"math/rand"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/stats"
)

// RunE1LabelLengthVsN measures label length (in bits, exactly, via the bit
// serializer) as n grows within three bounded-doubling-dimension families,
// at fixed ε. Lemma 2.5 predicts growth Θ(log²n) within a family, i.e. a
// roughly constant bits/log²n column.
func RunE1LabelLengthVsN(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed))
	const epsilon = 2.0

	var workloads []workload
	pathSizes := []int{256, 1024, 4096, 16384, 65536}
	gridSides := []int{8, 16, 32, 64}
	rggSizes := []int{256, 1024, 4096}
	samples := 16
	if cfg.Quick {
		pathSizes = []int{64, 256}
		gridSides = []int{8, 16}
		rggSizes = []int{128}
		samples = 4
	}
	for _, n := range pathSizes {
		workloads = append(workloads, workload{name: fmt.Sprintf("path n=%d", n), g: gen.Path(n)})
	}
	for _, w := range gridSides {
		workloads = append(workloads, gridWorkload(w))
	}
	for _, n := range rggSizes {
		w, err := rggWorkload(n, rng)
		if err != nil {
			return err
		}
		workloads = append(workloads, w)
	}

	table := stats.NewTable("family", "n", "avg bits", "max bits", "bits/log^2 n", "ff bits", "fs/ff ratio")
	type point struct{ n, bits float64 }
	perFamily := map[string][]point{}
	for _, w := range workloads {
		s, err := core.BuildScheme(w.g, epsilon)
		if err != nil {
			return err
		}
		s.SetCacheLimit(0)
		ff, err := core.BuildFFScheme(w.g, epsilon)
		if err != nil {
			return err
		}
		n := w.g.NumVertices()
		var sum stats.Summary
		var ffSum stats.Summary
		for _, v := range sampleVertices(n, samples, rng) {
			sum.Add(float64(s.LabelBits(v)))
			ffSum.Add(float64(ff.LabelBits(v)))
		}
		family := familyOf(w.name)
		perFamily[family] = append(perFamily[family], point{n: float64(n), bits: sum.Mean()})
		table.AddRow(w.name, n, sum.Mean(), sum.Max(), sum.Mean()/log2sq(n),
			ffSum.Mean(), sum.Mean()/ffSum.Mean())
	}
	fmt.Fprint(cfg.Out, table.String())

	// Scaling check: with bits = C·log²n the fitted power-law exponent of
	// bits vs n must be far below linear (log² growth has "slope" → 0).
	for _, family := range []string{"path", "grid", "rgg"} {
		pts := perFamily[family]
		if len(pts) < 2 {
			continue
		}
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i], ys[i] = p.n, p.bits
		}
		if _, slope, ok := stats.FitPowerLaw(xs, ys); ok {
			fmt.Fprintf(cfg.Out, "%s: label bits ~ n^%.2f at these sizes\n", family, slope)
		}
	}
	fmt.Fprintln(cfg.Out, "expectation: within a family, bits/log^2 n flattens once n exceeds the per-level packing constant ~2^{(c+5)alpha} (Lemma 2.2). Paths (alpha=1, constant ~181) reach that asymptotic regime at laptop scale; 2-D families (constant ~16k points/level) are still pre-asymptotic below n~10^5 and grow near-linearly — the paper's huge constants made visible, and Theorem 3.1 says some exponential constant is unavoidable.")
	return nil
}

func familyOf(name string) string {
	for _, f := range []string{"path", "grid", "rgg", "road"} {
		if len(name) >= len(f) && name[:len(f)] == f {
			return f
		}
	}
	return name
}
