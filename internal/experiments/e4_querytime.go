package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fsdl/internal/baseline"
	"fsdl/internal/core"
	"fsdl/internal/stats"
)

// RunE4QueryTime measures decode time as a function of |F| on a fixed
// graph, against the recompute-from-scratch baseline. Lemma 2.6 predicts
// decode time O(1+1/ε)^{2α}·|F|²·log n — superlinear growth in |F| but
// independent of n once the labels are in hand, whereas the baseline pays
// Θ(n+m) per query regardless of |F|. The table also reports the label
// fetch (extraction) time separately: in the paper's model labels are
// already distributed, so decode time is the quantity Lemma 2.6 bounds.
func RunE4QueryTime(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 4))
	const epsilon = 2.0
	side := 48
	faultSizes := []int{1, 2, 4, 8, 16, 32}
	queries := 12
	if cfg.Quick {
		side = 12
		faultSizes = []int{1, 4}
		queries = 3
	}
	w := gridWorkload(side)
	n := w.g.NumVertices()
	s, err := core.BuildScheme(w.g, epsilon)
	if err != nil {
		return err
	}
	s.SetCacheLimit(4096)
	exact := baseline.Exact{G: w.g}

	table := stats.NewTable("|F|", "decode ms (p50)", "decode ms (p95)", "fetch ms (p50)",
		"exact BFS ms (p50)", "bidir BFS ms (p50)", "H vertices", "H edges")
	xs, ys := []float64{}, []float64{}
	for _, fs := range faultSizes {
		var decodeMS, fetchMS, exactMS, bidirMS, hV, hE stats.Summary
		for qi := 0; qi < queries; qi++ {
			src, dst := rng.Intn(n), rng.Intn(n)
			if src == dst {
				continue
			}
			f := randomFaultSet(n, fs, src, dst, rng)

			t0 := time.Now()
			q, err := s.NewQuery(src, dst, f)
			if err != nil {
				return err
			}
			fetchMS.Add(float64(time.Since(t0).Microseconds()) / 1000)

			var tr core.Trace
			t1 := time.Now()
			q.DistanceWithTrace(&tr)
			decodeMS.Add(float64(time.Since(t1).Microseconds()) / 1000)
			hV.Add(float64(tr.NumHVertices))
			hE.Add(float64(tr.NumHEdges))

			t2 := time.Now()
			exact.Distance(src, dst, f)
			exactMS.Add(float64(time.Since(t2).Microseconds()) / 1000)

			t3 := time.Now()
			exact.DistanceBidir(src, dst, f)
			bidirMS.Add(float64(time.Since(t3).Microseconds()) / 1000)
		}
		table.AddRow(fs, decodeMS.P50(), decodeMS.P95(), fetchMS.P50(), exactMS.P50(),
			bidirMS.P50(), hV.Mean(), hE.Mean())
		xs = append(xs, float64(fs))
		ys = append(ys, decodeMS.P50())
	}
	fmt.Fprintf(cfg.Out, "workload: %s (n=%d), eps=%g\n", w.name, n, epsilon)
	fmt.Fprint(cfg.Out, table.String())
	if _, slope, ok := stats.FitPowerLaw(xs, ys); ok {
		fmt.Fprintf(cfg.Out, "decode time ~ |F|^%.2f (Lemma 2.6 allows up to |F|^2; the |F|^2 term dominates only once the per-fault label scans saturate)\n", slope)
	}
	fmt.Fprintln(cfg.Out, "expectation: decode grows with |F| (toward quadratic), exact BFS stays flat in |F| but scales with n — the labeling wins for small |F| on large graphs.")
	return nil
}
