package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"fsdl/internal/baseline"
	"fsdl/internal/oracle"
	"fsdl/internal/stats"
)

// RunE7Oracle measures the centralized packagings. Part 1: static oracle
// size (= n × label length, the introduction's byproduct) against the
// classical APSP matrix and the recompute baseline — crucially, the
// forbidden-set oracle's size does not depend on how many faults it must
// tolerate. Part 2: the fully dynamic oracle under failure/recovery churn
// (the Abraham–Chechik–Gavoille 2012 transform): update and query times
// and rebuild counts.
func RunE7Oracle(cfg Config) error {
	rng := rand.New(rand.NewSource(cfg.Seed + 7))
	const epsilon = 2.0
	sides := []int{8, 16, 24}
	if cfg.Quick {
		sides = []int{6, 10}
	}
	table := stats.NewTable("grid", "n", "fs-oracle KiB", "per-vertex bits", "APSP KiB", "graph KiB",
		"faults tolerated")
	for _, side := range sides {
		w := gridWorkload(side)
		n := w.g.NumVertices()
		o, err := oracle.BuildStatic(w.g, epsilon)
		if err != nil {
			return err
		}
		apsp := baseline.BuildAPSP(w.g)
		exact := baseline.Exact{G: w.g}
		table.AddRow(w.name, n,
			float64(o.SizeBits())/8192,
			float64(o.SizeBits())/float64(n),
			float64(apsp.SizeBits())/8192,
			float64(exact.SizeBits())/8192,
			"any")
	}
	fmt.Fprint(cfg.Out, table.String())
	fmt.Fprintln(cfg.Out, "expectation: the forbidden-set oracle costs a large constant factor over APSP at these n (the paper's huge constants), but tolerates ANY fault set; APSP tolerates none, and the asymptotic gap (n polylog vs n^2) reverses the comparison at scale.")

	// Part 2: dynamic oracle churn.
	side := 20
	churn := 200
	if cfg.Quick {
		side = 8
		churn = 30
	}
	w := gridWorkload(side)
	n := w.g.NumVertices()
	dy, err := oracle.NewDynamic(w.g, epsilon, 0)
	if err != nil {
		return err
	}
	var updateMS, queryMS stats.Summary
	failed := map[int]bool{}
	for step := 0; step < churn; step++ {
		v := rng.Intn(n)
		t0 := time.Now()
		if failed[v] {
			if err := dy.RecoverVertex(v); err != nil {
				return err
			}
			delete(failed, v)
		} else {
			if err := dy.FailVertex(v); err != nil {
				return err
			}
			failed[v] = true
		}
		updateMS.Add(float64(time.Since(t0).Microseconds()) / 1000)

		src, dst := rng.Intn(n), rng.Intn(n)
		t1 := time.Now()
		dy.Distance(src, dst)
		queryMS.Add(float64(time.Since(t1).Microseconds()) / 1000)
	}
	fmt.Fprintf(cfg.Out, "\ndynamic oracle on %s: %d updates, rebuilds=%d (threshold ~ sqrt(n)), update ms p50=%.3f p95=%.3f, query ms p50=%.3f p95=%.3f\n",
		w.name, churn, dy.Rebuilds(), updateMS.P50(), updateMS.P95(), queryMS.P50(), queryMS.P95())
	fmt.Fprintln(cfg.Out, "expectation: most updates are O(1) bookkeeping; occasional rebuilds bound the forbidden-set size, keeping query time stable under unbounded churn.")
	return nil
}
