package stats

import (
	"math"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, v := range []float64{3, 1, 4, 1, 5, 9, 2, 6} {
		s.Add(v)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if got := s.Mean(); math.Abs(got-3.875) > 1e-12 {
		t.Errorf("Mean = %g, want 3.875", got)
	}
	if s.Min() != 1 || s.Max() != 9 {
		t.Errorf("Min/Max = %g/%g, want 1/9", s.Min(), s.Max())
	}
	if s.P50() < 2 || s.P50() > 5 {
		t.Errorf("P50 = %g outside plausible band", s.P50())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Min() != 0 || s.Max() != 0 || s.Stddev() != 0 {
		t.Error("empty summary must report zeros")
	}
}

func TestSummaryInterleavedAddAndQuery(t *testing.T) {
	var s Summary
	s.Add(5)
	if s.Max() != 5 {
		t.Fatal("max after one add")
	}
	s.Add(10) // must invalidate sorted cache
	if s.Max() != 10 {
		t.Fatal("max not updated after interleaved add")
	}
}

func TestStddev(t *testing.T) {
	var s Summary
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(v)
	}
	if got := s.Stddev(); math.Abs(got-2.138) > 0.01 {
		t.Errorf("Stddev = %g, want ~2.138", got)
	}
}

func TestFitPowerLawExact(t *testing.T) {
	xs := []float64{1, 2, 4, 8, 16}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * x * x // a=3, b=2
	}
	a, b, ok := FitPowerLaw(xs, ys)
	if !ok {
		t.Fatal("fit failed")
	}
	if math.Abs(b-2) > 1e-9 || math.Abs(a-3) > 1e-9 {
		t.Errorf("fit = %g·x^%g, want 3·x^2", a, b)
	}
}

func TestFitPowerLawSkipsNonPositive(t *testing.T) {
	if _, _, ok := FitPowerLaw([]float64{0, -1}, []float64{1, 2}); ok {
		t.Error("fit on no usable points must fail")
	}
	a, b, ok := FitPowerLaw([]float64{0, 1, 2, 4}, []float64{5, 2, 4, 8})
	if !ok {
		t.Fatal("fit should use the positive points")
	}
	if math.Abs(b-1) > 1e-9 || math.Abs(a-2) > 1e-9 {
		t.Errorf("fit = %g·x^%g, want 2·x^1", a, b)
	}
}

// Property: fitting data generated from a power law recovers the exponent.
func TestFitPowerLawProperty(t *testing.T) {
	check := func(expRaw, coefRaw uint8) bool {
		b := float64(expRaw%5) * 0.5 // 0..2
		a := 1 + float64(coefRaw%10)
		xs := []float64{1, 2, 3, 5, 8, 13, 21}
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = a * math.Pow(x, b)
		}
		ga, gb, ok := FitPowerLaw(xs, ys)
		return ok && math.Abs(ga-a) < 1e-6 && math.Abs(gb-b) < 1e-6
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("n", "bits", "note")
	tb.AddRow(1024, 52341.0, "grid")
	tb.AddRow(64, 3.14159, "rgg")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "n") || !strings.Contains(lines[0], "bits") {
		t.Errorf("header line malformed: %q", lines[0])
	}
	if !strings.Contains(lines[2], "52341") {
		t.Errorf("integral float should render without decimals: %q", lines[2])
	}
	if !strings.Contains(lines[3], "3.142") {
		t.Errorf("small float should render with 3 decimals: %q", lines[3])
	}
}

func TestQuantileBounds(t *testing.T) {
	var s Summary
	for i := 1; i <= 100; i++ {
		s.Add(float64(i))
	}
	if q := s.Quantile(0); q != 1 {
		t.Errorf("Q(0) = %g, want 1", q)
	}
	if q := s.Quantile(1); q != 100 {
		t.Errorf("Q(1) = %g, want 100", q)
	}
	if q := s.P95(); q < 90 || q > 100 {
		t.Errorf("P95 = %g outside [90,100]", q)
	}
}

func TestTableCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.AddRow("plain", 1)
	tb.AddRow("with,comma", 2.5)
	tb.AddRow(`with"quote`, 3)
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if lines[0] != "name,value" {
		t.Errorf("header = %q", lines[0])
	}
	if lines[2] != `"with,comma",2.500` {
		t.Errorf("comma row = %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Errorf("quote row = %q", lines[3])
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.5+1.5+1.5+3+100; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Sum = %v, want %v", got, want)
	}
	bk := h.Buckets()
	if len(bk) != 5 {
		t.Fatalf("len(Buckets) = %d, want 5", len(bk))
	}
	wantCum := []int64{1, 3, 4, 4, 5}
	for i, b := range bk {
		if b.CumulativeCount != wantCum[i] {
			t.Errorf("bucket %d: cumulative = %d, want %d", i, b.CumulativeCount, wantCum[i])
		}
	}
	if !math.IsInf(bk[4].UpperBound, 1) {
		t.Errorf("last bucket bound = %v, want +Inf", bk[4].UpperBound)
	}
	// Quantiles interpolate within buckets and clamp the +Inf bucket.
	if q := h.Quantile(0); q < 0 || q > 1 {
		t.Errorf("Quantile(0) = %v, want within first bucket", q)
	}
	if q := h.Quantile(1); q != 8 {
		t.Errorf("Quantile(1) = %v, want clamp to last finite bound 8", q)
	}
	med := h.Quantile(0.5)
	if med < 1 || med > 2 {
		t.Errorf("Quantile(0.5) = %v, want in (1,2]", med)
	}
}

func TestHistogramEmptyAndPanics(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Quantile(0.5) != 0 {
		t.Errorf("empty Quantile = %v, want 0", h.Quantile(0.5))
	}
	for _, bounds := range [][]float64{{}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewHistogram(%v) did not panic", bounds)
				}
			}()
			NewHistogram(bounds...)
		}()
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(0.25, 0.5, 0.75)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(i%4) * 0.25)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("Count = %d, want %d", h.Count(), workers*per)
	}
	bk := h.Buckets()
	if bk[len(bk)-1].CumulativeCount != workers*per {
		t.Fatalf("final cumulative = %d, want %d", bk[len(bk)-1].CumulativeCount, workers*per)
	}
	wantSum := float64(workers*per) * (0 + 0.25 + 0.5 + 0.75) / 4
	if math.Abs(h.Sum()-wantSum) > 1e-6 {
		t.Fatalf("Sum = %v, want %v", h.Sum(), wantSum)
	}
}
