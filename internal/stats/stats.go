// Package stats provides the small measurement kit shared by the
// experiment harness and the serving subsystem: streaming summaries
// (mean/min/max/percentiles), concurrency-safe fixed-bucket histograms,
// least-squares power-law fits for verifying scaling shapes, and
// plain-text table rendering for the experiment reports.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
)

// Summary accumulates observations and reports order statistics. The zero
// value is ready to use.
type Summary struct {
	values []float64
	sum    float64
	sorted bool
}

// Add records one observation.
func (s *Summary) Add(v float64) {
	s.values = append(s.values, v)
	s.sum += v
	s.sorted = false
}

// N returns the number of observations.
func (s *Summary) N() int { return len(s.values) }

// Mean returns the arithmetic mean (0 when empty).
func (s *Summary) Mean() float64 {
	if len(s.values) == 0 {
		return 0
	}
	return s.sum / float64(len(s.values))
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.quantile(0) }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.quantile(1) }

// P50 returns the median.
func (s *Summary) P50() float64 { return s.quantile(0.50) }

// P95 returns the 95th percentile.
func (s *Summary) P95() float64 { return s.quantile(0.95) }

// Quantile returns the q-quantile for q in [0,1] (nearest-rank).
func (s *Summary) Quantile(q float64) float64 { return s.quantile(q) }

func (s *Summary) quantile(q float64) float64 {
	if len(s.values) == 0 {
		return 0
	}
	if !s.sorted {
		sort.Float64s(s.values)
		s.sorted = true
	}
	idx := int(q*float64(len(s.values))) - 1
	if q == 0 {
		idx = 0
	}
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s.values) {
		idx = len(s.values) - 1
	}
	return s.values[idx]
}

// Stddev returns the sample standard deviation (0 for < 2 observations).
func (s *Summary) Stddev() float64 {
	n := len(s.values)
	if n < 2 {
		return 0
	}
	mean := s.Mean()
	var ss float64
	for _, v := range s.values {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// FitPowerLaw fits y ≈ a·x^b by least squares on (log x, log y) and
// returns the exponent b and coefficient a. Points with non-positive x or
// y are skipped. It returns ok=false with fewer than two usable points.
func FitPowerLaw(xs, ys []float64) (a, b float64, ok bool) {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return 0, 0, false
	}
	slope, intercept, fitOK := linearFit(lx, ly)
	if !fitOK {
		return 0, 0, false
	}
	return math.Exp(intercept), slope, true
}

// linearFit returns the least-squares slope and intercept of y over x.
func linearFit(xs, ys []float64) (slope, intercept float64, ok bool) {
	n := float64(len(xs))
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, false
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept, true
}

// Table renders aligned plain-text tables for the experiment reports.
type Table struct {
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(headers ...string) *Table {
	return &Table{headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = trimFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e12 {
		return fmt.Sprintf("%.0f", v)
	}
	if math.Abs(v) >= 100 {
		return fmt.Sprintf("%.1f", v)
	}
	return fmt.Sprintf("%.3f", v)
}

// CSV renders the table as comma-separated values (cells containing commas
// or quotes are quoted), for piping experiment output into other tools.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Histogram is a fixed-bucket cumulative histogram safe for concurrent
// Observe calls (all counters are atomic), built for serving-path
// latency metrics: observation is a few atomic adds, rendering walks the
// buckets. Bounds are inclusive upper bounds in ascending order; values
// above the last bound land in an implicit +Inf bucket.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last = +Inf
	count   atomic.Int64
	sumBits atomic.Uint64 // math.Float64bits of the running sum
}

// NewHistogram creates a histogram with the given ascending bucket
// bounds. It panics on unsorted or empty bounds — bucket layout is a
// programming decision, not input.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("stats: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("stats: histogram bounds must be strictly ascending")
		}
	}
	return &Histogram{
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// HistogramBucket is one cumulative bucket: the count of observations
// ≤ UpperBound (math.Inf(1) for the final bucket).
type HistogramBucket struct {
	UpperBound      float64
	CumulativeCount int64
}

// Buckets returns the cumulative buckets, Prometheus-style. The snapshot
// is not atomic across buckets, but each bucket's count is exact.
func (h *Histogram) Buckets() []HistogramBucket {
	out := make([]HistogramBucket, len(h.buckets))
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		ub := math.Inf(1)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = HistogramBucket{UpperBound: ub, CumulativeCount: cum}
	}
	return out
}

// Quantile estimates the q-quantile (q in [0,1]) by linear interpolation
// inside the containing bucket, Prometheus histogram_quantile-style. The
// +Inf bucket is clamped to the last finite bound. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	var cum, prevCum int64
	for i := range h.buckets {
		prevCum = cum
		cum += h.buckets[i].Load()
		if float64(cum) >= rank {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			inBucket := cum - prevCum
			if inBucket == 0 {
				return h.bounds[i]
			}
			frac := (rank - float64(prevCum)) / float64(inBucket)
			return lo + (h.bounds[i]-lo)*frac
		}
	}
	return h.bounds[len(h.bounds)-1]
}
