package asciiviz

import (
	"strings"
	"testing"
)

func TestRenderQueryBasic(t *testing.T) {
	out, err := RenderQuery(4, 3, 0, 11, []int{5}, []int32{0, 6, 11}, []int{0, 1, 2, 6, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 rows + legend
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Row 0: S * * .
	if lines[0] != "S * * ." {
		t.Errorf("row 0 = %q", lines[0])
	}
	// Row 1: . X O .   (fault at 5 overrides, waypoint at 6)
	if lines[1] != ". X O ." {
		t.Errorf("row 1 = %q", lines[1])
	}
	// Row 2: . . * T
	if lines[2] != ". . * T" {
		t.Errorf("row 2 = %q", lines[2])
	}
}

func TestPrecedence(t *testing.T) {
	c, err := NewGridCanvas(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.MarkFaults([]int{0}); err != nil {
		t.Fatal(err)
	}
	// A path mark must not overwrite a fault mark.
	if err := c.MarkPath([]int{0}); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.String(), "X") {
		t.Errorf("fault glyph lost: %q", c.String())
	}
	// But an endpoint does overwrite.
	if err := c.MarkEndpoints(0, 1); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(c.String(), "S") {
		t.Errorf("endpoint glyph should win: %q", c.String())
	}
}

func TestInvalidInputs(t *testing.T) {
	if _, err := NewGridCanvas(0, 5); err == nil {
		t.Error("zero width must fail")
	}
	c, _ := NewGridCanvas(2, 2)
	if err := c.MarkPath([]int{7}); err == nil {
		t.Error("out-of-range vertex must fail")
	}
	if _, err := RenderQuery(2, 2, 0, 9, nil, nil, nil); err == nil {
		t.Error("out-of-range endpoint must fail")
	}
}

func TestEmptyCanvas(t *testing.T) {
	c, err := NewGridCanvas(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	out := c.String()
	if !strings.HasPrefix(out, ". . .\n. . .\n") {
		t.Errorf("empty canvas rendered as %q", out)
	}
}
