// Package asciiviz renders grid-graph queries as ASCII art: faults,
// protected regions, and the routed path — a terminal rendition of the
// paper's Figure 1. Only graphs with a known w×h grid layout (vertex
// (x,y) = y*w+x) are renderable; everything else falls back to textual
// traces.
package asciiviz

import (
	"fmt"
	"strings"
)

// Cell glyphs, in increasing precedence (later overwrite earlier).
const (
	glyphEmpty    = '.'
	glyphPath     = '*'
	glyphWaypoint = 'O'
	glyphFault    = 'X'
	glyphSource   = 'S'
	glyphTarget   = 'T'
)

// GridCanvas accumulates markings over a w×h grid.
type GridCanvas struct {
	w, h  int
	cells []rune
	rank  []uint8 // precedence of the current glyph
}

// NewGridCanvas returns an empty canvas for a w×h grid.
func NewGridCanvas(w, h int) (*GridCanvas, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("asciiviz: invalid grid %dx%d", w, h)
	}
	c := &GridCanvas{w: w, h: h, cells: make([]rune, w*h), rank: make([]uint8, w*h)}
	for i := range c.cells {
		c.cells[i] = glyphEmpty
	}
	return c, nil
}

func (c *GridCanvas) mark(v int, glyph rune, rank uint8) error {
	if v < 0 || v >= c.w*c.h {
		return fmt.Errorf("asciiviz: vertex %d outside %dx%d grid", v, c.w, c.h)
	}
	if rank >= c.rank[v] {
		c.cells[v] = glyph
		c.rank[v] = rank
	}
	return nil
}

// MarkPath marks the vertices of a routed path.
func (c *GridCanvas) MarkPath(path []int) error {
	for _, v := range path {
		if err := c.mark(v, glyphPath, 1); err != nil {
			return err
		}
	}
	return nil
}

// MarkWaypoints marks sketch-path waypoints.
func (c *GridCanvas) MarkWaypoints(ws []int32) error {
	for _, v := range ws {
		if err := c.mark(int(v), glyphWaypoint, 2); err != nil {
			return err
		}
	}
	return nil
}

// MarkFaults marks forbidden vertices.
func (c *GridCanvas) MarkFaults(vs []int) error {
	for _, v := range vs {
		if err := c.mark(v, glyphFault, 3); err != nil {
			return err
		}
	}
	return nil
}

// MarkEndpoints marks the query source and target.
func (c *GridCanvas) MarkEndpoints(src, dst int) error {
	if err := c.mark(src, glyphSource, 4); err != nil {
		return err
	}
	return c.mark(dst, glyphTarget, 4)
}

// String renders the canvas, row 0 at the top, with a legend.
func (c *GridCanvas) String() string {
	var b strings.Builder
	for y := 0; y < c.h; y++ {
		for x := 0; x < c.w; x++ {
			if x > 0 {
				b.WriteByte(' ')
			}
			b.WriteRune(c.cells[y*c.w+x])
		}
		b.WriteByte('\n')
	}
	b.WriteString("S=source T=target X=fault O=waypoint *=path .=other\n")
	return b.String()
}

// RenderQuery draws a full query picture in one call.
func RenderQuery(w, h, src, dst int, faults []int, waypoints []int32, path []int) (string, error) {
	c, err := NewGridCanvas(w, h)
	if err != nil {
		return "", err
	}
	if err := c.MarkPath(path); err != nil {
		return "", err
	}
	if err := c.MarkWaypoints(waypoints); err != nil {
		return "", err
	}
	if err := c.MarkFaults(faults); err != nil {
		return "", err
	}
	if err := c.MarkEndpoints(src, dst); err != nil {
		return "", err
	}
	return c.String(), nil
}
