package treelabel

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

// queryAgainstTruth checks one query against exact recomputation.
func queryAgainstTruth(t *testing.T, g *graph.Graph, s *Scheme, u, v int, f *graph.FaultSet) {
	t.Helper()
	var vf []*Label
	for _, x := range f.Vertices() {
		vf = append(vf, s.Label(x))
	}
	var ef [][2]*Label
	for _, e := range f.Edges() {
		ef = append(ef, [2]*Label{s.Label(e[0]), s.Label(e[1])})
	}
	got, ok := Query(s.Label(u), s.Label(v), vf, ef)
	want := g.DistAvoiding(u, v, f)
	if graph.Reachable(want) != ok {
		t.Fatalf("query (%d,%d,F=%v/%v): ok=%v, want reachable=%v",
			u, v, f.Vertices(), f.Edges(), ok, graph.Reachable(want))
	}
	if ok && got != want {
		t.Fatalf("query (%d,%d): got %d, want %d (exact scheme!)", u, v, got, want)
	}
}

func TestBuildRejectsNonTrees(t *testing.T) {
	if _, err := Build(gen.Grid2D(3, 3)); err == nil {
		t.Error("grid must be rejected")
	}
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	// 4 vertices, 2 edges: not a tree (m != n-1).
	if _, err := Build(b.MustBuild()); err == nil {
		t.Error("forest must be rejected")
	}
	// n-1 edges but disconnected (has a cycle + isolated vertex).
	b2 := graph.NewBuilder(4)
	b2.AddEdge(0, 1)
	b2.AddEdge(1, 2)
	b2.AddEdge(2, 0)
	if _, err := Build(b2.MustBuild()); err == nil {
		t.Error("cycle + isolated vertex must be rejected")
	}
}

func TestExactDistancesPath(t *testing.T) {
	g := gen.Path(30)
	s, err := Build(g)
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < 30; u += 3 {
		for v := 0; v < 30; v += 4 {
			d, ok := DistFromLabels(s.Label(u), s.Label(v))
			if !ok || int(d) != abs(u-v) {
				t.Fatalf("d(%d,%d) = (%d,%v), want %d", u, v, d, ok, abs(u-v))
			}
		}
	}
}

func TestExactDistancesRandomTrees(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(80)
		g := gen.RandomTree(n, rng)
		s, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		for q := 0; q < 30; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			want := g.Dist(u, v)
			got, ok := DistFromLabels(s.Label(u), s.Label(v))
			if !ok || got != want {
				t.Fatalf("n=%d: d(%d,%d) = (%d,%v), want %d", n, u, v, got, ok, want)
			}
		}
	}
}

func TestVertexFaultQueries(t *testing.T) {
	g := gen.Path(20)
	s, _ := Build(g)
	queryAgainstTruth(t, g, s, 0, 19, graph.FaultVertices(10)) // disconnects
	queryAgainstTruth(t, g, s, 0, 9, graph.FaultVertices(15))  // unaffected
	queryAgainstTruth(t, g, s, 5, 5, graph.FaultVertices(5))   // failed self
	tree, _ := gen.BalancedBinaryTree(5)
	st, err := Build(tree)
	if err != nil {
		t.Fatal(err)
	}
	queryAgainstTruth(t, tree, st, 15, 16, graph.FaultVertices(7)) // siblings lose parent
	queryAgainstTruth(t, tree, st, 15, 3, graph.FaultVertices(16))
}

func TestEdgeFaultQueries(t *testing.T) {
	g := gen.Path(12)
	s, _ := Build(g)
	f := graph.NewFaultSet()
	f.AddEdge(5, 6)
	queryAgainstTruth(t, g, s, 0, 11, f) // cut
	queryAgainstTruth(t, g, s, 0, 5, f)  // same side
	queryAgainstTruth(t, g, s, 6, 11, f) // other side
}

// Property: on random trees with random fault sets, the scheme is exact.
func TestExactnessProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(60)
		g := gen.RandomTree(n, rng)
		s, err := Build(g)
		if err != nil {
			return false
		}
		for q := 0; q < 12; q++ {
			u, v := rng.Intn(n), rng.Intn(n)
			f := graph.NewFaultSet()
			for i := 0; i < rng.Intn(4); i++ {
				f.AddVertex(rng.Intn(n))
			}
			if rng.Intn(2) == 1 && n > 1 {
				x := 1 + rng.Intn(n-1)
				f.AddEdge(x, int(s.Label(x).Parent))
			}
			if f.HasVertex(u) || f.HasVertex(v) {
				continue
			}
			var vf []*Label
			for _, x := range f.Vertices() {
				vf = append(vf, s.Label(x))
			}
			var ef [][2]*Label
			for _, e := range f.Edges() {
				ef = append(ef, [2]*Label{s.Label(e[0]), s.Label(e[1])})
			}
			got, ok := Query(s.Label(u), s.Label(v), vf, ef)
			want := g.DistAvoiding(u, v, f)
			if graph.Reachable(want) != ok {
				return false
			}
			if ok && got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCentroidListLogarithmic(t *testing.T) {
	for _, n := range []int{64, 256, 1024} {
		g := gen.Path(n)
		s, err := Build(g)
		if err != nil {
			t.Fatal(err)
		}
		bound := int(math.Log2(float64(n))) + 2
		if got := s.MaxCentroidListLen(); got > bound {
			t.Errorf("n=%d: centroid list %d > log bound %d", n, got, bound)
		}
	}
}

func TestLabelBitsPolylog(t *testing.T) {
	// O(log^2 n)-bit labels: measure the growth.
	bits := map[int]float64{}
	for _, n := range []int{128, 1024, 8192} {
		g := gen.Path(n)
		s, _ := Build(g)
		total := 0
		for v := 0; v < n; v += n / 32 {
			total += s.LabelBits(v)
		}
		bits[n] = float64(total) / 32
	}
	// log²(8192)/log²(128) ≈ 3.45: allow up to 6x growth across 64x n.
	if bits[8192] > 6*bits[128] {
		t.Errorf("label bits grew %0.f -> %0.f across 64x n — not polylog",
			bits[128], bits[8192])
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := gen.RandomTree(50, rng)
	s, _ := Build(g)
	for _, v := range []int{0, 17, 49} {
		buf, nbits := s.Label(v).Encode()
		got, err := DecodeLabel(buf, nbits)
		if err != nil {
			t.Fatalf("decode %d: %v", v, err)
		}
		want := s.Label(v)
		if got.V != want.V || got.In != want.In || got.Out != want.Out ||
			got.Depth != want.Depth || got.Parent != want.Parent {
			t.Fatalf("label %d scalar fields differ after round trip", v)
		}
		if len(got.Centroids) != len(want.Centroids) {
			t.Fatalf("label %d centroid count differs", v)
		}
		for i := range want.Centroids {
			if got.Centroids[i] != want.Centroids[i] {
				t.Fatalf("label %d centroid %d differs", v, i)
			}
		}
	}
	if _, err := DecodeLabel([]byte{0xff}, 8); err == nil {
		t.Error("garbage must not decode")
	}
}

func TestTinyTrees(t *testing.T) {
	single := graph.NewBuilder(1).MustBuild()
	s, err := Build(single)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := Query(s.Label(0), s.Label(0), nil, nil); !ok || d != 0 {
		t.Errorf("singleton self query = (%d,%v)", d, ok)
	}
	empty := graph.NewBuilder(0).MustBuild()
	if _, err := Build(empty); err != nil {
		t.Errorf("empty graph should build trivially: %v", err)
	}
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
