// Package treelabel implements an exact forbidden-set distance labeling
// scheme for trees — the treewidth-1 instance of the Courcelle–Twigg
// (STACS 2007) scheme that the paper generalizes from. It serves as the
// related-work comparison point: on trees, exact O(log²n)-bit forbidden-set
// labels exist, while the doubling-dimension scheme pays for generality
// with much larger (and merely (1+ε)-approximate) labels.
//
// Construction: root the tree, record preorder intervals and depths (for
// ancestor tests), and a centroid-decomposition ancestor list with exact
// distances (for distance queries). A query (u,v,F) is answered from
// labels alone:
//
//   - d_T(u,v) = min over shared centroid ancestors c of d(u,c)+d(c,v);
//   - a vertex f lies on the unique u–v path iff f is an ancestor of
//     exactly one endpoint, or f is the LCA (ancestor of both with
//     depth(f) = depth(LCA) — equivalently d(u,f)+d(f,v) = d(u,v));
//   - the tree edge (a,b) (b the deeper endpoint) lies on the path iff
//     b does and b's subtree contains exactly one endpoint;
//   - u,v are connected in T\F iff no forbidden vertex/edge lies on the
//     path, in which case the distance is unchanged.
package treelabel

import (
	"fmt"

	"fsdl/internal/bitio"
	"fsdl/internal/graph"
)

// Scheme holds the labels of one tree.
type Scheme struct {
	n      int
	labels []Label
}

// Label is an exact forbidden-set distance label for a tree vertex.
type Label struct {
	// V is the labeled vertex.
	V int32
	// In and Out delimit v's preorder interval: u is in v's subtree iff
	// In(v) ≤ In(u) < Out(v).
	In, Out int32
	// Depth is the distance from the root.
	Depth int32
	// Parent is v's tree parent (-1 at the root) — enough to identify
	// the edge toward the root, so edge faults can be tested.
	Parent int32
	// Centroids lists v's centroid-decomposition ancestors, outermost
	// first, with exact tree distances d_T(v, c).
	Centroids []CentroidEntry
}

// CentroidEntry is one centroid ancestor with its exact distance.
type CentroidEntry struct {
	C int32
	D int32
}

// Build constructs the scheme. The graph must be a tree (connected,
// m = n−1); otherwise an error is returned.
func Build(g *graph.Graph) (*Scheme, error) {
	n := g.NumVertices()
	if n == 0 {
		return &Scheme{}, nil
	}
	if g.NumEdges() != n-1 {
		return nil, fmt.Errorf("treelabel: graph has %d edges, a tree on %d vertices has %d",
			g.NumEdges(), n, n-1)
	}
	if !g.IsConnected() {
		return nil, fmt.Errorf("treelabel: graph is not connected")
	}
	s := &Scheme{n: n, labels: make([]Label, n)}
	for v := range s.labels {
		s.labels[v].V = int32(v)
		s.labels[v].Parent = -1
	}

	// Preorder intervals and depths via iterative DFS from root 0.
	timer := int32(0)
	type dfsFrame struct {
		v, parent int32
		idx       int
	}
	stack := []dfsFrame{{v: 0, parent: -1}}
	s.labels[0].In = 0
	visited := make([]bool, n)
	visited[0] = true
	s.labels[0].Depth = 0
	timer = 1
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		nb := g.Neighbors(int(top.v))
		if top.idx < len(nb) {
			w := nb[top.idx]
			top.idx++
			if visited[w] {
				continue
			}
			visited[w] = true
			s.labels[w].In = timer
			s.labels[w].Depth = s.labels[top.v].Depth + 1
			s.labels[w].Parent = top.v
			timer++
			stack = append(stack, dfsFrame{v: w, parent: top.v})
			continue
		}
		s.labels[top.v].Out = timer
		stack = stack[:len(stack)-1]
	}

	// Centroid decomposition: repeatedly find the centroid of each
	// component, record exact distances from it to its component, recurse.
	removed := make([]bool, n)
	size := make([]int32, n)
	var queue []int32
	componentOf := func(start int32) []int32 {
		queue = queue[:0]
		queue = append(queue, start)
		seen := map[int32]bool{start: true}
		for head := 0; head < len(queue); head++ {
			for _, w := range g.Neighbors(int(queue[head])) {
				if !removed[w] && !seen[w] {
					seen[w] = true
					queue = append(queue, w)
				}
			}
		}
		return append([]int32(nil), queue...)
	}
	var decompose func(start int32)
	decompose = func(start int32) {
		comp := componentOf(start)
		// Subtree sizes within the component (BFS order trick: comp is in
		// BFS order from start, so process in reverse).
		parent := map[int32]int32{comp[0]: -1}
		orderC := comp
		for _, v := range orderC {
			size[v] = 1
		}
		// Rebuild BFS parents.
		for head := 0; head < len(orderC); head++ {
			v := orderC[head]
			for _, w := range g.Neighbors(int(v)) {
				if !removed[w] && w != parent[v] {
					if _, ok := parent[w]; !ok {
						parent[w] = v
					}
				}
			}
		}
		for i := len(orderC) - 1; i >= 1; i-- {
			size[parent[orderC[i]]] += size[orderC[i]]
		}
		total := size[comp[0]]
		// Find the centroid: the vertex whose largest piece is ≤ total/2.
		centroid := comp[0]
		for {
			var heavy int32 = -1
			for _, w := range g.Neighbors(int(centroid)) {
				if removed[w] || w == parent[centroid] {
					continue
				}
				if heavy == -1 || size[w] > size[heavy] {
					heavy = w
				}
			}
			if heavy != -1 && size[heavy] > total/2 {
				// Move toward the heavy child; sizes flip along the move.
				size[centroid] = total - size[heavy]
				parent[heavy] = centroid
				centroid = heavy
				continue
			}
			break
		}
		// Record distances from the centroid to the whole component.
		queue = queue[:0]
		dist := map[int32]int32{centroid: 0}
		queue = append(queue, centroid)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			s.labels[v].Centroids = append(s.labels[v].Centroids, CentroidEntry{C: centroid, D: dist[v]})
			for _, w := range g.Neighbors(int(v)) {
				if _, ok := dist[w]; !removed[w] && !ok {
					dist[w] = dist[v] + 1
					queue = append(queue, w)
				}
			}
		}
		removed[centroid] = true
		for _, w := range g.Neighbors(int(centroid)) {
			if !removed[w] {
				decompose(w)
			}
		}
	}
	decompose(0)
	return s, nil
}

// Label returns the label of v.
func (s *Scheme) Label(v int) *Label { return &s.labels[v] }

// LabelBits returns the serialized size of L(v) in bits.
func (s *Scheme) LabelBits(v int) int {
	_, bits := s.labels[v].Encode()
	return bits
}

// isAncestor reports whether a's subtree contains u, from labels alone.
func isAncestor(a, u *Label) bool {
	return a.In <= u.In && u.In < a.Out
}

// onPath reports whether vertex f lies on the unique u–v tree path.
func onPath(f, u, v *Label) bool {
	au, av := isAncestor(f, u), isAncestor(f, v)
	if au != av {
		return true // f separates: ancestor of exactly one endpoint
	}
	if !au {
		return false
	}
	// f is an ancestor of both: it is on the path iff it is the LCA,
	// i.e. no deeper than the path's top. Equivalent label-only test:
	// d(u,f) + d(f,v) == d(u,v).
	du, ok1 := DistFromLabels(u, f)
	dv, ok2 := DistFromLabels(f, v)
	duv, ok3 := DistFromLabels(u, v)
	return ok1 && ok2 && ok3 && du+dv == duv
}

// DistFromLabels returns the exact fault-free tree distance between the
// labeled vertices, via their outermost-shared centroid list. ok is false
// only for labels from different schemes.
func DistFromLabels(u, v *Label) (int32, bool) {
	if u.V == v.V {
		return 0, true
	}
	best := int32(-1)
	i, j := 0, 0
	// Centroid lists are ordered outermost-first; shared prefixes end
	// where the decomposition separates u and v, but any shared centroid
	// gives a valid upper bound and the true distance is achieved at one
	// of them. Lists are short (O(log n)); scan all pairs cheaply.
	for i < len(u.Centroids) {
		for j = 0; j < len(v.Centroids); j++ {
			if u.Centroids[i].C == v.Centroids[j].C {
				d := u.Centroids[i].D + v.Centroids[j].D
				if best < 0 || d < best {
					best = d
				}
			}
		}
		i++
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Query answers the forbidden-set query (u,v,F) exactly from labels:
// the returned distance is d_{T\F}(u,v) and ok=false means disconnected.
// Faulty edges are given by their endpoint label pairs.
func Query(u, v *Label, vertexFaults []*Label, edgeFaults [][2]*Label) (int32, bool) {
	if u.V == v.V {
		for _, f := range vertexFaults {
			if f.V == u.V {
				return 0, false
			}
		}
		return 0, true
	}
	for _, f := range vertexFaults {
		if f.V == u.V || f.V == v.V || onPath(f, u, v) {
			return 0, false
		}
	}
	for _, ef := range edgeFaults {
		a, b := ef[0], ef[1]
		// Identify the deeper endpoint (the child of the tree edge).
		child := a
		if b.Depth > a.Depth {
			child = b
		}
		// The edge (parent(child), child) is on the path iff child is an
		// ancestor of exactly one endpoint.
		if isAncestor(child, u) != isAncestor(child, v) {
			return 0, false
		}
	}
	d, ok := DistFromLabels(u, v)
	if !ok {
		return 0, false
	}
	return d, true
}

// Encode serializes the label (bit-exact accounting, like the core labels).
func (l *Label) Encode() ([]byte, int) {
	var w bitio.Writer
	w.WriteUvarint(uint64(l.V))
	w.WriteUvarint(uint64(l.In))
	w.WriteUvarint(uint64(l.Out))
	w.WriteUvarint(uint64(l.Depth))
	w.WriteUvarint(uint64(l.Parent + 1))
	w.WriteDelta(uint64(len(l.Centroids)))
	for _, ce := range l.Centroids {
		w.WriteUvarint(uint64(ce.C))
		w.WriteGamma(uint64(ce.D))
	}
	return w.Bytes(), w.Len()
}

// DecodeLabel parses a label serialized by Encode.
func DecodeLabel(buf []byte, nbits int) (*Label, error) {
	r := bitio.NewReader(buf, nbits)
	l := &Label{}
	fields := []*int32{&l.V, &l.In, &l.Out, &l.Depth, &l.Parent}
	for i, dst := range fields {
		v, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("treelabel: decode field %d: %w", i, err)
		}
		*dst = int32(v)
	}
	l.Parent--
	count, err := r.ReadDelta()
	if err != nil {
		return nil, fmt.Errorf("treelabel: decode centroid count: %w", err)
	}
	if count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("treelabel: centroid count %d exceeds payload", count)
	}
	l.Centroids = make([]CentroidEntry, count)
	for i := range l.Centroids {
		c, err := r.ReadUvarint()
		if err != nil {
			return nil, fmt.Errorf("treelabel: decode centroid %d: %w", i, err)
		}
		d, err := r.ReadGamma()
		if err != nil {
			return nil, fmt.Errorf("treelabel: decode centroid dist %d: %w", i, err)
		}
		l.Centroids[i] = CentroidEntry{C: int32(c), D: int32(d)}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("treelabel: %d trailing bits", r.Remaining())
	}
	return l, nil
}

// MaxCentroidListLen returns the longest centroid list in the scheme —
// O(log n) by the centroid decomposition's halving guarantee; exposed so
// tests can assert the logarithmic depth.
func (s *Scheme) MaxCentroidListLen() int {
	maxLen := 0
	for i := range s.labels {
		if len(s.labels[i].Centroids) > maxLen {
			maxLen = len(s.labels[i].Centroids)
		}
	}
	return maxLen
}
