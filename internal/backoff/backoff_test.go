package backoff

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"time"
)

// TestDelayDeterministic pins the no-jitter schedule: exactly
// Base·2^attempt, which the tick-based simulator depends on (its chaos
// tests reason about exact backoff sums like 2+4+…+512).
func TestDelayDeterministic(t *testing.T) {
	p := Policy{Base: 2}
	for k := 0; k <= 9; k++ {
		want := time.Duration(int64(2) << uint(k))
		if got := p.Delay(k); got != want {
			t.Fatalf("Delay(%d) = %d, want %d", k, got, want)
		}
	}
	// Factor other than 2 grows geometrically.
	p = Policy{Base: 10 * time.Millisecond, Factor: 3}
	if got := p.Delay(2); got != 90*time.Millisecond {
		t.Fatalf("factor-3 Delay(2) = %v, want 90ms", got)
	}
	// Negative attempts clamp to the base.
	if got := p.Delay(-5); got != 10*time.Millisecond {
		t.Fatalf("Delay(-5) = %v, want base", got)
	}
}

// TestCap verifies the delay saturates at Cap and never overflows,
// with or without jitter, however large the attempt number.
func TestCap(t *testing.T) {
	p := Policy{Base: time.Millisecond, Cap: 100 * time.Millisecond}
	sawCap := false
	for k := 0; k < 300; k++ {
		d := p.Delay(k)
		if d > p.Cap {
			t.Fatalf("Delay(%d) = %v exceeds cap %v", k, d, p.Cap)
		}
		if d == p.Cap {
			sawCap = true
		}
		if d <= 0 {
			t.Fatalf("Delay(%d) = %v not positive", k, d)
		}
	}
	if !sawCap {
		t.Fatal("schedule never reached the cap")
	}
	// Jitter must not puncture the cap either.
	p.Jitter = 0.5
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 300; k++ {
		if d := p.DelayRand(k, rng.Float64); d > p.Cap {
			t.Fatalf("jittered Delay(%d) = %v exceeds cap %v", k, d, p.Cap)
		}
	}
	// Uncapped schedules saturate at MaxInt64 instead of going negative.
	p = Policy{Base: time.Hour}
	if d := p.Delay(500); d != math.MaxInt64 {
		t.Fatalf("uncapped overflow: Delay(500) = %d, want MaxInt64", d)
	}
}

// TestJitterBounds checks every jittered delay lands in
// [d·(1−J), d·(1+J)] and that the extremes of the random source map to
// the extremes of the window.
func TestJitterBounds(t *testing.T) {
	const j = 0.2
	p := Policy{Base: 100 * time.Millisecond, Jitter: j}
	for k := 0; k < 6; k++ {
		raw := Policy{Base: p.Base}.Delay(k)
		lo := time.Duration(float64(raw) * (1 - j))
		hi := time.Duration(float64(raw) * (1 + j))
		if got := p.DelayRand(k, func() float64 { return 0 }); got != lo {
			t.Fatalf("rnd=0: Delay(%d) = %v, want window floor %v", k, got, lo)
		}
		if got := p.DelayRand(k, func() float64 { return 1 }); got != hi {
			t.Fatalf("rnd=1: Delay(%d) = %v, want window ceiling %v", k, got, hi)
		}
		rng := rand.New(rand.NewSource(int64(k) + 7))
		for i := 0; i < 1000; i++ {
			d := p.DelayRand(k, rng.Float64)
			if d < lo || d > hi {
				t.Fatalf("Delay(%d) = %v outside [%v, %v]", k, d, lo, hi)
			}
		}
	}
}

// TestJittered checks the steady-interval helper's window and its
// pass-through cases.
func TestJittered(t *testing.T) {
	const d, frac = time.Second, 0.2
	lo := time.Duration(float64(d) * (1 - frac))
	hi := time.Duration(float64(d) * (1 + frac))
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		got := JitteredRand(d, frac, rng.Float64)
		if got < lo || got > hi {
			t.Fatalf("JitteredRand = %v outside [%v, %v]", got, lo, hi)
		}
	}
	if got := Jittered(d, 0); got != d {
		t.Fatalf("zero-fraction jitter altered the interval: %v", got)
	}
	if got := JitteredRand(0, frac, rng.Float64); got != 0 {
		t.Fatalf("Jittered(0) = %v, want 0", got)
	}
}

// TestSleep covers both exits: the timer and the context.
func TestSleep(t *testing.T) {
	if err := Sleep(context.Background(), time.Millisecond); err != nil {
		t.Fatalf("Sleep: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := Sleep(ctx, time.Hour); err == nil {
		t.Fatal("Sleep ignored a canceled context")
	}
	if err := Sleep(ctx, 0); err == nil {
		t.Fatal("Sleep(0) must still report a canceled context")
	}
}
