// Package backoff is the one place retry pacing lives. Every retry
// loop in the system — the simulator's packet retransmissions, the
// cluster frontend's startup poll and health sweep, the server's batch
// prefetch, breaker cooldowns — draws its delays from a Policy here, so
// the shape of a retry storm is a property of one package instead of
// five hand-rolled loops.
//
// A Policy is pure arithmetic: Delay(attempt) is Base·Factor^attempt,
// capped at Cap, spread by ±Jitter. With Jitter zero the schedule is
// fully deterministic, which the tick-based simulator depends on; with
// Jitter set, concurrent retriers desynchronize instead of thundering
// in lockstep.
package backoff

import (
	"context"
	"math"
	"math/rand"
	"time"
)

// Policy is an exponential backoff schedule. The zero value is not
// useful — set at least Base.
type Policy struct {
	// Base is the delay before the first retry (attempt 0).
	Base time.Duration
	// Factor is the per-attempt growth (values ≤ 1 select 2).
	Factor float64
	// Cap bounds the delay (0 means uncapped; the result still
	// saturates at the largest Duration instead of overflowing).
	Cap time.Duration
	// Jitter spreads each delay uniformly over [d·(1−J), d·(1+J)],
	// clamped to Cap. 0 disables jitter; values are clamped to [0, 1].
	Jitter float64
}

// Delay returns the wait before retry number attempt (0-based), using
// the global randomness source for jitter. With Jitter zero no
// randomness is consumed and the result is deterministic.
func (p Policy) Delay(attempt int) time.Duration {
	return p.DelayRand(attempt, rand.Float64)
}

// DelayRand is Delay with an explicit uniform-[0,1) source, so tests
// can pin the jitter draw.
func (p Policy) DelayRand(attempt int, rnd func() float64) time.Duration {
	if attempt < 0 {
		attempt = 0
	}
	f := p.Factor
	if f <= 1 {
		f = 2
	}
	d := float64(p.Base) * math.Pow(f, float64(attempt))
	if p.Cap > 0 && d > float64(p.Cap) {
		d = float64(p.Cap)
	}
	if j := min(max(p.Jitter, 0), 1); j > 0 {
		d *= 1 - j + 2*j*rnd()
		if p.Cap > 0 && d > float64(p.Cap) {
			d = float64(p.Cap)
		}
	}
	// Saturate instead of overflowing into the past: float64 keeps the
	// exponent exact far beyond int64, so compare before converting.
	if d >= float64(math.MaxInt64) {
		return math.MaxInt64
	}
	if d < 0 {
		return 0
	}
	return time.Duration(d)
}

// Jittered spreads d uniformly over [d·(1−frac), d·(1+frac)] — the
// steady-interval form (health sweeps, repair ticks), where the point
// is not growth but keeping a fleet of probers from synchronizing.
func Jittered(d time.Duration, frac float64) time.Duration {
	return JitteredRand(d, frac, rand.Float64)
}

// JitteredRand is Jittered with an explicit uniform-[0,1) source.
func JitteredRand(d time.Duration, frac float64, rnd func() float64) time.Duration {
	f := min(max(frac, 0), 1)
	if f == 0 || d <= 0 {
		return d
	}
	out := float64(d) * (1 - f + 2*f*rnd())
	if out < 0 {
		return 0
	}
	return time.Duration(out)
}

// Sleep waits d or until ctx is done, whichever comes first, returning
// ctx.Err() in the latter case — the body every polling retry loop
// otherwise reinvents.
func Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
