// Package doubling estimates the doubling dimension of a graph metric: the
// smallest α such that every ball of radius 2r can be covered by 2^α balls
// of radius r.
//
// Computing α exactly is intractable (minimum ball cover is NP-hard), so the
// estimator uses the classic greedy relaxation: pick any yet-uncovered
// vertex of B(v,2r) as a new center and cover B(center,r). Greedy centers
// are pairwise > r apart, so their count C is sandwiched between the optimal
// cover size and the packing number: log₂C is an estimate of α that is off
// by at most a constant factor (at most 2α by the standard packing bound).
// This is exactly what the experiments need — a measured proxy for the α
// that appears in the paper's label-length exponent.
package doubling

import (
	"math"
	"math/rand"

	"fsdl/internal/graph"
)

// Estimate is the result of an empirical doubling-dimension measurement.
type Estimate struct {
	// Dimension is log₂ of the largest greedy cover count observed over
	// all sampled (vertex, radius) pairs — the empirical α.
	Dimension float64
	// MaxCover is that largest greedy cover count.
	MaxCover int
	// Samples is the number of (vertex, radius) pairs measured.
	Samples int
}

// EstimateDimension measures the empirical doubling dimension of g using
// the given number of sampled center vertices. rng drives the sampling; it
// must not be nil. Radii sweep powers of two up to half the eccentricity of
// each sampled center.
func EstimateDimension(g *graph.Graph, centers int, rng *rand.Rand) Estimate {
	n := g.NumVertices()
	est := Estimate{}
	if n == 0 || centers <= 0 {
		return est
	}
	// The sub-unit scale, exactly: covering B(v,1) by balls of radius
	// r ∈ (1/2, 1) means covering by singletons, which takes deg(v)+1
	// balls. This is what makes high-degree vertices (stars) have high
	// doubling dimension even though all integer-radius covers are small.
	for v := 0; v < n; v++ {
		if c := g.Degree(v) + 1; c > est.MaxCover {
			est.MaxCover = c
		}
	}
	est.Samples++
	for s := 0; s < centers; s++ {
		v := rng.Intn(n)
		dist := g.BFS(v)
		ecc := int32(0)
		for _, d := range dist {
			if d > ecc {
				ecc = d
			}
		}
		for r := int32(1); 2*r <= ecc; r *= 2 {
			c := greedyCoverCount(g, dist, 2*r, r)
			est.Samples++
			if c > est.MaxCover {
				est.MaxCover = c
			}
		}
		// Always measure at least one radius, even on tiny graphs.
		if ecc >= 1 && est.Samples == 0 {
			c := greedyCoverCount(g, dist, ecc, (ecc+1)/2)
			est.Samples++
			if c > est.MaxCover {
				est.MaxCover = c
			}
		}
	}
	if est.MaxCover > 0 {
		est.Dimension = math.Log2(float64(est.MaxCover))
	}
	return est
}

// greedyCoverCount covers B(v,R) (given as the distance slice from v) with
// balls of radius r using greedy center selection and returns the number of
// balls used.
func greedyCoverCount(g *graph.Graph, distFromV []int32, bigR, r int32) int {
	var ball []int32
	for u, d := range distFromV {
		if graph.Reachable(d) && d <= bigR {
			ball = append(ball, int32(u))
		}
	}
	covered := make(map[int32]bool, len(ball))
	scratch := graph.NewBFSScratch(g.NumVertices())
	count := 0
	for _, u := range ball {
		if covered[u] {
			continue
		}
		count++
		scratch.TruncatedBFS(g, int(u), r, func(w, _ int32) {
			covered[w] = true
		})
	}
	return count
}
