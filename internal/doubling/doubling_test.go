package doubling

import (
	"math/rand"
	"testing"

	"fsdl/internal/graph"
)

func pathGraph(t testing.TB, n int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.MustBuild()
}

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func starGraph(t testing.TB, leaves int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(leaves + 1)
	for i := 1; i <= leaves; i++ {
		b.AddEdge(0, i)
	}
	return b.MustBuild()
}

func TestPathHasLowDimension(t *testing.T) {
	g := pathGraph(t, 200)
	est := EstimateDimension(g, 10, rand.New(rand.NewSource(1)))
	if est.Samples == 0 {
		t.Fatal("no samples measured")
	}
	// A path is 1-dimensional: a ball of radius 2r (an interval of length
	// 4r) needs ~3 intervals of length 2r; log2(3) < 2.
	if est.Dimension > 2 {
		t.Errorf("path dimension estimate %.2f, want <= 2", est.Dimension)
	}
}

func TestGridDimensionBetweenPathAndStar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	p := EstimateDimension(pathGraph(t, 256), 8, rng)
	g := EstimateDimension(gridGraph(t, 16, 16), 8, rng)
	s := EstimateDimension(starGraph(t, 256), 8, rng)
	if !(p.Dimension < g.Dimension) {
		t.Errorf("expected dim(path)=%.2f < dim(grid)=%.2f", p.Dimension, g.Dimension)
	}
	if !(g.Dimension < s.Dimension) {
		t.Errorf("expected dim(grid)=%.2f < dim(star)=%.2f", g.Dimension, s.Dimension)
	}
	// A star has unbounded doubling dimension: covering B(center,2) by
	// radius-1 balls needs ~leaves/1 balls... actually B(center,2)=whole
	// star, radius-1 balls centered at leaves cover 2 vertices each. The
	// estimate must be large.
	if s.Dimension < 5 {
		t.Errorf("star dimension estimate %.2f suspiciously low", s.Dimension)
	}
}

func TestGridDimensionApproxTwo(t *testing.T) {
	g := gridGraph(t, 24, 24)
	est := EstimateDimension(g, 12, rand.New(rand.NewSource(3)))
	// 2-D grid: expect estimate in [1.5, 4.5] (greedy is within a constant
	// factor of true α = 2).
	if est.Dimension < 1.5 || est.Dimension > 4.5 {
		t.Errorf("grid dimension estimate %.2f outside [1.5, 4.5]", est.Dimension)
	}
}

func TestDegenerateInputs(t *testing.T) {
	empty := graph.NewBuilder(0).MustBuild()
	if est := EstimateDimension(empty, 5, rand.New(rand.NewSource(4))); est.Samples != 0 {
		t.Error("empty graph should yield no samples")
	}
	single := graph.NewBuilder(1).MustBuild()
	est := EstimateDimension(single, 5, rand.New(rand.NewSource(5)))
	if est.Dimension != 0 {
		t.Errorf("singleton dimension = %.2f, want 0", est.Dimension)
	}
	if est := EstimateDimension(pathGraph(t, 10), 0, rand.New(rand.NewSource(6))); est.Samples != 0 {
		t.Error("zero centers should yield no samples")
	}
}

func TestTinyGraphStillSamples(t *testing.T) {
	g := pathGraph(t, 3) // eccentricity 2 from the middle, 2r <= ecc only for r=1
	est := EstimateDimension(g, 4, rand.New(rand.NewSource(7)))
	if est.Samples == 0 {
		t.Error("tiny graph should still be sampled via the fallback radius")
	}
}
