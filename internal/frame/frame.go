// Package frame implements the CRC-framed record codec shared by the
// cluster wire protocol and the live-update mutation WAL. It is a leaf
// package — both consumers import it, so neither has to import the
// other.
//
// A frame is self-delimiting:
//
//	bytes 0..1  magic "FC"
//	byte  2     version (1)
//	byte  3     op
//	bytes 4..7  payload length, uint32 little-endian
//	…           payload
//	last 4      CRC32-IEEE (little-endian) over op, length and payload
//
// The CRC covers everything after the magic/version prefix, so a frame
// that passes the check was neither truncated nor bit-flipped; one that
// fails it poisons the stream (framing can no longer be trusted) and
// the caller must redial, or — for an append-only journal — truncate
// the torn tail.
package frame

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
)

const (
	magic0  = 'F'
	magic1  = 'C'
	version = 1

	// HeaderLen is magic+version+op+length; TrailerLen the CRC.
	HeaderLen  = 8
	TrailerLen = 4

	// MaxPayload bounds a frame's payload so a corrupted or hostile
	// length field cannot make the reader allocate unbounded memory.
	MaxPayload = 32 << 20
)

// Codec errors.
var (
	ErrBadMagic   = errors.New("frame: bad magic")
	ErrBadVersion = errors.New("frame: unsupported version")
	ErrTooLarge   = errors.New("frame: payload exceeds limit")
	ErrCRC        = errors.New("frame: checksum mismatch")
)

// Append appends one encoded frame to dst and returns the extended
// slice.
func Append(dst []byte, op byte, payload []byte) []byte {
	if len(payload) > MaxPayload {
		panic("frame: oversized payload (caller bug)")
	}
	start := len(dst)
	dst = append(dst, magic0, magic1, version, op)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	dst = append(dst, payload...)
	sum := crc32.ChecksumIEEE(dst[start+3:]) // op + length + payload
	return binary.LittleEndian.AppendUint32(dst, sum)
}

// Write writes one frame to w.
func Write(w io.Writer, op byte, payload []byte) error {
	buf := Append(make([]byte, 0, HeaderLen+len(payload)+TrailerLen), op, payload)
	_, err := w.Write(buf)
	return err
}

// Read reads one frame from r, verifying magic, version, length bound
// and checksum. The returned payload is freshly allocated and safe to
// retain. Any error other than a clean io.EOF at a frame boundary
// means the stream can no longer be trusted.
func Read(r io.Reader) (op byte, payload []byte, err error) {
	var head [HeaderLen]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) {
			return 0, nil, fmt.Errorf("frame: truncated header: %w", err)
		}
		return 0, nil, err
	}
	if head[0] != magic0 || head[1] != magic1 {
		return 0, nil, ErrBadMagic
	}
	if head[2] != version {
		return 0, nil, ErrBadVersion
	}
	op = head[3]
	size := binary.LittleEndian.Uint32(head[4:8])
	if size > MaxPayload {
		return 0, nil, ErrTooLarge
	}
	body := make([]byte, int(size)+TrailerLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("frame: truncated body: %w", err)
	}
	h := crc32.NewIEEE()
	h.Write(head[3:]) // op + length
	h.Write(body[:size])
	if h.Sum32() != binary.LittleEndian.Uint32(body[size:]) {
		return 0, nil, ErrCRC
	}
	return op, body[:size:size], nil
}

// Decode parses one frame from the front of buf, returning the
// remainder. It applies the same validation as Read and never
// allocates from attacker-chosen lengths: the payload is a sub-slice
// of buf.
func Decode(buf []byte) (op byte, payload, rest []byte, err error) {
	if len(buf) < HeaderLen+TrailerLen {
		return 0, nil, nil, fmt.Errorf("frame: short frame: %d bytes", len(buf))
	}
	if buf[0] != magic0 || buf[1] != magic1 {
		return 0, nil, nil, ErrBadMagic
	}
	if buf[2] != version {
		return 0, nil, nil, ErrBadVersion
	}
	op = buf[3]
	size := binary.LittleEndian.Uint32(buf[4:8])
	if size > MaxPayload {
		return 0, nil, nil, ErrTooLarge
	}
	total := HeaderLen + int(size) + TrailerLen
	if len(buf) < total {
		return 0, nil, nil, fmt.Errorf("frame: truncated frame: have %d of %d bytes", len(buf), total)
	}
	payload = buf[HeaderLen : HeaderLen+int(size)]
	sum := crc32.ChecksumIEEE(buf[3 : HeaderLen+int(size)])
	if sum != binary.LittleEndian.Uint32(buf[HeaderLen+int(size):total]) {
		return 0, nil, nil, ErrCRC
	}
	return op, payload, buf[total:], nil
}
