package baseline

import (
	"math/rand"
	"testing"

	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func TestExactMatchesBFS(t *testing.T) {
	g := gen.Grid2D(6, 6)
	e := Exact{G: g}
	f := graph.FaultVertices(14, 21)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		u, v := rng.Intn(36), rng.Intn(36)
		want := g.DistAvoiding(u, v, f)
		got, ok := e.Distance(u, v, f)
		if graph.Reachable(want) != ok {
			t.Fatalf("(%d,%d): ok=%v, want %v", u, v, ok, graph.Reachable(want))
		}
		if ok && got != int64(want) {
			t.Fatalf("(%d,%d): got %d, want %d", u, v, got, want)
		}
	}
	if e.SizeBits() <= 0 {
		t.Error("exact baseline size must be positive")
	}
}

func TestAPSPMatrix(t *testing.T) {
	g := gen.Grid2D(5, 4)
	m := BuildAPSP(g)
	for u := 0; u < 20; u++ {
		dist := g.BFS(u)
		for v := 0; v < 20; v++ {
			got, ok := m.Distance(u, v)
			if !ok || got != int64(dist[v]) {
				t.Fatalf("APSP(%d,%d) = (%d,%v), want %d", u, v, got, ok, dist[v])
			}
		}
	}
	if _, ok := m.Distance(-1, 0); ok {
		t.Error("out-of-range must fail")
	}
	if m.SizeBits() <= 0 {
		t.Error("APSP size must be positive")
	}
}

func TestAPSPDisconnected(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(2, 3)
	g := b.MustBuild()
	m := BuildAPSP(g)
	if _, ok := m.Distance(0, 3); ok {
		t.Error("cross-component APSP query must fail")
	}
}

func TestNaiveFFIsUnsafeUnderFaults(t *testing.T) {
	// On a path, cutting the middle makes the naive baseline claim a
	// finite distance across the cut — a safety violation.
	g := gen.Path(20)
	nf, err := NewNaiveFF(g, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.FaultVertices(10)
	if !nf.ViolatesSafety(g, 0, 19, f) {
		t.Error("naive baseline should violate safety across a cut")
	}
	// But it is fine without faults.
	if nf.ViolatesSafety(g, 0, 19, nil) {
		t.Error("naive baseline must be safe in the failure-free case")
	}
}

func TestNaiveFFUnderReportsDetours(t *testing.T) {
	// 9x9 grid with a wall: naive answer stays ~8 while truth detours.
	w, h := 9, 9
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	g := b.MustBuild()
	nf, err := NewNaiveFF(g, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	f := graph.NewFaultSet()
	for y := 1; y < h; y++ {
		f.AddVertex(y*w + 4)
	}
	if !nf.ViolatesSafety(g, 4*w+0, 4*w+8, f) {
		t.Error("naive baseline should under-report the detour distance")
	}
}

func TestDistanceBidirMatchesDistance(t *testing.T) {
	g := gen.Grid2D(8, 8)
	e := Exact{G: g}
	f := graph.FaultVertices(27, 28)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 40; trial++ {
		u, v := rng.Intn(64), rng.Intn(64)
		d1, ok1 := e.Distance(u, v, f)
		d2, ok2 := e.DistanceBidir(u, v, f)
		if d1 != d2 || ok1 != ok2 {
			t.Fatalf("(%d,%d): uni (%d,%v), bidir (%d,%v)", u, v, d1, ok1, d2, ok2)
		}
	}
}
