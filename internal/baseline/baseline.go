// Package baseline implements the comparison points the experiments
// measure the labeling scheme against:
//
//   - Exact: recompute-from-scratch — a BFS on G\F per query. Always
//     exact, no preprocessing, but query time grows with the graph, not
//     with |F|; this is the baseline the paper's "recover without delay"
//     motivation argues against.
//   - APSPMatrix: the classic exact failure-free distance oracle (a full
//     n×n matrix), the size yardstick for the oracle-size experiment.
//   - NaiveFF: the failure-free labeling scheme used *despite* faults —
//     the correctness foil: it happily reports distances through failed
//     vertices, demonstrating why forbidden-set labels are needed.
package baseline

import (
	"fmt"

	"fsdl/internal/bitio"
	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// Exact answers forbidden-set distance queries by recomputation.
type Exact struct {
	G *graph.Graph
}

// Distance returns the exact d_{G\F}(u,v); ok=false when disconnected.
func (e Exact) Distance(u, v int, faults *graph.FaultSet) (int64, bool) {
	d := e.G.DistAvoiding(u, v, faults)
	if !graph.Reachable(d) {
		return 0, false
	}
	return int64(d), true
}

// SizeBits returns the storage the recompute baseline needs: the graph
// itself (an edge list at 2⌈log₂ n⌉ bits per edge).
func (e Exact) SizeBits() int64 {
	n := e.G.NumVertices()
	bitsPerID := 1
	for 1<<uint(bitsPerID) < n {
		bitsPerID++
	}
	return int64(e.G.NumEdges()) * int64(2*bitsPerID)
}

// APSPMatrix is the exact failure-free all-pairs distance oracle.
type APSPMatrix struct {
	n    int
	dist [][]int32
}

// BuildAPSP computes the full distance matrix (n BFS runs).
func BuildAPSP(g *graph.Graph) *APSPMatrix {
	n := g.NumVertices()
	m := &APSPMatrix{n: n, dist: make([][]int32, n)}
	for v := 0; v < n; v++ {
		m.dist[v] = g.BFS(v)
	}
	return m
}

// Distance returns the exact failure-free distance.
func (m *APSPMatrix) Distance(u, v int) (int64, bool) {
	if u < 0 || u >= m.n || v < 0 || v >= m.n {
		return 0, false
	}
	d := m.dist[u][v]
	if !graph.Reachable(d) {
		return 0, false
	}
	return int64(d), true
}

// SizeBits returns the matrix storage: each entry gamma-coded (the honest
// compressed size of the classical oracle).
func (m *APSPMatrix) SizeBits() int64 {
	var total int64
	for _, row := range m.dist {
		for _, d := range row {
			v := uint64(0)
			if graph.Reachable(d) {
				v = uint64(d) + 1
			}
			total += int64(bitio.GammaLen(v))
		}
	}
	return total
}

// NaiveFF wraps the failure-free labeling scheme and (incorrectly) answers
// forbidden-set queries by ignoring F.
type NaiveFF struct {
	s *core.FFScheme
}

// NewNaiveFF builds the foil over g at precision ε.
func NewNaiveFF(g *graph.Graph, epsilon float64) (*NaiveFF, error) {
	s, err := core.BuildFFScheme(g, epsilon)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	return &NaiveFF{s: s}, nil
}

// Distance ignores the fault set entirely — that is the point.
func (nf *NaiveFF) Distance(u, v int, _ *graph.FaultSet) (int64, bool) {
	return core.FFDistance(nf.s.Label(u), nf.s.Label(v))
}

// ViolatesSafety reports whether the naive baseline under-reports the true
// surviving distance for the query — i.e., whether its answer routes
// through the fault set. The experiments use this to count how often
// ignoring failures gives wrong (too small or falsely connected) answers.
func (nf *NaiveFF) ViolatesSafety(g *graph.Graph, u, v int, faults *graph.FaultSet) bool {
	est, ok := nf.Distance(u, v, faults)
	truth := g.DistAvoiding(u, v, faults)
	if !graph.Reachable(truth) {
		return ok // claiming any distance across a disconnection is a violation
	}
	return !ok || est < int64(truth)
}

// DistanceBidir is Distance computed with the bidirectional search: the
// answers are identical (the equivalence is property-tested in
// internal/graph), the work is roughly the square root of a full BFS on
// graphs with room between the endpoints.
func (e Exact) DistanceBidir(u, v int, faults *graph.FaultSet) (int64, bool) {
	d := e.G.DistAvoidingBidir(u, v, faults)
	if !graph.Reachable(d) {
		return 0, false
	}
	return int64(d), true
}
