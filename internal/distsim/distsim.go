// Package distsim simulates the distributed failure-recovery protocol the
// paper's Applications section sketches: every router holds its label,
// port table, and a private set F_u of failures it knows about; failures
// are discovered on contact (a packet about to step onto a dead neighbor),
// announced by flooding, and packets are rerouted *immediately* by the
// discovering router from its own forbidden set — no global route
// recomputation ever happens.
//
// The simulator is a discrete-event loop over integer ticks: packet hops
// and flood messages each take one tick per link. It reports delivery,
// stretch against the optimal surviving route at injection time, control
// message counts, and reroute counts — the measurable content of the
// paper's "recover without delay" story.
package distsim

import (
	"container/heap"
	"fmt"

	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/routing"
)

// Config tunes the simulation.
type Config struct {
	// MaxHopsPerPacket drops packets exceeding this hop budget
	// (loop/livelock protection). ≤ 0 selects 8·n.
	MaxHopsPerPacket int
	// DisableFlooding turns failure announcements off: only the router
	// that bumps into a failure learns about it. The contrast shows what
	// the propagation buys.
	DisableFlooding bool
	// EnablePiggyback turns on the paper's second propagation mechanism:
	// failure knowledge rides on data packets, and every router a packet
	// visits merges knowledge with it (both directions).
	EnablePiggyback bool
}

// Metrics accumulates simulation outcomes.
type Metrics struct {
	// Injected, Delivered, Dropped count packets; Dropped includes both
	// genuine disconnections and hop-budget exhaustion.
	Injected, Delivered, Dropped int
	// DataHops counts packet-forwarding link traversals.
	DataHops int
	// ControlMessages counts flood announcements sent.
	ControlMessages int
	// Reroutes counts in-flight header recomputations.
	Reroutes int
	// PiggybackTransfers counts fault facts moved between packets and
	// routers by piggybacking.
	PiggybackTransfers int
	// StretchSum / StretchCount aggregate delivered-packet stretch
	// against the optimal surviving route at injection time.
	StretchSum   float64
	StretchCount int
}

// MeanStretch returns the average delivered stretch (1 when nothing was
// measured).
func (m Metrics) MeanStretch() float64 {
	if m.StretchCount == 0 {
		return 1
	}
	return m.StretchSum / float64(m.StretchCount)
}

// Simulator is a single-run discrete-event network simulation.
type Simulator struct {
	g   *graph.Graph
	rs  *routing.Scheme
	cfg Config

	now    int64
	seq    int64
	events eventHeap

	truth   *graph.FaultSet // ground-truth failed vertices and edges
	routers []routerState
	metrics Metrics
}

type routerState struct {
	known *graph.FaultSet
}

type packet struct {
	id        int
	src, dst  int
	waypoints []int32
	wpIndex   int // next waypoint to reach
	hops      int
	optimal   int32 // d_{G\F}(src,dst) at injection, Infinity if none
	// carried is the fault knowledge the packet piggybacks (nil unless
	// Config.EnablePiggyback).
	carried *graph.FaultSet
}

type event struct {
	at   int64
	seq  int64
	kind eventKind
	// packet events
	pkt *packet
	at2 int // router holding the packet / flood receiver
	// failure events
	vertex  int
	vertex2 int // second endpoint for edge failures
	// flood events: recovered=false announces a failure, true a recovery
	from      int
	recovered bool
}

type eventKind int

const (
	evFail eventKind = iota + 1
	evFailEdge
	evRecover
	evPacket
	evFlood
)

// New creates a simulator over a prebuilt labeling scheme.
func New(cs *core.Scheme, cfg Config) *Simulator {
	g := cs.Graph()
	if cfg.MaxHopsPerPacket <= 0 {
		cfg.MaxHopsPerPacket = 8 * g.NumVertices()
	}
	routers := make([]routerState, g.NumVertices())
	for i := range routers {
		routers[i] = routerState{known: graph.NewFaultSet()}
	}
	return &Simulator{
		g:       g,
		rs:      routing.New(cs),
		cfg:     cfg,
		truth:   graph.NewFaultSet(),
		routers: routers,
	}
}

// Now returns the current simulation time.
func (s *Simulator) Now() int64 { return s.now }

// Metrics returns the accumulated metrics.
func (s *Simulator) Metrics() Metrics { return s.metrics }

// KnownFaults returns how many failures router v currently knows about.
func (s *Simulator) KnownFaults(v int) int { return s.routers[v].known.Size() }

// FailVertexAt schedules a silent failure of v at time t.
func (s *Simulator) FailVertexAt(t int64, v int) error {
	if v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: vertex %d out of range", v)
	}
	s.push(event{at: t, kind: evFail, vertex: v})
	return nil
}

// RecoverVertexAt schedules a recovery of v at time t: the router comes
// back and (per the Applications section: routers are "routinely updated
// about the operational status (failures and recoveries)") floods a
// recovery announcement so peers remove it from their forbidden sets.
func (s *Simulator) RecoverVertexAt(t int64, v int) error {
	if v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: vertex %d out of range", v)
	}
	s.push(event{at: t, kind: evRecover, vertex: v})
	return nil
}

// FailEdgeAt schedules a silent failure of the link (u,v) at time t.
func (s *Simulator) FailEdgeAt(t int64, u, v int) error {
	if u < 0 || u >= s.g.NumVertices() || v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: edge endpoints (%d,%d) out of range", u, v)
	}
	if !s.g.HasEdge(u, v) {
		return fmt.Errorf("distsim: (%d,%d) is not a link", u, v)
	}
	s.push(event{at: t, kind: evFailEdge, vertex: u, vertex2: v})
	return nil
}

// InjectPacketAt schedules a packet from src to dst at time t.
func (s *Simulator) InjectPacketAt(t int64, src, dst int) error {
	if src < 0 || src >= s.g.NumVertices() || dst < 0 || dst >= s.g.NumVertices() {
		return fmt.Errorf("distsim: packet endpoints (%d,%d) out of range", src, dst)
	}
	s.push(event{at: t, kind: evPacket, pkt: &packet{id: -1, src: src, dst: dst}, at2: src})
	return nil
}

// Run processes events until the queue is empty or the time horizon is
// passed, and returns the metrics.
func (s *Simulator) Run(until int64) Metrics {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > until {
			break
		}
		s.now = e.at
		switch e.kind {
		case evFail:
			s.truth.AddVertex(e.vertex)
		case evFailEdge:
			s.truth.AddEdge(e.vertex, e.vertex2)
		case evRecover:
			s.truth.RemoveVertex(e.vertex)
			// The recovered router knows its own status and floods it.
			s.routers[e.vertex].known.RemoveVertex(e.vertex)
			s.flood(e.vertex, e.vertex, true)
		case evFlood:
			s.handleFlood(e)
		case evPacket:
			s.handlePacket(e)
		}
	}
	return s.metrics
}

func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// handleFlood delivers a status announcement to a router, which updates
// its forbidden set and forwards the announcement if the information was
// new.
func (s *Simulator) handleFlood(e event) {
	r := e.at2
	if s.truth.HasVertex(r) {
		return // dead routers neither learn nor forward
	}
	known := s.routers[r].known
	if e.recovered {
		if !known.HasVertex(e.vertex) {
			return // nothing to retract
		}
		known.RemoveVertex(e.vertex)
	} else {
		if known.HasVertex(e.vertex) {
			return
		}
		known.AddVertex(e.vertex)
	}
	s.flood(r, e.vertex, e.recovered)
}

// flood sends a status announcement about the given vertex from r to all
// alive neighbors.
func (s *Simulator) flood(r, subject int, recovered bool) {
	if s.cfg.DisableFlooding {
		return
	}
	for _, nb := range s.g.Neighbors(r) {
		if s.truth.HasVertex(int(nb)) || int(nb) == subject {
			continue
		}
		s.metrics.ControlMessages++
		s.push(event{at: s.now + 1, kind: evFlood, at2: int(nb), vertex: subject, recovered: recovered})
	}
}

// handlePacket advances one packet sitting at router e.at2.
func (s *Simulator) handlePacket(e event) {
	pkt, r := e.pkt, e.at2
	if pkt.id == -1 {
		// Fresh injection: measure the optimum and build the header.
		pkt.id = s.metrics.Injected
		s.metrics.Injected++
		pkt.optimal = s.g.DistAvoiding(pkt.src, pkt.dst, s.truth)
		if s.truth.HasVertex(pkt.src) {
			s.metrics.Dropped++
			return
		}
		if !s.computeHeader(pkt, r) {
			s.metrics.Dropped++
			return
		}
	}
	if s.cfg.EnablePiggyback {
		s.exchangeKnowledge(pkt, r)
	}
	if r == pkt.dst {
		s.metrics.Delivered++
		if graph.Reachable(pkt.optimal) && pkt.optimal > 0 {
			s.metrics.StretchSum += float64(pkt.hops) / float64(pkt.optimal)
			s.metrics.StretchCount++
		}
		return
	}
	if pkt.hops >= s.cfg.MaxHopsPerPacket {
		s.metrics.Dropped++
		return
	}
	next, ok := s.nextHop(pkt, r)
	if !ok {
		s.metrics.Dropped++
		return
	}
	if s.truth.HasVertex(next) {
		// Contact discovery: r learns about the failure, floods it, and
		// reroutes from its own (updated) forbidden set.
		s.routers[r].known.AddVertex(next)
		s.flood(r, next, false)
		s.metrics.Reroutes++
		if !s.computeHeader(pkt, r) {
			s.metrics.Dropped++
			return
		}
		// Retry from the same router on the next tick.
		s.push(event{at: s.now + 1, kind: evPacket, pkt: pkt, at2: r})
		return
	}
	if s.truth.HasEdge(r, next) {
		// The link is down: r discovers it directly (link-layer probe)
		// and reroutes. Link failures are local knowledge — flooding in
		// this simulator announces vertex failures only, matching the
		// paper's "failure of some router v" propagation story.
		s.routers[r].known.AddEdge(r, next)
		s.metrics.Reroutes++
		if !s.computeHeader(pkt, r) {
			s.metrics.Dropped++
			return
		}
		s.push(event{at: s.now + 1, kind: evPacket, pkt: pkt, at2: r})
		return
	}
	pkt.hops++
	s.metrics.DataHops++
	s.push(event{at: s.now + 1, kind: evPacket, pkt: pkt, at2: next})
}

// exchangeKnowledge merges fault knowledge between a packet and the
// router it is visiting, in both directions — the piggybacking mechanism
// of the Applications section ("all routers on this path will learn about
// the failure").
func (s *Simulator) exchangeKnowledge(pkt *packet, r int) {
	if pkt.carried == nil {
		pkt.carried = graph.NewFaultSet()
	}
	for _, v := range pkt.carried.Vertices() {
		if !s.routers[r].known.HasVertex(v) {
			s.routers[r].known.AddVertex(v)
			s.metrics.PiggybackTransfers++
		}
	}
	for _, v := range s.routers[r].known.Vertices() {
		if !pkt.carried.HasVertex(v) {
			pkt.carried.AddVertex(v)
			s.metrics.PiggybackTransfers++
		}
	}
}

// computeHeader recomputes the packet's waypoint list from router r's own
// knowledge. Returns false when r's knowledge says dst is unreachable
// (which, since known ⊆ truth, implies true unreachability).
func (s *Simulator) computeHeader(pkt *packet, r int) bool {
	h, ok := s.rs.HeaderFor(r, pkt.dst, s.routers[r].known)
	if !ok {
		return false
	}
	pkt.waypoints = h.Waypoints
	pkt.wpIndex = 1
	return true
}

// nextHop returns the next link the packet wants, advancing waypoints as
// they are reached.
func (s *Simulator) nextHop(pkt *packet, r int) (int, bool) {
	for pkt.wpIndex < len(pkt.waypoints) && int(pkt.waypoints[pkt.wpIndex]) == r {
		pkt.wpIndex++
	}
	if pkt.wpIndex >= len(pkt.waypoints) {
		return 0, false
	}
	return s.rs.NextHop(r, int(pkt.waypoints[pkt.wpIndex]))
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
