// Package distsim simulates the distributed failure-recovery protocol the
// paper's Applications section sketches: every router holds its label,
// port table, and a private set F_u of failures it knows about; failures
// are discovered on contact (a packet about to step onto a dead neighbor),
// announced by flooding, and packets are rerouted *immediately* by the
// discovering router from its own forbidden set — no global route
// recomputation ever happens.
//
// The simulator is a discrete-event loop over integer ticks: packet hops
// and flood messages each take one tick per link. It reports delivery,
// stretch against the optimal surviving route at injection time, control
// message counts, and reroute counts — the measurable content of the
// paper's "recover without delay" story.
//
// Beyond the happy path, the simulator accepts a faultinject.Plan (see
// Config.Chaos) that makes the infrastructure itself misbehave: messages
// are dropped, duplicated, or delayed; routers crash and restart with
// fault-set amnesia; the network partitions and heals. The protocol
// degrades gracefully rather than failing: data hops retry with bounded
// exponential backoff, announcements carry per-subject epochs so
// duplicates and stale reorderings are suppressed, and healed partitions
// trigger re-announcement of fault knowledge across the cut. See
// docs/RESILIENCE.md.
package distsim

import (
	"container/heap"
	"fmt"
	"sort"
	"time"

	"fsdl/internal/backoff"
	"fsdl/internal/core"
	"fsdl/internal/faultinject"
	"fsdl/internal/graph"
	"fsdl/internal/routing"
)

// Config tunes the simulation.
type Config struct {
	// MaxHopsPerPacket drops packets exceeding this hop budget
	// (loop/livelock protection). ≤ 0 selects 8·n.
	MaxHopsPerPacket int
	// DisableFlooding turns failure announcements off: only the router
	// that bumps into a failure learns about it. The contrast shows what
	// the propagation buys.
	DisableFlooding bool
	// EnablePiggyback turns on the paper's second propagation mechanism:
	// failure knowledge rides on data packets, and every router a packet
	// visits merges knowledge with it (both directions).
	EnablePiggyback bool
	// Chaos injects transport and router faults from a seeded,
	// reproducible plan. nil means a perfect network.
	Chaos *faultinject.Plan
	// MaxRetries bounds per-hop retransmissions after a transport loss
	// (or, under chaos, after a header recomputation that fails on
	// possibly-stale knowledge). 0 selects 3; negative disables retries.
	MaxRetries int
	// RetryBackoff is the base backoff in ticks; retry k waits
	// RetryBackoff·2^k. ≤ 0 selects 2.
	RetryBackoff int
}

// Metrics accumulates simulation outcomes.
type Metrics struct {
	// Injected, Delivered, Dropped count packets; Dropped includes both
	// genuine disconnections and hop/retry-budget exhaustion.
	Injected, Delivered, Dropped int
	// Deliverable counts injected packets whose destination was reachable
	// in G\F at injection time (both endpoints alive) — the denominator
	// of the delivery-rate resilience metric.
	Deliverable int
	// DataHops counts packet-forwarding link traversals.
	DataHops int
	// ControlMessages counts flood announcements sent (including ones the
	// transport subsequently lost).
	ControlMessages int
	// Reroutes counts in-flight header recomputations.
	Reroutes int
	// PiggybackTransfers counts fault facts moved between packets and
	// routers by piggybacking.
	PiggybackTransfers int
	// Retries counts per-hop retransmissions scheduled after transport
	// losses or stale-knowledge reroute failures.
	Retries int
	// TransportDrops counts messages randomly lost by the chaos
	// transport; PartitionDrops counts messages blocked by an active
	// partition.
	TransportDrops, PartitionDrops int
	// DuplicatesInjected counts flood announcements the chaos transport
	// duplicated; DedupSuppressed counts announcements receivers
	// discarded as duplicate or stale by epoch.
	DuplicatesInjected, DedupSuppressed int
	// Crashes and Restarts count scheduled router crash/restart events.
	Crashes, Restarts int
	// HealReannouncements counts fault facts re-sent across a healed
	// partition cut.
	HealReannouncements int
	// StretchSum / StretchCount aggregate delivered-packet stretch
	// against the optimal surviving route at injection time.
	StretchSum   float64
	StretchCount int
}

// MeanStretch returns the average delivered stretch (1 when nothing was
// measured).
func (m Metrics) MeanStretch() float64 {
	if m.StretchCount == 0 {
		return 1
	}
	return m.StretchSum / float64(m.StretchCount)
}

// DeliveryRate returns Delivered/Deliverable (1 when nothing was
// deliverable) — the resilience headline number.
func (m Metrics) DeliveryRate() float64 {
	if m.Deliverable == 0 {
		return 1
	}
	return float64(m.Delivered) / float64(m.Deliverable)
}

// Simulator is a single-run discrete-event network simulation.
type Simulator struct {
	g   *graph.Graph
	rs  *routing.Scheme
	cfg Config
	inj *faultinject.Injector

	now    int64
	seq    int64
	events eventHeap

	truth   *graph.FaultSet // ground-truth failed vertices and edges
	epoch   []int64         // per-vertex status version, bumped on every transition
	routers []routerState
	metrics Metrics
}

type routerState struct {
	known *graph.FaultSet
	// lastEpoch maps announcement subjects to the newest epoch this
	// router has processed; older or equal epochs are duplicates or
	// stale reorderings and are suppressed. Cleared on restart (amnesia).
	lastEpoch map[int32]int64
}

type packet struct {
	id        int
	src, dst  int
	waypoints []int32
	wpIndex   int // next waypoint to reach
	hops      int
	retries   int   // consecutive failed transmissions from the current router
	optimal   int32 // d_{G\F}(src,dst) at injection, Infinity if none
	// carried is the fault knowledge the packet piggybacks (nil unless
	// Config.EnablePiggyback).
	carried *graph.FaultSet
}

type event struct {
	at   int64
	seq  int64
	kind eventKind
	// packet events
	pkt *packet
	at2 int // router holding the packet / flood receiver
	// failure events
	vertex  int
	vertex2 int // second endpoint for edge failures
	// flood events: recovered=false announces a failure, true a recovery;
	// epoch versions the subject's status for dedup.
	epoch     int64
	recovered bool
	// partIdx names the healing partition for evHeal.
	partIdx int
}

type eventKind int

const (
	evFail eventKind = iota + 1
	evFailEdge
	evRecover
	evPacket
	evFlood
	evCrash
	evRestart
	evHeal
)

// New creates a simulator over a prebuilt labeling scheme. It panics when
// cfg.Chaos is an invalid plan; use NewChaos to handle plan errors
// gracefully.
func New(cs *core.Scheme, cfg Config) *Simulator {
	s, err := NewChaos(cs, cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewChaos is New returning plan validation errors instead of panicking.
func NewChaos(cs *core.Scheme, cfg Config) (*Simulator, error) {
	g := cs.Graph()
	if cfg.MaxHopsPerPacket <= 0 {
		cfg.MaxHopsPerPacket = 8 * g.NumVertices()
	}
	if cfg.MaxRetries == 0 {
		cfg.MaxRetries = 3
	} else if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 2
	}
	routers := make([]routerState, g.NumVertices())
	for i := range routers {
		routers[i] = routerState{known: graph.NewFaultSet()}
	}
	s := &Simulator{
		g:       g,
		rs:      routing.New(cs),
		cfg:     cfg,
		truth:   graph.NewFaultSet(),
		epoch:   make([]int64, g.NumVertices()),
		routers: routers,
	}
	if cfg.Chaos != nil {
		inj, err := faultinject.NewInjector(*cfg.Chaos, g.NumVertices())
		if err != nil {
			return nil, err
		}
		s.inj = inj
		plan := inj.Plan()
		for _, c := range plan.Crashes {
			s.push(event{at: c.At, kind: evCrash, vertex: c.Router})
			s.push(event{at: c.RestartAt, kind: evRestart, vertex: c.Router})
		}
		for i, pt := range plan.Partitions {
			s.push(event{at: pt.HealAt, kind: evHeal, partIdx: i})
		}
	}
	return s, nil
}

// Now returns the current simulation time.
func (s *Simulator) Now() int64 { return s.now }

// Metrics returns the accumulated metrics.
func (s *Simulator) Metrics() Metrics { return s.metrics }

// KnownFaults returns how many failures router v currently knows about.
func (s *Simulator) KnownFaults(v int) int { return s.routers[v].known.Size() }

// FailVertexAt schedules a silent failure of v at time t.
func (s *Simulator) FailVertexAt(t int64, v int) error {
	if v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: vertex %d out of range", v)
	}
	s.push(event{at: t, kind: evFail, vertex: v})
	return nil
}

// RecoverVertexAt schedules a recovery of v at time t: the router comes
// back and (per the Applications section: routers are "routinely updated
// about the operational status (failures and recoveries)") floods a
// recovery announcement so peers remove it from their forbidden sets.
// Recovering a vertex that never failed is a no-op.
func (s *Simulator) RecoverVertexAt(t int64, v int) error {
	if v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: vertex %d out of range", v)
	}
	s.push(event{at: t, kind: evRecover, vertex: v})
	return nil
}

// FailEdgeAt schedules a silent failure of the link (u,v) at time t.
func (s *Simulator) FailEdgeAt(t int64, u, v int) error {
	if u < 0 || u >= s.g.NumVertices() || v < 0 || v >= s.g.NumVertices() {
		return fmt.Errorf("distsim: edge endpoints (%d,%d) out of range", u, v)
	}
	if !s.g.HasEdge(u, v) {
		return fmt.Errorf("distsim: (%d,%d) is not a link", u, v)
	}
	s.push(event{at: t, kind: evFailEdge, vertex: u, vertex2: v})
	return nil
}

// InjectPacketAt schedules a packet from src to dst at time t.
func (s *Simulator) InjectPacketAt(t int64, src, dst int) error {
	if src < 0 || src >= s.g.NumVertices() || dst < 0 || dst >= s.g.NumVertices() {
		return fmt.Errorf("distsim: packet endpoints (%d,%d) out of range", src, dst)
	}
	s.push(event{at: t, kind: evPacket, pkt: &packet{id: -1, src: src, dst: dst}, at2: src})
	return nil
}

// Run processes events until the queue is empty or the time horizon is
// passed, and returns the metrics.
func (s *Simulator) Run(until int64) Metrics {
	for s.events.Len() > 0 {
		e := heap.Pop(&s.events).(event)
		if e.at > until {
			break
		}
		s.now = e.at
		switch e.kind {
		case evFail:
			if !s.truth.HasVertex(e.vertex) {
				s.epoch[e.vertex]++
				s.truth.AddVertex(e.vertex)
			}
		case evFailEdge:
			s.truth.AddEdge(e.vertex, e.vertex2)
		case evRecover:
			if !s.truth.HasVertex(e.vertex) {
				break // nothing failed: spurious recovery is a no-op
			}
			s.epoch[e.vertex]++
			s.truth.RemoveVertex(e.vertex)
			// The recovered router knows its own status and floods it.
			s.routers[e.vertex].known.RemoveVertex(e.vertex)
			s.noteSelfStatus(e.vertex)
			s.flood(e.vertex, e.vertex, s.epoch[e.vertex], true)
		case evCrash:
			s.metrics.Crashes++
			if !s.truth.HasVertex(e.vertex) {
				s.epoch[e.vertex]++
				s.truth.AddVertex(e.vertex)
			}
		case evRestart:
			s.metrics.Restarts++
			if s.truth.HasVertex(e.vertex) {
				s.epoch[e.vertex]++
				s.truth.RemoveVertex(e.vertex)
			}
			// Amnesia: the router restarts with an empty forbidden set and
			// no memory of which announcements it has processed. It may
			// route packets toward failures it once knew about and must
			// rediscover them by contact or announcement.
			s.routers[e.vertex] = routerState{known: graph.NewFaultSet()}
			s.noteSelfStatus(e.vertex)
			s.flood(e.vertex, e.vertex, s.epoch[e.vertex], true)
		case evHeal:
			s.healPartition(e.partIdx)
		case evFlood:
			s.handleFlood(e)
		case evPacket:
			s.handlePacket(e)
		}
	}
	return s.metrics
}

func (s *Simulator) push(e event) {
	e.seq = s.seq
	s.seq++
	heap.Push(&s.events, e)
}

// handleFlood delivers a status announcement to a router. Announcements
// are versioned by the subject's epoch: a router that has already
// processed an equal or newer epoch for the subject discards the message
// (transport duplicates and stale reorderings die here); otherwise it
// updates its forbidden set and forwards the announcement.
func (s *Simulator) handleFlood(e event) {
	r := e.at2
	if s.truth.HasVertex(r) {
		return // dead routers neither learn nor forward
	}
	rs := &s.routers[r]
	if last, ok := rs.lastEpoch[int32(e.vertex)]; ok && e.epoch <= last {
		s.metrics.DedupSuppressed++
		return
	}
	if rs.lastEpoch == nil {
		rs.lastEpoch = make(map[int32]int64)
	}
	rs.lastEpoch[int32(e.vertex)] = e.epoch
	if e.recovered {
		rs.known.RemoveVertex(e.vertex)
	} else {
		rs.known.AddVertex(e.vertex)
	}
	s.flood(r, e.vertex, e.epoch, e.recovered)
}

// flood sends a status announcement about the given vertex from r to all
// alive neighbors.
func (s *Simulator) flood(r, subject int, epoch int64, recovered bool) {
	if s.cfg.DisableFlooding {
		return
	}
	for _, nb := range s.g.Neighbors(r) {
		if s.truth.HasVertex(int(nb)) || int(nb) == subject {
			continue
		}
		s.sendFlood(r, int(nb), subject, epoch, recovered)
	}
}

// sendFlood transmits one announcement through the (possibly chaotic)
// transport: it may be lost, duplicated, or delayed.
func (s *Simulator) sendFlood(from, to, subject int, epoch int64, recovered bool) {
	s.metrics.ControlMessages++
	delay := int64(1)
	if s.inj != nil {
		out := s.inj.Judge(s.now, faultinject.Flood, from, to)
		if !out.Deliver {
			if out.PartitionDrop {
				s.metrics.PartitionDrops++
			} else {
				s.metrics.TransportDrops++
			}
			return
		}
		delay += int64(out.Delay)
		if out.Duplicate {
			s.metrics.DuplicatesInjected++
			s.metrics.ControlMessages++
			s.push(event{at: s.now + delay + 1, kind: evFlood, at2: to, vertex: subject, epoch: epoch, recovered: recovered})
		}
	}
	s.push(event{at: s.now + delay, kind: evFlood, at2: to, vertex: subject, epoch: epoch, recovered: recovered})
}

// noteSelfStatus stamps a router's own status epoch after a recovery or
// restart, so stale in-flight announcements claiming the router itself is
// failed are rejected rather than poisoning its forbidden set.
func (s *Simulator) noteSelfStatus(v int) {
	rs := &s.routers[v]
	if rs.lastEpoch == nil {
		rs.lastEpoch = make(map[int32]int64)
	}
	rs.lastEpoch[int32(v)] = s.epoch[v]
}

// learnByContact records at router r that subject is currently failed,
// stamping the announcement epoch from the subject's true status (the
// link layer is the authoritative source the router just probed).
func (s *Simulator) learnByContact(r, subject int) {
	rs := &s.routers[r]
	rs.known.AddVertex(subject)
	if rs.lastEpoch == nil {
		rs.lastEpoch = make(map[int32]int64)
	}
	if ep := s.epoch[subject]; ep > rs.lastEpoch[int32(subject)] {
		rs.lastEpoch[int32(subject)] = ep
	}
}

// healPartition re-announces fault knowledge across a healed cut: every
// alive router incident to a severed graph edge re-sends its known vertex
// faults to the neighbor on the other side. Epoch dedup absorbs the
// redundancy downstream; only genuinely new facts propagate further.
func (s *Simulator) healPartition(pi int) {
	for u := 0; u < s.g.NumVertices(); u++ {
		if s.truth.HasVertex(u) {
			continue
		}
		faults := s.routers[u].known.Vertices()
		if len(faults) == 0 {
			continue
		}
		sort.Ints(faults) // deterministic transmission order
		for _, nb := range s.g.Neighbors(u) {
			v := int(nb)
			if !s.inj.CutEdge(pi, u, v) || s.truth.HasVertex(v) {
				continue
			}
			for _, f := range faults {
				if f == v {
					continue // never tell a router that it itself is down
				}
				s.metrics.HealReannouncements++
				s.sendFlood(u, v, f, s.routers[u].lastEpoch[int32(f)], false)
			}
		}
	}
}

// retryPacket schedules a bounded exponential-backoff retransmission of
// pkt from router r. Returns false when the retry budget is exhausted.
// The schedule is the shared backoff policy with jitter off: delays are
// simulator ticks and must stay bit-deterministic across runs.
func (s *Simulator) retryPacket(pkt *packet, r int) bool {
	if pkt.retries >= s.cfg.MaxRetries {
		return false
	}
	pol := backoff.Policy{Base: time.Duration(s.cfg.RetryBackoff)}
	wait := int64(pol.Delay(pkt.retries))
	pkt.retries++
	s.metrics.Retries++
	s.push(event{at: s.now + wait, kind: evPacket, pkt: pkt, at2: r})
	return true
}

// handlePacket advances one packet sitting at router e.at2.
func (s *Simulator) handlePacket(e event) {
	pkt, r := e.pkt, e.at2
	if pkt.id == -1 {
		// Fresh injection: measure the optimum and build the header.
		pkt.id = s.metrics.Injected
		s.metrics.Injected++
		pkt.optimal = s.g.DistAvoiding(pkt.src, pkt.dst, s.truth)
		if graph.Reachable(pkt.optimal) && !s.truth.HasVertex(pkt.src) && !s.truth.HasVertex(pkt.dst) {
			s.metrics.Deliverable++
		}
		if s.truth.HasVertex(pkt.src) {
			s.metrics.Dropped++
			return
		}
		if !s.computeHeader(pkt, r) {
			s.metrics.Dropped++
			return
		}
	} else if s.truth.HasVertex(r) {
		// The router died (failure or crash) with the packet parked or in
		// flight: the packet is lost with it.
		s.metrics.Dropped++
		return
	}
	if s.cfg.EnablePiggyback {
		s.exchangeKnowledge(pkt, r)
	}
	if r == pkt.dst {
		s.metrics.Delivered++
		if graph.Reachable(pkt.optimal) && pkt.optimal > 0 {
			s.metrics.StretchSum += float64(pkt.hops) / float64(pkt.optimal)
			s.metrics.StretchCount++
		}
		return
	}
	if pkt.hops >= s.cfg.MaxHopsPerPacket {
		s.metrics.Dropped++
		return
	}
	next, ok := s.nextHop(pkt, r)
	if !ok {
		s.metrics.Dropped++
		return
	}
	if s.truth.HasVertex(next) {
		// Contact discovery: r learns about the failure, floods it, and
		// reroutes from its own (updated) forbidden set.
		s.learnByContact(r, next)
		s.flood(r, next, s.epoch[next], false)
		s.metrics.Reroutes++
		if !s.rerouteOrRetry(pkt, r) {
			s.metrics.Dropped++
		}
		return
	}
	if s.truth.HasEdge(r, next) {
		// The link is down: r discovers it directly (link-layer probe)
		// and reroutes. Link failures are local knowledge — flooding in
		// this simulator announces vertex failures only, matching the
		// paper's "failure of some router v" propagation story.
		s.routers[r].known.AddEdge(r, next)
		s.metrics.Reroutes++
		if !s.rerouteOrRetry(pkt, r) {
			s.metrics.Dropped++
		}
		return
	}
	// The hop itself rides the (possibly chaotic) transport.
	extra := int64(0)
	if s.inj != nil {
		out := s.inj.Judge(s.now, faultinject.Data, r, next)
		if !out.Deliver {
			if out.PartitionDrop {
				s.metrics.PartitionDrops++
			} else {
				s.metrics.TransportDrops++
			}
			if !s.retryPacket(pkt, r) {
				s.metrics.Dropped++
			}
			return
		}
		extra = int64(out.Delay)
	}
	pkt.retries = 0
	pkt.hops++
	s.metrics.DataHops++
	s.push(event{at: s.now + 1 + extra, kind: evPacket, pkt: pkt, at2: next})
}

// rerouteOrRetry recomputes the packet's header after a discovery and, on
// success, schedules a retry from the same router on the next tick. When
// the router's knowledge says the destination is unreachable: without
// chaos that knowledge is a subset of the truth, so the packet is
// genuinely undeliverable and false is returned; under chaos the
// knowledge may be stale (a lost recovery announcement), so the packet
// waits out a bounded backoff and tries again.
func (s *Simulator) rerouteOrRetry(pkt *packet, r int) bool {
	if s.computeHeader(pkt, r) {
		s.push(event{at: s.now + 1, kind: evPacket, pkt: pkt, at2: r})
		return true
	}
	if s.inj != nil {
		return s.retryPacket(pkt, r)
	}
	return false
}

// exchangeKnowledge merges fault knowledge between a packet and the
// router it is visiting, in both directions — the piggybacking mechanism
// of the Applications section ("all routers on this path will learn about
// the failure").
func (s *Simulator) exchangeKnowledge(pkt *packet, r int) {
	if pkt.carried == nil {
		pkt.carried = graph.NewFaultSet()
	}
	for _, v := range pkt.carried.Vertices() {
		if !s.routers[r].known.HasVertex(v) {
			s.routers[r].known.AddVertex(v)
			s.metrics.PiggybackTransfers++
		}
	}
	for _, v := range s.routers[r].known.Vertices() {
		if !pkt.carried.HasVertex(v) {
			pkt.carried.AddVertex(v)
			s.metrics.PiggybackTransfers++
		}
	}
}

// computeHeader recomputes the packet's waypoint list from router r's own
// knowledge. Returns false when r's knowledge says dst is unreachable
// (which, absent chaos, implies true unreachability since known ⊆ truth).
func (s *Simulator) computeHeader(pkt *packet, r int) bool {
	h, ok := s.rs.HeaderFor(r, pkt.dst, s.routers[r].known)
	if !ok {
		return false
	}
	pkt.waypoints = h.Waypoints
	pkt.wpIndex = 1
	return true
}

// nextHop returns the next link the packet wants, advancing waypoints as
// they are reached.
func (s *Simulator) nextHop(pkt *packet, r int) (int, bool) {
	for pkt.wpIndex < len(pkt.waypoints) && int(pkt.waypoints[pkt.wpIndex]) == r {
		pkt.wpIndex++
	}
	if pkt.wpIndex >= len(pkt.waypoints) {
		return 0, false
	}
	return s.rs.NextHop(r, int(pkt.waypoints[pkt.wpIndex]))
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
