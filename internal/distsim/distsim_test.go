package distsim

import (
	"math/rand"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
)

func newSim(t testing.TB, g *graph.Graph, cfg Config) *Simulator {
	t.Helper()
	cs, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs.SetCacheLimit(4096)
	return New(cs, cfg)
}

func TestPacketDeliveryNoFailures(t *testing.T) {
	g := gen.Grid2D(8, 8)
	sim := newSim(t, g, Config{})
	if err := sim.InjectPacketAt(0, 0, 63); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Injected != 1 || m.Delivered != 1 || m.Dropped != 0 {
		t.Fatalf("metrics = %+v, want 1 delivered", m)
	}
	if m.DataHops < 14 {
		t.Errorf("DataHops = %d, want >= true distance 14", m.DataHops)
	}
	if m.MeanStretch() > 3+1e-9 {
		t.Errorf("stretch %.3f exceeds 1+eps", m.MeanStretch())
	}
	if m.Reroutes != 0 || m.ControlMessages != 0 {
		t.Errorf("failure-free run produced reroutes/control traffic: %+v", m)
	}
}

func TestPacketReroutesAroundDiscoveredFailure(t *testing.T) {
	// Wall in a grid, failing before injection: the packet discovers it
	// on contact, floods, reroutes, and still arrives.
	w, h := 9, 9
	g := gen.Grid2D(w, h)
	sim := newSim(t, g, Config{})
	for y := 0; y < h-1; y++ {
		if err := sim.FailVertexAt(0, y*w+4); err != nil {
			t.Fatal(err)
		}
	}
	if err := sim.InjectPacketAt(1, 4*w+0, 4*w+8); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 1 {
		t.Fatalf("packet not delivered: %+v", m)
	}
	if m.Reroutes == 0 {
		t.Error("crossing a hidden wall must trigger at least one reroute")
	}
	if m.ControlMessages == 0 {
		t.Error("discovery must flood announcements")
	}
}

func TestDisconnectionDropsPacket(t *testing.T) {
	g := gen.Path(10)
	sim := newSim(t, g, Config{})
	if err := sim.FailVertexAt(0, 5); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 9); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 0 || m.Dropped != 1 {
		t.Fatalf("cut path: metrics = %+v, want 1 dropped", m)
	}
}

func TestFailedSourceAndDestination(t *testing.T) {
	g := gen.Grid2D(5, 5)
	sim := newSim(t, g, Config{})
	if err := sim.FailVertexAt(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.FailVertexAt(0, 24); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 12); err != nil { // dead source
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 12, 24); err != nil { // dead destination
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 0 || m.Dropped != 2 {
		t.Fatalf("metrics = %+v, want 2 dropped", m)
	}
}

func TestFloodingSpreadsKnowledge(t *testing.T) {
	g := gen.Grid2D(6, 6)
	sim := newSim(t, g, Config{})
	if err := sim.FailVertexAt(0, 14); err != nil {
		t.Fatal(err)
	}
	// A packet bumps into 14 and triggers the flood.
	if err := sim.InjectPacketAt(1, 13, 15); err != nil {
		t.Fatal(err)
	}
	sim.Run(1 << 20)
	informed := 0
	for v := 0; v < 36; v++ {
		if v != 14 && sim.KnownFaults(v) > 0 {
			informed++
		}
	}
	if informed < 30 {
		t.Errorf("only %d/35 routers learned about the failure — flood did not spread", informed)
	}
}

func TestDisableFloodingLimitsKnowledge(t *testing.T) {
	g := gen.Grid2D(6, 6)
	sim := newSim(t, g, Config{DisableFlooding: true})
	if err := sim.FailVertexAt(0, 14); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 13, 15); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.ControlMessages != 0 {
		t.Errorf("flooding disabled but %d control messages sent", m.ControlMessages)
	}
	informed := 0
	for v := 0; v < 36; v++ {
		if v != 14 && sim.KnownFaults(v) > 0 {
			informed++
		}
	}
	if informed > 3 {
		t.Errorf("%d routers informed without flooding — expected only discoverers", informed)
	}
}

func TestManyPacketsUnderChurnAllAccounted(t *testing.T) {
	g := gen.Grid2D(10, 10)
	sim := newSim(t, g, Config{})
	rng := rand.New(rand.NewSource(7))
	failures := 0
	for v := 0; v < 100 && failures < 8; v++ {
		if rng.Intn(10) == 0 {
			if err := sim.FailVertexAt(int64(rng.Intn(50)), v); err != nil {
				t.Fatal(err)
			}
			failures++
		}
	}
	injected := 0
	for i := 0; i < 30; i++ {
		src, dst := rng.Intn(100), rng.Intn(100)
		if src == dst {
			continue
		}
		if err := sim.InjectPacketAt(int64(10+i*5), src, dst); err != nil {
			t.Fatal(err)
		}
		injected++
	}
	m := sim.Run(1 << 30)
	if m.Injected != injected {
		t.Fatalf("injected %d, metrics say %d", injected, m.Injected)
	}
	if m.Delivered+m.Dropped != m.Injected {
		t.Fatalf("packets unaccounted: %+v", m)
	}
	if m.Delivered == 0 {
		t.Fatal("no packet delivered under mild churn")
	}
	if m.MeanStretch() > 10 {
		t.Errorf("mean stretch %.2f implausibly high", m.MeanStretch())
	}
}

func TestInjectValidation(t *testing.T) {
	g := gen.Path(4)
	sim := newSim(t, g, Config{})
	if err := sim.InjectPacketAt(0, -1, 2); err == nil {
		t.Error("negative source must error")
	}
	if err := sim.FailVertexAt(0, 99); err == nil {
		t.Error("out-of-range failure must error")
	}
}

func TestEventOrderingDeterministic(t *testing.T) {
	run := func() Metrics {
		g := gen.Grid2D(7, 7)
		sim := newSim(t, g, Config{})
		sim.FailVertexAt(0, 24)
		sim.InjectPacketAt(1, 0, 48)
		sim.InjectPacketAt(1, 48, 0)
		return sim.Run(1 << 20)
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("simulation not deterministic: %+v vs %+v", a, b)
	}
}

func TestPiggybackSpreadsAlongPath(t *testing.T) {
	g := gen.Grid2D(8, 8)
	sim := newSim(t, g, Config{DisableFlooding: true, EnablePiggyback: true})
	if err := sim.FailVertexAt(0, 27); err != nil {
		t.Fatal(err)
	}
	// Packet crosses near the failure, discovers it, and carries the news
	// to every router on the rest of its route.
	if err := sim.InjectPacketAt(1, 26, 28); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 1 {
		t.Fatalf("packet not delivered: %+v", m)
	}
	if m.PiggybackTransfers == 0 {
		t.Error("piggybacking moved no knowledge")
	}
	if m.ControlMessages != 0 {
		t.Error("flooding disabled: no control messages expected")
	}
	// The destination router must now know about the failure.
	if sim.KnownFaults(28) == 0 {
		t.Error("destination should have learned the failure via piggyback")
	}
}

func TestPiggybackReducesRediscovery(t *testing.T) {
	run := func(piggyback bool) Metrics {
		g := gen.Grid2D(9, 9)
		sim := newSim(t, g, Config{DisableFlooding: true, EnablePiggyback: piggyback})
		for y := 0; y < 8; y++ {
			sim.FailVertexAt(0, y*9+4)
		}
		// A convoy of packets from the same source across the wall: with
		// piggybacking, later packets benefit from... nothing directly
		// (knowledge lives in routers), but the routers along the shared
		// route accumulate it, so later packets reroute less.
		for i := 0; i < 6; i++ {
			sim.InjectPacketAt(int64(1+i*200), 4*9+0, 4*9+8)
		}
		return sim.Run(1 << 30)
	}
	with := run(true)
	without := run(false)
	if with.Reroutes > without.Reroutes {
		t.Errorf("piggyback reroutes %d > plain %d", with.Reroutes, without.Reroutes)
	}
	if with.Delivered < without.Delivered {
		t.Errorf("piggyback delivered %d < plain %d", with.Delivered, without.Delivered)
	}
	if with.PiggybackTransfers == 0 {
		t.Error("piggyback run moved no knowledge")
	}
}

func TestEdgeFailureReroutes(t *testing.T) {
	// C8: the packet's direct way is cut; it must discover the dead link
	// and go the long way around.
	g, err := gen.Cycle(8)
	if err != nil {
		t.Fatal(err)
	}
	sim := newSim(t, g, Config{})
	if err := sim.FailEdgeAt(0, 0, 1); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 1); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 1 {
		t.Fatalf("packet not delivered: %+v", m)
	}
	if m.DataHops != 7 {
		t.Errorf("DataHops = %d, want 7 (the long way around)", m.DataHops)
	}
	if m.Reroutes == 0 {
		t.Error("dead link must trigger a reroute")
	}
}

func TestEdgeFailureDisconnects(t *testing.T) {
	g := gen.Path(6)
	sim := newSim(t, g, Config{})
	if err := sim.FailEdgeAt(0, 2, 3); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 5); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 0 || m.Dropped != 1 {
		t.Fatalf("cut bridge: %+v, want 1 dropped", m)
	}
}

func TestFailEdgeValidation(t *testing.T) {
	g := gen.Path(4)
	sim := newSim(t, g, Config{})
	if err := sim.FailEdgeAt(0, 0, 2); err == nil {
		t.Error("non-link must be rejected")
	}
	if err := sim.FailEdgeAt(0, -1, 0); err == nil {
		t.Error("out-of-range endpoint must be rejected")
	}
}

func TestRecoveryRestoresRouting(t *testing.T) {
	// Cut a path, then recover: a packet injected after the recovery
	// must sail through even though routers learned the failure earlier.
	g := gen.Path(10)
	sim := newSim(t, g, Config{})
	if err := sim.FailVertexAt(0, 5); err != nil {
		t.Fatal(err)
	}
	// First packet hits the cut, spreads knowledge, drops.
	if err := sim.InjectPacketAt(1, 0, 9); err != nil {
		t.Fatal(err)
	}
	if err := sim.RecoverVertexAt(500, 5); err != nil {
		t.Fatal(err)
	}
	// Second packet after recovery (and after the recovery flood).
	if err := sim.InjectPacketAt(600, 0, 9); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 30)
	if m.Delivered != 1 || m.Dropped != 1 {
		t.Fatalf("metrics = %+v, want 1 delivered + 1 dropped", m)
	}
	// The recovery announcement must have cleared the stale knowledge.
	for v := 0; v < 10; v++ {
		if v != 5 && sim.KnownFaults(v) != 0 {
			t.Errorf("router %d still believes in the recovered failure", v)
		}
	}
}

func TestRecoveryWithoutPriorFailureIsNoop(t *testing.T) {
	g := gen.Grid2D(4, 4)
	sim := newSim(t, g, Config{})
	if err := sim.RecoverVertexAt(0, 7); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(1, 0, 15); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 20)
	if m.Delivered != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if err := sim.RecoverVertexAt(0, 99); err == nil {
		t.Error("out-of-range recovery must error")
	}
}
