package distsim

import (
	"math/rand"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/faultinject"
	"fsdl/internal/gen"
)

// canonicalPlan is the acceptance-criteria chaos scenario: 10% drops, 5%
// duplicated announcements, a little delay jitter, one crash/restart, and
// one partition+heal, all from one seed.
func canonicalPlan(seed int64) *faultinject.Plan {
	// Partition the left three columns of the 8x8 grid for 120 ticks.
	var left []int
	for y := 0; y < 8; y++ {
		for x := 0; x < 3; x++ {
			left = append(left, y*8+x)
		}
	}
	return &faultinject.Plan{
		Seed:      seed,
		DropProb:  0.10,
		DupProb:   0.05,
		DelayProb: 0.05,
		Crashes:   []faultinject.Crash{{Router: 27, At: 150, RestartAt: 320}},
		Partitions: []faultinject.Partition{
			{Members: left, At: 430, HealAt: 550},
		},
	}
}

// canonicalRun builds the canonical scenario over an 8x8 grid: two real
// vertex failures, then a seeded packet workload spread across the crash
// and partition windows. Generous retry budget so transient faults are
// ridden out rather than fatal.
func canonicalRun(t testing.TB, cfg Config) Metrics {
	t.Helper()
	g := gen.Grid2D(8, 8)
	cs, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	cs.SetCacheLimit(4096)
	sim, err := NewChaos(cs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.FailVertexAt(0, 36); err != nil {
		t.Fatal(err)
	}
	if err := sim.FailVertexAt(5, 44); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	avoid := map[int]bool{36: true, 44: true, 27: true}
	injected := 0
	for injected < 40 {
		src, dst := rng.Intn(64), rng.Intn(64)
		if src == dst || avoid[src] || avoid[dst] {
			continue
		}
		if err := sim.InjectPacketAt(int64(10+injected*18), src, dst); err != nil {
			t.Fatal(err)
		}
		injected++
	}
	return sim.Run(1 << 30)
}

// TestChaosCanonicalScenario verifies the PR's acceptance criteria: the
// seeded scenario is reproducible byte for byte across two runs and
// delivers at least 95% of the deliverable packets.
func TestChaosCanonicalScenario(t *testing.T) {
	cfg := Config{Chaos: canonicalPlan(2026), MaxRetries: 9, RetryBackoff: 2}
	a := canonicalRun(t, cfg)
	b := canonicalRun(t, cfg)
	if a != b {
		t.Fatalf("chaos run not reproducible:\n  %+v\nvs\n  %+v", a, b)
	}
	if a.Injected != 40 {
		t.Fatalf("workload lost packets at injection: %+v", a)
	}
	if a.Delivered+a.Dropped != a.Injected {
		t.Fatalf("packets unaccounted: %+v", a)
	}
	if a.Crashes != 1 || a.Restarts != 1 {
		t.Errorf("crash/restart not executed: %+v", a)
	}
	if a.TransportDrops == 0 || a.DuplicatesInjected == 0 {
		t.Errorf("chaos transport injected no faults: %+v", a)
	}
	if a.DedupSuppressed == 0 {
		t.Errorf("duplicated announcements were never suppressed: %+v", a)
	}
	if rate := a.DeliveryRate(); rate < 0.95 {
		t.Errorf("delivery rate %.3f < 0.95 (%d/%d delivered): %+v",
			rate, a.Delivered, a.Deliverable, a)
	}
}

// TestChaosMatrix runs the {flooding on/off} x {piggyback on/off} grid
// under the same injected fault plan, asserting each combo is
// deterministic, accounts for every packet, delivers at least 95% of
// deliverable traffic, and keeps stretch within plausible bounds.
func TestChaosMatrix(t *testing.T) {
	combos := []struct {
		name             string
		flood, piggyback bool
	}{
		{"flooding+piggyback", true, true},
		{"flooding only", true, false},
		{"piggyback only", false, true},
		{"contact only", false, false},
	}
	for _, c := range combos {
		c := c
		t.Run(c.name, func(t *testing.T) {
			cfg := Config{
				DisableFlooding: !c.flood,
				EnablePiggyback: c.piggyback,
				Chaos:           canonicalPlan(7),
				MaxRetries:      9,
				RetryBackoff:    2,
			}
			a := canonicalRun(t, cfg)
			b := canonicalRun(t, cfg)
			if a != b {
				t.Fatalf("combo not deterministic:\n  %+v\nvs\n  %+v", a, b)
			}
			if a.Delivered+a.Dropped != a.Injected {
				t.Fatalf("packets unaccounted: %+v", a)
			}
			if rate := a.DeliveryRate(); rate < 0.95 {
				t.Errorf("delivery rate %.3f < 0.95: %+v", rate, a)
			}
			if ms := a.MeanStretch(); ms < 0.5 || ms > 10 {
				t.Errorf("mean stretch %.2f implausible: %+v", ms, a)
			}
			if !c.flood && a.ControlMessages > a.HealReannouncements {
				t.Errorf("flooding disabled but %d control messages beyond %d heal re-announcements",
					a.ControlMessages, a.HealReannouncements)
			}
			if c.piggyback && a.PiggybackTransfers == 0 {
				t.Errorf("piggyback enabled but no knowledge moved: %+v", a)
			}
		})
	}
}

// TestRetriesRideOutPartition pins the graceful-degradation story on a
// path graph: a packet that must cross an active partition survives via
// bounded backoff and arrives after the heal; with retries disabled it is
// lost.
func TestRetriesRideOutPartition(t *testing.T) {
	plan := &faultinject.Plan{
		Partitions: []faultinject.Partition{
			{Members: []int{0, 1, 2, 3, 4}, At: 0, HealAt: 120},
		},
	}
	run := func(maxRetries int) Metrics {
		g := gen.Path(10)
		cs, err := core.BuildScheme(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		sim, err := NewChaos(cs, Config{Chaos: plan, MaxRetries: maxRetries, RetryBackoff: 2})
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.InjectPacketAt(10, 0, 9); err != nil {
			t.Fatal(err)
		}
		return sim.Run(1 << 30)
	}
	patient := run(9) // backoff sum 2+4+...+512 > 120-tick partition
	if patient.Delivered != 1 {
		t.Errorf("patient sender should outlive the partition: %+v", patient)
	}
	if patient.Retries == 0 || patient.PartitionDrops == 0 {
		t.Errorf("crossing an active partition must cost retries: %+v", patient)
	}
	impatient := run(-1) // retries disabled
	if impatient.Delivered != 0 || impatient.Dropped != 1 {
		t.Errorf("without retries the packet must be lost: %+v", impatient)
	}
}

// TestCrashRestartAmnesia verifies the amnesia semantics: a router that
// learned a fault before crashing restarts with an empty forbidden set.
func TestCrashRestartAmnesia(t *testing.T) {
	g := gen.Grid2D(6, 6)
	cs, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	plan := &faultinject.Plan{Crashes: []faultinject.Crash{{Router: 20, At: 200, RestartAt: 400}}}
	sim, err := NewChaos(cs, Config{Chaos: plan})
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.FailVertexAt(0, 14); err != nil {
		t.Fatal(err)
	}
	// A packet bumps into 14 and floods the news to everyone, including 20.
	if err := sim.InjectPacketAt(1, 13, 15); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 30)
	if m.Crashes != 1 || m.Restarts != 1 {
		t.Fatalf("crash schedule not executed: %+v", m)
	}
	if sim.KnownFaults(20) != 0 {
		t.Errorf("router 20 restarted with %d remembered faults, want amnesia", sim.KnownFaults(20))
	}
	// A router that never crashed still remembers.
	if sim.KnownFaults(0) == 0 {
		t.Error("router 0 should still know the failure")
	}
}

// TestHealReannouncement verifies that fault knowledge confined to one
// side of a partition crosses the cut when the partition heals.
func TestHealReannouncement(t *testing.T) {
	g := gen.Grid2D(4, 4)
	cs, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Partition columns {0,1} from {2,3} from the start; heal at 500.
	var left []int
	for y := 0; y < 4; y++ {
		left = append(left, y*4, y*4+1)
	}
	plan := &faultinject.Plan{Partitions: []faultinject.Partition{{Members: left, At: 0, HealAt: 500}}}
	sim, err := NewChaos(cs, Config{Chaos: plan})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 (left side) fails; a left-side packet discovers it. The
	// flood cannot cross the active partition.
	if err := sim.FailVertexAt(5, 0); err != nil {
		t.Fatal(err)
	}
	if err := sim.InjectPacketAt(10, 4, 1); err != nil {
		t.Fatal(err)
	}
	m := sim.Run(1 << 30)
	if m.HealReannouncements == 0 {
		t.Fatalf("heal produced no re-announcements: %+v", m)
	}
	informedRight := 0
	for y := 0; y < 4; y++ {
		for x := 2; x < 4; x++ {
			if sim.KnownFaults(y*4+x) > 0 {
				informedRight++
			}
		}
	}
	if informedRight == 0 {
		t.Error("right side never learned the left-side failure after heal")
	}
}

// TestNewChaosRejectsBadPlan verifies plan validation surfaces as an
// error from NewChaos.
func TestNewChaosRejectsBadPlan(t *testing.T) {
	g := gen.Path(4)
	cs, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	bad := &faultinject.Plan{DropProb: 2}
	if _, err := NewChaos(cs, Config{Chaos: bad}); err == nil {
		t.Error("invalid plan must be rejected")
	}
	outOfRange := &faultinject.Plan{Crashes: []faultinject.Crash{{Router: 99, At: 1, RestartAt: 2}}}
	if _, err := NewChaos(cs, Config{Chaos: outOfRange}); err == nil {
		t.Error("out-of-range crash router must be rejected")
	}
}
