// Package server is the long-lived serving layer over a label store:
// the deployment shape the labeling scheme is designed for, where a
// stream of distance/connectivity queries and fail/recover events hits
// one resident structure. It wraps labelstore with a sharded LRU result
// cache, admission control (bounded worker pool, deadlines, per-query
// work budgets that degrade to safe upper bounds instead of failing),
// a global fault overlay kept in sync with an optional oracle.Dynamic,
// and Prometheus-style metrics. cmd/fsdl-serve exposes it over
// HTTP/JSON.
package server

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"runtime"
	"slices"
	"strings"
	"sync"
	"time"

	"fsdl/internal/backoff"
	"fsdl/internal/core"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
	"fsdl/internal/oracle"
)

// Config configures a Server. Exactly one of Store and Source is
// required; everything else has a serviceable default.
type Config struct {
	// Store is the loaded label container (strict Load or salvaged
	// LoadPartial — pass the SalvageReport in Report for the latter so
	// the salvage counters surface in /metrics).
	Store  *labelstore.Store
	Report *labelstore.SalvageReport

	// Source is an alternative label provider — a cluster.Frontend
	// scatter-gathering labels from shard servers, or any other
	// LabelSource. Mutually exclusive with Store.
	Source LabelSource

	// Graph, when non-nil, enables the dynamic-oracle query path: the
	// fail/recover endpoints keep an oracle.Dynamic over this graph in
	// sync with the fault overlay, and queries asking for it are
	// answered there (amortized √n rebuilds instead of per-query fault
	// decoding). Must have the same vertex count as Store.
	Graph *graph.Graph
	// Epsilon is the dynamic oracle's precision (default 2).
	Epsilon float64
	// DynThreshold is the dynamic oracle's rebuild threshold (0 = ⌈√n⌉).
	DynThreshold int

	// Workers bounds concurrently executing queries (default
	// GOMAXPROCS). QueueDepth bounds queries waiting for a worker slot
	// beyond that (default 4×Workers); past it requests are rejected
	// with ErrOverloaded.
	Workers    int
	QueueDepth int

	// DefaultDeadline bounds each request's total time (queue wait
	// included) when the request doesn't set its own (default 5s).
	DefaultDeadline time.Duration
	// DefaultBudget is the per-query decode work budget (sketch edges
	// examined) when the request doesn't set one. 0 = unlimited.
	DefaultBudget int

	// CacheCapacity is the total result-cache capacity in entries
	// (default 4096; negative disables). CacheShards spreads it over
	// independently locked shards (default 8).
	CacheCapacity int
	CacheShards   int

	// Live, when non-nil, enables the streaming-mutation query path:
	// the pipeline's pending deletions merge into every query's fault
	// set as implicit soft faults and its pending insertions become
	// query-time patches, so answers track the mutated graph (as sound
	// upper bounds, exact:false) until a compaction bakes the delta
	// into the next label generation.
	Live *liveupdate.Pipeline
	// LiveRoot is the directory compaction writes gen-<id> generation
	// directories into; required for Compact / the /v1/compact
	// endpoint.
	LiveRoot string
	// CompactWorkers bounds compaction build parallelism (0 =
	// GOMAXPROCS).
	CompactWorkers int
	// CompactFormat selects the label container compaction writes
	// (0 or 2 = FSDL2 stream, 3 = mmap-first FSDL3); CompactCompress
	// additionally compresses FSDL3 record payloads.
	CompactFormat   int
	CompactCompress bool
	// Partitions optionally maps shard names to the vertex ids each
	// serves; compaction then writes one partition file per shard into
	// every generation directory, and an incremental compaction reports
	// which shards actually changed so a cluster swap can reload only
	// those.
	Partitions map[string][]int
}

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrOverloaded: worker pool and queue are both full.
	ErrOverloaded = errors.New("server: overloaded, queue full")
	// ErrDeadline: the request's deadline expired while it waited.
	ErrDeadline = errors.New("server: deadline expired while queued")
)

// Answer is the verdict for one (s,t) pair. Exact is false when the
// answer is a conservative upper bound — degraded fault labels or an
// exhausted work budget — rather than the scheme's (1+ε) estimate.
// Dist is meaningful only when Connected. Error is per-pair (a batch
// never fails whole because one pair named a missing label).
type Answer struct {
	S                  int     `json:"s"`
	T                  int     `json:"t"`
	Connected          bool    `json:"connected"`
	Dist               int64   `json:"dist"`
	Exact              bool    `json:"exact"`
	Degraded           bool    `json:"degraded,omitempty"`
	BudgetExhausted    bool    `json:"budget_exhausted,omitempty"`
	MissingFaultLabels []int32 `json:"missing_fault_labels,omitempty"`
	// Path is the witness walk s..t (present only when the batch asked
	// for paths and the pair connects): each hop is realizable in the
	// surviving graph at a weight summing exactly to Dist, with pending
	// live insertions appearing as unit hops. A corridor of the (1+ε)
	// estimate, not necessarily an exact shortest path.
	Path   []int32 `json:"path,omitempty"`
	Cached bool    `json:"cached,omitempty"`
	Error  string  `json:"error,omitempty"`
}

// State is a point-in-time snapshot for /v1/state.
type State struct {
	N               int      `json:"n"`
	Labels          int      `json:"labels"`
	OverlayVertices []int    `json:"overlay_vertices"`
	OverlayEdges    [][2]int `json:"overlay_edges"`
	CacheEntries    int      `json:"cache_entries"`
	Dynamic         bool     `json:"dynamic"`
	Rebuilds        int      `json:"rebuilds,omitempty"`
	DeltaSize       int      `json:"delta_size,omitempty"`
	SalvageKept     int      `json:"salvage_kept,omitempty"`
	SalvageTotal    int      `json:"salvage_total,omitempty"`
	// Live-pipeline state: the served label generation, delta edges not
	// yet baked into it (0 = answers are exact again) and the last
	// applied mutation sequence.
	LiveGeneration uint64 `json:"live_generation,omitempty"`
	LivePending    int    `json:"live_pending,omitempty"`
	LiveSeq        uint64 `json:"live_seq,omitempty"`
}

// Server answers forbidden-set distance queries from a label store,
// maintaining a global fault overlay that every query sees unioned with
// its own fault set. Safe for concurrent use.
type Server struct {
	cfg  Config
	src  LabelSource
	dyn  *oracle.Dynamic
	live *liveupdate.Pipeline

	// overlayMu guards overlay, the fault set applied to every query.
	overlayMu sync.RWMutex
	overlay   *graph.FaultSet

	cache *resultCache
	met   *metrics

	// prevMu guards prevGen, the last committed compaction retained in
	// memory as the base of the next incremental build. It is valid
	// only while its generation still matches the pipeline's — anything
	// else (a restart, a failed commit) silently falls back to a full
	// build.
	prevMu  sync.Mutex
	prevGen *liveupdate.CompactionResult

	// slots is the worker-pool semaphore; queued counts admissions in
	// flight (executing + waiting), capped at Workers+QueueDepth.
	slots  chan struct{}
	queued chan struct{}
}

// New builds a Server over cfg.Store or cfg.Source.
func New(cfg Config) (*Server, error) {
	src := cfg.Source
	switch {
	case cfg.Store != nil && src != nil:
		return nil, fmt.Errorf("server: Config.Store and Config.Source are mutually exclusive")
	case cfg.Store != nil:
		src = newStoreSource(cfg.Store)
	case src == nil:
		return nil, fmt.Errorf("server: one of Config.Store or Config.Source is required")
	}
	if cfg.Epsilon <= 0 {
		cfg.Epsilon = 2
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 4 * cfg.Workers
	}
	if cfg.DefaultDeadline <= 0 {
		cfg.DefaultDeadline = 5 * time.Second
	}
	if cfg.CacheCapacity == 0 {
		cfg.CacheCapacity = 4096
	}
	if cfg.CacheShards <= 0 {
		cfg.CacheShards = 8
	}
	s := &Server{
		cfg:     cfg,
		src:     src,
		live:    cfg.Live,
		overlay: graph.NewFaultSet(),
		cache:   newResultCache(cfg.CacheCapacity, cfg.CacheShards),
		met:     newMetrics(),
		slots:   make(chan struct{}, cfg.Workers),
		queued:  make(chan struct{}, cfg.Workers+cfg.QueueDepth),
	}
	if cfg.Graph != nil {
		if cfg.Graph.NumVertices() != src.NumVertices() {
			return nil, fmt.Errorf("server: graph has %d vertices, store covers %d",
				cfg.Graph.NumVertices(), src.NumVertices())
		}
		dyn, err := oracle.NewDynamic(cfg.Graph, cfg.Epsilon, cfg.DynThreshold)
		if err != nil {
			return nil, fmt.Errorf("server: build dynamic oracle: %w", err)
		}
		s.dyn = dyn
	}
	if cfg.Live != nil {
		if bn := cfg.Live.Base().NumVertices(); bn != src.NumVertices() {
			return nil, fmt.Errorf("server: live pipeline base has %d vertices, store covers %d",
				bn, src.NumVertices())
		}
	}
	if cfg.Report != nil {
		s.met.salvageTotal.Store(int64(cfg.Report.Total))
		s.met.salvageKept.Store(int64(cfg.Report.Kept))
		s.met.salvageCorrupt.Store(int64(len(cfg.Report.Corrupt)))
		if cfg.Report.Truncated {
			s.met.salvageTruncated.Store(1)
		}
	}
	return s, nil
}

// NumVertices returns the vertex-id space served.
func (s *Server) NumVertices() int { return s.src.NumVertices() }

// admit acquires a worker slot, waiting until one frees or the context
// deadline passes; it fails fast with ErrOverloaded when the queue is
// already at capacity.
func (s *Server) admit(ctx context.Context) error {
	select {
	case s.queued <- struct{}{}:
	default:
		s.met.rejectedOverload.Add(1)
		return ErrOverloaded
	}
	s.met.inflight.Add(1)
	select {
	case s.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		<-s.queued
		s.met.inflight.Add(-1)
		s.met.rejectedDeadline.Add(1)
		return ErrDeadline
	}
}

func (s *Server) done() {
	<-s.slots
	<-s.queued
	s.met.inflight.Add(-1)
}

// effectiveFaults snapshots the overlay unioned with the request's own
// faults.
func (s *Server) effectiveFaults(req *graph.FaultSet) *graph.FaultSet {
	s.overlayMu.RLock()
	f := s.overlay.Clone()
	s.overlayMu.RUnlock()
	if req != nil {
		for _, v := range req.Vertices() {
			f.AddVertex(v)
		}
		for _, e := range req.Edges() {
			f.AddEdge(e[0], e[1])
		}
	}
	return f
}

// faultHash hashes the canonical (sorted) fault set plus the work
// budget — with the endpoint pair, the full identity of a query.
func faultHash(f *graph.FaultSet, budget int) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		h.Write(buf[:])
	}
	vs := f.Vertices()
	slices.Sort(vs)
	put(uint64(len(vs)))
	for _, v := range vs {
		put(uint64(v))
	}
	es := f.Edges()
	slices.SortFunc(es, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	put(uint64(len(es)))
	for _, e := range es {
		put(uint64(e[0])<<32 | uint64(uint32(e[1])))
	}
	put(uint64(budget))
	return h.Sum64()
}

// faultTemplate is the per-batch decode of the effective fault set:
// each fault label decoded exactly once, missing/corrupt ones demoted
// to the degraded tier. The slices are shared read-only by every
// query in the batch.
type faultTemplate struct {
	vertexFaults  []*core.Label
	edgeFaults    [][2]*core.Label
	degradedVerts []int32
	degradedEdges [][2]int32
	// patches are the live delta's inserted edges, endpoint labels
	// resolved, decoded once per batch like the faults above.
	patches []core.PatchEdge
}

// maxLivePatches caps how many pending insertions a single query will
// consider as shortcuts. Each patch costs four extra leg decodes, so
// past the cap the remainder is dropped for that query — answers stay
// sound upper bounds, they just stop reflecting the excess insertions
// until compaction bakes them in.
const maxLivePatches = 256

// labelFunc resolves one vertex's label — either the raw source or a
// batch's generation-pinned view of it.
type labelFunc = func(context.Context, int) (*core.Label, error)

// pinLabels returns the label resolver one batch should use
// throughout: the source's generation-pinned view when it offers one,
// the plain source otherwise (a source that cannot swap generations
// has nothing to pin). The second return mirrors Prefetch and may be
// nil.
func (s *Server) pinLabels() (labelFunc, func(context.Context, []int) int) {
	if p, ok := s.src.(LabelPinner); ok {
		return p.PinLabels()
	}
	label := func(ctx context.Context, v int) (*core.Label, error) { return s.src.Label(ctx, v) }
	if pf, ok := s.src.(Prefetcher); ok {
		return label, pf.Prefetch
	}
	return label, nil
}

// decodePatches resolves patch-edge endpoint labels. A patch whose
// endpoints cannot be fetched is skipped: the shortcut is missed but
// the answer stays sound.
func (s *Server) decodePatches(ctx context.Context, label labelFunc, edges [][2]int32) []core.PatchEdge {
	if len(edges) == 0 {
		return nil
	}
	out := make([]core.PatchEdge, 0, len(edges))
	for _, e := range edges {
		lu, errU := label(ctx, int(e[0]))
		lv, errV := label(ctx, int(e[1]))
		if errU != nil || errV != nil {
			continue
		}
		out = append(out, core.PatchEdge{U: lu, V: lv})
	}
	return out
}

func (s *Server) decodeFaults(ctx context.Context, label labelFunc, f *graph.FaultSet) *faultTemplate {
	t := &faultTemplate{}
	fv := f.Vertices()
	slices.Sort(fv)
	for _, v := range fv {
		lf, err := label(ctx, v)
		if err != nil {
			// Missing or unreachable fault label: demote to the degraded
			// tier — the decoder protects a maximal ball around it and
			// the answer stays an upper bound on d_{G\F}.
			t.degradedVerts = append(t.degradedVerts, int32(v))
			continue
		}
		t.vertexFaults = append(t.vertexFaults, lf)
	}
	es := f.Edges()
	slices.SortFunc(es, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	for _, e := range es {
		la, errA := label(ctx, e[0])
		lb, errB := label(ctx, e[1])
		if errA != nil || errB != nil {
			t.degradedEdges = append(t.degradedEdges, [2]int32{int32(e[0]), int32(e[1])})
			continue
		}
		t.edgeFaults = append(t.edgeFaults, [2]*core.Label{la, lb})
	}
	return t
}

// QueryOptions carries the per-request knobs shared by a whole batch.
type QueryOptions struct {
	// Faults is the request's own fault set, unioned with the server's
	// overlay.
	Faults *graph.FaultSet
	// Budget caps decode work per pair; 0 uses the server default,
	// negative means unlimited.
	Budget int
	// Dynamic answers from the dynamic oracle instead of the store
	// (requires Config.Graph and an empty Faults: the dynamic oracle
	// reflects the overlay only).
	Dynamic bool
	// Path asks for the witness walk in every connected Answer. Path
	// answers are cached separately from distance-only answers (the
	// cache key carries the flag). Incompatible with Dynamic — the
	// oracle answers distances only.
	Path bool
}

func (s *Server) budget(opts *QueryOptions) int {
	b := s.cfg.DefaultBudget
	if opts != nil && opts.Budget != 0 {
		b = opts.Budget
	}
	if b < 0 {
		b = 0 // core treats 0 as unlimited
	}
	return b
}

// AnswerPairs answers a batch of (s,t) pairs sharing one fault set and
// budget, decoding every label — endpoints and faults — at most once.
// Per-pair problems (out-of-range ids, missing endpoint labels) land in
// that pair's Answer.Error; the returned error is reserved for
// admission failures (ErrOverloaded, ErrDeadline).
func (s *Server) AnswerPairs(ctx context.Context, pairs [][2]int, opts *QueryOptions) ([]Answer, error) {
	if deadline, ok := ctx.Deadline(); !ok || time.Until(deadline) > s.cfg.DefaultDeadline {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.DefaultDeadline)
		defer cancel()
	}
	if err := s.admit(ctx); err != nil {
		return nil, err
	}
	defer s.done()

	if opts != nil && opts.Dynamic {
		if opts.Path {
			return nil, fmt.Errorf("server: path reporting requires label decoding (incompatible with dynamic)")
		}
		return s.answerDynamic(pairs, opts)
	}

	wantPath := opts != nil && opts.Path
	budget := s.budget(opts)
	var reqFaults *graph.FaultSet
	if opts != nil {
		reqFaults = opts.Faults
	}
	faults := s.effectiveFaults(reqFaults)
	// Live delta: pending deletions join the fault set as implicit soft
	// faults, pending insertions become query-time patch candidates.
	// While any delta is pending the (1+ε) guarantee is suspended —
	// answers are sound upper bounds on the mutated graph's d_{G'\F},
	// reported exact:false — and the result cache is bypassed (patches
	// are not part of the fault hash; compaction restores exactness and
	// caching together).
	var livePatches [][2]int32
	livePending := false
	if s.live != nil {
		fe := s.live.FaultEdges()
		for _, e := range fe {
			faults.AddEdge(int(e[0]), int(e[1]))
		}
		livePatches = s.live.Patches()
		if len(livePatches) > maxLivePatches {
			livePatches = livePatches[:maxLivePatches]
		}
		livePending = len(fe) > 0 || len(livePatches) > 0
	}
	fhash := faultHash(faults, budget)

	// Pin every label fetch in this batch to one label generation, and
	// only AFTER the live delta was read above: if the delta came back
	// empty, the compaction that cleared it had already swapped the new
	// generation in (swap-before-commit), so the pin can only see the
	// new one. The other orderings are all sound — a non-empty delta
	// conservatively re-forbids whatever an older generation still
	// routes through — but labels of two different generations inside
	// one decode are not, so the pin, not the per-call source state,
	// serves the whole batch.
	label, pinnedPrefetch := s.pinLabels()

	n := s.src.NumVertices()
	answers := make([]Answer, len(pairs))
	s.prefetch(ctx, pinnedPrefetch, pairs, faults, livePatches, n)
	var tmpl *faultTemplate // decoded lazily: an all-hit batch decodes nothing
	// One pooled decoder serves the whole batch: every miss reuses the
	// same warmed-up scratch. Endpoint labels come straight from the
	// store, whose decoded-label LRU replaces the per-batch memo maps
	// this loop used to allocate.
	var dec core.Decoder
	defer dec.Release()

	for i, p := range pairs {
		// A canceled context means the client hung up: stop decoding
		// mid-batch and hand the worker slot back to live requests
		// instead of finishing work nobody will read. Deadline expiry is
		// deliberately NOT an abort — a slow batch still returns its
		// (possibly budget-degraded) answers, as it always has.
		if err := ctx.Err(); errors.Is(err, context.Canceled) {
			s.met.canceledMidBatch.Add(1)
			return nil, fmt.Errorf("server: request abandoned after %d of %d pairs: %w", i, len(pairs), err)
		}
		src, dst := p[0], p[1]
		a := Answer{S: src, T: dst}
		s.met.queries.Add(1)
		if src < 0 || src >= n || dst < 0 || dst >= n {
			a.Error = fmt.Sprintf("vertex out of range [0,%d)", n)
			s.met.errors.Add(1)
			answers[i] = a
			continue
		}
		if faults.HasVertex(src) || faults.HasVertex(dst) {
			// A forbidden endpoint has no distance to anything — an
			// exact verdict, not a degraded one.
			a.Exact = true
			answers[i] = a
			continue
		}
		// Path and distance-only answers must never mix for the same
		// (s,t,F): the flag is part of the key.
		key := cacheKey{s: int32(src), t: int32(dst), fhash: fhash, path: wantPath}
		if !livePending {
			if hit, ok := s.cache.Get(key); ok {
				s.met.cacheHits.Add(1)
				hit.Cached = true
				answers[i] = hit
				continue
			}
		}
		s.met.cacheMisses.Add(1)
		ls, err := label(ctx, src)
		if err == nil {
			var lt *core.Label
			if lt, err = label(ctx, dst); err == nil {
				if tmpl == nil {
					tmpl = s.decodeFaults(ctx, label, faults)
					tmpl.patches = s.decodePatches(ctx, label, livePatches)
				}
				q := &core.Query{
					S: ls, T: lt,
					VertexFaults:         tmpl.vertexFaults,
					EdgeFaults:           tmpl.edgeFaults,
					DegradedVertexFaults: tmpl.degradedVerts,
					DegradedEdgeFaults:   tmpl.degradedEdges,
					Budget:               budget,
				}
				var res core.Result
				var path []int32
				switch {
				case wantPath && len(tmpl.patches) > 0:
					res, path = dec.DistanceRobustPatchedPath(q, tmpl.patches, nil)
				case wantPath:
					res, path = dec.DistanceRobustPath(q, nil)
				case len(tmpl.patches) > 0:
					res = dec.DistanceRobustPatched(q, tmpl.patches)
				default:
					res = dec.DistanceRobust(q)
				}
				if res.OK {
					a.Path = path
				}
				a.Connected = res.OK
				a.Dist = res.Dist
				a.Degraded = res.Degraded
				a.BudgetExhausted = res.BudgetExhausted
				a.MissingFaultLabels = res.MissingFaultLabels
				a.Exact = !res.Degraded && !res.BudgetExhausted && !livePending
				if res.Degraded {
					s.met.degraded.Add(1)
				}
				if res.BudgetExhausted {
					s.met.budgetExhausted.Add(1)
				}
				// Degraded answers are conservative fallbacks for labels
				// that were unavailable at decode time — often transiently
				// (a replica set down). Caching one would keep serving the
				// stale upper bound after the labels return, so only exact
				// and budget-degraded (deterministic for this key) verdicts
				// enter the cache.
				if !res.Degraded && !livePending {
					s.cache.Put(key, a)
				}
			}
		}
		if err != nil {
			a.Error = err.Error()
			s.met.errors.Add(1)
		}
		answers[i] = a
	}
	return answers, nil
}

// prefetch warms the label source with every distinct vertex the batch
// will touch — endpoints, fault-set members and live-patch endpoints —
// in one call through the batch's (possibly generation-pinned)
// prefetch function. Against a cluster source this collapses per-pair
// scatter-gathers into a single round of shard fetches; pf is nil for
// sources without one (a local store is already single-hop).
func (s *Server) prefetch(ctx context.Context, pf func(context.Context, []int) int, pairs [][2]int, faults *graph.FaultSet, patches [][2]int32, n int) {
	if pf == nil {
		return
	}
	seen := make(map[int]struct{}, 2*len(pairs)+faults.Size()+2*len(patches))
	add := func(v int) {
		if v >= 0 && v < n {
			seen[v] = struct{}{}
		}
	}
	for _, p := range pairs {
		add(p[0])
		add(p[1])
	}
	for _, v := range faults.Vertices() {
		add(v)
	}
	for _, e := range faults.Edges() {
		add(e[0])
		add(e[1])
	}
	for _, e := range patches {
		add(int(e[0]))
		add(int(e[1]))
	}
	ids := make([]int, 0, len(seen))
	for v := range seen {
		ids = append(ids, v)
	}
	// A couple of jittered retries while fetches come back unresolved:
	// transient shard hiccups heal here instead of surfacing as degraded
	// answers. Persistently unresolved vertices are left to the per-label
	// path, which owns the error semantics.
	pol := backoff.Policy{Base: 25 * time.Millisecond, Cap: 100 * time.Millisecond, Jitter: 0.2}
	for attempt := 0; ; attempt++ {
		if pf(ctx, ids) == 0 || attempt >= 2 {
			return
		}
		if backoff.Sleep(ctx, pol.Delay(attempt)) != nil {
			return
		}
	}
}

// answerDynamic serves a batch from the dynamic oracle. The caller
// holds a worker slot.
func (s *Server) answerDynamic(pairs [][2]int, opts *QueryOptions) ([]Answer, error) {
	if s.dyn == nil {
		return nil, fmt.Errorf("server: no dynamic oracle (start with a graph to enable it)")
	}
	if opts.Faults.Size() > 0 {
		return nil, fmt.Errorf("server: dynamic queries cannot carry per-request faults (the oracle reflects the overlay only)")
	}
	answers := make([]Answer, len(pairs))
	for i, p := range pairs {
		a := Answer{S: p[0], T: p[1], Exact: true}
		s.met.queries.Add(1)
		d, ok, err := s.dyn.Distance(p[0], p[1])
		if err != nil {
			a.Error = err.Error()
			a.Exact = false
			s.met.errors.Add(1)
		} else {
			a.Connected = ok
			a.Dist = d
		}
		answers[i] = a
	}
	return answers, nil
}

// Distance answers one pair.
func (s *Server) Distance(ctx context.Context, src, dst int, opts *QueryOptions) (Answer, error) {
	as, err := s.AnswerPairs(ctx, [][2]int{{src, dst}}, opts)
	if err != nil {
		return Answer{}, err
	}
	return as[0], nil
}

// Connected answers a connectivity query (a distance query whose
// verdict is the Connected bit).
func (s *Server) Connected(ctx context.Context, src, dst int, opts *QueryOptions) (Answer, error) {
	return s.Distance(ctx, src, dst, opts)
}

// Fail adds vertices/edges to the global fault overlay (and the
// dynamic oracle, when present), then invalidates the result cache.
// Ids are validated up front; nothing is applied on error.
func (s *Server) Fail(vertices []int, edges [][2]int) error {
	return s.applyOverlay(vertices, edges, true)
}

// Recover removes vertices/edges from the overlay, mirroring Fail.
func (s *Server) Recover(vertices []int, edges [][2]int) error {
	return s.applyOverlay(vertices, edges, false)
}

func (s *Server) applyOverlay(vertices []int, edges [][2]int, fail bool) error {
	n := s.src.NumVertices()
	for _, v := range vertices {
		if v < 0 || v >= n {
			return fmt.Errorf("server: vertex %d out of range [0,%d)", v, n)
		}
	}
	for _, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n {
			return fmt.Errorf("server: edge (%d,%d) endpoint out of range [0,%d)", e[0], e[1], n)
		}
		if s.cfg.Graph != nil && !s.cfg.Graph.HasEdge(e[0], e[1]) {
			return fmt.Errorf("server: (%d,%d) is not an edge", e[0], e[1])
		}
	}
	s.overlayMu.Lock()
	for _, v := range vertices {
		if fail {
			s.overlay.AddVertex(v)
		} else {
			s.overlay.RemoveVertex(v)
		}
	}
	for _, e := range edges {
		if fail {
			s.overlay.AddEdge(e[0], e[1])
		} else {
			s.overlay.RemoveEdge(e[0], e[1])
		}
	}
	s.overlayMu.Unlock()

	// Keep the dynamic oracle in step. Overlay membership was already
	// validated, so errors here are real (and rare: a rebuild failing).
	if s.dyn != nil {
		var err error
		for _, v := range vertices {
			if fail {
				err = s.dyn.FailVertex(v)
			} else {
				err = s.dyn.RecoverVertex(v)
			}
			if err != nil {
				return fmt.Errorf("server: dynamic oracle: %w", err)
			}
		}
		for _, e := range edges {
			if fail {
				err = s.dyn.FailEdge(e[0], e[1])
			} else {
				err = s.dyn.RecoverEdge(e[0], e[1])
			}
			if err != nil {
				return fmt.Errorf("server: dynamic oracle: %w", err)
			}
		}
		s.met.rebuilds.Store(int64(s.dyn.Rebuilds()))
	}

	applied := int64(len(vertices) + len(edges))
	if fail {
		s.met.failsApplied.Add(applied)
	} else {
		s.met.recoversApplied.Add(applied)
	}
	s.cache.Flush()
	s.met.cacheFlushes.Add(1)
	return nil
}

// Snapshot returns the current State.
func (s *Server) Snapshot() State {
	s.overlayMu.RLock()
	ov := s.overlay.Vertices()
	oe := s.overlay.Edges()
	s.overlayMu.RUnlock()
	slices.Sort(ov)
	slices.SortFunc(oe, func(a, b [2]int) int {
		if a[0] != b[0] {
			return a[0] - b[0]
		}
		return a[1] - b[1]
	})
	st := State{
		N:               s.src.NumVertices(),
		Labels:          s.src.NumLabels(),
		OverlayVertices: ov,
		OverlayEdges:    oe,
		CacheEntries:    s.cache.Len(),
		Dynamic:         s.dyn != nil,
	}
	if s.dyn != nil {
		st.Rebuilds = s.dyn.Rebuilds()
		st.DeltaSize = s.dyn.DeltaSize()
	}
	if s.live != nil {
		st.LiveGeneration = s.live.Generation()
		st.LivePending = s.live.Pending()
		st.LiveSeq = s.live.Seq()
	}
	if s.cfg.Report != nil {
		st.SalvageKept = s.cfg.Report.Kept
		st.SalvageTotal = s.cfg.Report.Total
	}
	return st
}

// Metrics renders the Prometheus text exposition, appending any
// source-specific exposition (cluster fetch latency, hedge rate, shard
// health) when the label source provides one.
func (s *Server) Metrics() string {
	var sb strings.Builder
	labelHits, labelMisses := s.src.LabelCacheStats()
	s.met.render(&sb, s.cache.Len(), labelHits, labelMisses, core.DecoderPool())
	if s.live != nil {
		renderLive(&sb, s.live.MetricsSnapshot())
	}
	if mw, ok := s.src.(MetricsWriter); ok {
		mw.WriteMetrics(&sb)
	}
	return sb.String()
}
