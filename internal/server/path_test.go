package server

import (
	"context"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"fsdl/internal/graph"
	"fsdl/internal/liveupdate"
)

// checkAnswerWalk validates one answer's witness walk against the
// ground-truth graph: endpoints match, every hop is realizable in
// truth\F at exactly the weight it contributed (patch hops — inserted
// edges not yet baked into truth's labels — count 1), and the hop
// weights sum to the reported distance.
func checkAnswerWalk(t *testing.T, truth *graph.Graph, faults *graph.FaultSet, patches map[[2]int32]bool, a Answer) {
	t.Helper()
	if !a.Connected {
		if len(a.Path) != 0 {
			t.Fatalf("(%d,%d): disconnected answer carries a path %v", a.S, a.T, a.Path)
		}
		return
	}
	p := a.Path
	if len(p) == 0 {
		t.Fatalf("(%d,%d): connected path answer carries no path", a.S, a.T)
	}
	if int(p[0]) != a.S || int(p[len(p)-1]) != a.T {
		t.Fatalf("(%d,%d): path endpoints %d..%d", a.S, a.T, p[0], p[len(p)-1])
	}
	var total int64
	for i := 1; i < len(p); i++ {
		u, v := p[i-1], p[i]
		if patches[[2]int32{u, v}] || patches[[2]int32{v, u}] {
			total++
			continue
		}
		d, ok := bfsAvoid(truth, int(u), int(v), faults)
		if !ok {
			t.Fatalf("(%d,%d): hop %d-%d not realizable avoiding F", a.S, a.T, u, v)
		}
		total += d
	}
	if total != a.Dist {
		t.Fatalf("(%d,%d): walk weighs %d, answer says %d (path %v)", a.S, a.T, total, a.Dist, p)
	}
}

// TestAnswerPairsPath answers a fault-laden batch with path reporting
// on and verifies every witness walk end-to-end against the graph.
func TestAnswerPairsPath(t *testing.T) {
	const side = 10
	g, st := testStore(t, side, side, 2)
	s := newTestServer(t, Config{Store: st})
	n := g.NumVertices()

	rng := rand.New(rand.NewSource(11))
	faults := graph.NewFaultSet()
	for faults.NumVertices() < 5 {
		faults.AddVertex(1 + rng.Intn(n-2))
	}
	var pairs [][2]int
	for len(pairs) < 40 {
		pairs = append(pairs, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	ans, err := s.AnswerPairs(context.Background(), pairs, &QueryOptions{Faults: faults, Path: true})
	if err != nil {
		t.Fatalf("AnswerPairs: %v", err)
	}
	for _, a := range ans {
		if a.Error != "" {
			continue // forbidden endpoint et al. — no walk expected
		}
		checkAnswerWalk(t, g, faults, nil, a)
	}

	// Distance-only answers must not grow paths.
	ans, err = s.AnswerPairs(context.Background(), pairs[:5], &QueryOptions{Faults: faults})
	if err != nil {
		t.Fatalf("AnswerPairs: %v", err)
	}
	for _, a := range ans {
		if len(a.Path) != 0 {
			t.Fatalf("distance-only answer for (%d,%d) carries a path", a.S, a.T)
		}
	}
}

// TestPathCacheSeparation is the regression test for the result-cache
// key: path and distance-only answers for the same (s,t,F) are
// different payloads and must never substitute for one another.
func TestPathCacheSeparation(t *testing.T) {
	g, st := testStore(t, 8, 8, 2)
	s := newTestServer(t, Config{Store: st})
	n := g.NumVertices()
	ctx := context.Background()

	// Seed the cache with the distance-only answer.
	plain, err := s.Distance(ctx, 0, n-1, nil)
	if err != nil || plain.Error != "" {
		t.Fatalf("plain query: %v / %q", err, plain.Error)
	}
	// The path query for the same (s,t,F) must decode fresh, not serve
	// the cached pathless answer.
	withPath, err := s.Distance(ctx, 0, n-1, &QueryOptions{Path: true})
	if err != nil || withPath.Error != "" {
		t.Fatalf("path query: %v / %q", err, withPath.Error)
	}
	if withPath.Cached {
		t.Fatal("path query served from the distance-only cache entry")
	}
	if len(withPath.Path) == 0 {
		t.Fatal("path query returned no path")
	}
	if withPath.Dist != plain.Dist {
		t.Fatalf("path query dist %d != plain dist %d", withPath.Dist, plain.Dist)
	}
	// Repeats hit their own entries, payload intact either way.
	again, err := s.Distance(ctx, 0, n-1, &QueryOptions{Path: true})
	if err != nil || !again.Cached || len(again.Path) == 0 {
		t.Fatalf("cached path answer lost its path: %+v err=%v", again, err)
	}
	plainAgain, err := s.Distance(ctx, 0, n-1, nil)
	if err != nil || !plainAgain.Cached || len(plainAgain.Path) != 0 {
		t.Fatalf("cached plain answer grew a path: %+v err=%v", plainAgain, err)
	}
}

// TestHTTPDistancePath drives path reporting over the wire: "path":true
// returns the walk, its absence omits the field, and path+dynamic is
// rejected.
func TestHTTPDistancePath(t *testing.T) {
	g, st := testStore(t, 6, 6, 2)
	s := newTestServer(t, Config{Store: st, Graph: g})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/distance", map[string]any{"s": 0, "t": 35, "fail": []int{7}, "path": true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distance+path: %d %s", resp.StatusCode, body)
	}
	var a Answer
	if err := json.Unmarshal(body, &a); err != nil {
		t.Fatalf("unmarshal %s: %v", body, err)
	}
	faults := graph.NewFaultSet()
	faults.AddVertex(7)
	checkAnswerWalk(t, g, faults, nil, a)

	resp, body = postJSON(t, ts.URL+"/v1/distance", map[string]any{"s": 0, "t": 35})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("distance: %d %s", resp.StatusCode, body)
	}
	var raw map[string]any
	if err := json.Unmarshal(body, &raw); err != nil {
		t.Fatal(err)
	}
	if _, has := raw["path"]; has {
		t.Fatalf("pathless answer leaked a path field: %s", body)
	}

	if resp, body = postJSON(t, ts.URL+"/v1/distance", map[string]any{"s": 0, "t": 35, "dynamic": true, "path": true}); resp.StatusCode == http.StatusOK {
		t.Fatalf("dynamic+path accepted: %s", body)
	}
}

// TestLivePathUnderPatches verifies witness walks while a live delta is
// pending (deletions as soft faults, insertions as patch hops) and
// again after compaction bakes the delta in.
func TestLivePathUnderPatches(t *testing.T) {
	s, _, _ := newLiveServer(t, 6)
	ctx := context.Background()

	if _, err := s.Mutate([]liveupdate.Mutation{
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutInsert, U: 0, V: 35},
	}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	snap, err := s.live.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	truth := snap.Graph // grid minus (0,1) plus (0,35)
	patches := map[[2]int32]bool{{0, 35}: true}

	a, err := s.Distance(ctx, 0, 35, &QueryOptions{Path: true})
	if err != nil || a.Error != "" {
		t.Fatalf("patched path query: %+v err=%v", a, err)
	}
	if a.Dist != 1 {
		t.Fatalf("patched distance %d, want 1 (inserted edge)", a.Dist)
	}
	checkAnswerWalk(t, truth, graph.NewFaultSet(), patches, a)

	// Compaction bakes the delta: the same query now walks generation-2
	// sketch edges, no patch hops needed.
	if _, err := s.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	a, err = s.Distance(ctx, 0, 35, &QueryOptions{Path: true})
	if err != nil || a.Error != "" || !a.Exact {
		t.Fatalf("post-compact path query: %+v err=%v", a, err)
	}
	checkAnswerWalk(t, truth, graph.NewFaultSet(), nil, a)
}
