package server

import (
	"sync"
	"testing"
)

func TestCacheGetPutEvict(t *testing.T) {
	c := newResultCache(4, 1) // one shard, capacity 4: LRU order is exact
	key := func(i int) cacheKey { return cacheKey{s: int32(i), t: int32(i + 1), fhash: 42} }
	for i := 0; i < 4; i++ {
		c.Put(key(i), Answer{S: i, Dist: int64(i)})
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d, want 4", c.Len())
	}
	// Touch key(0) so key(1) is now the LRU victim.
	if a, ok := c.Get(key(0)); !ok || a.Dist != 0 {
		t.Fatalf("Get(0) = %v %v", a, ok)
	}
	c.Put(key(4), Answer{S: 4, Dist: 4})
	if _, ok := c.Get(key(1)); ok {
		t.Error("key(1) should have been evicted")
	}
	if _, ok := c.Get(key(0)); !ok {
		t.Error("key(0) was recently used and should survive")
	}
	// Same (s,t), different fault hash: distinct entries.
	c.Put(cacheKey{s: 0, t: 1, fhash: 99}, Answer{Dist: 77})
	if a, ok := c.Get(cacheKey{s: 0, t: 1, fhash: 99}); !ok || a.Dist != 77 {
		t.Errorf("fault-hash variant lost: %v %v", a, ok)
	}
	c.Flush()
	if c.Len() != 0 {
		t.Errorf("Len after Flush = %d", c.Len())
	}
	if _, ok := c.Get(key(0)); ok {
		t.Error("Get after Flush should miss")
	}
}

func TestCacheDisabled(t *testing.T) {
	c := newResultCache(-1, 4)
	c.Put(cacheKey{s: 1, t: 2}, Answer{Dist: 9})
	if _, ok := c.Get(cacheKey{s: 1, t: 2}); ok {
		t.Error("disabled cache must always miss")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestCachePutUpdatesExisting(t *testing.T) {
	c := newResultCache(2, 1)
	k := cacheKey{s: 1, t: 2, fhash: 3}
	c.Put(k, Answer{Dist: 1})
	c.Put(k, Answer{Dist: 2})
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	if a, _ := c.Get(k); a.Dist != 2 {
		t.Errorf("Dist = %d, want updated 2", a.Dist)
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := newResultCache(256, 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := cacheKey{s: int32(i % 64), t: int32(w), fhash: uint64(i % 16)}
				if i%3 == 0 {
					c.Put(k, Answer{Dist: int64(i)})
				} else {
					c.Get(k)
				}
				if i%100 == 99 {
					c.Flush()
				}
			}
		}(w)
	}
	wg.Wait()
	// Sanity only: no panic, no race; contents depend on interleaving.
	if c.Len() > 256+8 {
		t.Errorf("Len = %d exceeds capacity", c.Len())
	}
}

func TestCacheShardSpread(t *testing.T) {
	c := newResultCache(1024, 8)
	for i := 0; i < 512; i++ {
		c.Put(cacheKey{s: int32(i), t: int32(i + 1), fhash: uint64(i)}, Answer{})
	}
	used := 0
	for _, n := range c.c.ShardLens() {
		if n > 0 {
			used++
		}
	}
	if used < 4 {
		t.Errorf("only %d/8 shards used — bad key mixing", used)
	}
}
