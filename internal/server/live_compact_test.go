package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"

	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
)

// genDirs counts gen-* generation directories under root.
func genDirs(t *testing.T, root string) int {
	t.Helper()
	entries, err := os.ReadDir(root)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() && strings.HasPrefix(e.Name(), "gen-") {
			n++
		}
	}
	return n
}

// TestCompactNoopFastPath: an empty delta short-circuits — no build, no
// generation bump, Noop set — while a real delta still compacts, and a
// concurrent compaction is the only conflict.
func TestCompactNoopFastPath(t *testing.T) {
	s, _, root := newLiveServer(t, 4)

	res, err := s.Compact()
	if err != nil {
		t.Fatalf("noop compact: %v", err)
	}
	if !res.Noop || res.Generation != 1 || res.Dir != "" || res.Incremental {
		t.Fatalf("noop result %+v", res)
	}
	if n := genDirs(t, root); n != 0 {
		t.Fatalf("noop compaction wrote %d generation dirs", n)
	}

	// A real delta compacts normally.
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	res, err = s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.Noop || res.Generation != 2 || res.Dir == "" {
		t.Fatalf("compact result %+v", res)
	}
	if n := genDirs(t, root); n != 1 {
		t.Fatalf("%d generation dirs after one real compaction", n)
	}

	// Empty again: noop reports the new current generation.
	res, err = s.Compact()
	if err != nil || !res.Noop || res.Generation != 2 {
		t.Fatalf("second noop: %+v err=%v", res, err)
	}

	// The no-op path still respects the single-compaction slot.
	if !s.live.BeginCompaction() {
		t.Fatal("compaction slot unavailable")
	}
	if _, err := s.Compact(); !errors.Is(err, ErrCompacting) {
		t.Fatalf("concurrent compact error = %v, want ErrCompacting", err)
	}
	s.live.EndCompaction()
}

// TestCompactModeSelection walks the three modes against a partitioned
// local store: forced incremental fails without a base, a full build
// seeds one, and auto then builds delta-scoped with per-partition dirty
// summaries and answers that stay exact and sound.
func TestCompactModeSelection(t *testing.T) {
	g, st := testStore(t, 6, 6, 2)
	root := t.TempDir()
	n := g.NumVertices()
	parts := map[string][]int{}
	for v := 0; v < n; v++ {
		name := "a"
		if v >= n/2 {
			name = "b"
		}
		parts[name] = append(parts[name], v)
	}
	p, err := liveupdate.Open(liveupdate.Config{Base: g, WALPath: filepath.Join(root, "mutations.wal")})
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Store: st, Live: p, LiveRoot: root, CacheCapacity: -1, Partitions: parts})

	if _, err := s.CompactMode("sideways"); err == nil {
		t.Fatal("unknown mode accepted")
	}

	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: 0, V: int32(n - 1)}}); err != nil {
		t.Fatal(err)
	}
	// Forced incremental has no retained base yet.
	if _, err := s.CompactMode(CompactIncremental); err == nil {
		t.Fatal("incremental compaction without a base accepted")
	}

	res, err := s.CompactMode(CompactFull)
	if err != nil {
		t.Fatalf("full compact: %v", err)
	}
	if res.Incremental || res.Generation != 2 || res.DirtyLabels != n {
		t.Fatalf("full compact result %+v", res)
	}
	if want := []string{"a", "b"}; !slices.Equal(res.ChangedShards, want) {
		t.Fatalf("full build changed shards %v, want %v", res.ChangedShards, want)
	}
	for name := range parts {
		if _, err := os.Stat(filepath.Join(res.Dir, name+".fsdl")); err != nil {
			t.Fatalf("generation dir missing partition file: %v", err)
		}
	}

	// Auto now builds delta-scoped off the retained generation 2.
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: 0, V: int32(n - 1)}}); err != nil {
		t.Fatal(err)
	}
	snap, err := s.live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	res, err = s.CompactMode(CompactAuto)
	if err != nil {
		t.Fatalf("auto compact: %v", err)
	}
	if !res.Incremental || res.Generation != 3 || res.DirtyLabels < 1 || res.DirtyLabels > n {
		t.Fatalf("auto compact result %+v", res)
	}
	if len(res.ChangedShards) == 0 {
		t.Fatalf("incremental build reported no changed shards: %+v", res)
	}
	m, err := labelstore.ReadManifestDir(res.Dir)
	if err != nil {
		t.Fatalf("generation 3 manifest: %v", err)
	}
	if m.Generation != 3 {
		t.Fatalf("manifest generation %d", m.Generation)
	}

	// Answers after the incremental swap are exact and match the
	// mutated graph.
	ctx := context.Background()
	for _, pair := range [][2]int{{0, n - 1}, {1, n / 2}} {
		want, ok := bfsAvoid(snap.Graph, pair[0], pair[1], graph.NewFaultSet())
		a, err := s.Distance(ctx, pair[0], pair[1], nil)
		if err != nil || a.Error != "" || !a.Exact {
			t.Fatalf("post-incremental (%d,%d): %+v err=%v", pair[0], pair[1], a, err)
		}
		if a.Connected != ok || (ok && a.Dist < want) {
			t.Fatalf("post-incremental (%d,%d): %+v, truth %d/%v", pair[0], pair[1], a, want, ok)
		}
	}

	// Forced incremental works now that a base is retained.
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: 1, V: int32(n - 2)}}); err != nil {
		t.Fatal(err)
	}
	res, err = s.CompactMode(CompactIncremental)
	if err != nil || !res.Incremental || res.Generation != 4 {
		t.Fatalf("forced incremental: %+v err=%v", res, err)
	}
}

// scopedSwapSource is a GenerationSwapper that also implements the
// scoped flip, recording which path each compaction took. Labels are
// served from the store of whatever generation was swapped in last
// (loaded from the generation root like a real frontend would).
type scopedSwapSource struct {
	*storeSource
	root      string
	gen       uint64
	fullSwaps int
	scoped    [][]string
}

func (s *scopedSwapSource) Generation() uint64 { return s.gen }

func (s *scopedSwapSource) load(gen uint64) error {
	st, err := liveupdate.LoadGenerationStore(filepath.Join(s.root, labelstore.GenerationDirName(gen)))
	if err != nil {
		return err
	}
	s.storeSource.Swap(st)
	s.gen = gen
	return nil
}

func (s *scopedSwapSource) SwapGeneration(gen uint64) (uint64, error) {
	s.fullSwaps++
	return gen, s.load(gen)
}

func (s *scopedSwapSource) SwapGenerationScoped(gen uint64, changed []string) (uint64, error) {
	s.scoped = append(s.scoped, changed)
	return gen, s.load(gen)
}

// TestCompactScopedSwapDispatch: a full build swaps through
// SwapGeneration; an incremental build routes through the scoped swap
// with exactly the changed-partition list the compaction reported.
func TestCompactScopedSwapDispatch(t *testing.T) {
	g, st := testStore(t, 6, 6, 2)
	root := t.TempDir()
	n := g.NumVertices()
	parts := map[string][]int{"all": make([]int, n)}
	for v := 0; v < n; v++ {
		parts["all"][v] = v
	}
	p, err := liveupdate.Open(liveupdate.Config{Base: g})
	if err != nil {
		t.Fatal(err)
	}
	src := &scopedSwapSource{storeSource: newStoreSource(st), root: root, gen: 1}
	s := newTestServer(t, Config{Source: src, Live: p, LiveRoot: root, CacheCapacity: -1, Partitions: parts})

	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: 0, V: int32(n - 1)}}); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Compact(); err != nil {
		t.Fatalf("full compact: %v", err)
	}
	if src.fullSwaps != 1 || len(src.scoped) != 0 {
		t.Fatalf("full build dispatched swaps full=%d scoped=%v", src.fullSwaps, src.scoped)
	}

	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: 0, V: int32(n - 1)}}); err != nil {
		t.Fatal(err)
	}
	res, err := s.Compact()
	if err != nil {
		t.Fatalf("incremental compact: %v", err)
	}
	if !res.Incremental {
		t.Fatalf("second compaction not incremental: %+v", res)
	}
	if src.fullSwaps != 1 || len(src.scoped) != 1 {
		t.Fatalf("incremental build dispatched swaps full=%d scoped=%v", src.fullSwaps, src.scoped)
	}
	if !slices.Equal(src.scoped[0], res.ChangedShards) {
		t.Fatalf("scoped swap got %v, result reported %v", src.scoped[0], res.ChangedShards)
	}
}

// TestCompactHTTPModes drives /v1/compact's optional body: bare POST
// (mode auto, noop on an empty delta), explicit modes, the 400s for
// junk, and the 409 while a compaction holds the slot.
func TestCompactHTTPModes(t *testing.T) {
	s, _, _ := newLiveServer(t, 6)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Bare POST with no body at all: the historical form, now a noop
	// against an empty delta.
	resp, err := http.Post(ts.URL+"/v1/compact", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var cr CompactResult
	if err := json.NewDecoder(resp.Body).Decode(&cr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !cr.Noop || cr.Generation != 1 {
		t.Fatalf("bare noop compact: %d %+v", resp.StatusCode, cr)
	}

	// Junk modes and junk bodies are 400s.
	if resp, body := postJSON(t, ts.URL+"/v1/compact", map[string]any{"mode": "sideways"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad mode: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/compact", map[string]any{"mood": "auto"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown field: %d %s", resp.StatusCode, body)
	}
	// Forced incremental with no retained base: 400, not a full build.
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	if resp, body := postJSON(t, ts.URL+"/v1/compact", map[string]any{"mode": "incremental"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("incremental without base: %d %s", resp.StatusCode, body)
	}

	// Explicit full mode compacts the pending delta.
	resp2, body := postJSON(t, ts.URL+"/v1/compact", map[string]any{"mode": "full"})
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("full compact: %d %s", resp2.StatusCode, body)
	}
	cr = CompactResult{}
	if err := json.Unmarshal(body, &cr); err != nil || cr.Generation != 2 || cr.Noop || cr.Incremental {
		t.Fatalf("full compact response %s (err %v)", body, err)
	}

	// Auto mode over HTTP takes the incremental path off the retained
	// base.
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutInsert, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	resp2, body = postJSON(t, ts.URL+"/v1/compact", map[string]any{"mode": "auto"})
	cr = CompactResult{}
	if resp2.StatusCode != http.StatusOK || json.Unmarshal(body, &cr) != nil || !cr.Incremental || cr.Generation != 3 {
		t.Fatalf("auto compact: %d %s", resp2.StatusCode, body)
	}

	// While the slot is held, /v1/compact is a 409.
	if !s.live.BeginCompaction() {
		t.Fatal("compaction slot unavailable")
	}
	resp3, body := postJSON(t, ts.URL+"/v1/compact", nil)
	if resp3.StatusCode != http.StatusConflict {
		t.Fatalf("concurrent compact: %d %s", resp3.StatusCode, body)
	}
	s.live.EndCompaction()
}
