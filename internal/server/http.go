package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"fsdl/internal/graph"
	"fsdl/internal/liveupdate"
)

// HTTP/JSON API:
//
//	POST /v1/distance        {"s","t","fail","failedge","budget","deadline_ms","dynamic","path"} → Answer
//	POST /v1/connected       same request → Answer (read the "connected" bit)
//	POST /v1/batch-distance  {"pairs":[[s,t],...], "fail",...}                 → {"answers":[Answer,...]}
//	POST /v1/fail            {"vertices":[...], "edges":[[u,v],...]}           → State
//	POST /v1/recover         same                                              → State
//	POST /v1/mutate          {"mutations":[{"op":"insert","u":..,"v":..},...]} → MutateState
//	POST /v1/compact         optional {"mode":"auto"|"full"|"incremental"}     → CompactResult
//	GET  /v1/state                                                             → State
//	GET  /healthz                                                              → {"status":"ok"}
//	GET  /metrics                                                              → Prometheus text
//
// When the label source is a cluster frontend, membership admin rides
// the same mux (404 against a local store):
//
//	GET  /v1/cluster/status                                → cluster.ClusterStatus
//	POST /v1/cluster/join   {"name","addr"}                → {"epoch":N}
//	POST /v1/cluster/leave  {"name"}                       → {"epoch":N}
//	POST /v1/cluster/drain  {"name","drain":true|false}    → {"epoch":N}
//
// Errors are {"error": "..."} with 400 (malformed request), 404
// (endpoint label not in the store), 429 (queue full), or 503
// (deadline expired while queued).

// Per-request size caps. Each pair and each fault fans out into label
// fetches (against a cluster source, shard RPCs), so unbounded requests
// could drive arbitrarily large scatter-gathers and response frames;
// past these limits the request is rejected with 400 instead.
const (
	maxBatchPairs    = 4096
	maxRequestFaults = 4096
)

// queryRequest is the wire form of a distance/connected/batch request.
type queryRequest struct {
	S     int      `json:"s"`
	T     int      `json:"t"`
	Pairs [][2]int `json:"pairs"` // batch-distance only
	// Fail/FailEdge are per-request faults, unioned with the overlay.
	Fail     []int    `json:"fail"`
	FailEdge [][2]int `json:"failedge"`
	// Budget caps decode work (0 = server default, <0 = unlimited).
	Budget int `json:"budget"`
	// DeadlineMS overrides the server's default request deadline.
	DeadlineMS int `json:"deadline_ms"`
	// Dynamic answers from the dynamic oracle (overlay faults only).
	Dynamic bool `json:"dynamic"`
	// Path asks for the witness walk in every connected answer
	// (incompatible with Dynamic).
	Path bool `json:"path"`
}

func (r *queryRequest) validate() error {
	if len(r.Pairs) > maxBatchPairs {
		return fmt.Errorf("batch-distance: %d pairs exceeds the per-request limit of %d", len(r.Pairs), maxBatchPairs)
	}
	if nf := len(r.Fail) + len(r.FailEdge); nf > maxRequestFaults {
		return fmt.Errorf("request names %d faults, limit is %d", nf, maxRequestFaults)
	}
	return nil
}

func (r *queryRequest) options() *QueryOptions {
	f := graph.NewFaultSet()
	for _, v := range r.Fail {
		f.AddVertex(v)
	}
	for _, e := range r.FailEdge {
		f.AddEdge(e[0], e[1])
	}
	return &QueryOptions{Faults: f, Budget: r.Budget, Dynamic: r.Dynamic, Path: r.Path}
}

// updateRequest is the wire form of fail/recover.
type updateRequest struct {
	Vertices []int    `json:"vertices"`
	Edges    [][2]int `json:"edges"`
}

// Handler returns the server's HTTP mux, suitable for http.Server or
// httptest.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/distance", s.instrument("distance", s.handleDistance))
	mux.HandleFunc("/v1/connected", s.instrument("connected", s.handleDistance))
	mux.HandleFunc("/v1/batch-distance", s.instrument("batch_distance", s.handleBatch))
	mux.HandleFunc("/v1/fail", s.instrument("fail", s.handleUpdate(true)))
	mux.HandleFunc("/v1/recover", s.instrument("recover", s.handleUpdate(false)))
	mux.HandleFunc("/v1/mutate", s.instrument("mutate", s.handleMutate))
	mux.HandleFunc("/v1/compact", s.instrument("compact", s.handleCompact))
	mux.HandleFunc("/v1/state", s.instrument("state", s.handleState))
	mux.HandleFunc("/v1/cluster/status", s.handleClusterStatus)
	mux.HandleFunc("/v1/cluster/join", s.instrument("cluster_join", s.handleClusterMembership("join")))
	mux.HandleFunc("/v1/cluster/leave", s.instrument("cluster_leave", s.handleClusterMembership("leave")))
	mux.HandleFunc("/v1/cluster/drain", s.instrument("cluster_drain", s.handleClusterMembership("drain")))
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// membershipRequest is the wire form of join/leave/drain.
type membershipRequest struct {
	Name  string `json:"name"`
	Addr  string `json:"addr,omitempty"`
	Drain *bool  `json:"drain,omitempty"`
}

// clusterAdmin returns the source's admin capability, or nil when the
// server fronts a local store.
func (s *Server) clusterAdmin() ClusterAdmin {
	ca, _ := s.src.(ClusterAdmin)
	return ca
}

func (s *Server) handleClusterStatus(w http.ResponseWriter, r *http.Request) {
	ca := s.clusterAdmin()
	if ca == nil {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "not a cluster deployment"})
		return
	}
	writeJSON(w, http.StatusOK, ca.StatusJSON())
}

func (s *Server) handleClusterMembership(op string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		ca := s.clusterAdmin()
		if ca == nil {
			writeJSON(w, http.StatusNotFound, map[string]string{"error": "not a cluster deployment"})
			return
		}
		var req membershipRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		if req.Name == "" {
			s.writeError(w, fmt.Errorf("cluster %s: shard name is required", op))
			return
		}
		var epoch uint64
		var err error
		switch op {
		case "join":
			if req.Addr == "" {
				s.writeError(w, fmt.Errorf("cluster join: shard addr is required"))
				return
			}
			epoch, err = ca.Join(req.Name, req.Addr)
		case "leave":
			epoch, err = ca.Leave(req.Name)
		default: // drain
			drain := true
			if req.Drain != nil {
				drain = *req.Drain
			}
			epoch, err = ca.Drain(req.Name, drain)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, map[string]uint64{"epoch": epoch})
	}
}

// instrument counts the request and observes its latency.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.request(endpoint)
		start := time.Now()
		h(w, r)
		s.met.latency.Observe(time.Since(start).Seconds())
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, err error) {
	status := http.StatusBadRequest
	switch {
	case errors.Is(err, ErrOverloaded):
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrCompacting):
		status = http.StatusConflict
	case errors.Is(err, ErrDeadline), errors.Is(err, context.DeadlineExceeded):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		// The client already hung up; the status is a formality.
		status = http.StatusServiceUnavailable
	case strings.Contains(err.Error(), "no label for vertex"):
		status = http.StatusNotFound
	}
	s.met.errors.Add(1)
	writeJSON(w, status, map[string]string{"error": err.Error()})
}

func decodeBody(r *http.Request, v any) error {
	if r.Method != http.MethodPost {
		return fmt.Errorf("use POST")
	}
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func (s *Server) handleDistance(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, err)
		return
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	ans, err := s.Distance(ctx, req.S, req.T, req.options())
	if err != nil {
		s.writeError(w, err)
		return
	}
	if ans.Error != "" {
		s.writeError(w, errors.New(ans.Error))
		return
	}
	writeJSON(w, http.StatusOK, ans)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req queryRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Pairs) == 0 {
		s.writeError(w, fmt.Errorf("batch-distance: empty pairs"))
		return
	}
	if err := req.validate(); err != nil {
		s.writeError(w, err)
		return
	}
	ctx := r.Context()
	if req.DeadlineMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.DeadlineMS)*time.Millisecond)
		defer cancel()
	}
	answers, err := s.AnswerPairs(ctx, req.Pairs, req.options())
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"answers": answers})
}

func (s *Server) handleUpdate(fail bool) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		var req updateRequest
		if err := decodeBody(r, &req); err != nil {
			s.writeError(w, err)
			return
		}
		var err error
		if fail {
			err = s.Fail(req.Vertices, req.Edges)
		} else {
			err = s.Recover(req.Vertices, req.Edges)
		}
		if err != nil {
			s.writeError(w, err)
			return
		}
		writeJSON(w, http.StatusOK, s.Snapshot())
	}
}

// mutateRequest is the wire form of /v1/mutate: an ordered mutation
// batch, applied atomically (order matters — a batch may delete an
// edge it just inserted).
type mutateRequest struct {
	Mutations []struct {
		Op string `json:"op"` // "insert" or "delete"
		U  int    `json:"u"`
		V  int    `json:"v"`
	} `json:"mutations"`
}

// maxMutations bounds a mutation batch; like the query caps above, it
// keeps one request from holding the pipeline's write lock (and one
// WAL fsync) for an unbounded stretch.
const maxMutations = 4096

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	var req mutateRequest
	if err := decodeBody(r, &req); err != nil {
		s.writeError(w, err)
		return
	}
	if len(req.Mutations) == 0 {
		s.writeError(w, fmt.Errorf("mutate: empty batch"))
		return
	}
	if len(req.Mutations) > maxMutations {
		s.writeError(w, fmt.Errorf("mutate: %d mutations exceeds the per-request limit of %d", len(req.Mutations), maxMutations))
		return
	}
	muts := make([]liveupdate.Mutation, len(req.Mutations))
	for i, m := range req.Mutations {
		var op liveupdate.MutOp
		switch m.Op {
		case "insert":
			op = liveupdate.MutInsert
		case "delete":
			op = liveupdate.MutDelete
		default:
			s.writeError(w, fmt.Errorf("mutate: mutation %d: unknown op %q", i, m.Op))
			return
		}
		muts[i] = liveupdate.Mutation{Op: op, U: int32(m.U), V: int32(m.V)}
	}
	st, err := s.Mutate(muts)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, fmt.Errorf("use POST"))
		return
	}
	// The body is optional (a bare POST keeps its historical meaning,
	// mode auto), so this can't go through decodeBody, which treats an
	// empty body as malformed.
	var req struct {
		Mode string `json:"mode"`
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, 1<<16))
	if err != nil {
		s.writeError(w, fmt.Errorf("bad request body: %w", err))
		return
	}
	if len(bytes.TrimSpace(body)) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			s.writeError(w, fmt.Errorf("bad request body: %w", err))
			return
		}
	}
	res, err := s.CompactMode(req.Mode)
	if err != nil {
		s.writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleState(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	body := map[string]any{
		"status": "ok",
		"n":      s.src.NumVertices(),
		"labels": s.src.NumLabels(),
	}
	if hr, ok := s.src.(HealthReporter); ok {
		body["cluster"] = hr.HealthJSON()
	}
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	fmt.Fprint(w, s.Metrics())
}
