package server

import (
	"bytes"
	"context"
	"fmt"
	"net"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"fsdl/internal/cluster"
	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/liveupdate"
)

// liveCluster is an in-process shard cluster whose shards can load
// versioned generations from a shared root directory.
type liveCluster struct {
	membership *cluster.Membership
	shards     []*cluster.ShardServer
	stores     []*labelstore.Store
	addrs      []string
}

// startLiveCluster partitions st over `shards` nodes with replication
// r and starts one generation-capable ShardServer per partition.
func startLiveCluster(t *testing.T, st *labelstore.Store, shards, r int, root string) *liveCluster {
	t.Helper()
	names := make([]cluster.Node, shards)
	for i := range names {
		names[i] = cluster.Node{Name: fmt.Sprintf("shard%d", i)}
	}
	parts := cluster.NewRing(names, r).Partition(st.NumVertices())

	lc := &liveCluster{membership: &cluster.Membership{Replication: r}}
	for i := 0; i < shards; i++ {
		var buf bytes.Buffer
		var ids []int
		for _, v := range parts[i] {
			if st.Has(v) {
				ids = append(ids, v)
			}
		}
		if err := st.SaveVertices(&buf, ids); err != nil {
			t.Fatalf("SaveVertices shard %d: %v", i, err)
		}
		ps, err := labelstore.Load(&buf)
		if err != nil {
			t.Fatalf("Load shard %d: %v", i, err)
		}
		srv, err := cluster.NewShardServer(cluster.ShardConfig{
			Store: ps, Name: names[i].Name, GenerationRoot: root,
		})
		if err != nil {
			t.Fatalf("NewShardServer %d: %v", i, err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		go srv.Serve(ln)
		lc.membership.Nodes = append(lc.membership.Nodes, cluster.Node{Name: names[i].Name, Addr: ln.Addr().String()})
		lc.shards = append(lc.shards, srv)
		lc.stores = append(lc.stores, ps)
		lc.addrs = append(lc.addrs, ln.Addr().String())
	}
	t.Cleanup(func() {
		for _, s := range lc.shards {
			s.Close()
		}
	})
	return lc
}

// TestLiveSwapUnderChaos is the zero-downtime acceptance gate for the
// live-update pipeline in cluster mode: with one replica crashed and a
// concurrent query workload running, a compaction builds generation 2
// and swaps it onto the ring — no query errors or drops, every
// pre-swap answer a sound upper bound on the mutated graph's d_{G'\F},
// and exact:true the moment the swap commits. The crashed replica then
// restarts on its stale generation and is caught up by the health
// sweep.
func TestLiveSwapUnderChaos(t *testing.T) {
	const side, eps = 6, 2.0
	g := gen.Grid2D(side, side)
	scheme, err := core.BuildScheme(g, eps)
	if err != nil {
		t.Fatalf("BuildScheme: %v", err)
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, scheme, nil); err != nil {
		t.Fatal(err)
	}
	full, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	root := t.TempDir()
	lc := startLiveCluster(t, full, 3, 2, root)
	fe, err := cluster.NewFrontend(cluster.FrontendConfig{
		Membership:     lc.membership,
		FetchTimeout:   2 * time.Second,
		DialTimeout:    500 * time.Millisecond,
		HealthInterval: 50 * time.Millisecond,
		HealthTimeout:  500 * time.Millisecond,
		StartupTimeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatalf("NewFrontend: %v", err)
	}
	defer fe.Close()

	p, err := liveupdate.Open(liveupdate.Config{Base: g, WALPath: filepath.Join(root, "mutations.wal")})
	if err != nil {
		t.Fatalf("liveupdate.Open: %v", err)
	}
	srv := newTestServer(t, Config{Source: fe, Live: p, LiveRoot: root, CacheCapacity: -1})

	// Stream the delta: two deletions (soft faults) and two insertions
	// (patches) before the chaos begins, so the ground truth is fixed.
	if _, err := srv.Mutate([]liveupdate.Mutation{
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutDelete, U: 14, V: 20},
		{Op: liveupdate.MutInsert, U: 0, V: 35},
		{Op: liveupdate.MutInsert, U: 5, V: 30},
	}); err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gPrime := snap.Graph

	// Every query carries a forbidden vertex; ground truth is BFS on
	// the mutated graph avoiding it.
	reqFaults := graph.NewFaultSet()
	reqFaults.AddVertex(21)
	pairs := [][2]int{{0, 35}, {2, 33}, {30, 5}, {1, 6}, {7, 29}}
	truth := make(map[[2]int]int64, len(pairs))
	for _, pr := range pairs {
		d, ok := bfsAvoid(gPrime, pr[0], pr[1], reqFaults)
		if !ok {
			t.Fatalf("ground truth (%d,%d) disconnected", pr[0], pr[1])
		}
		truth[pr] = d
	}

	// Crash one replica and wait for the frontend to fence it — the
	// operational precondition for a swap (SwapGeneration refuses to
	// flip while a shard it believes healthy cannot load).
	lc.shards[2].Close()
	waitShard(t, fe, "shard2", func(h cluster.ShardHealth) bool { return !h.Healthy })

	// Live query workload across the compaction.
	var (
		wg       sync.WaitGroup
		stop     = make(chan struct{})
		queries  atomic.Int64
		dropped  atomic.Int64
		unsound  atomic.Int64
		sawExact atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			opts := &QueryOptions{Faults: reqFaults}
			for {
				select {
				case <-stop:
					return
				default:
				}
				ans, err := srv.AnswerPairs(context.Background(), pairs, opts)
				if err != nil {
					dropped.Add(1)
					continue
				}
				for i, a := range ans {
					queries.Add(1)
					if a.Error != "" {
						dropped.Add(1)
						continue
					}
					want := truth[pairs[i]]
					switch {
					case a.Connected && a.Dist < want:
						// Below the true distance: no sound route can
						// produce it, old generation or new.
						unsound.Add(1)
						t.Logf("UNSOUND pair (%d,%d): %+v want %d", pairs[i][0], pairs[i][1], a, want)
					case !a.Connected && !a.Degraded:
						// A confident "disconnected" for a connected pair.
						unsound.Add(1)
						t.Logf("UNSOUND pair (%d,%d): %+v want %d", pairs[i][0], pairs[i][1], a, want)
					}
					if a.Exact {
						sawExact.Add(1)
					}
				}
			}
		}()
	}

	// Compact + swap under load: generation 2 is built from the
	// snapshot, loaded by both healthy shards and flipped in one epoch
	// bump.
	res, err := srv.Compact()
	if err != nil {
		t.Fatalf("Compact under chaos: %v", err)
	}
	if res.Generation != 2 || res.Pending != 0 || res.Epoch == 0 {
		t.Fatalf("compact result %+v", res)
	}
	if fe.Generation() != 2 {
		t.Fatalf("frontend generation %d after swap", fe.Generation())
	}

	// Immediately after the swap: exact answers, still sound.
	ans, err := srv.AnswerPairs(context.Background(), pairs, &QueryOptions{Faults: reqFaults})
	if err != nil {
		t.Fatalf("post-swap batch: %v", err)
	}
	for i, a := range ans {
		if a.Error != "" || !a.Exact {
			t.Fatalf("post-swap (%d,%d) not exact: %+v", pairs[i][0], pairs[i][1], a)
		}
		if !a.Connected || a.Dist < truth[pairs[i]] {
			t.Fatalf("post-swap (%d,%d) unsound: %+v, truth %d", pairs[i][0], pairs[i][1], a, truth[pairs[i]])
		}
	}

	close(stop)
	wg.Wait()
	if q := queries.Load(); q == 0 {
		t.Fatal("workload answered no queries")
	}
	if d := dropped.Load(); d != 0 {
		t.Fatalf("%d of %d queries dropped or errored during the swap", d, queries.Load())
	}
	if u := unsound.Load(); u != 0 {
		t.Fatalf("%d of %d answers unsound during the swap", u, queries.Load())
	}
	t.Logf("workload: %d queries, %d exact, zero drops", queries.Load(), sawExact.Load())

	// The crashed replica comes back serving its stale generation 1;
	// the health sweep catches it up from the generation root instead
	// of routing stale labels.
	srv2, err := cluster.NewShardServer(cluster.ShardConfig{
		Store: lc.stores[2], Name: "shard2", GenerationRoot: root,
	})
	if err != nil {
		t.Fatalf("restart shard2: %v", err)
	}
	ln, err := net.Listen("tcp", lc.addrs[2])
	if err != nil {
		t.Fatalf("relisten %s: %v", lc.addrs[2], err)
	}
	go srv2.Serve(ln)
	defer srv2.Close()
	waitShard(t, fe, "shard2", func(h cluster.ShardHealth) bool {
		return h.Healthy && h.Generation == 2 && !h.GenLagged
	})

	// Full strength restored: exact answers with every replica serving
	// generation 2.
	a, err := srv.Distance(context.Background(), 0, 35, &QueryOptions{Faults: reqFaults})
	if err != nil || a.Error != "" || !a.Exact || !a.Connected {
		t.Fatalf("answer after recovery: %+v err=%v", a, err)
	}
}

// waitShard polls the frontend's health view until the named shard
// satisfies pred.
func waitShard(t *testing.T, fe *cluster.Frontend, name string, pred func(cluster.ShardHealth) bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, h := range fe.Health() {
			if h.Name == name && pred(h) {
				return
			}
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("shard %s never reached the expected state: %+v", name, fe.Health())
}
