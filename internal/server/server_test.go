package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/labelstore"
	"fsdl/internal/oracle"
)

// testStore builds a grid scheme and round-trips it through the
// labelstore container, the way a deployed server receives it.
func testStore(t *testing.T, w, h int, eps float64) (*graph.Graph, *labelstore.Store) {
	t.Helper()
	g := gen.Grid2D(w, h)
	s, err := core.BuildScheme(g, eps)
	if err != nil {
		t.Fatalf("BuildScheme: %v", err)
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, s, nil); err != nil {
		t.Fatalf("Save: %v", err)
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	return g, st
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

// TestBatchMatchesStaticOracle is the acceptance-criterion check at
// unit scale (e16 repeats it against a 10k-vertex store): a batch of
// ≥100 pairs with a shared fault set must answer every pair exactly as
// oracle.Static.Distance does.
func TestBatchMatchesStaticOracle(t *testing.T) {
	const side, eps = 20, 2.0
	g, st := testStore(t, side, side, eps)
	s := newTestServer(t, Config{Store: st})
	static, err := oracle.BuildStatic(g, eps)
	if err != nil {
		t.Fatalf("BuildStatic: %v", err)
	}

	rng := rand.New(rand.NewSource(7))
	faults := graph.NewFaultSet()
	for faults.NumVertices() < 8 {
		faults.AddVertex(rng.Intn(g.NumVertices()))
	}
	var pairs [][2]int
	for len(pairs) < 120 {
		pairs = append(pairs, [2]int{rng.Intn(g.NumVertices()), rng.Intn(g.NumVertices())})
	}

	answers, err := s.AnswerPairs(context.Background(), pairs, &QueryOptions{Faults: faults})
	if err != nil {
		t.Fatalf("AnswerPairs: %v", err)
	}
	for i, a := range answers {
		if a.Error != "" {
			t.Fatalf("pair %v: unexpected error %q", pairs[i], a.Error)
		}
		if !a.Exact {
			t.Errorf("pair %v: expected exact answer, got degraded=%v budget=%v", pairs[i], a.Degraded, a.BudgetExhausted)
		}
		want, wantOK, err := static.Distance(pairs[i][0], pairs[i][1], faults)
		if err != nil {
			t.Fatalf("static.Distance(%v): %v", pairs[i], err)
		}
		if a.Connected != wantOK || (wantOK && a.Dist != want) {
			t.Errorf("pair %v: server (%d,%v) != static oracle (%d,%v)",
				pairs[i], a.Dist, a.Connected, want, wantOK)
		}
	}
}

func TestCacheHitsAndFlushOnFail(t *testing.T) {
	g, st := testStore(t, 8, 8, 2)
	s := newTestServer(t, Config{Store: st})
	n := g.NumVertices()

	first, err := s.Distance(context.Background(), 0, n-1, nil)
	if err != nil || first.Error != "" {
		t.Fatalf("first query: %v / %q", err, first.Error)
	}
	if first.Cached {
		t.Error("first answer claims cached")
	}
	second, err := s.Distance(context.Background(), 0, n-1, nil)
	if err != nil {
		t.Fatalf("second query: %v", err)
	}
	if !second.Cached || second.Dist != first.Dist {
		t.Errorf("second answer cached=%v dist=%d, want cached copy of %d", second.Cached, second.Dist, first.Dist)
	}
	if s.met.cacheHits.Load() != 1 || s.met.cacheMisses.Load() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", s.met.cacheHits.Load(), s.met.cacheMisses.Load())
	}

	// A different budget is a different cache key.
	third, err := s.Distance(context.Background(), 0, n-1, &QueryOptions{Budget: 100000})
	if err != nil {
		t.Fatalf("budget query: %v", err)
	}
	if third.Cached {
		t.Error("different budget must not hit the no-budget entry")
	}

	// fail flushes the cache and the overlay changes the answer.
	if err := s.Fail([]int{1}, nil); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	if s.cache.Len() != 0 {
		t.Errorf("cache not flushed: %d entries", s.cache.Len())
	}
	if s.met.cacheFlushes.Load() != 1 {
		t.Errorf("cacheFlushes = %d", s.met.cacheFlushes.Load())
	}
	after, err := s.Distance(context.Background(), 0, n-1, nil)
	if err != nil {
		t.Fatalf("post-fail query: %v", err)
	}
	if after.Cached {
		t.Error("post-fail answer served from flushed cache")
	}
	want := g.DistAvoiding(0, n-1, graph.FaultVertices(1))
	if !after.Connected || after.Dist < int64(want) {
		t.Errorf("post-fail dist %d (connected %v), want ≥ exact %d", after.Dist, after.Connected, want)
	}
	// A query against the failed vertex itself: forbidden endpoint.
	forb, err := s.Distance(context.Background(), 1, 5, nil)
	if err != nil {
		t.Fatalf("forbidden query: %v", err)
	}
	if forb.Connected || !forb.Exact {
		t.Errorf("failed endpoint: connected=%v exact=%v, want false/true", forb.Connected, forb.Exact)
	}

	// recover flushes again and restores the original verdict.
	if err := s.Recover([]int{1}, nil); err != nil {
		t.Fatalf("Recover: %v", err)
	}
	restored, err := s.Distance(context.Background(), 0, n-1, nil)
	if err != nil {
		t.Fatalf("post-recover query: %v", err)
	}
	if restored.Dist != first.Dist {
		t.Errorf("post-recover dist %d, want %d", restored.Dist, first.Dist)
	}
}

// TestBudgetDegradesToUpperBound checks the admission-control contract:
// a query whose work budget is exhausted answers with a safe upper
// bound flagged exact: false, not an error.
func TestBudgetDegradesToUpperBound(t *testing.T) {
	g, st := testStore(t, 12, 12, 2)
	s := newTestServer(t, Config{Store: st})
	rng := rand.New(rand.NewSource(3))
	faults := graph.NewFaultSet()
	for faults.NumVertices() < 6 {
		v := rng.Intn(g.NumVertices())
		if v != 0 && v != g.NumVertices()-1 {
			faults.AddVertex(v)
		}
	}
	exact := g.DistAvoiding(0, g.NumVertices()-1, faults)
	if !graph.Reachable(exact) {
		t.Fatal("test instance disconnected; pick different faults")
	}
	// Walk budgets upward until one truncates fault decoding while
	// endpoint labels still fit: a connected, inexact answer. The
	// decode order (S, T, then faults) guarantees such a window exists.
	found := false
	for budget := 1; budget <= 1<<20; budget *= 2 {
		a, err := s.Distance(context.Background(), 0, g.NumVertices()-1,
			&QueryOptions{Faults: faults, Budget: budget})
		if err != nil || a.Error != "" {
			t.Fatalf("budget %d: %v / %q", budget, err, a.Error)
		}
		if a.Connected && !a.Exact {
			found = true
			if !a.BudgetExhausted {
				t.Errorf("budget %d: inexact answer without BudgetExhausted", budget)
			}
			if a.Dist < int64(exact) {
				t.Errorf("budget %d: dist %d underestimates exact %d — safety violated", budget, a.Dist, exact)
			}
			break
		}
		if a.Exact {
			break // budget is already big enough for a full decode
		}
	}
	if !found {
		t.Fatal("no budget produced a connected exact:false answer")
	}
	if s.met.budgetExhausted.Load() == 0 {
		t.Error("budgetExhausted counter never incremented")
	}
}

func TestDegradedFaultLabels(t *testing.T) {
	// A store missing one fault's label must answer degraded, not fail.
	g := gen.Grid2D(8, 8)
	sch, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	keep := make([]int, 0, g.NumVertices()-1)
	const missing = 27
	for v := 0; v < g.NumVertices(); v++ {
		if v != missing {
			keep = append(keep, v)
		}
	}
	var buf bytes.Buffer
	if err := labelstore.Save(&buf, sch, keep); err != nil {
		t.Fatal(err)
	}
	st, err := labelstore.Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := newTestServer(t, Config{Store: st})
	faults := graph.FaultVertices(missing)
	a, err := s.Distance(context.Background(), 0, g.NumVertices()-1, &QueryOptions{Faults: faults})
	if err != nil || a.Error != "" {
		t.Fatalf("query: %v / %q", err, a.Error)
	}
	if a.Exact || !a.Degraded {
		t.Errorf("exact=%v degraded=%v, want inexact degraded", a.Exact, a.Degraded)
	}
	if len(a.MissingFaultLabels) != 1 || a.MissingFaultLabels[0] != missing {
		t.Errorf("MissingFaultLabels = %v, want [%d]", a.MissingFaultLabels, missing)
	}
	exact := g.DistAvoiding(0, g.NumVertices()-1, faults)
	if !a.Connected || a.Dist < int64(exact) {
		t.Errorf("degraded dist %d (connected %v) vs exact %d — safety violated", a.Dist, a.Connected, exact)
	}
	if s.met.degraded.Load() == 0 {
		t.Error("degraded counter never incremented")
	}
}

func TestAdmissionOverloadAndDeadline(t *testing.T) {
	_, st := testStore(t, 6, 6, 2)
	s := newTestServer(t, Config{Store: st, Workers: 1, QueueDepth: 1, DefaultDeadline: time.Minute})

	// Occupy the single worker slot so admissions queue.
	s.slots <- struct{}{}
	defer func() { <-s.slots }()

	ctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	queuedErr := make(chan error, 1)
	go func() {
		_, err := s.AnswerPairs(ctx, [][2]int{{0, 1}}, nil)
		queuedErr <- err
	}()
	// Wait for the goroutine to occupy the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(s.queued) < 1 {
		if time.Now().After(deadline) {
			t.Fatal("queued request never registered")
		}
		time.Sleep(time.Millisecond)
	}
	// Queue capacity is Workers+QueueDepth = 2; one admission is
	// queued, so two more fill and overflow it.
	overflow := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := s.AnswerPairs(ctx, [][2]int{{0, 1}}, nil)
			overflow <- err
		}()
	}
	sawOverload := false
	for i := 0; i < 2; i++ {
		if err := <-overflow; err == ErrOverloaded {
			sawOverload = true
		}
	}
	if !sawOverload {
		t.Error("expected at least one ErrOverloaded from overflow admissions")
	}
	// The queued request dies with ErrDeadline when its context expires.
	if err := <-queuedErr; err != ErrDeadline {
		t.Errorf("queued request: %v, want ErrDeadline", err)
	}
	if s.met.rejectedOverload.Load() == 0 || s.met.rejectedDeadline.Load() == 0 {
		t.Errorf("rejection counters overload=%d deadline=%d, want both > 0",
			s.met.rejectedOverload.Load(), s.met.rejectedDeadline.Load())
	}
}

func TestDynamicPath(t *testing.T) {
	g, st := testStore(t, 8, 8, 2)
	s := newTestServer(t, Config{Store: st, Graph: g})
	n := g.NumVertices()

	a, err := s.Distance(context.Background(), 0, n-1, &QueryOptions{Dynamic: true})
	if err != nil || a.Error != "" {
		t.Fatalf("dynamic query: %v / %q", err, a.Error)
	}
	exact := g.Dist(0, n-1)
	if !a.Connected || a.Dist < int64(exact) {
		t.Errorf("dynamic dist %d (connected %v), want ≥ %d", a.Dist, a.Connected, exact)
	}

	// Fail two interior vertices: paths get longer but survive.
	if err := s.Fail([]int{9, 18}, nil); err != nil {
		t.Fatalf("Fail: %v", err)
	}
	after, err := s.Distance(context.Background(), 0, n-1, &QueryOptions{Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	want := g.DistAvoiding(0, n-1, graph.FaultVertices(9, 18))
	if !graph.Reachable(want) {
		t.Fatal("test instance disconnected; pick different faults")
	}
	if !after.Connected || after.Dist < int64(want) {
		t.Errorf("dynamic post-fail dist %d (connected %v), want ≥ %d", after.Dist, after.Connected, want)
	}
	// A failed vertex answers disconnected on the dynamic path.
	failedEP, err := s.Distance(context.Background(), 9, 5, &QueryOptions{Dynamic: true})
	if err != nil {
		t.Fatal(err)
	}
	if failedEP.Connected {
		t.Error("failed endpoint should be disconnected on the dynamic path")
	}

	// Per-request faults are rejected on the dynamic path.
	if _, err := s.AnswerPairs(context.Background(), [][2]int{{2, 3}},
		&QueryOptions{Dynamic: true, Faults: graph.FaultVertices(5)}); err == nil {
		t.Error("dynamic + per-request faults should error")
	}

	// The store path sees the same overlay.
	viaStore, err := s.Distance(context.Background(), 1, n-1, nil)
	if err != nil {
		t.Fatal(err)
	}
	wantStore := g.DistAvoiding(1, n-1, graph.FaultVertices(9, 18))
	if !viaStore.Connected || viaStore.Dist < int64(wantStore) {
		t.Errorf("store path post-fail dist %d, want ≥ %d", viaStore.Dist, wantStore)
	}
}

func TestDynamicRequiresGraph(t *testing.T) {
	_, st := testStore(t, 4, 4, 2)
	s := newTestServer(t, Config{Store: st})
	if _, err := s.AnswerPairs(context.Background(), [][2]int{{0, 1}}, &QueryOptions{Dynamic: true}); err == nil {
		t.Error("dynamic query without a graph should error")
	}
	// Mismatched graph is rejected at construction.
	if _, err := New(Config{Store: st, Graph: gen.Grid2D(3, 3)}); err == nil {
		t.Error("graph/store size mismatch should fail New")
	}
}

func TestHTTPEndpoints(t *testing.T) {
	g, st := testStore(t, 8, 8, 2)
	rep := &labelstore.SalvageReport{Version: 2, Total: st.NumLabels(), Kept: st.NumLabels()}
	s := newTestServer(t, Config{Store: st, Report: rep})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	n := g.NumVertices()

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out bytes.Buffer
		out.ReadFrom(resp.Body)
		return resp, out.Bytes()
	}

	// healthz
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", err, resp.StatusCode)
	}
	resp.Body.Close()

	// distance
	resp, body := post("/v1/distance", map[string]any{"s": 0, "t": n - 1, "fail": []int{12}})
	if resp.StatusCode != 200 {
		t.Fatalf("distance: %d %s", resp.StatusCode, body)
	}
	var ans Answer
	if err := json.Unmarshal(body, &ans); err != nil {
		t.Fatalf("distance decode: %v", err)
	}
	want := g.DistAvoiding(0, n-1, graph.FaultVertices(12))
	if !ans.Connected || ans.Dist < int64(want) || !ans.Exact {
		t.Errorf("distance answer %+v, want connected exact ≥ %d", ans, want)
	}

	// batch-distance
	pairs := [][2]int{}
	for i := 0; i < 16; i++ {
		pairs = append(pairs, [2]int{i, n - 1 - i})
	}
	resp, body = post("/v1/batch-distance", map[string]any{"pairs": pairs})
	if resp.StatusCode != 200 {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var batch struct {
		Answers []Answer `json:"answers"`
	}
	if err := json.Unmarshal(body, &batch); err != nil || len(batch.Answers) != len(pairs) {
		t.Fatalf("batch decode: %v (%d answers)", err, len(batch.Answers))
	}

	// connected
	resp, body = post("/v1/connected", map[string]any{"s": 0, "t": 5})
	if resp.StatusCode != 200 {
		t.Fatalf("connected: %d %s", resp.StatusCode, body)
	}
	json.Unmarshal(body, &ans)
	if !ans.Connected {
		t.Error("0 and 5 should be connected")
	}

	// fail / state / recover
	resp, body = post("/v1/fail", map[string]any{"vertices": []int{3}})
	if resp.StatusCode != 200 {
		t.Fatalf("fail: %d %s", resp.StatusCode, body)
	}
	var state State
	json.Unmarshal(body, &state)
	if len(state.OverlayVertices) != 1 || state.OverlayVertices[0] != 3 {
		t.Errorf("state overlay = %v, want [3]", state.OverlayVertices)
	}
	resp, _ = post("/v1/recover", map[string]any{"vertices": []int{3}})
	if resp.StatusCode != 200 {
		t.Fatal("recover failed")
	}
	resp, err = http.Get(ts.URL + "/v1/state")
	if err != nil || resp.StatusCode != 200 {
		t.Fatalf("state: %v", err)
	}
	json.NewDecoder(resp.Body).Decode(&state)
	resp.Body.Close()
	if len(state.OverlayVertices) != 0 {
		t.Errorf("post-recover overlay = %v, want empty", state.OverlayVertices)
	}

	// error mapping
	resp, _ = post("/v1/distance", map[string]any{"s": -1, "t": 0})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("out-of-range: %d, want 400", resp.StatusCode)
	}
	resp, _ = post("/v1/fail", map[string]any{"vertices": []int{n + 5}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("fail out-of-range: %d, want 400", resp.StatusCode)
	}
	resp, _ = post("/v1/batch-distance", map[string]any{"pairs": [][2]int{}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty batch: %d, want 400", resp.StatusCode)
	}

	// metrics: counters, hit rate, salvage gauges all present.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var mb bytes.Buffer
	mb.ReadFrom(resp.Body)
	resp.Body.Close()
	metricsText := mb.String()
	for _, want := range []string{
		`fsdl_requests_total{endpoint="distance"}`,
		"fsdl_cache_hits_total",
		"fsdl_cache_hit_rate",
		"fsdl_cache_flushes_total 2",
		"fsdl_label_cache_hits_total",
		"fsdl_label_cache_misses_total",
		"fsdl_label_cache_hit_rate",
		"fsdl_decoder_pool_gets_total",
		"fsdl_decoder_pool_news_total",
		fmt.Sprintf("fsdl_salvage_records_kept %d", st.NumLabels()),
		"fsdl_request_seconds_bucket",
		"fsdl_inflight 0",
	} {
		if !strings.Contains(metricsText, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

// TestConcurrentChurn hammers the HTTP server with mixed queries and
// fail/recover from many goroutines; run under -race this is the
// concurrency-safety proof for the whole serving path.
func TestConcurrentChurn(t *testing.T) {
	g, st := testStore(t, 8, 8, 2)
	s := newTestServer(t, Config{Store: st, Graph: g, Workers: 4, QueueDepth: 64})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	n := g.NumVertices()

	var wg sync.WaitGroup
	errs := make(chan string, 64)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 30; i++ {
				var resp *http.Response
				var err error
				switch i % 3 {
				case 0:
					b, _ := json.Marshal(map[string]any{"s": rng.Intn(n), "t": rng.Intn(n)})
					resp, err = http.Post(ts.URL+"/v1/distance", "application/json", bytes.NewReader(b))
				case 1:
					b, _ := json.Marshal(map[string]any{"pairs": [][2]int{{rng.Intn(n), rng.Intn(n)}, {rng.Intn(n), rng.Intn(n)}}})
					resp, err = http.Post(ts.URL+"/v1/batch-distance", "application/json", bytes.NewReader(b))
				case 2:
					resp, err = http.Get(ts.URL + "/metrics")
				}
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != 200 && resp.StatusCode != 429 && resp.StatusCode != 503 {
					errs <- fmt.Sprintf("worker %d: status %d", w, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(w)
	}
	for u := 0; u < 2; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			v := 10 + u
			for i := 0; i < 10; i++ {
				ep := "/v1/fail"
				if i%2 == 1 {
					ep = "/v1/recover"
				}
				b, _ := json.Marshal(map[string]any{"vertices": []int{v}})
				resp, err := http.Post(ts.URL+ep, "application/json", bytes.NewReader(b))
				if err != nil {
					errs <- err.Error()
					return
				}
				if resp.StatusCode != 200 {
					errs <- fmt.Sprintf("updater %d: status %d", u, resp.StatusCode)
				}
				resp.Body.Close()
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("New without a store should fail")
	}
}

// gatedSource is a LabelSource whose Label blocks on designated
// vertices until the caller's context dies — a stand-in for a hung
// remote shard fetch.
type gatedSource struct {
	st      *labelstore.Store
	blockOn map[int]bool
}

func (g gatedSource) NumVertices() int                { return g.st.NumVertices() }
func (g gatedSource) NumLabels() int                  { return g.st.NumLabels() }
func (g gatedSource) LabelCacheStats() (int64, int64) { return g.st.LabelCacheStats() }
func (g gatedSource) Label(ctx context.Context, v int) (*core.Label, error) {
	if g.blockOn[v] {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	return g.st.Label(v)
}

// TestClientDisconnectReturnsSlot: when the requester's context is
// canceled mid-batch (client hung up), the server must abandon the
// batch and free its admission slot immediately — not grind through
// the remaining pairs first.
func TestClientDisconnectReturnsSlot(t *testing.T) {
	_, st := testStore(t, 8, 8, 2)
	src := gatedSource{st: st, blockOn: map[int]bool{0: true}}
	s := newTestServer(t, Config{Source: src, Workers: 1, CacheCapacity: -1})

	// A big batch whose very first pair hangs in Label until the client
	// disconnects.
	pairs := make([][2]int, 256)
	for i := range pairs {
		pairs[i] = [2]int{0, 1}
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := s.AnswerPairs(ctx, pairs, nil)
		errCh <- err
	}()
	// Let the batch get admitted and stuck in the gated Label call,
	// then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()

	select {
	case err := <-errCh:
		if err == nil || !strings.Contains(err.Error(), "abandoned") && !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("abandoned batch returned %v, want cancellation error", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled batch did not return; slot still held")
	}

	// The single worker slot must be free again: a query on an ungated
	// vertex answers well inside the deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel2()
	ans, err := s.Distance(ctx2, 1, 2, nil)
	if err != nil {
		t.Fatalf("query after disconnect: %v (slot not returned?)", err)
	}
	if !ans.Connected {
		t.Fatal("post-disconnect query answered wrong")
	}
}

// TestPrefetchSourceSeesBatch: a Prefetcher source receives every
// distinct in-range vertex of the batch (endpoints and faults) before
// per-pair answering starts.
func TestPrefetchSourceSeesBatch(t *testing.T) {
	_, st := testStore(t, 6, 6, 2)
	src := &prefetchSpy{gatedSource: gatedSource{st: st}}
	s := newTestServer(t, Config{Source: src})

	f := graph.NewFaultSet()
	f.AddVertex(7)
	f.AddEdge(8, 9)
	_, err := s.AnswerPairs(context.Background(), [][2]int{{1, 2}, {2, 3}, {1, 2}, {-5, 999999}}, &QueryOptions{Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 7, 8, 9}
	got := src.got
	sort.Ints(got)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("prefetch saw %v, want %v", got, want)
	}
}

type prefetchSpy struct {
	gatedSource
	got []int
}

func (p *prefetchSpy) Prefetch(_ context.Context, ids []int) int {
	p.got = append(p.got, ids...)
	return 0
}

// flakySource is a LabelSource whose designated vertices are
// transiently unreachable — the label is there, but fetching it fails
// while down is set, the way a cluster frontend surfaces a replica-set
// outage.
type flakySource struct {
	st   *labelstore.Store
	mu   sync.Mutex
	down map[int]bool
}

func (f *flakySource) setDown(v int, down bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.down == nil {
		f.down = map[int]bool{}
	}
	f.down[v] = down
}

func (f *flakySource) NumVertices() int                { return f.st.NumVertices() }
func (f *flakySource) NumLabels() int                  { return f.st.NumLabels() }
func (f *flakySource) LabelCacheStats() (int64, int64) { return f.st.LabelCacheStats() }
func (f *flakySource) Label(ctx context.Context, v int) (*core.Label, error) {
	f.mu.Lock()
	down := f.down[v]
	f.mu.Unlock()
	if down {
		return nil, fmt.Errorf("label for vertex %d unavailable: all replicas unreachable", v)
	}
	return f.st.Label(v)
}

// TestDegradedAnswersNotCached: with the default result cache ENABLED,
// an answer degraded by a transiently unavailable fault label must not
// be pinned in the cache — once the label source recovers, the same
// query returns to exact.
func TestDegradedAnswersNotCached(t *testing.T) {
	_, st := testStore(t, 8, 8, 2)
	src := &flakySource{st: st}
	s := newTestServer(t, Config{Source: src}) // default caches on
	ctx := context.Background()

	const faultV = 10
	faults := graph.NewFaultSet()
	faults.AddVertex(faultV)
	opts := &QueryOptions{Faults: faults}

	src.setDown(faultV, true)
	a, err := s.Distance(ctx, 0, 63, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Degraded || a.Exact {
		t.Fatalf("outage answer degraded=%v exact=%v, want degraded upper bound", a.Degraded, a.Exact)
	}

	// Source recovers: the very next identical query must be exact, not
	// a cache replay of the degraded verdict.
	src.setDown(faultV, false)
	a, err = s.Distance(ctx, 0, 63, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cached {
		t.Fatal("degraded answer was served from the result cache after recovery")
	}
	if a.Degraded || !a.Exact {
		t.Fatalf("post-recovery answer degraded=%v exact=%v, want exact", a.Degraded, a.Exact)
	}

	// Exact answers still cache as before.
	a, err = s.Distance(ctx, 0, 63, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Cached || !a.Exact {
		t.Fatalf("repeat exact query cached=%v exact=%v, want cached exact", a.Cached, a.Exact)
	}
}

// TestHTTPBatchAndFaultCaps: oversized batches and fault sets are
// rejected with 400 before they fan out into label fetches.
func TestHTTPBatchAndFaultCaps(t *testing.T) {
	_, st := testStore(t, 4, 4, 2)
	s := newTestServer(t, Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post := func(path string, body any) int {
		t.Helper()
		b, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(b))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}

	big := make([][2]int, maxBatchPairs+1)
	for i := range big {
		big[i] = [2]int{0, 1}
	}
	if code := post("/v1/batch-distance", map[string]any{"pairs": big}); code != http.StatusBadRequest {
		t.Fatalf("oversized batch: status %d, want 400", code)
	}
	manyFaults := make([]int, maxRequestFaults+1)
	for i := range manyFaults {
		manyFaults[i] = i % st.NumVertices()
	}
	if code := post("/v1/distance", map[string]any{"s": 0, "t": 1, "fail": manyFaults}); code != http.StatusBadRequest {
		t.Fatalf("oversized fault set: status %d, want 400", code)
	}
	// At-limit requests still answer.
	ok := make([][2]int, 4)
	for i := range ok {
		ok[i] = [2]int{0, 1}
	}
	if code := post("/v1/batch-distance", map[string]any{"pairs": ok}); code != http.StatusOK {
		t.Fatalf("small batch: status %d, want 200", code)
	}
}
