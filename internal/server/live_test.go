package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"

	"fsdl/internal/graph"
	"fsdl/internal/liveupdate"
)

// bfsAvoid is the ground truth: the true distance in g avoiding the
// fault set.
func bfsAvoid(g *graph.Graph, src, dst int, faults *graph.FaultSet) (int64, bool) {
	if faults != nil && (faults.HasVertex(src) || faults.HasVertex(dst)) {
		return 0, false
	}
	n := g.NumVertices()
	dist := make([]int64, n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		if u == dst {
			return dist[u], true
		}
		for _, w := range g.Neighbors(u) {
			v := int(w)
			if dist[v] >= 0 {
				continue
			}
			if faults != nil && (faults.HasVertex(v) || faults.HasEdge(u, v)) {
				continue
			}
			dist[v] = dist[u] + 1
			queue = append(queue, v)
		}
	}
	return 0, false
}

// newLiveServer builds a local-store server with a WAL-backed live
// pipeline rooted in a temp dir.
func newLiveServer(t *testing.T, side int) (*Server, *graph.Graph, string) {
	t.Helper()
	g, st := testStore(t, side, side, 2)
	root := t.TempDir()
	p, err := liveupdate.Open(liveupdate.Config{Base: g, WALPath: filepath.Join(root, "mutations.wal")})
	if err != nil {
		t.Fatalf("liveupdate.Open: %v", err)
	}
	s := newTestServer(t, Config{Store: st, Live: p, LiveRoot: root, CacheCapacity: -1})
	return s, g, root
}

// TestLiveMutateQueryCompact walks the full local live-update cycle:
// mutations suspend exactness but keep answers sound (deletions as
// soft faults, insertions as patches), compaction bakes the delta into
// generation 2 and swaps it in, and exactness returns.
func TestLiveMutateQueryCompact(t *testing.T) {
	s, _, _ := newLiveServer(t, 6)
	ctx := context.Background()

	// Baseline: exact answers, no delta.
	a, err := s.Distance(ctx, 0, 35, nil)
	if err != nil || a.Error != "" || !a.Exact {
		t.Fatalf("baseline answer: %+v err=%v", a, err)
	}

	// Stream a batch: drop the (0,1) corner edge, bridge the diagonal.
	st, err := s.Mutate([]liveupdate.Mutation{
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutInsert, U: 0, V: 35},
	})
	if err != nil {
		t.Fatalf("Mutate: %v", err)
	}
	if st.Pending != 2 || st.Exact || st.Generation != 1 {
		t.Fatalf("mutate state %+v", st)
	}

	// The pipeline's effective graph is the ground truth from here on.
	snap, err := s.live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	gPrime := snap.Graph

	// The inserted edge is visible immediately via the patch tier: the
	// two corners are now adjacent, and the answer must say so while
	// flying the exact:false flag.
	a, err = s.Distance(ctx, 0, 35, nil)
	if err != nil || a.Error != "" {
		t.Fatalf("patched answer: %+v err=%v", a, err)
	}
	if a.Exact || !a.Connected || a.Dist != 1 {
		t.Fatalf("patched (0,35): %+v, want dist 1, exact false", a)
	}

	// The deleted edge is a soft fault: d(0,1) must reflect the detour
	// (≥ the true mutated distance), never the stale direct edge.
	want, ok := bfsAvoid(gPrime, 0, 1, graph.NewFaultSet())
	if !ok {
		t.Fatal("ground truth disconnected")
	}
	a, err = s.Distance(ctx, 0, 1, nil)
	if err != nil || a.Error != "" || !a.Connected {
		t.Fatalf("post-delete answer: %+v err=%v", a, err)
	}
	if a.Exact || a.Dist < want {
		t.Fatalf("post-delete (0,1): %+v, want sound upper bound on %d, exact false", a, want)
	}

	// State surfaces the delta.
	snapState := s.Snapshot()
	if snapState.LivePending != 2 || snapState.LiveGeneration != 1 || snapState.LiveSeq != 2 {
		t.Fatalf("state %+v", snapState)
	}

	// Compact: generation 2 is built, swapped into the store source and
	// committed; answers are exact again and still sound.
	res, err := s.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if res.Generation != 2 || res.Pending != 0 {
		t.Fatalf("compact result %+v", res)
	}
	for _, pair := range [][2]int{{0, 35}, {0, 1}, {5, 30}} {
		want, ok := bfsAvoid(gPrime, pair[0], pair[1], graph.NewFaultSet())
		a, err := s.Distance(ctx, pair[0], pair[1], nil)
		if err != nil || a.Error != "" {
			t.Fatalf("post-compact (%d,%d): %+v err=%v", pair[0], pair[1], a, err)
		}
		if !a.Exact {
			t.Fatalf("post-compact (%d,%d) not exact: %+v", pair[0], pair[1], a)
		}
		if a.Connected != ok || (ok && a.Dist < want) {
			t.Fatalf("post-compact (%d,%d): %+v, truth %d/%v", pair[0], pair[1], a, want, ok)
		}
	}

	// The WAL saw every batch plus the compaction marker.
	if s.WALFlushedTotal() == 0 {
		t.Fatal("no WAL flushes recorded")
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
}

// TestLiveMetricsExposition: the live counters — fsdl_wal_flushed_total
// above all — appear in /metrics once a pipeline is attached.
func TestLiveMetricsExposition(t *testing.T) {
	s, _, _ := newLiveServer(t, 4)
	if _, err := s.Mutate([]liveupdate.Mutation{{Op: liveupdate.MutDelete, U: 0, V: 1}}); err != nil {
		t.Fatal(err)
	}
	m := s.Metrics()
	for _, want := range []string{
		"fsdl_wal_flushed_total 1",
		"fsdl_live_deletes_total 1",
		"fsdl_live_pending 1",
		"fsdl_live_generation 1",
	} {
		if !strings.Contains(m, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
	// A live-less server exposes none of it.
	_, st := testStore(t, 4, 4, 2)
	plain := newTestServer(t, Config{Store: st})
	if strings.Contains(plain.Metrics(), "fsdl_live_") {
		t.Error("live metrics leaked into a live-less server")
	}
}

// TestMutateBatchAtomicity: a batch with one invalid mutation applies
// nothing, and validation sees earlier entries of the same batch.
func TestMutateBatchAtomicity(t *testing.T) {
	s, _, _ := newLiveServer(t, 4)
	if _, err := s.Mutate([]liveupdate.Mutation{
		{Op: liveupdate.MutDelete, U: 0, V: 1},
		{Op: liveupdate.MutDelete, U: 0, V: 1}, // already gone mid-batch
	}); err == nil {
		t.Fatal("double delete accepted")
	}
	if p := s.live.Pending(); p != 0 {
		t.Fatalf("failed batch left %d pending edges", p)
	}
	// Insert-then-delete of the same edge inside one batch is legal and
	// nets out to nothing.
	if _, err := s.Mutate([]liveupdate.Mutation{
		{Op: liveupdate.MutInsert, U: 0, V: 5},
		{Op: liveupdate.MutDelete, U: 0, V: 5},
	}); err != nil {
		t.Fatalf("insert+delete batch: %v", err)
	}
	if p := s.live.Pending(); p != 0 {
		t.Fatalf("net-zero batch left %d pending edges", p)
	}
}

// TestMutateHTTP drives /v1/mutate and /v1/compact over the wire:
// happy path, validation failures, and the 400 on a live-less server.
func TestMutateHTTP(t *testing.T) {
	s, _, _ := newLiveServer(t, 6)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, body := postJSON(t, ts.URL+"/v1/mutate", map[string]any{
		"mutations": []map[string]any{
			{"op": "insert", "u": 0, "v": 35},
			{"op": "delete", "u": 0, "v": 1},
		},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mutate: %d %s", resp.StatusCode, body)
	}
	var ms MutateState
	if err := json.Unmarshal(body, &ms); err != nil || ms.Seq != 2 || ms.Pending != 2 || ms.Exact {
		t.Fatalf("mutate response %s (err %v)", body, err)
	}

	// Query over HTTP reflects the insertion, exact:false.
	resp, body = postJSON(t, ts.URL+"/v1/distance", map[string]any{"s": 0, "t": 35})
	var a Answer
	if resp.StatusCode != http.StatusOK || json.Unmarshal(body, &a) != nil {
		t.Fatalf("distance: %d %s", resp.StatusCode, body)
	}
	if a.Exact || a.Dist != 1 {
		t.Fatalf("live distance answer %s", body)
	}

	resp, body = postJSON(t, ts.URL+"/v1/compact", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compact: %d %s", resp.StatusCode, body)
	}
	var cr CompactResult
	if err := json.Unmarshal(body, &cr); err != nil || cr.Generation != 2 || cr.Pending != 0 {
		t.Fatalf("compact response %s (err %v)", body, err)
	}

	// Validation failures are 400s.
	for _, bad := range []any{
		map[string]any{"mutations": []map[string]any{}},
		map[string]any{"mutations": []map[string]any{{"op": "replace", "u": 0, "v": 1}}},
		map[string]any{"mutations": []map[string]any{{"op": "delete", "u": 0, "v": 1}}}, // already deleted
	} {
		if resp, _ := postJSON(t, ts.URL+"/v1/mutate", bad); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad mutate %v: %d, want 400", bad, resp.StatusCode)
		}
	}

	// A server without a pipeline refuses both endpoints.
	_, st := testStore(t, 4, 4, 2)
	plain := newTestServer(t, Config{Store: st})
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	if resp, _ := postJSON(t, tsPlain.URL+"/v1/mutate", map[string]any{
		"mutations": []map[string]any{{"op": "insert", "u": 0, "v": 9}},
	}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("mutate without pipeline: %d, want 400", resp.StatusCode)
	}
	if resp, _ := postJSON(t, tsPlain.URL+"/v1/compact", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("compact without pipeline: %d, want 400", resp.StatusCode)
	}
}
