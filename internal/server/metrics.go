package server

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"

	"fsdl/internal/core"
	"fsdl/internal/liveupdate"
	"fsdl/internal/stats"
)

// metrics is the server's observability surface: atomic counters and
// gauges plus a latency histogram, rendered in the Prometheus text
// exposition format by WriteTo. Everything is lock-free on the hot
// path.
type metrics struct {
	// requests counts HTTP requests by endpoint; queries counts the
	// individual (s,t) answers inside them (a batch of 100 pairs is 1
	// request, 100 queries).
	requests map[string]*atomic.Int64
	queries  atomic.Int64

	cacheHits    atomic.Int64
	cacheMisses  atomic.Int64
	cacheFlushes atomic.Int64

	degraded        atomic.Int64
	budgetExhausted atomic.Int64

	rejectedOverload atomic.Int64
	rejectedDeadline atomic.Int64
	canceledMidBatch atomic.Int64
	errors           atomic.Int64

	inflight atomic.Int64

	failsApplied    atomic.Int64
	recoversApplied atomic.Int64
	rebuilds        atomic.Int64

	// salvage state is written once at startup.
	salvageTotal     atomic.Int64
	salvageKept      atomic.Int64
	salvageCorrupt   atomic.Int64
	salvageTruncated atomic.Int64

	latency *stats.Histogram
}

var endpoints = []string{"distance", "batch_distance", "connected", "fail", "recover", "state", "mutate", "compact"}

func newMetrics() *metrics {
	m := &metrics{
		requests: make(map[string]*atomic.Int64, len(endpoints)),
		// Seconds; spans sub-millisecond decode hits to multi-second
		// degraded scans.
		latency: stats.NewHistogram(
			0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
			0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10),
	}
	for _, e := range endpoints {
		m.requests[e] = &atomic.Int64{}
	}
	return m
}

func (m *metrics) request(endpoint string) {
	if c, ok := m.requests[endpoint]; ok {
		c.Add(1)
	}
}

// hitRate returns the cache hit fraction observed so far (0 when no
// lookups happened yet).
func (m *metrics) hitRate() float64 {
	h, mi := m.cacheHits.Load(), m.cacheMisses.Load()
	if h+mi == 0 {
		return 0
	}
	return float64(h) / float64(h+mi)
}

// render writes the Prometheus text exposition. cacheLen, the
// label-cache counters and the decoder-pool stats are sampled by the
// caller (those live with the store and the core pool, not here).
func (m *metrics) render(sb *strings.Builder, cacheLen int, labelHits, labelMisses int64, pool core.DecoderPoolStats) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}

	fmt.Fprintf(sb, "# HELP fsdl_requests_total HTTP requests by endpoint.\n# TYPE fsdl_requests_total counter\n")
	names := make([]string, 0, len(m.requests))
	for e := range m.requests {
		names = append(names, e)
	}
	sort.Strings(names)
	for _, e := range names {
		fmt.Fprintf(sb, "fsdl_requests_total{endpoint=%q} %d\n", e, m.requests[e].Load())
	}

	counter("fsdl_queries_total", "Individual (s,t) answers produced (batches count per pair).", m.queries.Load())
	counter("fsdl_cache_hits_total", "Result-cache hits.", m.cacheHits.Load())
	counter("fsdl_cache_misses_total", "Result-cache misses.", m.cacheMisses.Load())
	counter("fsdl_cache_flushes_total", "Cache invalidations caused by fail/recover.", m.cacheFlushes.Load())
	gauge("fsdl_cache_entries", "Entries currently cached.", int64(cacheLen))
	fmt.Fprintf(sb, "# HELP fsdl_cache_hit_rate Hit fraction over all lookups.\n# TYPE fsdl_cache_hit_rate gauge\nfsdl_cache_hit_rate %g\n", m.hitRate())

	counter("fsdl_label_cache_hits_total", "Decoded-label cache hits in the store.", labelHits)
	counter("fsdl_label_cache_misses_total", "Decoded-label cache misses (label decoded from bytes).", labelMisses)
	labelRate := 0.0
	if labelHits+labelMisses > 0 {
		labelRate = float64(labelHits) / float64(labelHits+labelMisses)
	}
	fmt.Fprintf(sb, "# HELP fsdl_label_cache_hit_rate Label-cache hit fraction over all lookups.\n# TYPE fsdl_label_cache_hit_rate gauge\nfsdl_label_cache_hit_rate %g\n", labelRate)

	counter("fsdl_decoder_pool_gets_total", "Decode-scratch checkouts from the shared pool.", pool.Gets)
	counter("fsdl_decoder_pool_news_total", "Checkouts that had to allocate a fresh scratch (gets minus news = reuses).", pool.News)

	counter("fsdl_degraded_answers_total", "Answers that fell back to conservative upper bounds.", m.degraded.Load())
	counter("fsdl_budget_exhausted_total", "Answers whose work budget truncated the sketch.", m.budgetExhausted.Load())
	counter("fsdl_rejected_total_overload", "Requests rejected because the queue was full.", m.rejectedOverload.Load())
	counter("fsdl_rejected_total_deadline", "Requests abandoned because their deadline expired while queued.", m.rejectedDeadline.Load())
	counter("fsdl_canceled_mid_batch_total", "Batches abandoned mid-decode because the client disconnected (worker slot returned early).", m.canceledMidBatch.Load())
	counter("fsdl_errors_total", "Requests that failed with a client or server error.", m.errors.Load())
	gauge("fsdl_inflight", "Queries currently executing or queued.", m.inflight.Load())

	counter("fsdl_fail_events_total", "Vertices/edges failed via /v1/fail.", m.failsApplied.Load())
	counter("fsdl_recover_events_total", "Vertices/edges recovered via /v1/recover.", m.recoversApplied.Load())
	counter("fsdl_dynamic_rebuilds_total", "Rebuilds of the dynamic oracle.", m.rebuilds.Load())

	gauge("fsdl_salvage_records_total", "Records declared by the store header.", m.salvageTotal.Load())
	gauge("fsdl_salvage_records_kept", "Records salvaged intact.", m.salvageKept.Load())
	gauge("fsdl_salvage_records_corrupt", "Records dropped for checksum/decode failures.", m.salvageCorrupt.Load())
	gauge("fsdl_salvage_truncated", "1 when the store file was truncated mid-record.", m.salvageTruncated.Load())

	// Latency histogram, cumulative buckets Prometheus-style.
	fmt.Fprintf(sb, "# HELP fsdl_request_seconds Request latency.\n# TYPE fsdl_request_seconds histogram\n")
	for _, b := range m.latency.Buckets() {
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = fmt.Sprintf("%g", b.UpperBound)
		}
		fmt.Fprintf(sb, "fsdl_request_seconds_bucket{le=%q} %d\n", le, b.CumulativeCount)
	}
	fmt.Fprintf(sb, "fsdl_request_seconds_sum %g\n", m.latency.Sum())
	fmt.Fprintf(sb, "fsdl_request_seconds_count %d\n", m.latency.Count())
}

// renderLive appends the live-update pipeline's exposition; sampled
// from the pipeline at scrape time like the label-cache stats.
func renderLive(sb *strings.Builder, m liveupdate.Metrics) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v int64) {
		fmt.Fprintf(sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n", name, help, name, name, v)
	}
	counter("fsdl_live_inserts_total", "Edge insertions accepted by the live pipeline.", m.Inserts)
	counter("fsdl_live_deletes_total", "Edge deletions accepted by the live pipeline.", m.Deletes)
	counter("fsdl_live_rejected_total", "Mutations refused by validation.", m.Rejected)
	counter("fsdl_live_compactions_total", "Label generations baked and swapped in.", m.Compactions)
	counter("fsdl_wal_flushed_total", "Mutation-WAL fsyncs completed (0 without a WAL).", m.WALFlushes)
	gauge("fsdl_live_pending", "Delta edges not yet baked into the served generation (0 = exact answers).", int64(m.Pending))
	gauge("fsdl_live_generation", "Label generation currently served.", int64(m.Generation))
	gauge("fsdl_live_seq", "Last applied mutation sequence.", int64(m.Seq))
	gauge("fsdl_live_compacted_seq", "Last mutation sequence baked into a generation.", int64(m.CompactedSeq))
	gauge("fsdl_wal_segments", "Sealed mutation-WAL segments retained on disk (0 without a WAL).", int64(m.WALSegments))
}
