package server

import (
	"context"
	"strings"
	"sync/atomic"

	"fsdl/internal/core"
	"fsdl/internal/labelstore"
)

// LabelSource is where the server gets labels from: a local
// labelstore.Store or a cluster frontend scatter-gathering them from
// shards. The query path is identical either way — decode happens here,
// next to the query — which is exactly the property that lets the label
// space shard: a query needs only the labels of s, t and F, never the
// graph.
//
// Label must honor ctx: a remote source returns promptly with ctx.Err()
// when the caller is gone. Errors containing "no label for vertex" are
// authoritative absence (mapped to 404 and degraded-fault handling);
// anything else is treated as transient unavailability.
type LabelSource interface {
	NumVertices() int
	NumLabels() int
	Label(ctx context.Context, v int) (*core.Label, error)
	LabelCacheStats() (hits, misses int64)
}

// Optional LabelSource capabilities, discovered structurally so this
// package never imports the cluster package.
type (
	// Prefetcher warms a batch of labels in one round trip, returning
	// how many requested vertices it failed to resolve. The server calls
	// it with every distinct vertex a batch will touch before answering
	// pair by pair, retrying a couple of times with jittered backoff
	// while vertices remain unresolved; persistent failures simply
	// resurface on the per-label path.
	Prefetcher interface {
		Prefetch(ctx context.Context, ids []int) int
	}
	// MetricsWriter appends source-specific Prometheus exposition to the
	// server's /metrics output.
	MetricsWriter interface {
		WriteMetrics(sb *strings.Builder)
	}
	// HealthReporter contributes a JSON-marshalable fragment to
	// /healthz (e.g. per-shard health).
	HealthReporter interface {
		HealthJSON() any
	}
	// ClusterAdmin exposes membership control and the cluster status
	// snapshot. A source that implements it gets the /v1/cluster/*
	// admin endpoints. Join/Leave/Drain return the new ring epoch;
	// StatusJSON returns a JSON-marshalable snapshot served as-is.
	ClusterAdmin interface {
		Join(name, addr string) (uint64, error)
		Leave(name string) (uint64, error)
		Drain(name string, drain bool) (uint64, error)
		StatusJSON() any
	}
	// LabelPinner pins label resolution to the source's current label
	// generation: the returned closures mirror Label and Prefetch (the
	// prefetch closure may be nil) but resolve every vertex against the
	// one generation that was current at pin time. The server pins once
	// per batch — after reading the live delta, so an empty delta
	// implies the pinned generation already has it baked in — which
	// keeps a generation swap landing mid-batch from mixing labels of
	// two generations inside one decode. Mixed generations are unsound:
	// a fault label's protected balls describe one graph's distances
	// and cannot guard sketch edges taken from another's.
	LabelPinner interface {
		PinLabels() (label func(context.Context, int) (*core.Label, error), prefetch func(context.Context, []int) int)
	}
	// GenerationSwapper coordinates versioned label-generation swaps: a
	// cluster frontend has every shard load the named generation from
	// its generation root, then atomically re-routes (returning the new
	// ring epoch). Compaction uses it to swap the freshly baked
	// generation in without dropping in-flight queries.
	GenerationSwapper interface {
		Generation() uint64
		SwapGeneration(gen uint64) (uint64, error)
	}
	// ScopedGenerationSwapper is a GenerationSwapper that can flip a
	// generation while reloading from disk only the shards the
	// compaction reported changed; every other shard re-tags the
	// byte-identical partition it already serves. Incremental
	// compaction routes its swap here so an ε-sized delta costs an
	// ε-sized flip. cluster.Frontend implements it.
	ScopedGenerationSwapper interface {
		GenerationSwapper
		SwapGenerationScoped(gen uint64, changed []string) (uint64, error)
	}
)

// storeSource adapts the in-process labelstore.Store to LabelSource.
// Lookups never block, so ctx is ignored. The store pointer is atomic
// so a compaction can swap the next label generation in under live
// queries — each lookup is served whole from whichever generation it
// loads, no lock, no torn reads.
type storeSource struct {
	st atomic.Pointer[labelstore.Store]
}

func newStoreSource(st *labelstore.Store) *storeSource {
	s := &storeSource{}
	s.st.Store(st)
	return s
}

func (s *storeSource) NumVertices() int { return s.st.Load().NumVertices() }
func (s *storeSource) NumLabels() int   { return s.st.Load().NumLabels() }
func (s *storeSource) Label(_ context.Context, v int) (*core.Label, error) {
	return s.st.Load().Label(v)
}
func (s *storeSource) LabelCacheStats() (int64, int64) { return s.st.Load().LabelCacheStats() }

// PinLabels pins lookups to the store generation loaded at pin time,
// so a batch straddling a Swap answers every query from one
// generation. No prefetch: local lookups are already single-hop.
func (s *storeSource) PinLabels() (func(context.Context, int) (*core.Label, error), func(context.Context, []int) int) {
	st := s.st.Load()
	return func(_ context.Context, v int) (*core.Label, error) { return st.Label(v) }, nil
}

// Swap installs a new label generation. The vertex space must match;
// compaction guarantees it (generations are rebuilds of the same
// vertex set).
func (s *storeSource) Swap(st *labelstore.Store) { s.st.Store(st) }
