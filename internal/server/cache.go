package server

import "fsdl/internal/lru"

// cacheKey identifies one answered query: the endpoint pair, a hash of
// the canonical (sorted) effective fault set and work budget, and
// whether the answer carries a witness path — path and distance-only
// answers for the same (s,t,F) are distinct entries, never substituted
// for one another. Keys never outlive a fail/recover — the server
// flushes the cache on every overlay change — so hash collisions within
// one overlay generation are the only way to serve a wrong entry, and a
// 64-bit FNV over the sorted fault set makes that astronomically
// unlikely.
type cacheKey struct {
	s, t  int32
	fhash uint64
	path  bool
}

// resultCache is the sharded LRU over query answers, backed by the
// generic lru.Cache. The shard hash mixes the pair ids into the fault
// hash so grids of sequential queries spread across shards.
type resultCache struct {
	c *lru.Cache[cacheKey, Answer]
}

// newResultCache builds a cache with the given total capacity spread
// over nshards shards. capacity <= 0 disables caching (every Get
// misses, every Put is dropped).
func newResultCache(capacity, nshards int) *resultCache {
	return &resultCache{c: lru.New[cacheKey, Answer](capacity, nshards, func(k cacheKey) uint64 {
		h := k.fhash ^ (uint64(uint32(k.s)) * 0x9e3779b97f4a7c15) ^ (uint64(uint32(k.t)) * 0xc2b2ae3d27d4eb4f)
		if k.path {
			h ^= 0xa24baed4963ee407
		}
		return h
	})}
}

// Get returns the cached answer for k, if present, and marks it most
// recently used.
func (c *resultCache) Get(k cacheKey) (Answer, bool) { return c.c.Get(k) }

// Put stores the answer for k, evicting the least recently used entry
// of the shard when it is full.
func (c *resultCache) Put(k cacheKey, ans Answer) { c.c.Put(k, ans) }

// Flush drops every entry — called on fail/recover, because the global
// fault overlay is folded into every key's fault set.
func (c *resultCache) Flush() { c.c.Flush() }

// Len returns the number of cached entries across all shards.
func (c *resultCache) Len() int { return c.c.Len() }
