package server

import (
	"container/list"
	"sync"
)

// cacheKey identifies one answered query: the endpoint pair plus a hash
// of the canonical (sorted) effective fault set and work budget. Keys
// never outlive a fail/recover — the server flushes the cache on every
// overlay change — so hash collisions within one overlay generation are
// the only way to serve a wrong entry, and a 64-bit FNV over the sorted
// fault set makes that astronomically unlikely.
type cacheKey struct {
	s, t  int32
	fhash uint64
}

// resultCache is a sharded LRU over query answers. Each shard has its
// own lock, list and map, so concurrent readers on different shards
// never contend.
type resultCache struct {
	shards []cacheShard
	perCap int // capacity per shard
}

type cacheShard struct {
	mu    sync.Mutex
	order *list.List // front = most recent
	byKey map[cacheKey]*list.Element
}

type cacheEntry struct {
	key cacheKey
	ans Answer
}

// newResultCache builds a cache with the given total capacity spread
// over nshards shards. capacity <= 0 disables caching (every Get
// misses, every Put is dropped).
func newResultCache(capacity, nshards int) *resultCache {
	if nshards < 1 {
		nshards = 1
	}
	perCap := 0
	if capacity > 0 {
		perCap = (capacity + nshards - 1) / nshards
	}
	c := &resultCache{shards: make([]cacheShard, nshards), perCap: perCap}
	for i := range c.shards {
		c.shards[i].order = list.New()
		c.shards[i].byKey = make(map[cacheKey]*list.Element)
	}
	return c
}

func (c *resultCache) shard(k cacheKey) *cacheShard {
	// Mix the pair ids into the fault hash so grids of sequential
	// queries spread across shards.
	h := k.fhash ^ (uint64(uint32(k.s)) * 0x9e3779b97f4a7c15) ^ (uint64(uint32(k.t)) * 0xc2b2ae3d27d4eb4f)
	return &c.shards[h%uint64(len(c.shards))]
}

// Get returns the cached answer for k, if present, and marks it most
// recently used.
func (c *resultCache) Get(k cacheKey) (Answer, bool) {
	if c.perCap == 0 {
		return Answer{}, false
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.byKey[k]
	if !ok {
		return Answer{}, false
	}
	sh.order.MoveToFront(el)
	return el.Value.(*cacheEntry).ans, true
}

// Put stores the answer for k, evicting the least recently used entry
// of the shard when it is full.
func (c *resultCache) Put(k cacheKey, ans Answer) {
	if c.perCap == 0 {
		return
	}
	sh := c.shard(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if el, ok := sh.byKey[k]; ok {
		el.Value.(*cacheEntry).ans = ans
		sh.order.MoveToFront(el)
		return
	}
	for sh.order.Len() >= c.perCap {
		last := sh.order.Back()
		sh.order.Remove(last)
		delete(sh.byKey, last.Value.(*cacheEntry).key)
	}
	sh.byKey[k] = sh.order.PushFront(&cacheEntry{key: k, ans: ans})
}

// Flush drops every entry — called on fail/recover, because the global
// fault overlay is folded into every key's fault set.
func (c *resultCache) Flush() {
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		sh.order.Init()
		sh.byKey = make(map[cacheKey]*list.Element)
		sh.mu.Unlock()
	}
}

// Len returns the number of cached entries across all shards.
func (c *resultCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += sh.order.Len()
		sh.mu.Unlock()
	}
	return n
}
