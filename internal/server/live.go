package server

import (
	"errors"
	"fmt"

	"fsdl/internal/liveupdate"
)

// This file is the serving side of the live-update pipeline: mutation
// ingestion (/v1/mutate), compaction with a zero-downtime generation
// swap (/v1/compact) and the graceful WAL drain. The pipeline itself —
// WAL, delta semantics, generation builds — lives in
// internal/liveupdate; the server coordinates it with the query path,
// the result cache and (in cluster mode) the frontend's ring.

// ErrCompacting is returned when a compaction is already in flight;
// the HTTP layer maps it to 409 Conflict.
var ErrCompacting = errors.New("server: compaction already in flight")

// MutateState is the acknowledgement for an applied mutation batch.
// Exact reports whether queries are currently exact (no pending
// delta) — after a successful Mutate it is false until the next
// compaction.
type MutateState struct {
	Seq        uint64 `json:"seq"`
	Pending    int    `json:"pending"`
	Generation uint64 `json:"generation"`
	Exact      bool   `json:"exact"`
}

// Compaction modes accepted by CompactMode and the optional
// /v1/compact request body.
const (
	// CompactAuto builds incrementally when the previous generation's
	// build state is retained in memory and still current, and falls
	// back to a full rebuild otherwise. The default.
	CompactAuto = "auto"
	// CompactFull forces a from-scratch rebuild.
	CompactFull = "full"
	// CompactIncremental requires the delta-scoped path and errors when
	// no usable base generation is retained (e.g. right after a
	// restart) — for callers that would rather fail than eat a full
	// build.
	CompactIncremental = "incremental"
)

// CompactResult is the outcome of a completed compaction + swap.
type CompactResult struct {
	Generation uint64 `json:"generation"`
	Dir        string `json:"dir,omitempty"`
	Seq        uint64 `json:"seq"`
	// Pending counts delta edges that streamed in while the build ran
	// and thus survive into the next compaction window.
	Pending int `json:"pending"`
	// Epoch is the new ring epoch when the swap went through a cluster
	// frontend (0 for a local store swap).
	Epoch uint64 `json:"epoch,omitempty"`
	// Incremental reports that the delta-scoped build produced this
	// generation (byte-identical to a full build, but only DirtyLabels
	// labels were re-extracted).
	Incremental bool `json:"incremental,omitempty"`
	// DirtyLabels counts re-extracted labels (= n on a full build).
	DirtyLabels int `json:"dirty_labels,omitempty"`
	// ChangedShards lists the partitions with at least one dirty label
	// — the shards a scoped cluster swap reloaded from disk.
	ChangedShards []string `json:"changed_shards,omitempty"`
	// Noop reports the empty-delta fast path: nothing was built or
	// swapped, and Generation/Seq describe the generation already
	// serving. A no-op is 200, not an error — the caller asked for the
	// delta to be baked and it (vacuously) is. Only a compaction
	// already in flight is a 409.
	Noop bool `json:"noop,omitempty"`
}

// Mutate applies an ordered edge-mutation batch atomically: every
// mutation is journaled (WAL fsynced) and folded into the live delta,
// or none is. The result cache is flushed — any cached answer may
// disagree with the mutated graph.
func (s *Server) Mutate(muts []liveupdate.Mutation) (MutateState, error) {
	if s.live == nil {
		return MutateState{}, fmt.Errorf("server: live updates disabled (start with a mutation pipeline)")
	}
	seq, err := s.live.Apply(muts)
	if err != nil {
		return MutateState{}, err
	}
	s.cache.Flush()
	s.met.cacheFlushes.Add(1)
	pending := s.live.Pending()
	return MutateState{
		Seq:        seq,
		Pending:    pending,
		Generation: s.live.Generation(),
		Exact:      pending == 0,
	}, nil
}

// Compact bakes the pending delta into the next label generation and
// swaps it into the serving path without dropping a query, choosing
// the build mode automatically. See CompactMode.
func (s *Server) Compact() (CompactResult, error) {
	return s.CompactMode(CompactAuto)
}

// CompactMode bakes the pending delta into the next label generation
// (delta-scoped or from scratch per mode) and swaps it into the
// serving path without dropping a query. One compaction runs at a
// time (ErrCompacting, HTTP 409, otherwise); mutations keep streaming
// in while the build runs and are reconciled by Commit afterwards. An
// empty delta short-circuits: nothing is built and the current
// generation is returned with Noop set (HTTP 200).
func (s *Server) CompactMode(mode string) (CompactResult, error) {
	switch mode {
	case "", CompactAuto, CompactFull, CompactIncremental:
	default:
		return CompactResult{}, fmt.Errorf("server: unknown compaction mode %q (want %q, %q or %q)", mode, CompactAuto, CompactFull, CompactIncremental)
	}
	if s.live == nil {
		return CompactResult{}, fmt.Errorf("server: live updates disabled (start with a mutation pipeline)")
	}
	if s.cfg.LiveRoot == "" {
		return CompactResult{}, fmt.Errorf("server: compaction needs a generation root directory")
	}
	if !s.live.BeginCompaction() {
		return CompactResult{}, ErrCompacting
	}
	defer s.live.EndCompaction()

	// Empty-delta fast path: the delta the caller wants baked is
	// already (vacuously) baked, so don't burn a build or bump the
	// generation. The check sits inside BeginCompaction so it can't
	// race a concurrent mutation batch into a half-observed window.
	if s.live.Pending() == 0 {
		return CompactResult{Generation: s.live.Generation(), Seq: s.live.Seq(), Noop: true}, nil
	}

	prev := s.retainedPrev(mode)
	if mode == CompactIncremental && prev == nil {
		return CompactResult{}, fmt.Errorf("server: incremental compaction has no base: the previous generation's build state is not retained (run one full compaction first)")
	}

	res, err := liveupdate.Compact(s.live, s.cfg.LiveRoot, liveupdate.CompactOptions{
		Epsilon:    s.cfg.Epsilon,
		Workers:    s.cfg.CompactWorkers,
		Partitions: s.cfg.Partitions,
		Prev:       prev,
		Format:     s.cfg.CompactFormat,
		Compress:   s.cfg.CompactCompress,
	})
	if err != nil {
		return CompactResult{}, err
	}
	out := CompactResult{
		Generation:    res.Snapshot.Generation,
		Dir:           res.Dir,
		Seq:           res.Snapshot.Seq,
		Incremental:   res.Incremental,
		DirtyLabels:   res.DirtyLabels,
		ChangedShards: res.ChangedPartitions,
	}

	// Swap before Commit. Between the two, queries see the new labels
	// with the old delta still applied — re-forbidding already-removed
	// edges and re-patching already-baked insertions is harmless (the
	// answers stay sound upper bounds). Committing first would briefly
	// pair the old labels with an empty delta and claim an exactness
	// the old generation cannot provide.
	switch src := s.src.(type) {
	case GenerationSwapper:
		var epoch uint64
		var err error
		// After an incremental build only ChangedShards differ on disk;
		// a scope-aware frontend reloads those and re-tags the rest in
		// place, so an ε-sized delta flips in ε-sized work.
		if sc, ok := src.(ScopedGenerationSwapper); ok && res.Incremental {
			epoch, err = sc.SwapGenerationScoped(res.Snapshot.Generation, res.ChangedPartitions)
		} else {
			epoch, err = src.SwapGeneration(res.Snapshot.Generation)
		}
		if err != nil {
			return CompactResult{}, fmt.Errorf("server: swap to generation %d: %w", res.Snapshot.Generation, err)
		}
		out.Epoch = epoch
	case *storeSource:
		src.Swap(res.Store)
	default:
		return CompactResult{}, fmt.Errorf("server: label source cannot swap generations")
	}
	if err := s.live.Commit(res.Snapshot); err != nil {
		return CompactResult{}, err
	}
	s.prevMu.Lock()
	s.prevGen = res
	s.prevMu.Unlock()
	s.cache.Flush()
	s.met.cacheFlushes.Add(1)
	out.Pending = s.live.Pending()
	return out, nil
}

// retainedPrev returns the retained previous-generation build state as
// an incremental base, or nil when the mode forbids it or the
// retained result no longer matches the pipeline's generation (a
// compaction that failed mid-swap, or none yet this process).
func (s *Server) retainedPrev(mode string) *liveupdate.PrevGeneration {
	if mode == CompactFull {
		return nil
	}
	s.prevMu.Lock()
	prev := s.prevGen
	s.prevMu.Unlock()
	if prev == nil || prev.Snapshot.Generation != s.live.Generation() {
		return nil
	}
	return &liveupdate.PrevGeneration{
		Generation: prev.Snapshot.Generation,
		Dir:        prev.Dir,
		Scheme:     prev.Scheme,
		Store:      prev.Store,
		// The layout is fixed by config, so the retained generation's
		// partition files were written with exactly this map — the
		// hard-link precondition.
		Partitions: s.cfg.Partitions,
	}
}

// Close drains the live pipeline: the mutation WAL is fsynced and
// closed, so every acknowledged mutation is durable before the
// process exits. A server without a pipeline closes trivially.
func (s *Server) Close() error {
	if s.live == nil {
		return nil
	}
	return s.live.Close()
}

// WALFlushedTotal reports completed mutation-WAL fsyncs — the final
// value fsdl-serve logs on SIGTERM so operators can reconcile the
// drain against their scrape history. 0 without a pipeline or WAL.
func (s *Server) WALFlushedTotal() int64 {
	if s.live == nil {
		return 0
	}
	return s.live.WALFlushedTotal()
}
