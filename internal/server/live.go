package server

import (
	"errors"
	"fmt"

	"fsdl/internal/liveupdate"
)

// This file is the serving side of the live-update pipeline: mutation
// ingestion (/v1/mutate), compaction with a zero-downtime generation
// swap (/v1/compact) and the graceful WAL drain. The pipeline itself —
// WAL, delta semantics, generation builds — lives in
// internal/liveupdate; the server coordinates it with the query path,
// the result cache and (in cluster mode) the frontend's ring.

// ErrCompacting is returned when a compaction is already in flight;
// the HTTP layer maps it to 409 Conflict.
var ErrCompacting = errors.New("server: compaction already in flight")

// MutateState is the acknowledgement for an applied mutation batch.
// Exact reports whether queries are currently exact (no pending
// delta) — after a successful Mutate it is false until the next
// compaction.
type MutateState struct {
	Seq        uint64 `json:"seq"`
	Pending    int    `json:"pending"`
	Generation uint64 `json:"generation"`
	Exact      bool   `json:"exact"`
}

// CompactResult is the outcome of a completed compaction + swap.
type CompactResult struct {
	Generation uint64 `json:"generation"`
	Dir        string `json:"dir"`
	Seq        uint64 `json:"seq"`
	// Pending counts delta edges that streamed in while the build ran
	// and thus survive into the next compaction window.
	Pending int `json:"pending"`
	// Epoch is the new ring epoch when the swap went through a cluster
	// frontend (0 for a local store swap).
	Epoch uint64 `json:"epoch,omitempty"`
}

// Mutate applies an ordered edge-mutation batch atomically: every
// mutation is journaled (WAL fsynced) and folded into the live delta,
// or none is. The result cache is flushed — any cached answer may
// disagree with the mutated graph.
func (s *Server) Mutate(muts []liveupdate.Mutation) (MutateState, error) {
	if s.live == nil {
		return MutateState{}, fmt.Errorf("server: live updates disabled (start with a mutation pipeline)")
	}
	seq, err := s.live.Apply(muts)
	if err != nil {
		return MutateState{}, err
	}
	s.cache.Flush()
	s.met.cacheFlushes.Add(1)
	pending := s.live.Pending()
	return MutateState{
		Seq:        seq,
		Pending:    pending,
		Generation: s.live.Generation(),
		Exact:      pending == 0,
	}, nil
}

// Compact bakes the pending delta into the next label generation
// (using the parallel offline build) and swaps it into the serving
// path without dropping a query. One compaction runs at a time;
// mutations keep streaming in while the build runs and are reconciled
// by Commit afterwards.
func (s *Server) Compact() (CompactResult, error) {
	if s.live == nil {
		return CompactResult{}, fmt.Errorf("server: live updates disabled (start with a mutation pipeline)")
	}
	if s.cfg.LiveRoot == "" {
		return CompactResult{}, fmt.Errorf("server: compaction needs a generation root directory")
	}
	if !s.live.BeginCompaction() {
		return CompactResult{}, ErrCompacting
	}
	defer s.live.EndCompaction()

	res, err := liveupdate.Compact(s.live, s.cfg.LiveRoot, liveupdate.CompactOptions{
		Epsilon: s.cfg.Epsilon,
		Workers: s.cfg.CompactWorkers,
	})
	if err != nil {
		return CompactResult{}, err
	}
	out := CompactResult{Generation: res.Snapshot.Generation, Dir: res.Dir, Seq: res.Snapshot.Seq}

	// Swap before Commit. Between the two, queries see the new labels
	// with the old delta still applied — re-forbidding already-removed
	// edges and re-patching already-baked insertions is harmless (the
	// answers stay sound upper bounds). Committing first would briefly
	// pair the old labels with an empty delta and claim an exactness
	// the old generation cannot provide.
	switch src := s.src.(type) {
	case GenerationSwapper:
		epoch, err := src.SwapGeneration(res.Snapshot.Generation)
		if err != nil {
			return CompactResult{}, fmt.Errorf("server: swap to generation %d: %w", res.Snapshot.Generation, err)
		}
		out.Epoch = epoch
	case *storeSource:
		src.Swap(res.Store)
	default:
		return CompactResult{}, fmt.Errorf("server: label source cannot swap generations")
	}
	if err := s.live.Commit(res.Snapshot); err != nil {
		return CompactResult{}, err
	}
	s.cache.Flush()
	s.met.cacheFlushes.Add(1)
	out.Pending = s.live.Pending()
	return out, nil
}

// Close drains the live pipeline: the mutation WAL is fsynced and
// closed, so every acknowledged mutation is durable before the
// process exits. A server without a pipeline closes trivially.
func (s *Server) Close() error {
	if s.live == nil {
		return nil
	}
	return s.live.Close()
}

// WALFlushedTotal reports completed mutation-WAL fsyncs — the final
// value fsdl-serve logs on SIGTERM so operators can reconcile the
// drain against their scrape history. 0 without a pipeline or WAL.
func (s *Server) WALFlushedTotal() int64 {
	if s.live == nil {
		return 0
	}
	return s.live.WALFlushedTotal()
}
