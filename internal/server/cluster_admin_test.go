package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
)

// adminSpy is a LabelSource that also implements ClusterAdmin,
// recording the membership calls the HTTP layer forwards.
type adminSpy struct {
	gatedSource
	epoch uint64
	calls []string
	fail  bool
}

func (a *adminSpy) Join(name, addr string) (uint64, error) {
	if a.fail {
		return 0, fmt.Errorf("cluster: join %q refused, shard unreachable at %s", name, addr)
	}
	a.epoch++
	a.calls = append(a.calls, "join:"+name+"@"+addr)
	return a.epoch, nil
}

func (a *adminSpy) Leave(name string) (uint64, error) {
	a.epoch++
	a.calls = append(a.calls, "leave:"+name)
	return a.epoch, nil
}

func (a *adminSpy) Drain(name string, drain bool) (uint64, error) {
	a.epoch++
	a.calls = append(a.calls, fmt.Sprintf("drain:%s:%v", name, drain))
	return a.epoch, nil
}

func (a *adminSpy) StatusJSON() any {
	return map[string]any{"epoch": a.epoch, "shards": []string{"s0", "s1"}}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	return resp, buf.Bytes()
}

// TestClusterAdminEndpoints drives /v1/cluster/* against a fake
// cluster-admin source: forwarding, epoch responses, drain defaulting,
// and input validation.
func TestClusterAdminEndpoints(t *testing.T) {
	_, st := testStore(t, 6, 6, 2)
	src := &adminSpy{gatedSource: gatedSource{st: st}, epoch: 1}
	s := newTestServer(t, Config{Source: src})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// Status is served as-is from the source.
	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	var status struct {
		Epoch  uint64   `json:"epoch"`
		Shards []string `json:"shards"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&status); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || status.Epoch != 1 || len(status.Shards) != 2 {
		t.Fatalf("status: code=%d body=%+v", resp.StatusCode, status)
	}

	// Join forwards name+addr and returns the new epoch.
	resp, body := postJSON(t, ts.URL+"/v1/cluster/join", map[string]string{"name": "s2", "addr": "127.0.0.1:9002"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("join: %d %s", resp.StatusCode, body)
	}
	var er struct {
		Epoch uint64 `json:"epoch"`
	}
	if json.Unmarshal(body, &er) != nil || er.Epoch != 2 {
		t.Fatalf("join response %s, want epoch 2", body)
	}

	// Drain defaults to true; an explicit false (undrain) passes through.
	postJSON(t, ts.URL+"/v1/cluster/drain", map[string]any{"name": "s2"})
	postJSON(t, ts.URL+"/v1/cluster/drain", map[string]any{"name": "s2", "drain": false})
	// Leave.
	postJSON(t, ts.URL+"/v1/cluster/leave", map[string]string{"name": "s0"})

	want := []string{"join:s2@127.0.0.1:9002", "drain:s2:true", "drain:s2:false", "leave:s0"}
	if fmt.Sprint(src.calls) != fmt.Sprint(want) {
		t.Fatalf("admin calls %v, want %v", src.calls, want)
	}

	// Validation: missing name / missing join addr are 400s that never
	// reach the source.
	before := len(src.calls)
	if resp, _ := postJSON(t, ts.URL+"/v1/cluster/leave", map[string]string{}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("leave without name: %d", resp.StatusCode)
	}
	if resp, _ := postJSON(t, ts.URL+"/v1/cluster/join", map[string]string{"name": "s3"}); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("join without addr: %d", resp.StatusCode)
	}
	if len(src.calls) != before {
		t.Fatal("rejected requests reached the source")
	}

	// A refused membership change surfaces as an error payload.
	src.fail = true
	resp, body = postJSON(t, ts.URL+"/v1/cluster/join", map[string]string{"name": "s4", "addr": "127.0.0.1:1"})
	if resp.StatusCode == http.StatusOK {
		t.Fatalf("refused join answered 200: %s", body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(body, &e) != nil || e.Error == "" {
		t.Fatalf("refused join error payload: %s", body)
	}
}

// TestClusterAdmin404OnLocalStore: against a local store the admin
// endpoints are a 404, not a panic or a silent no-op.
func TestClusterAdmin404OnLocalStore(t *testing.T) {
	_, st := testStore(t, 4, 4, 2)
	s := newTestServer(t, Config{Store: st})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/v1/cluster/status")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status on local store: %d, want 404", resp.StatusCode)
	}
	for _, op := range []string{"join", "leave", "drain"} {
		resp, _ := postJSON(t, ts.URL+"/v1/cluster/"+op, map[string]string{"name": "x", "addr": "y"})
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("%s on local store: %d, want 404", op, resp.StatusCode)
		}
	}
}
