// Package faultinject provides seeded, reproducible fault plans for the
// distributed simulation: per-message drop/duplicate/delay decisions,
// router crash/restart schedules, and network partitions with heal times.
//
// A Plan is pure data; an Injector is the deterministic engine that turns
// the plan into per-message outcomes. Determinism matters: the simulator
// processes events in a fixed total order and consults the injector once
// per transmission, so the same (plan, workload) pair replays the same
// faults byte for byte — a chaos run that exposes a bug is a reproducer,
// not an anecdote.
package faultinject

import (
	"fmt"
	"math"
	"math/rand"
)

// Never is a RestartAt value meaning the router stays down for the rest
// of the run — permanent loss, the scenario dead-shard replacement
// drills are built on.
const Never int64 = math.MaxInt64

// MessageClass distinguishes the two message kinds the simulator sends.
type MessageClass int

const (
	// Data is a packet hop between adjacent routers.
	Data MessageClass = iota
	// Flood is a failure/recovery status announcement.
	Flood
)

// Crash schedules one router crash and its restart. Between At and
// RestartAt the router behaves like a failed vertex; at RestartAt it comes
// back with total fault-set amnesia (empty forbidden set, no memory of
// which announcements it has seen).
type Crash struct {
	Router    int
	At        int64
	RestartAt int64
}

// Flapping builds a crash train for one router: count outages of length
// downFor, the k-th starting at start + k·period. A flapping node is
// the nastiest membership case — it keeps re-entering and re-leaving
// the healthy set faster than naive health probing converges, which is
// exactly what circuit breakers and probe jitter are for.
func Flapping(router int, start, period, downFor int64, count int) []Crash {
	if count <= 0 || period <= 0 || downFor <= 0 || downFor >= period {
		return nil
	}
	crashes := make([]Crash, 0, count)
	for k := int64(0); k < int64(count); k++ {
		at := start + k*period
		crashes = append(crashes, Crash{Router: router, At: at, RestartAt: at + downFor})
	}
	return crashes
}

// Partition splits the network into two sides between At and HealAt:
// every message whose endpoints lie on different sides is dropped while
// the partition is active. Members lists one side; all other routers form
// the other side. At HealAt the simulator triggers re-announcement of
// known faults across the healed cut.
type Partition struct {
	Members []int
	At      int64
	HealAt  int64
}

// Plan is a seeded, reproducible chaos scenario.
type Plan struct {
	// Seed drives every probabilistic decision of the injector.
	Seed int64
	// DropProb is the chance an individual transmission is lost. Data
	// losses are retried by the simulator (bounded, with backoff); flood
	// losses are silent.
	DropProb float64
	// DupProb is the chance a flood announcement is duplicated in flight
	// (data packets are not duplicated; announcement duplicates are
	// absorbed by the receivers' epoch dedup).
	DupProb float64
	// DelayProb is the chance a transmission is delayed by extra ticks
	// drawn uniformly from [1, MaxDelay] — the reorder mechanism, since
	// delayed messages are overtaken by later ones.
	DelayProb float64
	// MaxDelay bounds the extra delay ticks (≤ 0 selects 3).
	MaxDelay int
	// FloodDelay adds a fixed latency to every flood announcement,
	// modeling slow control-plane propagation.
	FloodDelay int
	// Crashes lists router crash/restart events.
	Crashes []Crash
	// Partitions lists network partitions with heal times.
	Partitions []Partition
}

// Validate checks the plan against a network of n routers.
func (p *Plan) Validate(n int) error {
	for _, pr := range []struct {
		name string
		v    float64
	}{{"DropProb", p.DropProb}, {"DupProb", p.DupProb}, {"DelayProb", p.DelayProb}} {
		if pr.v < 0 || pr.v > 1 {
			return fmt.Errorf("faultinject: %s = %v outside [0,1]", pr.name, pr.v)
		}
	}
	if p.MaxDelay < 0 {
		return fmt.Errorf("faultinject: negative MaxDelay %d", p.MaxDelay)
	}
	if p.FloodDelay < 0 {
		return fmt.Errorf("faultinject: negative FloodDelay %d", p.FloodDelay)
	}
	for i, c := range p.Crashes {
		if c.Router < 0 || c.Router >= n {
			return fmt.Errorf("faultinject: crash %d router %d out of range [0,%d)", i, c.Router, n)
		}
		if c.RestartAt <= c.At {
			return fmt.Errorf("faultinject: crash %d restarts at %d, not after crash at %d", i, c.RestartAt, c.At)
		}
	}
	for i, pt := range p.Partitions {
		if len(pt.Members) == 0 {
			return fmt.Errorf("faultinject: partition %d has no members", i)
		}
		for _, v := range pt.Members {
			if v < 0 || v >= n {
				return fmt.Errorf("faultinject: partition %d member %d out of range [0,%d)", i, v, n)
			}
		}
		if pt.HealAt <= pt.At {
			return fmt.Errorf("faultinject: partition %d heals at %d, not after split at %d", i, pt.HealAt, pt.At)
		}
	}
	return nil
}

// Outcome is the injector's verdict on one transmission.
type Outcome struct {
	// Deliver is false when the message is lost (randomly or because an
	// active partition separates the endpoints).
	Deliver bool
	// PartitionDrop marks a loss caused by an active partition rather
	// than random noise (the sender can expect it to heal).
	PartitionDrop bool
	// Duplicate requests a second copy of the message (floods only).
	Duplicate bool
	// Delay is the number of extra ticks to add to the delivery time.
	Delay int
}

// Injector turns a Plan into deterministic per-message outcomes. It must
// be consulted in a deterministic order (the simulator's event order) for
// runs to be reproducible.
type Injector struct {
	plan  Plan
	rng   *rand.Rand
	sides [][]bool // per partition: membership of side A, indexed by router
}

// NewInjector validates the plan against n routers and builds the engine.
func NewInjector(plan Plan, n int) (*Injector, error) {
	if err := plan.Validate(n); err != nil {
		return nil, err
	}
	if plan.MaxDelay <= 0 {
		plan.MaxDelay = 3
	}
	in := &Injector{
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		sides: make([][]bool, len(plan.Partitions)),
	}
	for i, pt := range plan.Partitions {
		side := make([]bool, n)
		for _, v := range pt.Members {
			side[v] = true
		}
		in.sides[i] = side
	}
	return in, nil
}

// Plan returns the plan the injector was built from (with defaults
// applied).
func (in *Injector) Plan() Plan { return in.plan }

// Separated reports whether an active partition separates u and v at time
// now.
func (in *Injector) Separated(now int64, u, v int) bool {
	for i, pt := range in.plan.Partitions {
		if pt.At <= now && now < pt.HealAt && in.sides[i][u] != in.sides[i][v] {
			return true
		}
	}
	return false
}

// CrashedAt reports whether the crash schedule has router down at time
// now. Beyond the simulator, the shard-cluster chaos tests drive shard
// kill/restart from this, so a cluster outage replays the same window
// as a simulator run built from the same plan.
func (in *Injector) CrashedAt(now int64, router int) bool {
	for _, c := range in.plan.Crashes {
		if c.Router == router && c.At <= now && now < c.RestartAt {
			return true
		}
	}
	return false
}

// CutEdge reports whether partition index pi separates u and v (regardless
// of time) — used by the simulator to find the healed cut edges.
func (in *Injector) CutEdge(pi, u, v int) bool {
	return in.sides[pi][u] != in.sides[pi][v]
}

// Judge decides the fate of one transmission from router `from` to router
// `to` at time now. Each call consumes randomness, so callers must invoke
// it exactly once per transmission, in deterministic order.
func (in *Injector) Judge(now int64, class MessageClass, from, to int) Outcome {
	out := Outcome{Deliver: true}
	if in.Separated(now, from, to) {
		return Outcome{PartitionDrop: true}
	}
	if in.plan.DropProb > 0 && in.rng.Float64() < in.plan.DropProb {
		return Outcome{}
	}
	if class == Flood {
		out.Delay += in.plan.FloodDelay
		if in.plan.DupProb > 0 && in.rng.Float64() < in.plan.DupProb {
			out.Duplicate = true
		}
	}
	if in.plan.DelayProb > 0 && in.rng.Float64() < in.plan.DelayProb {
		out.Delay += 1 + in.rng.Intn(in.plan.MaxDelay)
	}
	return out
}
