package faultinject

import "testing"

func TestValidateCatchesBadPlans(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
	}{
		{"drop prob > 1", Plan{DropProb: 1.5}},
		{"negative dup prob", Plan{DupProb: -0.1}},
		{"delay prob > 1", Plan{DelayProb: 2}},
		{"negative max delay", Plan{MaxDelay: -1}},
		{"negative flood delay", Plan{FloodDelay: -2}},
		{"crash router out of range", Plan{Crashes: []Crash{{Router: 99, At: 1, RestartAt: 2}}}},
		{"restart before crash", Plan{Crashes: []Crash{{Router: 0, At: 5, RestartAt: 5}}}},
		{"empty partition", Plan{Partitions: []Partition{{At: 1, HealAt: 2}}}},
		{"partition member out of range", Plan{Partitions: []Partition{{Members: []int{-1}, At: 1, HealAt: 2}}}},
		{"heal before split", Plan{Partitions: []Partition{{Members: []int{0}, At: 3, HealAt: 3}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(10); err == nil {
			t.Errorf("%s: Validate accepted a bad plan", c.name)
		}
	}
	good := Plan{Seed: 1, DropProb: 0.1, DupProb: 0.05, DelayProb: 0.05,
		Crashes:    []Crash{{Router: 3, At: 10, RestartAt: 20}},
		Partitions: []Partition{{Members: []int{0, 1}, At: 5, HealAt: 15}}}
	if err := good.Validate(10); err != nil {
		t.Errorf("good plan rejected: %v", err)
	}
}

func TestJudgeDeterministic(t *testing.T) {
	plan := Plan{Seed: 7, DropProb: 0.3, DupProb: 0.2, DelayProb: 0.2}
	run := func() []Outcome {
		in, err := NewInjector(plan, 8)
		if err != nil {
			t.Fatal(err)
		}
		var outs []Outcome
		for i := 0; i < 200; i++ {
			outs = append(outs, in.Judge(int64(i), MessageClass(i%2), i%8, (i+1)%8))
		}
		return outs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("outcome %d differs across identical runs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestJudgeRates(t *testing.T) {
	in, err := NewInjector(Plan{Seed: 42, DropProb: 0.1, DupProb: 0.5}, 4)
	if err != nil {
		t.Fatal(err)
	}
	drops, dups := 0, 0
	const trials = 5000
	for i := 0; i < trials; i++ {
		out := in.Judge(0, Flood, 0, 1)
		if !out.Deliver {
			drops++
		}
		if out.Duplicate {
			dups++
		}
	}
	if drops < trials/20 || drops > trials/5 {
		t.Errorf("drop rate %d/%d far from 10%%", drops, trials)
	}
	// Duplication applies only to delivered messages, so expect ~45%.
	if dups < trials/3 || dups > trials*3/5 {
		t.Errorf("dup rate %d/%d far from 45%%", dups, trials)
	}
}

func TestPartitionSeparates(t *testing.T) {
	plan := Plan{Partitions: []Partition{{Members: []int{0, 1, 2}, At: 100, HealAt: 200}}}
	in, err := NewInjector(plan, 6)
	if err != nil {
		t.Fatal(err)
	}
	if in.Separated(50, 0, 5) {
		t.Error("partition active before At")
	}
	if !in.Separated(100, 0, 5) {
		t.Error("partition inactive at At")
	}
	if in.Separated(150, 0, 1) {
		t.Error("same-side routers separated")
	}
	if in.Separated(200, 0, 5) {
		t.Error("partition active at HealAt")
	}
	out := in.Judge(150, Data, 2, 3)
	if out.Deliver || !out.PartitionDrop {
		t.Errorf("cross-partition message not dropped: %+v", out)
	}
	if !in.CutEdge(0, 2, 3) || in.CutEdge(0, 0, 1) {
		t.Error("CutEdge misclassifies the cut")
	}
}

func TestZeroPlanIsPerfect(t *testing.T) {
	in, err := NewInjector(Plan{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		out := in.Judge(int64(i), Data, 0, 1)
		if !out.Deliver || out.Duplicate || out.Delay != 0 {
			t.Fatalf("zero plan produced chaos: %+v", out)
		}
	}
}

func TestCrashedAt(t *testing.T) {
	plan := Plan{Crashes: []Crash{
		{Router: 2, At: 10, RestartAt: 20},
		{Router: 2, At: 30, RestartAt: 35},
		{Router: 5, At: 12, RestartAt: 13},
	}}
	in, err := NewInjector(plan, 8)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		now    int64
		router int
		down   bool
	}{
		{9, 2, false}, {10, 2, true}, {19, 2, true}, {20, 2, false},
		{30, 2, true}, {34, 2, true}, {35, 2, false},
		{12, 5, true}, {13, 5, false}, {12, 3, false},
	}
	for _, c := range cases {
		if got := in.CrashedAt(c.now, c.router); got != c.down {
			t.Errorf("CrashedAt(%d, %d) = %v, want %v", c.now, c.router, got, c.down)
		}
	}
}

// TestPermanentLoss: RestartAt = Never validates and keeps the router
// down forever — the dead-shard-replacement scenario.
func TestPermanentLoss(t *testing.T) {
	plan := Plan{Crashes: []Crash{{Router: 1, At: 5, RestartAt: Never}}}
	in, err := NewInjector(plan, 4)
	if err != nil {
		t.Fatalf("permanent crash rejected: %v", err)
	}
	if in.CrashedAt(4, 1) {
		t.Fatal("down before the crash")
	}
	for _, now := range []int64{5, 1000, 1 << 40, Never - 1} {
		if !in.CrashedAt(now, 1) {
			t.Fatalf("permanently lost router up at %d", now)
		}
	}
}

// TestFlapping: the crash-train helper produces count disjoint outages
// on the schedule, and the plan it feeds validates.
func TestFlapping(t *testing.T) {
	crashes := Flapping(3, 10, 100, 30, 4)
	if len(crashes) != 4 {
		t.Fatalf("got %d crashes, want 4", len(crashes))
	}
	in, err := NewInjector(Plan{Crashes: crashes}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for k := int64(0); k < 4; k++ {
		at := 10 + k*100
		if in.CrashedAt(at-1, 3) {
			t.Fatalf("down at %d, before outage %d", at-1, k)
		}
		if !in.CrashedAt(at, 3) || !in.CrashedAt(at+29, 3) {
			t.Fatalf("outage %d not covering [%d,%d)", k, at, at+30)
		}
		if in.CrashedAt(at+30, 3) {
			t.Fatalf("outage %d overran its downFor", k)
		}
	}
	// Degenerate shapes collapse to no crashes rather than bad plans.
	for _, c := range [][]Crash{
		Flapping(0, 0, 0, 5, 3),   // no period
		Flapping(0, 0, 10, 10, 3), // down the whole period
		Flapping(0, 0, 10, 5, 0),  // no outages
	} {
		if len(c) != 0 {
			t.Fatalf("degenerate flapping produced crashes: %+v", c)
		}
	}
}
