// Package lowerbound implements the machinery of the paper's Section 3
// (Theorem 3.1): the grid variants G_{p,d} and H_{p,d}, the graph family
// 𝓕_{n,α} of all subgraphs of G_{p,d} containing H_{p,d}, the
// adjacency-reconstruction attack that turns any forbidden-set
// connectivity oracle into an encoding of its graph, and the resulting
// information-theoretic counting: any forbidden-set connectivity labeling
// scheme on doubling-dimension-α graphs needs Ω(2^{α/2} + log n)-bit
// labels.
package lowerbound

import (
	"fmt"
	"math/rand"

	"fsdl/internal/graph"
)

// ValidateFamily checks that (p, d) parameterize a buildable family
// 𝓕_{n,α} instance: p ≥ 2, d ≥ 1 and even (H_{p,d} is defined via d/2),
// and p^d within the builder's size cap. Commands validate with this
// before producing any output, so malformed parameters fail whole.
func ValidateFamily(p, d int) error {
	if p < 2 || d < 1 {
		return fmt.Errorf("lowerbound: need p >= 2, d >= 1, got p=%d d=%d", p, d)
	}
	if d%2 != 0 {
		return fmt.Errorf("lowerbound: the family needs even d (H_{p,d} requires it), got d=%d", d)
	}
	n := 1
	for i := 0; i < d; i++ {
		if n > (1<<28)/p {
			return fmt.Errorf("lowerbound: p^d too large (p=%d, d=%d)", p, d)
		}
		n *= p
	}
	return nil
}

// GridPD returns G_{p,d}: vertices are the tuples (x_1,…,x_d) with
// x_i ∈ {0,…,p−1}; two vertices are adjacent iff max_i |x_i−y_i| = 1
// ("king moves"). The doubling dimension of G_{p,d} is at most d.
func GridPD(p, d int) (*graph.Graph, error) {
	return buildPD(p, d, func(delta []int) bool { return true })
}

// HPD returns H_{p,d}: adjacency additionally requires Σ_i |x_i−y_i| ≤ d/2.
// H_{p,d} is a 2-spanner of G_{p,d} with at most half its edges. d must be
// even.
func HPD(p, d int) (*graph.Graph, error) {
	if d%2 != 0 {
		return nil, fmt.Errorf("lowerbound: H_{p,d} needs even d, got %d", d)
	}
	return buildPD(p, d, func(delta []int) bool {
		sum := 0
		for _, x := range delta {
			sum += x
		}
		return sum <= d/2
	})
}

func buildPD(p, d int, keep func(delta []int) bool) (*graph.Graph, error) {
	if p < 2 || d < 1 {
		return nil, fmt.Errorf("lowerbound: need p >= 2, d >= 1, got p=%d d=%d", p, d)
	}
	n := 1
	for i := 0; i < d; i++ {
		if n > (1<<28)/p {
			return nil, fmt.Errorf("lowerbound: p^d too large")
		}
		n *= p
	}
	b := graph.NewBuilder(n)
	coord := make([]int, d)
	delta := make([]int, d)
	// Enumerate each vertex and its lexicographically-larger neighbors.
	var rec func(axis, u, v int, any bool)
	rec = func(axis, u, v int, any bool) {
		if axis == d {
			if any && v > u && keep(delta) {
				b.AddEdge(u, v)
			}
			return
		}
		stride := 1
		for i := 0; i < axis; i++ {
			stride *= p
		}
		for dd := -1; dd <= 1; dd++ {
			o := coord[axis] + dd
			if o < 0 || o >= p {
				continue
			}
			if dd < 0 {
				delta[axis] = -dd
			} else {
				delta[axis] = dd
			}
			rec(axis+1, u, v+o*stride, any || dd != 0)
		}
	}
	for u := 0; u < n; u++ {
		x := u
		for i := 0; i < d; i++ {
			coord[i] = x % p
			x /= p
		}
		rec(0, u, 0, false)
	}
	return b.Build()
}

// FreeEdges returns E(G_{p,d}) \ E(H_{p,d}) — the edges a family member is
// free to include or exclude. Each subset of these edges added to H_{p,d}
// is a distinct member of 𝓕_{n,α}, so |𝓕| = 2^{|FreeEdges|}.
func FreeEdges(p, d int) ([][2]int, error) {
	g, err := GridPD(p, d)
	if err != nil {
		return nil, err
	}
	h, err := HPD(p, d)
	if err != nil {
		return nil, err
	}
	var free [][2]int
	g.ForEachEdge(func(u, v int) {
		if !h.HasEdge(u, v) {
			free = append(free, [2]int{u, v})
		}
	})
	return free, nil
}

// RandomFamilyMember samples a uniform member of 𝓕_{n,α}: H_{p,d} plus an
// independent coin flip per free edge. It returns the graph and the chosen
// free-edge subset (the "message" the reconstruction attack recovers).
func RandomFamilyMember(p, d int, rng *rand.Rand) (*graph.Graph, map[[2]int]bool, error) {
	h, err := HPD(p, d)
	if err != nil {
		return nil, nil, err
	}
	free, err := FreeEdges(p, d)
	if err != nil {
		return nil, nil, err
	}
	chosen := map[[2]int]bool{}
	b := graph.NewBuilder(h.NumVertices())
	h.ForEachEdge(func(u, v int) { b.AddEdge(u, v) })
	for _, e := range free {
		if rng.Intn(2) == 1 {
			chosen[e] = true
			b.AddEdge(e[0], e[1])
		}
	}
	g, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	return g, chosen, nil
}

// ConnOracle is any forbidden-set connectivity oracle: Connected must
// report whether u and v lie in the same component of G \ F, or an error
// for malformed queries (e.g. out-of-range vertex ids).
type ConnOracle interface {
	Connected(u, v int, faults *graph.FaultSet) (bool, error)
}

// ExactConnOracle answers connectivity queries by direct search on the
// graph — the information-theoretic adversary's "free" oracle, used to
// validate the attack and to drive large instances.
type ExactConnOracle struct {
	G *graph.Graph
}

// Connected implements ConnOracle exactly.
func (o ExactConnOracle) Connected(u, v int, faults *graph.FaultSet) (bool, error) {
	if u < 0 || u >= o.G.NumVertices() || v < 0 || v >= o.G.NumVertices() {
		return false, fmt.Errorf("lowerbound: vertex out of range [0,%d)", o.G.NumVertices())
	}
	if u == v {
		return !faults.HasVertex(u), nil
	}
	return o.G.ConnectedAvoiding(u, v, faults), nil
}

// ReconstructAdjacency mounts the Theorem 3.1 attack: for every vertex
// pair (i,j) it issues the "everywhere failure" query F(i,j) = V \ {i,j};
// the answer is true iff (i,j) is an edge. The oracle's answers therefore
// encode the whole graph, so the oracle (and hence n times the label
// length) must have at least log₂|𝓕| bits on some member of the family.
func ReconstructAdjacency(n int, o ConnOracle) (*graph.Graph, error) {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			f := graph.NewFaultSet()
			for v := 0; v < n; v++ {
				if v != i && v != j {
					f.AddVertex(v)
				}
			}
			conn, err := o.Connected(i, j, f)
			if err != nil {
				return nil, fmt.Errorf("lowerbound: query (%d,%d): %w", i, j, err)
			}
			if conn {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Build()
}

// Bound is the counting lower bound instantiated for concrete (p,d).
type Bound struct {
	P, D int
	// N is the number of vertices p^d; Alpha = 2d is the doubling
	// dimension bound of the family.
	N, Alpha int
	// GridEdges and SpannerEdges are |E(G_{p,d})| and |E(H_{p,d})|.
	GridEdges, SpannerEdges int
	// FreeEdges = GridEdges − SpannerEdges = log₂|𝓕_{n,α}|.
	FreeEdges int
	// BitsPerLabel is the per-label lower bound FreeEdges / N — the
	// quantity Theorem 3.1 shows is Ω(2^{α/2}).
	BitsPerLabel float64
}

// CountingBound computes the Theorem 3.1 counting quantities for (p,d).
func CountingBound(p, d int) (Bound, error) {
	g, err := GridPD(p, d)
	if err != nil {
		return Bound{}, err
	}
	h, err := HPD(p, d)
	if err != nil {
		return Bound{}, err
	}
	bnd := Bound{
		P:            p,
		D:            d,
		N:            g.NumVertices(),
		Alpha:        2 * d,
		GridEdges:    g.NumEdges(),
		SpannerEdges: h.NumEdges(),
		FreeEdges:    g.NumEdges() - h.NumEdges(),
	}
	bnd.BitsPerLabel = float64(bnd.FreeEdges) / float64(bnd.N)
	return bnd, nil
}

// VerifySpanner checks that H_{p,d} is a 2-spanner of G_{p,d}: every grid
// edge's endpoints are at distance ≤ 2 in H. Returns the first violation.
func VerifySpanner(p, d int) error {
	g, err := GridPD(p, d)
	if err != nil {
		return err
	}
	h, err := HPD(p, d)
	if err != nil {
		return err
	}
	var firstErr error
	for u := 0; u < g.NumVertices() && firstErr == nil; u++ {
		distH := h.BFS(u)
		for _, v := range g.Neighbors(u) {
			if !graph.Reachable(distH[v]) || distH[v] > 2 {
				firstErr = fmt.Errorf("lowerbound: edge (%d,%d) stretched to %d in H_{%d,%d}",
					u, v, distH[v], p, d)
				break
			}
		}
	}
	return firstErr
}

// DistinctLabels counts the number of distinct label bit strings in the
// given encoded label set. Theorem 3.1's final argument shows any
// forbidden-set connectivity labeling on P_n needs at least n−2 distinct
// labels.
func DistinctLabels(encoded [][]byte) int {
	seen := map[string]bool{}
	for _, b := range encoded {
		seen[string(b)] = true
	}
	return len(seen)
}
