package lowerbound

import (
	"math"
	"math/rand"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/gen"
	"fsdl/internal/graph"
	"fsdl/internal/oracle"
)

func TestGridPDSmall(t *testing.T) {
	// G_{3,1} is the path P3 with no diagonal (d=1): edges (0,1),(1,2).
	g, err := GridPD(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 2 {
		t.Fatalf("G_{3,1} = (%d,%d), want (3,2)", g.NumVertices(), g.NumEdges())
	}
	// G_{2,2}: the 2x2 king graph = K4.
	g22, err := GridPD(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g22.NumVertices() != 4 || g22.NumEdges() != 6 {
		t.Fatalf("G_{2,2} = (%d,%d), want (4,6)", g22.NumVertices(), g22.NumEdges())
	}
}

func TestGridPDDegreeInterior(t *testing.T) {
	// Interior vertices of G_{p,d} have degree 3^d - 1.
	g, err := GridPD(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	center := 2 + 2*5
	if got := g.Degree(center); got != 8 {
		t.Errorf("interior degree = %d, want 8", got)
	}
	if got := g.Degree(0); got != 3 {
		t.Errorf("corner degree = %d, want 3", got)
	}
}

func TestHPDIsSubgraphAndHalf(t *testing.T) {
	for _, pd := range [][2]int{{3, 2}, {4, 2}, {2, 4}, {3, 4}} {
		p, d := pd[0], pd[1]
		g, err := GridPD(p, d)
		if err != nil {
			t.Fatal(err)
		}
		h, err := HPD(p, d)
		if err != nil {
			t.Fatal(err)
		}
		h.ForEachEdge(func(u, v int) {
			if !g.HasEdge(u, v) {
				t.Fatalf("H_{%d,%d} edge (%d,%d) not in G", p, d, u, v)
			}
		})
		if h.NumEdges() >= g.NumEdges() {
			t.Errorf("H_{%d,%d} must be a proper subgraph (%d vs %d edges)",
				p, d, h.NumEdges(), g.NumEdges())
		}
		// |E(H)| ≤ |E(G)|/2 is asymptotic in p (boundary vertices favor
		// low-weight moves); it is already exact for d = 2 at any p.
		if d == 2 && 2*h.NumEdges() > g.NumEdges()+g.NumVertices() {
			t.Errorf("H_{%d,2} has %d edges vs G's %d — not ≤ half",
				p, h.NumEdges(), g.NumEdges())
		}
	}
}

func TestHPDRejectsOddD(t *testing.T) {
	if _, err := HPD(3, 3); err == nil {
		t.Error("odd d must be rejected")
	}
}

func TestHPDFor2DIsAxisGrid(t *testing.T) {
	// For d=2, sum|delta| <= 1 keeps only axis moves: H_{p,2} is the
	// ordinary p×p grid.
	h, err := HPD(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := gen.Grid2D(4, 4)
	if h.NumEdges() != want.NumEdges() {
		t.Fatalf("H_{4,2} edges = %d, grid = %d", h.NumEdges(), want.NumEdges())
	}
	want.ForEachEdge(func(u, v int) {
		if !h.HasEdge(u, v) {
			t.Fatalf("H_{4,2} missing grid edge (%d,%d)", u, v)
		}
	})
}

func TestSpannerProperty(t *testing.T) {
	for _, pd := range [][2]int{{3, 2}, {4, 2}, {5, 2}, {2, 4}, {3, 4}} {
		if err := VerifySpanner(pd[0], pd[1]); err != nil {
			t.Errorf("p=%d d=%d: %v", pd[0], pd[1], err)
		}
	}
}

func TestFamilyMembersConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		g, _, err := RandomFamilyMember(3, 2, rng)
		if err != nil {
			t.Fatal(err)
		}
		if !g.IsConnected() {
			t.Fatal("family members contain H_{p,d} and must be connected")
		}
	}
}

func TestReconstructionExactOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g, _, err := RandomFamilyMember(3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructAdjacency(g.NumVertices(), ExactConnOracle{G: g})
	if err != nil {
		t.Fatal(err)
	}
	if rec.NumEdges() != g.NumEdges() {
		t.Fatalf("reconstruction has %d edges, want %d", rec.NumEdges(), g.NumEdges())
	}
	g.ForEachEdge(func(u, v int) {
		if !rec.HasEdge(u, v) {
			t.Fatalf("reconstruction missing edge (%d,%d)", u, v)
		}
	})
}

// The attack works against our labeling scheme's oracle too: the labels of
// a family member encode its adjacency completely.
func TestReconstructionThroughLabelingScheme(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, chosen, err := RandomFamilyMember(3, 2, rng)
	if err != nil {
		t.Fatal(err)
	}
	o, err := oracle.BuildStatic(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := ReconstructAdjacency(g.NumVertices(), o)
	if err != nil {
		t.Fatal(err)
	}
	// Full adjacency recovered…
	if rec.NumEdges() != g.NumEdges() {
		t.Fatalf("reconstruction has %d edges, want %d", rec.NumEdges(), g.NumEdges())
	}
	// …including the random free-edge subset (the encoded "message").
	free, err := FreeEdges(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range free {
		if rec.HasEdge(e[0], e[1]) != chosen[e] {
			t.Fatalf("free edge %v: reconstructed %v, chosen %v",
				e, rec.HasEdge(e[0], e[1]), chosen[e])
		}
	}
}

func TestCountingBoundGrowsWithAlpha(t *testing.T) {
	b2, err := CountingBound(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	b4, err := CountingBound(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if b2.Alpha != 4 || b4.Alpha != 8 {
		t.Fatalf("alphas = %d,%d, want 4,8", b2.Alpha, b4.Alpha)
	}
	if b2.FreeEdgesCheck() != nil || b4.FreeEdgesCheck() != nil {
		t.Fatal("internal consistency")
	}
	// Per-label bits must grow with α — the Ω(2^{α/2}) shape.
	if !(b4.BitsPerLabel > b2.BitsPerLabel) {
		t.Errorf("bits/label: α=8 gives %.2f, α=4 gives %.2f — no growth",
			b4.BitsPerLabel, b2.BitsPerLabel)
	}
	// And the growth should be at least ~2^{Δα/2}/slack: 2^{(8-4)/2} = 4.
	if b4.BitsPerLabel < 2*b2.BitsPerLabel {
		t.Errorf("bits/label growth %.2f -> %.2f weaker than expected",
			b2.BitsPerLabel, b4.BitsPerLabel)
	}
}

func TestCountingBoundMatchesPaperFormula(t *testing.T) {
	// m_{p,d} = Ω(2^d p^d): check the fraction free/total is around 1/2
	// and bits/label ≈ 2^{α/2}·Θ(1).
	b, err := CountingBound(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(b.FreeEdges) / float64(b.GridEdges)
	if frac < 0.3 || frac > 0.8 {
		t.Errorf("free-edge fraction %.2f outside [0.3, 0.8]", frac)
	}
	ratio := b.BitsPerLabel / math.Pow(2, float64(b.Alpha)/2)
	if ratio < 0.1 || ratio > 10 {
		t.Errorf("bits/label / 2^{α/2} = %.2f outside [0.1, 10]", ratio)
	}
}

// Theorem 3.1's final argument: on P_n, any forbidden-set connectivity
// labeling needs ≥ n−2 distinct labels. Our scheme's labels on P_n are in
// fact all distinct.
func TestPathLabelsAreDistinct(t *testing.T) {
	n := 24
	g := gen.Path(n)
	s, err := core.BuildScheme(g, 2)
	if err != nil {
		t.Fatal(err)
	}
	var encoded [][]byte
	for v := 0; v < n; v++ {
		buf, _ := s.Label(v).Encode()
		encoded = append(encoded, buf)
	}
	if got := DistinctLabels(encoded); got < n-2 {
		t.Errorf("only %d distinct labels on P_%d, need >= %d", got, n, n-2)
	}
}

func TestDistinctLabelsCounts(t *testing.T) {
	if got := DistinctLabels([][]byte{{1}, {1}, {2}, nil}); got != 3 {
		t.Errorf("DistinctLabels = %d, want 3", got)
	}
	if got := DistinctLabels(nil); got != 0 {
		t.Errorf("DistinctLabels(nil) = %d, want 0", got)
	}
}

// FreeEdgesCheck cross-checks the Bound fields (test helper defined on the
// type here to keep the production struct lean).
func (b Bound) FreeEdgesCheck() error {
	if b.FreeEdges != b.GridEdges-b.SpannerEdges {
		return errInconsistent
	}
	return nil
}

var errInconsistent = graphError("inconsistent bound")

type graphError string

func (e graphError) Error() string { return string(e) }

var _ ConnOracle = ExactConnOracle{}
var _ ConnOracle = (*oracle.Static)(nil)
var _ = graph.NewFaultSet
