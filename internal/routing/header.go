package routing

import (
	"fmt"
	"math"

	"fsdl/internal/bitio"
	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// Header is the packet header of the forbidden-set routing scheme: the
// sketch-path waypoints the source computed from the labels of
// (s, t, F). Theorem 2.7 bounds its size by O(|V(H)|·log n) bits — each
// waypoint is a vertex name of O(log n) bits. (When the forbidden set
// encodes a private routing policy, the policy description rides along;
// PolicyBits accounts for it.)
type Header struct {
	// Waypoints is the sketch path, source to destination inclusive.
	Waypoints []int32
	// PolicyBits optionally carries an application-defined policy blob
	// (the paper: "the header size will have to include a description of
	// the policy").
	PolicyBits []byte
}

// Encode serializes the header: a waypoint count, delta-coded waypoint
// names, and the optional policy blob. Returns the bytes and exact bit
// length.
func (h *Header) Encode() ([]byte, int) {
	var w bitio.Writer
	w.WriteDelta(uint64(len(h.Waypoints)))
	for _, wp := range h.Waypoints {
		w.WriteDelta(uint64(wp))
	}
	w.WriteDelta(uint64(len(h.PolicyBits)))
	for _, b := range h.PolicyBits {
		w.WriteBits(uint64(b), 8)
	}
	return w.Bytes(), w.Len()
}

// DecodeHeader parses a header serialized by Encode.
func DecodeHeader(buf []byte, nbits int) (*Header, error) {
	r := bitio.NewReader(buf, nbits)
	count, err := r.ReadDelta()
	if err != nil {
		return nil, fmt.Errorf("routing: decode header count: %w", err)
	}
	if count > 1<<24 || count > uint64(r.Remaining()) {
		return nil, fmt.Errorf("routing: implausible waypoint count %d", count)
	}
	h := &Header{Waypoints: make([]int32, count)}
	for i := range h.Waypoints {
		wp, err := r.ReadDelta()
		if err != nil {
			return nil, fmt.Errorf("routing: decode waypoint %d: %w", i, err)
		}
		if wp > math.MaxInt32 {
			return nil, fmt.Errorf("routing: waypoint %d out of range: %d", i, wp)
		}
		h.Waypoints[i] = int32(wp)
	}
	plen, err := r.ReadDelta()
	if err != nil {
		return nil, fmt.Errorf("routing: decode policy length: %w", err)
	}
	if plen > 1<<24 || plen*8 > uint64(r.Remaining()) {
		return nil, fmt.Errorf("routing: implausible policy length %d", plen)
	}
	if plen > 0 {
		h.PolicyBits = make([]byte, plen)
		for i := range h.PolicyBits {
			b, err := r.ReadBits(8)
			if err != nil {
				return nil, fmt.Errorf("routing: decode policy byte %d: %w", i, err)
			}
			h.PolicyBits[i] = byte(b)
		}
	}
	if r.Remaining() != 0 {
		return nil, fmt.Errorf("routing: %d trailing bits after header", r.Remaining())
	}
	return h, nil
}

// HeaderFor computes the packet header for (src, dst, F) — the step a
// source performs before injecting a packet. ok is false when dst is
// unreachable in G\F.
func (s *Scheme) HeaderFor(src, dst int, faults *graph.FaultSet) (*Header, bool) {
	if src == dst {
		return &Header{Waypoints: []int32{int32(src)}}, true
	}
	q, err := s.cs.NewQuery(src, dst, faults)
	if err != nil {
		return nil, false
	}
	var tr core.Trace
	if _, ok := q.DistanceWithTrace(&tr); !ok {
		return nil, false
	}
	return &Header{Waypoints: append([]int32(nil), tr.Path...)}, true
}

// FollowHeader simulates forwarding a packet that carries the given
// header: hop-by-hop shortest-path moves toward each successive waypoint
// (the stored port entries). Returns the exact path traversed. ok is false
// when some waypoint is unreachable, which cannot happen for headers built
// by HeaderFor on a live graph.
func (s *Scheme) FollowHeader(h *Header) (Route, bool) {
	if len(h.Waypoints) == 0 {
		return Route{}, false
	}
	r := Route{
		Waypoints: append([]int32(nil), h.Waypoints...),
		Path:      []int{int(h.Waypoints[0])},
	}
	cur := int(h.Waypoints[0])
	for wi := 1; wi < len(h.Waypoints); wi++ {
		target := int(h.Waypoints[wi])
		dist := s.g.BFS(target)
		for cur != target {
			next, ok := nextHopOnTree(s.g, dist, cur)
			if !ok {
				return Route{}, false
			}
			cur = next
			r.Path = append(r.Path, cur)
		}
	}
	r.Length = len(r.Path) - 1
	return r, true
}
