package routing

import (
	"math/rand"
	"testing"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

func gridGraph(t testing.TB, w, h int) *graph.Graph {
	t.Helper()
	b := graph.NewBuilder(w * h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if x+1 < w {
				b.AddEdge(y*w+x, y*w+x+1)
			}
			if y+1 < h {
				b.AddEdge(y*w+x, (y+1)*w+x)
			}
		}
	}
	return b.MustBuild()
}

func buildScheme(t testing.TB, g *graph.Graph, eps float64) *Scheme {
	t.Helper()
	cs, err := core.BuildScheme(g, eps)
	if err != nil {
		t.Fatal(err)
	}
	return New(cs)
}

// checkRoute verifies a routed path: starts at src, ends at dst, every hop
// is a real edge, no hop touches a fault, and the length is within (1+ε)
// of d_{G\F}.
func checkRoute(t *testing.T, g *graph.Graph, s *Scheme, r Route, src, dst int, f *graph.FaultSet) {
	t.Helper()
	if len(r.Path) == 0 || r.Path[0] != src || r.Path[len(r.Path)-1] != dst {
		t.Fatalf("route endpoints wrong: %v (want %d..%d)", r.Path, src, dst)
	}
	for i := 1; i < len(r.Path); i++ {
		u, v := r.Path[i-1], r.Path[i]
		if !g.HasEdge(u, v) {
			t.Fatalf("route uses nonexistent edge (%d,%d)", u, v)
		}
		if f.HasVertex(v) || f.HasVertex(u) {
			t.Fatalf("route visits failed vertex (hop %d-%d)", u, v)
		}
		if f.HasEdge(u, v) {
			t.Fatalf("route uses failed edge (%d,%d)", u, v)
		}
	}
	want := g.DistAvoiding(src, dst, f)
	if !graph.Reachable(want) {
		t.Fatalf("route delivered despite disconnection")
	}
	eps := s.Core().Params().Epsilon
	if want > 0 && float64(r.Length) > (1+eps)*float64(want)+1e-9 {
		t.Fatalf("route length %d exceeds (1+%g)·%d", r.Length, eps, want)
	}
}

func TestRouteNoFaults(t *testing.T) {
	g := gridGraph(t, 7, 7)
	s := buildScheme(t, g, 2)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		src, dst := rng.Intn(49), rng.Intn(49)
		r, ok := s.RouteWithFaults(src, dst, nil)
		if !ok {
			t.Fatalf("route (%d,%d) failed", src, dst)
		}
		checkRoute(t, g, s, r, src, dst, nil)
	}
}

func TestRouteSelf(t *testing.T) {
	g := gridGraph(t, 4, 4)
	s := buildScheme(t, g, 2)
	r, ok := s.RouteWithFaults(5, 5, nil)
	if !ok || r.Length != 0 || len(r.Path) != 1 {
		t.Fatalf("self route = (%+v,%v)", r, ok)
	}
}

func TestRouteAroundFaults(t *testing.T) {
	w, h := 9, 9
	g := gridGraph(t, w, h)
	s := buildScheme(t, g, 2)
	f := graph.NewFaultSet()
	for y := 1; y < h-1; y++ {
		f.AddVertex(y*w + 4)
	}
	src, dst := 4*w+0, 4*w+8
	r, ok := s.RouteWithFaults(src, dst, f)
	if !ok {
		t.Fatal("route should exist around the wall")
	}
	checkRoute(t, g, s, r, src, dst, f)
	if r.Length <= 8 {
		t.Errorf("route length %d suspiciously short for a detour", r.Length)
	}
}

func TestRouteDisconnected(t *testing.T) {
	b := graph.NewBuilder(6)
	for i := 0; i+1 < 6; i++ {
		b.AddEdge(i, i+1)
	}
	g := b.MustBuild()
	s := buildScheme(t, g, 2)
	if _, ok := s.RouteWithFaults(0, 5, graph.FaultVertices(3)); ok {
		t.Error("route across a cut vertex must fail")
	}
}

func TestRouteEdgeFaults(t *testing.T) {
	b := graph.NewBuilder(8)
	for i := 0; i < 8; i++ {
		b.AddEdge(i, (i+1)%8)
	}
	g := b.MustBuild()
	s := buildScheme(t, g, 2)
	f := graph.NewFaultSet()
	f.AddEdge(0, 1)
	r, ok := s.RouteWithFaults(0, 1, f)
	if !ok {
		t.Fatal("cycle minus one edge stays connected")
	}
	checkRoute(t, g, s, r, 0, 1, f)
	if r.Length != 7 {
		t.Errorf("route length %d, want 7 (the long way around)", r.Length)
	}
}

func TestNextHopDecreasesDistance(t *testing.T) {
	g := gridGraph(t, 6, 6)
	s := buildScheme(t, g, 2)
	dist := g.BFS(35)
	for v := 0; v < 36; v++ {
		if v == 35 {
			continue
		}
		next, ok := s.NextHop(v, 35)
		if !ok {
			t.Fatalf("NextHop(%d,35) failed", v)
		}
		if dist[next] != dist[v]-1 {
			t.Fatalf("NextHop(%d,35) = %d does not decrease distance", v, next)
		}
	}
}

func TestTableBitsExceedLabelBits(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s := buildScheme(t, g, 2)
	for _, v := range []int{0, 27, 63} {
		table := s.TableBits(v)
		label := s.Core().LabelBits(v)
		if table <= label {
			t.Errorf("v=%d: table %d bits should exceed label %d bits", v, table, label)
		}
		// Ports add at most a log-degree factor on the point count.
		if table > 2*label+64*s.Core().Label(v).NumPoints() {
			t.Errorf("v=%d: table %d bits implausibly large vs label %d", v, table, label)
		}
	}
}

func TestAdaptiveRouteDiscoversFaults(t *testing.T) {
	w, h := 9, 9
	g := gridGraph(t, w, h)
	s := buildScheme(t, g, 2)
	f := graph.NewFaultSet()
	for y := 1; y < h-1; y++ {
		f.AddVertex(y*w + 4)
	}
	src, dst := 4*w+0, 4*w+8
	known := graph.NewFaultSet()
	r, ok := s.AdaptiveRoute(src, dst, f, known)
	if !ok {
		t.Fatal("adaptive route should eventually deliver")
	}
	if r.Path[0] != src || r.Path[len(r.Path)-1] != dst {
		t.Fatalf("adaptive route endpoints wrong: %v", r.Path)
	}
	for i := 1; i < len(r.Path); i++ {
		u, v := r.Path[i-1], r.Path[i]
		if !g.HasEdge(u, v) {
			t.Fatalf("adaptive route uses nonexistent edge (%d,%d)", u, v)
		}
		if f.HasVertex(v) || f.HasEdge(u, v) {
			t.Fatalf("adaptive route stepped onto a fault at (%d,%d)", u, v)
		}
	}
	if r.Recomputes < 1 {
		t.Error("blind packet crossing a wall must recompute at least once")
	}
	if known.Size() == 0 {
		t.Error("adaptive routing must have discovered faults")
	}
}

func TestAdaptiveRouteNoFaults(t *testing.T) {
	g := gridGraph(t, 6, 6)
	s := buildScheme(t, g, 2)
	r, ok := s.AdaptiveRoute(0, 35, graph.NewFaultSet(), nil)
	if !ok {
		t.Fatal("fault-free adaptive route failed")
	}
	if r.Recomputes != 0 {
		t.Errorf("fault-free adaptive route recomputed %d times", r.Recomputes)
	}
	if r.Length != 10 {
		t.Errorf("corner-to-corner length %d, want shortest path 10 within stretch", r.Length)
	}
}

func TestAdaptiveRouteDisconnected(t *testing.T) {
	g := gridGraph(t, 5, 5)
	s := buildScheme(t, g, 2)
	f := graph.FaultVertices(1, 5) // seal corner 0
	if _, ok := s.AdaptiveRoute(0, 24, f, nil); ok {
		t.Error("sealed corner: adaptive route must fail")
	}
	if _, ok := s.AdaptiveRoute(0, 24, graph.FaultVertices(24), nil); ok {
		t.Error("failed destination: adaptive route must fail")
	}
}

func TestAdaptiveRouteStretchVsFullKnowledge(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s := buildScheme(t, g, 2)
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 15; trial++ {
		f := graph.NewFaultSet()
		for i := 0; i < 4; i++ {
			f.AddVertex(rng.Intn(64))
		}
		src, dst := rng.Intn(64), rng.Intn(64)
		if f.HasVertex(src) || f.HasVertex(dst) || src == dst {
			continue
		}
		want := g.DistAvoiding(src, dst, f)
		r, ok := s.AdaptiveRoute(src, dst, f, nil)
		if !graph.Reachable(want) {
			if ok {
				t.Fatalf("adaptive route delivered across a disconnection")
			}
			continue
		}
		if !ok {
			t.Fatalf("adaptive route (%d,%d) failed though connected", src, dst)
		}
		// Adaptive routes may backtrack, so no (1+eps) bound, but they
		// must be loop-bounded: each recompute adds knowledge.
		if r.Recomputes > f.Size() {
			t.Fatalf("recomputes %d > |F| = %d", r.Recomputes, f.Size())
		}
	}
}

// Section 2.2's structural claim: shortest paths under sketch edges carry
// the edge endpoints in their labels (for net-point endpoints).
func TestLabelContainmentOnSketchEdges(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s := buildScheme(t, g, 2)
	f := graph.FaultVertices(27)
	q, err := s.Core().NewQuery(0, 63, f)
	if err != nil {
		t.Fatal(err)
	}
	edges, err := q.Sketch()
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	for _, e := range edges {
		if e.W <= 1 {
			continue // unit edges route directly
		}
		if err := s.VerifyLabelContainment(e); err != nil {
			t.Fatal(err)
		}
		checked++
		if checked >= 40 {
			break
		}
	}
	if checked == 0 {
		t.Skip("no long sketch edges to check")
	}
}

func TestPortTableMatchesNextHop(t *testing.T) {
	g := gridGraph(t, 6, 6)
	s := buildScheme(t, g, 2)
	v := 14
	table := s.PortTable(v)
	if len(table) == 0 {
		t.Fatal("empty port table")
	}
	distV := g.BFS(v)
	for x, port := range table {
		// The port must be a neighbor strictly closer to the target.
		if !g.HasEdge(v, int(port)) {
			t.Fatalf("port %d toward %d is not a neighbor of %d", port, x, v)
		}
		if g.BFS(int(port))[x] != distV[x]-1 {
			t.Fatalf("port %d toward %d does not decrease the distance", port, x)
		}
	}
	// Every label vertex (same component) must have a port.
	l := s.Core().Label(v)
	for _, lv := range l.Levels {
		for _, pe := range lv.Points {
			if int(pe.X) == v {
				continue
			}
			if _, ok := table[pe.X]; !ok {
				t.Fatalf("label vertex %d missing from port table", pe.X)
			}
		}
	}
}

func TestPortTableOmitsOtherComponents(t *testing.T) {
	b := graph.NewBuilder(8)
	for i := 0; i+1 < 4; i++ {
		b.AddEdge(i, i+1)
		b.AddEdge(4+i, 4+i+1)
	}
	g := b.MustBuild()
	s := buildScheme(t, g, 2)
	table := s.PortTable(0)
	for x := range table {
		if x >= 4 {
			t.Fatalf("port table contains unreachable target %d", x)
		}
	}
}
