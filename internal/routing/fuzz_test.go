package routing

import "testing"

// FuzzDecodeHeader asserts DecodeHeader never panics or over-allocates on
// arbitrary input, and that valid headers survive re-encoding.
func FuzzDecodeHeader(f *testing.F) {
	h := &Header{Waypoints: []int32{3, 99, 4}, PolicyBits: []byte{1, 2, 3}}
	buf, nbits := h.Encode()
	f.Add(buf, nbits)
	f.Add([]byte{}, 0)
	f.Add([]byte{0xff, 0x0f}, 12)
	f.Fuzz(func(t *testing.T, data []byte, nbits int) {
		if nbits < 0 || nbits > 8*len(data) {
			nbits = 8 * len(data)
		}
		got, err := DecodeHeader(data, nbits)
		if err != nil {
			return
		}
		buf2, n2 := got.Encode()
		again, err := DecodeHeader(buf2, n2)
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if len(again.Waypoints) != len(got.Waypoints) || len(again.PolicyBits) != len(got.PolicyBits) {
			t.Fatal("header changed across re-encode")
		}
	})
}
