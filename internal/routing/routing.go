// Package routing implements the forbidden-set compact routing scheme of
// Section 2.2 (Theorem 2.7): each vertex stores its distance label plus,
// for every vertex x appearing in the label, the port of the outgoing edge
// on a shortest path toward x. A source computes the sketch path from the
// labels of (s, t, F) and routes hop by hop through its waypoints; since
// every sketch edge's shortest paths avoid F (Lemma 2.3), the packet
// arrives over a path of length at most (1+ε)·d_{G\F}(s,t).
//
// The package also implements the failure-recovery loop from the paper's
// Applications section: a router that discovers a failure en route adds it
// to its forbidden set and immediately recomputes, without waiting for a
// global route recomputation.
package routing

import (
	"fmt"
	"math/bits"

	"fsdl/internal/core"
	"fsdl/internal/graph"
)

// Scheme is a forbidden-set routing scheme over a preprocessed distance
// labeling scheme.
type Scheme struct {
	cs *core.Scheme
	g  *graph.Graph
}

// New wraps a distance labeling scheme into a routing scheme.
func New(cs *core.Scheme) *Scheme {
	return &Scheme{cs: cs, g: cs.Graph()}
}

// Core returns the underlying distance labeling scheme.
func (s *Scheme) Core() *core.Scheme { return s.cs }

// Route is the result of routing one packet.
type Route struct {
	// Path is the exact sequence of vertices traversed, from source to
	// destination inclusive.
	Path []int
	// Length is the number of edges traversed (len(Path)-1).
	Length int
	// Waypoints is the sketch path the header carried (global vertex ids).
	Waypoints []int32
	// Recomputes counts route recomputations (0 for full-knowledge
	// routing; up to |F| for adaptive routing).
	Recomputes int
}

// TableBits returns the size in bits of v's routing table: the distance
// label plus one port number per vertex mentioned in the label. A port
// needs ⌈log₂ deg(v)⌉ bits.
func (s *Scheme) TableBits(v int) int {
	l := s.cs.Label(v)
	_, labelBits := l.Encode()
	portBits := bits.Len(uint(s.g.Degree(v)))
	return labelBits + l.NumPoints()*portBits
}

// NextHop returns v's port toward target: the neighbor of v on a shortest
// v→target path (smallest-id tie-break), mirroring the port table entry
// the scheme stores. ok is false when target is unreachable from v.
//
// The simulation computes the entry on demand rather than materializing
// every table; the value is exactly what the stored port would be.
func (s *Scheme) NextHop(v, target int) (int, bool) {
	if v == target {
		return v, true
	}
	dist := s.g.BFS(target)
	return nextHopOnTree(s.g, dist, v)
}

func nextHopOnTree(g *graph.Graph, distToTarget []int32, v int) (int, bool) {
	dv := distToTarget[v]
	if !graph.Reachable(dv) {
		return 0, false
	}
	for _, nb := range g.Neighbors(v) {
		if graph.Reachable(distToTarget[nb]) && distToTarget[nb] == dv-1 {
			return int(nb), true
		}
	}
	return 0, false
}

// RouteWithFaults routes a packet from src to dst where the source knows
// the full fault set F up front. It returns ok=false when src and dst are
// disconnected in G\F.
func (s *Scheme) RouteWithFaults(src, dst int, faults *graph.FaultSet) (Route, bool) {
	if src == dst {
		return Route{Path: []int{src}}, true
	}
	q, err := s.cs.NewQuery(src, dst, faults)
	if err != nil {
		return Route{}, false
	}
	var tr core.Trace
	if _, ok := q.DistanceWithTrace(&tr); !ok {
		return Route{}, false
	}
	r := Route{Waypoints: tr.Path, Path: []int{src}}
	cur := src
	for wi := 1; wi < len(tr.Path); wi++ {
		target := int(tr.Path[wi])
		dist := s.g.BFS(target)
		for cur != target {
			next, ok := nextHopOnTree(s.g, dist, cur)
			if !ok {
				return Route{}, false
			}
			cur = next
			r.Path = append(r.Path, cur)
		}
	}
	r.Length = len(r.Path) - 1
	return r, true
}

// AdaptiveRoute simulates the Applications-section recovery scenario: the
// source knows only the subset known ⊆ faults of failures (nil for none)
// and routes toward dst. Whenever the packet is about to step onto a
// failed vertex or edge, the current router discovers that failure, adds
// it to the known set, and recomputes the route from its own position.
// At most |F| recomputations occur. ok is false when src and dst are
// disconnected in G\faults.
//
// known is mutated to reflect everything discovered along the way, so the
// caller can observe (and reuse) the propagated failure knowledge.
func (s *Scheme) AdaptiveRoute(src, dst int, faults, known *graph.FaultSet) (Route, bool) {
	if faults.HasVertex(src) || faults.HasVertex(dst) {
		return Route{}, false
	}
	if known == nil {
		known = graph.NewFaultSet()
	}
	r := Route{Path: []int{src}}
	cur := src
	maxRecomputes := faults.Size() + 1
	for attempt := 0; attempt < maxRecomputes+1; attempt++ {
		sub, ok := s.RouteWithFaults(cur, dst, known)
		if !ok {
			// Disconnected under a subset of the true faults implies
			// disconnected under all of them.
			return Route{}, false
		}
		progressed, discovered := s.walkUntilFault(&r, sub.Path, faults, known)
		cur = r.Path[len(r.Path)-1]
		if cur == dst {
			r.Length = len(r.Path) - 1
			r.Recomputes = attempt
			return r, true
		}
		if !discovered && !progressed {
			// No new knowledge and no progress: cannot happen when the
			// scheme's guarantees hold; bail out rather than loop.
			return Route{}, false
		}
		if discovered {
			continue
		}
	}
	return Route{}, false
}

// walkUntilFault advances the packet along path (path[0] must equal the
// current position), appending to r.Path, until it reaches the end or the
// next step would use a failed vertex or edge. In the latter case the
// failure is added to known. It reports whether any step was taken and
// whether a failure was discovered.
func (s *Scheme) walkUntilFault(r *Route, path []int, faults, known *graph.FaultSet) (progressed, discovered bool) {
	for i := 1; i < len(path); i++ {
		cur, next := path[i-1], path[i]
		if faults.HasVertex(next) {
			known.AddVertex(next)
			return progressed, true
		}
		if faults.HasEdge(cur, next) {
			known.AddEdge(cur, next)
			return progressed, true
		}
		r.Path = append(r.Path, next)
		progressed = true
	}
	return progressed, false
}

// VerifyLabelContainment checks the structural claim Section 2.2 relies
// on: for a sketch edge (x,y) of a query, every vertex z on a shortest
// x→y path in G has each net-point endpoint of the edge in its label at
// the level that contributed the edge — so z can route toward that
// endpoint with stretch 1 using only its own table. (Owner endpoints —
// s or t themselves — are carried by name in the header instead.) Used by
// tests; returns an error describing the first violation.
func (s *Scheme) VerifyLabelContainment(e core.SketchEdge) error {
	p := s.cs.Params()
	h := s.cs.Hierarchy()
	netLvl := p.NetLevel(e.Level)
	if netLvl > h.MaxLevel() {
		netLvl = h.MaxLevel()
	}
	dist := s.g.BFS(int(e.X))
	distY := s.g.BFS(int(e.Y))
	total := dist[e.Y]
	if !graph.Reachable(total) {
		return fmt.Errorf("routing: sketch edge (%d,%d) endpoints disconnected", e.X, e.Y)
	}
	checkX := h.InNet(int(e.X), netLvl)
	checkY := h.InNet(int(e.Y), netLvl)
	for z := 0; z < s.g.NumVertices(); z++ {
		if !graph.Reachable(dist[z]) || !graph.Reachable(distY[z]) || dist[z]+distY[z] != total {
			continue // not on any shortest path
		}
		lz := s.cs.Label(z)
		if checkX && int32(z) != e.X {
			if _, ok := lz.DistTo(e.Level, e.X); !ok {
				return fmt.Errorf("routing: %d on shortest (%d,%d)-path misses %d at level %d",
					z, e.X, e.Y, e.X, e.Level)
			}
		}
		if checkY && int32(z) != e.Y {
			if _, ok := lz.DistTo(e.Level, e.Y); !ok {
				return fmt.Errorf("routing: %d on shortest (%d,%d)-path misses %d at level %d",
					z, e.X, e.Y, e.Y, e.Level)
			}
		}
	}
	return nil
}

// PortTable materializes v's full routing table: for every vertex x
// appearing in v's label, the neighbor of v on a shortest v→x path. This
// is the stored structure Theorem 2.7 describes; the simulation methods
// compute entries on demand, but PortTable lets callers export the real
// artifact. Unreachable targets (other components) are omitted.
func (s *Scheme) PortTable(v int) map[int32]int32 {
	l := s.cs.Label(v)
	targets := map[int32]bool{}
	for _, lv := range l.Levels {
		for _, pe := range lv.Points {
			if int(pe.X) != v {
				targets[pe.X] = true
			}
		}
	}
	// One BFS per neighbor of v (plus v itself) prices every target:
	// port(v→x) is any neighbor nb with d(nb,x) = d(v,x) − 1.
	distV := s.g.BFS(v)
	nbs := s.g.Neighbors(v)
	nbDist := make([][]int32, len(nbs))
	for i, nb := range nbs {
		nbDist[i] = s.g.BFS(int(nb))
	}
	table := make(map[int32]int32, len(targets))
	for x := range targets {
		if !graph.Reachable(distV[x]) {
			continue
		}
		for i, nb := range nbs {
			if graph.Reachable(nbDist[i][x]) && nbDist[i][x] == distV[x]-1 {
				table[x] = nb
				break
			}
		}
	}
	return table
}
