package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"fsdl/internal/graph"
)

func TestHeaderRoundTrip(t *testing.T) {
	h := &Header{Waypoints: []int32{0, 17, 395, 2}, PolicyBits: []byte("deny-as-666")}
	buf, nbits := h.Encode()
	got, err := DecodeHeader(buf, nbits)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Waypoints) != len(h.Waypoints) {
		t.Fatalf("waypoints %v -> %v", h.Waypoints, got.Waypoints)
	}
	for i := range h.Waypoints {
		if got.Waypoints[i] != h.Waypoints[i] {
			t.Fatalf("waypoint %d: %d -> %d", i, h.Waypoints[i], got.Waypoints[i])
		}
	}
	if string(got.PolicyBits) != string(h.PolicyBits) {
		t.Fatalf("policy %q -> %q", h.PolicyBits, got.PolicyBits)
	}
}

func TestHeaderRoundTripProperty(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		h := &Header{}
		for i := 0; i < rng.Intn(20); i++ {
			h.Waypoints = append(h.Waypoints, int32(rng.Intn(1<<20)))
		}
		if rng.Intn(2) == 1 {
			h.PolicyBits = make([]byte, rng.Intn(32))
			rng.Read(h.PolicyBits)
		}
		buf, nbits := h.Encode()
		got, err := DecodeHeader(buf, nbits)
		if err != nil || len(got.Waypoints) != len(h.Waypoints) || len(got.PolicyBits) != len(h.PolicyBits) {
			return false
		}
		for i := range h.Waypoints {
			if got.Waypoints[i] != h.Waypoints[i] {
				return false
			}
		}
		for i := range h.PolicyBits {
			if got.PolicyBits[i] != h.PolicyBits[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestDecodeHeaderRejectsGarbage(t *testing.T) {
	if _, err := DecodeHeader(nil, 0); err == nil {
		t.Error("empty header must not decode")
	}
	if _, err := DecodeHeader([]byte{0xff, 0xff, 0xff}, 24); err == nil {
		t.Error("garbage header must not decode")
	}
}

func TestHeaderForAndFollow(t *testing.T) {
	g := gridGraph(t, 8, 8)
	s := buildScheme(t, g, 2)
	f := graph.FaultVertices(27, 36)
	h, ok := s.HeaderFor(0, 63, f)
	if !ok {
		t.Fatal("header construction failed")
	}
	if h.Waypoints[0] != 0 || h.Waypoints[len(h.Waypoints)-1] != 63 {
		t.Fatalf("waypoints endpoints wrong: %v", h.Waypoints)
	}
	// A header survives serialization and still routes the packet.
	buf, nbits := h.Encode()
	h2, err := DecodeHeader(buf, nbits)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := s.FollowHeader(h2)
	if !ok {
		t.Fatal("follow failed")
	}
	if r.Path[0] != 0 || r.Path[len(r.Path)-1] != 63 {
		t.Fatalf("routed path endpoints wrong: %v", r.Path)
	}
	for i := 1; i < len(r.Path); i++ {
		if !g.HasEdge(r.Path[i-1], r.Path[i]) {
			t.Fatalf("hop (%d,%d) not an edge", r.Path[i-1], r.Path[i])
		}
		if f.HasVertex(r.Path[i]) {
			t.Fatalf("routed through failed vertex %d", r.Path[i])
		}
	}
	// Header size: O(|waypoints| log n) — sanity bound, 64 bits per hop.
	if nbits > 64*(len(h.Waypoints)+2) {
		t.Errorf("header %d bits for %d waypoints — too large", nbits, len(h.Waypoints))
	}
}

func TestHeaderForSelf(t *testing.T) {
	g := gridGraph(t, 4, 4)
	s := buildScheme(t, g, 2)
	h, ok := s.HeaderFor(5, 5, nil)
	if !ok || len(h.Waypoints) != 1 {
		t.Fatalf("self header = (%v,%v)", h, ok)
	}
	r, ok := s.FollowHeader(h)
	if !ok || r.Length != 0 {
		t.Fatalf("self follow = (%+v,%v)", r, ok)
	}
}

func TestHeaderForDisconnected(t *testing.T) {
	g := gridGraph(t, 4, 4)
	s := buildScheme(t, g, 2)
	if _, ok := s.HeaderFor(0, 15, graph.FaultVertices(1, 4)); ok {
		t.Error("sealed corner must not produce a header")
	}
	if _, ok := s.FollowHeader(&Header{}); ok {
		t.Error("empty header must not route")
	}
}

func TestHeaderMatchesRouteWithFaults(t *testing.T) {
	g := gridGraph(t, 7, 7)
	s := buildScheme(t, g, 2)
	f := graph.FaultVertices(24)
	h, ok := s.HeaderFor(0, 48, f)
	if !ok {
		t.Fatal("header failed")
	}
	viaHeader, ok := s.FollowHeader(h)
	if !ok {
		t.Fatal("follow failed")
	}
	direct, ok := s.RouteWithFaults(0, 48, f)
	if !ok {
		t.Fatal("direct route failed")
	}
	if viaHeader.Length != direct.Length {
		t.Errorf("header route %d hops, direct %d hops", viaHeader.Length, direct.Length)
	}
}
